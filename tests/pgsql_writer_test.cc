#include <gtest/gtest.h>

#include "pgsql/sql_writer.h"
#include "timetable/example_graph.h"
#include "ttl/builder.h"

#include "test_time.h"

namespace ptldb {
namespace {

// Complementary SqlWriter coverage (the live-server behaviour is covered
// by pgsql_test; these check the emitted text itself).

TEST(SqlWriterDetailTest, LdNaiveStructure) {
  const std::string sql = LdKnnNaiveSql("poi");
  EXPECT_NE(sql.find("knn_naive_poi"), std::string::npos);
  EXPECT_NE(sql.find("MAX(n1_td)"), std::string::npos);
  EXPECT_NE(sql.find("n2.ta <= $2"), std::string::npos);
  EXPECT_NE(sql.find("ORDER BY MAX(n1_td) DESC, v2"), std::string::npos);
  // The LD naive query must not filter n1 by departure time.
  EXPECT_EQ(sql.find("td >= $2"), std::string::npos);
}

TEST(SqlWriterDetailTest, LdKnnKeepsBothFeasibilityChecks) {
  const std::string sql = LdKnnSql("poi");
  EXPECT_NE(sql.find("n3.td >= n1_ta"), std::string::npos);
  EXPECT_NE(sql.find("n2.td >= n1_ta"), std::string::npos);
  EXPECT_NE(sql.find("n2.ta <= $2"), std::string::npos);
}

TEST(SqlWriterDetailTest, EmptyLabelRowsEmitEmptyArrays) {
  LabelSet labels(2);
  labels.mutable_tuples(1).push_back(
      {0, TSec(10), TSec(20), kInvalidStop, kInvalidTrip});
  const std::string copy = LabelTableCopy(labels, "lout");
  EXPECT_NE(copy.find("0\t{}\t{}\t{}"), std::string::npos);
  EXPECT_NE(copy.find("1\t{0}\t{10}\t{20}"), std::string::npos);
}

TEST(SqlWriterDetailTest, NaiveConstructionSqlInlinesTargets) {
  const std::string sql = NaiveTableConstructionSql("s", {3, 7, 11}, 4);
  EXPECT_NE(sql.find("(3), (7), (11)"), std::string::npos);
  EXPECT_NE(sql.find("rn <= 4"), std::string::npos);
  EXPECT_NE(sql.find("ADD PRIMARY KEY (hub, td)"), std::string::npos);
}

TEST(SqlWriterDetailTest, CopyRowCountMatchesStops) {
  const Timetable tt = MakeExampleTimetable();
  const auto index = BuildTtlIndex(tt);
  ASSERT_TRUE(index.ok());
  const std::string copy = LabelTableCopy(index->in, "lin");
  // Exactly |V| data lines between the COPY header and the terminator.
  size_t lines = 0;
  for (const char c : copy) lines += (c == '\n');
  EXPECT_EQ(lines, tt.num_stops() + 2u);  // header + |V| rows + "\.".
}

}  // namespace
}  // namespace ptldb
