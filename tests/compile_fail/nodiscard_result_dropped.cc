// Must NOT compile (-Werror=unused-result): a Result<T> return is dropped,
// losing both the value and the error. Expected diagnostic: ignoring
// returned value of type 'Result<int>' declared with attribute 'nodiscard'.

#include "common/status.h"

namespace ptldb {

Result<int> ParsePort();

void Caller() {
  ParsePort();  // BAD: Result discarded — error path vanishes.
}

}  // namespace ptldb
