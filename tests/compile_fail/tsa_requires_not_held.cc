// Must NOT compile under Clang (-Werror=thread-safety): a PTLDB_REQUIRES
// function is called without the caller holding the required mutex.
// Expected diagnostic: calling function 'RebalanceLocked' requires holding
// mutex 'mu_' exclusively.

#include "common/thread_annotations.h"

namespace ptldb {

class Table {
 public:
  void Rebalance() {
    RebalanceLocked();  // BAD: caller does not hold mu_.
  }

 private:
  void RebalanceLocked() PTLDB_REQUIRES(mu_) { ++generation_; }

  Mutex mu_;
  int generation_ PTLDB_GUARDED_BY(mu_) = 0;
};

}  // namespace ptldb
