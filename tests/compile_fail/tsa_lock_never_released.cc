// Must NOT compile under Clang (-Werror=thread-safety): a manually acquired
// Mutex is still held when the function returns — the classic leaked-lock
// deadlock. Expected diagnostic: mutex 'mu_' is still held at the end of
// function. The fix is MutexLock (RAII), which cannot leak.

#include "common/thread_annotations.h"

namespace ptldb {

class Registry {
 public:
  void Touch() {
    mu_.Lock();
    ++generation_;
    // BAD: missing mu_.Unlock(); every later caller deadlocks.
  }

 private:
  Mutex mu_;
  int generation_ PTLDB_GUARDED_BY(mu_) = 0;
};

}  // namespace ptldb
