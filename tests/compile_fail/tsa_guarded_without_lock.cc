// Must NOT compile under Clang (-Werror=thread-safety): a PTLDB_GUARDED_BY
// field is written without holding its mutex. Expected diagnostic: writing
// variable 'count_' requires holding mutex 'mu_' exclusively.

#include "common/thread_annotations.h"

namespace ptldb {

class Counter {
 public:
  void Increment() {
    ++count_;  // BAD: mu_ not held.
  }

 private:
  Mutex mu_;
  int count_ PTLDB_GUARDED_BY(mu_) = 0;
};

}  // namespace ptldb
