// MUST NOT COMPILE: a bare integer is not an EventTime. The typed time
// algebra (common/time_types.h) makes construction explicit so a seconds
// count can never silently flow into a time-typed slot — the implicit
// int-everywhere regime is what allowed the stored/compute width mixups.
#include "common/time_types.h"

ptldb::EventTime F() {
  ptldb::EventTime t = 36000;  // error: constructor is explicit
  return t;
}
