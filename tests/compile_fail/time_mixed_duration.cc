// MUST NOT COMPILE: EventTime and Duration are distinct types; comparing
// a point in time against a span (or assigning one to the other) is a
// category error the old int-everywhere code could not catch.
#include "common/time_types.h"

bool F(ptldb::EventTime t, ptldb::Duration d) {
  return t < d;  // error: no operator<(EventTime, Duration)
}
