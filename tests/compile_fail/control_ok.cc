// Positive control: this snippet exercises the same APIs the WILL_FAIL
// snippets misuse, but correctly, and must COMPILE under the union of all
// enforcement flags. If this one breaks, the suite's include paths or flags
// are wrong and every "expected failure" next door is meaningless.

#include <utility>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace ptldb {
namespace {

Status Flush() { return Status::Ok(); }
Result<int> Parse() { return 42; }

class Counter {
 public:
  void Increment() {
    MutexLock lock(mu_);
    ++count_;
  }
  int Get() const {
    MutexLock lock(mu_);
    return count_;
  }

 private:
  mutable Mutex mu_;
  int count_ PTLDB_GUARDED_BY(mu_) = 0;
};

int UseEverything() {
  const Status s = Flush();
  if (!s.ok()) return -1;
  PTLDB_IGNORE_STATUS(Flush());  // Sanctioned, searchable drop.
  Result<int> r = Parse();
  if (!r.ok()) return -1;
  Counter c;
  c.Increment();
  return c.Get() + std::move(r).value();
}

}  // namespace
}  // namespace ptldb

int main() { return ptldb::UseEverything() > 0 ? 0 : 1; }
