// MUST NOT COMPILE: an EventTime does not convert to the 32-bit stored
// width, implicitly or via static_cast — there is no conversion operator.
// Narrowing goes through the checked boundary functions (ToStoredTime,
// SaturatingToStoredTime), which fault or saturate instead of truncating.
#include <cstdint>

#include "common/time_types.h"

int32_t F(ptldb::EventTime t) {
  return static_cast<int32_t>(t);  // error: no conversion to int32_t
}
