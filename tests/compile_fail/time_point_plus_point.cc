// MUST NOT COMPILE: the time algebra is affine. Adding two points in time
// is meaningless (what is 08:00 + 09:00?); only point+duration,
// point-point (= duration) and duration arithmetic exist. The operator
// set in common/time_types.h deliberately omits EventTime + EventTime.
#include "common/time_types.h"

ptldb::EventTime F(ptldb::EventTime a, ptldb::EventTime b) {
  return a + b;  // error: no operator+(EventTime, EventTime)
}
