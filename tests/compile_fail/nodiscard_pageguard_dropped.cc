// Must NOT compile (-Werror=unused-result): a PageGuard return is dropped,
// which pins and immediately unpins the page — always a bug (the caller
// wanted the page, or shouldn't have fetched it). Expected diagnostic:
// ignoring returned value of type 'PageGuard' declared with attribute
// 'nodiscard'.

#include "engine/buffer_pool.h"

namespace ptldb {

PageGuard AcquireHeader();

void Caller() {
  AcquireHeader();  // BAD: guard discarded — pin dropped on the same line.
}

}  // namespace ptldb
