// Must NOT compile (-Werror=unused-result): a Status return is dropped on
// the floor. Expected diagnostic: ignoring returned value of type 'Status'
// declared with attribute 'nodiscard'. The fix is to check .ok() or use
// PTLDB_IGNORE_STATUS for an intentional drop.

#include "common/status.h"

namespace ptldb {

Status Flush();

void Caller() {
  Flush();  // BAD: Status discarded.
}

}  // namespace ptldb
