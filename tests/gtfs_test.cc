#include <gtest/gtest.h>

#include <filesystem>
#include <map>

#include "common/csv.h"
#include "timetable/example_graph.h"
#include "timetable/gtfs.h"
#include "timetable/gtfs_writer.h"

#include "test_time.h"

namespace ptldb {
namespace {

namespace fs = std::filesystem;

class GtfsTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(testing::TempDir()) /
           ("gtfs_" + std::string(
                          testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  void WriteFile(const std::string& name, const std::string& content) {
    ASSERT_TRUE(WriteStringToFile((dir_ / name).string(), content).ok());
  }

  void WriteBasicFeed() {
    WriteFile("stops.txt",
              "stop_id,stop_name,stop_lat,stop_lon\n"
              "A,\"Alpha, Central\",1.0,2.0\n"
              "B,Beta,1.5,2.5\n"
              "C,Gamma,2.0,3.0\n");
    WriteFile("trips.txt",
              "route_id,service_id,trip_id\n"
              "R1,WK,T1\n"
              "R1,WE,T2\n");
    WriteFile("stop_times.txt",
              "trip_id,arrival_time,departure_time,stop_id,stop_sequence\n"
              "T1,08:00:00,08:00:00,A,1\n"
              "T1,08:10:00,08:11:00,B,2\n"
              "T1,08:20:00,08:20:00,C,3\n"
              "T2,09:00:00,09:00:00,C,1\n"
              "T2,09:15:00,09:15:00,A,2\n");
    WriteFile("calendar.txt",
              "service_id,monday,tuesday,wednesday,thursday,friday,saturday,"
              "sunday,start_date,end_date\n"
              "WK,1,1,1,1,1,0,0,20260101,20261231\n"
              "WE,0,0,0,0,0,1,1,20260101,20261231\n");
  }

  fs::path dir_;
};

TEST_F(GtfsTest, LoadsWeekdayService) {
  WriteBasicFeed();
  const auto feed = LoadGtfs(dir_.string(), {.weekday = Weekday::kTuesday});
  ASSERT_TRUE(feed.ok()) << feed.status().ToString();
  EXPECT_EQ(feed->timetable.num_stops(), 3u);
  // Only T1 runs on Tuesday.
  EXPECT_EQ(feed->timetable.num_trips(), 1u);
  EXPECT_EQ(feed->timetable.num_connections(), 2u);
  EXPECT_EQ(feed->skipped_trips, 1u);

  const StopId a = feed->stop_index.at("A");
  const StopId b = feed->stop_index.at("B");
  const StopId c = feed->stop_index.at("C");
  const Connection& first = feed->timetable.connection(0);
  EXPECT_EQ(first.from, a);
  EXPECT_EQ(first.to, b);
  EXPECT_EQ(first.dep, TSec(8 * 3600));
  EXPECT_EQ(first.arr, TSec(8 * 3600 + 600));
  const Connection& second = feed->timetable.connection(1);
  EXPECT_EQ(second.from, b);
  EXPECT_EQ(second.to, c);
  // Departure uses the dwell-adjusted departure_time of the middle stop.
  EXPECT_EQ(second.dep, TSec(8 * 3600 + 660));
  EXPECT_EQ(second.arr, TSec(8 * 3600 + 1200));
  EXPECT_EQ(feed->timetable.stop(a).name, "Alpha, Central");
}

TEST_F(GtfsTest, WeekendServiceSelectsOtherTrip) {
  WriteBasicFeed();
  const auto feed = LoadGtfs(dir_.string(), {.weekday = Weekday::kSaturday});
  ASSERT_TRUE(feed.ok());
  EXPECT_EQ(feed->timetable.num_connections(), 1u);  // T2: C -> A.
  const Connection& c = feed->timetable.connection(0);
  EXPECT_EQ(c.from, feed->stop_index.at("C"));
  EXPECT_EQ(c.to, feed->stop_index.at("A"));
}

TEST_F(GtfsTest, NoCalendarKeepsAllTrips) {
  WriteBasicFeed();
  fs::remove(dir_ / "calendar.txt");
  const auto feed = LoadGtfs(dir_.string());
  ASSERT_TRUE(feed.ok());
  EXPECT_EQ(feed->timetable.num_trips(), 2u);
  EXPECT_EQ(feed->timetable.num_connections(), 3u);
}

TEST_F(GtfsTest, ExpandsFrequencies) {
  WriteBasicFeed();
  // T1 every 30 min from 06:00 to 08:00 -> 4 instances of 2 connections.
  WriteFile("frequencies.txt",
            "trip_id,start_time,end_time,headway_secs\n"
            "T1,06:00:00,08:00:00,1800\n");
  const auto feed = LoadGtfs(dir_.string(), {.weekday = Weekday::kMonday});
  ASSERT_TRUE(feed.ok());
  EXPECT_EQ(feed->timetable.num_trips(), 4u);
  EXPECT_EQ(feed->timetable.num_connections(), 8u);
  EXPECT_EQ(feed->timetable.connection(0).dep, TSec(6 * 3600));
}

TEST_F(GtfsTest, DropsNonPositiveDurationsWhenAsked) {
  WriteBasicFeed();
  WriteFile("stop_times.txt",
            "trip_id,arrival_time,departure_time,stop_id,stop_sequence\n"
            "T1,08:00:00,08:00:00,A,1\n"
            "T1,08:00:00,08:10:00,B,2\n"  // Zero-duration hop A->B.
            "T1,08:20:00,08:20:00,C,3\n");
  const auto feed = LoadGtfs(dir_.string(), {.weekday = Weekday::kMonday});
  ASSERT_TRUE(feed.ok());
  EXPECT_EQ(feed->dropped_connections, 1u);
  EXPECT_EQ(feed->timetable.num_connections(), 1u);

  GtfsOptions strict;
  strict.weekday = Weekday::kMonday;
  strict.drop_non_positive_durations = false;
  EXPECT_FALSE(LoadGtfs(dir_.string(), strict).ok());
}

TEST_F(GtfsTest, MissingFilesFail) {
  EXPECT_FALSE(LoadGtfs(dir_.string()).ok());
}

TEST_F(GtfsTest, RejectsUnknownStopInStopTimes) {
  WriteBasicFeed();
  WriteFile("stop_times.txt",
            "trip_id,arrival_time,departure_time,stop_id,stop_sequence\n"
            "T1,08:00:00,08:00:00,A,1\n"
            "T1,08:10:00,08:10:00,ZZZ,2\n");
  EXPECT_FALSE(LoadGtfs(dir_.string()).ok());
}

TEST_F(GtfsTest, RejectsDuplicateStopIds) {
  WriteBasicFeed();
  WriteFile("stops.txt",
            "stop_id,stop_name,stop_lat,stop_lon\nA,x,0,0\nA,y,0,0\n");
  EXPECT_FALSE(LoadGtfs(dir_.string()).ok());
}

TEST_F(GtfsTest, StopSequenceOrderIndependentOfFileOrder) {
  WriteBasicFeed();
  // Same T1 stop_times, shuffled rows.
  WriteFile("stop_times.txt",
            "trip_id,arrival_time,departure_time,stop_id,stop_sequence\n"
            "T1,08:20:00,08:20:00,C,3\n"
            "T1,08:00:00,08:00:00,A,1\n"
            "T1,08:10:00,08:11:00,B,2\n");
  const auto feed = LoadGtfs(dir_.string(), {.weekday = Weekday::kMonday});
  ASSERT_TRUE(feed.ok());
  EXPECT_EQ(feed->timetable.num_connections(), 2u);
  EXPECT_EQ(feed->timetable.connection(0).from, feed->stop_index.at("A"));
}

TEST_F(GtfsTest, QuotedAndEscapedCsvFields) {
  WriteBasicFeed();
  // Embedded commas, escaped quotes ("" inside a quoted field), quoted
  // numeric fields, and CRLF line endings must all survive the CSV layer.
  WriteFile("stops.txt",
            "stop_id,stop_name,stop_lat,stop_lon\r\n"
            "A,\"Main St, \"\"Central\"\"\",\"1.0\",2.0\r\n"
            "B,\"Beta\",1.5,2.5\r\n"
            "C,Gamma,2.0,3.0\r\n");
  const auto feed = LoadGtfs(dir_.string(), {.weekday = Weekday::kMonday});
  ASSERT_TRUE(feed.ok()) << feed.status().ToString();
  const StopId a = feed->stop_index.at("A");
  EXPECT_EQ(feed->timetable.stop(a).name, "Main St, \"Central\"");
  EXPECT_EQ(feed->timetable.stop(a).lat, 1.0);
  EXPECT_EQ(feed->timetable.stop(feed->stop_index.at("B")).name, "Beta");
  EXPECT_EQ(feed->timetable.num_connections(), 2u);

  // A stray quote inside an unquoted field is a parse error, not silent
  // data corruption.
  WriteFile("stops.txt",
            "stop_id,stop_name\nA,Ma\"in\nB,Beta\nC,Gamma\n");
  EXPECT_FALSE(LoadGtfs(dir_.string(), {.weekday = Weekday::kMonday}).ok());
}

TEST_F(GtfsTest, MissingOptionalColumnsTolerated) {
  WriteBasicFeed();
  // stops.txt with only the required stop_id column: names default to empty
  // and coordinates to 0.
  WriteFile("stops.txt", "stop_id\nA\nB\nC\n");
  // stop_times.txt without departure_time: departure falls back to arrival.
  WriteFile("stop_times.txt",
            "trip_id,arrival_time,stop_id,stop_sequence\n"
            "T1,08:00:00,A,1\n"
            "T1,08:10:00,B,2\n"
            "T1,08:20:00,C,3\n"
            "T2,09:00:00,C,1\n"
            "T2,09:15:00,A,2\n");
  const auto feed = LoadGtfs(dir_.string(), {.weekday = Weekday::kMonday});
  ASSERT_TRUE(feed.ok()) << feed.status().ToString();
  const StopId a = feed->stop_index.at("A");
  EXPECT_EQ(feed->timetable.stop(a).name, "");
  EXPECT_EQ(feed->timetable.stop(a).lat, 0.0);
  ASSERT_EQ(feed->timetable.num_connections(), 2u);
  // Without departure_time the middle stop has no dwell: dep == arrival.
  EXPECT_EQ(feed->timetable.connection(1).dep, TSec(8 * 3600 + 600));
}

TEST_F(GtfsTest, OvernightTripsPastMidnight) {
  WriteBasicFeed();
  // GTFS times beyond 24:00:00 denote the service day running past
  // midnight; they must parse as monotonically increasing seconds.
  WriteFile("stop_times.txt",
            "trip_id,arrival_time,departure_time,stop_id,stop_sequence\n"
            "T1,23:50:00,23:50:00,A,1\n"
            "T1,24:10:00,24:12:00,B,2\n"
            "T1,25:30:00,25:30:00,C,3\n");
  const auto feed = LoadGtfs(dir_.string(), {.weekday = Weekday::kMonday});
  ASSERT_TRUE(feed.ok()) << feed.status().ToString();
  ASSERT_EQ(feed->timetable.num_connections(), 2u);
  const Connection& first = feed->timetable.connection(0);
  EXPECT_EQ(first.dep, TSec(23 * 3600 + 50 * 60));
  EXPECT_EQ(first.arr, TSec(24 * 3600 + 10 * 60));
  const Connection& second = feed->timetable.connection(1);
  EXPECT_EQ(second.dep, TSec(24 * 3600 + 12 * 60));
  EXPECT_EQ(second.arr, TSec(25 * 3600 + 30 * 60));
  EXPECT_EQ(feed->dropped_connections, 0u);
}

TEST_F(GtfsTest, CalendarDatesRemovesServiceOnDate) {
  WriteBasicFeed();
  // 2026-07-06 is a Monday, so WK would normally be active -- but a
  // type-2 exception cancels it (e.g. a public holiday), leaving no trips.
  WriteFile("calendar_dates.txt",
            "service_id,date,exception_type\n"
            "WK,20260706,2\n");
  const auto feed = LoadGtfs(dir_.string(), {.service_date = "20260706"});
  ASSERT_TRUE(feed.ok()) << feed.status().ToString();
  EXPECT_EQ(feed->timetable.num_trips(), 0u);
  EXPECT_EQ(feed->timetable.num_connections(), 0u);
  EXPECT_EQ(feed->skipped_trips, 2u);

  // The same date without the exception file selects the weekday trip.
  fs::remove(dir_ / "calendar_dates.txt");
  const auto plain = LoadGtfs(dir_.string(), {.service_date = "20260706"});
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->timetable.num_trips(), 1u);
  EXPECT_EQ(plain->skipped_trips, 1u);
}

TEST_F(GtfsTest, CalendarDatesAddsServiceOnDate) {
  WriteBasicFeed();
  // A type-1 exception runs the weekend service WE on a Monday too.
  WriteFile("calendar_dates.txt",
            "service_id,date,exception_type\n"
            "WE,20260706,1\n");
  const auto feed = LoadGtfs(dir_.string(), {.service_date = "20260706"});
  ASSERT_TRUE(feed.ok()) << feed.status().ToString();
  EXPECT_EQ(feed->timetable.num_trips(), 2u);
  EXPECT_EQ(feed->skipped_trips, 0u);
}

TEST_F(GtfsTest, CalendarDatesAloneDefinesServices) {
  WriteBasicFeed();
  // Feeds may omit calendar.txt entirely and enumerate service days via
  // calendar_dates.txt only.
  fs::remove(dir_ / "calendar.txt");
  WriteFile("calendar_dates.txt",
            "service_id,date,exception_type\n"
            "WK,20260706,1\n"
            "WE,20260707,1\n");
  const auto feed = LoadGtfs(dir_.string(), {.service_date = "20260706"});
  ASSERT_TRUE(feed.ok()) << feed.status().ToString();
  EXPECT_EQ(feed->timetable.num_trips(), 1u);  // Only WK's trip T1.
  EXPECT_EQ(feed->timetable.num_connections(), 2u);
  EXPECT_EQ(feed->skipped_trips, 1u);
}

TEST_F(GtfsTest, ServiceDateOutsideCalendarWindowIsInactive) {
  WriteBasicFeed();
  // 2027-01-04 is a Monday but falls outside WK's end_date of 2026-12-31.
  const auto feed = LoadGtfs(dir_.string(), {.service_date = "20270104"});
  ASSERT_TRUE(feed.ok()) << feed.status().ToString();
  EXPECT_EQ(feed->timetable.num_trips(), 0u);
  EXPECT_EQ(feed->skipped_trips, 2u);
}

TEST_F(GtfsTest, ServiceDateDerivesWeekday) {
  WriteBasicFeed();
  // 2026-07-11 is a Saturday: the date alone must select the WE trip.
  const auto feed = LoadGtfs(dir_.string(), {.service_date = "20260711"});
  ASSERT_TRUE(feed.ok()) << feed.status().ToString();
  ASSERT_EQ(feed->timetable.num_connections(), 1u);
  EXPECT_EQ(feed->timetable.connection(0).from, feed->stop_index.at("C"));
}

TEST_F(GtfsTest, RejectsMalformedServiceDateAndExceptionType) {
  WriteBasicFeed();
  EXPECT_FALSE(LoadGtfs(dir_.string(), {.service_date = "2026-07-06"}).ok());
  EXPECT_FALSE(LoadGtfs(dir_.string(), {.service_date = "20261332"}).ok());
  WriteFile("calendar_dates.txt",
            "service_id,date,exception_type\n"
            "WK,20260706,3\n");
  EXPECT_FALSE(LoadGtfs(dir_.string(), {.service_date = "20260706"}).ok());
  // Without a service_date the bad exception file is ignored entirely.
  EXPECT_TRUE(LoadGtfs(dir_.string(), {.weekday = Weekday::kMonday}).ok());
}

TEST_F(GtfsTest, WriterRoundTripPreservesConnections) {
  const Timetable original = MakeExampleTimetable();
  ASSERT_TRUE(WriteGtfs(original, dir_.string()).ok());
  const auto feed = LoadGtfs(dir_.string());
  ASSERT_TRUE(feed.ok()) << feed.status().ToString();
  ASSERT_EQ(feed->timetable.num_stops(), original.num_stops());
  ASSERT_EQ(feed->timetable.num_connections(), original.num_connections());
  // Trip ids may differ (branching trips are split into linear GTFS trips);
  // compare the connection multiset modulo trip ids, mapping stop ids back.
  using Key = std::tuple<StopId, StopId, EventTime, EventTime>;
  std::map<Key, int> want;
  std::map<Key, int> got;
  for (const Connection& c : original.connections()) {
    want[{c.from, c.to, c.dep, c.arr}]++;
  }
  // The writer names stops "S<dense id>" and lists them in id order, so the
  // loader reassigns the same dense ids; verify that, then compare directly.
  EXPECT_EQ(feed->stop_index.at("S3"), 3u);
  for (const Connection& c : feed->timetable.connections()) {
    got[{c.from, c.to, c.dep, c.arr}]++;
  }
  EXPECT_EQ(want, got);
}

}  // namespace
}  // namespace ptldb
