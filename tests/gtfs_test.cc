#include <gtest/gtest.h>

#include <filesystem>
#include <map>

#include "common/csv.h"
#include "timetable/example_graph.h"
#include "timetable/gtfs.h"
#include "timetable/gtfs_writer.h"

namespace ptldb {
namespace {

namespace fs = std::filesystem;

class GtfsTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(testing::TempDir()) /
           ("gtfs_" + std::string(
                          testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  void WriteFile(const std::string& name, const std::string& content) {
    ASSERT_TRUE(WriteStringToFile((dir_ / name).string(), content).ok());
  }

  void WriteBasicFeed() {
    WriteFile("stops.txt",
              "stop_id,stop_name,stop_lat,stop_lon\n"
              "A,\"Alpha, Central\",1.0,2.0\n"
              "B,Beta,1.5,2.5\n"
              "C,Gamma,2.0,3.0\n");
    WriteFile("trips.txt",
              "route_id,service_id,trip_id\n"
              "R1,WK,T1\n"
              "R1,WE,T2\n");
    WriteFile("stop_times.txt",
              "trip_id,arrival_time,departure_time,stop_id,stop_sequence\n"
              "T1,08:00:00,08:00:00,A,1\n"
              "T1,08:10:00,08:11:00,B,2\n"
              "T1,08:20:00,08:20:00,C,3\n"
              "T2,09:00:00,09:00:00,C,1\n"
              "T2,09:15:00,09:15:00,A,2\n");
    WriteFile("calendar.txt",
              "service_id,monday,tuesday,wednesday,thursday,friday,saturday,"
              "sunday,start_date,end_date\n"
              "WK,1,1,1,1,1,0,0,20260101,20261231\n"
              "WE,0,0,0,0,0,1,1,20260101,20261231\n");
  }

  fs::path dir_;
};

TEST_F(GtfsTest, LoadsWeekdayService) {
  WriteBasicFeed();
  const auto feed = LoadGtfs(dir_.string(), {.weekday = Weekday::kTuesday});
  ASSERT_TRUE(feed.ok()) << feed.status().ToString();
  EXPECT_EQ(feed->timetable.num_stops(), 3u);
  // Only T1 runs on Tuesday.
  EXPECT_EQ(feed->timetable.num_trips(), 1u);
  EXPECT_EQ(feed->timetable.num_connections(), 2u);
  EXPECT_EQ(feed->skipped_trips, 1u);

  const StopId a = feed->stop_index.at("A");
  const StopId b = feed->stop_index.at("B");
  const StopId c = feed->stop_index.at("C");
  const Connection& first = feed->timetable.connection(0);
  EXPECT_EQ(first.from, a);
  EXPECT_EQ(first.to, b);
  EXPECT_EQ(first.dep, 8 * 3600);
  EXPECT_EQ(first.arr, 8 * 3600 + 600);
  const Connection& second = feed->timetable.connection(1);
  EXPECT_EQ(second.from, b);
  EXPECT_EQ(second.to, c);
  // Departure uses the dwell-adjusted departure_time of the middle stop.
  EXPECT_EQ(second.dep, 8 * 3600 + 660);
  EXPECT_EQ(second.arr, 8 * 3600 + 1200);
  EXPECT_EQ(feed->timetable.stop(a).name, "Alpha, Central");
}

TEST_F(GtfsTest, WeekendServiceSelectsOtherTrip) {
  WriteBasicFeed();
  const auto feed = LoadGtfs(dir_.string(), {.weekday = Weekday::kSaturday});
  ASSERT_TRUE(feed.ok());
  EXPECT_EQ(feed->timetable.num_connections(), 1u);  // T2: C -> A.
  const Connection& c = feed->timetable.connection(0);
  EXPECT_EQ(c.from, feed->stop_index.at("C"));
  EXPECT_EQ(c.to, feed->stop_index.at("A"));
}

TEST_F(GtfsTest, NoCalendarKeepsAllTrips) {
  WriteBasicFeed();
  fs::remove(dir_ / "calendar.txt");
  const auto feed = LoadGtfs(dir_.string());
  ASSERT_TRUE(feed.ok());
  EXPECT_EQ(feed->timetable.num_trips(), 2u);
  EXPECT_EQ(feed->timetable.num_connections(), 3u);
}

TEST_F(GtfsTest, ExpandsFrequencies) {
  WriteBasicFeed();
  // T1 every 30 min from 06:00 to 08:00 -> 4 instances of 2 connections.
  WriteFile("frequencies.txt",
            "trip_id,start_time,end_time,headway_secs\n"
            "T1,06:00:00,08:00:00,1800\n");
  const auto feed = LoadGtfs(dir_.string(), {.weekday = Weekday::kMonday});
  ASSERT_TRUE(feed.ok());
  EXPECT_EQ(feed->timetable.num_trips(), 4u);
  EXPECT_EQ(feed->timetable.num_connections(), 8u);
  EXPECT_EQ(feed->timetable.connection(0).dep, 6 * 3600);
}

TEST_F(GtfsTest, DropsNonPositiveDurationsWhenAsked) {
  WriteBasicFeed();
  WriteFile("stop_times.txt",
            "trip_id,arrival_time,departure_time,stop_id,stop_sequence\n"
            "T1,08:00:00,08:00:00,A,1\n"
            "T1,08:00:00,08:10:00,B,2\n"  // Zero-duration hop A->B.
            "T1,08:20:00,08:20:00,C,3\n");
  const auto feed = LoadGtfs(dir_.string(), {.weekday = Weekday::kMonday});
  ASSERT_TRUE(feed.ok());
  EXPECT_EQ(feed->dropped_connections, 1u);
  EXPECT_EQ(feed->timetable.num_connections(), 1u);

  GtfsOptions strict;
  strict.weekday = Weekday::kMonday;
  strict.drop_non_positive_durations = false;
  EXPECT_FALSE(LoadGtfs(dir_.string(), strict).ok());
}

TEST_F(GtfsTest, MissingFilesFail) {
  EXPECT_FALSE(LoadGtfs(dir_.string()).ok());
}

TEST_F(GtfsTest, RejectsUnknownStopInStopTimes) {
  WriteBasicFeed();
  WriteFile("stop_times.txt",
            "trip_id,arrival_time,departure_time,stop_id,stop_sequence\n"
            "T1,08:00:00,08:00:00,A,1\n"
            "T1,08:10:00,08:10:00,ZZZ,2\n");
  EXPECT_FALSE(LoadGtfs(dir_.string()).ok());
}

TEST_F(GtfsTest, RejectsDuplicateStopIds) {
  WriteBasicFeed();
  WriteFile("stops.txt",
            "stop_id,stop_name,stop_lat,stop_lon\nA,x,0,0\nA,y,0,0\n");
  EXPECT_FALSE(LoadGtfs(dir_.string()).ok());
}

TEST_F(GtfsTest, StopSequenceOrderIndependentOfFileOrder) {
  WriteBasicFeed();
  // Same T1 stop_times, shuffled rows.
  WriteFile("stop_times.txt",
            "trip_id,arrival_time,departure_time,stop_id,stop_sequence\n"
            "T1,08:20:00,08:20:00,C,3\n"
            "T1,08:00:00,08:00:00,A,1\n"
            "T1,08:10:00,08:11:00,B,2\n");
  const auto feed = LoadGtfs(dir_.string(), {.weekday = Weekday::kMonday});
  ASSERT_TRUE(feed.ok());
  EXPECT_EQ(feed->timetable.num_connections(), 2u);
  EXPECT_EQ(feed->timetable.connection(0).from, feed->stop_index.at("A"));
}

TEST_F(GtfsTest, WriterRoundTripPreservesConnections) {
  const Timetable original = MakeExampleTimetable();
  ASSERT_TRUE(WriteGtfs(original, dir_.string()).ok());
  const auto feed = LoadGtfs(dir_.string());
  ASSERT_TRUE(feed.ok()) << feed.status().ToString();
  ASSERT_EQ(feed->timetable.num_stops(), original.num_stops());
  ASSERT_EQ(feed->timetable.num_connections(), original.num_connections());
  // Trip ids may differ (branching trips are split into linear GTFS trips);
  // compare the connection multiset modulo trip ids, mapping stop ids back.
  using Key = std::tuple<StopId, StopId, Timestamp, Timestamp>;
  std::map<Key, int> want;
  std::map<Key, int> got;
  for (const Connection& c : original.connections()) {
    want[{c.from, c.to, c.dep, c.arr}]++;
  }
  // The writer names stops "S<dense id>" and lists them in id order, so the
  // loader reassigns the same dense ids; verify that, then compare directly.
  EXPECT_EQ(feed->stop_index.at("S3"), 3u);
  for (const Connection& c : feed->timetable.connections()) {
    got[{c.from, c.to, c.dep, c.arr}]++;
  }
  EXPECT_EQ(want, got);
}

}  // namespace
}  // namespace ptldb
