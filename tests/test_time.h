#ifndef PTLDB_TESTS_TEST_TIME_H_
#define PTLDB_TESTS_TEST_TIME_H_

#include <cstdint>
#include <ostream>

#include "common/time_types.h"

namespace ptldb {

/// Test shorthand: the suites spell hundreds of literal clock times, and
/// `TSec(36000)` keeps expectations readable while construction stays
/// explicit everywhere else (see common/time_types.h).
constexpr EventTime TSec(int64_t seconds) {
  return EventTime::FromSeconds(seconds);
}

constexpr Duration DSec(int64_t seconds) {
  return Duration::FromSeconds(seconds);
}

/// gtest failure messages print the raw second counts.
inline std::ostream& operator<<(std::ostream& os, EventTime t) {
  return os << t.raw_seconds() << "s";
}
inline std::ostream& operator<<(std::ostream& os, Duration d) {
  return os << d.raw_seconds() << "s";
}

}  // namespace ptldb

#endif  // PTLDB_TESTS_TEST_TIME_H_
