#include <gtest/gtest.h>

#include "common/rng.h"
#include "pgsql/sql_writer.h"
#include "ptldb/ptldb.h"
#include "sql/interpreter.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/system_tables.h"
#include "timetable/example_graph.h"
#include "timetable/generator.h"
#include "ttl/builder.h"

#include "test_time.h"

namespace ptldb {
namespace {

// ---------- Lexer ----------

TEST(SqlLexerTest, TokenizesBasics) {
  const auto tokens = LexSql("SELECT v, hubs[1:$2] FROM lout WHERE v >= 10");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 10u);
  EXPECT_EQ((*tokens)[0].kind, SqlTokenKind::kKeyword);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].text, "v");
  EXPECT_EQ((*tokens)[1].kind, SqlTokenKind::kIdentifier);
}

TEST(SqlLexerTest, CaseFolding) {
  const auto tokens = LexSql("select LOUT Where");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "SELECT");   // Keywords upper-cased.
  EXPECT_EQ((*tokens)[1].text, "lout");     // Identifiers lower-cased.
  EXPECT_EQ((*tokens)[2].text, "WHERE");
}

TEST(SqlLexerTest, CommentsAndOperators) {
  const auto tokens = LexSql("a <= b -- trailing\n/* block */ c <> d");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].kind, SqlTokenKind::kLe);
  EXPECT_EQ((*tokens)[4].kind, SqlTokenKind::kNe);
}

TEST(SqlLexerTest, RejectsJunk) {
  EXPECT_FALSE(LexSql("SELECT #").ok());
  EXPECT_FALSE(LexSql("$x").ok());
  EXPECT_FALSE(LexSql("/* open").ok());
}

// ---------- Parser ----------

TEST(SqlParserTest, ParsesSimpleSelect) {
  const auto select =
      ParseSqlSelect("SELECT v, hubs FROM lout WHERE v = $1;");
  ASSERT_TRUE(select.ok()) << select.status().ToString();
  EXPECT_EQ((*select)->items.size(), 2u);
  EXPECT_EQ((*select)->from.size(), 1u);
  EXPECT_EQ((*select)->from[0].table, "lout");
  ASSERT_NE((*select)->where, nullptr);
  EXPECT_EQ((*select)->where->op, SqlBinaryOp::kEq);
}

TEST(SqlParserTest, ParsesCtesAndUnion) {
  const auto select = ParseSqlSelect(
      "WITH a AS (SELECT 1 AS x), b AS (SELECT 2 AS x) "
      "(SELECT x FROM a) UNION (SELECT x FROM b)");
  ASSERT_TRUE(select.ok()) << select.status().ToString();
  EXPECT_EQ((*select)->ctes.size(), 2u);
  EXPECT_NE((*select)->union_next, nullptr);
}

TEST(SqlParserTest, ParsesAllPaperQueries) {
  for (const std::string sql :
       {V2vSql(V2vKind::kEarliestArrival), V2vSql(V2vKind::kLatestDeparture),
        V2vSql(V2vKind::kShortestDuration), EaKnnNaiveSql("poi"),
        LdKnnNaiveSql("poi"), EaKnnSql("poi"), EaOtmSql("poi"),
        LdKnnSql("poi"), LdOtmSql("poi")}) {
    const auto select = ParseSqlSelect(sql);
    EXPECT_TRUE(select.ok()) << select.status().ToString() << "\n" << sql;
  }
}

TEST(SqlParserTest, PrecedenceAndSlices) {
  const auto select = ParseSqlSelect(
      "SELECT a + b / 2, vs[1:$1] FROM t WHERE x = 1 AND y <= 2 OR z > 3");
  ASSERT_TRUE(select.ok());
  const SqlExpr& where = *(*select)->where;
  EXPECT_EQ(where.op, SqlBinaryOp::kOr);  // OR binds loosest.
  EXPECT_EQ(where.lhs->op, SqlBinaryOp::kAnd);
  const SqlExpr& arith = *(*select)->items[0].expr;
  EXPECT_EQ(arith.op, SqlBinaryOp::kAdd);  // b / 2 groups first.
  EXPECT_EQ((*select)->items[1].expr->kind, SqlExprKind::kSlice);
}

TEST(SqlParserTest, RejectsMalformedStatements) {
  EXPECT_FALSE(ParseSqlSelect("FROM lout").ok());
  EXPECT_FALSE(ParseSqlSelect("SELECT v FROM").ok());
  EXPECT_FALSE(ParseSqlSelect("SELECT v FROM lout WHERE").ok());
  EXPECT_FALSE(ParseSqlSelect("SELECT v FROM (SELECT 1").ok());
  EXPECT_FALSE(ParseSqlSelect("SELECT vs[1] FROM t").ok());  // Not a slice.
  EXPECT_FALSE(ParseSqlSelect("SELECT v FROM lout extra tokens ,").ok());
}

// ---------- Interpreter on hand-made tables ----------

class SqlInterpreterTest : public testing::Test {
 protected:
  SqlInterpreterTest() : db_(DeviceProfile::Ram()) {
    auto table = db_.CreateTable(
        "nums", Schema{{"id", ColumnType::kInt32},
                       {"grp", ColumnType::kInt32},
                       {"arr", ColumnType::kInt32Array}});
    std::vector<std::pair<IndexKey, Row>> rows;
    rows.emplace_back(1, Row{Value(1), Value(10),
                             Value(std::vector<int32_t>{5, 6, 7})});
    rows.emplace_back(2, Row{Value(2), Value(10),
                             Value(std::vector<int32_t>{8})});
    rows.emplace_back(3, Row{Value(3), Value(20),
                             Value(std::vector<int32_t>{})});
    EXPECT_TRUE((*table)->BulkLoad(std::move(rows)).ok());
  }

  SqlRelation Run(const std::string& sql, std::vector<int64_t> params = {}) {
    SqlInterpreter interpreter(&db_);
    auto result = interpreter.Execute(sql, params);
    EXPECT_TRUE(result.ok()) << result.status().ToString() << "\n" << sql;
    return result.ok() ? std::move(*result) : SqlRelation{};
  }

  EngineDatabase db_;
};

TEST_F(SqlInterpreterTest, SelectWithFilterAndParams) {
  const auto rows = Run("SELECT id FROM nums WHERE grp = $1", {10});
  ASSERT_EQ(rows.rows.size(), 2u);
  EXPECT_EQ(std::get<int64_t>(rows.rows[0][0]), 1);
  EXPECT_EQ(std::get<int64_t>(rows.rows[1][0]), 2);
}

TEST_F(SqlInterpreterTest, UnnestExpandsArrays) {
  const auto rows = Run("SELECT id, UNNEST(arr) AS x FROM nums");
  ASSERT_EQ(rows.rows.size(), 4u);  // 3 + 1 + 0 elements.
  EXPECT_EQ(std::get<int64_t>(rows.rows[2][1]), 7);
  EXPECT_EQ(rows.columns[1].name, "x");
}

TEST_F(SqlInterpreterTest, SliceClampsLikePostgres) {
  const auto rows =
      Run("SELECT UNNEST(arr[1:$1]) AS x FROM nums WHERE id = 1", {2});
  ASSERT_EQ(rows.rows.size(), 2u);
  const auto all = Run("SELECT UNNEST(arr[1:99]) AS x FROM nums WHERE id = 1");
  EXPECT_EQ(all.rows.size(), 3u);
}

TEST_F(SqlInterpreterTest, GroupByWithAggregatesAndOrdering) {
  const auto rows = Run(
      "SELECT grp, MIN(id), MAX(id) FROM nums GROUP BY grp "
      "ORDER BY MIN(id) DESC");
  ASSERT_EQ(rows.rows.size(), 2u);
  EXPECT_EQ(std::get<int64_t>(rows.rows[0][0]), 20);
  EXPECT_EQ(std::get<int64_t>(rows.rows[1][1]), 1);
  EXPECT_EQ(std::get<int64_t>(rows.rows[1][2]), 2);
}

TEST_F(SqlInterpreterTest, GlobalAggregateOverEmptyInputIsNull) {
  const auto rows = Run("SELECT MIN(id) FROM nums WHERE id > 100");
  ASSERT_EQ(rows.rows.size(), 1u);
  EXPECT_TRUE(SqlIsNull(rows.rows[0][0]));
}

TEST_F(SqlInterpreterTest, HashJoinOnEquality) {
  const auto rows = Run(
      "SELECT a.id, b.id FROM nums a, nums b "
      "WHERE a.grp = b.grp AND a.id < b.id");
  ASSERT_EQ(rows.rows.size(), 1u);  // Only (1, 2) shares grp 10.
  EXPECT_EQ(std::get<int64_t>(rows.rows[0][0]), 1);
  EXPECT_EQ(std::get<int64_t>(rows.rows[0][1]), 2);
}

TEST_F(SqlInterpreterTest, CteStarExpansionUnionLimit) {
  const auto rows = Run(
      "WITH base AS (SELECT id, grp FROM nums) "
      "SELECT x.* FROM ((SELECT id, grp FROM base WHERE grp = 10) UNION "
      "(SELECT id, grp FROM base)) x ORDER BY id DESC LIMIT 2");
  ASSERT_EQ(rows.rows.size(), 2u);
  EXPECT_EQ(std::get<int64_t>(rows.rows[0][0]), 3);
  EXPECT_EQ(std::get<int64_t>(rows.rows[1][0]), 2);
}

TEST_F(SqlInterpreterTest, UnionDeduplicatesUnionAllKeeps) {
  const auto distinct = Run(
      "(SELECT grp FROM nums) UNION (SELECT grp FROM nums)");
  EXPECT_EQ(distinct.rows.size(), 2u);
  const auto all = Run(
      "(SELECT grp FROM nums) UNION ALL (SELECT grp FROM nums)");
  EXPECT_EQ(all.rows.size(), 6u);
}

TEST_F(SqlInterpreterTest, ArithmeticAndFunctions) {
  const auto rows = Run(
      "SELECT id + 1, id - 1, id / 2, FLOOR(id / 2), LEAST(id, 2), "
      "GREATEST(id, 2) FROM nums WHERE id = 3");
  ASSERT_EQ(rows.rows.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(rows.rows[0][0]), 4);
  EXPECT_EQ(std::get<int64_t>(rows.rows[0][1]), 2);
  EXPECT_EQ(std::get<int64_t>(rows.rows[0][2]), 1);
  EXPECT_EQ(std::get<int64_t>(rows.rows[0][3]), 1);
  EXPECT_EQ(std::get<int64_t>(rows.rows[0][4]), 2);
  EXPECT_EQ(std::get<int64_t>(rows.rows[0][5]), 3);
}

TEST_F(SqlInterpreterTest, ErrorsSurfaceCleanly) {
  SqlInterpreter interpreter(&db_);
  EXPECT_FALSE(interpreter.Execute("SELECT nope FROM nums").ok());
  EXPECT_FALSE(interpreter.Execute("SELECT id FROM missing_table").ok());
  EXPECT_FALSE(interpreter.Execute("SELECT id FROM nums WHERE id = $1").ok());
  EXPECT_FALSE(interpreter.Execute("SELECT UNNEST(id) FROM nums").ok());
  EXPECT_FALSE(interpreter.Execute("SELECT id / 0 FROM nums").ok());
}

// ---------- The paper's literal SQL on the embedded engine ----------

class SqlPaperQueriesTest : public testing::Test {
 protected:
  SqlPaperQueriesTest() {
    GeneratorOptions o;
    o.num_stops = 70;
    o.target_connections = 3200;
    o.min_route_len = 4;
    o.max_route_len = 8;
    o.seed = 1234;
    tt_ = std::move(GenerateNetwork(o)).value();
    index_ = std::move(BuildTtlIndex(tt_)).value();
    PtldbOptions options;
    options.device = DeviceProfile::Ram();
    db_ = std::move(PtldbDatabase::Build(index_, options)).value();
    Rng rng(9);
    targets_ = rng.SampleDistinct(tt_.num_stops(), 10);
    EXPECT_TRUE(db_->AddTargetSet("poi", index_, targets_, 4).ok());
  }

  int64_t ScalarOrDefault(const SqlRelation& relation, int64_t fallback) {
    if (relation.rows.empty() || SqlIsNull(relation.rows[0][0])) {
      return fallback;
    }
    return std::get<int64_t>(relation.rows[0][0]);
  }

  std::vector<StopTimeResult> AsResults(const SqlRelation& relation) {
    std::vector<StopTimeResult> out;
    for (const auto& row : relation.rows) {
      out.push_back(
          {static_cast<StopId>(std::get<int64_t>(row[0])),
           EventTime::FromSeconds(std::get<int64_t>(row[1]))});
    }
    return out;
  }

  Timetable tt_;
  TtlIndex index_;
  std::unique_ptr<PtldbDatabase> db_;
  std::vector<StopId> targets_;
};

TEST_F(SqlPaperQueriesTest, Code1MatchesFacade) {
  SqlInterpreter interpreter(db_->engine());
  Rng rng(41);
  for (int i = 0; i < 40; ++i) {
    const auto s = static_cast<int64_t>(rng.NextBelow(tt_.num_stops()));
    auto g = static_cast<int64_t>(rng.NextBelow(tt_.num_stops()));
    if (g == s) g = (g + 1) % tt_.num_stops();
    const auto t =
        static_cast<int64_t>(rng.NextInRange(tt_.min_time().raw_seconds(),
                                             tt_.max_time().raw_seconds()));
    const auto t_end =
        static_cast<int64_t>(rng.NextInRange(t, tt_.max_time().raw_seconds()));

    auto ea = interpreter.Execute(V2vSql(V2vKind::kEarliestArrival),
                                  {s, g, t});
    ASSERT_TRUE(ea.ok()) << ea.status().ToString();
    EXPECT_EQ(TSec(ScalarOrDefault(*ea, kInfinityTime)),
              *db_->EarliestArrival(static_cast<StopId>(s),
                                    static_cast<StopId>(g), TSec(t)));

    auto ld = interpreter.Execute(V2vSql(V2vKind::kLatestDeparture),
                                  {s, g, t_end});
    ASSERT_TRUE(ld.ok());
    EXPECT_EQ(TSec(ScalarOrDefault(*ld, kNegInfinityTime)),
              *db_->LatestDeparture(static_cast<StopId>(s),
                                    static_cast<StopId>(g), TSec(t_end)));

    auto sd = interpreter.Execute(V2vSql(V2vKind::kShortestDuration),
                                  {s, g, t, t_end});
    ASSERT_TRUE(sd.ok());
    EXPECT_EQ(DSec(ScalarOrDefault(*sd, kInfinityTime)),
              *db_->ShortestDuration(static_cast<StopId>(s),
                                     static_cast<StopId>(g), TSec(t),
                                     TSec(t_end)));
  }
}

TEST_F(SqlPaperQueriesTest, Codes2To4MatchFacade) {
  SqlInterpreter interpreter(db_->engine());
  Rng rng(42);
  const int32_t max_bucket = db_->target_sets()[0].max_bucket;
  for (int i = 0; i < 12; ++i) {
    StopId q = static_cast<StopId>(rng.NextBelow(tt_.num_stops()));
    while (std::find(targets_.begin(), targets_.end(), q) != targets_.end()) {
      q = static_cast<StopId>(rng.NextBelow(tt_.num_stops()));
    }
    const auto t =
        static_cast<int64_t>(rng.NextInRange(tt_.min_time().raw_seconds(),
                                             tt_.max_time().raw_seconds()));
    const int64_t k = 1 + static_cast<int64_t>(rng.NextBelow(4));
    const int64_t arrhour = std::min<int64_t>(t / 3600, max_bucket);

    auto naive = interpreter.Execute(EaKnnNaiveSql("poi"), {q, t, k});
    ASSERT_TRUE(naive.ok()) << naive.status().ToString();
    EXPECT_EQ(AsResults(*naive),
              *db_->EaKnnNaive("poi", q, TSec(t),
                               static_cast<uint32_t>(k)));

    auto ld_naive = interpreter.Execute(LdKnnNaiveSql("poi"), {q, t, k});
    ASSERT_TRUE(ld_naive.ok()) << ld_naive.status().ToString();
    EXPECT_EQ(AsResults(*ld_naive),
              *db_->LdKnnNaive("poi", q, TSec(t),
                               static_cast<uint32_t>(k)));

    auto ea_knn = interpreter.Execute(EaKnnSql("poi"), {q, t, k});
    ASSERT_TRUE(ea_knn.ok()) << ea_knn.status().ToString();
    EXPECT_EQ(AsResults(*ea_knn),
              *db_->EaKnn("poi", q, TSec(t),
                          static_cast<uint32_t>(k)));

    auto ld_knn =
        interpreter.Execute(LdKnnSql("poi"), {q, t, k, arrhour});
    ASSERT_TRUE(ld_knn.ok()) << ld_knn.status().ToString();
    EXPECT_EQ(AsResults(*ld_knn),
              *db_->LdKnn("poi", q, TSec(t),
                          static_cast<uint32_t>(k)));

    auto ea_otm = interpreter.Execute(EaOtmSql("poi"), {q, t});
    ASSERT_TRUE(ea_otm.ok()) << ea_otm.status().ToString();
    EXPECT_EQ(AsResults(*ea_otm),
              *db_->EaOneToMany("poi", q, TSec(t)));

    auto ld_otm = interpreter.Execute(LdOtmSql("poi"), {q, t, arrhour});
    ASSERT_TRUE(ld_otm.ok()) << ld_otm.status().ToString();
    EXPECT_EQ(AsResults(*ld_otm),
              *db_->LdOneToMany("poi", q, TSec(t)));
  }
}

// Unreachable pairs must surface through SQL as NULL, never as the
// engine's kInfinityTime / kNegInfinityTime sentinels pretending to be
// real timestamps.
TEST_F(SqlPaperQueriesTest, UnreachablePairYieldsNullNotSentinel) {
  SqlInterpreter interpreter(db_->engine());
  // Querying at the end of service leaves (almost) every pair unreachable;
  // scan for one the facade reports as such.
  const auto t = tt_.max_time().raw_seconds();
  StopId s = 0;
  StopId g = 1;
  bool found = false;
  for (StopId a = 0; a < tt_.num_stops() && !found; ++a) {
    for (StopId b = 0; b < tt_.num_stops(); ++b) {
      if (a == b) continue;
      if (*db_->EarliestArrival(a, b, TSec(t)) == EventTime::Infinity()) {
        s = a;
        g = b;
        found = true;
        break;
      }
    }
  }
  ASSERT_TRUE(found) << "no unreachable pair in the fixture city";

  const auto expect_null = [&](const SqlRelation& relation, const char* what) {
    ASSERT_LE(relation.rows.size(), 1u) << what;
    if (relation.rows.empty()) return;  // Zero rows is also sentinel-free.
    const SqlValue& cell = relation.rows[0][0];
    EXPECT_TRUE(SqlIsNull(cell)) << what << ": expected NULL";
    if (std::holds_alternative<int64_t>(cell)) {
      const int64_t v = std::get<int64_t>(cell);
      EXPECT_NE(v, kInfinityTime) << what << ": +inf sentinel leaked";
      EXPECT_NE(v, kNegInfinityTime) << what << ": -inf sentinel leaked";
    }
  };

  auto ea = interpreter.Execute(V2vSql(V2vKind::kEarliestArrival),
                                {static_cast<int64_t>(s),
                                 static_cast<int64_t>(g), t});
  ASSERT_TRUE(ea.ok()) << ea.status().ToString();
  expect_null(*ea, "EA unreachable");

  // Nothing can arrive by the very start of service.
  auto ld = interpreter.Execute(V2vSql(V2vKind::kLatestDeparture),
                                {static_cast<int64_t>(s),
                                 static_cast<int64_t>(g),
                                 tt_.min_time().raw_seconds()});
  ASSERT_TRUE(ld.ok()) << ld.status().ToString();
  expect_null(*ld, "LD unreachable");

  auto sd = interpreter.Execute(V2vSql(V2vKind::kShortestDuration),
                                {static_cast<int64_t>(s),
                                 static_cast<int64_t>(g), t, t});
  ASSERT_TRUE(sd.ok()) << sd.status().ToString();
  expect_null(*sd, "SD empty window");
}

TEST_F(SqlPaperQueriesTest, TableAccessIsChargedToTheDevice) {
  // The interpreter reads tables through the engine's buffer pool, so a
  // cold-cache query must account device time just like the hand plans.
  PtldbOptions options;
  options.device = DeviceProfile::Hdd7200();
  auto db = PtldbDatabase::Build(index_, options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->DropCaches().ok());
  (*db)->ResetIoStats();
  SqlInterpreter interpreter((*db)->engine());
  auto result = interpreter.Execute(V2vSql(V2vKind::kEarliestArrival),
                                    {0, 1, tt_.min_time().raw_seconds()});
  ASSERT_TRUE(result.ok());
  EXPECT_GT((*db)->io_time_ns(), 0u);
  EXPECT_GT((*db)->engine()->buffer_pool()->misses(), 0u);
}

// ---------- Golden tests: Codes 1-4 on the Figure-1 example graph ----------

// Runs the literal paper SQL and the src/ptldb physical plans side by side
// on the 7-stop example, so a regression in either layer (or a drift
// between them) is caught with hand-checkable numbers.
class SqlExampleGoldenTest : public testing::Test {
 protected:
  static constexpr uint32_t kKmax = 3;

  SqlExampleGoldenTest() : tt_(MakeExampleTimetable()) {
    TtlBuildOptions options;
    options.custom_order = ExampleVertexOrder();
    index_ = std::move(BuildTtlIndex(tt_, options)).value();
    PtldbOptions popts;
    popts.device = DeviceProfile::Ram();
    db_ = std::move(PtldbDatabase::Build(index_, popts)).value();
    targets_ = {3, 6};
    EXPECT_TRUE(db_->AddTargetSet("poi", index_, targets_, kKmax).ok());
  }

  int64_t Scalar(const SqlRelation& relation, int64_t fallback) {
    if (relation.rows.empty() || SqlIsNull(relation.rows[0][0])) {
      return fallback;
    }
    return std::get<int64_t>(relation.rows[0][0]);
  }

  std::vector<StopTimeResult> Rows(const SqlRelation& relation) {
    std::vector<StopTimeResult> out;
    for (const auto& row : relation.rows) {
      out.push_back({static_cast<StopId>(std::get<int64_t>(row[0])),
                     EventTime::FromSeconds(std::get<int64_t>(row[1]))});
    }
    return out;
  }

  int64_t SqlEa(int64_t s, int64_t g, int64_t t) {
    SqlInterpreter interpreter(db_->engine());
    auto r = interpreter.Execute(V2vSql(V2vKind::kEarliestArrival), {s, g, t});
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? Scalar(*r, kInfinityTime) : kInfinityTime;
  }

  int64_t SqlLd(int64_t s, int64_t g, int64_t t_end) {
    SqlInterpreter interpreter(db_->engine());
    auto r = interpreter.Execute(V2vSql(V2vKind::kLatestDeparture),
                                 {s, g, t_end});
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? Scalar(*r, kNegInfinityTime) : kNegInfinityTime;
  }

  int64_t SqlSd(int64_t s, int64_t g, int64_t t, int64_t t_end) {
    SqlInterpreter interpreter(db_->engine());
    auto r = interpreter.Execute(V2vSql(V2vKind::kShortestDuration),
                                 {s, g, t, t_end});
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? Scalar(*r, kInfinityTime) : kInfinityTime;
  }

  int64_t ArrHour(int64_t t) {
    return std::min<int64_t>(t / 3600, db_->target_sets()[0].max_bucket);
  }

  Timetable tt_;
  TtlIndex index_;
  std::unique_ptr<PtldbDatabase> db_;
  std::vector<StopId> targets_;
};

// Hand-derived journeys on Figure 1 (times are paper values x100):
// trip 1 runs 5->1->0->2->6 and trip 2 runs 6->2->0->1->5, both departing
// 28800 with hops of 3600 s; trip 3 is 3->0 @ 32400; trip 4 is 4->0 @ 32400
// branching onward to 3 and 4 at 36000.
TEST_F(SqlExampleGoldenTest, Code1GoldenJourneys) {
  EXPECT_EQ(SqlEa(5, 6, 28800), 43200u);   // Full ride on trip 1.
  EXPECT_EQ(SqlEa(5, 6, 28801), kInfinityTime);  // Missed the only trip.
  EXPECT_EQ(SqlEa(6, 1, 28800), 39600u);   // Trip 2 prefix.
  EXPECT_EQ(SqlEa(4, 3, 28800), 39600u);   // Trip 4 through hub 0.
  EXPECT_EQ(SqlEa(5, 3, 28800), 39600u);   // Trip 1 to 0, transfer to trip 4.
  EXPECT_EQ(SqlEa(0, 3, 36000), 39600u);   // Single connection.
  EXPECT_EQ(SqlEa(2, 5, 32400), 43200u);   // Trip 2 suffix.
  EXPECT_EQ(SqlEa(1, 1, 32400), 32400u);   // Self query: already there.
  EXPECT_EQ(SqlEa(3, 6, 28800), 43200u);   // Zero-wait transfer at hub 0.

  EXPECT_EQ(SqlLd(5, 6, 43200), 28800u);
  EXPECT_EQ(SqlLd(5, 6, 43199), kNegInfinityTime);
  EXPECT_EQ(SqlLd(4, 3, 86400), 32400u);

  EXPECT_EQ(SqlSd(5, 6, 28800, 43200), 14400u);
  EXPECT_EQ(SqlSd(6, 5, 0, 86400), 14400u);
  EXPECT_EQ(SqlSd(5, 6, 28801, 86400), kInfinityTime);
}

TEST_F(SqlExampleGoldenTest, Code1ExhaustiveMatchesPhysicalPlans) {
  const int64_t times[] = {28799, 28800, 32400, 36000, 39600, 43200, 43201};
  for (StopId s = 0; s < tt_.num_stops(); ++s) {
    for (StopId g = 0; g < tt_.num_stops(); ++g) {
      for (const int64_t t : times) {
        EXPECT_EQ(TSec(SqlEa(s, g, t)),
                  *db_->EarliestArrival(s, g, TSec(t)))
            << "EA(" << s << "," << g << "," << t << ")";
        EXPECT_EQ(TSec(SqlLd(s, g, t)),
                  *db_->LatestDeparture(s, g, TSec(t)))
            << "LD(" << s << "," << g << "," << t << ")";
      }
      EXPECT_EQ(DSec(SqlSd(s, g, 28800, 43200)),
                *db_->ShortestDuration(s, g, TSec(28800), TSec(43200)))
          << "SD(" << s << "," << g << ")";
    }
  }
}

TEST_F(SqlExampleGoldenTest, Codes2And3GoldenKnn) {
  SqlInterpreter interpreter(db_->engine());
  // From stop 5 at 28800, targets {3, 6}: 3 is reached at 39600 (trip 1 to
  // hub 0, trip 4 onward), 6 at 43200 (trip 1 end to end).
  const std::vector<StopTimeResult> want = {{3, TSec(39600)},
                                            {6, TSec(43200)}};
  for (const std::string& sql : {EaKnnNaiveSql("poi"), EaKnnSql("poi")}) {
    auto r = interpreter.Execute(sql, {5, 28800, 2});
    ASSERT_TRUE(r.ok()) << r.status().ToString() << "\n" << sql;
    EXPECT_EQ(Rows(*r), want) << sql;
    auto r1 = interpreter.Execute(sql, {5, 28800, 1});
    ASSERT_TRUE(r1.ok());
    const std::vector<StopTimeResult> want_top1 = {{3, TSec(39600)}};
    EXPECT_EQ(Rows(*r1), want_top1) << sql;
  }
  EXPECT_EQ(*db_->EaKnnNaive("poi", 5, TSec(28800), 2), want);
  EXPECT_EQ(*db_->EaKnn("poi", 5, TSec(28800), 2), want);
}

TEST_F(SqlExampleGoldenTest, Code4GoldenLdKnn) {
  SqlInterpreter interpreter(db_->engine());
  // Arriving by 40000 from stop 5 only target 3 is feasible (dep 28800,
  // arr 39600); target 6 would arrive at 43200.
  const std::vector<StopTimeResult> want = {{3, TSec(28800)}};
  for (const std::string& sql : {LdKnnNaiveSql("poi"), LdKnnSql("poi")}) {
    const bool needs_hour = sql == LdKnnSql("poi");
    auto r = needs_hour
                 ? interpreter.Execute(sql, {5, 40000, 2, ArrHour(40000)})
                 : interpreter.Execute(sql, {5, 40000, 2});
    ASSERT_TRUE(r.ok()) << r.status().ToString() << "\n" << sql;
    EXPECT_EQ(Rows(*r), want) << sql;
  }
  EXPECT_EQ(*db_->LdKnnNaive("poi", 5, TSec(40000), 2), want);
  EXPECT_EQ(*db_->LdKnn("poi", 5, TSec(40000), 2), want);
}

TEST_F(SqlExampleGoldenTest, Codes2To4ExhaustiveMatchPhysicalPlans) {
  SqlInterpreter interpreter(db_->engine());
  const int64_t times[] = {28800, 32400, 36000, 40000};
  for (const StopId q : {0u, 1u, 2u, 4u, 5u}) {  // Non-target stops.
    for (const int64_t t : times) {
      for (int64_t k = 1; k <= kKmax; ++k) {
        auto naive = interpreter.Execute(EaKnnNaiveSql("poi"), {q, t, k});
        ASSERT_TRUE(naive.ok()) << naive.status().ToString();
        EXPECT_EQ(Rows(*naive),
                  *db_->EaKnnNaive("poi", q, TSec(t),
                                   static_cast<uint32_t>(k)));
        auto ld_naive = interpreter.Execute(LdKnnNaiveSql("poi"), {q, t, k});
        ASSERT_TRUE(ld_naive.ok());
        EXPECT_EQ(Rows(*ld_naive),
                  *db_->LdKnnNaive("poi", q, TSec(t),
                                   static_cast<uint32_t>(k)));
        auto ea_knn = interpreter.Execute(EaKnnSql("poi"), {q, t, k});
        ASSERT_TRUE(ea_knn.ok());
        EXPECT_EQ(Rows(*ea_knn),
                  *db_->EaKnn("poi", q, TSec(t),
                              static_cast<uint32_t>(k)));
        auto ld_knn =
            interpreter.Execute(LdKnnSql("poi"), {q, t, k, ArrHour(t)});
        ASSERT_TRUE(ld_knn.ok());
        EXPECT_EQ(Rows(*ld_knn),
                  *db_->LdKnn("poi", q, TSec(t),
                              static_cast<uint32_t>(k)));
      }
      auto ea_otm = interpreter.Execute(EaOtmSql("poi"), {q, t});
      ASSERT_TRUE(ea_otm.ok());
      EXPECT_EQ(Rows(*ea_otm),
                *db_->EaOneToMany("poi", q, TSec(t)));
      auto ld_otm =
          interpreter.Execute(LdOtmSql("poi"), {q, t, ArrHour(t)});
      ASSERT_TRUE(ld_otm.ok());
      EXPECT_EQ(Rows(*ld_otm),
                *db_->LdOneToMany("poi", q, TSec(t)));
    }
  }
}

// ---------- EXPLAIN ANALYZE ----------

uint64_t SpanStat(const QueryTrace::Span& span, const std::string& key) {
  for (const auto& [k, v] : span.stats) {
    if (k == key) return v;
  }
  return 0;
}

const QueryTrace::Span* FindChild(const QueryTrace::Span& span,
                                  const std::string& name) {
  for (const auto& child : span.children) {
    if (child->name == name) return child.get();
  }
  return nullptr;
}

TEST_F(SqlExampleGoldenTest, ExplainAnalyzePrefixReturnsPlanRelation) {
  SqlInterpreter interpreter(db_->engine());
  auto plan = interpreter.Execute(
      "explain analyze " + V2vSql(V2vKind::kEarliestArrival), {5, 6, 28800});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->columns.size(), 1u);
  EXPECT_EQ(plan->columns[0].name, "QUERY PLAN");
  ASSERT_FALSE(plan->rows.empty());
  const std::string first = std::get<std::string>(plan->rows[0][0]);
  EXPECT_NE(first.find("query"), std::string::npos);
  EXPECT_NE(first.find("[time="), std::string::npos);
  // An identifier starting with the keyword must not trigger the prefix.
  EXPECT_FALSE(interpreter.Execute("EXPLAIN ANALYZEX SELECT 1").ok());
}

TEST_F(SqlExampleGoldenTest, ExplainAnalyzeGoldenPlan) {
  SqlInterpreter interpreter(db_->engine());
  QueryTrace trace;
  SqlRelation result;
  auto plan = interpreter.ExplainAnalyze(V2vSql(V2vKind::kEarliestArrival),
                                         {5, 6, 28800}, &trace, &result);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // The traced query still answers: EA(5, 6, 28800) = 43200 on Figure 1.
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(result.rows[0][0]), 43200);
  // Timing-free rendering is deterministic: the Ram device has zero
  // modeled latency (so no ns stats appear) and the operation counts
  // depend only on the fixed example dataset. Each of the 7 stops has one
  // lout and one lin row; the two CTE scans each read a 7-row table and
  // unnest one row's label tuples.
  EXPECT_EQ(
      trace.ToString(false),
      "query\n"
      "  parse\n"
      "  execute  rows=1  pool.hits=40  pool.misses=4  device.reads=4"
      "  index.seeks=2  tuples.scanned=14\n"
      "    cte outp  rows=3  pool.hits=20  pool.misses=2  device.reads=2"
      "  index.seeks=1  tuples.scanned=7\n"
      "      scan lout  rows=7  pool.hits=20  pool.misses=2  device.reads=2"
      "  index.seeks=1  tuples.scanned=7\n"
      "      unnest  rows=3\n"
      "    cte inp  rows=3  pool.hits=20  pool.misses=2  device.reads=2"
      "  index.seeks=1  tuples.scanned=7\n"
      "      scan lin  rows=7  pool.hits=20  pool.misses=2  device.reads=2"
      "  index.seeks=1  tuples.scanned=7\n"
      "      unnest  rows=3\n"
      "    hash join  rows=1\n"
      "    filter  rows=1\n"
      "    aggregate  rows=1\n");
}

TEST_F(SqlExampleGoldenTest, ExplainAnalyzeCountersMatchEngineGroundTruth) {
  // The acceptance bar for the tracer: span counters are captured as
  // begin/end deltas of the engine's own counters, so after a reset the
  // top-level execute span must agree with the ground truth exactly.
  PtldbOptions options;
  options.device = DeviceProfile::Hdd7200();
  auto db = PtldbDatabase::Build(index_, options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->AddTargetSet("poi", index_, targets_, kKmax).ok());
  ASSERT_TRUE((*db)->DropCaches().ok());
  (*db)->ResetIoStats();
  SqlInterpreter interpreter((*db)->engine());
  QueryTrace trace;
  auto plan =
      interpreter.ExplainAnalyze(EaKnnSql("poi"), {5, 28800, 2}, &trace);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const QueryTrace::Span* exec = FindChild(trace.root(), "execute");
  ASSERT_NE(exec, nullptr);
  BufferPool* pool = (*db)->engine()->buffer_pool();
  StorageDevice* device = (*db)->engine()->device();
  EXPECT_EQ(SpanStat(*exec, "pool.hits"), pool->hits());
  EXPECT_EQ(SpanStat(*exec, "pool.misses"), pool->misses());
  EXPECT_EQ(SpanStat(*exec, "device.reads"), device->reads());
  EXPECT_GT(SpanStat(*exec, "pool.misses"), 0u);  // Cold cache: real reads.
  EXPECT_GT(SpanStat(*exec, "device.reads"), 0u);
  EXPECT_GT(SpanStat(*exec, "tuples.scanned"), 0u);
}

TEST_F(SqlExampleGoldenTest, VmStepsSpanStatMatchesEngineCounter) {
  // The compiled VM publishes its step count through one
  // LocalQueryCounters field that Timed() flushes to the exec.vm_steps
  // registry counter and the facade span attaches as "vm.steps". The two
  // views must agree exactly, and the interpreter path must attach no
  // vm.steps stat at all — which is why the golden trace strings above
  // (recorded on interpreter plans) need no vm.steps column.
  Counter* steps = db_->engine()->metrics()->counter("exec.vm_steps");
  db_->set_compiled_queries(true);
  QueryTrace vm_trace;
  db_->set_trace(&vm_trace);
  const uint64_t before_vm = steps->value();
  auto ea = db_->EarliestArrival(5, 6, TSec(28800));
  ASSERT_TRUE(ea.ok());
  EXPECT_EQ(*ea, TSec(43200));
  auto knn = db_->EaKnn("poi", 5, TSec(28800), 2);
  ASSERT_TRUE(knn.ok());
  const uint64_t vm_delta = steps->value() - before_vm;
  EXPECT_GT(vm_delta, 0u);
  const QueryTrace::Span* v2v = FindChild(vm_trace.root(), "v2v_ea");
  const QueryTrace::Span* ea_knn = FindChild(vm_trace.root(), "ea_knn");
  ASSERT_NE(v2v, nullptr);
  ASSERT_NE(ea_knn, nullptr);
  EXPECT_GT(SpanStat(*v2v, "vm.steps"), 0u);
  EXPECT_GT(SpanStat(*ea_knn, "vm.steps"), 0u);
  EXPECT_EQ(SpanStat(*v2v, "vm.steps") + SpanStat(*ea_knn, "vm.steps"),
            vm_delta);

  // Same queries on the interpreter: the counter must not move and the
  // spans must carry no vm.steps stat (only nonzero deltas attach).
  db_->set_compiled_queries(false);
  QueryTrace interp_trace;
  db_->set_trace(&interp_trace);
  const uint64_t before_interp = steps->value();
  ASSERT_TRUE(db_->EarliestArrival(5, 6, TSec(28800)).ok());
  ASSERT_TRUE(db_->EaKnn("poi", 5, TSec(28800), 2).ok());
  EXPECT_EQ(steps->value(), before_interp);
  const QueryTrace::Span* iv2v = FindChild(interp_trace.root(), "v2v_ea");
  ASSERT_NE(iv2v, nullptr);
  EXPECT_EQ(SpanStat(*iv2v, "vm.steps"), 0u);
  db_->set_trace(nullptr);
}

TEST_F(SqlPaperQueriesTest, PaperWorkedExampleViaSql) {
  // EA(1, 1, 324) = 324 on the Figure-1 example, via the literal Code 1.
  const Timetable example = MakeExampleTimetable();
  TtlBuildOptions options;
  options.custom_order = ExampleVertexOrder();
  const auto index = BuildTtlIndex(example, options);
  ASSERT_TRUE(index.ok());
  PtldbOptions popts;
  popts.device = DeviceProfile::Ram();
  auto db = PtldbDatabase::Build(*index, popts);
  ASSERT_TRUE(db.ok());
  SqlInterpreter interpreter((*db)->engine());
  auto result = interpreter.Execute(V2vSql(V2vKind::kEarliestArrival),
                                    {1, 1, 32400});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(result->rows[0][0]), 32400);
}

// ---------- String literals and typed comparisons ----------

TEST(SqlLexerTest, StringLiteralsWithEscapes) {
  const auto tokens = LexSql("SELECT 'poi' , 'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].kind, SqlTokenKind::kString);
  EXPECT_EQ((*tokens)[1].text, "poi");
  EXPECT_EQ((*tokens)[3].kind, SqlTokenKind::kString);
  EXPECT_EQ((*tokens)[3].text, "it's");  // '' unescapes to one quote.
  EXPECT_FALSE(LexSql("SELECT 'unterminated").ok());
}

TEST_F(SqlInterpreterTest, StringComparisonsAreTyped) {
  // String-string comparisons evaluate; string-int mixes are errors, not
  // silent falsehoods.
  const auto rows = Run("SELECT id FROM nums WHERE 'a' = 'a'");
  EXPECT_EQ(rows.rows.size(), 3u);
  EXPECT_TRUE(Run("SELECT id FROM nums WHERE 'a' < 'b'").rows.size() == 3u);
  EXPECT_TRUE(Run("SELECT id FROM nums WHERE 'a' = 'b'").rows.empty());
  SqlInterpreter interpreter(&db_);
  EXPECT_FALSE(interpreter.Execute("SELECT id FROM nums WHERE id = 'a'").ok());
}

// ---------- System tables: the database describes itself ----------

// Goldens on the Figure-1 example: run known queries through the facade,
// then read the self-description back through the SQL front-end. The
// system tables materialize from live state and flow through the normal
// executor, so predicates / projections / ORDER BY must compose.
class SqlSystemTableTest : public testing::Test {
 protected:
  SqlSystemTableTest() : tt_(MakeExampleTimetable()) {
    TtlBuildOptions options;
    options.custom_order = ExampleVertexOrder();
    index_ = std::move(BuildTtlIndex(tt_, options)).value();
    PtldbOptions popts;
    popts.device = DeviceProfile::Ram();
    popts.query_log.sample_every = 0;  // Deterministic retention only.
    db_ = std::move(PtldbDatabase::Build(index_, popts)).value();
    PtldbDatabase* raw = db_.get();
    catalog_ = std::make_unique<SystemTableCatalog>(
        [raw] { return raw->Snapshot(); }, raw->query_log());
  }

  SqlRelation Run(const std::string& sql) {
    SqlInterpreter interpreter(db_->engine());
    interpreter.set_system_tables(catalog_.get());
    auto result = interpreter.Execute(sql);
    EXPECT_TRUE(result.ok()) << result.status().ToString() << "\n" << sql;
    return result.ok() ? std::move(*result) : SqlRelation{};
  }

  Timetable tt_;
  TtlIndex index_;
  std::unique_ptr<PtldbDatabase> db_;
  std::unique_ptr<SystemTableCatalog> catalog_;
};

TEST_F(SqlSystemTableTest, SlowQueriesGoldenRecordForKnownQuery) {
  EXPECT_TRUE(Run("SELECT seq FROM ptldb_slow_queries").rows.empty());
  ASSERT_TRUE(db_->EarliestArrival(5, 6, TSec(28800)).ok());

  const auto rows = Run(
      "SELECT seq, type, outcome, s, g, t, latency_ns FROM "
      "ptldb_slow_queries");
  ASSERT_EQ(rows.rows.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(rows.rows[0][0]), 1);  // First seq.
  EXPECT_EQ(std::get<std::string>(rows.rows[0][1]), "v2v_ea");
  EXPECT_EQ(std::get<std::string>(rows.rows[0][2]), "ok");
  EXPECT_EQ(std::get<int64_t>(rows.rows[0][3]), 5);
  EXPECT_EQ(std::get<int64_t>(rows.rows[0][4]), 6);
  EXPECT_EQ(std::get<int64_t>(rows.rows[0][5]), 28800);
  EXPECT_GT(std::get<int64_t>(rows.rows[0][6]), 0);

  // The per-row phase columns sum exactly to the latency column.
  SqlRelation detail = Run(
      "SELECT latency_ns, queue_wait_ns, admission_ns, plan_ns, "
      "label_decode_ns, merge_ns, buffer_io_ns, callback_ns, other_ns "
      "FROM ptldb_slow_queries");
  ASSERT_EQ(detail.rows.size(), 1u);
  int64_t phase_sum = 0;
  for (size_t c = 1; c < detail.columns.size(); ++c) {
    phase_sum += std::get<int64_t>(detail.rows[0][c]);
  }
  EXPECT_EQ(std::get<int64_t>(detail.rows[0][0]), phase_sum);
}

TEST_F(SqlSystemTableTest, StringPredicatesAndOrderingCompose) {
  ASSERT_TRUE(db_->EarliestArrival(5, 6, TSec(28800)).ok());
  ASSERT_TRUE(db_->EarliestArrival(6, 1, TSec(28800)).ok());
  EXPECT_FALSE(db_->EaKnn("nope", 5, TSec(28800), 2).ok());  // Unknown set.

  const auto ok_rows = Run(
      "SELECT seq FROM ptldb_slow_queries WHERE outcome = 'ok' "
      "ORDER BY seq DESC LIMIT 1");
  ASSERT_EQ(ok_rows.rows.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(ok_rows.rows[0][0]), 2);

  const auto err = Run(
      "SELECT type, cause FROM ptldb_slow_queries WHERE outcome = 'error'");
  ASSERT_EQ(err.rows.size(), 1u);
  EXPECT_EQ(std::get<std::string>(err.rows[0][0]), "ea_knn");
  EXPECT_EQ(std::get<std::string>(err.rows[0][1]), "not_found");
}

TEST_F(SqlSystemTableTest, TracesRetainErroredRequests) {
  ASSERT_TRUE(db_->EarliestArrival(5, 6, TSec(28800)).ok());  // Fast ok: dropped.
  EXPECT_FALSE(db_->EaKnn("nope", 5, TSec(28800), 2).ok());

  const auto traces =
      Run("SELECT seq, type, reason, trace FROM ptldb_traces");
  ASSERT_EQ(traces.rows.size(), 1u);  // 100% of errors, 0% of fast oks.
  EXPECT_EQ(std::get<std::string>(traces.rows[0][1]), "ea_knn");
  EXPECT_EQ(std::get<std::string>(traces.rows[0][2]), "error");
  const std::string& json = std::get<std::string>(traces.rows[0][3]);
  EXPECT_NE(json.find("\"cause\": \"not_found\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
}

TEST_F(SqlSystemTableTest, StatsExposesCountersAndHistogramsWithNulls) {
  ASSERT_TRUE(db_->EarliestArrival(5, 6, TSec(28800)).ok());

  const auto counter = Run(
      "SELECT value, p50 FROM ptldb_stats WHERE name = 'querylog.records'");
  ASSERT_EQ(counter.rows.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(counter.rows[0][0]), 1);
  EXPECT_TRUE(SqlIsNull(counter.rows[0][1]));  // Counters have no quantiles.

  const auto hist = Run(
      "SELECT kind, count, value FROM ptldb_stats "
      "WHERE name = 'query.v2v_ea.latency_ns'");
  ASSERT_EQ(hist.rows.size(), 1u);
  EXPECT_EQ(std::get<std::string>(hist.rows[0][0]), "histogram");
  EXPECT_EQ(std::get<int64_t>(hist.rows[0][1]), 1);
  EXPECT_TRUE(SqlIsNull(hist.rows[0][2]));  // Histograms have no value.

  // The facade overlay: engine-side counters that live outside the
  // registry (device, buffer pool) are still visible rows.
  const auto device =
      Run("SELECT value FROM ptldb_stats WHERE name = 'bufferpool.hits'");
  ASSERT_EQ(device.rows.size(), 1u);

  // ptldb_server is empty when no serving layer is attached — a golden in
  // itself (library-embedded databases have no server.* slice).
  EXPECT_TRUE(Run("SELECT name FROM ptldb_server").rows.empty());
}

TEST_F(SqlSystemTableTest, EngineTablesAreNotShadowedAndUnknownStillErrors) {
  const auto lout = Run("SELECT v FROM lout WHERE v = 0");
  EXPECT_FALSE(lout.rows.empty());  // Engine resolution unchanged.
  SqlInterpreter interpreter(db_->engine());
  interpreter.set_system_tables(catalog_.get());
  EXPECT_FALSE(interpreter.Execute("SELECT x FROM no_such_table").ok());
}

// ---------- Phase attribution vs engine ground truth ----------

// The exactness claim of DESIGN.md §11: summing the query log's phase.*
// series reconstructs the engine's own counters with zero residue —
// attribution is a partition of the same thread-local deltas, not a
// parallel estimate.
TEST(QueryLogAttributionTest, PhaseSumsEqualEngineCountersExactly) {
  GeneratorOptions o;
  o.num_stops = 60;
  o.target_connections = 2500;
  o.seed = 77;
  const Timetable tt = std::move(GenerateNetwork(o)).value();
  const TtlIndex index = std::move(BuildTtlIndex(tt)).value();
  PtldbOptions popts;
  popts.device = DeviceProfile::SataSsd();
  popts.compressed_labels = true;  // Exercise the label_decode phase too.
  popts.query_log.sample_every = 0;
  auto db = std::move(PtldbDatabase::Build(index, popts)).value();

  Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    const auto s = static_cast<StopId>(rng.NextBelow(tt.num_stops()));
    const auto g = static_cast<StopId>(rng.NextBelow(tt.num_stops()));
    ASSERT_TRUE(db->EarliestArrival(s, g, tt.min_time()).ok());
  }

  const MetricsSnapshot snap = db->Snapshot();
  uint64_t ns_sum = 0, decode_sum = 0, cmp_sum = 0, hub_sum = 0;
  for (size_t p = 0; p < kNumQueryPhases; ++p) {
    const std::string base =
        std::string("phase.") + QueryPhaseName(static_cast<QueryPhase>(p));
    const auto hist = snap.histograms.find(base + ".ns");
    if (hist != snap.histograms.end()) ns_sum += hist->second.sum;
    const auto get = [&](const char* leaf) {
      const auto it = snap.counters.find(base + leaf);
      return it == snap.counters.end() ? 0 : it->second;
    };
    decode_sum += get(".label_decodes");
    cmp_sum += get(".label_comparisons");
    hub_sum += get(".hubs_merged");
  }
  EXPECT_EQ(ns_sum, snap.counters.at("querylog.latency_ns"));
  EXPECT_EQ(decode_sum, snap.counters.at("ttl.labels.decodes"));
  EXPECT_EQ(cmp_sum, snap.counters.at("ttl.label_comparisons"));
  EXPECT_EQ(hub_sum, snap.counters.at("ttl.hubs_merged"));
  EXPECT_GT(decode_sum, 0u);  // The compressed tier actually served.
  EXPECT_GT(hub_sum, 0u);
}

}  // namespace
}  // namespace ptldb
