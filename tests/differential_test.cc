// Randomized differential test harness: PTLDB answers vs. timetable-level
// ground truth on many seeded synthetic networks.
//
// For each of the 32 seeds a small random city is generated, a TTL index is
// built (with PTLDB_TEST_THREADS workers — the build is deterministic, see
// ttl_determinism_test), and every one of the seven query types is
// cross-checked against an oracle that never looks at labels:
//   EA / LD / SD        vs. the Connection Scan baselines (baseline/csa.h)
//   EA-kNN / LD-kNN     vs. brute-force enumeration (baseline/brute.h)
//   EA-OTM / LD-OTM     vs. brute-force enumeration
//
// On a mismatch the harness SHRINKS the failing case — greedily dropping
// targets and lowering k while the query still disagrees — and prints one
// "minimal failing repro" line with the (seed, query, args) tuple, so a
// failure report is directly replayable.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "baseline/brute.h"
#include "baseline/csa.h"
#include "common/rng.h"
#include "ptldb/ptldb.h"
#include "timetable/generator.h"
#include "ttl/builder.h"

#include "test_time.h"

namespace ptldb {
namespace {

constexpr uint64_t kNumSeeds = 32;
constexpr uint32_t kMaxK = 8;

// Worker threads used for index and table construction. The CI "Threads"
// job runs the suite with PTLDB_TEST_THREADS=1 and =8; the default of 2
// keeps the pool exercised in ordinary runs.
uint32_t TestThreads() {
  if (const char* env = std::getenv("PTLDB_TEST_THREADS");
      env != nullptr && *env != '\0') {
    return static_cast<uint32_t>(std::atoi(env));
  }
  return 2;
}

// When PTLDB_TEST_COMPRESSED is set (the CI "compressed-labels" job), the
// whole harness runs against the RAM-resident delta+varint label tier
// instead of the raw heap tables — every oracle check doubles as a proof
// that the compressed representation answers identically.
bool TestCompressed() {
  const char* env = std::getenv("PTLDB_TEST_COMPRESSED");
  return env != nullptr && *env != '\0' && *env != '0';
}

// PTLDB_TEST_VM selects which executor the whole harness drives: unset or
// nonzero runs the compiled register-VM programs (the production default),
// PTLDB_TEST_VM=0 pins the volcano interpreter so the fallback path keeps
// its own full oracle coverage. The head-to-head VmMatchesInterpreterPath
// test below covers both in every configuration.
bool TestVm() {
  const char* env = std::getenv("PTLDB_TEST_VM");
  return env == nullptr || *env == '\0' || *env != '0';
}

struct Network {
  Timetable tt;
  TtlIndex index;
  std::vector<StopId> targets;
  /// Distinct departure/arrival times, for boundary-biased timestamps.
  std::vector<EventTime> events;
};

Network MakeNetwork(uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  GeneratorOptions o;
  o.num_stops = static_cast<uint32_t>(rng.NextInRange(24, 64));
  o.target_connections = static_cast<uint64_t>(rng.NextInRange(500, 2000));
  o.min_route_len = 3;
  o.max_route_len = 8;
  o.seed = seed;
  Network net;
  auto tt = GenerateNetwork(o);
  EXPECT_TRUE(tt.ok());
  net.tt = std::move(tt).value();

  TtlBuildOptions build;
  build.num_threads = TestThreads();
  auto index = BuildTtlIndex(net.tt, build);
  EXPECT_TRUE(index.ok());
  net.index = std::move(index).value();

  const auto num_targets =
      static_cast<uint32_t>(rng.NextInRange(4, 8));
  net.targets = rng.SampleDistinct(net.tt.num_stops(), num_targets);
  // Every fourth seed hands AddTargetSet a list with duplicates: target
  // lists have set semantics, so answers must match the deduplicated list
  // (the brute oracles dedup the same way).
  if (seed % 4 == 0) {
    net.targets.push_back(net.targets[0]);
    net.targets.push_back(net.targets[net.targets.size() / 2]);
  }

  for (const Connection& c : net.tt.connections()) {
    net.events.push_back(c.dep);
    net.events.push_back(c.arr);
  }
  std::sort(net.events.begin(), net.events.end());
  net.events.erase(std::unique(net.events.begin(), net.events.end()),
                   net.events.end());
  return net;
}

/// Half the query timestamps land exactly on a departure/arrival event (or
/// one second to either side) instead of uniformly inside the window:
/// exact-equality boundaries in the label binary searches and the bucket
/// tables only get exercised when t collides with an event.
EventTime RandomTime(Rng* rng, const Network& net) {
  if (rng->NextBelow(2) == 0) {
    const EventTime base = net.events[rng->NextBelow(
        static_cast<uint64_t>(net.events.size()))];
    return base + DSec(static_cast<int64_t>(rng->NextBelow(3))) - DSec(1);
  }
  return TSec(rng->NextInRange(net.tt.min_time().raw_seconds(),
                               net.tt.max_time().raw_seconds()));
}

// Fresh in-memory database over `index` with one target set named "T".
std::unique_ptr<PtldbDatabase> MakeDbWith(const TtlIndex& index,
                                          const std::vector<StopId>& targets,
                                          uint32_t kmax, bool compressed) {
  PtldbOptions options;
  options.device = DeviceProfile::Ram();
  options.num_threads = TestThreads();
  options.compressed_labels = compressed;
  options.compiled_queries = TestVm();
  auto db = PtldbDatabase::Build(index, options);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_TRUE((*db)->AddTargetSet("T", index, targets, kmax).ok());
  return std::move(db).value();
}

std::unique_ptr<PtldbDatabase> MakeDb(const TtlIndex& index,
                                      const std::vector<StopId>& targets,
                                      uint32_t kmax) {
  return MakeDbWith(index, targets, kmax, TestCompressed());
}

// ---------- Oracles (return a mismatch description, or nullopt) ----------

std::optional<std::string> CheckV2v(PtldbDatabase* db, const Timetable& tt,
                                    const char* type, StopId s, StopId g,
                                    EventTime t, EventTime t_end) {
  if (std::string(type) == "SD") {
    const Result<Duration> got = db->ShortestDuration(s, g, t, t_end);
    if (!got.ok()) return "query error: " + got.status().ToString();
    const Duration want = ShortestDuration(tt, s, g, t, t_end);
    if (*got != want) {
      std::ostringstream ss;
      ss << "got " << *got << ", csa oracle " << want;
      return ss.str();
    }
    return std::nullopt;
  }
  const bool ea = std::string(type) == "EA";
  const Result<EventTime> got =
      ea ? db->EarliestArrival(s, g, t) : db->LatestDeparture(s, g, t);
  if (!got.ok()) return "query error: " + got.status().ToString();
  const EventTime want =
      ea ? EarliestArrival(tt, s, g, t) : LatestDeparture(tt, s, g, t);
  if (*got != want) {
    std::ostringstream ss;
    ss << "got " << *got << ", csa oracle " << want;
    return ss.str();
  }
  return std::nullopt;
}

// kNN answers may differ from the brute list on stops tied at the k-th
// position ("ties broken arbitrarily"), so validate shape: same times
// position-by-position, distinct stops, every stop's true time reported.
std::optional<std::string> ValidateKnn(
    const std::vector<StopTimeResult>& got,
    const std::vector<StopTimeResult>& brute_full, uint32_t k) {
  std::map<StopId, EventTime> truth;
  for (const auto& r : brute_full) truth.emplace(r.stop, r.time);
  const size_t expected = std::min<size_t>(k, brute_full.size());
  std::ostringstream ss;
  if (got.size() != expected) {
    ss << "row count " << got.size() << " != " << expected;
    return ss.str();
  }
  std::set<StopId> seen;
  for (size_t i = 0; i < got.size(); ++i) {
    if (got[i].time != brute_full[i].time) {
      ss << "time " << got[i].time << " at position " << i << " != brute "
         << brute_full[i].time;
      return ss.str();
    }
    if (!seen.insert(got[i].stop).second) {
      ss << "duplicate stop " << got[i].stop;
      return ss.str();
    }
    const auto it = truth.find(got[i].stop);
    if (it == truth.end()) {
      ss << "stop " << got[i].stop << " not reachable per oracle";
      return ss.str();
    }
    if (it->second != got[i].time) {
      ss << "stop " << got[i].stop << " time " << got[i].time
         << " != true time " << it->second;
      return ss.str();
    }
  }
  return std::nullopt;
}

std::optional<std::string> ValidateOtm(
    const std::vector<StopTimeResult>& got,
    const std::vector<StopTimeResult>& brute) {
  std::ostringstream ss;
  if (got.size() != brute.size()) {
    ss << "row count " << got.size() << " != " << brute.size();
    return ss.str();
  }
  for (size_t i = 0; i < got.size(); ++i) {
    if (!(got[i] == brute[i])) {
      ss << "row " << i << " = (" << got[i].stop << ", " << got[i].time
         << ") != brute (" << brute[i].stop << ", " << brute[i].time << ")";
      return ss.str();
    }
  }
  return std::nullopt;
}

// Runs one set query (EA-kNN/LD-kNN/EA-OTM/LD-OTM) against a FRESH database
// built for exactly `targets` — rebuilt each call so the shrinker can
// re-evaluate candidate target subsets.
std::optional<std::string> CheckSetQuery(const Network& net,
                                         const std::vector<StopId>& targets,
                                         const char* type, StopId q,
                                         EventTime t, uint32_t k) {
  auto db = MakeDb(net.index, targets, kMaxK);
  const std::string type_s = type;
  Result<std::vector<StopTimeResult>> got = std::vector<StopTimeResult>{};
  if (type_s == "EA-kNN") {
    got = db->EaKnn("T", q, t, k);
  } else if (type_s == "LD-kNN") {
    got = db->LdKnn("T", q, t, k);
  } else if (type_s == "EA-OTM") {
    got = db->EaOneToMany("T", q, t);
  } else {
    got = db->LdOneToMany("T", q, t);
  }
  if (!got.ok()) return "query error: " + got.status().ToString();
  const bool ea = type_s == "EA-kNN" || type_s == "EA-OTM";
  const auto brute = ea ? BruteEaOneToMany(net.tt, q, targets, t)
                        : BruteLdOneToMany(net.tt, q, targets, t);
  if (type_s == "EA-kNN" || type_s == "LD-kNN") {
    return ValidateKnn(*got, brute, k);
  }
  return ValidateOtm(*got, brute);
}

std::string FormatTargets(const std::vector<StopId>& targets) {
  std::ostringstream ss;
  ss << "[";
  for (size_t i = 0; i < targets.size(); ++i) {
    if (i != 0) ss << ",";
    ss << targets[i];
  }
  ss << "]";
  return ss.str();
}

// Greedy shrink of a failing set-query case: drop targets one at a time and
// lower k while the mismatch persists. Returns the minimal repro line.
std::string ShrinkSetCase(const Network& net, uint64_t seed, const char* type,
                          StopId q, EventTime t, uint32_t k,
                          std::vector<StopId> targets, std::string detail) {
  bool progress = true;
  while (progress && targets.size() > 1) {
    progress = false;
    for (size_t i = 0; i < targets.size(); ++i) {
      std::vector<StopId> candidate = targets;
      candidate.erase(candidate.begin() + static_cast<long>(i));
      if (auto still = CheckSetQuery(net, candidate, type, q, t, k)) {
        targets = std::move(candidate);
        detail = std::move(*still);
        progress = true;
        break;
      }
    }
  }
  while (k > 1) {
    if (auto still = CheckSetQuery(net, targets, type, q, t, k - 1)) {
      --k;
      detail = std::move(*still);
    } else {
      break;
    }
  }
  std::ostringstream ss;
  ss << "minimal failing repro: seed=" << seed << " query=" << type
     << " q=" << q << " t=" << t << " k=" << k
     << " targets=" << FormatTargets(targets) << " -- " << detail;
  return ss.str();
}

std::string FormatV2vCase(uint64_t seed, const char* type, StopId s, StopId g,
                          EventTime t, EventTime t_end,
                          const std::string& detail) {
  std::ostringstream ss;
  ss << "minimal failing repro: seed=" << seed << " query=" << type
     << " s=" << s << " g=" << g << " t=" << t;
  if (std::string(type) == "SD") ss << " t_end=" << t_end;
  ss << " -- " << detail;
  return ss.str();
}

TEST(DifferentialTest, AllQueryTypesMatchOraclesOnRandomNetworks) {
  uint32_t failures = 0;
  constexpr uint32_t kMaxReportedFailures = 5;
  for (uint64_t seed = 1; seed <= kNumSeeds; ++seed) {
    const Network net = MakeNetwork(seed);
    auto db = MakeDb(net.index, net.targets, kMaxK);
    Rng rng(seed * 6364136223846793005ULL + 1442695040888963407ULL);
    const EventTime lo = net.tt.min_time();
    const EventTime hi = net.tt.max_time();

    for (int trial = 0; trial < 12 && failures < kMaxReportedFailures;
         ++trial) {
      // v2v triple: s != g, t anywhere in the service window.
      StopId s = static_cast<StopId>(rng.NextBelow(net.tt.num_stops()));
      StopId g = static_cast<StopId>(rng.NextBelow(net.tt.num_stops()));
      if (g == s) g = (g + 1) % net.tt.num_stops();
      const EventTime t = RandomTime(&rng, net);
      const auto t_end = std::max(
          t, TSec(rng.NextInRange(lo.raw_seconds(), hi.raw_seconds())));
      for (const char* type : {"EA", "LD", "SD"}) {
        if (auto bad = CheckV2v(db.get(), net.tt, type, s, g, t, t_end)) {
          ADD_FAILURE() << FormatV2vCase(seed, type, s, g, t, t_end, *bad);
          ++failures;
        }
      }
    }

    for (int trial = 0; trial < 4 && failures < kMaxReportedFailures;
         ++trial) {
      // Any stop may be the source — q inside the target set has defined
      // "stay put" semantics (EA reports t, LD reports t_end) that the
      // brute oracles implement identically.
      const StopId q = static_cast<StopId>(rng.NextBelow(net.tt.num_stops()));
      const EventTime t = RandomTime(&rng, net);
      const auto k = static_cast<uint32_t>(rng.NextInRange(1, kMaxK));
      for (const char* type : {"EA-kNN", "LD-kNN", "EA-OTM", "LD-OTM"}) {
        const bool knn = type[3] == 'k';
        // The main db already has the full target set loaded; reuse it for
        // the first evaluation, then shrink with fresh databases.
        std::optional<std::string> bad;
        if (knn) {
          auto got = std::string(type) == "EA-kNN" ? db->EaKnn("T", q, t, k)
                                                   : db->LdKnn("T", q, t, k);
          if (!got.ok()) {
            bad = "query error: " + got.status().ToString();
          } else {
            const auto brute =
                std::string(type) == "EA-kNN"
                    ? BruteEaOneToMany(net.tt, q, net.targets, t)
                    : BruteLdOneToMany(net.tt, q, net.targets, t);
            bad = ValidateKnn(*got, brute, k);
          }
        } else {
          bad = CheckSetQuery(net, net.targets, type, q, t, k);
        }
        if (bad) {
          ADD_FAILURE() << ShrinkSetCase(net, seed, type, q, t, k,
                                         net.targets, *bad);
          ++failures;
        }
      }
    }
    if (failures >= kMaxReportedFailures) {
      GTEST_FAIL() << "stopping after " << failures << " failures";
    }
  }
}

// The naive Code-2 kNN plans answer through a different physical path
// (knn_naive table); differential-check them too so both plans stay honest.
TEST(DifferentialTest, NaiveKnnPlansMatchOracles) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const Network net = MakeNetwork(seed);
    auto db = MakeDb(net.index, net.targets, kMaxK);
    Rng rng(seed * 0x2545F4914F6CDD1DULL + 3);
    for (int trial = 0; trial < 6; ++trial) {
      const StopId q = static_cast<StopId>(rng.NextBelow(net.tt.num_stops()));
      const EventTime t = RandomTime(&rng, net);
      const auto k = static_cast<uint32_t>(rng.NextInRange(1, kMaxK));
      const auto ea_brute = BruteEaOneToMany(net.tt, q, net.targets, t);
      const auto ld_brute = BruteLdOneToMany(net.tt, q, net.targets, t);
      const auto ea = db->EaKnnNaive("T", q, t, k);
      ASSERT_TRUE(ea.ok());
      if (auto bad = ValidateKnn(*ea, ea_brute, k)) {
        ADD_FAILURE() << "seed=" << seed << " query=EA-kNN-naive q=" << q
                      << " t=" << t << " k=" << k << " -- " << *bad;
      }
      const auto ld = db->LdKnnNaive("T", q, t, k);
      ASSERT_TRUE(ld.ok());
      if (auto bad = ValidateKnn(*ld, ld_brute, k)) {
        ADD_FAILURE() << "seed=" << seed << " query=LD-kNN-naive q=" << q
                      << " t=" << t << " k=" << k << " -- " << *bad;
      }
    }
  }
}

// Raw heap tables vs. the compressed in-memory label tier, head to head on
// the same databases: both representations pack the exact same tuples in
// the exact same order, so every query type must agree bit-for-bit — not
// just up to ties. Runs regardless of PTLDB_TEST_COMPRESSED so plain CI
// jobs cover the compressed tier too.
TEST(DifferentialTest, CompressedLabelTierMatchesRawPath) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const Network net = MakeNetwork(seed);
    auto raw = MakeDbWith(net.index, net.targets, kMaxK, false);
    auto comp = MakeDbWith(net.index, net.targets, kMaxK, true);
    ASSERT_NE(comp->label_store(), nullptr);
    ASSERT_EQ(raw->label_store(), nullptr);
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 77);
    const EventTime lo = net.tt.min_time();
    const EventTime hi = net.tt.max_time();
    for (int trial = 0; trial < 8; ++trial) {
      StopId s = static_cast<StopId>(rng.NextBelow(net.tt.num_stops()));
      StopId g = static_cast<StopId>(rng.NextBelow(net.tt.num_stops()));
      if (g == s) g = (g + 1) % net.tt.num_stops();
      const EventTime t = RandomTime(&rng, net);
      const auto t_end = std::max(
          t, TSec(rng.NextInRange(lo.raw_seconds(), hi.raw_seconds())));
      const auto k = static_cast<uint32_t>(rng.NextInRange(1, kMaxK));

      const auto ea_r = raw->EarliestArrival(s, g, t);
      const auto ea_c = comp->EarliestArrival(s, g, t);
      ASSERT_TRUE(ea_r.ok() && ea_c.ok());
      EXPECT_EQ(*ea_r, *ea_c) << "EA seed=" << seed << " s=" << s
                              << " g=" << g << " t=" << t;
      const auto ld_r = raw->LatestDeparture(s, g, t_end);
      const auto ld_c = comp->LatestDeparture(s, g, t_end);
      ASSERT_TRUE(ld_r.ok() && ld_c.ok());
      EXPECT_EQ(*ld_r, *ld_c) << "LD seed=" << seed << " s=" << s
                              << " g=" << g << " t_end=" << t_end;
      const auto sd_r = raw->ShortestDuration(s, g, t, t_end);
      const auto sd_c = comp->ShortestDuration(s, g, t, t_end);
      ASSERT_TRUE(sd_r.ok() && sd_c.ok());
      EXPECT_EQ(*sd_r, *sd_c) << "SD seed=" << seed << " s=" << s
                              << " g=" << g << " t=" << t
                              << " t_end=" << t_end;

      const auto eaknn_r = raw->EaKnn("T", s, t, k);
      const auto eaknn_c = comp->EaKnn("T", s, t, k);
      ASSERT_TRUE(eaknn_r.ok() && eaknn_c.ok());
      EXPECT_EQ(*eaknn_r, *eaknn_c) << "EA-kNN seed=" << seed << " q=" << s
                                    << " t=" << t << " k=" << k;
      const auto ldknn_r = raw->LdKnn("T", s, t, k);
      const auto ldknn_c = comp->LdKnn("T", s, t, k);
      ASSERT_TRUE(ldknn_r.ok() && ldknn_c.ok());
      EXPECT_EQ(*ldknn_r, *ldknn_c) << "LD-kNN seed=" << seed << " q=" << s
                                    << " t=" << t << " k=" << k;
      const auto eaotm_r = raw->EaOneToMany("T", s, t);
      const auto eaotm_c = comp->EaOneToMany("T", s, t);
      ASSERT_TRUE(eaotm_r.ok() && eaotm_c.ok());
      EXPECT_EQ(*eaotm_r, *eaotm_c) << "EA-OTM seed=" << seed << " q=" << s
                                    << " t=" << t;
      const auto ldotm_r = raw->LdOneToMany("T", s, t);
      const auto ldotm_c = comp->LdOneToMany("T", s, t);
      ASSERT_TRUE(ldotm_r.ok() && ldotm_c.ok());
      EXPECT_EQ(*ldotm_r, *ldotm_c) << "LD-OTM seed=" << seed << " q=" << s
                                    << " t=" << t;
    }
    // The compressed tier actually served those queries: decode counters
    // moved on the compressed database and stayed flat on the raw one.
    const auto snap_c = comp->metrics()->Snapshot();
    const auto snap_r = raw->metrics()->Snapshot();
    EXPECT_GT(snap_c.counters.at("ttl.labels.decodes"), 0u);
    EXPECT_EQ(snap_r.counters.at("ttl.labels.decodes"), 0u);
  }
}

// Compiled register-VM programs vs. the volcano interpreter, head to head
// on the same database (toggled per trial via set_compiled_queries) for
// all seven query types on both label tiers. The two executors share the
// merge kernels but nothing else — plan shape, scratch memory, aggregation
// and top-k all differ — so bit-for-bit agreement here plus the oracle
// coverage above pins the compiled path end to end. The vm_steps counter
// proves each half really took the executor it claims: it moves on every
// compiled query and stays flat across the interpreter half.
TEST(DifferentialTest, VmMatchesInterpreterPath) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const Network net = MakeNetwork(seed);
    for (const bool compressed : {false, true}) {
      auto db = MakeDbWith(net.index, net.targets, kMaxK, compressed);
      Rng rng(seed * 0x9e3779b97f4a7c15ULL + 101);
      const EventTime lo = net.tt.min_time();
      const EventTime hi = net.tt.max_time();
      const auto vm_steps = [&db] {
        return db->metrics()->Snapshot().counters.at("exec.vm_steps");
      };
      for (int trial = 0; trial < 8; ++trial) {
        StopId s = static_cast<StopId>(rng.NextBelow(net.tt.num_stops()));
        StopId g = static_cast<StopId>(rng.NextBelow(net.tt.num_stops()));
        if (g == s) g = (g + 1) % net.tt.num_stops();
        const EventTime t = RandomTime(&rng, net);
        const auto t_end = std::max(
            t, TSec(rng.NextInRange(lo.raw_seconds(), hi.raw_seconds())));
        const auto k = static_cast<uint32_t>(rng.NextInRange(1, kMaxK));

        const uint64_t steps_before = vm_steps();
        db->set_compiled_queries(true);
        const auto ea_v = db->EarliestArrival(s, g, t);
        const auto ld_v = db->LatestDeparture(s, g, t_end);
        const auto sd_v = db->ShortestDuration(s, g, t, t_end);
        const auto eaknn_v = db->EaKnn("T", s, t, k);
        const auto ldknn_v = db->LdKnn("T", s, t, k);
        const auto eaotm_v = db->EaOneToMany("T", s, t);
        const auto ldotm_v = db->LdOneToMany("T", s, t);
        const uint64_t steps_mid = vm_steps();
        EXPECT_GT(steps_mid, steps_before)
            << "compiled half did not execute on the VM";

        db->set_compiled_queries(false);
        const auto ea_i = db->EarliestArrival(s, g, t);
        const auto ld_i = db->LatestDeparture(s, g, t_end);
        const auto sd_i = db->ShortestDuration(s, g, t, t_end);
        const auto eaknn_i = db->EaKnn("T", s, t, k);
        const auto ldknn_i = db->LdKnn("T", s, t, k);
        const auto eaotm_i = db->EaOneToMany("T", s, t);
        const auto ldotm_i = db->LdOneToMany("T", s, t);
        EXPECT_EQ(vm_steps(), steps_mid)
            << "interpreter half touched the VM step counter";

        ASSERT_TRUE(ea_v.ok() && ea_i.ok());
        EXPECT_EQ(*ea_v, *ea_i) << "EA seed=" << seed << " s=" << s
                                << " g=" << g << " t=" << t;
        ASSERT_TRUE(ld_v.ok() && ld_i.ok());
        EXPECT_EQ(*ld_v, *ld_i) << "LD seed=" << seed << " s=" << s
                                << " g=" << g << " t_end=" << t_end;
        ASSERT_TRUE(sd_v.ok() && sd_i.ok());
        EXPECT_EQ(*sd_v, *sd_i) << "SD seed=" << seed << " s=" << s
                                << " g=" << g << " t=" << t
                                << " t_end=" << t_end;
        ASSERT_TRUE(eaknn_v.ok() && eaknn_i.ok());
        EXPECT_EQ(*eaknn_v, *eaknn_i) << "EA-kNN seed=" << seed << " q=" << s
                                      << " t=" << t << " k=" << k;
        ASSERT_TRUE(ldknn_v.ok() && ldknn_i.ok());
        EXPECT_EQ(*ldknn_v, *ldknn_i) << "LD-kNN seed=" << seed << " q=" << s
                                      << " t=" << t << " k=" << k;
        ASSERT_TRUE(eaotm_v.ok() && eaotm_i.ok());
        EXPECT_EQ(*eaotm_v, *eaotm_i) << "EA-OTM seed=" << seed << " q=" << s
                                      << " t=" << t;
        ASSERT_TRUE(ldotm_v.ok() && ldotm_i.ok());
        EXPECT_EQ(*ldotm_v, *ldotm_i) << "LD-OTM seed=" << seed << " q=" << s
                                      << " t=" << t;
      }
    }
  }
}

}  // namespace
}  // namespace ptldb
