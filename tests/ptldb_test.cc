#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <set>

#include "baseline/brute.h"
#include "baseline/csa.h"
#include "common/rng.h"
#include "ptldb/ptldb.h"
#include "ptldb/service_calendar.h"
#include "ptldb/queries.h"
#include "ptldb/tables.h"
#include "timetable/example_graph.h"
#include "timetable/generator.h"
#include "common/csv.h"
#include "ttl/builder.h"
#include "ttl/query.h"

#include "test_time.h"

namespace ptldb {
namespace {

Timetable SmallCity(uint64_t seed, uint32_t stops = 90,
                    uint64_t connections = 5000) {
  GeneratorOptions o;
  o.num_stops = stops;
  o.target_connections = connections;
  o.min_route_len = 4;
  o.max_route_len = 9;
  o.seed = seed;
  auto tt = GenerateNetwork(o);
  EXPECT_TRUE(tt.ok());
  return std::move(tt).value();
}

TtlIndex BuildIndex(const Timetable& tt, TtlBuildOptions options = {}) {
  auto index = BuildTtlIndex(tt, options);
  EXPECT_TRUE(index.ok());
  return std::move(index).value();
}

std::unique_ptr<PtldbDatabase> BuildDb(const TtlIndex& index) {
  PtldbOptions options;
  options.device = DeviceProfile::Ram();
  auto db = PtldbDatabase::Build(index, options);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

// kNN answers may legitimately differ from the brute-force list on stops
// whose times tie at the k-th position ("ties broken arbitrarily" in the
// paper's table construction). Validate: same times position-by-position,
// distinct stops, and every returned stop's true time equals the reported
// time.
void ExpectKnnValid(const std::vector<StopTimeResult>& got,
                    const std::vector<StopTimeResult>& brute_full,
                    uint32_t k, const char* what) {
  std::map<StopId, EventTime> truth;
  for (const auto& r : brute_full) truth.emplace(r.stop, r.time);
  const size_t expected =
      std::min<size_t>(k, brute_full.size());
  ASSERT_EQ(got.size(), expected) << what;
  std::set<StopId> seen;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].time, brute_full[i].time)
        << what << " time mismatch at position " << i;
    EXPECT_TRUE(seen.insert(got[i].stop).second)
        << what << " duplicate stop " << got[i].stop;
    const auto it = truth.find(got[i].stop);
    ASSERT_NE(it, truth.end())
        << what << " returned stop " << got[i].stop << " not reachable";
    EXPECT_EQ(it->second, got[i].time)
        << what << " stop " << got[i].stop << " has wrong time";
  }
}

// ---------- Worked examples from the paper ----------

class PtldbExampleTest : public testing::Test {
 protected:
  PtldbExampleTest() : tt_(MakeExampleTimetable()) {
    TtlBuildOptions options;
    options.custom_order = ExampleVertexOrder();
    index_ = BuildIndex(tt_, options);
    db_ = BuildDb(index_);
    EXPECT_TRUE(db_->AddTargetSet("t46", index_, {4, 6}, /*kmax=*/2).ok());
  }

  Timetable tt_;
  TtlIndex index_;
  std::unique_ptr<PtldbDatabase> db_;
};

TEST_F(PtldbExampleTest, V2vMatchesPaper) {
  // "the answer to the EA(1, 1, 324) query is 324".
  EXPECT_EQ(*db_->EarliestArrival(1, 1, TSec(32400)), TSec(32400));
  EXPECT_EQ(*db_->EarliestArrival(5, 6, TSec(28800)), TSec(43200));
  EXPECT_EQ(*db_->LatestDeparture(5, 6, TSec(43200)), TSec(28800));
  EXPECT_EQ(*db_->ShortestDuration(5, 0, TSec(0), TSec(86400)), DSec(7200));
  EXPECT_EQ(*db_->EarliestArrival(5, 0, TSec(28801)), EventTime::Infinity());
  EXPECT_EQ(*db_->LatestDeparture(6, 5, TSec(43199)),
            EventTime::NegInfinity());
}

TEST_F(PtldbExampleTest, NaiveTableMatchesTable4) {
  // Table 4 of the paper: ea_knn_naive for T={4,6} and k=1 has rows
  // (0,360)->({4},{396}), (2,396)->({6},{432}), (4,396)->({4},{396}),
  // (6,432)->({6},{432}). With kmax=2 the (0,360) row also keeps (6,432).
  const EngineTable* naive = db_->engine()->FindTable(NaiveKnnTableName("t46"));
  ASSERT_NE(naive, nullptr);
  BufferPool* pool = db_->engine()->buffer_pool();

  const auto row0 = naive->Get(MakeCompositeKey(0, 36000), pool);
  ASSERT_TRUE(row0->has_value());
  EXPECT_EQ((**row0)[2].AsArray(), (std::vector<int32_t>{4, 6}));
  EXPECT_EQ((**row0)[3].AsArray(), (std::vector<int32_t>{39600, 43200}));

  const auto row2 = naive->Get(MakeCompositeKey(2, 39600), pool);
  ASSERT_TRUE(row2->has_value());
  EXPECT_EQ((**row2)[2].AsArray(), (std::vector<int32_t>{6}));
  EXPECT_EQ((**row2)[3].AsArray(), (std::vector<int32_t>{43200}));

  const auto row4 = naive->Get(MakeCompositeKey(4, 39600), pool);
  ASSERT_TRUE(row4->has_value());
  EXPECT_EQ((**row4)[2].AsArray(), (std::vector<int32_t>{4}));

  const auto row6 = naive->Get(MakeCompositeKey(6, 43200), pool);
  ASSERT_TRUE(row6->has_value());
  EXPECT_EQ((**row6)[2].AsArray(), (std::vector<int32_t>{6}));

  EXPECT_EQ(naive->num_rows(), 4u);
}

TEST_F(PtldbExampleTest, EaKnnMatchesPaperExample) {
  // "the EA-kNN(0, {4,6}, 360, 1) will have the correct answer (4, 396)".
  const auto naive = db_->EaKnnNaive("t46", 0, TSec(36000), 1);
  ASSERT_TRUE(naive.ok());
  ASSERT_EQ(naive->size(), 1u);
  EXPECT_EQ((*naive)[0].stop, 4u);
  EXPECT_EQ((*naive)[0].time, TSec(39600));

  const auto optimized = db_->EaKnn("t46", 0, TSec(36000), 1);
  ASSERT_TRUE(optimized.ok());
  ASSERT_EQ(optimized->size(), 1u);
  EXPECT_EQ((*optimized)[0].stop, 4u);
  EXPECT_EQ((*optimized)[0].time, TSec(39600));
}

TEST_F(PtldbExampleTest, EaOtmReturnsAllTargets) {
  const auto rows = db_->EaOneToMany("t46", 0, TSec(36000));
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], (StopTimeResult{4, TSec(39600)}));
  EXPECT_EQ((*rows)[1], (StopTimeResult{6, TSec(43200)}));
}

TEST_F(PtldbExampleTest, LdQueriesOnExample) {
  // Reach {4,6} by end of day from stop 5 (departs 28800 on trip 1).
  const auto knn = db_->LdKnn("t46", 5, TSec(43200), 2);
  ASSERT_TRUE(knn.ok());
  const auto brute = BruteLdOneToMany(tt_, 5, {4, 6}, TSec(43200));
  ExpectKnnValid(*knn, brute, 2, "LD-kNN example");

  const auto otm = db_->LdOneToMany("t46", 5, TSec(43200));
  ASSERT_TRUE(otm.ok());
  ASSERT_EQ(otm->size(), brute.size());
  for (size_t i = 0; i < otm->size(); ++i) EXPECT_EQ((*otm)[i], brute[i]);
}

TEST_F(PtldbExampleTest, ValidatesTargetSetUsage) {
  EXPECT_FALSE(db_->EaKnn("nope", 0, TSec(0), 1).ok());
  EXPECT_FALSE(db_->EaKnn("t46", 0, TSec(0), 3).ok());  // k > kmax.
  EXPECT_FALSE(db_->EaKnn("t46", 0, TSec(0), 0).ok());
  EXPECT_FALSE(db_->EaOneToMany("nope", 0, TSec(0)).ok());
  EXPECT_FALSE(db_->AddTargetSet("t46", index_, {1}, 2).ok());  // Duplicate.
}

// ---------- Randomized integration sweeps ----------

struct SweepCase {
  uint64_t seed;
  double density;
  uint32_t kmax;
};

class PtldbSweepTest : public testing::TestWithParam<SweepCase> {};

TEST_P(PtldbSweepTest, AllQueriesMatchGroundTruth) {
  const SweepCase param = GetParam();
  const Timetable tt = SmallCity(param.seed);
  const TtlIndex index = BuildIndex(tt);
  auto db = BuildDb(index);

  Rng rng(param.seed * 131 + 7);
  const auto num_targets = std::max<uint32_t>(
      2, static_cast<uint32_t>(param.density * tt.num_stops()));
  std::vector<StopId> targets = rng.SampleDistinct(tt.num_stops(), num_targets);
  ASSERT_TRUE(db->AddTargetSet("T", index, targets, param.kmax).ok());

  const EventTime lo = tt.min_time();
  const EventTime hi = tt.max_time();
  for (int trial = 0; trial < 40; ++trial) {
    // Query stops outside the target set (self-queries have label-defined
    // semantics, see README).
    StopId q = static_cast<StopId>(rng.NextBelow(tt.num_stops()));
    while (std::find(targets.begin(), targets.end(), q) != targets.end()) {
      q = static_cast<StopId>(rng.NextBelow(tt.num_stops()));
    }
    const auto t =
        TSec(rng.NextInRange(lo.raw_seconds(), hi.raw_seconds()));

    // v2v against CSA.
    {
      auto g = static_cast<StopId>(rng.NextBelow(tt.num_stops()));
      if (g == q) g = (g + 1) % tt.num_stops();
      EXPECT_EQ(*db->EarliestArrival(q, g, t), EarliestArrival(tt, q, g, t));
      EXPECT_EQ(*db->LatestDeparture(q, g, t), LatestDeparture(tt, q, g, t));
      const auto t_end =
          TSec(rng.NextInRange(t.raw_seconds(), hi.raw_seconds()));
      EXPECT_EQ(*db->ShortestDuration(q, g, t, t_end),
                ShortestDuration(tt, q, g, t, t_end));
    }

    const auto ea_full = BruteEaOneToMany(tt, q, targets, t);
    const auto ld_full = BruteLdOneToMany(tt, q, targets, t);

    for (uint32_t k = 1; k <= param.kmax; k *= 2) {
      const auto ea = db->EaKnn("T", q, t, k);
      ASSERT_TRUE(ea.ok());
      ExpectKnnValid(*ea, ea_full, k, "EA-kNN");
      const auto ea_naive = db->EaKnnNaive("T", q, t, k);
      ASSERT_TRUE(ea_naive.ok());
      ExpectKnnValid(*ea_naive, ea_full, k, "EA-kNN-naive");
      const auto ld = db->LdKnn("T", q, t, k);
      ASSERT_TRUE(ld.ok());
      ExpectKnnValid(*ld, ld_full, k, "LD-kNN");
      const auto ld_naive = db->LdKnnNaive("T", q, t, k);
      ASSERT_TRUE(ld_naive.ok());
      ExpectKnnValid(*ld_naive, ld_full, k, "LD-kNN-naive");
    }

    // One-to-many must match exactly (no tie truncation).
    const auto ea_otm = db->EaOneToMany("T", q, t);
    ASSERT_TRUE(ea_otm.ok());
    ASSERT_EQ(ea_otm->size(), ea_full.size());
    for (size_t i = 0; i < ea_full.size(); ++i) {
      EXPECT_EQ((*ea_otm)[i], ea_full[i]) << "EA-OTM row " << i;
    }
    const auto ld_otm = db->LdOneToMany("T", q, t);
    ASSERT_TRUE(ld_otm.ok());
    ASSERT_EQ(ld_otm->size(), ld_full.size());
    for (size_t i = 0; i < ld_full.size(); ++i) {
      EXPECT_EQ((*ld_otm)[i], ld_full[i]) << "LD-OTM row " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PtldbSweepTest,
    testing::Values(SweepCase{1, 0.05, 4}, SweepCase{2, 0.10, 4},
                    SweepCase{3, 0.10, 16}, SweepCase{4, 0.30, 8},
                    SweepCase{5, 0.02, 2}, SweepCase{6, 0.50, 4}));

// Section 3.2.1: the hour is a tuning parameter; any bucket width must
// keep answers exact (only performance changes).
class PtldbBucketWidthTest : public testing::TestWithParam<int32_t> {};

TEST_P(PtldbBucketWidthTest, AnswersIndependentOfBucketWidth) {
  const Timetable tt = SmallCity(77);
  const TtlIndex index = BuildIndex(tt);
  auto db = BuildDb(index);
  Rng rng(9);
  std::vector<StopId> targets = rng.SampleDistinct(tt.num_stops(), 10);
  ASSERT_TRUE(
      db->AddTargetSet("T", index, targets, 4, DSec(GetParam())).ok());
  for (int trial = 0; trial < 25; ++trial) {
    StopId q = static_cast<StopId>(rng.NextBelow(tt.num_stops()));
    while (std::find(targets.begin(), targets.end(), q) != targets.end()) {
      q = static_cast<StopId>(rng.NextBelow(tt.num_stops()));
    }
    const auto t = TSec(rng.NextInRange(tt.min_time().raw_seconds(),
                                        tt.max_time().raw_seconds()));
    const auto ea = db->EaKnn("T", q, t, 4);
    ASSERT_TRUE(ea.ok());
    ExpectKnnValid(*ea, BruteEaOneToMany(tt, q, targets, t), 4, "EA bucket");
    const auto ld = db->LdKnn("T", q, t, 4);
    ASSERT_TRUE(ld.ok());
    ExpectKnnValid(*ld, BruteLdOneToMany(tt, q, targets, t), 4, "LD bucket");
    const auto otm = db->EaOneToMany("T", q, t);
    ASSERT_TRUE(otm.ok());
    const auto brute = BruteEaOneToMany(tt, q, targets, t);
    ASSERT_EQ(otm->size(), brute.size());
    for (size_t i = 0; i < brute.size(); ++i) EXPECT_EQ((*otm)[i], brute[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, PtldbBucketWidthTest,
                         testing::Values(900, 1800, 3600, 7200, 14400));

// The specialized merge plan must agree with the SQL-shaped plan.
TEST(PtldbPlanTest, MergePlanMatchesSqlShapedPlan) {
  const Timetable tt = SmallCity(88);
  const TtlIndex index = BuildIndex(tt);
  auto db = BuildDb(index);
  Rng rng(21);
  for (int i = 0; i < 120; ++i) {
    const auto s = static_cast<StopId>(rng.NextBelow(tt.num_stops()));
    auto g = static_cast<StopId>(rng.NextBelow(tt.num_stops()));
    if (g == s) g = (g + 1) % tt.num_stops();
    const auto t = TSec(rng.NextInRange(tt.min_time().raw_seconds(),
                                        tt.max_time().raw_seconds()));
    const auto t_end =
        TSec(rng.NextInRange(t.raw_seconds(), tt.max_time().raw_seconds()));
    EngineDatabase* engine = db->engine();
    EXPECT_EQ(*QueryV2vEa(engine, s, g, t),
              *QueryV2vEaMergePlan(engine, s, g, t));
    EXPECT_EQ(*QueryV2vLd(engine, s, g, t_end),
              *QueryV2vLdMergePlan(engine, s, g, t_end));
    EXPECT_EQ(*QueryV2vSd(engine, s, g, t, t_end),
              *QueryV2vSdMergePlan(engine, s, g, t, t_end));
  }
}

// A stop that is never reached (only departures, never a hub target) has
// an empty lin row; queries against it must come back empty, not crash.
TEST(PtldbEdgeTest, UnreachableStopHasEmptyAnswers) {
  TimetableBuilder builder;
  const StopId x = builder.AddStop();
  const StopId y = builder.AddStop();
  const TripId trip = builder.AddTrip();
  builder.AddConnection(x, y, TSec(100), TSec(200), trip);
  auto tt = std::move(builder).Build();
  ASSERT_TRUE(tt.ok());
  const TtlIndex index = BuildIndex(*tt);
  auto db = BuildDb(index);
  EXPECT_EQ(*db->EarliestArrival(x, y, TSec(100)), TSec(200));
  EXPECT_EQ(*db->EarliestArrival(x, y, TSec(101)), EventTime::Infinity());
  EXPECT_EQ(*db->EarliestArrival(y, x, TSec(0)), EventTime::Infinity());
  EXPECT_EQ(*db->LatestDeparture(y, x, TSec(99999)),
            EventTime::NegInfinity());
  EXPECT_EQ(*db->ShortestDuration(y, x, TSec(0), TSec(99999)),
            Duration::Infinity());
  ASSERT_TRUE(db->AddTargetSet("T", index, {x}, 2).ok());
  const auto knn = db->EaKnn("T", y, TSec(0), 1);
  ASSERT_TRUE(knn.ok());
  EXPECT_TRUE(knn->empty());
  const auto otm = db->LdOneToMany("T", y, TSec(99999));
  ASSERT_TRUE(otm.ok());
  EXPECT_TRUE(otm->empty());
}

// Correctness must not depend on buffer-pool capacity: a pool of 8 pages
// forces constant eviction, yet answers stay identical.
TEST(PtldbEdgeTest, TinyBufferPoolStillCorrect) {
  const Timetable tt = SmallCity(66);
  const TtlIndex index = BuildIndex(tt);
  auto reference = BuildDb(index);
  PtldbOptions tiny;
  tiny.device = DeviceProfile::Ram();
  tiny.buffer_pool_pages = 8;
  auto constrained = PtldbDatabase::Build(index, tiny);
  ASSERT_TRUE(constrained.ok());
  Rng rng(33);
  for (int i = 0; i < 60; ++i) {
    const auto s = static_cast<StopId>(rng.NextBelow(tt.num_stops()));
    auto g = static_cast<StopId>(rng.NextBelow(tt.num_stops()));
    if (g == s) g = (g + 1) % tt.num_stops();
    const auto t = TSec(rng.NextInRange(tt.min_time().raw_seconds(),
                                        tt.max_time().raw_seconds()));
    EXPECT_EQ(*(*constrained)->EarliestArrival(s, g, t),
              *reference->EarliestArrival(s, g, t));
    EXPECT_EQ(*(*constrained)->LatestDeparture(s, g, t),
              *reference->LatestDeparture(s, g, t));
  }
}

// ---------- Hour-bucket boundary off-by-ones ----------
//
// The condensed (hub, hour) tables carve label events into buckets with
// asymmetric edge rules (EA: td >= (hour+1)*bucket_seconds is condensed for
// `hour`; LD: ta strictly before hour*bucket_seconds — see tables.cc). The
// paper's example timetable has every event at an exact multiple of 3600,
// so with the default one-hour bucket every label lands exactly on a
// bucket edge — the configuration where an off-by-one in either rule
// flips answers. Brute-check every query type at every event time and its
// +-1 neighbours, from every stop.
TEST(PtldbBucketBoundaryTest, ExampleGraphEventsOnExactHourEdges) {
  const Timetable tt = MakeExampleTimetable();
  TtlBuildOptions options;
  options.custom_order = ExampleVertexOrder();
  const TtlIndex index = BuildIndex(tt, options);
  auto db = BuildDb(index);
  const std::vector<StopId> targets = {4, 6};
  ASSERT_TRUE(db->AddTargetSet("T", index, targets, 2).ok());

  std::set<EventTime> event_times;
  for (const Connection& c : tt.connections()) {
    event_times.insert(c.dep);
    event_times.insert(c.arr);
  }
  for (const EventTime base : event_times) {
    ASSERT_EQ(base.raw_seconds() % kHourBucket.raw_seconds(), 0)
        << "example graph events must sit on exact hour edges";
    for (const EventTime t : {base - DSec(1), base, base + DSec(1)}) {
      for (StopId q = 0; q < tt.num_stops(); ++q) {
        const auto ea_full = BruteEaOneToMany(tt, q, targets, t);
        const auto ld_full = BruteLdOneToMany(tt, q, targets, t);
        const auto ea = db->EaKnn("T", q, t, 2);
        ASSERT_TRUE(ea.ok());
        ExpectKnnValid(*ea, ea_full, 2, "EA edge");
        const auto ld = db->LdKnn("T", q, t, 2);
        ASSERT_TRUE(ld.ok());
        ExpectKnnValid(*ld, ld_full, 2, "LD edge");
        const auto ea_otm = db->EaOneToMany("T", q, t);
        ASSERT_TRUE(ea_otm.ok());
        EXPECT_EQ(*ea_otm, ea_full) << "EA-OTM at t=" << t << " q=" << q;
        const auto ld_otm = db->LdOneToMany("T", q, t);
        ASSERT_TRUE(ld_otm.ok());
        EXPECT_EQ(*ld_otm, ld_full) << "LD-OTM at t=" << t << " q=" << q;
      }
    }
  }
}

// Query timestamps at exact multiples of bucket_seconds (and the seconds
// on either side) on a generated city: t / bucket_seconds changes value
// exactly at these points, so both bucket queries' starting hour and the
// LD feasibility filter are at their most fragile.
class PtldbBucketBoundaryWidthTest : public testing::TestWithParam<int32_t> {
};

TEST_P(PtldbBucketBoundaryWidthTest, QueriesOnExactBucketMultiplesMatchBrute) {
  const Duration bs = DSec(GetParam());
  const Timetable tt = SmallCity(123, /*stops=*/60, /*connections=*/3000);
  const TtlIndex index = BuildIndex(tt);
  auto db = BuildDb(index);
  Rng rng(55);
  const std::vector<StopId> targets = rng.SampleDistinct(tt.num_stops(), 8);
  ASSERT_TRUE(db->AddTargetSet("T", index, targets, 4, bs).ok());

  for (EventTime edge = BucketStart(TimeBucket(tt.min_time(), bs), bs);
       edge <= tt.max_time() + bs; edge += bs) {
    for (const EventTime t : {edge - DSec(1), edge, edge + DSec(1)}) {
      for (int qi = 0; qi < 3; ++qi) {
        const StopId q = static_cast<StopId>(rng.NextBelow(tt.num_stops()));
        const auto ea_full = BruteEaOneToMany(tt, q, targets, t);
        const auto ld_full = BruteLdOneToMany(tt, q, targets, t);
        const auto ea = db->EaKnn("T", q, t, 4);
        ASSERT_TRUE(ea.ok());
        ExpectKnnValid(*ea, ea_full, 4, "EA bucket edge");
        const auto ld = db->LdKnn("T", q, t, 4);
        ASSERT_TRUE(ld.ok());
        ExpectKnnValid(*ld, ld_full, 4, "LD bucket edge");
        const auto otm = db->EaOneToMany("T", q, t);
        ASSERT_TRUE(otm.ok());
        EXPECT_EQ(*otm, ea_full) << "EA-OTM at bucket edge t=" << t;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, PtldbBucketBoundaryWidthTest,
                         testing::Values(1800, 3600, 7200));

// Service times at the very top of the int32 range: the highest hour
// bucket's upper edge (hour+1)*bucket_seconds exceeds INT32_MAX, so the
// table build must carry it in 64 bits — the int32 product would wrap
// negative and condense every tuple into every hour (UB under UBSan).
// Times sit on exact bucket multiples where they can so the edge-ownership
// rules are exercised at the same extreme.
TEST(PtldbBucketBoundaryTest, ServiceTimesNearInt32MaxDoNotOverflow) {
  // 596523 * 3600 = 2147482800 is the last hour edge below INT32_MAX.
  constexpr EventTime kTopEdge =
      EventTime::FromSeconds(int64_t{596523} * 3600);
  TimetableBuilder builder;
  const StopId q = builder.AddStop();
  const StopId m = builder.AddStop();
  const StopId a = builder.AddStop();
  const StopId b = builder.AddStop();
  const TripId t0 = builder.AddTrip();
  const TripId t1 = builder.AddTrip();
  const TripId t2 = builder.AddTrip();
  // Transfer chain q -> m -> a straddling the last hour edge.
  builder.AddConnection(q, m, kTopEdge - DSec(7200),
                        kTopEdge - DSec(5400), t0);
  builder.AddConnection(m, a, kTopEdge - DSec(3600), kTopEdge, t0);
  // Direct q -> b inside the very last (partial) hour bucket.
  builder.AddConnection(q, b, kTopEdge,
                        EventTime::Infinity() - DSec(1), t1);
  // Early q -> a alternative one bucket down, arriving on the edge.
  builder.AddConnection(q, a, kTopEdge - DSec(3600),
                        kTopEdge - DSec(1), t2);
  auto built = std::move(builder).Build();
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const Timetable tt = std::move(built).value();

  const TtlIndex index = BuildIndex(tt);
  const std::vector<StopId> targets = {a, b};
  for (const bool compressed : {false, true}) {
    PtldbOptions options;
    options.device = DeviceProfile::Ram();
    options.compressed_labels = compressed;
    auto db_r = PtldbDatabase::Build(index, options);
    ASSERT_TRUE(db_r.ok()) << db_r.status().ToString();
    auto db = std::move(db_r).value();
    ASSERT_TRUE(db->AddTargetSet("T", index, targets, 2).ok());

    for (const EventTime base :
         {kTopEdge - DSec(7200), kTopEdge - DSec(3600), kTopEdge}) {
      for (const EventTime t : {base - DSec(1), base, base + DSec(1)}) {
        const auto ea_full = BruteEaOneToMany(tt, q, targets, t);
        const auto ea = db->EaKnn("T", q, t, 2);
        ASSERT_TRUE(ea.ok());
        ExpectKnnValid(*ea, ea_full, 2, "EA near INT32_MAX");
        const auto ea_otm = db->EaOneToMany("T", q, t);
        ASSERT_TRUE(ea_otm.ok());
        EXPECT_EQ(*ea_otm, ea_full) << "EA-OTM t=" << t;
        EXPECT_EQ(*db->EarliestArrival(q, a, t), EarliestArrival(tt, q, a, t));
        EXPECT_EQ(*db->EarliestArrival(q, b, t), EarliestArrival(tt, q, b, t));
      }
    }
    for (const EventTime base :
         {kTopEdge - DSec(1), kTopEdge, EventTime::Infinity() - DSec(1)}) {
      for (const EventTime t_end : {base, base + DSec(1)}) {
        const auto ld_full = BruteLdOneToMany(tt, q, targets, t_end);
        const auto ld = db->LdKnn("T", q, t_end, 2);
        ASSERT_TRUE(ld.ok());
        ExpectKnnValid(*ld, ld_full, 2, "LD near INT32_MAX");
        const auto ld_otm = db->LdOneToMany("T", q, t_end);
        ASSERT_TRUE(ld_otm.ok());
        EXPECT_EQ(*ld_otm, ld_full) << "LD-OTM t_end=" << t_end;
        EXPECT_EQ(*db->LatestDeparture(q, b, t_end),
                  LatestDeparture(tt, q, b, t_end));
      }
    }
    EXPECT_EQ(
        *db->ShortestDuration(q, a, kTopEdge - DSec(7200),
                              EventTime::Infinity()),
        ShortestDuration(tt, q, a, kTopEdge - DSec(7200),
                         EventTime::Infinity()));
  }
}

// ---------- Target-set edge cases ----------

// k larger than the target set: every reachable target comes back, k just
// stops truncating. (k > kmax is still a usage error, covered above.)
TEST(PtldbEdgeTest, KnnWithKLargerThanTargetSet) {
  const Timetable tt = SmallCity(44);
  const TtlIndex index = BuildIndex(tt);
  auto db = BuildDb(index);
  Rng rng(12);
  const std::vector<StopId> targets = rng.SampleDistinct(tt.num_stops(), 5);
  ASSERT_TRUE(db->AddTargetSet("T", index, targets, 8).ok());
  for (int trial = 0; trial < 20; ++trial) {
    const StopId q = static_cast<StopId>(rng.NextBelow(tt.num_stops()));
    const auto t = TSec(rng.NextInRange(tt.min_time().raw_seconds(),
                                        tt.max_time().raw_seconds()));
    const auto ea_full = BruteEaOneToMany(tt, q, targets, t);
    const auto ld_full = BruteLdOneToMany(tt, q, targets, t);
    for (const uint32_t k : {6u, 8u}) {  // Both exceed |T| = 5.
      ASSERT_GT(k, targets.size());
      const auto ea = db->EaKnn("T", q, t, k);
      ASSERT_TRUE(ea.ok());
      ExpectKnnValid(*ea, ea_full, k, "EA k>|T|");
      const auto ea_naive = db->EaKnnNaive("T", q, t, k);
      ASSERT_TRUE(ea_naive.ok());
      ExpectKnnValid(*ea_naive, ea_full, k, "EA-naive k>|T|");
      const auto ld = db->LdKnn("T", q, t, k);
      ASSERT_TRUE(ld.ok());
      ExpectKnnValid(*ld, ld_full, k, "LD k>|T|");
    }
  }
}

// Duplicate stops in the target list collapse to set semantics: the set
// behaves exactly like its deduplicated form, and no answer ever lists a
// stop twice.
TEST(PtldbEdgeTest, DuplicateTargetsCollapseToSetSemantics) {
  const Timetable tt = SmallCity(45);
  const TtlIndex index = BuildIndex(tt);
  auto db = BuildDb(index);
  Rng rng(13);
  const std::vector<StopId> uniq = rng.SampleDistinct(tt.num_stops(), 6);
  std::vector<StopId> dup = uniq;
  dup.push_back(uniq[0]);
  dup.push_back(uniq[3]);
  dup.push_back(uniq[0]);
  ASSERT_TRUE(db->AddTargetSet("dup", index, dup, 8).ok());
  ASSERT_TRUE(db->AddTargetSet("uniq", index, uniq, 8).ok());
  for (int trial = 0; trial < 20; ++trial) {
    const StopId q = static_cast<StopId>(rng.NextBelow(tt.num_stops()));
    const auto t = TSec(rng.NextInRange(tt.min_time().raw_seconds(),
                                        tt.max_time().raw_seconds()));
    // Brute takes the raw duplicated list and dedups internally too.
    ExpectKnnValid(*db->EaKnn("dup", q, t, 8),
                   BruteEaOneToMany(tt, q, dup, t), 8, "EA dup");
    EXPECT_EQ(*db->EaOneToMany("dup", q, t), *db->EaOneToMany("uniq", q, t));
    EXPECT_EQ(*db->LdOneToMany("dup", q, t), *db->LdOneToMany("uniq", q, t));
    EXPECT_EQ(*db->EaKnn("dup", q, t, 3), *db->EaKnn("uniq", q, t, 3));
    EXPECT_EQ(*db->LdKnn("dup", q, t, 3), *db->LdKnn("uniq", q, t, 3));
  }
}

// The query stop inside its own target set: EA reports arrival t and LD
// departure t_end ("stay put" — see the kNN doc block in ptldb.h). The
// optimized plan, the naive table and the brute oracle must all agree.
TEST(PtldbEdgeTest, QueryStopInsideTargetSet) {
  const Timetable tt = SmallCity(46);
  const TtlIndex index = BuildIndex(tt);
  auto db = BuildDb(index);
  Rng rng(14);
  const std::vector<StopId> targets = rng.SampleDistinct(tt.num_stops(), 8);
  ASSERT_TRUE(db->AddTargetSet("T", index, targets, 4).ok());
  for (const StopId q : targets) {
    for (int trial = 0; trial < 5; ++trial) {
      const auto t = TSec(rng.NextInRange(tt.min_time().raw_seconds(),
                                          tt.max_time().raw_seconds()));
      const auto ea_full = BruteEaOneToMany(tt, q, targets, t);
      const auto ld_full = BruteLdOneToMany(tt, q, targets, t);
      // The self-answer is always first: nothing beats "already there".
      ASSERT_FALSE(ea_full.empty());
      EXPECT_EQ(ea_full.front(), (StopTimeResult{q, t}));
      ASSERT_FALSE(ld_full.empty());
      EXPECT_EQ(ld_full.front(), (StopTimeResult{q, t}));
      for (const uint32_t k : {1u, 4u}) {
        const auto ea = db->EaKnn("T", q, t, k);
        ASSERT_TRUE(ea.ok());
        ExpectKnnValid(*ea, ea_full, k, "EA self");
        const auto ea_naive = db->EaKnnNaive("T", q, t, k);
        ASSERT_TRUE(ea_naive.ok());
        ExpectKnnValid(*ea_naive, ea_full, k, "EA-naive self");
        const auto ld = db->LdKnn("T", q, t, k);
        ASSERT_TRUE(ld.ok());
        ExpectKnnValid(*ld, ld_full, k, "LD self");
        const auto ld_naive = db->LdKnnNaive("T", q, t, k);
        ASSERT_TRUE(ld_naive.ok());
        ExpectKnnValid(*ld_naive, ld_full, k, "LD-naive self");
      }
      const auto ea_otm = db->EaOneToMany("T", q, t);
      ASSERT_TRUE(ea_otm.ok());
      EXPECT_EQ(*ea_otm, ea_full);
      const auto ld_otm = db->LdOneToMany("T", q, t);
      ASSERT_TRUE(ld_otm.ok());
      EXPECT_EQ(*ld_otm, ld_full);
    }
  }
}

// ---------- Multi-service-period support (Section 3.1) ----------

class CalendarTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(testing::TempDir()) / "calendar_ptldb";
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    Write("stops.txt",
          "stop_id,stop_name,stop_lat,stop_lon\n"
          "A,Alpha,0,0\nB,Beta,0,1\nC,Gamma,1,1\n");
    Write("trips.txt",
          "route_id,service_id,trip_id\n"
          "R,WK,T1\nR,WK,T2\nR,WE,T3\n");
    // Weekdays: A->B->C morning + B->C midday; weekends: only A->B later.
    Write("stop_times.txt",
          "trip_id,arrival_time,departure_time,stop_id,stop_sequence\n"
          "T1,08:00:00,08:00:00,A,1\n"
          "T1,08:20:00,08:21:00,B,2\n"
          "T1,08:40:00,08:40:00,C,3\n"
          "T2,12:00:00,12:00:00,B,1\n"
          "T2,12:30:00,12:30:00,C,2\n"
          "T3,10:00:00,10:00:00,A,1\n"
          "T3,10:45:00,10:45:00,B,2\n");
    Write("calendar.txt",
          "service_id,monday,tuesday,wednesday,thursday,friday,saturday,"
          "sunday,start_date,end_date\n"
          "WK,1,1,1,1,1,0,0,20260101,20261231\n"
          "WE,0,0,0,0,0,1,1,20260101,20261231\n");
  }

  void Write(const std::string& name, const std::string& content) {
    ASSERT_TRUE(WriteStringToFile((dir_ / name).string(), content).ok());
  }

  std::filesystem::path dir_;
};

TEST_F(CalendarTest, BuildsOnePeriodPerDistinctTimetable) {
  CalendarPtldb::Options options;
  options.database.device = DeviceProfile::Ram();
  auto calendar = CalendarPtldb::FromGtfs(dir_.string(), options);
  ASSERT_TRUE(calendar.ok()) << calendar.status().ToString();
  // Mon-Fri share one timetable, Sat/Sun another.
  EXPECT_EQ((*calendar)->num_distinct_periods(), 2u);

  // Weekday: A reaches C at 08:40.
  auto weekday =
      (*calendar)->EarliestArrival(Weekday::kWednesday, "A", "C", TSec(7 * 3600));
  ASSERT_TRUE(weekday.ok());
  EXPECT_EQ(*weekday, TSec(8 * 3600 + 40 * 60));
  // Weekend: C is unreachable, A->B arrives 10:45.
  auto weekend_c =
      (*calendar)->EarliestArrival(Weekday::kSunday, "A", "C", TSec(7 * 3600));
  ASSERT_TRUE(weekend_c.ok());
  EXPECT_EQ(*weekend_c, EventTime::Infinity());
  auto weekend_b =
      (*calendar)->EarliestArrival(Weekday::kSunday, "A", "B", TSec(7 * 3600));
  ASSERT_TRUE(weekend_b.ok());
  EXPECT_EQ(*weekend_b, TSec(10 * 3600 + 45 * 60));
}

TEST_F(CalendarTest, TargetSetsSpanAllPeriods) {
  CalendarPtldb::Options options;
  options.database.device = DeviceProfile::Ram();
  auto calendar = CalendarPtldb::FromGtfs(dir_.string(), options);
  ASSERT_TRUE(calendar.ok());
  ASSERT_TRUE((*calendar)->AddTargetSet("poi", {"B", "C"}, 2).ok());

  PtldbDatabase* monday = (*calendar)->ForDay(Weekday::kMonday);
  const StopId a = (*calendar)->StopFor(Weekday::kMonday, "A");
  const auto knn = monday->EaKnn("poi", a, TSec(7 * 3600), 2);
  ASSERT_TRUE(knn.ok());
  ASSERT_EQ(knn->size(), 2u);
  EXPECT_EQ((*knn)[0].time, TSec(8 * 3600 + 20 * 60));

  PtldbDatabase* sunday = (*calendar)->ForDay(Weekday::kSunday);
  const StopId a2 = (*calendar)->StopFor(Weekday::kSunday, "A");
  const auto weekend = sunday->EaKnn("poi", a2, TSec(7 * 3600), 2);
  ASSERT_TRUE(weekend.ok());
  ASSERT_EQ(weekend->size(), 1u);  // Only B reachable.
}

TEST_F(CalendarTest, UnknownStopsFail) {
  CalendarPtldb::Options options;
  options.database.device = DeviceProfile::Ram();
  auto calendar = CalendarPtldb::FromGtfs(dir_.string(), options);
  ASSERT_TRUE(calendar.ok());
  EXPECT_FALSE(
      (*calendar)->EarliestArrival(Weekday::kMonday, "zz", "A", TSec(0)).ok());
  EXPECT_FALSE((*calendar)->AddTargetSet("bad", {"zz"}, 2).ok());
}

// ---------- Storage behaviour ----------

TEST(PtldbStorageTest, V2vTouchesExactlyTwoLabelRows) {
  const Timetable tt = SmallCity(9);
  const TtlIndex index = BuildIndex(tt);
  PtldbOptions options;
  options.device = DeviceProfile::Hdd7200();
  auto db = PtldbDatabase::Build(index, options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->DropCaches().ok());
  (*db)->ResetIoStats();
  EXPECT_TRUE((*db)->EarliestArrival(3, 7, tt.min_time()).ok());
  // Two label rows: at most two random page accesses beyond index pages,
  // i.e. random reads are bounded by 2 (rows) + index height * 2.
  StorageDevice* device = (*db)->engine()->device();
  const uint64_t random_reads = device->reads() - device->sequential_reads();
  EXPECT_LE(random_reads, 8u);
  EXPECT_GT(device->total_ns(), 0u);
}

TEST(PtldbStorageTest, WarmCacheCostsNoIo) {
  const Timetable tt = SmallCity(10);
  const TtlIndex index = BuildIndex(tt);
  PtldbOptions options;
  options.device = DeviceProfile::Hdd7200();
  auto db = PtldbDatabase::Build(index, options);
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE((*db)->EarliestArrival(3, 7, tt.min_time()).ok());
  (*db)->ResetIoStats();
  EXPECT_TRUE((*db)->EarliestArrival(3, 7, tt.min_time()).ok());  // Same rows, now cached.
  EXPECT_EQ((*db)->io_time_ns(), 0u);
}

// A handcrafted timetable whose event times sit a few hours below
// INT32_MAX: every layer that does time arithmetic (label merge kernels,
// the SD duration fold, bucket index math at the top of the key range)
// must run its intermediates in 64-bit. Answers are checked against both
// handcomputed values and the CSA/brute oracles, on both executors.
TEST(PtldbOverflowTest, AnswersOnTimetableNearInt32Max) {
  const EventTime base = EventTime::Infinity() - DSec(8 * 3600);
  TimetableBuilder builder;
  for (int i = 0; i < 4; ++i) {
    builder.AddStop({.name = "s" + std::to_string(i)});
  }
  const TripId t1 = builder.AddTrip();
  const TripId t2 = builder.AddTrip();
  const TripId t3 = builder.AddTrip();
  builder.AddConnection(0, 1, base + DSec(100), base + DSec(200), t1);
  builder.AddConnection(1, 2, base + DSec(300), base + DSec(400), t2);
  builder.AddConnection(2, 3, base + DSec(500), base + DSec(600), t3);
  auto built = std::move(builder).Build();
  ASSERT_TRUE(built.ok());
  const Timetable tt = std::move(built).value();
  const TtlIndex index = BuildIndex(tt);

  for (const bool compressed : {false, true}) {
    PtldbOptions options;
    options.device = DeviceProfile::Ram();
    options.compressed_labels = compressed;
    auto db = PtldbDatabase::Build(index, options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    const std::vector<StopId> targets = {1, 3};
    ASSERT_TRUE((*db)->AddTargetSet("T", index, targets, 2).ok());
    for (const bool compiled : {true, false}) {
      (*db)->set_compiled_queries(compiled);
      const auto ea = (*db)->EarliestArrival(0, 3, base);
      ASSERT_TRUE(ea.ok());
      EXPECT_EQ(*ea, base + DSec(600));
      EXPECT_EQ(*ea, EarliestArrival(tt, 0, 3, base));
      const auto ld = (*db)->LatestDeparture(0, 3, base + DSec(600));
      ASSERT_TRUE(ld.ok());
      EXPECT_EQ(*ld, base + DSec(100));
      EXPECT_EQ(*ld, LatestDeparture(tt, 0, 3, base + DSec(600)));
      const auto sd =
          (*db)->ShortestDuration(0, 3, base, base + DSec(600));
      ASSERT_TRUE(sd.ok());
      EXPECT_EQ(*sd, DSec(500));
      EXPECT_EQ(*sd, ShortestDuration(tt, 0, 3, base, base + DSec(600)));
      // Unreachable stays the saturated sentinel, not a wrapped value.
      const auto none = (*db)->EarliestArrival(3, 0, base);
      ASSERT_TRUE(none.ok());
      EXPECT_EQ(*none, EventTime::Infinity());
      const auto knn = (*db)->EaKnn("T", 0, base, 2);
      ASSERT_TRUE(knn.ok());
      ExpectKnnValid(*knn, BruteEaOneToMany(tt, 0, targets, base), 2,
                     compiled ? "EA-kNN vm" : "EA-kNN interp");
      const auto otm = (*db)->LdOneToMany("T", 0, base + DSec(600));
      ASSERT_TRUE(otm.ok());
      const auto brute = BruteLdOneToMany(tt, 0, targets, base + DSec(600));
      ASSERT_EQ(otm->size(), brute.size());
      for (size_t i = 0; i < brute.size(); ++i) {
        EXPECT_EQ((*otm)[i], brute[i]);
      }
    }
  }
}

TEST(PtldbStorageTest, SsdIsFasterThanHddForColdV2v) {
  const Timetable tt = SmallCity(11);
  const TtlIndex index = BuildIndex(tt);
  uint64_t io_ns[2] = {0, 0};
  const DeviceProfile profiles[2] = {DeviceProfile::Hdd7200(),
                                     DeviceProfile::SataSsd()};
  for (int i = 0; i < 2; ++i) {
    PtldbOptions options;
    options.device = profiles[i];
    auto db = PtldbDatabase::Build(index, options);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->DropCaches().ok());
    (*db)->ResetIoStats();
    EXPECT_TRUE((*db)->EarliestArrival(5, 17, tt.min_time()).ok());
    io_ns[i] = (*db)->io_time_ns();
  }
  EXPECT_GT(io_ns[0], io_ns[1] * 5);
}

}  // namespace
}  // namespace ptldb
