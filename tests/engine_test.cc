#include <gtest/gtest.h>

#include "engine/btree.h"
#include "engine/buffer_pool.h"
#include "engine/database.h"
#include "engine/device.h"
#include "engine/exec.h"
#include "common/rng.h"
#include "engine/heap_file.h"

namespace ptldb {
namespace {

TEST(DeviceTest, ChargesRandomVsSequential) {
  StorageDevice device(DeviceProfile::Hdd7200());
  device.ResetStats();
  device.ChargeRead(10);  // Random.
  device.ChargeRead(11);  // Sequential.
  device.ChargeRead(12);  // Sequential.
  device.ChargeRead(50);  // Random.
  const auto& p = device.profile();
  EXPECT_EQ(device.total_ns(), 2 * p.random_read_ns + 2 * p.sequential_read_ns);
  EXPECT_EQ(device.reads(), 4u);
  EXPECT_EQ(device.sequential_reads(), 2u);
}

TEST(DeviceTest, ProfilesAreOrdered) {
  EXPECT_GT(DeviceProfile::Hdd7200().random_read_ns,
            DeviceProfile::SataSsd().random_read_ns);
  EXPECT_EQ(DeviceProfile::Ram().random_read_ns, 0u);
}

TEST(BufferPoolTest, HitsAfterFirstFetch) {
  PageStore store;
  const PageId a = store.Allocate();
  StorageDevice device(DeviceProfile::SataSsd());
  BufferPool pool(&store, &device);
  EXPECT_TRUE(pool.Fetch(a).ok());
  EXPECT_TRUE(pool.Fetch(a).ok());
  EXPECT_TRUE(pool.Fetch(a).ok());
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.hits(), 2u);
  EXPECT_EQ(device.reads(), 1u);
}

TEST(BufferPoolTest, DropCachesForcesMissesAgain) {
  PageStore store;
  const PageId a = store.Allocate();
  StorageDevice device(DeviceProfile::SataSsd());
  BufferPool pool(&store, &device);
  EXPECT_TRUE(pool.Fetch(a).ok());
  ASSERT_TRUE(pool.DropCaches().ok());
  EXPECT_TRUE(pool.Fetch(a).ok());
  EXPECT_EQ(pool.misses(), 2u);
}

TEST(BufferPoolTest, LruEvictsColdestPage) {
  PageStore store;
  for (int i = 0; i < 3; ++i) store.Allocate();
  StorageDevice device(DeviceProfile::SataSsd());
  BufferPool pool(&store, &device, /*capacity_pages=*/2);
  EXPECT_TRUE(pool.Fetch(0).ok());
  EXPECT_TRUE(pool.Fetch(1).ok());
  EXPECT_TRUE(pool.Fetch(0).ok());  // 0 is now hottest.
  EXPECT_TRUE(pool.Fetch(2).ok());  // Evicts 1.
  EXPECT_EQ(pool.resident_pages(), 2u);
  pool.ResetStats();
  EXPECT_TRUE(pool.Fetch(0).ok());
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_TRUE(pool.Fetch(1).ok());
  EXPECT_EQ(pool.misses(), 1u);
}

TEST(PageGuardTest, GuardKeepsFrameAliveUnderEvictionPressure) {
  PageStore store;
  for (int i = 0; i < 10; ++i) {
    const PageId id = store.Allocate();
    store.page(id).bytes.fill(static_cast<uint8_t>(id + 1));
  }
  store.StampChecksums();
  StorageDevice device(DeviceProfile::Ram());
  BufferPool pool(&store, &device, /*capacity_pages=*/2);
  auto pinned = pool.Fetch(0);
  ASSERT_TRUE(pinned.ok());
  // Churn every other page through the 2-frame pool: page 0 would be the
  // LRU victim many times over, but the pin forbids eviction.
  for (PageId id = 1; id < 10; ++id) ASSERT_TRUE(pool.Fetch(id).ok());
  EXPECT_EQ((*pinned)->bytes[123], 1);
  EXPECT_EQ(pool.pinned_pages(), 1u);
  pool.ResetStats();
  ASSERT_TRUE(pool.Fetch(0).ok());
  EXPECT_EQ(pool.hits(), 1u);  // Still resident: never evicted.
}

TEST(PageGuardTest, MoveTransfersThePin) {
  PageStore store;
  store.Allocate();
  StorageDevice device(DeviceProfile::Ram());
  BufferPool pool(&store, &device, /*capacity_pages=*/2);
  auto fetched = pool.Fetch(0);
  ASSERT_TRUE(fetched.ok());
  PageGuard moved = std::move(*fetched);
  fetched->Release();  // Moved-from guard: releasing is a no-op.
  EXPECT_EQ(pool.pinned_pages(), 1u);
  EXPECT_EQ(moved->bytes[0], 0);
  moved.Release();
  EXPECT_EQ(pool.pinned_pages(), 0u);
  moved.Release();  // Idempotent.
  EXPECT_EQ(pool.pinned_pages(), 0u);
}

TEST(PageGuardTest, AllFramesPinnedFailsLoudly) {
  PageStore store;
  for (int i = 0; i < 3; ++i) store.Allocate();
  StorageDevice device(DeviceProfile::Ram());
  BufferPool pool(&store, &device, /*capacity_pages=*/2);
  auto g0 = pool.Fetch(0);
  auto g1 = pool.Fetch(1);
  ASSERT_TRUE(g0.ok());
  ASSERT_TRUE(g1.ok());
  // Both frames pinned: the pool must refuse (after its bounded wait)
  // rather than silently invalidate a live guard.
  auto r = pool.Fetch(2);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kInternal);
  g0->Release();
  EXPECT_TRUE(pool.Fetch(2).ok());
}

TEST(PageGuardTest, DropCachesRejectsActivePins) {
  PageStore store;
  for (int i = 0; i < 2; ++i) store.Allocate();
  StorageDevice device(DeviceProfile::Ram());
  BufferPool pool(&store, &device);
  auto g = pool.Fetch(0);
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(pool.Fetch(1).ok());  // Unpinned immediately.
  const Status rejected = pool.DropCaches();
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), Status::Code::kInternal);
  // The drop was partial: unpinned page 1 went, pinned page 0 stayed.
  EXPECT_EQ(pool.resident_pages(), 1u);
  EXPECT_EQ((*g)->bytes[0], 0);  // Guard still valid after the drop.
  g->Release();
  EXPECT_TRUE(pool.DropCaches().ok());
  EXPECT_EQ(pool.resident_pages(), 0u);
}

TEST(BufferPoolTest, AutoShardCountScalesWithCapacity) {
  PageStore store;
  store.Allocate();
  StorageDevice device(DeviceProfile::Ram());
  // Tiny pools collapse to one shard so eviction-order tests see strict
  // global LRU; serving-sized pools spread over several latches.
  BufferPool tiny(&store, &device, /*capacity_pages=*/2);
  EXPECT_EQ(tiny.num_shards(), 1u);
  BufferPool big(&store, &device, /*capacity_pages=*/1u << 20);
  EXPECT_GT(big.num_shards(), 1u);
  // An explicit shard count wins, but never exceeds one frame per shard.
  BufferPool pinned_layout(&store, &device, /*capacity_pages=*/8,
                           /*num_shards=*/4);
  EXPECT_EQ(pinned_layout.num_shards(), 4u);
  BufferPool clamped(&store, &device, /*capacity_pages=*/2, /*num_shards=*/8);
  EXPECT_EQ(clamped.num_shards(), 2u);
}

TEST(BufferPoolTest, ShardStatsSumToPoolTotals) {
  PageStore store;
  for (int i = 0; i < 64; ++i) {
    const PageId id = store.Allocate();
    store.page(id).bytes.fill(static_cast<uint8_t>(id));
  }
  store.StampChecksums();
  StorageDevice device(DeviceProfile::Ram());
  BufferPool pool(&store, &device, /*capacity_pages=*/16, /*num_shards=*/4);
  for (PageId id = 0; id < 64; ++id) ASSERT_TRUE(pool.Fetch(id).ok());
  for (PageId id = 0; id < 64; id += 7) ASSERT_TRUE(pool.Fetch(id).ok());
  uint64_t hits = 0, misses = 0, evictions = 0, resident = 0;
  for (uint32_t s = 0; s < pool.num_shards(); ++s) {
    const BufferPool::ShardStats stats = pool.shard_stats(s);
    EXPECT_LE(stats.resident_pages, stats.capacity_pages);
    hits += stats.hits;
    misses += stats.misses;
    evictions += stats.evictions;
    resident += stats.resident_pages;
  }
  EXPECT_EQ(hits, pool.hits());
  EXPECT_EQ(misses, pool.misses());
  EXPECT_EQ(evictions, pool.evictions());
  EXPECT_EQ(resident, pool.resident_pages());
  EXPECT_LE(pool.resident_pages(), 16u);
  EXPECT_EQ(pool.pinned_pages(), 0u);  // All guards were temporaries.
}

class HeapTest : public testing::Test {
 protected:
  HeapTest() : device_(DeviceProfile::Ram()), pool_(&store_, &device_) {}
  PageStore store_;
  StorageDevice device_;
  BufferPool pool_;
};

TEST_F(HeapTest, RoundTripsScalarAndArrayColumns) {
  const Schema schema{{"a", ColumnType::kInt32},
                      {"b", ColumnType::kInt32Array}};
  HeapFile heap(&store_);
  const Row row{Value(7), Value(std::vector<int32_t>{1, -2, 3})};
  const RowLocator loc = heap.Append(row, schema);
  EXPECT_EQ(loc.length, SerializedRowSize(row, schema));
  EXPECT_EQ(*heap.Read(loc, schema, &pool_), row);
}

TEST_F(HeapTest, RowsLargerThanPageSpanPages) {
  const Schema schema{{"big", ColumnType::kInt32Array}};
  HeapFile heap(&store_);
  std::vector<int32_t> big(5000);  // 20 KB > 2 pages.
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<int32_t>(i * 3);
  const Row row{Value(big)};
  const RowLocator loc = heap.Append(row, schema);
  EXPECT_GE(heap.num_pages(), 3u);
  EXPECT_EQ(*heap.Read(loc, schema, &pool_), row);
}

TEST_F(HeapTest, ManyRowsBackToBack) {
  const Schema schema{{"a", ColumnType::kInt32},
                      {"b", ColumnType::kInt32Array}};
  HeapFile heap(&store_);
  std::vector<RowLocator> locators;
  std::vector<Row> rows;
  for (int i = 0; i < 500; ++i) {
    Row row{Value(i), Value(std::vector<int32_t>(
                          static_cast<size_t>(i % 37), i))};
    locators.push_back(heap.Append(row, schema));
    rows.push_back(std::move(row));
  }
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(*heap.Read(locators[i], schema, &pool_), rows[i]) << i;
  }
}

TEST_F(HeapTest, WideRowReadIsOneSeekPlusSequential) {
  const Schema schema{{"big", ColumnType::kInt32Array}};
  HeapFile heap(&store_);
  const Row row{Value(std::vector<int32_t>(10000, 1))};  // ~40 KB, 5+ pages.
  const RowLocator loc = heap.Append(row, schema);
  StorageDevice hdd(DeviceProfile::Hdd7200());
  BufferPool cold(&store_, &hdd);
  ASSERT_TRUE(heap.Read(loc, schema, &cold).ok());
  // Exactly one random access; everything else streams.
  EXPECT_EQ(hdd.reads() - hdd.sequential_reads(), 1u);
  EXPECT_GE(hdd.sequential_reads(), 4u);
}

TEST(CompositeKeyTest, PreservesLexicographicOrder) {
  EXPECT_LT(MakeCompositeKey(1, 5), MakeCompositeKey(2, 0));
  EXPECT_LT(MakeCompositeKey(1, 5), MakeCompositeKey(1, 6));
  EXPECT_EQ(MakeCompositeKey(0, 0), 0);
  EXPECT_LT(MakeCompositeKey(3, 0x7fffffff), MakeCompositeKey(4, 0));
}

class BTreeTest : public testing::Test {
 protected:
  BTreeTest() : device_(DeviceProfile::Ram()), pool_(&store_, &device_) {}
  PageStore store_;
  StorageDevice device_;
  BufferPool pool_;
};

TEST_F(BTreeTest, FindOnMultiLevelTree) {
  BTree tree(&store_);
  std::vector<std::pair<IndexKey, RowLocator>> entries;
  for (int i = 0; i < 20000; ++i) {
    entries.emplace_back(i * 3, RowLocator{static_cast<uint64_t>(i), 1});
  }
  tree.BulkLoad(entries);
  EXPECT_GE(tree.height(), 2u);
  EXPECT_EQ(tree.num_entries(), 20000u);
  for (int i = 0; i < 20000; i += 97) {
    const auto hit = tree.Find(i * 3, &pool_);
    ASSERT_TRUE(hit->has_value()) << i;
    EXPECT_EQ((*hit)->offset, static_cast<uint64_t>(i));
    EXPECT_FALSE(tree.Find(i * 3 + 1, &pool_)->has_value());
  }
  EXPECT_FALSE(tree.Find(-1, &pool_)->has_value());
  EXPECT_FALSE(tree.Find(3 * 20000 + 5, &pool_)->has_value());
}

TEST_F(BTreeTest, EmptyTree) {
  BTree tree(&store_);
  tree.BulkLoad({});
  EXPECT_FALSE(tree.Find(0, &pool_)->has_value());
  EXPECT_FALSE(tree.SeekNotBefore(0, &pool_).Valid());
}

TEST_F(BTreeTest, SeekIteratesInOrderAcrossLeaves) {
  BTree tree(&store_);
  std::vector<std::pair<IndexKey, RowLocator>> entries;
  for (int i = 0; i < 5000; ++i) {
    entries.emplace_back(i * 2, RowLocator{static_cast<uint64_t>(i), 1});
  }
  tree.BulkLoad(entries);
  // Seek to an absent key lands on the next present one.
  auto it = tree.SeekNotBefore(1001, &pool_);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 1002);
  int count = 0;
  IndexKey prev = -1;
  while (it.Valid()) {
    EXPECT_GT(it.key(), prev);
    prev = it.key();
    it.Next();
    ++count;
  }
  EXPECT_EQ(count, 5000 - 501);
  // Seeking past the end is invalid.
  EXPECT_FALSE(tree.SeekNotBefore(999999, &pool_).Valid());
}

TEST_F(BTreeTest, RandomizedAgainstStdMap) {
  // Property check: bulk-loaded tree behaves like a sorted map for point
  // lookups and lower-bound seeks, across random key distributions.
  Rng rng(99);
  for (int trial = 0; trial < 5; ++trial) {
    std::map<IndexKey, RowLocator> truth;
    const int n = 1 + static_cast<int>(rng.NextBelow(3000));
    while (static_cast<int>(truth.size()) < n) {
      const auto key = static_cast<IndexKey>(rng.NextBelow(1u << 20));
      truth[key] = RowLocator{static_cast<uint64_t>(key) * 7, 3};
    }
    PageStore store;
    StorageDevice device(DeviceProfile::Ram());
    BufferPool pool(&store, &device);
    BTree tree(&store);
    tree.BulkLoad({truth.begin(), truth.end()});
    for (int probe = 0; probe < 300; ++probe) {
      const auto key = static_cast<IndexKey>(rng.NextBelow(1u << 20));
      const auto hit = tree.Find(key, &pool);
      const auto it = truth.find(key);
      ASSERT_EQ(hit->has_value(), it != truth.end()) << key;
      if (hit->has_value()) EXPECT_EQ(**hit, it->second);
      auto cursor = tree.SeekNotBefore(key, &pool);
      const auto lb = truth.lower_bound(key);
      if (lb == truth.end()) {
        EXPECT_FALSE(cursor.Valid());
      } else {
        ASSERT_TRUE(cursor.Valid());
        EXPECT_EQ(cursor.key(), lb->first);
      }
    }
  }
}

class ExecTest : public testing::Test {
 protected:
  ExecTest() : db_(DeviceProfile::Ram()) {
    auto table = db_.CreateTable(
        "t", Schema{{"id", ColumnType::kInt32},
                    {"vals", ColumnType::kInt32Array},
                    {"times", ColumnType::kInt32Array}});
    table_ = *table;
    std::vector<std::pair<IndexKey, Row>> rows;
    for (int32_t i = 0; i < 10; ++i) {
      rows.emplace_back(
          i, Row{Value(i), Value(std::vector<int32_t>{i, i + 1, i + 2}),
                 Value(std::vector<int32_t>{10 * i, 10 * i + 1, 10 * i + 2})});
    }
    EXPECT_TRUE(table_->BulkLoad(std::move(rows)).ok());
  }

  EngineDatabase db_;
  EngineTable* table_ = nullptr;
};

TEST_F(ExecTest, IndexLookupFindsRow) {
  auto op = MakeIndexLookup(table_, 3, db_.buffer_pool());
  const auto rows = *Execute(op.get());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInt(), 3);
  EXPECT_TRUE(Execute(op.get())->empty());  // Exhausted.
}

TEST_F(ExecTest, IndexLookupMissYieldsNothing) {
  auto op = MakeIndexLookup(table_, 77, db_.buffer_pool());
  EXPECT_TRUE(Execute(op.get())->empty());
}

TEST_F(ExecTest, RangeScanRespectsBounds) {
  auto op = MakeIndexRangeScan(table_, 4, 6, db_.buffer_pool());
  const auto rows = *Execute(op.get());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0].AsInt(), 4);
  EXPECT_EQ(rows[2][0].AsInt(), 6);
}

TEST_F(ExecTest, UnnestZipsParallelArrays) {
  auto op = MakeUnnest(MakeIndexLookup(table_, 2, db_.buffer_pool()), {0},
                       {1, 2});
  const auto rows = *Execute(op.get());
  ASSERT_EQ(rows.size(), 3u);
  // (id, val, time) triples in array order.
  EXPECT_EQ(rows[1][0].AsInt(), 2);
  EXPECT_EQ(rows[1][1].AsInt(), 3);
  EXPECT_EQ(rows[1][2].AsInt(), 21);
}

TEST_F(ExecTest, UnnestLimitSlicesLikeSqlOneToK) {
  auto op = MakeUnnest(MakeIndexLookup(table_, 2, db_.buffer_pool()), {},
                       {1}, /*limit_elems=*/2);
  EXPECT_EQ(Execute(op.get())->size(), 2u);
}

TEST_F(ExecTest, FilterAndProject) {
  auto op = MakeUnnest(MakeIndexLookup(table_, 5, db_.buffer_pool()), {},
                       {1, 2});
  op = MakeFilter(std::move(op),
                  [](const Row& r) { return r[0].AsInt() % 2 == 0; });
  op = MakeProject(std::move(op),
                   [](const Row& r) { return Row{r[1]}; });
  const auto rows = *Execute(op.get());
  ASSERT_EQ(rows.size(), 1u);  // vals {5,6,7} -> only 6 is even.
  EXPECT_EQ(rows[0][0].AsInt(), 51);  // time of val 6.
}

TEST_F(ExecTest, IndexJoinAppendsRightRow) {
  std::vector<Row> left{{Value(1)}, {Value(42)}, {Value(3)}};
  auto op = MakeIndexJoin(
      MakeVectorSource(left), table_,
      [](const Row& r) { return static_cast<IndexKey>(r[0].AsInt()); },
      db_.buffer_pool());
  const auto rows = *Execute(op.get());
  ASSERT_EQ(rows.size(), 2u);  // Key 42 has no match.
  EXPECT_EQ(rows[0][1].AsInt(), 1);
  EXPECT_EQ(rows[1][1].AsInt(), 3);
}

TEST_F(ExecTest, IndexRangeJoinEmitsAllMatches) {
  std::vector<Row> left{{Value(7)}};
  auto op = MakeIndexRangeJoin(
      MakeVectorSource(left), table_,
      [](const Row& r) { return static_cast<IndexKey>(r[0].AsInt()); },
      [](const Row&) { return static_cast<IndexKey>(9); }, db_.buffer_pool());
  const auto rows = *Execute(op.get());
  ASSERT_EQ(rows.size(), 3u);  // Rows 7, 8, 9.
  EXPECT_EQ(rows[2][1].AsInt(), 9);
}

TEST_F(ExecTest, HashJoinEmitsAllMatchesPerKey) {
  std::vector<Row> left{{Value(1), Value(10)},
                        {Value(2), Value(20)},
                        {Value(9), Value(90)}};
  std::vector<Row> right{{Value(100), Value(1)},
                         {Value(101), Value(1)},
                         {Value(102), Value(2)}};
  auto op = MakeHashJoin(MakeVectorSource(left), MakeVectorSource(right),
                         /*left_key_col=*/0, /*right_key_col=*/1);
  const auto rows = *Execute(op.get());
  ASSERT_EQ(rows.size(), 3u);  // Key 1 matches twice, key 2 once, key 9 none.
  EXPECT_EQ(rows[0][2].AsInt(), 100);
  EXPECT_EQ(rows[1][2].AsInt(), 101);
  EXPECT_EQ(rows[2][0].AsInt(), 2);
  EXPECT_EQ(rows[2][2].AsInt(), 102);
}

TEST_F(ExecTest, HashJoinWithEmptySides) {
  std::vector<Row> left{{Value(1)}};
  auto no_right = MakeHashJoin(MakeVectorSource(left), MakeVectorSource({}),
                               0, 0);
  EXPECT_TRUE(Execute(no_right.get())->empty());
  std::vector<Row> right{{Value(1)}};
  auto no_left = MakeHashJoin(MakeVectorSource({}), MakeVectorSource(right),
                              0, 0);
  EXPECT_TRUE(Execute(no_left.get())->empty());
}

TEST_F(ExecTest, HashAggregateMinMax) {
  std::vector<Row> input{{Value(1), Value(10)},
                         {Value(2), Value(5)},
                         {Value(1), Value(3)},
                         {Value(2), Value(9)}};
  auto mins = MakeHashAggregate(MakeVectorSource(input), 0, 1, AggFn::kMin);
  auto rows = *Execute(mins.get());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1].AsInt(), 3);
  EXPECT_EQ(rows[1][1].AsInt(), 5);
  auto maxs = MakeHashAggregate(MakeVectorSource(input), 0, 1, AggFn::kMax);
  rows = *Execute(maxs.get());
  EXPECT_EQ(rows[0][1].AsInt(), 10);
  EXPECT_EQ(rows[1][1].AsInt(), 9);
}

TEST_F(ExecTest, SortLimitConcat) {
  std::vector<Row> a{{Value(3)}, {Value(1)}};
  std::vector<Row> b{{Value(2)}};
  std::vector<OperatorPtr> parts;
  parts.push_back(MakeVectorSource(a));
  parts.push_back(MakeVectorSource(b));
  auto op = MakeConcat(std::move(parts));
  op = MakeSort(std::move(op), [](const Row& x, const Row& y) {
    return x[0].AsInt() < y[0].AsInt();
  });
  op = MakeLimit(std::move(op), 2);
  const auto rows = *Execute(op.get());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0].AsInt(), 1);
  EXPECT_EQ(rows[1][0].AsInt(), 2);
}

// ---------- End-of-stream latching under injected faults ----------
//
// Regression tests for the Operator latch contract (exec.h): before the
// latch existed, the faulting read did not advance the scan cursor, so a
// pull after a transient mid-scan fault retried the read, silently resumed
// the stream, and a later clean end overwrote the parked error with OK —
// a mid-stream kIoError surfaced as a shorter-but-OK result.

TEST_F(ExecTest, MidStreamFaultIsLatchedNotResumed) {
  auto op = MakeIndexRangeScan(table_, 0, 9, db_.buffer_pool());
  ASSERT_TRUE(op->Next().has_value());
  ASSERT_TRUE(op->Next().has_value());
  // Fail every device read and cold-cache so the next pull really faults.
  FaultPolicy faults;
  faults.seed = 9;
  faults.transient_error_prob = 1.0;
  db_.device()->set_fault_policy(faults);
  ASSERT_TRUE(db_.buffer_pool()->DropCaches().ok());
  ASSERT_FALSE(op->Next().has_value());
  const Status fault = op->status();
  ASSERT_FALSE(fault.ok());
  EXPECT_EQ(fault.code(), Status::Code::kIoError);
  // Heal the device: the fault is now transient in hindsight. The stream
  // must stay ended and the parked error must survive further pulls.
  db_.device()->set_fault_policy(FaultPolicy{});
  ASSERT_TRUE(db_.buffer_pool()->DropCaches().ok());
  for (int i = 0; i < 12; ++i) EXPECT_FALSE(op->Next().has_value());
  EXPECT_EQ(op->status().code(), Status::Code::kIoError);
  EXPECT_EQ(op->status().ToString(), fault.ToString());
}

TEST_F(ExecTest, ConcatDoesNotResumePastAFaultedChild) {
  std::vector<OperatorPtr> parts;
  parts.push_back(MakeIndexRangeScan(table_, 0, 4, db_.buffer_pool()));
  std::vector<Row> tail{{Value(100)}};
  parts.push_back(MakeVectorSource(tail));
  auto op = MakeConcat(std::move(parts));
  ASSERT_TRUE(op->Next().has_value());
  FaultPolicy faults;
  faults.seed = 3;
  faults.transient_error_prob = 1.0;
  db_.device()->set_fault_policy(faults);
  ASSERT_TRUE(db_.buffer_pool()->DropCaches().ok());
  ASSERT_FALSE(op->Next().has_value());
  ASSERT_FALSE(op->status().ok());
  db_.device()->set_fault_policy(FaultPolicy{});
  ASSERT_TRUE(db_.buffer_pool()->DropCaches().ok());
  // Neither the faulted child nor the healthy one after it may produce
  // more rows once the fault ended the concatenated stream.
  EXPECT_FALSE(op->Next().has_value());
  EXPECT_FALSE(op->status().ok());
}

TEST_F(ExecTest, FaultedPlanStaysFaultedAfterHeal) {
  auto op = MakeIndexRangeScan(table_, 0, 9, db_.buffer_pool());
  FaultPolicy faults;
  faults.seed = 21;
  faults.transient_error_prob = 1.0;
  db_.device()->set_fault_policy(faults);
  ASSERT_TRUE(db_.buffer_pool()->DropCaches().ok());
  const auto first = Execute(op.get());
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), Status::Code::kIoError);
  // Re-draining the same faulted root after the device heals must report
  // the original fault — before the latch it re-ran the scan from the
  // parked cursor and returned the rows with an OK status.
  db_.device()->set_fault_policy(FaultPolicy{});
  ASSERT_TRUE(db_.buffer_pool()->DropCaches().ok());
  const auto second = Execute(op.get());
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), Status::Code::kIoError);
}

// ---------- Checksums, fault injection, and retries ----------

TEST(ChecksumPageTest, StampAndVerifyRoundTrip) {
  PageStore store;
  const PageId a = store.Allocate();
  store.page(a).bytes[100] = 42;
  EXPECT_FALSE(store.stamped(a));  // Dirty until sealed.
  store.StampChecksums();
  EXPECT_TRUE(store.stamped(a));
  StorageDevice device(DeviceProfile::Ram());
  BufferPool pool(&store, &device);
  auto page = pool.Fetch(a);
  ASSERT_TRUE(page.ok()) << page.status().ToString();
  EXPECT_EQ((*page)->bytes[100], 42);
  EXPECT_EQ(pool.checksum_errors(), 0u);
}

TEST(ChecksumPageTest, LatentCorruptionIsDetectedAndQuarantined) {
  PageStore store;
  const PageId a = store.Allocate();
  const PageId b = store.Allocate();
  store.page(a).bytes[0] = 1;
  store.page(b).bytes[0] = 2;
  store.StampChecksums();
  // Flip a stored bit WITHOUT restamping: latent media corruption.
  store.CorruptBitForTest(a, 8 * 500 + 3);
  StorageDevice device(DeviceProfile::Ram());
  BufferPool pool(&store, &device);
  auto bad = pool.Fetch(a);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), Status::Code::kCorruption);
  EXPECT_GT(pool.checksum_errors(), 0u);
  // All retries saw the same bad checksum, so the page is quarantined:
  // the next fetch fails immediately without more device reads.
  EXPECT_EQ(pool.quarantined_pages(), 1u);
  const uint64_t reads_before = device.reads();
  EXPECT_FALSE(pool.Fetch(a).ok());
  EXPECT_EQ(device.reads(), reads_before);
  // The healthy page is unaffected.
  EXPECT_TRUE(pool.Fetch(b).ok());
  // ClearQuarantine gives the page another chance (still corrupt here).
  pool.ClearQuarantine();
  EXPECT_EQ(pool.quarantined_pages(), 0u);
  EXPECT_FALSE(pool.Fetch(a).ok());
}

TEST(FaultPolicyTest, TransientErrorsAreRetriedToSuccess) {
  PageStore store;
  const PageId a = store.Allocate();
  store.page(a).bytes[7] = 99;
  store.StampChecksums();
  StorageDevice device(DeviceProfile::Ram());
  FaultPolicy faults;
  faults.seed = 7;
  faults.transient_error_prob = 0.4;
  device.set_fault_policy(faults);
  BufferPool pool(&store, &device);
  // With p=0.4 and 4 attempts per fetch, 200 cold fetches succeed with
  // overwhelming probability; every one must return the true bytes.
  int failures = 0;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(pool.DropCaches().ok());
    auto page = pool.Fetch(a);
    if (!page.ok()) {
      ++failures;
      continue;
    }
    EXPECT_EQ((*page)->bytes[7], 99);
  }
  EXPECT_LE(failures, 5);
  EXPECT_GT(pool.retries(), 0u);       // Some first attempts failed...
  EXPECT_GT(device.read_errors(), 0u);  // ...and the device recorded them.
  EXPECT_EQ(pool.checksum_errors(), 0u);
  EXPECT_EQ(pool.quarantined_pages(), 0u);  // IoErrors never quarantine.
}

TEST(FaultPolicyTest, BackoffIsChargedAsVirtualTime) {
  PageStore store;
  const PageId a = store.Allocate();
  store.StampChecksums();
  StorageDevice device(DeviceProfile::Ram());
  FaultPolicy faults;
  faults.seed = 3;
  faults.transient_error_prob = 1.0;  // Every read fails.
  device.set_fault_policy(faults);
  BufferPool pool(&store, &device);
  RetryPolicy retry;
  retry.max_attempts = 3;
  retry.initial_backoff_ns = 1000;
  pool.set_retry_policy(retry);
  EXPECT_FALSE(pool.Fetch(a).ok());
  // Two retries: 1000 + 2000 ns of backoff beyond the read charges.
  EXPECT_GE(device.total_ns(), 3000u);
  EXPECT_EQ(pool.retries(), 2u);
}

TEST(FaultPolicyTest, StickyBadPageStaysBad) {
  PageStore store;
  const PageId a = store.Allocate();
  store.StampChecksums();
  StorageDevice device(DeviceProfile::Ram());
  FaultPolicy faults;
  faults.seed = 5;
  faults.sticky_error_prob = 1.0;  // First touch marks the page bad forever.
  device.set_fault_policy(faults);
  BufferPool pool(&store, &device);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(pool.DropCaches().ok());
    auto page = pool.Fetch(a);
    ASSERT_FALSE(page.ok());
    EXPECT_EQ(page.status().code(), Status::Code::kIoError);
  }
}

TEST(FaultPolicyTest, InjectedCorruptionIsCaughtByChecksum) {
  PageStore store;
  const PageId a = store.Allocate();
  store.page(a).bytes[11] = 5;
  store.StampChecksums();
  StorageDevice device(DeviceProfile::Ram());
  FaultPolicy faults;
  faults.seed = 11;
  faults.corrupt_prob = 1.0;  // Every delivered frame has a flipped bit.
  device.set_fault_policy(faults);
  BufferPool pool(&store, &device);
  auto page = pool.Fetch(a);
  ASSERT_FALSE(page.ok());
  EXPECT_EQ(page.status().code(), Status::Code::kCorruption);
  EXPECT_GT(device.corruptions_injected(), 0u);
  // The authoritative store copy is untouched: disabling faults heals it.
  device.set_fault_policy(FaultPolicy{});
  pool.ClearQuarantine();
  ASSERT_TRUE(pool.DropCaches().ok());
  auto healed = pool.Fetch(a);
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ((*healed)->bytes[11], 5);
}

TEST(BufferPoolTest, FetchBeyondStoreIsCorruption) {
  PageStore store;
  store.Allocate();
  StorageDevice device(DeviceProfile::Ram());
  BufferPool pool(&store, &device);
  auto r = pool.Fetch(57);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kCorruption);
}

TEST(BufferPoolTest, DropCachesResetsDeviceLocality) {
  PageStore store;
  for (int i = 0; i < 3; ++i) store.Allocate();
  StorageDevice device(DeviceProfile::Hdd7200());
  BufferPool pool(&store, &device);
  EXPECT_TRUE(pool.Fetch(0).ok());
  EXPECT_TRUE(pool.Fetch(1).ok());  // Sequential after 0.
  EXPECT_EQ(device.sequential_reads(), 1u);
  ASSERT_TRUE(pool.DropCaches().ok());
  device.ResetStats();
  // Page 2 would look sequential after page 1 if locality survived the
  // cache drop; a real restart loses the head position.
  EXPECT_TRUE(pool.Fetch(2).ok());
  EXPECT_EQ(device.sequential_reads(), 0u);
}

TEST(HeapFileTest, GarbageLocatorIsCorruptionNotCrash) {
  PageStore store;
  StorageDevice device(DeviceProfile::Ram());
  BufferPool pool(&store, &device);
  const Schema schema{{"a", ColumnType::kInt32}};
  HeapFile heap(&store);
  heap.Append(Row{Value(1)}, schema);
  store.StampChecksums();
  EXPECT_FALSE(heap.Read({1u << 30, 4}, schema, &pool).ok());
  EXPECT_FALSE(heap.Read({0, kMaxRowBytes + 1}, schema, &pool).ok());
  EXPECT_FALSE(heap.Read({0, 9}, schema, &pool).ok());  // Trailing bytes.
}

TEST(EngineDatabaseTest, RejectsDuplicateTable) {
  EngineDatabase db(DeviceProfile::Ram());
  ASSERT_TRUE(db.CreateTable("x", Schema{{"a", ColumnType::kInt32}}).ok());
  EXPECT_FALSE(db.CreateTable("x", Schema{{"a", ColumnType::kInt32}}).ok());
  EXPECT_NE(db.FindTable("x"), nullptr);
  EXPECT_EQ(db.FindTable("y"), nullptr);
}

TEST(EngineDatabaseTest, BulkLoadValidatesKeysAndArity) {
  EngineDatabase db(DeviceProfile::Ram());
  auto table = db.CreateTable("x", Schema{{"a", ColumnType::kInt32}});
  ASSERT_TRUE(table.ok());
  std::vector<std::pair<IndexKey, Row>> out_of_order{{2, {Value(2)}},
                                                     {1, {Value(1)}}};
  EXPECT_FALSE((*table)->BulkLoad(std::move(out_of_order)).ok());

  auto table2 = db.CreateTable("y", Schema{{"a", ColumnType::kInt32}});
  std::vector<std::pair<IndexKey, Row>> bad_arity{
      {1, {Value(1), Value(2)}}};
  EXPECT_FALSE((*table2)->BulkLoad(std::move(bad_arity)).ok());
}

TEST(EngineDatabaseTest, SizeAccounting) {
  EngineDatabase db(DeviceProfile::Ram());
  auto table = db.CreateTable("x", Schema{{"a", ColumnType::kInt32}});
  std::vector<std::pair<IndexKey, Row>> rows;
  for (int32_t i = 0; i < 100; ++i) rows.emplace_back(i, Row{Value(i)});
  ASSERT_TRUE((*table)->BulkLoad(std::move(rows)).ok());
  EXPECT_EQ((*table)->num_rows(), 100u);
  EXPECT_GT(db.total_size_bytes(), 0u);
  EXPECT_EQ(db.table_names(), std::vector<std::string>{"x"});
}

}  // namespace
}  // namespace ptldb
