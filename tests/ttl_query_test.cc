#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "baseline/csa.h"
#include "baseline/profile.h"
#include "common/rng.h"
#include "timetable/example_graph.h"
#include "timetable/generator.h"
#include "ttl/builder.h"
#include "ttl/query.h"
#include "ttl/serialize.h"

#include "test_time.h"

namespace ptldb {
namespace {

Timetable SmallCity(uint64_t seed, uint32_t stops = 90,
                    uint64_t connections = 5000) {
  GeneratorOptions o;
  o.num_stops = stops;
  o.target_connections = connections;
  o.min_route_len = 4;
  o.max_route_len = 9;
  o.seed = seed;
  auto tt = GenerateNetwork(o);
  EXPECT_TRUE(tt.ok());
  return std::move(tt).value();
}

TtlIndex BuildIndex(const Timetable& tt, TtlBuildOptions options = {}) {
  auto index = BuildTtlIndex(tt, options);
  EXPECT_TRUE(index.ok());
  return std::move(index).value();
}

TEST(TtlQueryExampleTest, PaperQueryEa11) {
  // The paper: "the answer to the EA(1, 1, 324) query is 324".
  const Timetable tt = MakeExampleTimetable();
  TtlBuildOptions options;
  options.custom_order = ExampleVertexOrder();
  const TtlIndex index = BuildIndex(tt, options);
  EXPECT_EQ(TtlEarliestArrival(index, 1, 1, TSec(32400)), TSec(32400));
  EXPECT_EQ(TtlEarliestArrivalJoinOnly(index, 1, 1, TSec(32400)), TSec(32400));
}

TEST(TtlQueryExampleTest, ExampleV2vQueries) {
  const Timetable tt = MakeExampleTimetable();
  TtlBuildOptions options;
  options.custom_order = ExampleVertexOrder();
  const TtlIndex index = BuildIndex(tt, options);

  EXPECT_EQ(TtlEarliestArrival(index, 5, 6, TSec(28800)), TSec(43200));
  EXPECT_EQ(TtlEarliestArrival(index, 5, 0, TSec(28800)), TSec(36000));
  EXPECT_EQ(TtlEarliestArrival(index, 3, 4, TSec(32400)), TSec(39600));
  EXPECT_EQ(TtlEarliestArrival(index, 5, 0, TSec(28801)), EventTime::Infinity());

  EXPECT_EQ(TtlLatestDeparture(index, 5, 6, TSec(43200)), TSec(28800));
  EXPECT_EQ(TtlLatestDeparture(index, 6, 5, TSec(43200)), TSec(28800));
  EXPECT_EQ(TtlLatestDeparture(index, 6, 5, TSec(43199)), EventTime::NegInfinity());

  EXPECT_EQ(TtlShortestDuration(index, 5, 0, TSec(0), TSec(86400)), DSec(7200));
  EXPECT_EQ(TtlShortestDuration(index, 1, 5, TSec(0), TSec(86400)), DSec(3600));
  EXPECT_EQ(TtlShortestDuration(index, 1, 5, TSec(0), TSec(43199)),
            Duration::Infinity());
}

// Property sweep: on random synthetic cities, every TTL answer must match
// the Connection Scan ground truth, for all three query types, and the
// join-only (dummy-tuple, Code 1) variants must match the three-case TTL
// queries (Theorem 3.1.1).
class TtlRandomGraphTest : public testing::TestWithParam<uint64_t> {};

TEST_P(TtlRandomGraphTest, MatchesGroundTruth) {
  const Timetable tt = SmallCity(GetParam());
  const TtlIndex index = BuildIndex(tt);
  Rng rng(GetParam() * 977 + 1);
  const EventTime lo = tt.min_time();
  const EventTime hi = tt.max_time();
  for (int i = 0; i < 150; ++i) {
    const auto s = static_cast<StopId>(rng.NextBelow(tt.num_stops()));
    auto g = static_cast<StopId>(rng.NextBelow(tt.num_stops()));
    if (g == s) g = (g + 1) % tt.num_stops();
    const auto t =
        TSec(rng.NextInRange(lo.raw_seconds(), hi.raw_seconds()));
    const auto t_end =
        TSec(rng.NextInRange(t.raw_seconds(), hi.raw_seconds()));

    const EventTime want_ea = EarliestArrival(tt, s, g, t);
    EXPECT_EQ(TtlEarliestArrival(index, s, g, t), want_ea)
        << "EA s=" << s << " g=" << g << " t=" << t;
    EXPECT_EQ(TtlEarliestArrivalJoinOnly(index, s, g, t), want_ea)
        << "EA-join s=" << s << " g=" << g << " t=" << t;

    const EventTime want_ld = LatestDeparture(tt, s, g, t_end);
    EXPECT_EQ(TtlLatestDeparture(index, s, g, t_end), want_ld)
        << "LD s=" << s << " g=" << g << " t'=" << t_end;
    EXPECT_EQ(TtlLatestDepartureJoinOnly(index, s, g, t_end), want_ld)
        << "LD-join s=" << s << " g=" << g << " t'=" << t_end;

    const Duration want_sd = ShortestDuration(tt, s, g, t, t_end);
    EXPECT_EQ(TtlShortestDuration(index, s, g, t, t_end), want_sd)
        << "SD s=" << s << " g=" << g << " t=" << t << " t'=" << t_end;
    EXPECT_EQ(TtlShortestDurationJoinOnly(index, s, g, t, t_end), want_sd)
        << "SD-join s=" << s << " g=" << g << " t=" << t << " t'=" << t_end;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TtlRandomGraphTest,
                         testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Exact-equality boundaries of the binary searches. The comparator
// direction in FirstNotBefore / LastNotAfter decides whether a tuple with
// td == t ("the trip leaves the second you arrive at the stop") or
// ta == t_end ("it arrives the second the deadline expires") counts as
// feasible; both must. Random sweeps almost never land a query timestamp
// exactly on an event, so pin the cases explicitly.

// Deterministic worked cases on the paper's example graph, where every
// event time is known.
TEST(TtlBoundaryTest, ExactEqualityOnExampleGraph) {
  const Timetable tt = MakeExampleTimetable();
  TtlBuildOptions options;
  options.custom_order = ExampleVertexOrder();
  const TtlIndex index = BuildIndex(tt, options);

  // EA: stop 5 departs at exactly 28800. td == t is feasible; one second
  // later is not.
  EXPECT_EQ(TtlEarliestArrival(index, 5, 0, TSec(28800)), TSec(36000));
  EXPECT_EQ(TtlEarliestArrival(index, 5, 0, TSec(28801)), EventTime::Infinity());

  // LD: the ride into 6 arrives at exactly 43200. ta == t_end is feasible;
  // one second earlier is not.
  EXPECT_EQ(TtlLatestDeparture(index, 5, 6, TSec(43200)), TSec(28800));
  EXPECT_EQ(TtlLatestDeparture(index, 5, 6, TSec(43199)), EventTime::NegInfinity());

  // SD: the [t, t_end] window is closed on both ends — the 28800 -> 43200
  // journey fits exactly; shrinking either edge by one second kills it.
  EXPECT_EQ(TtlShortestDuration(index, 5, 6, TSec(28800), TSec(43200)), DSec(14400));
  EXPECT_EQ(TtlShortestDuration(index, 5, 6, TSec(28801), TSec(43200)),
            Duration::Infinity());
  EXPECT_EQ(TtlShortestDuration(index, 5, 6, TSec(28800), TSec(43199)),
            Duration::Infinity());
}

// Property form: every query timestamp sits exactly on a timetable event
// (or one second to either side), for all pairs against the scan
// baselines. An off-by-one in either partition_point shows up here as a
// +-1-second disagreement with CSA / the forward profile.
TEST(TtlBoundaryTest, EventTimeQueriesMatchBaselines) {
  const Timetable tt = SmallCity(31, /*stops=*/50, /*connections=*/2500);
  const TtlIndex index = BuildIndex(tt);
  std::vector<EventTime> events;
  for (const Connection& c : tt.connections()) {
    events.push_back(c.dep);
    events.push_back(c.arr);
  }
  std::sort(events.begin(), events.end());
  events.erase(std::unique(events.begin(), events.end()), events.end());

  Rng rng(8);
  for (int trial = 0; trial < 400; ++trial) {
    const EventTime base =
        events[rng.NextBelow(static_cast<uint64_t>(events.size()))];
    // t-1, t, t+1.
    const EventTime t =
        base + DSec(static_cast<int64_t>(rng.NextBelow(3))) - DSec(1);
    const auto s = static_cast<StopId>(rng.NextBelow(tt.num_stops()));
    auto g = static_cast<StopId>(rng.NextBelow(tt.num_stops()));
    if (g == s) g = (g + 1) % tt.num_stops();

    EXPECT_EQ(TtlEarliestArrival(index, s, g, t), EarliestArrival(tt, s, g, t))
        << "EA s=" << s << " g=" << g << " t=" << t;
    EXPECT_EQ(TtlLatestDeparture(index, s, g, t), LatestDeparture(tt, s, g, t))
        << "LD s=" << s << " g=" << g << " t'=" << t;
    // SD with both window edges on event boundaries.
    const EventTime t_end = std::max(
        t, events[rng.NextBelow(static_cast<uint64_t>(events.size()))]);
    EXPECT_EQ(TtlShortestDuration(index, s, g, t, t_end),
              ShortestDuration(tt, s, g, t, t_end))
        << "SD s=" << s << " g=" << g << " t=" << t << " t'=" << t_end;
  }
}

// Pruning is an optimization, not a semantic change: answers must match.
TEST(TtlPruningTest, UnprunedLabelsGiveSameAnswers) {
  const Timetable tt = SmallCity(21, 60, 2500);
  TtlBuildOptions pruned_options;
  TtlBuildOptions unpruned_options;
  unpruned_options.prune = false;
  TtlBuildStats pruned_stats;
  TtlBuildStats unpruned_stats;
  const auto pruned = BuildTtlIndex(tt, pruned_options, &pruned_stats);
  const auto unpruned = BuildTtlIndex(tt, unpruned_options, &unpruned_stats);
  ASSERT_TRUE(pruned.ok());
  ASSERT_TRUE(unpruned.ok());
  // Pruning must actually shrink the index.
  EXPECT_GT(pruned_stats.pruned_candidates, 0u);
  EXPECT_LT(pruned_stats.out_tuples + pruned_stats.in_tuples,
            unpruned_stats.out_tuples + unpruned_stats.in_tuples);
  Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    const auto s = static_cast<StopId>(rng.NextBelow(tt.num_stops()));
    auto g = static_cast<StopId>(rng.NextBelow(tt.num_stops()));
    if (g == s) g = (g + 1) % tt.num_stops();
    const auto t = TSec(rng.NextInRange(tt.min_time().raw_seconds(),
                                        tt.max_time().raw_seconds()));
    EXPECT_EQ(TtlEarliestArrival(*pruned, s, g, t),
              TtlEarliestArrival(*unpruned, s, g, t));
    EXPECT_EQ(TtlLatestDeparture(*pruned, s, g, t),
              TtlLatestDeparture(*unpruned, s, g, t));
  }
}

// Every ordering heuristic must stay correct (only the size may differ).
class TtlOrderingCorrectnessTest
    : public testing::TestWithParam<OrderingStrategy> {};

TEST_P(TtlOrderingCorrectnessTest, AnswersMatchGroundTruth) {
  const Timetable tt = SmallCity(31, 70, 3000);
  TtlBuildOptions options;
  options.ordering = GetParam();
  const TtlIndex index = BuildIndex(tt, options);
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const auto s = static_cast<StopId>(rng.NextBelow(tt.num_stops()));
    auto g = static_cast<StopId>(rng.NextBelow(tt.num_stops()));
    if (g == s) g = (g + 1) % tt.num_stops();
    const auto t = TSec(rng.NextInRange(tt.min_time().raw_seconds(),
                                        tt.max_time().raw_seconds()));
    EXPECT_EQ(TtlEarliestArrival(index, s, g, t), EarliestArrival(tt, s, g, t));
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, TtlOrderingCorrectnessTest,
                         testing::Values(OrderingStrategy::kDegree,
                                         OrderingStrategy::kEventCount,
                                         OrderingStrategy::kIdentity));

TEST(TtlSerializeTest, RoundTrip) {
  const Timetable tt = SmallCity(41, 50, 2000);
  const TtlIndex index = BuildIndex(tt);
  const std::string path = testing::TempDir() + "/ttl_roundtrip.bin";
  ASSERT_TRUE(SaveTtlIndex(index, path).ok());
  const auto loaded = LoadTtlIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_stops(), index.num_stops());
  EXPECT_EQ(loaded->order, index.order);
  EXPECT_EQ(loaded->rank, index.rank);
  for (StopId v = 0; v < tt.num_stops(); ++v) {
    const auto a = index.out.tuples(v);
    const auto b = loaded->out.tuples(v);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
    const auto c = index.in.tuples(v);
    const auto d = loaded->in.tuples(v);
    ASSERT_TRUE(std::equal(c.begin(), c.end(), d.begin(), d.end()));
  }
  std::remove(path.c_str());
}

TEST(TtlStatsTest, DummyTuplesAreSmallFraction) {
  // The paper claims dummy tuples are a small fraction (<10%) of all
  // tuples on full-size city networks. Tiny test graphs have proportionally
  // more event dummies (labels grow superlinearly with density, events only
  // linearly), so the bound here is loose; bench_storage reports the real
  // fraction at benchmark scale.
  const Timetable tt = SmallCity(51, 150, 15000);
  TtlBuildStats stats;
  const auto index = BuildTtlIndex(tt, {}, &stats);
  ASSERT_TRUE(index.ok());
  const double dummy_fraction =
      static_cast<double>(2 * stats.dummy_tuples) /
      static_cast<double>(stats.out_tuples + stats.in_tuples +
                          2 * stats.dummy_tuples);
  EXPECT_LT(dummy_fraction, 0.5) << "dummy fraction " << dummy_fraction;
}

}  // namespace
}  // namespace ptldb
