#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "baseline/brute.h"
#include "baseline/csa.h"
#include "common/rng.h"
#include "ptldb/ptldb.h"
#include "timetable/generator.h"
#include "ttl/builder.h"

#include "test_time.h"

namespace ptldb {
namespace {

// Soak harness for the fault-injecting storage device: run every query
// type under injected transient errors, sticky bad pages, and bit-flip
// corruption, and hold one invariant — each answer either matches the
// CSA/brute-force ground truth or comes back as a non-OK Status. Crashing
// or silently returning a wrong journey fails the suite.

struct GroundTruth {
  Timetable tt;
  std::vector<StopId> targets;
};

// A kNN answer is valid if its times match the brute-force list position
// by position, its stops are distinct, and each stop's reported time is
// that stop's true time (ties at the k-th position may be broken either
// way; see ptldb_test.cc).
void CheckKnn(const std::vector<StopTimeResult>& got,
              const std::vector<StopTimeResult>& brute_full, uint32_t k,
              const char* what, uint64_t seed) {
  std::map<StopId, EventTime> truth;
  for (const auto& r : brute_full) truth.emplace(r.stop, r.time);
  const size_t expected = std::min<size_t>(k, brute_full.size());
  ASSERT_EQ(got.size(), expected) << what << " seed " << seed;
  std::set<StopId> seen;
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].time, brute_full[i].time)
        << what << " seed " << seed << " position " << i;
    ASSERT_TRUE(seen.insert(got[i].stop).second)
        << what << " seed " << seed << " duplicate stop";
    const auto it = truth.find(got[i].stop);
    ASSERT_NE(it, truth.end()) << what << " seed " << seed;
    ASSERT_EQ(it->second, got[i].time) << what << " seed " << seed;
  }
}

// One fault profile per seed, cycling through three stress shapes:
// mostly-transient, corruption-heavy, and everything-at-once.
FaultPolicy PolicyForSeed(uint64_t seed) {
  FaultPolicy p;
  p.seed = seed * 7919 + 1;
  switch (seed % 3) {
    case 0:  // Flaky cable: reads fail transiently but data is sound.
      p.transient_error_prob = 0.05;
      break;
    case 1:  // Decaying media: bit flips, some of them sticky.
      p.corrupt_prob = 0.02;
      p.sticky_corruption = (seed % 2) == 1;
      break;
    default:  // Dying disk: everything at once, plus sticky bad sectors.
      p.transient_error_prob = 0.03;
      p.sticky_error_prob = 0.002;
      p.corrupt_prob = 0.01;
      break;
  }
  return p;
}

class FaultSoakTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorOptions o;
    o.num_stops = 60;
    o.target_connections = 3000;
    o.min_route_len = 4;
    o.max_route_len = 8;
    o.seed = 424242;
    auto tt = GenerateNetwork(o);
    ASSERT_TRUE(tt.ok());
    truth_ = new GroundTruth();
    truth_->tt = std::move(*tt);
    Rng rng(12345);
    truth_->targets = rng.SampleDistinct(truth_->tt.num_stops(), 8);
  }

  static void TearDownTestSuite() {
    delete truth_;
    truth_ = nullptr;
  }

  static GroundTruth* truth_;
};

GroundTruth* FaultSoakTest::truth_ = nullptr;

TEST_F(FaultSoakTest, NoCrashesNoWrongAnswersAcrossSeeds) {
  const Timetable& tt = truth_->tt;
  const std::vector<StopId>& targets = truth_->targets;
  auto index = BuildTtlIndex(tt);
  ASSERT_TRUE(index.ok());
  PtldbOptions options;
  options.device = DeviceProfile::Ram();
  auto db = PtldbDatabase::Build(*index, options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->AddTargetSet("T", *index, targets, /*kmax=*/4).ok());
  StorageDevice* device = (*db)->engine()->device();
  BufferPool* pool = (*db)->engine()->buffer_pool();

  uint64_t total_faults = 0;
  uint64_t ok_answers = 0;
  uint64_t failed_answers = 0;

  constexpr uint64_t kNumSeeds = 24;
  for (uint64_t seed = 0; seed < kNumSeeds; ++seed) {
    device->set_fault_policy(PolicyForSeed(seed));
    pool->ClearQuarantine();
    Rng rng(seed * 31 + 17);
    for (int trial = 0; trial < 12; ++trial) {
      // Cold caches each trial so reads actually hit the faulty device.
      ASSERT_TRUE((*db)->DropCaches().ok());
      StopId q = static_cast<StopId>(rng.NextBelow(tt.num_stops()));
      while (std::find(targets.begin(), targets.end(), q) != targets.end()) {
        q = static_cast<StopId>(rng.NextBelow(tt.num_stops()));
      }
      auto g = static_cast<StopId>(rng.NextBelow(tt.num_stops()));
      if (g == q) g = (g + 1) % tt.num_stops();
      const auto t = TSec(rng.NextInRange(tt.min_time().raw_seconds(),
                                          tt.max_time().raw_seconds()));
      const auto t_end = TSec(
          rng.NextInRange(t.raw_seconds(), tt.max_time().raw_seconds()));

      const auto check_scalar = [&](const auto& got, auto want,
                                    const char* what) {
        if (got.ok()) {
          ASSERT_EQ(*got, want) << what << " seed " << seed;
          ++ok_answers;
        } else {
          ++failed_answers;
        }
      };
      // 1-3: the v2v triple against CSA scans.
      check_scalar((*db)->EarliestArrival(q, g, t),
                   EarliestArrival(tt, q, g, t), "EA");
      check_scalar((*db)->LatestDeparture(q, g, t_end),
                   LatestDeparture(tt, q, g, t_end), "LD");
      check_scalar((*db)->ShortestDuration(q, g, t, t_end),
                   ShortestDuration(tt, q, g, t, t_end), "SD");

      const auto ea_full = BruteEaOneToMany(tt, q, targets, t);
      const auto ld_full = BruteLdOneToMany(tt, q, targets, t_end);
      const uint32_t k = 1 + static_cast<uint32_t>(rng.NextBelow(4));

      // 4-5: kNN (optimized path, may degrade to the v2v fallback).
      if (const auto r = (*db)->EaKnn("T", q, t, k); r.ok()) {
        CheckKnn(*r, ea_full, k, "EA-kNN", seed);
        ++ok_answers;
      } else {
        ++failed_answers;
      }
      if (const auto r = (*db)->LdKnn("T", q, t_end, k); r.ok()) {
        CheckKnn(*r, ld_full, k, "LD-kNN", seed);
        ++ok_answers;
      } else {
        ++failed_answers;
      }

      // 6-7: one-to-many must match brute force exactly when it answers.
      if (const auto r = (*db)->EaOneToMany("T", q, t); r.ok()) {
        ASSERT_EQ(r->size(), ea_full.size()) << "EA-OTM seed " << seed;
        for (size_t i = 0; i < ea_full.size(); ++i) {
          ASSERT_EQ((*r)[i], ea_full[i]) << "EA-OTM seed " << seed;
        }
        ++ok_answers;
      } else {
        ++failed_answers;
      }
      if (const auto r = (*db)->LdOneToMany("T", q, t_end); r.ok()) {
        ASSERT_EQ(r->size(), ld_full.size()) << "LD-OTM seed " << seed;
        for (size_t i = 0; i < ld_full.size(); ++i) {
          ASSERT_EQ((*r)[i], ld_full[i]) << "LD-OTM seed " << seed;
        }
        ++ok_answers;
      } else {
        ++failed_answers;
      }
    }
    total_faults += device->read_errors() + device->corruptions_injected();
  }

  // The soak is only meaningful if faults actually fired and the system
  // survived a healthy mix of successes and failures.
  EXPECT_GT(total_faults, 100u);
  EXPECT_GT(ok_answers, 0u);
  EXPECT_GT(failed_answers, 0u);
  const auto& stats = (*db)->query_stats();
  EXPECT_EQ(stats.queries, kNumSeeds * 12 * 7);
  // Degradation should have rescued at least one kNN/OTM query.
  EXPECT_GT(stats.degraded, 0u);

  // With faults disabled the same database answers everything exactly.
  device->set_fault_policy(FaultPolicy{});
  pool->ClearQuarantine();
  ASSERT_TRUE((*db)->DropCaches().ok());
  Rng rng(999);
  for (int trial = 0; trial < 10; ++trial) {
    StopId q = static_cast<StopId>(rng.NextBelow(tt.num_stops()));
    while (std::find(targets.begin(), targets.end(), q) != targets.end()) {
      q = static_cast<StopId>(rng.NextBelow(tt.num_stops()));
    }
    auto g = static_cast<StopId>(rng.NextBelow(tt.num_stops()));
    if (g == q) g = (g + 1) % tt.num_stops();
    const auto t = TSec(rng.NextInRange(tt.min_time().raw_seconds(),
                                        tt.max_time().raw_seconds()));
    const auto ea = (*db)->EarliestArrival(q, g, t);
    ASSERT_TRUE(ea.ok()) << ea.status().ToString();
    EXPECT_EQ(*ea, EarliestArrival(tt, q, g, t));
    const auto otm = (*db)->EaOneToMany("T", q, t);
    ASSERT_TRUE(otm.ok()) << otm.status().ToString();
    const auto brute = BruteEaOneToMany(tt, q, targets, t);
    ASSERT_EQ(otm->size(), brute.size());
    for (size_t i = 0; i < brute.size(); ++i) EXPECT_EQ((*otm)[i], brute[i]);
  }
}

// Sticky corruption must not poison the process: after the device heals,
// ClearQuarantine + DropCaches restores exact answers.
TEST_F(FaultSoakTest, RecoversAfterDeviceHeals) {
  const Timetable& tt = truth_->tt;
  auto index = BuildTtlIndex(tt);
  ASSERT_TRUE(index.ok());
  PtldbOptions options;
  options.device = DeviceProfile::Ram();
  auto db = PtldbDatabase::Build(*index, options);
  ASSERT_TRUE(db.ok());
  StorageDevice* device = (*db)->engine()->device();

  FaultPolicy nasty;
  nasty.seed = 77;
  nasty.corrupt_prob = 0.2;
  nasty.sticky_corruption = true;
  nasty.sticky_error_prob = 0.05;
  device->set_fault_policy(nasty);
  Rng rng(4);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE((*db)->DropCaches().ok());
    const auto s = static_cast<StopId>(rng.NextBelow(tt.num_stops()));
    auto g = static_cast<StopId>(rng.NextBelow(tt.num_stops()));
    if (g == s) g = (g + 1) % tt.num_stops();
    const auto t = TSec(rng.NextInRange(tt.min_time().raw_seconds(),
                                        tt.max_time().raw_seconds()));
    const auto ea = (*db)->EarliestArrival(s, g, t);
    if (ea.ok()) EXPECT_EQ(*ea, EarliestArrival(tt, s, g, t));
  }

  device->set_fault_policy(FaultPolicy{});  // Heal (clears sticky state).
  (*db)->engine()->buffer_pool()->ClearQuarantine();
  ASSERT_TRUE((*db)->DropCaches().ok());
  for (int i = 0; i < 20; ++i) {
    const auto s = static_cast<StopId>(rng.NextBelow(tt.num_stops()));
    auto g = static_cast<StopId>(rng.NextBelow(tt.num_stops()));
    if (g == s) g = (g + 1) % tt.num_stops();
    const auto t = TSec(rng.NextInRange(tt.min_time().raw_seconds(),
                                        tt.max_time().raw_seconds()));
    const auto ea = (*db)->EarliestArrival(s, g, t);
    ASSERT_TRUE(ea.ok()) << ea.status().ToString();
    EXPECT_EQ(*ea, EarliestArrival(tt, s, g, t));
  }
}

}  // namespace
}  // namespace ptldb
