// Pins the determinism guarantee of the wave-parallel TTL build: the index
// (labels, stats, serialized bytes) is identical for every thread count and
// wave partition, and equal to what the pre-parallel serial builder
// produced. The CRC32C goldens below were captured from the serial
// hub-at-a-time implementation before the wave build existed — equality
// against them is equality with that builder, byte for byte.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include <algorithm>

#include "common/checksum.h"
#include "ptldb/ptldb.h"
#include "timetable/example_graph.h"
#include "timetable/generator.h"
#include "ttl/builder.h"
#include "ttl/label_store.h"
#include "ttl/serialize.h"

#include "test_time.h"

namespace ptldb {
namespace {

const uint32_t kThreadCounts[] = {1, 2, 4, 8};

std::string ReadFileBytes(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string out;
  char buf[65536];
  size_t n;
  while (f != nullptr && (n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  if (f != nullptr) std::fclose(f);
  return out;
}

std::string SerializedBytes(const TtlIndex& index, const char* tag) {
  const std::string path =
      testing::TempDir() + "/determinism_" + tag + ".ttl";
  EXPECT_TRUE(SaveTtlIndex(index, path).ok());
  return ReadFileBytes(path);
}

Timetable MediumCity(uint64_t seed) {
  GeneratorOptions o;
  o.num_stops = 80;
  o.target_connections = 4000;
  o.min_route_len = 4;
  o.max_route_len = 9;
  o.seed = seed;
  auto tt = GenerateNetwork(o);
  EXPECT_TRUE(tt.ok());
  return std::move(tt).value();
}

void ExpectLabelsEqual(const TtlIndex& a, const TtlIndex& b) {
  ASSERT_EQ(a.num_stops(), b.num_stops());
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.rank, b.rank);
  for (StopId v = 0; v < a.num_stops(); ++v) {
    const auto ao = a.out.tuples(v);
    const auto bo = b.out.tuples(v);
    ASSERT_EQ(ao.size(), bo.size()) << "L_out size at stop " << v;
    for (size_t i = 0; i < ao.size(); ++i) {
      EXPECT_EQ(ao[i], bo[i]) << "L_out tuple " << i << " at stop " << v;
    }
    const auto ai = a.in.tuples(v);
    const auto bi = b.in.tuples(v);
    ASSERT_EQ(ai.size(), bi.size()) << "L_in size at stop " << v;
    for (size_t i = 0; i < ai.size(); ++i) {
      EXPECT_EQ(ai[i], bi[i]) << "L_in tuple " << i << " at stop " << v;
    }
  }
}

void ExpectStatsEqual(const TtlBuildStats& a, const TtlBuildStats& b) {
  EXPECT_EQ(a.out_tuples, b.out_tuples);
  EXPECT_EQ(a.in_tuples, b.in_tuples);
  EXPECT_EQ(a.dummy_tuples, b.dummy_tuples);
  EXPECT_EQ(a.pruned_candidates, b.pruned_candidates);
  ASSERT_EQ(a.waves.size(), b.waves.size());
  for (size_t w = 0; w < a.waves.size(); ++w) {
    EXPECT_EQ(a.waves[w].first_rank, b.waves[w].first_rank) << "wave " << w;
    EXPECT_EQ(a.waves[w].num_hubs, b.waves[w].num_hubs) << "wave " << w;
    EXPECT_EQ(a.waves[w].candidate_tuples, b.waves[w].candidate_tuples)
        << "wave " << w;
    EXPECT_EQ(a.waves[w].merged_tuples, b.waves[w].merged_tuples)
        << "wave " << w;
    EXPECT_EQ(a.waves[w].scan_pruned, b.waves[w].scan_pruned) << "wave " << w;
    EXPECT_EQ(a.waves[w].merge_pruned, b.waves[w].merge_pruned)
        << "wave " << w;
  }
}

// Builds with every thread count and checks labels, stats, and serialized
// bytes all agree; returns the common serialized bytes.
std::string BuildAllThreadCounts(const Timetable& tt, const char* tag,
                                 TtlBuildOptions base = {}) {
  std::string ref_bytes;
  TtlIndex ref_index;
  TtlBuildStats ref_stats;
  for (const uint32_t threads : kThreadCounts) {
    TtlBuildOptions options = base;
    options.num_threads = threads;
    TtlBuildStats stats;
    auto index = BuildTtlIndex(tt, options, &stats);
    EXPECT_TRUE(index.ok());
    EXPECT_EQ(stats.num_threads_used, threads);
    const std::string bytes = SerializedBytes(*index, tag);
    if (threads == 1) {
      ref_bytes = bytes;
      ref_index = std::move(index).value();
      ref_stats = stats;
      continue;
    }
    EXPECT_EQ(bytes, ref_bytes)
        << tag << ": serialized index differs between 1 and " << threads
        << " threads";
    ExpectLabelsEqual(*index, ref_index);
    ExpectStatsEqual(stats, ref_stats);
  }
  return ref_bytes;
}

// Golden bytes captured from the pre-wave serial builder. Any change here
// means the construction no longer reproduces the original algorithm.
TEST(TtlDeterminismTest, ExampleGraphMatchesSerialGolden) {
  const Timetable tt = MakeExampleTimetable();
  TtlBuildOptions base;
  base.custom_order = ExampleVertexOrder();
  const std::string bytes = BuildAllThreadCounts(tt, "example", base);
  EXPECT_EQ(bytes.size(), 888u);
  EXPECT_EQ(Crc32c(bytes.data(), bytes.size()), 0x84cf3d08u);
}

TEST(TtlDeterminismTest, GeneratedGraphsMatchSerialGoldens) {
  struct Golden {
    uint64_t seed;
    size_t bytes;
    uint32_t crc;
  };
  // Captured from the serial builder on these exact generator options.
  const Golden goldens[] = {
      {7, 631500, 0x8718d352},
      {1234, 645040, 0x4e365470},
      {99, 589740, 0xd4b6fc83},
  };
  for (const Golden& g : goldens) {
    const Timetable tt = MediumCity(g.seed);
    char tag[32];
    std::snprintf(tag, sizeof(tag), "gen%llu", (unsigned long long)g.seed);
    const std::string bytes = BuildAllThreadCounts(tt, tag);
    EXPECT_EQ(bytes.size(), g.bytes) << "seed " << g.seed;
    EXPECT_EQ(Crc32c(bytes.data(), bytes.size()), g.crc) << "seed " << g.seed;
  }
}

// The wave partition is a performance knob, not a semantic one: any cap
// (including one that serializes everything into singleton waves) yields
// the same canonical labels.
TEST(TtlDeterminismTest, WavePartitionDoesNotChangeTheIndex) {
  const Timetable tt = MediumCity(7);
  std::string ref;
  for (const uint32_t cap : {1u, 2u, 16u, 64u, 1000u}) {
    TtlBuildOptions options;
    options.max_wave_hubs = cap;
    options.num_threads = 4;
    TtlBuildStats stats;
    auto index = BuildTtlIndex(tt, options, &stats);
    ASSERT_TRUE(index.ok());
    char tag[32];
    std::snprintf(tag, sizeof(tag), "cap%u", cap);
    const std::string bytes = SerializedBytes(*index, tag);
    if (ref.empty()) {
      ref = bytes;
    } else {
      EXPECT_EQ(bytes, ref) << "index differs at wave cap " << cap;
    }
    // Waves cover all hubs exactly once, in rank order.
    uint32_t covered = 0;
    for (const TtlWaveStats& w : stats.waves) {
      EXPECT_EQ(w.first_rank, covered);
      EXPECT_LE(w.num_hubs, std::max(cap, 1u));
      covered += w.num_hubs;
    }
    EXPECT_EQ(covered, tt.num_stops());
  }
  EXPECT_EQ(Crc32c(ref.data(), ref.size()), 0x8718d352u);
}

// Pruning off is the ablation configuration: still deterministic across
// thread counts (no goldens — plain hierarchical labels are much larger).
TEST(TtlDeterminismTest, UnprunedBuildIsAlsoDeterministic) {
  const Timetable tt = MakeExampleTimetable();
  TtlBuildOptions base;
  base.prune = false;
  BuildAllThreadCounts(tt, "unpruned", base);
}

// The compressed label tier inherits the build's determinism: the encoded
// arenas (delta+varint buckets, tier CRC over L_out then L_in) must be
// byte-identical for every thread count, and pinned against goldens so a
// codec change that silently alters the wire format is caught here. The
// golden CRCs were captured from the single-threaded build.
TEST(TtlDeterminismTest, CompressedLabelTierIsDeterministicAcrossThreads) {
  struct Golden {
    uint64_t seed;  // 0 = the example graph
    uint64_t bytes;
    uint32_t crc;
  };
  const Golden goldens[] = {
      {0, 234, 0x00895e65u},
      {7, 147118, 0xcd76e206u},
      {1234, 150638, 0xda56cbf3u},
  };
  for (const Golden& g : goldens) {
    uint32_t ref_crc = 0;
    uint64_t ref_bytes = 0;
    const Timetable tt = g.seed == 0 ? MakeExampleTimetable()
                                     : MediumCity(g.seed);
    for (const uint32_t threads : kThreadCounts) {
      TtlBuildOptions options;
      if (g.seed == 0) options.custom_order = ExampleVertexOrder();
      options.num_threads = threads;
      auto index = BuildTtlIndex(tt, options);
      ASSERT_TRUE(index.ok());
      auto store = LabelStore::Build(*index);
      ASSERT_TRUE(store.ok());
      if (threads == kThreadCounts[0]) {
        ref_crc = (*store)->content_crc();
        ref_bytes = (*store)->bytes_resident();
        EXPECT_EQ(ref_bytes, g.bytes) << "seed " << g.seed;
        EXPECT_EQ(ref_crc, g.crc) << "seed " << g.seed;
        continue;
      }
      EXPECT_EQ((*store)->content_crc(), ref_crc)
          << "seed " << g.seed << ": encoded labels differ between "
          << kThreadCounts[0] << " and " << threads << " threads";
      EXPECT_EQ((*store)->bytes_resident(), ref_bytes) << "seed " << g.seed;
    }
  }
}

// The executor must not be a source of nondeterminism either: exhaustively
// over every ordered stop pair of the example graph and every event
// boundary (each departure/arrival time and one second to either side),
// the compiled register VM and the volcano interpreter return identical
// answers for all seven query types, on both label tiers. The build
// goldens above pin the index bytes; this pins that executor choice can
// never leak into an answer served from those bytes.
TEST(TtlDeterminismTest, ExecutorChoiceDoesNotChangeAnswers) {
  const Timetable tt = MakeExampleTimetable();
  TtlBuildOptions build;
  build.custom_order = ExampleVertexOrder();
  auto index = BuildTtlIndex(tt, build);
  ASSERT_TRUE(index.ok());

  std::vector<EventTime> times;
  for (const Connection& c : tt.connections()) {
    for (const EventTime base : {c.dep, c.arr}) {
      times.push_back(base - DSec(1));
      times.push_back(base);
      times.push_back(base + DSec(1));
    }
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());

  std::vector<StopId> targets;
  for (StopId v = 0; v < tt.num_stops(); v += 2) targets.push_back(v);

  for (const bool compressed : {false, true}) {
    PtldbOptions options;
    options.device = DeviceProfile::Ram();
    options.compressed_labels = compressed;
    auto built = PtldbDatabase::Build(*index, options);
    ASSERT_TRUE(built.ok());
    PtldbDatabase* db = built->get();
    ASSERT_TRUE(db->AddTargetSet("T", *index, targets, 4).ok());
    const EventTime t_end = tt.max_time();
    for (StopId s = 0; s < tt.num_stops(); ++s) {
      for (StopId g = 0; g < tt.num_stops(); ++g) {
        if (g == s) continue;
        for (const EventTime t : times) {
          db->set_compiled_queries(true);
          const auto ea_v = db->EarliestArrival(s, g, t);
          const auto ld_v = db->LatestDeparture(s, g, t);
          const auto sd_v = db->ShortestDuration(s, g, t, t_end);
          const auto eaknn_v = db->EaKnn("T", s, t, 2);
          const auto ldknn_v = db->LdKnn("T", s, t, 2);
          const auto eaotm_v = db->EaOneToMany("T", s, t);
          const auto ldotm_v = db->LdOneToMany("T", s, t);
          db->set_compiled_queries(false);
          const auto ea_i = db->EarliestArrival(s, g, t);
          const auto ld_i = db->LatestDeparture(s, g, t);
          const auto sd_i = db->ShortestDuration(s, g, t, t_end);
          const auto eaknn_i = db->EaKnn("T", s, t, 2);
          const auto ldknn_i = db->LdKnn("T", s, t, 2);
          const auto eaotm_i = db->EaOneToMany("T", s, t);
          const auto ldotm_i = db->LdOneToMany("T", s, t);
          ASSERT_TRUE(ea_v.ok() && ea_i.ok() && ld_v.ok() && ld_i.ok() &&
                      sd_v.ok() && sd_i.ok());
          ASSERT_TRUE(eaknn_v.ok() && eaknn_i.ok() && ldknn_v.ok() &&
                      ldknn_i.ok() && eaotm_v.ok() && eaotm_i.ok() &&
                      ldotm_v.ok() && ldotm_i.ok());
          EXPECT_EQ(*ea_v, *ea_i) << "EA s=" << s << " g=" << g << " t=" << t;
          EXPECT_EQ(*ld_v, *ld_i) << "LD s=" << s << " g=" << g << " t=" << t;
          EXPECT_EQ(*sd_v, *sd_i) << "SD s=" << s << " g=" << g << " t=" << t;
          EXPECT_EQ(*eaknn_v, *eaknn_i) << "EA-kNN q=" << s << " t=" << t;
          EXPECT_EQ(*ldknn_v, *ldknn_i) << "LD-kNN q=" << s << " t=" << t;
          EXPECT_EQ(*eaotm_v, *eaotm_i) << "EA-OTM q=" << s << " t=" << t;
          EXPECT_EQ(*ldotm_v, *ldotm_i) << "LD-OTM q=" << s << " t=" << t;
        }
      }
    }
  }
}

// num_threads = 0 ("use the hardware") must resolve to some worker count
// and still produce the canonical index.
TEST(TtlDeterminismTest, HardwareThreadCountProducesSameIndex) {
  const Timetable tt = MakeExampleTimetable();
  TtlBuildOptions options;
  options.num_threads = 0;
  TtlBuildStats stats;
  auto index = BuildTtlIndex(tt, options, &stats);
  ASSERT_TRUE(index.ok());
  EXPECT_GE(stats.num_threads_used, 1u);
  // The example graph's degree order coincides with the paper's order, so
  // the golden is the same as ExampleGraphMatchesSerialGolden.
  const std::string bytes = SerializedBytes(*index, "hw");
  EXPECT_EQ(bytes.size(), 888u);
  EXPECT_EQ(Crc32c(bytes.data(), bytes.size()), 0x84cf3d08u);
}

}  // namespace
}  // namespace ptldb
