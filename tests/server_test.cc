#include "server/server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "ptldb/ptldb.h"
#include "timetable/generator.h"
#include "ttl/builder.h"

namespace ptldb {
namespace {

using Clock = QueryContext::Clock;
using std::chrono::milliseconds;

// Tests for the serving layer (DESIGN.md §10): admission control and
// shed-before-collapse under synthetic overload, end-to-end deadline
// semantics (kDeadlineExceeded with bounded grace, no leaked pins), the
// per-set circuit breaker, and a fault-injection soak where every injected
// storage error surfaces as a per-request answer — never a wedged queue.

struct Fixture {
  Timetable tt;
  TtlIndex index;
  std::vector<StopId> targets;
};

Fixture* BuildFixture() {
  GeneratorOptions o;
  o.num_stops = 60;
  o.target_connections = 3000;
  o.min_route_len = 4;
  o.max_route_len = 8;
  o.seed = 90210;
  auto tt = GenerateNetwork(o);
  EXPECT_TRUE(tt.ok());
  auto* f = new Fixture();
  f->tt = std::move(*tt);
  f->index = std::move(BuildTtlIndex(f->tt)).value();
  Rng rng(555);
  f->targets = rng.SampleDistinct(f->tt.num_stops(), 8);
  return f;
}

Fixture& SharedFixture() {
  static Fixture* fixture = BuildFixture();
  return *fixture;
}

std::unique_ptr<PtldbDatabase> MakeDb(uint64_t pool_pages = 1u << 20) {
  Fixture& f = SharedFixture();
  PtldbOptions options;
  options.device = DeviceProfile::Ram();
  options.buffer_pool_pages = pool_pages;
  auto db = PtldbDatabase::Build(f.index, options);
  EXPECT_TRUE(db.ok());
  EXPECT_TRUE((*db)->AddTargetSet("T", f.index, f.targets, /*kmax=*/4).ok());
  return std::move(*db);
}

QueryRequest V2vRequest(Rng* rng, const Timetable& tt) {
  QueryRequest r;
  r.type = QueryType::kV2vEa;
  r.s = static_cast<StopId>(rng->NextBelow(tt.num_stops()));
  r.g = static_cast<StopId>(rng->NextBelow(tt.num_stops()));
  r.t = tt.min_time();
  return r;
}

QueryRequest KnnRequest(Rng* rng, const Timetable& tt) {
  QueryRequest r;
  r.type = QueryType::kEaKnn;
  r.set_name = "T";
  r.s = static_cast<StopId>(rng->NextBelow(tt.num_stops()));
  r.t = tt.min_time();
  r.k = 3;
  return r;
}

TEST(PtldbServerTest, AnswersMatchDirectDatabaseCalls) {
  auto db = MakeDb();
  const Timetable& tt = SharedFixture().tt;
  ServerOptions so;
  so.num_workers = 2;
  PtldbServer server(db.get(), so);
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const QueryRequest v = V2vRequest(&rng, tt);
    const QueryResponse resp = server.Execute(v);
    const auto direct = db->EarliestArrival(v.s, v.g, v.t);
    ASSERT_EQ(resp.status.ok(), direct.ok()) << resp.status.ToString();
    if (direct.ok()) {
      EXPECT_EQ(resp.time, *direct);
    }

    const QueryRequest knn = KnnRequest(&rng, tt);
    const QueryResponse kresp = server.Execute(knn);
    const auto kdirect = db->EaKnn(knn.set_name, knn.s, knn.t, knn.k);
    ASSERT_EQ(kresp.status.ok(), kdirect.ok()) << kresp.status.ToString();
    if (kdirect.ok()) {
      ASSERT_EQ(kresp.results.size(), kdirect->size());
      for (size_t j = 0; j < kresp.results.size(); ++j) {
        EXPECT_EQ(kresp.results[j].stop, (*kdirect)[j].stop);
        EXPECT_EQ(kresp.results[j].time, (*kdirect)[j].time);
      }
    }
    EXPECT_FALSE(kresp.via_breaker);
  }
}

TEST(PtldbServerTest, SubmitAfterShutdownAnswersOverloaded) {
  auto db = MakeDb();
  const Timetable& tt = SharedFixture().tt;
  PtldbServer server(db.get(), {});
  server.Shutdown();
  Rng rng(2);
  const QueryResponse resp = server.Execute(V2vRequest(&rng, tt));
  EXPECT_EQ(resp.status.code(), Status::Code::kOverloaded);
}

// The tentpole property: at a sustained ~4x-capacity flood of expensive
// (kNN) requests, the expensive class is rejected fast and explicitly
// with kOverloaded while concurrently offered interactive (v2v EA)
// traffic keeps >= 99% availability — overload degrades service
// gracefully instead of collapsing it.
TEST(PtldbServerTest, ExpensiveFloodShedsWhileInteractiveHolds) {
  auto db = MakeDb(/*pool_pages=*/32);
  const Timetable& tt = SharedFixture().tt;
  // Real service cost per page miss (the tiny pool keeps misses coming),
  // so "capacity" is a physical limit the flood genuinely exceeds.
  FaultPolicy delay;
  delay.read_delay_ns = 1'000'000;  // 1 ms
  db->engine()->device()->set_fault_policy(delay);

  ServerOptions so;
  so.num_workers = 2;
  so.queue_capacity = 16;
  so.expensive_admit_fraction = 0.5;
  PtldbServer server(db.get(), so);

  std::atomic<bool> stop_flood{false};
  std::atomic<uint64_t> exp_submitted{0};
  std::atomic<uint64_t> exp_ok{0};
  std::atomic<uint64_t> exp_shed{0};
  std::atomic<uint64_t> exp_other{0};
  std::atomic<uint64_t> exp_responded{0};
  std::thread flood([&] {
    Rng rng(31);
    while (!stop_flood.load(std::memory_order_relaxed)) {
      exp_submitted.fetch_add(1, std::memory_order_relaxed);
      server.Submit(KnnRequest(&rng, tt), [&](QueryResponse resp) {
        if (resp.status.ok()) {
          exp_ok.fetch_add(1, std::memory_order_relaxed);
        } else if (resp.status.code() == Status::Code::kOverloaded) {
          exp_shed.fetch_add(1, std::memory_order_relaxed);
        } else {
          exp_other.fetch_add(1, std::memory_order_relaxed);
        }
        exp_responded.fetch_add(1, std::memory_order_relaxed);
      });
      // Full-tilt flood: rejections return instantly, so the offered
      // expensive rate is bounded only by this loop — far beyond any
      // service rate. Yield (plus a periodic real sleep) so the worker
      // threads still get cycles on single-core machines.
      if (exp_submitted.load(std::memory_order_relaxed) % 64 == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      } else {
        std::this_thread::yield();
      }
    }
  });

  // Interactive traffic offered well within its reserved headroom.
  constexpr int kInteractive = 50;
  std::atomic<uint64_t> int_ok{0};
  std::atomic<uint64_t> int_responded{0};
  Rng rng(32);
  for (int i = 0; i < kInteractive; ++i) {
    server.Submit(V2vRequest(&rng, tt), [&](QueryResponse resp) {
      if (resp.status.ok()) int_ok.fetch_add(1, std::memory_order_relaxed);
      int_responded.fetch_add(1, std::memory_order_relaxed);
    });
    std::this_thread::sleep_for(milliseconds(5));
  }
  stop_flood.store(true, std::memory_order_relaxed);
  flood.join();

  // Every submission is answered exactly once (Shutdown drains the rest).
  const auto deadline = Clock::now() + std::chrono::seconds(30);
  while (int_responded.load() < kInteractive ||
         exp_responded.load() < exp_submitted.load()) {
    ASSERT_LT(Clock::now(), deadline) << "server wedged under flood";
    std::this_thread::sleep_for(milliseconds(1));
  }
  server.Shutdown();

  EXPECT_EQ(exp_responded.load(), exp_submitted.load());
  EXPECT_EQ(exp_ok.load() + exp_shed.load() + exp_other.load(),
            exp_submitted.load());
  EXPECT_EQ(exp_other.load(), 0u);
  // The flood ran far beyond capacity, so most of it must have been shed…
  EXPECT_GT(exp_shed.load(), exp_ok.load());
  // …while interactive availability held at >= 99% (here: all of it).
  EXPECT_GE(int_ok.load(), static_cast<uint64_t>(kInteractive * 0.99));
  EXPECT_EQ(db->engine()->buffer_pool()->pinned_pages(), 0u);
  EXPECT_GT(db->metrics()->counter("server.rejected.shed")->value(), 0u);
}

// Deadline contract: a query slowed by real per-read delays returns
// kDeadlineExceeded within a bounded grace after its deadline — it does
// not run to completion, hold worker threads, or leak buffer-pool pins —
// and the server stays fully usable afterwards.
TEST(PtldbServerTest, DeadlineExpiresMidQueryWithBoundedGrace) {
  auto db = MakeDb(/*pool_pages=*/64);
  const Timetable& tt = SharedFixture().tt;
  ServerOptions so;
  so.num_workers = 1;
  PtldbServer server(db.get(), so);
  Rng rng(77);
  const QueryRequest probe = KnnRequest(&rng, tt);

  // Calibrate: raise the per-read delay until the cold query reliably
  // takes >= 9 ms with no deadline, so a deadline a third of the way in
  // is guaranteed to expire mid-query.
  uint64_t delay_ns = 3'000'000;  // 3 ms per page read
  milliseconds full_ms{0};
  for (;;) {
    FaultPolicy delay;
    delay.read_delay_ns = delay_ns;
    db->engine()->device()->set_fault_policy(delay);
    ASSERT_TRUE(db->DropCaches().ok());
    const auto t0 = Clock::now();
    const QueryResponse full = server.Execute(probe);
    full_ms = std::chrono::duration_cast<milliseconds>(Clock::now() - t0);
    ASSERT_TRUE(full.status.ok()) << full.status.ToString();
    if (full_ms.count() >= 9 || delay_ns >= 48'000'000) break;
    delay_ns *= 2;
  }
  ASSERT_GE(full_ms.count(), 9) << "query too fast to outlive any deadline";

  // Same query, cold again, with a deadline a third of the way in.
  ASSERT_TRUE(db->DropCaches().ok());
  QueryRequest limited = probe;
  limited.has_deadline = true;
  const auto deadline_budget = milliseconds(std::max<int64_t>(
      3, full_ms.count() / 3));
  limited.deadline = Clock::now() + deadline_budget;
  const auto t1 = Clock::now();
  const QueryResponse cut = server.Execute(limited);
  const auto cut_ms =
      std::chrono::duration_cast<milliseconds>(Clock::now() - t1);

  EXPECT_EQ(cut.status.code(), Status::Code::kDeadlineExceeded)
      << cut.status.ToString();
  // Bounded grace: cancellation checkpoints fire at worst every
  // kCheckpointStride page fetches, each costing the injected delay —
  // far less than the 500 ms bound, and far less than running to the end.
  EXPECT_LE(cut_ms.count(), deadline_budget.count() + 500);
  // No pins may outlive the cancelled query.
  EXPECT_EQ(db->engine()->buffer_pool()->pinned_pages(), 0u);
  EXPECT_GE(db->metrics()->counter("server.deadline_exceeded")->value(), 1u);

  // The worker that cancelled is healthy: the same query with no deadline
  // still completes, and the metrics snapshot is coherent.
  FaultPolicy heal;
  db->engine()->device()->set_fault_policy(heal);
  const QueryResponse again = server.Execute(probe);
  EXPECT_TRUE(again.status.ok()) << again.status.ToString();
  const MetricsSnapshot snap = db->metrics()->Snapshot();
  EXPECT_GT(snap.counters.count("server.completed"), 0u);
}

// A request whose deadline has already lapsed when a worker picks it up
// is dropped at the queue head without executing — under overload, work
// the client has given up on must not consume a worker.
TEST(PtldbServerTest, DeadlineExpiredInQueueIsDroppedNotExecuted) {
  auto db = MakeDb();
  const Timetable& tt = SharedFixture().tt;
  ServerOptions so;
  so.num_workers = 1;
  PtldbServer server(db.get(), so);

  Rng rng(88);
  QueryRequest doomed = V2vRequest(&rng, tt);
  doomed.has_deadline = true;
  // Already expired at submission: admission still accepts it (admission
  // only looks at queue depth), but the worker must drop it at pop.
  doomed.deadline = Clock::now() - milliseconds(1);
  const QueryResponse resp = server.Execute(doomed);
  EXPECT_EQ(resp.status.code(), Status::Code::kDeadlineExceeded);
  EXPECT_GE(db->metrics()->counter("server.dropped.deadline_in_queue")->value(),
            1u);
}

// Circuit breaker: a target set whose primary tables keep faulting is
// routed to the exact v2v fallback (via_breaker), and the breaker-open
// transition is visible in the serving metrics.
TEST(PtldbServerTest, RepeatedPrimaryFaultsOpenTheBreaker) {
  auto db = MakeDb(/*pool_pages=*/64);
  const Timetable& tt = SharedFixture().tt;
  FaultPolicy faults;
  faults.seed = 4242;
  faults.sticky_error_prob = 0.5;  // Media dying fast: primaries keep failing.
  db->engine()->device()->set_fault_policy(faults);

  ServerOptions so;
  so.num_workers = 1;
  so.breaker_failure_threshold = 2;
  so.breaker_cooldown = milliseconds(200);
  PtldbServer server(db.get(), so);

  Rng rng(99);
  bool saw_via_breaker = false;
  for (int i = 0; i < 30 && !saw_via_breaker; ++i) {
    PTLDB_IGNORE_STATUS(db->DropCaches());
    const QueryResponse resp = server.Execute(KnnRequest(&rng, tt));
    saw_via_breaker = resp.via_breaker;
  }
  EXPECT_TRUE(saw_via_breaker)
      << "breaker never routed a request to the fallback";
  EXPECT_GE(db->metrics()->counter("server.breaker.opened")->value(), 1u);
  server.Shutdown();
  EXPECT_EQ(db->engine()->buffer_pool()->pinned_pages(), 0u);
}

// Fault-injection soak through the full serving path: concurrent mixed
// load against a device injecting transient errors, sticky bad pages and
// corruption. The invariant is liveness plus exactly-once accounting —
// every submission gets exactly one response, each either OK, an explicit
// overload/deadline rejection, or the underlying storage error; the queue
// never wedges and no pin survives the run.
TEST(PtldbServerTest, FaultSoakNeverWedgesAndAnswersEverything) {
  auto db = MakeDb(/*pool_pages=*/64);
  const Timetable& tt = SharedFixture().tt;
  FaultPolicy faults;
  faults.seed = 777;
  faults.transient_error_prob = 0.05;
  faults.sticky_error_prob = 0.002;
  faults.corrupt_prob = 0.02;
  faults.sticky_corruption = true;
  db->engine()->device()->set_fault_policy(faults);

  ServerOptions so;
  so.num_workers = 3;
  so.queue_capacity = 24;
  so.default_deadline = milliseconds(250);
  PtldbServer server(db.get(), so);

  constexpr int kThreads = 2;
  constexpr int kPerThread = 150;
  std::atomic<uint64_t> responded{0};
  std::atomic<uint64_t> ok{0}, overloaded{0}, deadline{0}, io{0}, corrupt{0},
      other{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (int i = 0; i < kPerThread; ++i) {
        QueryRequest r;
        switch (i % 4) {
          case 0:
            r = V2vRequest(&rng, tt);
            break;
          case 1:
            r = KnnRequest(&rng, tt);
            break;
          case 2:
            r = KnnRequest(&rng, tt);
            r.type = QueryType::kEaOtm;
            break;
          default:
            r = V2vRequest(&rng, tt);
            r.type = QueryType::kV2vSd;
            r.t_end = tt.max_time();
            break;
        }
        if (i % 7 == 0) {
          r.has_deadline = true;
          r.deadline = Clock::now() + milliseconds(5);
        }
        server.Submit(std::move(r), [&](QueryResponse resp) {
          switch (resp.status.code()) {
            case Status::Code::kOk:
              ok.fetch_add(1);
              break;
            case Status::Code::kOverloaded:
              overloaded.fetch_add(1);
              break;
            case Status::Code::kDeadlineExceeded:
              deadline.fetch_add(1);
              break;
            case Status::Code::kIoError:
              io.fetch_add(1);
              break;
            case Status::Code::kCorruption:
              corrupt.fetch_add(1);
              break;
            default:
              other.fetch_add(1);
              break;
          }
          responded.fetch_add(1, std::memory_order_release);
        });
        if (i % 16 == 0) std::this_thread::sleep_for(milliseconds(1));
      }
    });
  }
  for (std::thread& s : submitters) s.join();

  constexpr uint64_t kTotal = kThreads * kPerThread;
  const auto wait_deadline = Clock::now() + std::chrono::seconds(60);
  while (responded.load(std::memory_order_acquire) < kTotal) {
    ASSERT_LT(Clock::now(), wait_deadline)
        << "soak wedged: " << responded.load() << "/" << kTotal;
    std::this_thread::sleep_for(milliseconds(1));
  }
  server.Shutdown();

  EXPECT_EQ(ok.load() + overloaded.load() + deadline.load() + io.load() +
                corrupt.load() + other.load(),
            kTotal);
  EXPECT_GT(ok.load(), 0u) << "not a single query survived the fault rate";
  EXPECT_EQ(db->engine()->buffer_pool()->pinned_pages(), 0u);
  // The registry is coherent after the storm (Snapshot walks every shard).
  const MetricsSnapshot snap = db->metrics()->Snapshot();
  EXPECT_GT(snap.counters.count("server.admitted"), 0u);
}

// Observability contract (DESIGN.md §11): every shed request leaves both a
// query-log record (outcome=shed, cause attributing the admission decision)
// and a retained trace — the 100%-tail-retention rule — and executed
// requests populate the per-class queue-wait histograms.
TEST(PtldbServerTest, ShedRequestsAlwaysLeaveRecordsAndTraces) {
  auto db = MakeDb();
  const Timetable& tt = SharedFixture().tt;
  ServerOptions so;
  so.num_workers = 2;
  PtldbServer server(db.get(), so);
  Rng rng(404);
  constexpr int kExecuted = 8;
  for (int i = 0; i < kExecuted; ++i) {
    EXPECT_TRUE(server.Execute(V2vRequest(&rng, tt)).status.ok());
    EXPECT_TRUE(server.Execute(KnnRequest(&rng, tt)).status.ok());
  }
  server.Shutdown();
  // Post-shutdown submissions are shed deterministically (cause=stopping).
  constexpr int kShed = 5;
  for (int i = 0; i < kShed; ++i) {
    const QueryResponse resp = server.Execute(KnnRequest(&rng, tt));
    EXPECT_EQ(resp.status.code(), Status::Code::kOverloaded);
  }

  const MetricsSnapshot snap = db->metrics()->Snapshot();
  // Counter-level retention equality: shed == retained-shed, exactly.
  EXPECT_EQ(snap.counters.at("querylog.outcome.shed"), uint64_t{kShed});
  EXPECT_EQ(snap.counters.at("traces.retained.shed"), uint64_t{kShed});
  EXPECT_EQ(snap.counters.at("server.rejected.cause.stopping"),
            uint64_t{kShed});
  // Record-level: each shed left exactly one ring record with its cause,
  // marked trace-retained, and the trace queue really holds its trace.
  const auto records = db->query_log()->SnapshotRecords();
  std::vector<uint64_t> shed_seqs;
  for (const QueryLogRecord& r : records) {
    if (r.outcome != QueryOutcome::kShed) continue;
    EXPECT_STREQ(r.cause, "stopping");
    EXPECT_TRUE(r.trace_retained);
    shed_seqs.push_back(r.seq);
  }
  EXPECT_EQ(shed_seqs.size(), static_cast<size_t>(kShed));
  const auto traces = db->query_log()->SnapshotTraces();
  size_t shed_traces = 0;
  for (const auto& t : traces) {
    if (std::find(shed_seqs.begin(), shed_seqs.end(), t.seq) !=
        shed_seqs.end()) {
      ++shed_traces;
    }
  }
  EXPECT_EQ(shed_traces, static_cast<size_t>(kShed));
  // Executed requests landed in both per-class queue-wait histograms.
  EXPECT_EQ(snap.histograms.at("server.queue_wait.interactive_ns").count,
            uint64_t{kExecuted});
  EXPECT_EQ(snap.histograms.at("server.queue_wait.expensive_ns").count,
            uint64_t{kExecuted});
}

// ResetStats carves per-window deltas out of lifetime totals: it zeroes
// every server.* counter and histogram, and nothing else — the query log,
// querylog.* counters and query.* latencies keep accumulating.
TEST(PtldbServerTest, ResetStatsZeroesServerMetricsOnly) {
  auto db = MakeDb();
  const Timetable& tt = SharedFixture().tt;
  ServerOptions so;
  so.num_workers = 2;
  PtldbServer server(db.get(), so);
  Rng rng(405);
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(server.Execute(V2vRequest(&rng, tt)).status.ok());
  }
  const MetricsSnapshot before = db->metrics()->Snapshot();
  EXPECT_GT(before.counters.at("server.admitted"), 0u);
  EXPECT_GT(before.histograms.at("server.queue_wait.interactive_ns").count,
            0u);
  const uint64_t records_before = before.counters.at("querylog.records");
  EXPECT_GT(records_before, 0u);

  server.ResetStats();

  const MetricsSnapshot after = db->metrics()->Snapshot();
  for (const auto& [name, value] : after.counters) {
    if (name.rfind("server.", 0) == 0) {
      EXPECT_EQ(value, 0u) << name << " not reset";
    }
  }
  for (const auto& [name, h] : after.histograms) {
    if (name.rfind("server.", 0) == 0) {
      EXPECT_EQ(h.count, 0u) << name << " not reset";
      EXPECT_EQ(h.sum, 0u) << name << " not reset";
    }
  }
  // Non-server metrics and the ring itself are untouched.
  EXPECT_EQ(after.counters.at("querylog.records"), records_before);
  EXPECT_FALSE(db->query_log()->SnapshotRecords().empty());
  // The window restarts cleanly: new traffic re-accumulates from zero.
  EXPECT_TRUE(server.Execute(V2vRequest(&rng, tt)).status.ok());
  EXPECT_EQ(db->metrics()->counter("server.admitted")->value(), 1u);
  server.Shutdown();
}

TEST(PtldbServerTest, IsExpensiveClassifiesQueryTypes) {
  EXPECT_FALSE(PtldbServer::IsExpensive(QueryType::kV2vEa));
  EXPECT_FALSE(PtldbServer::IsExpensive(QueryType::kV2vLd));
  EXPECT_FALSE(PtldbServer::IsExpensive(QueryType::kV2vSd));
  EXPECT_TRUE(PtldbServer::IsExpensive(QueryType::kEaKnn));
  EXPECT_TRUE(PtldbServer::IsExpensive(QueryType::kLdKnn));
  EXPECT_TRUE(PtldbServer::IsExpensive(QueryType::kEaOtm));
  EXPECT_TRUE(PtldbServer::IsExpensive(QueryType::kLdOtm));
}

}  // namespace
}  // namespace ptldb
