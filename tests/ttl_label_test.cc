#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/rng.h"
#include "timetable/example_graph.h"
#include "timetable/generator.h"
#include "ttl/builder.h"
#include "ttl/label.h"
#include "ttl/ordering.h"
#include "ttl/serialize.h"

#include "test_time.h"

namespace ptldb {
namespace {

std::string TupleToString(const LabelTuple& t) {
  std::ostringstream ss;
  ss << "<" << t.hub << "," << t.td << "," << t.ta << ",";
  if (t.pivot == kInvalidStop) {
    ss << "-";
  } else {
    ss << t.pivot;
  }
  ss << ",";
  if (t.trip == kInvalidTrip) {
    ss << "-";
  } else {
    ss << t.trip;
  }
  ss << ">";
  return ss.str();
}

std::string TuplesToString(std::span<const LabelTuple> tuples) {
  std::string out;
  for (const LabelTuple& t : tuples) out += TupleToString(t) + " ";
  return out;
}

void ExpectTuples(std::span<const LabelTuple> got,
                  std::vector<LabelTuple> want, const char* what, StopId v) {
  const std::vector<LabelTuple> got_vec(got.begin(), got.end());
  EXPECT_EQ(got_vec, want) << what << "(" << v << "):\n  got  "
                           << TuplesToString(got) << "\n  want "
                           << TuplesToString(want);
}

constexpr StopId kD = kInvalidStop;    // Dummy pivot.
constexpr TripId kDT = kInvalidTrip;   // Dummy trip.

// Builds the index for the paper's Figure-1 example with its vertex order.
TtlIndex BuildExampleIndex(bool add_dummies = true) {
  const Timetable tt = MakeExampleTimetable();
  TtlBuildOptions options;
  options.custom_order = ExampleVertexOrder();
  options.add_dummy_tuples = add_dummies;
  auto index = BuildTtlIndex(tt, options);
  EXPECT_TRUE(index.ok());
  return std::move(index).value();
}

// The labels of Table 1 in the paper, timestamps x100 (seconds), with the
// paper's 1-based trip numbers mapped to our 0-based TripIds.
TEST(TtlExampleTest, LabelsMatchTable1Exactly) {
  const TtlIndex index = BuildExampleIndex();

  ExpectTuples(index.out.tuples(0), {{0, TSec(36000), TSec(36000), kD, kDT}}, "L_out", 0);
  ExpectTuples(index.in.tuples(0), {{0, TSec(36000), TSec(36000), kD, kDT}}, "L_in", 0);

  ExpectTuples(index.out.tuples(1),
               {{0, TSec(32400), TSec(36000), 0, 0},
                {1, TSec(32400), TSec(32400), kD, kDT},
                {1, TSec(39600), TSec(39600), kD, kDT}},
               "L_out", 1);
  ExpectTuples(index.in.tuples(1),
               {{0, TSec(36000), TSec(39600), 0, 1},
                {1, TSec(32400), TSec(32400), kD, kDT},
                {1, TSec(39600), TSec(39600), kD, kDT}},
               "L_in", 1);

  ExpectTuples(index.out.tuples(2),
               {{0, TSec(32400), TSec(36000), 0, 1},
                {2, TSec(32400), TSec(32400), kD, kDT},
                {2, TSec(39600), TSec(39600), kD, kDT}},
               "L_out", 2);
  ExpectTuples(index.in.tuples(2),
               {{0, TSec(36000), TSec(39600), 0, 0},
                {2, TSec(32400), TSec(32400), kD, kDT},
                {2, TSec(39600), TSec(39600), kD, kDT}},
               "L_in", 2);

  ExpectTuples(index.out.tuples(3),
               {{0, TSec(32400), TSec(36000), 0, 2}, {3, TSec(39600), TSec(39600), kD, kDT}},
               "L_out", 3);
  ExpectTuples(index.in.tuples(3),
               {{0, TSec(36000), TSec(39600), 0, 3}, {3, TSec(39600), TSec(39600), kD, kDT}},
               "L_in", 3);

  ExpectTuples(index.out.tuples(4),
               {{0, TSec(32400), TSec(36000), 0, 3}, {4, TSec(39600), TSec(39600), kD, kDT}},
               "L_out", 4);
  ExpectTuples(index.in.tuples(4),
               {{0, TSec(36000), TSec(39600), 0, 3}, {4, TSec(39600), TSec(39600), kD, kDT}},
               "L_in", 4);

  ExpectTuples(index.out.tuples(5),
               {{0, TSec(28800), TSec(36000), 1, 0},
                {1, TSec(28800), TSec(32400), 1, 0},
                {5, TSec(43200), TSec(43200), kD, kDT}},
               "L_out", 5);
  ExpectTuples(index.in.tuples(5),
               {{0, TSec(36000), TSec(43200), 1, 1},
                {1, TSec(39600), TSec(43200), 1, 1},
                {5, TSec(43200), TSec(43200), kD, kDT}},
               "L_in", 5);

  ExpectTuples(index.out.tuples(6),
               {{0, TSec(28800), TSec(36000), 2, 1},
                {2, TSec(28800), TSec(32400), 2, 1},
                {6, TSec(43200), TSec(43200), kD, kDT}},
               "L_out", 6);
  ExpectTuples(index.in.tuples(6),
               {{0, TSec(36000), TSec(43200), 2, 0},
                {2, TSec(39600), TSec(43200), 2, 0},
                {6, TSec(43200), TSec(43200), kD, kDT}},
               "L_in", 6);
}

TEST(TtlExampleTest, DummyTuplesAreMarked) {
  const TtlIndex index = BuildExampleIndex();
  uint64_t dummies = 0;
  for (StopId v = 0; v < index.num_stops(); ++v) {
    for (const LabelTuple& t : index.out.tuples(v)) {
      if (t.is_dummy()) {
        EXPECT_EQ(t.hub, v);
        EXPECT_EQ(t.td, t.ta);
        ++dummies;
      }
    }
  }
  EXPECT_EQ(dummies, 9u);  // Bold tuples in Table 1's L_out column.
}

TEST(TtlExampleTest, WithoutDummiesOnlyRealPaths) {
  const TtlIndex index = BuildExampleIndex(/*add_dummies=*/false);
  for (StopId v = 0; v < index.num_stops(); ++v) {
    for (const LabelTuple& t : index.out.tuples(v)) {
      EXPECT_FALSE(t.is_dummy());
      EXPECT_NE(t.hub, v);
    }
    for (const LabelTuple& t : index.in.tuples(v)) {
      EXPECT_FALSE(t.is_dummy());
      EXPECT_NE(t.hub, v);
    }
  }
}

TEST(TtlExampleTest, AugmentingLaterMatchesBuildingWithDummies) {
  const Timetable tt = MakeExampleTimetable();
  TtlIndex later = BuildExampleIndex(/*add_dummies=*/false);
  const uint64_t added = AugmentWithDummyTuples(tt, &later);
  EXPECT_EQ(added, 9u);
  const TtlIndex direct = BuildExampleIndex(/*add_dummies=*/true);
  for (StopId v = 0; v < tt.num_stops(); ++v) {
    const auto a = later.out.tuples(v);
    const auto b = direct.out.tuples(v);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
}

TEST(TtlExampleTest, StatsAreReported) {
  const Timetable tt = MakeExampleTimetable();
  TtlBuildOptions options;
  options.custom_order = ExampleVertexOrder();
  TtlBuildStats stats;
  const auto index = BuildTtlIndex(tt, options, &stats);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(stats.out_tuples, 8u);   // Non-bold L_out tuples in Table 1.
  EXPECT_EQ(stats.in_tuples, 8u);
  EXPECT_EQ(stats.dummy_tuples, 9u);
  EXPECT_GT(stats.preprocess_seconds, 0.0);
}

TEST(TtlExampleTest, LabelsSortedByHubThenDeparture) {
  const TtlIndex index = BuildExampleIndex();
  for (StopId v = 0; v < index.num_stops(); ++v) {
    for (const auto* set : {&index.out, &index.in}) {
      const auto tuples = set->tuples(v);
      for (size_t i = 1; i < tuples.size(); ++i) {
        EXPECT_TRUE(tuples[i - 1].hub < tuples[i].hub ||
                    (tuples[i - 1].hub == tuples[i].hub &&
                     tuples[i - 1].td <= tuples[i].td));
      }
    }
  }
}

// Structural invariants of the label sets on random networks:
//  - non-dummy tuples only reference strictly higher-ranked hubs,
//  - dummy tuples sit at the stop itself with td == ta,
//  - within one (stop, hub) group both td and ta strictly increase
//    (Pareto-optimality), which every query's binary search relies on.
class TtlInvariantTest : public testing::TestWithParam<uint64_t> {};

TEST_P(TtlInvariantTest, LabelInvariantsHold) {
  GeneratorOptions o;
  o.num_stops = 80;
  o.target_connections = 4500;
  o.min_route_len = 4;
  o.max_route_len = 9;
  o.seed = GetParam();
  const auto tt = GenerateNetwork(o);
  ASSERT_TRUE(tt.ok());
  const auto index = BuildTtlIndex(*tt);
  ASSERT_TRUE(index.ok());
  for (StopId v = 0; v < tt->num_stops(); ++v) {
    for (const auto* set : {&index->out, &index->in}) {
      const auto tuples = set->tuples(v);
      for (size_t i = 0; i < tuples.size(); ++i) {
        const LabelTuple& t = tuples[i];
        if (t.is_dummy()) {
          EXPECT_EQ(t.hub, v);
          EXPECT_EQ(t.td, t.ta);
        } else {
          EXPECT_NE(t.hub, v);
          EXPECT_LT(index->rank[t.hub], index->rank[v])
              << "tuple hub must outrank the stop";
          EXPECT_LE(t.td, t.ta);
        }
        if (i > 0 && tuples[i - 1].hub == t.hub) {
          EXPECT_LT(tuples[i - 1].td, t.td) << "group td must increase";
          EXPECT_LT(tuples[i - 1].ta, t.ta) << "group ta must increase";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TtlInvariantTest,
                         testing::Values(101, 102, 103));

TEST(TtlBuilderTest, RejectsBadCustomOrder) {
  const Timetable tt = MakeExampleTimetable();
  TtlBuildOptions options;
  options.custom_order = {0, 1, 2};  // Too short.
  EXPECT_FALSE(BuildTtlIndex(tt, options).ok());
  options.custom_order = {0, 0, 1, 2, 3, 4, 5};  // Duplicate.
  EXPECT_FALSE(BuildTtlIndex(tt, options).ok());
}

TEST(TtlOrderingTest, DegreeOrderPutsBusiestFirst) {
  const Timetable tt = MakeExampleTimetable();
  const auto order = ComputeVertexOrder(tt, OrderingStrategy::kDegree);
  EXPECT_EQ(order[0], 0u);  // Stop 0 touches 6 connections.
  const auto rank = RanksFromOrder(order);
  EXPECT_EQ(rank[order[3]], 3u);
}

TEST(TtlOrderingTest, IdentityOrderIsIdentity) {
  const Timetable tt = MakeExampleTimetable();
  const auto order = ComputeVertexOrder(tt, OrderingStrategy::kIdentity);
  for (StopId v = 0; v < tt.num_stops(); ++v) EXPECT_EQ(order[v], v);
}

// ---------- Corrupted label files (robustness) ----------

TEST(TtlSerializeTest, TruncatedLabelFileIsErrorNotCrash) {
  const Timetable tt = MakeExampleTimetable();
  const auto index = BuildTtlIndex(tt);
  ASSERT_TRUE(index.ok());
  const std::string path = testing::TempDir() + "/ttl_trunc.bin";
  ASSERT_TRUE(SaveTtlIndex(*index, path).ok());
  const auto full = static_cast<size_t>(std::filesystem::file_size(path));
  for (size_t keep : {size_t{0}, size_t{6}, full / 3, full / 2, full - 9,
                      full - 1}) {
    std::filesystem::resize_file(path, keep);
    const auto loaded = LoadTtlIndex(path);
    ASSERT_FALSE(loaded.ok()) << "kept " << keep << " of " << full;
    ASSERT_TRUE(SaveTtlIndex(*index, path).ok());
  }
  std::remove(path.c_str());
}

TEST(TtlSerializeTest, BitFlippedLabelFileIsCorruption) {
  const Timetable tt = MakeExampleTimetable();
  const auto index = BuildTtlIndex(tt);
  ASSERT_TRUE(index.ok());
  const std::string path = testing::TempDir() + "/ttl_flip.bin";
  ASSERT_TRUE(SaveTtlIndex(*index, path).ok());
  const auto size = static_cast<size_t>(std::filesystem::file_size(path));
  // Flip one bit in the payload (past the magic) at several positions;
  // the checksum trailer must catch every one as kCorruption.
  for (size_t pos : {size_t{8}, size / 4, size / 2, size - 12}) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(pos));
    char byte;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x20);
    f.seekp(static_cast<std::streamoff>(pos));
    f.write(&byte, 1);
    f.close();
    const auto loaded = LoadTtlIndex(path);
    ASSERT_FALSE(loaded.ok()) << "flip at " << pos;
    EXPECT_EQ(loaded.status().code(), Status::Code::kCorruption)
        << loaded.status().ToString();
    ASSERT_TRUE(SaveTtlIndex(*index, path).ok());
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ptldb
