#!/usr/bin/env python3
"""Unit tests for scripts/ptldb_analyzer.py.

The analyzer is a blocking CI gate, so its checks are regression-tested
like code: every fixture tree under tests/lint/analyzer/ seeds one bug
class (or one blessed idiom) and this suite pins what the analyzer must
say about it. Run directly or via ctest (`analyzer_selftest`); plain
stdlib unittest, no third-party deps.
"""

import importlib.util
import os
import sys
import tempfile
import unittest

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
_ANALYZER_PATH = os.path.join(_REPO_ROOT, "scripts", "ptldb_analyzer.py")
_FIXTURES = os.path.join(_REPO_ROOT, "tests", "lint", "analyzer")

_spec = importlib.util.spec_from_file_location("ptldb_analyzer",
                                               _ANALYZER_PATH)
analyzer = importlib.util.module_from_spec(_spec)
sys.modules["ptldb_analyzer"] = analyzer  # dataclass field resolution
_spec.loader.exec_module(analyzer)


def run_tree(name, checks=None):
    """Analyzes a fixture tree; returns the list of check ids found."""
    findings, _, _ = analyzer.analyze_paths(
        [os.path.join(_FIXTURES, name)], checks=checks)
    return [f.check for f in findings]


def run_source(source, rel_path="src/engine/something.cc", checks=None):
    """Analyzes `source` as if it lived at `rel_path` inside a tree (the
    path suffix drives check scoping); returns the check-id list."""
    with tempfile.TemporaryDirectory() as d:
        path = os.path.join(d, rel_path)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as f:
            f.write(source)
        findings, _, _ = analyzer.analyze_paths([d], checks=checks)
        return [f.check for f in findings]


class TokenizerTest(unittest.TestCase):
    def test_compound_assignment_is_one_token(self):
        toks = analyzer.tokenize("clock += headway;")
        self.assertIn("+=", [t.text for t in toks])

    def test_comments_and_strings_blanked(self):
        clean, _ = analyzer.strip_comments_and_strings(
            'int x;  // MutexLock lock(sets_mu_);\ns = "shard.mu";\n')
        self.assertNotIn("sets_mu_", clean)
        self.assertNotIn("shard.mu", clean)
        self.assertIn("int x;", clean)

    def test_nolint_recorded_per_line(self):
        _, nolint = analyzer.strip_comments_and_strings(
            "a;\nb;  // NOLINT(time-width)\nc;  // NOLINT\n")
        self.assertEqual({"time-width"}, nolint[2])
        self.assertEqual({"*"}, nolint[3])

    def test_bounded_annotation_recorded(self):
        _, nolint = analyzer.strip_comments_and_strings(
            "// analyzer: bounded(binary search)\nwhile (l < h) {}\n")
        self.assertIn("bounded", nolint[1])


class FunctionExtractionTest(unittest.TestCase):
    def test_functions_loops_and_calls(self):
        clean, _ = analyzer.strip_comments_and_strings(
            "Status Merge(int n) {\n"
            "  for (int i = 0; i < n; ++i) { Fold(i); }\n"
            "  return Status::Ok();\n"
            "}\n")
        fns = analyzer.extract_functions("x.cc", analyzer.tokenize(clean))
        self.assertEqual(["Merge"], [f.name for f in fns])
        analyzer.analyze_function_body(fns[0], "x.cc")
        self.assertEqual(1, len(fns[0].loops))
        self.assertIn("Fold", fns[0].calls)

    def test_qualified_method_name(self):
        clean, _ = analyzer.strip_comments_and_strings(
            "void Pool::Drop() { Evict(); }\n")
        fns = analyzer.extract_functions("x.cc", analyzer.tokenize(clean))
        self.assertEqual(["Pool::Drop"], [f.name for f in fns])


class TimeWidthTest(unittest.TestCase):
    def test_bad_fixture_tree(self):
        checks = run_tree("time_width_bad")
        self.assertEqual(3, checks.count("time-width"))

    def test_ok_fixture_tree_clean(self):
        self.assertEqual([], run_tree("time_width_ok"))

    def test_generator_int32_clock_revert_is_caught(self):
        # Reverting the typed event clock in the timetable generator back
        # to the int32 accumulator must re-trip the gate.
        checks = run_source(
            "void Emit(EventTime start, int headway, int n) {\n"
            "  int32_t clock = 0;\n"
            "  for (int i = 0; i < n; ++i) {\n"
            "    clock += headway;\n"
            "  }\n"
            "}\n",
            rel_path="src/timetable/generator.cc")
        self.assertIn("time-width", checks)

    def test_narrowing_cast_of_raw_seconds(self):
        self.assertIn("time-width", run_source(
            "int F(EventTime t) {\n"
            "  return static_cast<int>(t.raw_seconds());\n"
            "}\n"))

    def test_int64_stays_clean(self):
        self.assertEqual([], run_source(
            "int64_t F(EventTime t) {\n"
            "  int64_t s = t.raw_seconds();\n"
            "  return static_cast<int64_t>(t.raw_seconds()) + s;\n"
            "}\n"))

    def test_time_types_allowlisted(self):
        self.assertEqual([], run_source(
            "StoredTime ToStoredTime(EventTime t) {\n"
            "  return static_cast<StoredTime>(t.raw_seconds());\n"
            "}\n",
            rel_path="src/common/time_types.h"))

    def test_nolint_suppresses(self):
        self.assertEqual([], run_source(
            "int F(EventTime t) {\n"
            "  return static_cast<int>(t.raw_seconds());"
            "  // NOLINT(time-width)\n"
            "}\n"))


class CheckpointTest(unittest.TestCase):
    def test_bad_fixture_tree(self):
        self.assertEqual(["checkpoint"], run_tree("checkpoint_bad"))

    def test_ok_fixture_tree_clean(self):
        # Direct call, transitive reach, header-position call, and the
        # bounded annotation must all satisfy the check.
        self.assertEqual([], run_tree("checkpoint_ok"))

    def test_scoped_to_kernel_paths(self):
        # The same unchecked loop outside the executor/VM/merge files is
        # not this check's business.
        src = ("void Scan(size_t n) {\n"
               "  size_t i = 0;\n"
               "  while (i < n) { ++i; }\n"
               "}\n")
        self.assertIn("checkpoint",
                      run_source(src, rel_path="src/ptldb/label_merge.h"))
        self.assertEqual(
            [], run_source(src, rel_path="src/common/thread_pool.cc"))

    def test_inner_loops_not_double_flagged(self):
        # Only the outermost loop carries the obligation.
        checks = run_source(
            "void Scan(size_t n) {\n"
            "  for (size_t i = 0; i < n; ++i) {\n"
            "    for (size_t j = 0; j < n; ++j) { Fold(i, j); }\n"
            "  }\n"
            "}\n",
            rel_path="src/engine/vm.h")
        self.assertEqual(["checkpoint"], checks)


class GuardEscapeTest(unittest.TestCase):
    def test_bad_fixture_tree(self):
        self.assertEqual(4, run_tree("guard_escape_bad").count(
            "guard-escape"))

    def test_ok_fixture_tree_clean(self):
        self.assertEqual([], run_tree("guard_escape_ok"))

    def test_buffer_pool_allowlisted(self):
        self.assertEqual([], run_source(
            "const Page* Frame(PageGuard g) { return g.get(); }\n",
            rel_path="src/engine/buffer_pool.h"))


class LockOrderTest(unittest.TestCase):
    def test_bad_fixture_tree(self):
        self.assertEqual(3, run_tree("lock_order_bad").count("lock-order"))

    def test_ok_fixture_tree_clean(self):
        # Descending order, callee descent, explicit Unlock ending a
        # scope, and leaf mutexes must all pass.
        self.assertEqual([], run_tree("lock_order_ok"))

    def test_device_mu_ranked_only_in_device_files(self):
        src = ("void F(Shard& shard) {\n"
               "  MutexLock lock(mu_);\n"
               "  MutexLock latch(shard.mu);\n"
               "}\n")
        self.assertIn("lock-order",
                      run_source(src, rel_path="src/engine/device.cc"))
        # Elsewhere a bare mu_ is an unranked leaf.
        self.assertEqual(
            [], run_source(src, rel_path="src/server/server.cc"))


class CliTest(unittest.TestCase):
    def test_clean_tree_exits_zero(self):
        self.assertEqual(0, analyzer.main(
            [os.path.join(_FIXTURES, "time_width_ok")]))

    def test_findings_exit_one(self):
        self.assertEqual(1, analyzer.main(
            [os.path.join(_FIXTURES, "time_width_bad")]))

    def test_no_args_usage_error(self):
        self.assertEqual(2, analyzer.main([]))

    def test_missing_path_exits_two(self):
        with self.assertRaises(SystemExit) as ctx:
            analyzer.main([os.path.join(os.sep, "no", "such", "tree")])
        self.assertEqual(2, ctx.exception.code)

    def test_list_checks(self):
        self.assertEqual(0, analyzer.main(["--list-checks"]))

    def test_src_tree_is_clean(self):
        """The real tree must satisfy its own analyzer gate."""
        src = os.path.join(_REPO_ROOT, "src")
        db = os.path.join(_REPO_ROOT, "build", "compile_commands.json")
        args = ["-p", db, src] if os.path.isfile(db) else [src]
        self.assertEqual(0, analyzer.main(args))


if __name__ == "__main__":
    sys.stdout = sys.stderr  # unittest writes to stderr; keep ctest logs tidy
    unittest.main(verbosity=2)
