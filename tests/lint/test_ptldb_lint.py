#!/usr/bin/env python3
"""Unit tests for scripts/ptldb_lint.py.

The linter is part of the project's static-analysis gate, so regressions in
its rules are caught here like code regressions. Run directly or via ctest
(`lint_selftest`); plain stdlib unittest, no third-party deps.
"""

import importlib.util
import os
import sys
import tempfile
import unittest

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
_LINT_PATH = os.path.join(_REPO_ROOT, "scripts", "ptldb_lint.py")

_spec = importlib.util.spec_from_file_location("ptldb_lint", _LINT_PATH)
lint = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(lint)


def run_on(source, rel_path="src/engine/something.cc"):
    """Lints `source` as if it lived at `rel_path`; returns rule-id list."""
    with tempfile.NamedTemporaryFile(
            mode="w", suffix=".cc", delete=False) as f:
        f.write(source)
        path = f.name
    try:
        return [rule for (_, _, rule, _) in lint.lint_file(path, rel_path)]
    finally:
        os.unlink(path)


class StripTest(unittest.TestCase):
    def test_line_comment_blanked(self):
        out = lint.strip_comments_and_strings("int x;  // std::mutex here\n")
        self.assertNotIn("mutex", out)
        self.assertIn("int x;", out)

    def test_block_comment_preserves_newlines(self):
        src = "a\n/* std::mutex\n(void)f() */\nb\n"
        out = lint.strip_comments_and_strings(src)
        self.assertEqual(src.count("\n"), out.count("\n"))
        self.assertNotIn("mutex", out)
        self.assertNotIn("void", out)

    def test_string_literal_blanked(self):
        out = lint.strip_comments_and_strings(
            'Log("acquire std::mutex (void)x");\n')
        self.assertNotIn("mutex", out)
        self.assertIn("Log(", out)

    def test_escaped_quote_inside_string(self):
        out = lint.strip_comments_and_strings('s = "a\\"b std::mutex";\nint y;')
        self.assertNotIn("mutex", out)
        self.assertIn("int y;", out)


class VoidCastTest(unittest.TestCase):
    def test_c_style_void_cast_flagged(self):
        self.assertIn("void-cast-status", run_on("(void)db->Flush();\n"))

    def test_static_cast_void_flagged(self):
        self.assertIn("void-cast-status",
                      run_on("static_cast<void>(pool.Fetch(3));\n"))

    def test_ignore_macro_not_flagged(self):
        self.assertEqual([], run_on("PTLDB_IGNORE_STATUS(db->Flush());\n"))

    def test_void_return_type_not_flagged(self):
        self.assertEqual([], run_on("void Reset();\nvoid F() { Reset(); }\n"))

    def test_status_h_allowlisted(self):
        self.assertEqual([], run_on("static_cast<void>(_ptldb_ignored);\n",
                                    rel_path="src/common/status.h"))


class NakedMutexTest(unittest.TestCase):
    def test_std_mutex_member_flagged(self):
        self.assertIn("naked-mutex", run_on("std::mutex mu_;\n"))

    def test_lock_guard_flagged(self):
        self.assertIn("naked-mutex",
                      run_on("std::lock_guard<std::mutex> l(mu_);\n"))

    def test_unique_lock_and_cv_flagged(self):
        rules = run_on("std::unique_lock<std::mutex> l(m);\n"
                       "std::condition_variable cv;\n")
        self.assertEqual(rules.count("naked-mutex"), 2)

    def test_shared_mutex_flagged(self):
        self.assertIn("naked-mutex", run_on("std::shared_mutex rw_;\n"))

    def test_wrapper_types_allowed(self):
        self.assertEqual([], run_on("Mutex mu_;\nMutexLock lock(mu_);\n"
                                    "CondVar cv_;\n"))

    def test_annotations_header_allowlisted(self):
        self.assertEqual([], run_on(
            "std::mutex mu_;\nstd::condition_variable cv_;\n",
            rel_path="src/common/thread_annotations.h"))

    def test_mutex_in_comment_ignored(self):
        self.assertEqual([], run_on("// wraps a std::mutex internally\n"))


class PagePointerTest(unittest.TestCase):
    def test_raw_const_page_ptr_flagged(self):
        self.assertIn("page-pointer-escape",
                      run_on("const Page* cached = guard.page();\n"))

    def test_east_const_flagged(self):
        self.assertIn("page-pointer-escape",
                      run_on("Page const* cached = guard.page();\n"))

    def test_buffer_pool_allowlisted(self):
        self.assertEqual([], run_on("const Page* page = &frame.page;\n",
                                    rel_path="src/engine/buffer_pool.h"))

    def test_page_guard_by_value_allowed(self):
        self.assertEqual([], run_on("PageGuard guard = *std::move(r);\n"))

    def test_other_pointer_types_allowed(self):
        self.assertEqual([], run_on("const PageId* ids = data();\n"
                                    "const Pager* pager = &pager_;\n"))


class NondeterminismTest(unittest.TestCase):
    TTL = "src/ttl/builder.cc"

    def test_random_device_in_ttl_flagged(self):
        self.assertIn("ttl-nondeterminism",
                      run_on("std::random_device rd;\n", rel_path=self.TTL))

    def test_rand_and_time_flagged(self):
        rules = run_on("int r = rand();\nauto t = time(nullptr);\n",
                       rel_path=self.TTL)
        self.assertEqual(rules.count("ttl-nondeterminism"), 2)

    def test_system_clock_flagged(self):
        self.assertIn("ttl-nondeterminism",
                      run_on("auto t = std::chrono::system_clock::now();\n",
                             rel_path=self.TTL))

    def test_steady_clock_allowed(self):
        # Monotonic timing feeds progress stats, not label content.
        self.assertEqual(
            [], run_on("auto t = std::chrono::steady_clock::now();\n",
                       rel_path=self.TTL))

    def test_seeded_rng_allowed(self):
        self.assertEqual([], run_on("Rng rng(options.seed);\n",
                                    rel_path=self.TTL))

    def test_rule_scoped_to_ttl_paths(self):
        self.assertEqual([], run_on("std::random_device rd;\n",
                                    rel_path="src/common/rng_tool.cc"))


class UnboundedWaitTest(unittest.TestCase):
    SERVER = "src/server/server.cc"

    def test_unbounded_condvar_wait_flagged(self):
        self.assertIn("unbounded-wait",
                      run_on("cv_.Wait(lock);\n", rel_path=self.SERVER))

    def test_pointer_wait_flagged(self):
        self.assertIn("unbounded-wait",
                      run_on("pool->Wait();\n", rel_path=self.SERVER))

    def test_bounded_waits_allowed(self):
        self.assertEqual([], run_on(
            "while (!done) {\n"
            "  cv_.WaitFor(lock, std::chrono::milliseconds(50));\n"
            "}\n"
            "cv_.WaitUntil(lock, deadline);\n",
            rel_path=self.SERVER))

    def test_std_future_flagged(self):
        rules = run_on("std::future<int> f = p.get_future();\n"
                       "std::promise<int> p;\n", rel_path=self.SERVER)
        self.assertEqual(rules.count("unbounded-wait"), 2)

    def test_executor_path_in_scope(self):
        self.assertIn("unbounded-wait",
                      run_on("cv_.Wait(lock);\n",
                             rel_path="src/engine/exec.cc"))

    def test_rule_scoped_to_request_paths(self):
        # ThreadPool::Wait in the pool's own implementation (build-side
        # barrier, not the serving path) stays legal.
        self.assertEqual([], run_on("pool.Wait();\n",
                                    rel_path="src/common/thread_pool.cc"))

    def test_wait_in_comment_ignored(self):
        self.assertEqual([], run_on("// CondVar::Wait would wedge here\n",
                                    rel_path=self.SERVER))


class RawDiagnosticTest(unittest.TestCase):
    def test_fprintf_stderr_flagged(self):
        self.assertIn("raw-diagnostic",
                      run_on('fprintf(stderr, "boom %d\\n", rc);\n'))

    def test_std_cerr_flagged(self):
        self.assertIn("raw-diagnostic",
                      run_on('std::cerr << "warning" << std::endl;\n'))

    def test_std_cout_and_printf_flagged(self):
        rules = run_on('std::cout << n;\nprintf("%d\\n", n);\n')
        self.assertEqual(rules.count("raw-diagnostic"), 2)

    def test_perror_and_puts_flagged(self):
        rules = run_on('perror("open");\nputs("done");\n')
        self.assertEqual(rules.count("raw-diagnostic"), 2)

    def test_snprintf_formatting_allowed(self):
        # Buffer formatting is not console output.
        self.assertEqual([], run_on(
            'std::snprintf(buf, sizeof(buf), "%02d:%02d", h, m);\n'
            "vsnprintf(buf, n, fmt, ap);\n"))

    def test_cerr_in_comment_or_string_ignored(self):
        self.assertEqual([], run_on(
            "// never std::cerr in library code\n"
            'Log("printf-style: %s");\n'))

    def test_nolint_suppresses(self):
        self.assertEqual([], run_on(
            "std::cerr << x;  // NOLINT(raw-diagnostic)\n"))


class VmHotPathAllocTest(unittest.TestCase):
    VM = "src/ptldb/compiled.cc"

    def test_naked_new_flagged(self):
        self.assertIn("vm-hot-path-alloc",
                      run_on("auto* s = new VmState();\n", rel_path=self.VM))

    def test_make_unique_flagged(self):
        self.assertIn("vm-hot-path-alloc",
                      run_on("auto p = std::make_unique<VmState>();\n",
                             rel_path=self.VM))

    def test_container_growth_flagged(self):
        rules = run_on("rows.push_back(row);\n"
                       "heap.emplace_back(stop, time);\n"
                       "buf.resize(n);\n"
                       "scratch.reserve(n);\n"
                       "table->emplace(key, value);\n", rel_path=self.VM)
        self.assertEqual(rules.count("vm-hot-path-alloc"), 5)

    def test_arena_idioms_allowed(self):
        # The sanctioned spellings: arena carving and ArenaVector's
        # deliberately capitalized PushBack.
        self.assertEqual([], run_on(
            "ArenaVector<StopTimeResult> staged(&arena);\n"
            "staged.PushBack({stop, time});\n"
            "auto* buf = arena.AllocateArray<int32_t>(n);\n",
            rel_path=self.VM))

    def test_rule_scoped_to_vm_files(self):
        # The same allocation is fine outside the VM hot path.
        self.assertEqual([], run_on("rows.push_back(row);\n",
                                    rel_path="src/engine/exec.cc"))
        self.assertEqual([], run_on("rows.push_back(row);\n",
                                    rel_path="src/engine/arena.h"))

    def test_vm_header_in_scope(self):
        self.assertIn("vm-hot-path-alloc",
                      run_on("code.reserve(kMaxCode);\n",
                             rel_path="src/engine/vm.h"))

    def test_new_in_comment_ignored(self):
        self.assertEqual([], run_on("// a new program per query type\n",
                                    rel_path=self.VM))


class ValueOnTemporaryTest(unittest.TestCase):
    def test_chained_value_flagged(self):
        self.assertIn("value-on-temporary",
                      run_on("auto g = pool.Fetch(id).value();\n"))

    def test_move_unwrap_allowed(self):
        self.assertEqual([], run_on("auto g = std::move(result).value();\n"))

    def test_bare_move_unwrap_allowed(self):
        self.assertEqual([], run_on("auto g = move(result).value();\n"))

    def test_multiline_chain_flagged(self):
        # Open paren on an earlier line: conservatively flagged.
        self.assertIn("value-on-temporary",
                      run_on("auto g = pool.Fetch(\n    id).value();\n"))

    def test_named_value_call_allowed(self):
        # `.value()` on a named lvalue has no preceding ')': not this rule.
        self.assertEqual([], run_on("auto g = std::move(checked.value());\n"
                                    "auto v = result.value();\n"))


class NolintTest(unittest.TestCase):
    def test_bare_nolint_suppresses(self):
        self.assertEqual([], run_on("std::mutex mu_;  // NOLINT\n"))

    def test_named_nolint_suppresses_matching_rule(self):
        self.assertEqual([], run_on(
            "std::mutex mu_;  // NOLINT(naked-mutex)\n"))

    def test_named_nolint_ignores_other_rules(self):
        self.assertIn("naked-mutex", run_on(
            "std::mutex mu_;  // NOLINT(void-cast-status)\n"))

    def test_nolint_list(self):
        self.assertEqual([], run_on(
            "std::mutex mu_;  // NOLINT(void-cast-status, naked-mutex)\n"))


class CliTest(unittest.TestCase):
    def test_clean_tree_exits_zero(self):
        with tempfile.TemporaryDirectory() as d:
            with open(os.path.join(d, "ok.cc"), "w") as f:
                f.write("int main() { return 0; }\n")
            self.assertEqual(0, lint.main(["ptldb_lint.py", d]))

    def test_findings_exit_one(self):
        with tempfile.TemporaryDirectory() as d:
            with open(os.path.join(d, "bad.cc"), "w") as f:
                f.write("std::mutex mu_;\n")
            self.assertEqual(1, lint.main(["ptldb_lint.py", d]))

    def test_build_dirs_skipped(self):
        with tempfile.TemporaryDirectory() as d:
            bad_dir = os.path.join(d, "build-asan")
            os.makedirs(bad_dir)
            with open(os.path.join(bad_dir, "bad.cc"), "w") as f:
                f.write("std::mutex mu_;\n")
            self.assertEqual(0, lint.main(["ptldb_lint.py", d]))

    def test_missing_path_exits_two(self):
        with self.assertRaises(SystemExit) as ctx:
            list(lint.iter_sources([os.path.join(os.sep, "no", "such", "x")]))
        self.assertEqual(2, ctx.exception.code)

    def test_no_args_usage_error(self):
        self.assertEqual(2, lint.main(["ptldb_lint.py"]))

    def test_src_tree_is_clean(self):
        """The real tree must satisfy its own lint gate."""
        src = os.path.join(_REPO_ROOT, "src")
        self.assertEqual(0, lint.main(["ptldb_lint.py", src]))


if __name__ == "__main__":
    sys.stdout = sys.stderr  # unittest writes to stderr; keep ctest logs tidy
    unittest.main(verbosity=2)
