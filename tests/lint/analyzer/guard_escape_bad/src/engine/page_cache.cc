// Seeded PageGuard escapes: every way a pinned page's raw pointer can
// outlive its pin. Each recreates the use-after-evict bug the guards
// were introduced to kill.
#include "engine/buffer_pool.h"

namespace ptldb {

const Page* ReturnsRawFromGuard(BufferPool* pool, PageId id) {
  PageGuard guard = pool->FetchOrDie(id);
  return guard.get();  // finding: guard-escape (pin dies with the frame)
}

const Page* ReturnsNamedPointer(BufferPool* pool, PageId id) {
  PageGuard guard = pool->FetchOrDie(id);
  const Page* page = guard.get();
  return page;  // finding: guard-escape
}

class PageCache {
 public:
  void Remember(BufferPool* pool, PageId id) {
    PageGuard guard = pool->FetchOrDie(id);
    const Page* page = guard.get();
    cached_ = page;  // finding: guard-escape (member outlives the pin)
  }

  void Stash(BufferPool* pool, PageId id) {
    PageGuard guard = pool->FetchOrDie(id);
    const Page* page = guard.get();
    pages_.push_back(page);  // finding: guard-escape (container)
  }

 private:
  const Page* cached_ = nullptr;
  std::vector<const Page*> pages_;
};

}  // namespace ptldb
