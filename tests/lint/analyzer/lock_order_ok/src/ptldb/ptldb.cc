// Legal locking: acquisitions descend the hierarchy, explicit Unlock ends
// a scope before a sibling acquisition, and leaf mutexes (unranked) are
// outside the ordering discipline entirely.
#include "ptldb/ptldb.h"

namespace ptldb {

void DescendingOrder(Shard& shard) {
  MutexLock lock(sets_mu_);    // rank 0
  MutexLock latch(shard.mu);   // rank 1: descending, clean.
  MutexLock dev(device_mu_);   // rank 2: still descending, clean.
  CopyOut(shard);
}

void AcquiresDeviceMu() {
  MutexLock dev(device_mu_);
  ChargeRead();
}

void DescendsThroughCallee(Shard& shard) {
  MutexLock latch(shard.mu);  // rank 1 held...
  AcquiresDeviceMu();         // callee takes rank 2: descending, clean.
}

void UnlockEndsScope(Shard& shard) {
  MutexLock latch(shard.mu);
  ReadRows(shard);
  latch.Unlock();             // rank 1 released...
  MutexLock lock(sets_mu_);   // ...so taking rank 0 now is clean.
  RebuildSets();
}

void LeafMutexIgnored() {
  MutexLock lock(stats_mu_);  // unranked leaf: not part of the hierarchy.
  MutexLock dev(device_mu_);
  ChargeRead();
}

}  // namespace ptldb
