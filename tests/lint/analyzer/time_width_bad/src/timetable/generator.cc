// Seeded time-width violations. The accumulator below is the exact shape
// of the pre-typed-time generator event clock: departures near the end of
// a wide service window walked an int32 past INT32_MAX and wrapped
// negative. Reverting that fix must re-trip the analyzer here.
#include "common/time_types.h"

namespace ptldb {

int32_t NarrowingCast(EventTime t) {
  return static_cast<int32_t>(t.raw_seconds());  // finding: time-width
}

void NarrowInit(EventTime dep, EventTime arr) {
  int span = static_cast<int>(arr.raw_seconds() - dep.raw_seconds());
  (void)span;
}

void EventClockRevert(EventTime window_start, int headway_seconds,
                      int n_trips) {
  // The PR-9 revert shape: a 32-bit time-named accumulator.
  int32_t clock = 0;
  for (int i = 0; i < n_trips; ++i) {
    clock += headway_seconds;  // finding: time-width (accumulator)
    EmitTrip(window_start, clock);
  }
}

}  // namespace ptldb
