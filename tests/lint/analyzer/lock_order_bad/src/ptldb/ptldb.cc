// Seeded lock-order inversions against the ranked hierarchy
// sets_mu_ (0) -> shard latch (1) -> device mu_ (2). Acquisition must
// descend; each function below climbs back up while still holding a
// lower rung — a deadlock the moment another thread descends normally.
#include "ptldb/ptldb.h"

namespace ptldb {

void DirectInversion(Shard& shard) {
  MutexLock latch(shard.mu);      // rank 1 held...
  MutexLock lock(sets_mu_);       // finding: lock-order (acquires rank 0)
  RebuildSets();
}

void AcquiresSetsMu() {
  MutexLock lock(sets_mu_);
  RebuildSets();
}

void TransitiveInversion(Shard& shard) {
  MutexLock latch(shard.mu);  // rank 1 held...
  AcquiresSetsMu();           // finding: lock-order (callee takes rank 0)
}

void DeviceThenShard(Shard& shard) {
  MutexLock dev(device_mu_);   // rank 2 held...
  MutexLock latch(shard.mu);   // finding: lock-order (acquires rank 1)
  CopyOut(shard);
}

}  // namespace ptldb
