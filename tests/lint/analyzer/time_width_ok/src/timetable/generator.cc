// The blessed idioms the time-width check must NOT flag: int64 compute
// tier, checked narrowing through the boundary functions, and an explicit
// NOLINT escape hatch.
#include "common/time_types.h"

namespace ptldb {

int64_t WideIsFine(EventTime t) {
  int64_t seconds = t.raw_seconds();  // int64: the compute width.
  return seconds;
}

StoredTime CheckedBoundary(EventTime t) {
  return ToStoredTime(t);  // the sanctioned narrowing path.
}

void TypedEventClock(EventTime window_start, Duration headway, int n_trips) {
  EventTime clock = window_start;  // typed accumulator: 64-bit algebra.
  for (int i = 0; i < n_trips; ++i) {
    clock += headway;
    EmitTrip(window_start, clock);
  }
}

int32_t Suppressed(EventTime t) {
  return static_cast<int32_t>(t.raw_seconds());  // NOLINT(time-width)
}

void NotATimeName(int count) {
  int32_t rows = 0;  // 32-bit accumulator, but not time-named: clean.
  for (int i = 0; i < count; ++i) rows += 1;
  (void)rows;
}

}  // namespace ptldb
