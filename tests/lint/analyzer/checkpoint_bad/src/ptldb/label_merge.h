// Seeded checkpoint violation: a merge kernel whose scan loop can run for
// an unbounded number of label rows without ever consulting the query
// deadline. This is the bug class that let a single huge V2V merge blow
// through its budget before the overload controller could shed it.
#ifndef FIXTURE_LABEL_MERGE_H_
#define FIXTURE_LABEL_MERGE_H_

namespace ptldb {

inline Status UncheckedMergeScan(const LabelRowView& outp,
                                 const LabelRowView& inp) {
  size_t i = 0;
  size_t j = 0;
  while (i < outp.size && j < inp.size) {  // finding: checkpoint
    if (outp.hubs[i] < inp.hubs[j]) {
      ++i;
    } else if (inp.hubs[j] < outp.hubs[i]) {
      ++j;
    } else {
      FoldGroup(outp, inp, i, j);
      ++i;
      ++j;
    }
  }
  return Status::Ok();
}

}  // namespace ptldb

#endif  // FIXTURE_LABEL_MERGE_H_
