// The three ways a kernel loop legitimately satisfies the checkpoint
// check: a direct checkpoint call, transitive reach through a helper
// (including a call in the loop HEADER, the pull-based operator shape),
// and a structurally bounded loop carrying the annotation.
#ifndef FIXTURE_LABEL_MERGE_OK_H_
#define FIXTURE_LABEL_MERGE_OK_H_

namespace ptldb {

inline Status CheckpointedHelper() { return CheckQueryCheckpoint(); }

inline Status DirectlyCheckpointed(const LabelRowView& v) {
  size_t i = 0;
  while (i < v.size) {
    PTLDB_RETURN_IF_ERROR(CheckQueryCheckpoint());
    ++i;
  }
  return Status::Ok();
}

inline Status TransitivelyCheckpointed(const LabelRowView& v) {
  size_t i = 0;
  while (i < v.size) {
    PTLDB_RETURN_IF_ERROR(CheckpointedHelper());
    ++i;
  }
  return Status::Ok();
}

inline Status CheckpointInHeader(Cursor* cursor) {
  while (auto row = cursor->NextCheckpointed()) {
    Consume(*row);
  }
  return Status::Ok();
}

inline Status NextCheckpointed() { return CheckpointedHelper(); }

inline size_t BoundedBinarySearch(const LabelRowView& v, size_t lo,
                                  size_t hi, int32_t t) {
  // analyzer: bounded(binary search: O(log n) over one Pareto group)
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (v.tds[mid] >= t) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace ptldb

#endif  // FIXTURE_LABEL_MERGE_OK_H_
