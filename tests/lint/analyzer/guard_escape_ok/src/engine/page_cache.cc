// Legal PageGuard use: the raw pointer never outlives the guard's frame,
// and ownership transfers move the guard itself.
#include "engine/buffer_pool.h"

namespace ptldb {

int32_t ReadWithinFrame(BufferPool* pool, PageId id) {
  PageGuard guard = pool->FetchOrDie(id);
  const Page* page = guard.get();  // local use only: clean.
  return DecodeHeader(page);
}

PageGuard ReturnTheGuard(BufferPool* pool, PageId id) {
  PageGuard guard = pool->FetchOrDie(id);
  return guard;  // moving the pin out is the sanctioned escape.
}

int32_t ArrowAccess(BufferPool* pool, PageId id) {
  PageGuard guard = pool->FetchOrDie(id);
  return guard->header.page_type;  // accessor use: clean.
}

}  // namespace ptldb
