// Proof-of-equivalence suite for the compressed label tier's codec
// (ttl/label_codec.h) and resident store (ttl/label_store.h):
//
//  1. Seeded round-trip fuzz: 10k randomized label sets — empty rows,
//     single-hub stops, duplicate departure times, INT32_MAX times,
//     adversarial hub-gap patterns — must decode back exactly, and
//     re-encoding the decode must reproduce the bytes (canonical form).
//     Failures shrink greedily and print one "minimal failing repro"
//     line, matching the differential harness style.
//  2. Corruption bounds: every prefix truncation and every single-byte
//     flip of a valid bucket must yield kCorruption/kInvalidArgument —
//     never an out-of-bounds read (ASan/UBSan in CI) and never a
//     silently wrong tuple.
//  3. Exact-boundary encodes: td/ta at the service-day boundary, at
//     bucket-edge multiples, and at INT32_MAX/INT32_MIN round-trip
//     exactly (the overnight-trip overflow audit of DESIGN.md).
//  4. LabelStore: per-stop buckets match the TtlIndex, accounting and
//     content CRC behave, decode faults surface as kCorruption.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/checksum.h"
#include "common/rng.h"
#include "timetable/example_graph.h"
#include "timetable/generator.h"
#include "ttl/builder.h"
#include "ttl/label_codec.h"
#include "ttl/label_store.h"

namespace ptldb {
namespace {

constexpr int32_t kInt32Max = std::numeric_limits<int32_t>::max();
constexpr int32_t kInt32Min = std::numeric_limits<int32_t>::min();

// One fuzz case: the three parallel arrays of a label row.
struct Arrays {
  std::vector<int32_t> hubs;
  std::vector<int32_t> tds;
  std::vector<int32_t> tas;

  size_t size() const { return hubs.size(); }
};

std::string FormatArrays(const Arrays& a) {
  std::ostringstream ss;
  ss << "hubs=[";
  for (size_t i = 0; i < a.hubs.size(); ++i) {
    ss << (i ? "," : "") << a.hubs[i];
  }
  ss << "] tds=[";
  for (size_t i = 0; i < a.tds.size(); ++i) ss << (i ? "," : "") << a.tds[i];
  ss << "] tas=[";
  for (size_t i = 0; i < a.tas.size(); ++i) ss << (i ? "," : "") << a.tas[i];
  ss << "]";
  return ss.str();
}

// Encode -> decode -> compare -> re-encode; returns a mismatch
// description or nullopt when the case round-trips.
std::optional<std::string> CheckRoundTrip(const Arrays& a) {
  std::string bytes;
  Status enc = EncodeLabelBucket(a.hubs, a.tds, a.tas, &bytes);
  if (!enc.ok()) return "encode failed: " + enc.ToString();
  LabelArrays decoded;
  Status dec = DecodeLabelBucket(bytes, &decoded);
  if (!dec.ok()) return "decode failed: " + dec.ToString();
  if (decoded.hubs != a.hubs) return "hubs differ after round trip";
  if (decoded.tds != a.tds) return "tds differ after round trip";
  if (decoded.tas != a.tas) return "tas differ after round trip";
  std::string bytes2;
  Status enc2 = EncodeLabelBucket(decoded.hubs, decoded.tds, decoded.tas,
                                  &bytes2);
  if (!enc2.ok()) return "re-encode failed: " + enc2.ToString();
  if (bytes2 != bytes) return "re-encode is not byte-identical";
  auto n = PeekLabelBucketCount(bytes);
  if (!n.ok()) return "peek failed: " + n.status().ToString();
  if (*n != a.size()) return "peeked count differs";
  return std::nullopt;
}

// Greedy shrink in the differential-harness style: drop tuples one at a
// time while the failure persists, then print the minimal repro.
std::string ShrinkCase(uint64_t seed, Arrays a, std::string detail) {
  bool progress = true;
  while (progress && a.size() > 1) {
    progress = false;
    for (size_t i = 0; i < a.size(); ++i) {
      Arrays candidate = a;
      candidate.hubs.erase(candidate.hubs.begin() + static_cast<long>(i));
      candidate.tds.erase(candidate.tds.begin() + static_cast<long>(i));
      candidate.tas.erase(candidate.tas.begin() + static_cast<long>(i));
      if (auto still = CheckRoundTrip(candidate)) {
        a = std::move(candidate);
        detail = std::move(*still);
        progress = true;
        break;
      }
    }
  }
  std::ostringstream ss;
  ss << "minimal failing repro: seed=" << seed << " " << FormatArrays(a)
     << " -- " << detail;
  return ss.str();
}

// Random label row biased toward the codec's edge cases. Hubs are
// non-decreasing (the LabelSet invariant the encoder requires); times are
// arbitrary int32 — the codec must not assume Pareto order, only the hub
// sort.
Arrays RandomArrays(Rng* rng) {
  Arrays a;
  const uint64_t shape = rng->NextBelow(8);
  size_t n;
  switch (shape) {
    case 0:
      n = 0;  // empty label row (an isolated stop)
      break;
    case 1:
      n = 1;  // single tuple
      break;
    default:
      n = static_cast<size_t>(rng->NextInRange(2, 40));
      break;
  }
  int64_t hub = 0;
  for (size_t i = 0; i < n; ++i) {
    if (i == 0) {
      hub = static_cast<int64_t>(rng->NextBelow(1 << 20));
    } else if (rng->NextBelow(3) == 0) {
      // Duplicate hub: multi-tuple group with possibly equal departures.
    } else if (rng->NextBelow(4) == 0) {
      // Adversarial gap: jump close to the top of the id range.
      hub = std::min<int64_t>(kInt32Max,
                              hub + static_cast<int64_t>(rng->NextBelow(
                                        static_cast<uint64_t>(kInt32Max) /
                                        2)));
    } else {
      hub += static_cast<int64_t>(rng->NextBelow(64));
      hub = std::min<int64_t>(hub, kInt32Max);
    }
    a.hubs.push_back(static_cast<int32_t>(hub));

    int32_t td;
    switch (rng->NextBelow(6)) {
      case 0:
        td = kInt32Max;  // extreme service time
        break;
      case 1:
        td = 86400 * static_cast<int32_t>(rng->NextBelow(3));  // day edges
        break;
      case 2:
        td = kInt32Min;  // adversarial negative time
        break;
      default:
        td = static_cast<int32_t>(
            rng->NextInRange(0, 2 * 86400));  // overnight window
        break;
    }
    // Duplicate departure times within a hub group, sometimes.
    if (i > 0 && a.hubs[i] == a.hubs[i - 1] && rng->NextBelow(3) == 0) {
      td = a.tds[i - 1];
    }
    a.tds.push_back(td);

    int32_t ta;
    if (rng->NextBelow(6) == 0) {
      ta = kInt32Max;
    } else {
      // Mostly realistic: arrival within a day of departure (saturating).
      const int64_t wide =
          static_cast<int64_t>(td) + static_cast<int64_t>(rng->NextBelow(
                                         86400));
      ta = static_cast<int32_t>(std::min<int64_t>(wide, kInt32Max));
    }
    a.tas.push_back(ta);
  }
  return a;
}

TEST(LabelCodecTest, FuzzTenThousandSeededRoundTrips) {
  uint32_t failures = 0;
  for (uint64_t seed = 1; seed <= 10000; ++seed) {
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 17);
    const Arrays a = RandomArrays(&rng);
    if (auto bad = CheckRoundTrip(a)) {
      ADD_FAILURE() << ShrinkCase(seed, a, *bad);
      if (++failures >= 5) GTEST_FAIL() << "stopping after 5 failures";
    }
  }
}

TEST(LabelCodecTest, EmptyRowEncodesAndDecodes) {
  std::string bytes;
  ASSERT_TRUE(EncodeLabelBucket({}, {}, {}, &bytes).ok());
  // CRC (4) + count varint (1): the smallest possible bucket.
  EXPECT_EQ(bytes.size(), 5u);
  LabelArrays out;
  ASSERT_TRUE(DecodeLabelBucket(bytes, &out).ok());
  EXPECT_EQ(out.size(), 0u);
}

TEST(LabelCodecTest, RejectsUnequalLengthsAndUnsortedHubs) {
  std::string bytes;
  const std::vector<int32_t> two = {1, 2};
  const std::vector<int32_t> one = {1};
  EXPECT_EQ(EncodeLabelBucket(two, two, one, &bytes).code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(EncodeLabelBucket(two, one, two, &bytes).code(),
            Status::Code::kInvalidArgument);
  const std::vector<int32_t> unsorted = {5, 3};
  EXPECT_EQ(EncodeLabelBucket(unsorted, two, two, &bytes).code(),
            Status::Code::kInvalidArgument);
  const std::vector<int32_t> negative = {-1, 3};
  EXPECT_EQ(EncodeLabelBucket(negative, two, two, &bytes).code(),
            Status::Code::kInvalidArgument);
}

// A representative bucket used by the corruption drills: several hub
// groups, duplicate departures, a day-boundary arrival.
std::string ReferenceBucket() {
  const std::vector<int32_t> hubs = {3, 3, 3, 40, 40, 1000000, 1000000};
  const std::vector<int32_t> tds = {100, 100, 7200, 50, 86399, 0, 86400};
  const std::vector<int32_t> tas = {900, 950, 7900, 60, 86401, 10, 90000};
  std::string bytes;
  EXPECT_TRUE(EncodeLabelBucket(hubs, tds, tas, &bytes).ok());
  return bytes;
}

bool IsRejected(const Status& s) {
  return s.code() == Status::Code::kCorruption ||
         s.code() == Status::Code::kInvalidArgument;
}

TEST(LabelCodecTest, EveryPrefixTruncationIsRejected) {
  const std::string bytes = ReferenceBucket();
  LabelArrays out;
  for (size_t len = 0; len < bytes.size(); ++len) {
    const Status s = DecodeLabelBucket(std::string_view(bytes).substr(0, len),
                                       &out);
    EXPECT_TRUE(IsRejected(s))
        << "prefix of length " << len << " decoded with " << s.ToString();
    EXPECT_EQ(out.size(), 0u) << "partial tuples escaped at length " << len;
  }
}

TEST(LabelCodecTest, EverySingleByteFlipIsRejected) {
  const std::string bytes = ReferenceBucket();
  LabelArrays out;
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    for (const uint8_t mask : {0x01, 0x80, 0xff}) {
      std::string mutated = bytes;
      mutated[pos] = static_cast<char>(static_cast<uint8_t>(mutated[pos]) ^
                                       mask);
      const Status s = DecodeLabelBucket(mutated, &out);
      // The CRC covers every payload byte and the CRC field itself is
      // compared against the payload, so any one-byte flip must surface.
      EXPECT_TRUE(IsRejected(s)) << "flip at byte " << pos << " mask "
                                 << unsigned{mask} << " decoded with "
                                 << s.ToString();
      EXPECT_EQ(out.size(), 0u);
    }
  }
}

TEST(LabelCodecTest, TrailingGarbageIsRejected) {
  std::string bytes = ReferenceBucket();
  bytes.push_back('\0');
  LabelArrays out;
  EXPECT_TRUE(IsRejected(DecodeLabelBucket(bytes, &out)));
}

TEST(LabelCodecTest, HugeTupleCountIsRejectedBeforeAllocating) {
  // Hand-craft a payload whose count varint claims ~2^31 tuples but whose
  // payload is a few bytes. The CRC is made valid on purpose: this drills
  // the count-vs-size plausibility bound, not the checksum.
  std::string payload;
  for (const uint8_t b : {0xff, 0xff, 0xff, 0xff, 0x07}) {
    payload.push_back(static_cast<char>(b));
  }
  const uint32_t crc = Crc32c(payload.data(), payload.size());
  std::string bytes(reinterpret_cast<const char*>(&crc), sizeof(crc));
  bytes += payload;
  LabelArrays out;
  EXPECT_EQ(DecodeLabelBucket(bytes, &out).code(), Status::Code::kCorruption);
}

// Service-day boundary and extreme-value encodes: exact multiples of the
// bucket width (the Code 3/4 grouping interval), the day boundary that
// overnight trips cross, and the int32 extremes. Each must round-trip
// bit-exactly — this is the regression net for the uint32/int32 overflow
// audit (an intermediate that wrapped or sign-extended would corrupt
// exactly these values first).
TEST(LabelCodecTest, ExactBoundaryTimesRoundTrip) {
  std::vector<int32_t> times;
  for (const int32_t bucket : {3600, 1800, 7200}) {
    for (int32_t k = 0; k <= 25; ++k) {
      times.push_back(bucket * k);
      times.push_back(bucket * k - 1);
      times.push_back(bucket * k + 1);
    }
  }
  times.push_back(86400);      // t_end of a one-day window
  times.push_back(86400 * 2);  // overnight continuation
  times.push_back(kInt32Max);
  times.push_back(kInt32Max - 1);
  times.push_back(kInt32Min);
  times.push_back(0);
  times.push_back(-1);

  // One tuple per time value, all under one hub (worst case for the
  // delta stream: consecutive deltas swing across the full range).
  Arrays a;
  for (const int32_t t : times) {
    a.hubs.push_back(7);
    a.tds.push_back(t);
    a.tas.push_back(t);  // zero duration: dummy-tuple shape
  }
  // And a second group pairing each td with an extreme ta.
  for (const int32_t t : times) {
    a.hubs.push_back(9);
    a.tds.push_back(t);
    a.tas.push_back(kInt32Max);
  }
  auto bad = CheckRoundTrip(a);
  EXPECT_FALSE(bad.has_value()) << *bad;
}

TEST(LabelCodecTest, MaxHubGapRoundTrips) {
  const std::vector<int32_t> hubs = {0, kInt32Max};
  const std::vector<int32_t> tds = {0, 0};
  const std::vector<int32_t> tas = {0, 0};
  Arrays a{hubs, tds, tas};
  auto bad = CheckRoundTrip(a);
  EXPECT_FALSE(bad.has_value()) << *bad;
}

// ---------- LabelStore over a real index ----------

TEST(LabelStoreTest, MatchesTheIndexItWasBuiltFrom) {
  const Timetable tt = MakeExampleTimetable();
  TtlBuildOptions options;
  options.custom_order = ExampleVertexOrder();
  auto index = BuildTtlIndex(tt, options);
  ASSERT_TRUE(index.ok());

  auto store = LabelStore::Build(*index);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->num_stops(), index->num_stops());
  EXPECT_EQ((*store)->total_labels(),
            index->out.total_tuples() + index->in.total_tuples());
  EXPECT_GT((*store)->bytes_resident(), 0u);

  LabelArrays scratch;
  for (StopId v = 0; v < index->num_stops(); ++v) {
    for (const auto dir :
         {LabelStore::Direction::kOut, LabelStore::Direction::kIn}) {
      const auto tuples = dir == LabelStore::Direction::kOut
                              ? index->out.tuples(v)
                              : index->in.tuples(v);
      auto view = (*store)->Decode(dir, v, &scratch);
      ASSERT_TRUE(view.ok()) << view.status().ToString();
      ASSERT_EQ(view->size(), tuples.size()) << "stop " << v;
      for (size_t i = 0; i < tuples.size(); ++i) {
        EXPECT_EQ(view->hubs[i], static_cast<int32_t>(tuples[i].hub));
        EXPECT_EQ(FromStoredTime(view->tds[i]), tuples[i].td);
        EXPECT_EQ(FromStoredTime(view->tas[i]), tuples[i].ta);
      }
    }
  }
}

TEST(LabelStoreTest, CompressesBelowHalfOfRawAndAccountsBytes) {
  // A generated city rather than the 8-stop example graph: the 0.5x gate
  // is about amortized per-tuple cost, and the example's 34 tuples are
  // dwarfed by the fixed per-bucket CRC+count overhead.
  GeneratorOptions o;
  o.num_stops = 80;
  o.target_connections = 4000;
  o.min_route_len = 4;
  o.max_route_len = 9;
  o.seed = 7;
  auto gen = GenerateNetwork(o);
  ASSERT_TRUE(gen.ok());
  const Timetable tt = std::move(gen).value();
  auto index = BuildTtlIndex(tt);
  ASSERT_TRUE(index.ok());
  auto store = LabelStore::Build(*index);
  ASSERT_TRUE(store.ok());
  const uint64_t raw = (*store)->total_labels() * 3 * sizeof(int32_t);
  // The tentpole's CI gate, asserted at unit level too: delta+varint SoA
  // buckets at most half the raw int32 arrays.
  EXPECT_LE((*store)->bytes_resident() * 2, raw)
      << "compressed " << (*store)->bytes_resident() << " vs raw " << raw;
  // The arena accounting matches the sum of the per-stop buckets.
  uint64_t summed = 0;
  for (StopId v = 0; v < (*store)->num_stops(); ++v) {
    summed += (*store)->bucket_bytes(LabelStore::Direction::kOut, v).size();
    summed += (*store)->bucket_bytes(LabelStore::Direction::kIn, v).size();
  }
  EXPECT_EQ(summed, (*store)->bytes_resident());
}

TEST(LabelStoreTest, OutOfRangeStopIsInvalidNotCorrupt) {
  const Timetable tt = MakeExampleTimetable();
  auto index = BuildTtlIndex(tt);
  ASSERT_TRUE(index.ok());
  auto store = LabelStore::Build(*index);
  ASSERT_TRUE(store.ok());
  LabelArrays scratch;
  EXPECT_EQ((*store)
                ->Decode(LabelStore::Direction::kOut,
                         (*store)->num_stops(), &scratch)
                .status()
                .code(),
            Status::Code::kInvalidArgument);
  EXPECT_TRUE(
      (*store)->bucket_bytes(LabelStore::Direction::kOut, kInvalidStop)
          .empty());
}

TEST(LabelStoreTest, ContentCrcIsStableAcrossRebuilds) {
  const Timetable tt = MakeExampleTimetable();
  auto index = BuildTtlIndex(tt);
  ASSERT_TRUE(index.ok());
  auto a = LabelStore::Build(*index);
  auto b = LabelStore::Build(*index);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*a)->content_crc(), (*b)->content_crc());
  EXPECT_EQ((*a)->bytes_resident(), (*b)->bytes_resident());
}

}  // namespace
}  // namespace ptldb
