#include "common/query_log.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"

namespace ptldb {
namespace {

// Tests for the structured request history (DESIGN.md §11): the
// lock-sharded bounded ring, tail-based trace retention, the
// RequestRecorder's exact phase attribution (per-record phase sums equal
// latency_ns; published phase.* metrics telescope to the querylog
// totals), and the concurrent writer/reader stress the TSan CI lane runs.

QueryLogRecord OkRecord(uint64_t latency_ns) {
  QueryLogRecord rec;
  rec.set_type("v2v_ea");
  rec.s = 1;
  rec.g = 2;
  rec.t = EventTime::FromSeconds(3);
  rec.phases.ns[static_cast<size_t>(QueryPhase::kPlan)] = latency_ns;
  rec.latency_ns = latency_ns;
  return rec;
}

TEST(QueryLogTest, PhaseAndOutcomeNamesAreStable) {
  EXPECT_STREQ(QueryPhaseName(QueryPhase::kQueueWait), "queue_wait");
  EXPECT_STREQ(QueryPhaseName(QueryPhase::kAdmission), "admission");
  EXPECT_STREQ(QueryPhaseName(QueryPhase::kPlan), "plan");
  EXPECT_STREQ(QueryPhaseName(QueryPhase::kLabelDecode), "label_decode");
  EXPECT_STREQ(QueryPhaseName(QueryPhase::kMerge), "merge");
  EXPECT_STREQ(QueryPhaseName(QueryPhase::kBufferIo), "buffer_io");
  EXPECT_STREQ(QueryPhaseName(QueryPhase::kCallback), "callback");
  EXPECT_STREQ(QueryPhaseName(QueryPhase::kOther), "other");
  EXPECT_STREQ(QueryOutcomeName(QueryOutcome::kOk), "ok");
  EXPECT_STREQ(QueryOutcomeName(QueryOutcome::kShed), "shed");
  EXPECT_STREQ(QueryOutcomeName(QueryOutcome::kDeadline), "deadline");
  EXPECT_STREQ(QueryOutcomeName(QueryOutcome::kError), "error");
}

TEST(QueryLogTest, OutcomeForStatusMapsEveryCode) {
  const char* cause = nullptr;
  EXPECT_EQ(OutcomeForStatus(Status::Ok(), &cause), QueryOutcome::kOk);
  EXPECT_EQ(cause, nullptr);
  EXPECT_EQ(OutcomeForStatus(Status::DeadlineExceeded("x"), &cause),
            QueryOutcome::kDeadline);
  EXPECT_STREQ(cause, "exec");
  EXPECT_EQ(OutcomeForStatus(Status::Overloaded("x"), &cause),
            QueryOutcome::kShed);
  EXPECT_STREQ(cause, "shed");
  EXPECT_EQ(OutcomeForStatus(Status::IoError("x"), &cause),
            QueryOutcome::kError);
  EXPECT_STREQ(cause, "io_error");
  EXPECT_EQ(OutcomeForStatus(Status::NotFound("x"), &cause),
            QueryOutcome::kError);
  EXPECT_STREQ(cause, "not_found");
}

TEST(QueryLogTest, AppendAssignsMonotonicSeqAndSnapshotsInOrder) {
  QueryLogOptions opts;
  opts.capacity = 64;
  opts.sample_every = 0;
  QueryLog log(opts);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(log.Append(OkRecord(1000 + i)), static_cast<uint64_t>(i + 1));
  }
  const auto records = log.SnapshotRecords();
  ASSERT_EQ(records.size(), 10u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq, i + 1);
    EXPECT_EQ(records[i].latency_ns, 1000 + i);
    EXPECT_STREQ(records[i].type, "v2v_ea");
  }
}

TEST(QueryLogTest, RingWrapsKeepingNewestWithBoundedMemory) {
  QueryLogOptions opts;
  opts.capacity = 8;
  opts.shards = 2;
  opts.sample_every = 0;
  QueryLog log(opts);
  for (int i = 0; i < 100; ++i) log.Append(OkRecord(1));
  const auto records = log.SnapshotRecords();
  EXPECT_EQ(records.size(), 8u);
  std::set<uint64_t> seqs;
  for (const auto& rec : records) seqs.insert(rec.seq);
  EXPECT_EQ(seqs.size(), records.size());
  // Newest survives; with round-robin sharding the retained window is the
  // last per_shard_cap appends of each shard.
  EXPECT_EQ(*seqs.rbegin(), 100u);
  EXPECT_GE(*seqs.begin(), 100u - 2 * 8);
}

TEST(QueryLogTest, DisabledLogStoresAndCountsNothing) {
  MetricsRegistry metrics;
  QueryLogOptions opts;
  QueryLog log(opts, &metrics);
  log.set_enabled(false);
  EXPECT_EQ(log.Append(OkRecord(5000)), 0u);
  EXPECT_TRUE(log.SnapshotRecords().empty());
  EXPECT_EQ(metrics.Snapshot().counters.at("querylog.records"), 0u);

  // Recorders constructed against a disabled log are inactive no-ops.
  RequestRecorder recorder(&log);
  EXPECT_FALSE(recorder.active());
  EXPECT_EQ(recorder.Finish(QueryOutcome::kOk), 0u);
}

TEST(QueryLogTest, SlowClassificationStartsAtFloorThenTracksP99) {
  QueryLogOptions opts;
  opts.slow_floor_ns = 1000;
  opts.slow_multiplier = 2.0;
  opts.sample_every = 0;
  QueryLog log(opts);
  EXPECT_EQ(log.slow_threshold_ns(), 1000u);
  log.Append(OkRecord(500));
  log.Append(OkRecord(5000));
  auto records = log.SnapshotRecords();
  EXPECT_FALSE(records[0].slow);
  EXPECT_TRUE(records[1].slow);

  // After 64+ appends of ~1ms queries the threshold re-derives from the
  // log's own p99: ordinary 1ms latencies stop classifying as slow.
  for (int i = 0; i < 64; ++i) log.Append(OkRecord(1'000'000));
  EXPECT_GE(log.slow_threshold_ns(), 1'900'000u);  // ~2x p99, bucketed.
  const uint64_t seq = log.Append(OkRecord(1'100'000));
  records = log.SnapshotRecords();
  EXPECT_FALSE(records.back().slow);
  EXPECT_EQ(records.back().seq, seq);
}

TEST(QueryLogTest, TailRetainsEveryNonOkRequestAndNoFastOkOnes) {
  MetricsRegistry metrics;
  QueryLogOptions opts;
  opts.sample_every = 0;  // Isolate the tail rules from the 1-in-N sample.
  QueryLog log(opts, &metrics);

  log.Append(OkRecord(100));  // Fast ok: not retained.
  QueryLogRecord shed = OkRecord(50);
  shed.outcome = QueryOutcome::kShed;
  shed.set_cause("queue_full");
  log.Append(shed);
  QueryLogRecord deadline = OkRecord(50);
  deadline.outcome = QueryOutcome::kDeadline;
  deadline.set_cause("queue");
  log.Append(deadline);
  QueryLogRecord error = OkRecord(50);
  error.outcome = QueryOutcome::kError;
  error.set_cause("io_error");
  log.Append(error);

  const auto traces = log.SnapshotTraces();
  ASSERT_EQ(traces.size(), 3u);
  EXPECT_STREQ(traces[0].reason, "shed");
  EXPECT_STREQ(traces[1].reason, "deadline");
  EXPECT_STREQ(traces[2].reason, "error");

  // 100% retention is also visible in the counters the CI gate reads.
  const auto counters = metrics.Snapshot().counters;
  EXPECT_EQ(counters.at("traces.retained.shed"),
            counters.at("querylog.outcome.shed"));
  EXPECT_EQ(counters.at("traces.retained.deadline"),
            counters.at("querylog.outcome.deadline"));
  EXPECT_EQ(counters.at("traces.retained.error"),
            counters.at("querylog.outcome.error"));
  EXPECT_EQ(counters.at("traces.retained.sampled"), 0u);
}

TEST(QueryLogTest, NormalSampleRetainsOneInN) {
  QueryLogOptions opts;
  opts.sample_every = 1;  // Degenerate sample: every normal request kept.
  QueryLog log(opts);
  for (int i = 0; i < 5; ++i) log.Append(OkRecord(10));
  const auto traces = log.SnapshotTraces();
  ASSERT_EQ(traces.size(), 5u);
  for (const auto& t : traces) EXPECT_STREQ(t.reason, "sampled");
}

TEST(QueryLogTest, TraceQueueIsBoundedAndEvictsOldest) {
  MetricsRegistry metrics;
  QueryLogOptions opts;
  opts.trace_capacity = 4;
  opts.sample_every = 0;
  QueryLog log(opts, &metrics);
  for (int i = 0; i < 10; ++i) {
    QueryLogRecord rec = OkRecord(50);
    rec.outcome = QueryOutcome::kShed;
    log.Append(rec);
  }
  const auto traces = log.SnapshotTraces();
  ASSERT_EQ(traces.size(), 4u);
  EXPECT_EQ(traces.front().seq, 7u);  // Oldest evicted first.
  EXPECT_EQ(traces.back().seq, 10u);
  EXPECT_EQ(metrics.Snapshot().counters.at("querylog.trace_evictions"), 6u);
}

TEST(QueryLogTest, TraceJsonCarriesArgsSpansAndEmbeddedTree) {
  QueryLogRecord rec = OkRecord(4200);
  rec.seq = 17;
  rec.set_set_name("poi");
  rec.k = 4;
  rec.phases.label_decodes[static_cast<size_t>(QueryPhase::kPlan)] = 9;
  const std::string json = QueryLog::TraceJson(rec, "slow", "{\"x\": 1}");
  EXPECT_NE(json.find("\"seq\": 17"), std::string::npos);
  EXPECT_NE(json.find("\"reason\": \"slow\""), std::string::npos);
  EXPECT_NE(json.find("\"set\": \"poi\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"plan\""), std::string::npos);
  EXPECT_NE(json.find("\"label_decodes\": 9"), std::string::npos);
  EXPECT_NE(json.find("\"trace\": {\"x\": 1}"), std::string::npos);
}

TEST(RequestRecorderTest, PhaseSumsEqualLatencyExactly) {
  QueryLogOptions opts;
  opts.sample_every = 0;
  QueryLog log(opts);
  {
    RequestRecorder recorder(&log);
    ASSERT_TRUE(recorder.active());
    recorder.record().set_type("v2v_ea");
    {
      ScopedQueryPhase plan(QueryPhase::kPlan);
      ScopedQueryPhase merge(QueryPhase::kMerge);
    }
    EXPECT_GT(recorder.Finish(QueryOutcome::kOk), 0u);
  }
  const auto records = log.SnapshotRecords();
  ASSERT_EQ(records.size(), 1u);
  const QueryLogRecord& rec = records[0];
  EXPECT_EQ(rec.outcome, QueryOutcome::kOk);
  EXPECT_EQ(rec.latency_ns, rec.phases.total_ns());
  EXPECT_GT(rec.latency_ns, 0u);
}

TEST(RequestRecorderTest, ChargeExternalCountsTowardLatency) {
  QueryLogOptions opts;
  opts.sample_every = 0;
  QueryLog log(opts);
  RequestRecorder recorder(&log);
  ASSERT_TRUE(recorder.active());
  recorder.ChargeExternal(QueryPhase::kQueueWait, 123456);
  recorder.ChargeExternal(QueryPhase::kAdmission, 1000);
  recorder.Finish(QueryOutcome::kOk);
  const auto records = log.SnapshotRecords();
  ASSERT_EQ(records.size(), 1u);
  const auto& phases = records[0].phases;
  EXPECT_GE(phases.ns[static_cast<size_t>(QueryPhase::kQueueWait)], 123456u);
  EXPECT_GE(phases.ns[static_cast<size_t>(QueryPhase::kAdmission)], 1000u);
  EXPECT_EQ(records[0].latency_ns, phases.total_ns());
}

TEST(RequestRecorderTest, SecondRecorderOnSameThreadIsInactive) {
  QueryLogOptions opts;
  opts.sample_every = 0;
  QueryLog log(opts);
  RequestRecorder outer(&log);
  ASSERT_TRUE(outer.active());
  {
    RequestRecorder inner(&log);
    EXPECT_FALSE(inner.active());  // Nested queries never double-record.
  }
  EXPECT_EQ(RequestRecorder::Current(), &outer);  // Inner did not uninstall.
  outer.Finish(QueryOutcome::kOk);
  EXPECT_EQ(log.SnapshotRecords().size(), 1u);
}

TEST(RequestRecorderTest, AbandonedRecorderLeavesErrorRecord) {
  QueryLogOptions opts;
  opts.sample_every = 0;
  QueryLog log(opts);
  {
    RequestRecorder recorder(&log);
    ASSERT_TRUE(recorder.active());
    recorder.record().set_type("ea_knn");
    // No Finish: early return / unwind. The destructor backstops.
  }
  const auto records = log.SnapshotRecords();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].outcome, QueryOutcome::kError);
  EXPECT_STREQ(records[0].cause, "abandoned");
  EXPECT_EQ(RequestRecorder::Current(), nullptr);
}

TEST(RequestRecorderTest, ScopedPhaseWithoutRecorderIsANoOp) {
  ScopedQueryPhase phase(QueryPhase::kMerge);  // Must not crash or install.
  EXPECT_EQ(RequestRecorder::Current(), nullptr);
}

TEST(QueryLogMetricsTest, PhaseSumsTelescopeToQuerylogTotals) {
  MetricsRegistry metrics;
  QueryLogOptions opts;
  opts.sample_every = 0;
  QueryLog log(opts, &metrics);

  uint64_t want_latency = 0;
  uint64_t want_decodes = 0;
  for (int i = 1; i <= 20; ++i) {
    QueryLogRecord rec;
    rec.set_type("v2v_ea");
    rec.phases.ns[static_cast<size_t>(QueryPhase::kPlan)] = 100 * i;
    rec.phases.ns[static_cast<size_t>(QueryPhase::kMerge)] = 10 * i;
    rec.phases.ns[static_cast<size_t>(QueryPhase::kOther)] = i;
    rec.phases.label_decodes[static_cast<size_t>(QueryPhase::kMerge)] = 3;
    rec.phases.label_decodes[static_cast<size_t>(QueryPhase::kPlan)] = 1;
    rec.latency_ns = rec.phases.total_ns();
    want_latency += rec.latency_ns;
    want_decodes += 4;
    log.Append(rec);
  }

  const MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.counters.at("querylog.records"), 20u);
  EXPECT_EQ(snap.counters.at("querylog.latency_ns"), want_latency);
  // The per-phase attribution is exact: summing the phase.* series
  // reconstructs the querylog totals with no residue.
  uint64_t phase_ns_sum = 0;
  uint64_t phase_decode_sum = 0;
  for (size_t p = 0; p < kNumQueryPhases; ++p) {
    const std::string base =
        std::string("phase.") + QueryPhaseName(static_cast<QueryPhase>(p));
    const auto hist = snap.histograms.find(base + ".ns");
    if (hist != snap.histograms.end()) phase_ns_sum += hist->second.sum;
    const auto decodes = snap.counters.find(base + ".label_decodes");
    if (decodes != snap.counters.end()) phase_decode_sum += decodes->second;
  }
  EXPECT_EQ(phase_ns_sum, want_latency);
  EXPECT_EQ(phase_decode_sum, want_decodes);
}

TEST(QueryLogStressTest, ConcurrentWritersAndSnapshotReaders) {
  MetricsRegistry metrics;
  QueryLogOptions opts;
  opts.capacity = 256;
  opts.shards = 4;
  opts.trace_capacity = 32;
  opts.sample_every = 8;
  QueryLog log(opts, &metrics);

  constexpr int kWriters = 8;
  constexpr int kPerWriter = 500;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> appended{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      // Snapshots under concurrent wraparound must always be seq-unique
      // and bounded — a torn read or an unsorted merge shows up here
      // (and as a TSan report in the sanitizer lane).
      while (!done.load(std::memory_order_acquire)) {
        const auto records = log.SnapshotRecords();
        EXPECT_LE(records.size(), opts.capacity);
        for (size_t i = 1; i < records.size(); ++i) {
          EXPECT_LT(records[i - 1].seq, records[i].seq);
        }
        EXPECT_LE(log.SnapshotTraces().size(), opts.trace_capacity);
      }
    });
  }
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        QueryLogRecord rec = OkRecord(100 + i);
        rec.s = w;
        if (i % 17 == 0) rec.outcome = QueryOutcome::kShed;
        if (log.Append(rec) != 0) {
          appended.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(appended.load(), static_cast<uint64_t>(kWriters) * kPerWriter);
  EXPECT_EQ(metrics.Snapshot().counters.at("querylog.records"),
            appended.load());
  const auto records = log.SnapshotRecords();
  EXPECT_EQ(records.size(), opts.capacity);  // Full ring, never more.
  std::set<uint64_t> seqs;
  for (const auto& rec : records) seqs.insert(rec.seq);
  EXPECT_EQ(seqs.size(), records.size());
}

}  // namespace
}  // namespace ptldb
