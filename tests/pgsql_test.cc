#include <gtest/gtest.h>

#include <cstdlib>

#include "common/rng.h"
#include "pgsql/sql_writer.h"
#include "ptldb/ptldb.h"
#include "timetable/example_graph.h"
#include "timetable/generator.h"
#include "ttl/builder.h"

#ifdef PTLDB_HAVE_LIBPQ
#include "pgsql/pg_backend.h"
#endif

#include "test_time.h"

namespace ptldb {
namespace {

// ---------- SQL text generation (always runs) ----------

TEST(SqlWriterTest, V2vSqlContainsPaperStructure) {
  const std::string ea = V2vSql(V2vKind::kEarliestArrival);
  EXPECT_NE(ea.find("WITH outp AS"), std::string::npos);
  EXPECT_NE(ea.find("UNNEST(hubs) AS hub"), std::string::npos);
  EXPECT_NE(ea.find("SELECT MIN(inp.ta)"), std::string::npos);
  EXPECT_NE(ea.find("outp.hub = inp.hub AND outp.ta <= inp.td"),
            std::string::npos);
  EXPECT_NE(ea.find("outp.td >= $3"), std::string::npos);

  const std::string ld = V2vSql(V2vKind::kLatestDeparture);
  EXPECT_NE(ld.find("SELECT MAX(outp.td)"), std::string::npos);
  EXPECT_NE(ld.find("inp.ta <= $3"), std::string::npos);

  const std::string sd = V2vSql(V2vKind::kShortestDuration);
  EXPECT_NE(sd.find("SELECT MIN(inp.ta - outp.td)"), std::string::npos);
  EXPECT_NE(sd.find("inp.ta <= $4"), std::string::npos);
}

TEST(SqlWriterTest, DdlDeclaresArrayColumnsAndKeys) {
  const std::string ddl = LabelTableDdl();
  EXPECT_NE(ddl.find("CREATE TABLE lout"), std::string::npos);
  EXPECT_NE(ddl.find("v    integer PRIMARY KEY"), std::string::npos);
  EXPECT_NE(ddl.find("hubs integer[]"), std::string::npos);

  const std::string sets = TargetSetDdl("poi");
  EXPECT_NE(sets.find("CREATE TABLE knn_ea_poi"), std::string::npos);
  EXPECT_NE(sets.find("PRIMARY KEY (hub, dephour)"), std::string::npos);
  EXPECT_NE(sets.find("PRIMARY KEY (hub, arrhour)"), std::string::npos);
  EXPECT_NE(sets.find("PRIMARY KEY (hub, td)"), std::string::npos);
}

TEST(SqlWriterTest, CopyPayloadForExampleGraph) {
  const Timetable tt = MakeExampleTimetable();
  TtlBuildOptions options;
  options.custom_order = ExampleVertexOrder();
  const auto index = BuildTtlIndex(tt, options);
  ASSERT_TRUE(index.ok());
  const std::string copy = LabelTableCopy(index->out, "lout");
  EXPECT_NE(copy.find("COPY lout (v, hubs, tds, tas) FROM stdin;"),
            std::string::npos);
  // Stop 0 has exactly its dummy tuple <0,360,360> (Table 1).
  EXPECT_NE(copy.find("0\t{0}\t{36000}\t{36000}"), std::string::npos);
  EXPECT_NE(copy.find("\\.\n"), std::string::npos);
}

TEST(SqlWriterTest, KnnSqlUsesSlicesAndBuckets) {
  const std::string knn = EaKnnSql("poi");
  EXPECT_NE(knn.find("knn_ea_poi"), std::string::npos);
  EXPECT_NE(knn.find("vs[1:$3]"), std::string::npos);
  EXPECT_NE(knn.find("FLOOR(n1.ta / 3600)"), std::string::npos);
  EXPECT_NE(knn.find("UNION"), std::string::npos);
  EXPECT_NE(knn.find("LIMIT $3"), std::string::npos);

  const std::string otm = EaOtmSql("poi");
  EXPECT_NE(otm.find("otm_ea_poi"), std::string::npos);
  EXPECT_EQ(otm.find("LIMIT"), std::string::npos);
  EXPECT_EQ(otm.find("[1:$3]"), std::string::npos);

  const std::string ld = LdKnnSql("poi");
  EXPECT_NE(ld.find("arrhour = $4"), std::string::npos);
  const std::string ld_otm = LdOtmSql("poi");
  EXPECT_NE(ld_otm.find("arrhour = $3"), std::string::npos);
}

TEST(SqlWriterTest, ExportScriptIsSelfContained) {
  const Timetable tt = MakeExampleTimetable();
  const auto index = BuildTtlIndex(tt);
  ASSERT_TRUE(index.ok());
  const std::string script = FullExportScript(*index);
  EXPECT_NE(script.find("BEGIN;"), std::string::npos);
  EXPECT_NE(script.find("CREATE TABLE lout"), std::string::npos);
  EXPECT_NE(script.find("COPY lin"), std::string::npos);
  EXPECT_NE(script.find("COMMIT;"), std::string::npos);
}

#ifdef PTLDB_HAVE_LIBPQ

// ---------- Real-PostgreSQL equivalence (needs PTLDB_PG_CONNINFO) ----------

const char* Conninfo() { return std::getenv("PTLDB_PG_CONNINFO"); }

class PgEquivalenceTest : public testing::Test {
 protected:
  void SetUp() override {
    if (Conninfo() == nullptr) {
      GTEST_SKIP() << "PTLDB_PG_CONNINFO not set "
                      "(run scripts/start_test_postgres.sh)";
    }
    GeneratorOptions o;
    o.num_stops = 70;
    o.target_connections = 3500;
    o.min_route_len = 4;
    o.max_route_len = 8;
    o.seed = 99;
    auto tt = GenerateNetwork(o);
    ASSERT_TRUE(tt.ok());
    tt_ = std::move(*tt);
    auto index = BuildTtlIndex(tt_);
    ASSERT_TRUE(index.ok());
    index_ = std::move(*index);

    PtldbOptions options;
    options.device = DeviceProfile::Ram();
    auto db = PtldbDatabase::Build(index_, options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    Rng rng(5);
    targets_ = rng.SampleDistinct(tt_.num_stops(), 12);
    ASSERT_TRUE(db_->AddTargetSet("poi", index_, targets_, 4).ok());

    auto pg = PgPtldb::Connect(Conninfo(), "ptldb_test");
    if (!pg.ok()) {
      GTEST_SKIP() << "cannot reach PostgreSQL: " << pg.status().ToString();
    }
    pg_ = std::move(*pg);
    ASSERT_TRUE(pg_->MirrorFrom(db_.get()).ok());
  }

  Timetable tt_;
  TtlIndex index_;
  std::unique_ptr<PtldbDatabase> db_;
  std::unique_ptr<PgPtldb> pg_;
  std::vector<StopId> targets_;
};

TEST_F(PgEquivalenceTest, V2vAnswersMatchEmbeddedEngine) {
  Rng rng(17);
  for (int i = 0; i < 60; ++i) {
    const auto s = static_cast<StopId>(rng.NextBelow(tt_.num_stops()));
    auto g = static_cast<StopId>(rng.NextBelow(tt_.num_stops()));
    if (g == s) g = (g + 1) % tt_.num_stops();
    const auto t = TSec(rng.NextInRange(tt_.min_time().raw_seconds(),
                                        tt_.max_time().raw_seconds()));
    const auto t_end =
        TSec(rng.NextInRange(t.raw_seconds(), tt_.max_time().raw_seconds()));

    const auto pg_ea = pg_->EarliestArrival(s, g, t);
    ASSERT_TRUE(pg_ea.ok()) << pg_ea.status().ToString();
    EXPECT_EQ(*pg_ea, *db_->EarliestArrival(s, g, t))
        << "EA " << s << "->" << g;

    const auto pg_ld = pg_->LatestDeparture(s, g, t_end);
    ASSERT_TRUE(pg_ld.ok());
    EXPECT_EQ(*pg_ld, *db_->LatestDeparture(s, g, t_end));

    const auto pg_sd = pg_->ShortestDuration(s, g, t, t_end);
    ASSERT_TRUE(pg_sd.ok());
    EXPECT_EQ(*pg_sd, *db_->ShortestDuration(s, g, t, t_end));
  }
}

TEST_F(PgEquivalenceTest, KnnAndOtmAnswersMatchEmbeddedEngine) {
  Rng rng(18);
  for (int i = 0; i < 15; ++i) {
    StopId q = static_cast<StopId>(rng.NextBelow(tt_.num_stops()));
    while (std::find(targets_.begin(), targets_.end(), q) != targets_.end()) {
      q = static_cast<StopId>(rng.NextBelow(tt_.num_stops()));
    }
    const auto t = TSec(rng.NextInRange(tt_.min_time().raw_seconds(),
                                        tt_.max_time().raw_seconds()));
    for (uint32_t k : {1u, 2u, 4u}) {
      const auto pg_ea = pg_->EaKnn("poi", q, t, k);
      ASSERT_TRUE(pg_ea.ok()) << pg_ea.status().ToString();
      const auto en_ea = db_->EaKnn("poi", q, t, k);
      ASSERT_TRUE(en_ea.ok());
      EXPECT_EQ(*pg_ea, *en_ea) << "EA-kNN q=" << q << " t=" << t << " k=" << k;

      const auto pg_ld = pg_->LdKnn("poi", q, t, k);
      ASSERT_TRUE(pg_ld.ok()) << pg_ld.status().ToString();
      const auto en_ld = db_->LdKnn("poi", q, t, k);
      ASSERT_TRUE(en_ld.ok());
      EXPECT_EQ(*pg_ld, *en_ld) << "LD-kNN q=" << q << " t=" << t << " k=" << k;

      const auto pg_nv = pg_->EaKnnNaive("poi", q, t, k);
      ASSERT_TRUE(pg_nv.ok()) << pg_nv.status().ToString();
      const auto en_nv = db_->EaKnnNaive("poi", q, t, k);
      ASSERT_TRUE(en_nv.ok());
      EXPECT_EQ(*pg_nv, *en_nv) << "EA-naive q=" << q;

      const auto pg_lnv = pg_->LdKnnNaive("poi", q, t, k);
      ASSERT_TRUE(pg_lnv.ok()) << pg_lnv.status().ToString();
      const auto en_lnv = db_->LdKnnNaive("poi", q, t, k);
      ASSERT_TRUE(en_lnv.ok());
      EXPECT_EQ(*pg_lnv, *en_lnv) << "LD-naive q=" << q;
    }
    const auto pg_otm = pg_->EaOneToMany("poi", q, t);
    ASSERT_TRUE(pg_otm.ok()) << pg_otm.status().ToString();
    const auto en_otm = db_->EaOneToMany("poi", q, t);
    ASSERT_TRUE(en_otm.ok());
    EXPECT_EQ(*pg_otm, *en_otm) << "EA-OTM q=" << q;

    const auto pg_lotm = pg_->LdOneToMany("poi", q, t);
    ASSERT_TRUE(pg_lotm.ok()) << pg_lotm.status().ToString();
    const auto en_lotm = db_->LdOneToMany("poi", q, t);
    ASSERT_TRUE(en_lotm.ok());
    EXPECT_EQ(*pg_lotm, *en_lotm) << "LD-OTM q=" << q;
  }
}

TEST_F(PgEquivalenceTest, PaperExampleOnRealPostgres) {
  // Rebuild the Figure-1 example on PostgreSQL and check EA(1,1,324)=324
  // plus the kNN worked example from Section 3.2.
  const Timetable example = MakeExampleTimetable();
  TtlBuildOptions options;
  options.custom_order = ExampleVertexOrder();
  const auto index = BuildTtlIndex(example, options);
  ASSERT_TRUE(index.ok());
  PtldbOptions popts;
  popts.device = DeviceProfile::Ram();
  auto db = PtldbDatabase::Build(*index, popts);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->AddTargetSet("t46", *index, {4, 6}, 2).ok());
  auto pg = PgPtldb::Connect(Conninfo(), "ptldb_example");
  ASSERT_TRUE(pg.ok());
  ASSERT_TRUE((*pg)->MirrorFrom(db->get()).ok());

  const auto ea = (*pg)->EarliestArrival(1, 1, TSec(32400));
  ASSERT_TRUE(ea.ok());
  EXPECT_EQ(*ea, TSec(32400));

  const auto knn = (*pg)->EaKnnNaive("t46", 0, TSec(36000), 1);
  ASSERT_TRUE(knn.ok()) << knn.status().ToString();
  ASSERT_EQ(knn->size(), 1u);
  EXPECT_EQ((*knn)[0], (StopTimeResult{4, TSec(39600)}));
}

TEST_F(PgEquivalenceTest, NaiveConstructionSqlMatchesCppBuilder) {
  // The pure-SQL construction of knn_naive (our reconstruction of the
  // "simple SQL commands" the paper omits) must produce the same table the
  // C++ builder produced.
  ASSERT_TRUE(pg_->connection()
                  ->Exec("SET search_path TO ptldb_test;")
                  .ok());
  const std::string sql = NaiveTableConstructionSql("sqlbuilt", targets_, 4);
  ASSERT_TRUE(pg_->connection()->Exec(sql).ok());
  const auto diff = pg_->connection()->Query(
      "SELECT COUNT(*) FROM "
      "((TABLE knn_naive_sqlbuilt EXCEPT TABLE knn_naive_poi) UNION ALL "
      "(TABLE knn_naive_poi EXCEPT TABLE knn_naive_sqlbuilt)) d",
      {});
  ASSERT_TRUE(diff.ok()) << diff.status().ToString();
  EXPECT_EQ((*diff)[0][0], "0");
}

#endif  // PTLDB_HAVE_LIBPQ

}  // namespace
}  // namespace ptldb
