#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/brute.h"
#include "baseline/csa.h"
#include "baseline/profile.h"
#include "common/rng.h"
#include "timetable/example_graph.h"
#include "timetable/generator.h"

#include "test_time.h"

namespace ptldb {
namespace {

Timetable SmallCity(uint64_t seed) {
  GeneratorOptions o;
  o.num_stops = 80;
  o.target_connections = 4000;
  o.min_route_len = 4;
  o.max_route_len = 9;
  o.seed = seed;
  auto tt = GenerateNetwork(o);
  EXPECT_TRUE(tt.ok());
  return std::move(tt).value();
}

TEST(CsaTest, ExampleEarliestArrivals) {
  const Timetable tt = MakeExampleTimetable();
  // From 5 at 28800: trip 1 reaches 1@32400, 0@36000, 2@39600, 6@43200.
  const auto arr = EarliestArrivalScan(tt, 5, TSec(28800));
  EXPECT_EQ(arr[1], TSec(32400));
  EXPECT_EQ(arr[0], TSec(36000));
  EXPECT_EQ(arr[2], TSec(39600));
  EXPECT_EQ(arr[6], TSec(43200));
  EXPECT_EQ(arr[3], TSec(39600));  // Transfer at 0 onto trip 4.
  EXPECT_EQ(arr[4], TSec(39600));
  EXPECT_EQ(arr[5], TSec(28800));  // The source itself.
}

TEST(CsaTest, DepartureTimeFiltersTrips) {
  const Timetable tt = MakeExampleTimetable();
  // Leaving 5 after 28800 there is no service anymore.
  const auto arr = EarliestArrivalScan(tt, 5, TSec(28801));
  EXPECT_EQ(arr[0], EventTime::Infinity());
  EXPECT_EQ(arr[1], EventTime::Infinity());
}

TEST(CsaTest, ExampleLatestDepartures) {
  const Timetable tt = MakeExampleTimetable();
  // To reach 5 by 43200: trip 2 leaves 6 at 28800, 2 at 32400, 0 at 36000,
  // 1 at 39600.
  const auto dep = LatestDepartureScan(tt, 5, TSec(43200));
  EXPECT_EQ(dep[6], TSec(28800));
  EXPECT_EQ(dep[2], TSec(32400));
  EXPECT_EQ(dep[0], TSec(36000));
  EXPECT_EQ(dep[1], TSec(39600));
  EXPECT_EQ(dep[3], TSec(32400));  // Trip 3 into 0, then trip 2.
  EXPECT_EQ(dep[4], TSec(32400));
}

TEST(CsaTest, LatestDepartureInfeasible) {
  const Timetable tt = MakeExampleTimetable();
  const auto dep = LatestDepartureScan(tt, 5, TSec(43199));
  EXPECT_EQ(dep[6], EventTime::NegInfinity());
}

TEST(CsaTest, ShortestDurationExample) {
  const Timetable tt = MakeExampleTimetable();
  // 5 -> 0 within the whole day: 28800 -> 36000 = 7200s.
  EXPECT_EQ(ShortestDuration(tt, 5, 0, TSec(0), TSec(86400)), DSec(7200));
  // 1 -> 5: depart 39600 arrive 43200 = 3600s.
  EXPECT_EQ(ShortestDuration(tt, 1, 5, TSec(0), TSec(86400)), DSec(3600));
  // Window too tight.
  EXPECT_EQ(ShortestDuration(tt, 1, 5, TSec(0), TSec(43199)),
            Duration::Infinity());
}

TEST(ProfileTest, ForwardProfileMatchesEarliestArrivalScans) {
  const Timetable tt = SmallCity(11);
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const auto q = static_cast<StopId>(rng.NextBelow(tt.num_stops()));
    const ProfileSet profile = ForwardProfile(tt, q);
    for (int i = 0; i < 10; ++i) {
      const auto t = TSec(rng.NextInRange(tt.min_time().raw_seconds(),
                                          tt.max_time().raw_seconds()));
      const auto arr = EarliestArrivalScan(tt, q, t);
      for (StopId v = 0; v < tt.num_stops(); ++v) {
        if (v == q) continue;
        EXPECT_EQ(profile.EarliestArrival(v, t), arr[v])
            << "q=" << q << " v=" << v << " t=" << t;
      }
    }
  }
}

TEST(ProfileTest, BackwardProfileMatchesLatestDepartureScans) {
  const Timetable tt = SmallCity(12);
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const auto g = static_cast<StopId>(rng.NextBelow(tt.num_stops()));
    const ProfileSet profile = BackwardProfile(tt, g);
    for (int i = 0; i < 10; ++i) {
      const auto t = TSec(rng.NextInRange(tt.min_time().raw_seconds(),
                                          tt.max_time().raw_seconds()));
      const auto dep = LatestDepartureScan(tt, g, t);
      for (StopId v = 0; v < tt.num_stops(); ++v) {
        if (v == g) continue;
        EXPECT_EQ(profile.LatestDeparture(v, t), dep[v])
            << "g=" << g << " v=" << v << " t=" << t;
      }
    }
  }
}

TEST(ProfileTest, PairsArePareto) {
  const Timetable tt = SmallCity(13);
  const ProfileSet profile = ForwardProfile(tt, 0);
  for (StopId v = 0; v < tt.num_stops(); ++v) {
    const auto pairs = profile.pairs(v);
    for (size_t i = 1; i < pairs.size(); ++i) {
      EXPECT_GT(pairs[i - 1].dep, pairs[i].dep);
      EXPECT_GT(pairs[i - 1].arr, pairs[i].arr);
    }
  }
}

TEST(ProfileTest, ShortestDurationNeverBeatsAnyFeasibleJourney) {
  const Timetable tt = SmallCity(14);
  Rng rng(3);
  const StopId g = 5;
  const ProfileSet profile = BackwardProfile(tt, g);
  for (int i = 0; i < 50; ++i) {
    const auto v = static_cast<StopId>(rng.NextBelow(tt.num_stops()));
    if (v == g) continue;
    const EventTime t = tt.min_time();
    const EventTime t_end = tt.max_time();
    const Duration sd = profile.ShortestDuration(v, t, t_end);
    const EventTime ea = profile.EarliestArrival(v, t);
    if (ea == EventTime::Infinity()) {
      EXPECT_EQ(sd, Duration::Infinity());
    } else {
      EXPECT_LE(sd, ea - t);  // The t-departure journey is one candidate.
      EXPECT_GT(sd, Duration::Zero());
    }
  }
}

TEST(BruteTest, EaOneToManySortedAndComplete) {
  const Timetable tt = MakeExampleTimetable();
  const std::vector<StopId> targets{4, 6};
  const auto rows = BruteEaOneToMany(tt, 0, targets, TSec(36000));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].stop, 4u);
  EXPECT_EQ(rows[0].time, TSec(39600));
  EXPECT_EQ(rows[1].stop, 6u);
  EXPECT_EQ(rows[1].time, TSec(43200));
}

TEST(BruteTest, EaKnnTruncates) {
  const Timetable tt = MakeExampleTimetable();
  const auto rows = BruteEaKnn(tt, 0, {4, 6}, TSec(36000), 1);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].stop, 4u);
  EXPECT_EQ(rows[0].time, TSec(39600));
}

TEST(BruteTest, EaOmitsUnreachableTargets) {
  const Timetable tt = MakeExampleTimetable();
  const auto rows = BruteEaOneToMany(tt, 0, {4, 6}, TSec(43201));
  EXPECT_TRUE(rows.empty());
}

TEST(BruteTest, LdOneToManySortedDescending) {
  const Timetable tt = MakeExampleTimetable();
  // Reach {3, 4} by 39600: depart 0 at 36000 (both); also from 5 via 1,0.
  const auto rows = BruteLdOneToMany(tt, 0, {3, 4}, TSec(39600));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].stop, 3u);
  EXPECT_EQ(rows[0].time, TSec(36000));
  EXPECT_EQ(rows[1].stop, 4u);
  EXPECT_EQ(rows[1].time, TSec(36000));
}

TEST(BruteTest, LdKnnAgainstPerTargetLatestDeparture) {
  const Timetable tt = SmallCity(15);
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    const auto q = static_cast<StopId>(rng.NextBelow(tt.num_stops()));
    std::vector<StopId> targets;
    for (StopId v = 0; v < tt.num_stops(); v += 7) {
      if (v != q) targets.push_back(v);
    }
    const auto t = TSec(rng.NextInRange(tt.min_time().raw_seconds(),
                                        tt.max_time().raw_seconds()));
    const auto rows = BruteLdKnn(tt, q, targets, t, 4);
    // Every row must equal the point-to-point LD and be in order.
    for (size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(rows[i].time, LatestDeparture(tt, q, rows[i].stop, t));
      if (i > 0) {
        EXPECT_GE(rows[i - 1].time, rows[i].time);
      }
    }
    // No non-selected target may beat the k-th row.
    if (rows.size() == 4) {
      for (StopId v : targets) {
        bool selected = false;
        for (const auto& r : rows) selected |= (r.stop == v);
        if (!selected) {
          EXPECT_LE(LatestDeparture(tt, q, v, t), rows.back().time);
        }
      }
    }
  }
}

TEST(TransferLimitTest, ExampleGraphRounds) {
  const Timetable tt = MakeExampleTimetable();
  // 5 -> 3 needs two trips (trip 1 to stop 0, trip 4 onward).
  const auto one = EarliestArrivalWithTrips(tt, 5, TSec(28800), 1);
  EXPECT_EQ(one[0], TSec(36000));            // Reachable staying on trip 1.
  EXPECT_EQ(one[6], TSec(43200));            // Trip 1 continues to 6.
  EXPECT_EQ(one[3], EventTime::Infinity());  // Needs a transfer.
  const auto two = EarliestArrivalWithTrips(tt, 5, TSec(28800), 2);
  EXPECT_EQ(two[3], TSec(39600));
  const auto zero = EarliestArrivalWithTrips(tt, 5, TSec(28800), 0);
  EXPECT_EQ(zero[0], EventTime::Infinity());
  EXPECT_EQ(zero[5], TSec(28800));
}

TEST(TransferLimitTest, ConvergesToUnrestrictedEa) {
  const Timetable tt = SmallCity(17);
  Rng rng(8);
  for (int trial = 0; trial < 15; ++trial) {
    const auto s = static_cast<StopId>(rng.NextBelow(tt.num_stops()));
    const auto t = TSec(rng.NextInRange(tt.min_time().raw_seconds(),
                                        tt.max_time().raw_seconds()));
    const auto unrestricted = EarliestArrivalScan(tt, s, t);
    const auto budget = EarliestArrivalWithTrips(tt, s, t, 64);
    EXPECT_EQ(budget, unrestricted);
    // Monotonicity: a larger budget can only improve arrivals.
    const auto small = EarliestArrivalWithTrips(tt, s, t, 1);
    const auto medium = EarliestArrivalWithTrips(tt, s, t, 2);
    for (StopId v = 0; v < tt.num_stops(); ++v) {
      EXPECT_GE(small[v], medium[v]);
      EXPECT_GE(medium[v], unrestricted[v]);
    }
  }
}

TEST(JourneyTest, ReconstructsExamplePath) {
  const Timetable tt = MakeExampleTimetable();
  // 5 -> 3 at 28800: trip 1 to stop 0 (arr 36000), then trip 4 to 3.
  const auto journey = FindEarliestJourney(tt, 5, 3, TSec(28800));
  ASSERT_EQ(journey.size(), 3u);
  EXPECT_EQ(tt.connection(journey[0]).from, 5u);
  EXPECT_EQ(tt.connection(journey[1]).from, 1u);
  EXPECT_EQ(tt.connection(journey[2]).from, 0u);
  EXPECT_EQ(tt.connection(journey[2]).to, 3u);
  EXPECT_EQ(tt.connection(journey[2]).arr, TSec(39600));
}

TEST(JourneyTest, EmptyWhenUnreachable) {
  const Timetable tt = MakeExampleTimetable();
  EXPECT_TRUE(FindEarliestJourney(tt, 5, 3, TSec(28801)).empty());
  EXPECT_TRUE(FindEarliestJourney(tt, 5, 5, TSec(0)).empty());
}

TEST(JourneyTest, JourneyIsConsistentOnRandomCities) {
  const Timetable tt = SmallCity(16);
  Rng rng(6);
  for (int trial = 0; trial < 60; ++trial) {
    const auto s = static_cast<StopId>(rng.NextBelow(tt.num_stops()));
    auto g = static_cast<StopId>(rng.NextBelow(tt.num_stops()));
    if (g == s) g = (g + 1) % tt.num_stops();
    const auto t = TSec(rng.NextInRange(tt.min_time().raw_seconds(),
                                        tt.max_time().raw_seconds()));
    const EventTime ea = EarliestArrival(tt, s, g, t);
    const auto journey = FindEarliestJourney(tt, s, g, t);
    if (ea == EventTime::Infinity()) {
      EXPECT_TRUE(journey.empty());
      continue;
    }
    ASSERT_FALSE(journey.empty());
    // Legs chain with feasible transfers, start at s no sooner than t,
    // and end at g exactly at the earliest arrival.
    EXPECT_EQ(tt.connection(journey.front()).from, s);
    EXPECT_GE(tt.connection(journey.front()).dep, t);
    EXPECT_EQ(tt.connection(journey.back()).to, g);
    EXPECT_EQ(tt.connection(journey.back()).arr, ea);
    for (size_t i = 1; i < journey.size(); ++i) {
      const Connection& prev = tt.connection(journey[i - 1]);
      const Connection& next = tt.connection(journey[i]);
      EXPECT_EQ(prev.to, next.from);
      EXPECT_LE(prev.arr, next.dep);
    }
  }
}

}  // namespace
}  // namespace ptldb
