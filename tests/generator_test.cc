#include <gtest/gtest.h>

#include "timetable/generator.h"

#include "test_time.h"

namespace ptldb {
namespace {

GeneratorOptions SmallOptions(uint64_t seed = 1) {
  GeneratorOptions o;
  o.num_stops = 120;
  o.target_connections = 6000;
  o.min_route_len = 5;
  o.max_route_len = 10;
  o.seed = seed;
  return o;
}

TEST(GeneratorTest, ProducesValidTimetable) {
  const auto tt = GenerateNetwork(SmallOptions());
  ASSERT_TRUE(tt.ok()) << tt.status().ToString();
  EXPECT_EQ(tt->num_stops(), 120u);
  EXPECT_GT(tt->num_connections(), 0u);
  for (const Connection& c : tt->connections()) {
    EXPECT_LT(c.dep, c.arr);
    EXPECT_NE(c.from, c.to);
  }
}

TEST(GeneratorTest, DeterministicForSeed) {
  const auto a = GenerateNetwork(SmallOptions(7));
  const auto b = GenerateNetwork(SmallOptions(7));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->num_connections(), b->num_connections());
  for (uint32_t i = 0; i < a->num_connections(); ++i) {
    EXPECT_EQ(a->connection(i), b->connection(i));
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  const auto a = GenerateNetwork(SmallOptions(1));
  const auto b = GenerateNetwork(SmallOptions(2));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  bool differ = a->num_connections() != b->num_connections();
  for (uint32_t i = 0; !differ && i < a->num_connections(); ++i) {
    differ = !(a->connection(i) == b->connection(i));
  }
  EXPECT_TRUE(differ);
}

TEST(GeneratorTest, EveryStopIsServed) {
  const auto tt = GenerateNetwork(SmallOptions(3));
  ASSERT_TRUE(tt.ok());
  std::vector<bool> served(tt->num_stops(), false);
  for (const Connection& c : tt->connections()) {
    served[c.from] = true;
    served[c.to] = true;
  }
  for (StopId s = 0; s < tt->num_stops(); ++s) {
    EXPECT_TRUE(served[s]) << "stop " << s << " has no service";
  }
}

TEST(GeneratorTest, ConnectionCountNearTarget) {
  const auto opts = SmallOptions(4);
  const auto tt = GenerateNetwork(opts);
  ASSERT_TRUE(tt.ok());
  // Coverage routes overshoot a little; accept a factor-of-2 band.
  EXPECT_GT(tt->num_connections(), opts.target_connections / 2);
  EXPECT_LT(tt->num_connections(), opts.target_connections * 3);
}

TEST(GeneratorTest, EventsRespectServiceWindow) {
  const auto opts = SmallOptions(5);
  const auto tt = GenerateNetwork(opts);
  ASSERT_TRUE(tt.ok());
  EXPECT_GE(tt->min_time(), opts.service_start);
  // Trips departing before service_end may run past it; a route traversal
  // is bounded by max_route_len hops.
  EXPECT_LT(tt->max_time(), opts.service_end + DSec(4 * 3600));
}

// A service window pushed against INT32_MAX: before the 64-bit event
// clock in emit_direction, `t + hop` / `arr + dwell` / the headway advance
// overflowed int32 — UB that in practice wrapped arrivals negative (so
// dep < arr broke) and could wrap the departure into a near-endless loop.
// The generated schedule must stay strictly below the kInfinityTime
// sentinel, which every query treats as "unreachable".
TEST(GeneratorTest, ServiceWindowNearInt32MaxDoesNotOverflow) {
  GeneratorOptions o;
  o.num_stops = 40;
  o.target_connections = 800;
  o.min_route_len = 3;
  o.max_route_len = 6;
  o.seed = 11;
  o.service_start = EventTime::Infinity() - DSec(2 * 3600);
  o.service_end = EventTime::Infinity() - DSec(1);
  const auto tt = GenerateNetwork(o);
  ASSERT_TRUE(tt.ok()) << tt.status().ToString();
  EXPECT_GT(tt->num_connections(), 0u);
  for (const Connection& c : tt->connections()) {
    EXPECT_LT(c.dep, c.arr);
    EXPECT_LT(c.arr, EventTime::Infinity());
    EXPECT_GE(c.dep, o.service_start);
  }
}

TEST(GeneratorTest, RejectsBadOptions) {
  GeneratorOptions o = SmallOptions();
  o.num_stops = 1;
  EXPECT_FALSE(GenerateNetwork(o).ok());
  o = SmallOptions();
  o.min_route_len = 1;
  EXPECT_FALSE(GenerateNetwork(o).ok());
  o = SmallOptions();
  o.service_end = o.service_start;
  EXPECT_FALSE(GenerateNetwork(o).ok());
  o = SmallOptions();
  o.peak_headway = Duration::Zero();
  EXPECT_FALSE(GenerateNetwork(o).ok());
}

TEST(GeneratorTest, CityProfilesLookupAndScaling) {
  ASSERT_EQ(kNumCityProfiles, 11u);
  const CityProfile* madrid = FindCityProfile("Madrid");
  ASSERT_NE(madrid, nullptr);
  EXPECT_EQ(FindCityProfile("Atlantis"), nullptr);
  const GeneratorOptions o = CityOptions(*madrid, 0.1);
  EXPECT_EQ(o.num_stops, 400u);
  EXPECT_EQ(o.target_connections, 191300u);
  // Scaling preserves the average-degree target.
  EXPECT_NEAR(static_cast<double>(o.target_connections) / o.num_stops,
              static_cast<double>(madrid->num_connections) / madrid->num_stops,
              25.0);
}

TEST(GeneratorTest, DenserProfileYieldsDenserNetwork) {
  const CityProfile* sparse = FindCityProfile("SaltLakeCity");
  const CityProfile* dense = FindCityProfile("Madrid");
  ASSERT_NE(sparse, nullptr);
  ASSERT_NE(dense, nullptr);
  const auto a = GenerateNetwork(CityOptions(*sparse, 0.02));
  const auto b = GenerateNetwork(CityOptions(*dense, 0.02));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(b->average_degree(), a->average_degree());
}

}  // namespace
}  // namespace ptldb
