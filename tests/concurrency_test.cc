// Concurrency stress tests for the pinned, sharded buffer pool. These are
// the tests the TSan CI matrix entry exists for: a deliberately tiny pool
// (capacity ≈ 2x shard count) makes eviction constant, so many threads
// reading while others evict exercises the PageGuard pin protocol on
// every fetch. Under the pre-guard BufferPool (raw `const Page*` valid
// "until eviction", one global latch) this same workload is a
// use-after-free: ThreadSanitizer reports races on the recycled list
// nodes and the byte checks read other pages' contents.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "baseline/brute.h"
#include "baseline/csa.h"
#include "common/rng.h"
#include "engine/buffer_pool.h"
#include "engine/device.h"
#include "engine/pager.h"
#include "ptldb/ptldb.h"
#include "timetable/generator.h"
#include "ttl/builder.h"

namespace ptldb {
namespace {

constexpr uint32_t kThreads = 8;

/// Pages filled with a per-page byte pattern, so a reader can prove the
/// frame it dereferences is really the page it fetched.
PageStore MakePatternedStore(uint64_t num_pages) {
  PageStore store;
  for (uint64_t i = 0; i < num_pages; ++i) {
    const PageId id = store.Allocate();
    store.page(id).bytes.fill(static_cast<uint8_t>(id * 37 + 11));
  }
  store.StampChecksums();
  return store;
}

TEST(BufferPoolConcurrencyTest, TinyPoolEvictionUnderConcurrentReaders) {
  constexpr uint64_t kPages = 64;
  PageStore store = MakePatternedStore(kPages);
  StorageDevice device(DeviceProfile::Ram());
  // Capacity 2x the shard count: every shard holds ~2 frames, so nearly
  // every fetch evicts while other threads hold live guards.
  BufferPool pool(&store, &device, /*capacity_pages=*/2 * kThreads,
                  /*num_shards=*/kThreads / 2);
  std::atomic<uint64_t> bad_bytes{0};
  std::atomic<uint64_t> errors{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t * 7919 + 1);
      for (int i = 0; i < 20000; ++i) {
        const PageId id = rng.NextBelow(kPages);
        auto guard = pool.Fetch(id);
        if (!guard.ok()) {
          errors.fetch_add(1);
          continue;
        }
        const uint8_t want = static_cast<uint8_t>(id * 37 + 11);
        for (uint32_t b = 0; b < kPageSize; b += 512) {
          if ((*guard)->bytes[b] != want) bad_bytes.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bad_bytes.load(), 0u);
  EXPECT_EQ(errors.load(), 0u);
  EXPECT_GT(pool.evictions(), 0u) << "pool too big to stress eviction";
  EXPECT_EQ(pool.pinned_pages(), 0u);
  EXPECT_TRUE(pool.DropCaches().ok());
}

TEST(BufferPoolConcurrencyTest, PinnedFramesSurviveConcurrentEvictionStorm) {
  constexpr uint64_t kPages = 64;
  PageStore store = MakePatternedStore(kPages);
  StorageDevice device(DeviceProfile::Ram());
  BufferPool pool(&store, &device, /*capacity_pages=*/2 * kThreads,
                  /*num_shards=*/kThreads / 2);
  // Half the threads hold a pin for a while and keep re-validating its
  // bytes; the other half churn the remaining pages to force evictions
  // around the pinned frames.
  std::atomic<uint64_t> bad_bytes{0};
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < kThreads / 2; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 50; ++round) {
        const PageId id = t;  // Distinct pinned page per holder thread.
        auto guard = pool.Fetch(id);
        ASSERT_TRUE(guard.ok());
        const uint8_t want = static_cast<uint8_t>(id * 37 + 11);
        for (int check = 0; check < 200; ++check) {
          if ((*guard)->bytes[(check * 41) % kPageSize] != want) {
            bad_bytes.fetch_add(1);
          }
          std::this_thread::yield();
        }
      }
    });
  }
  for (uint32_t t = kThreads / 2; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t * 104729 + 3);
      for (int i = 0; i < 10000; ++i) {
        // Churn only pages no holder thread pins, so the churners can
        // never exhaust a shard that holds long-lived pins.
        const PageId id = kThreads / 2 + rng.NextBelow(kPages - kThreads / 2);
        auto guard = pool.Fetch(id);
        if (guard.ok()) {
          bad_bytes.fetch_add(
              (*guard)->bytes[100] != static_cast<uint8_t>(id * 37 + 11));
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bad_bytes.load(), 0u);
  EXPECT_EQ(pool.pinned_pages(), 0u);
}

TEST(FacadeConcurrencyTest, TinyPoolConcurrentQueriesMatchSerialAnswers) {
  GeneratorOptions o;
  o.num_stops = 48;
  o.target_connections = 1200;
  o.min_route_len = 3;
  o.max_route_len = 8;
  o.seed = 20260805;
  auto tt = GenerateNetwork(o);
  ASSERT_TRUE(tt.ok());
  auto index = BuildTtlIndex(*tt);
  ASSERT_TRUE(index.ok());

  PtldbOptions opts;
  opts.device = DeviceProfile::Ram();
  // The acceptance scenario: pool capacity ~= 2x shard count, so every
  // concurrent query constantly evicts pages other queries are scanning.
  opts.buffer_pool_shards = 4;
  opts.buffer_pool_pages = 2 * opts.buffer_pool_shards;
  // The compressed-labels CI job points the same hammer at the immutable
  // label arenas (concurrent lock-free decodes under TSan).
  if (const char* env = std::getenv("PTLDB_TEST_COMPRESSED");
      env != nullptr && *env != '\0' && *env != '0') {
    opts.compressed_labels = true;
  }
  auto db = PtldbDatabase::Build(*index, opts);
  ASSERT_TRUE(db.ok());
  Rng trng(99);
  const std::vector<StopId> targets =
      trng.SampleDistinct(tt->num_stops(), 10);
  ASSERT_TRUE((*db)->AddTargetSet("T", *index, targets, /*kmax=*/8).ok());

  // One worker's query schedule: deterministic from its thread id.
  struct Query {
    StopId s;
    StopId g;
    EventTime t;
    uint32_t k;
  };
  const auto schedule = [&](uint32_t tid) {
    std::vector<Query> qs;
    Rng rng(tid * 6151 + 17);
    for (int i = 0; i < 60; ++i) {
      qs.push_back({static_cast<StopId>(rng.NextBelow(tt->num_stops())),
                    static_cast<StopId>(rng.NextBelow(tt->num_stops())),
                    EventTime::FromSeconds(
                        rng.NextInRange(tt->min_time().raw_seconds(),
                                        tt->max_time().raw_seconds())),
                    static_cast<uint32_t>(rng.NextInRange(1, 8))});
    }
    return qs;
  };

  // Serial pass records the expected answers...
  std::vector<std::vector<EventTime>> want_ea(kThreads);
  std::vector<std::vector<std::vector<StopTimeResult>>> want_knn(kThreads);
  for (uint32_t tid = 0; tid < kThreads; ++tid) {
    for (const Query& q : schedule(tid)) {
      auto ea = (*db)->EarliestArrival(q.s, q.g, q.t);
      ASSERT_TRUE(ea.ok());
      want_ea[tid].push_back(*ea);
      auto knn = (*db)->EaKnn("T", q.s, q.t, q.k);
      ASSERT_TRUE(knn.ok());
      want_knn[tid].push_back(*knn);
    }
  }
  // ...then 8 threads replay their schedules concurrently on the tiny
  // pool. Every answer must be identical: pinned pages cannot be evicted
  // mid-scan, and a cross-shard race would surface as a wrong timestamp.
  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> errors{0};
  std::vector<std::thread> threads;
  for (uint32_t tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      const auto qs = schedule(tid);
      for (size_t i = 0; i < qs.size(); ++i) {
        auto ea = (*db)->EarliestArrival(qs[i].s, qs[i].g, qs[i].t);
        if (!ea.ok()) {
          errors.fetch_add(1);
        } else if (*ea != want_ea[tid][i]) {
          mismatches.fetch_add(1);
        }
        auto knn = (*db)->EaKnn("T", qs[i].s, qs[i].t, qs[i].k);
        if (!knn.ok()) {
          errors.fetch_add(1);
        } else if (*knn != want_knn[tid][i]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  const auto snap = (*db)->Snapshot();
  if (opts.compressed_labels) {
    // The v2v leg decodes RAM-resident buckets instead of paging label
    // rows, so the tiny pool may never fill; assert the tier served
    // concurrently instead of the eviction pressure.
    EXPECT_GT(snap.counters.at("ttl.labels.decodes"), 0u)
        << "compressed tier never decoded under the concurrent hammer";
  } else {
    EXPECT_GT(snap.counters.at("bufferpool.evictions"), 0u)
        << "pool too big: the stress never evicted";
  }
}

}  // namespace
}  // namespace ptldb
