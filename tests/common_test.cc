#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "common/binary_io.h"
#include "common/checksum.h"
#include "common/csv.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/time_util.h"
#include "test_time.h"

namespace ptldb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::NotFound("missing row");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kNotFound);
  EXPECT_EQ(s.message(), "missing row");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing row");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(Status::InvalidArgument("x").ToString(), "INVALID_ARGUMENT: x");
  EXPECT_EQ(Status::Corruption("x").ToString(), "CORRUPTION: x");
  EXPECT_EQ(Status::IoError("x").ToString(), "IO_ERROR: x");
  EXPECT_EQ(Status::Unsupported("x").ToString(), "UNSUPPORTED: x");
  EXPECT_EQ(Status::Internal("x").ToString(), "INTERNAL: x");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::IoError("disk gone");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kIoError);
}

TEST(TimeTest, FormatsTimestamps) {
  EXPECT_EQ(FormatTime(TSec(0)), "00:00:00");
  EXPECT_EQ(FormatTime(TSec(36000)), "10:00:00");
  EXPECT_EQ(FormatTime(TSec(93784)), "26:03:04");
  EXPECT_EQ(FormatTime(EventTime::Infinity()), "--:--:--");
  EXPECT_EQ(FormatTime(EventTime::NegInfinity()), "--:--:--");
}

TEST(TimeTest, ParsesGtfsTimes) {
  EXPECT_EQ(ParseGtfsTime("00:00:00"), TSec(0));
  EXPECT_EQ(ParseGtfsTime("10:30:15"), TSec(37815));
  EXPECT_EQ(ParseGtfsTime("26:00:00"), TSec(93600));  // Past-midnight trips.
  EXPECT_EQ(ParseGtfsTime("garbage"), EventTime::Invalid());
  EXPECT_EQ(ParseGtfsTime("10:99:00"), EventTime::Invalid());
}

TEST(TimeTest, HourBucketsMatchSqlFloor) {
  EXPECT_EQ(HourOf(TSec(0)), 0);
  EXPECT_EQ(HourOf(TSec(3599)), 0);
  EXPECT_EQ(HourOf(TSec(3600)), 1);
  EXPECT_EQ(HourOf(TSec(36000)), 10);
}

TEST(TimeTest, TypedAlgebraAndNarrowing) {
  // Affine algebra keeps the domains apart.
  EXPECT_EQ(TSec(10) - TSec(4), DSec(6));
  EXPECT_EQ(TSec(10) + DSec(5), TSec(15));
  EXPECT_EQ(TSec(10) - DSec(5), TSec(5));
  EXPECT_EQ(DSec(3) * 4, DSec(12));

  // Data narrowing is exact inside the stored range.
  EXPECT_EQ(ToStoredTime(TSec(93784)), 93784);
  EXPECT_EQ(ToStoredTime(EventTime::Infinity()), kInfinityTime);
  EXPECT_EQ(ToStoredSeconds(Duration::Infinity()), kInfinityTime);

  // Predicate bounds saturate instead of faulting.
  EXPECT_EQ(SaturatingToStoredTime(TSec(int64_t{1} << 40)), kInfinityTime);
  EXPECT_EQ(SaturatingToStoredTime(TSec(-(int64_t{1} << 40))),
            kNegInfinityTime);

  // Bucket math: floor-toward-zero like the paper's SQL, 64-bit edges.
  EXPECT_EQ(TimeBucket(TSec(7199), kHourBucket), 1);
  EXPECT_EQ(StoredBucketOf(7200, kHourBucket), 2);
  EXPECT_EQ(CheckedBucketOf(TSec(7200), kHourBucket), 2);
  EXPECT_EQ(SaturatingBucketOf(TSec(int64_t{1} << 40), DSec(1)),
            std::numeric_limits<int32_t>::max());
  EXPECT_EQ(BucketStart(597, DSec(3'600'000)),
            TSec(int64_t{597} * 3'600'000));
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(4);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, SampleDistinctIsDistinctAndComplete) {
  Rng rng(5);
  // Sparse regime.
  auto sparse = rng.SampleDistinct(1000, 10);
  EXPECT_EQ(std::set<uint32_t>(sparse.begin(), sparse.end()).size(), 10u);
  // Dense regime (k > n/2).
  auto dense = rng.SampleDistinct(10, 9);
  EXPECT_EQ(std::set<uint32_t>(dense.begin(), dense.end()).size(), 9u);
  for (uint32_t v : dense) EXPECT_LT(v, 10u);
  // Full sample is a permutation.
  auto full = rng.SampleDistinct(20, 20);
  EXPECT_EQ(std::set<uint32_t>(full.begin(), full.end()).size(), 20u);
}

TEST(StringTest, SplitKeepsEmptyFields) {
  const auto fields = Split("a,,b,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
  EXPECT_EQ(fields[3], "");
}

TEST(StringTest, TrimRemovesWhitespaceAndBom) {
  EXPECT_EQ(Trim("  x \r\n"), "x");
  EXPECT_EQ(Trim("\xEF\xBB\xBFstop_id"), "stop_id");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringTest, ParseIntStrict) {
  EXPECT_EQ(ParseInt("42").value(), 42);
  EXPECT_EQ(ParseInt("-7").value(), -7);
  EXPECT_FALSE(ParseInt("42x").has_value());
  EXPECT_FALSE(ParseInt("").has_value());
}

TEST(StringTest, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.25").value(), 3.25);
  EXPECT_FALSE(ParseDouble("3.25abc").has_value());
}

TEST(StringTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(CsvTest, ParsesPlainRecord) {
  const auto fields = ParseCsvRecord("a,b,c");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvTest, ParsesQuotedFields) {
  const auto fields = ParseCsvRecord(R"(1,"Main St, Downtown","say ""hi""")");
  ASSERT_TRUE(fields.ok());
  ASSERT_EQ(fields->size(), 3u);
  EXPECT_EQ((*fields)[1], "Main St, Downtown");
  EXPECT_EQ((*fields)[2], "say \"hi\"");
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  EXPECT_FALSE(ParseCsvRecord(R"(a,"broken)").ok());
}

TEST(CsvTest, HandlesTrailingCarriageReturn) {
  const auto fields = ParseCsvRecord("a,b\r");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a", "b"}));
}

TEST(CsvTest, TableAccessByColumnName) {
  const auto table = CsvTable::Parse("x,y\n1,2\n3,4\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->Field(0, "y"), "2");
  EXPECT_EQ(table->Field(1, "x"), "3");
  EXPECT_EQ(table->Field(0, "missing"), "");
}

TEST(CsvTest, EmptyFileIsCorruption) {
  EXPECT_FALSE(CsvTable::Parse("").ok());
}

TEST(ChecksumTest, MatchesKnownCrc32cVectors) {
  // Reference vectors from RFC 3720 (iSCSI) appendix B.4.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  std::vector<uint8_t> buf(32, 0x00);
  EXPECT_EQ(Crc32c(buf.data(), buf.size()), 0x8A9136AAu);
  buf.assign(32, 0xFF);
  EXPECT_EQ(Crc32c(buf.data(), buf.size()), 0x62A8AB43u);
  for (size_t i = 0; i < 32; ++i) buf[i] = static_cast<uint8_t>(i);
  EXPECT_EQ(Crc32c(buf.data(), buf.size()), 0x46DD794Eu);
  EXPECT_EQ(Crc32c(nullptr, 0), 0u);
}

TEST(ChecksumTest, ExtendComposesLikeOneShot) {
  std::vector<uint8_t> data(1000);
  Rng rng(12);
  for (auto& b : data) b = static_cast<uint8_t>(rng.NextBelow(256));
  const uint32_t whole = Crc32c(data.data(), data.size());
  // Any split point must give the same digest, including unaligned ones
  // that exercise the slice-by-8 prologue and tail.
  for (size_t split : {size_t{1}, size_t{7}, size_t{8}, size_t{13},
                       size_t{500}, size_t{999}}) {
    uint32_t crc = Crc32cExtend(0, data.data(), split);
    crc = Crc32cExtend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, whole) << "split " << split;
  }
}

TEST(ChecksumTest, DetectsSingleBitFlips) {
  std::vector<uint8_t> data(256);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<uint8_t>(i);
  const uint32_t clean = Crc32c(data.data(), data.size());
  for (size_t bit : {size_t{0}, size_t{77}, size_t{1024}, size_t{2047}}) {
    data[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    EXPECT_NE(Crc32c(data.data(), data.size()), clean) << "bit " << bit;
    data[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  }
}

TEST(BinaryIoTest, ChecksumTrailerRoundTrips) {
  const std::string path = testing::TempDir() + "/binary_io_crc.bin";
  {
    BinaryWriter w(path);
    ASSERT_TRUE(w.ok());
    w.Write<uint64_t>(0xDEADBEEFu);
    w.WriteVector(std::vector<int32_t>{4, 5, 6});
    ASSERT_TRUE(w.FinishWithChecksum().ok());
  }
  BinaryReader r(path);
  EXPECT_EQ(r.Read<uint64_t>(), 0xDEADBEEFu);
  EXPECT_EQ(r.ReadVector<int32_t>(), (std::vector<int32_t>{4, 5, 6}));
  EXPECT_TRUE(r.VerifyChecksum().ok());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, ChecksumTrailerCatchesBitFlip) {
  const std::string path = testing::TempDir() + "/binary_io_flip.bin";
  {
    BinaryWriter w(path);
    w.Write<uint64_t>(42);
    w.WriteVector(std::vector<int32_t>{7, 8, 9});
    ASSERT_TRUE(w.FinishWithChecksum().ok());
  }
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(3);
    char byte;
    f.seekg(3);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x10);
    f.seekp(3);
    f.write(&byte, 1);
  }
  BinaryReader r(path);
  (void)r.Read<uint64_t>();
  (void)r.ReadVector<int32_t>();
  const Status s = r.VerifyChecksum();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kCorruption);
  std::remove(path.c_str());
}

TEST(BinaryIoTest, MissingTrailerIsCorruption) {
  const std::string path = testing::TempDir() + "/binary_io_notrailer.bin";
  {
    BinaryWriter w(path);
    w.Write<uint64_t>(42);
    ASSERT_TRUE(w.Finish().ok());  // Old-format file: no trailer.
  }
  BinaryReader r(path);
  (void)r.Read<uint64_t>();
  const Status s = r.VerifyChecksum();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kCorruption);
  std::remove(path.c_str());
}

TEST(BinaryIoTest, ShortReadTripsFailState) {
  const std::string path = testing::TempDir() + "/binary_io_short.bin";
  {
    BinaryWriter w(path);
    w.Write<uint32_t>(7);  // Only 4 bytes on disk.
    ASSERT_TRUE(w.Finish().ok());
  }
  BinaryReader r(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.Read<uint64_t>(), 0u);  // Short read: zero value, fail state.
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.Read<uint32_t>(), 0u);  // Stays failed; never garbage.
  EXPECT_FALSE(r.VerifyChecksum().ok());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, RoundTripsScalarsVectorsStrings) {
  const std::string path = testing::TempDir() + "/binary_io_test.bin";
  {
    BinaryWriter w(path);
    ASSERT_TRUE(w.ok());
    w.Write<uint64_t>(123);
    w.WriteVector(std::vector<int32_t>{1, -2, 3});
    w.WriteString("hello");
    ASSERT_TRUE(w.Finish().ok());
  }
  BinaryReader r(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.Read<uint64_t>(), 123u);
  EXPECT_EQ(r.ReadVector<int32_t>(), (std::vector<int32_t>{1, -2, 3}));
  EXPECT_EQ(r.ReadString(), "hello");
  EXPECT_TRUE(r.ok());
  std::remove(path.c_str());
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 1000);
  EXPECT_GE(pool.executed(), 1000u);
  EXPECT_LE(pool.stolen(), pool.executed());
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
  pool.Wait();
  EXPECT_EQ(pool.executed(), 0u);
}

TEST(ThreadPoolTest, TasksMaySubmitMoreTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&] {
      pool.Submit([&count] { count.fetch_add(2); });
      count.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 150);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr uint64_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](uint32_t worker, uint64_t i) {
    ASSERT_LT(worker, pool.num_threads());
    ASSERT_LT(i, kN);
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHandlesDegenerateSizes) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.ParallelFor(0, [&](uint32_t, uint64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
  pool.ParallelFor(1, [&](uint32_t, uint64_t i) {
    EXPECT_EQ(i, 0u);
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 1);
  // More iterations than workers and vice versa both drain fully.
  pool.ParallelFor(3, [&](uint32_t, uint64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 4);
}

TEST(ThreadPoolTest, ShutdownNeverStrandsRacingSubmits) {
  // Regression for the shutdown-ordering race: a Submit landing while
  // Shutdown flips stop_ used to be able to enqueue into a worker that
  // had already observed the stop signal and exited its CondVar wait,
  // stranding the task (and deadlocking any Wait on it) forever. The fix
  // makes the stop check and the enqueue one critical section and runs
  // post-stop submits inline on the submitter, so every Submit that
  // returns has either queued a task a draining worker will run or run it
  // itself. Loop start/submit/shutdown under a racing submitter thread;
  // the TSan CI job additionally proves the signaling is data-race-free.
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> ran{0};
    auto pool = std::make_unique<ThreadPool>(3);
    std::thread submitter([&] {
      for (int i = 0; i < 64; ++i) {
        pool->Submit(
            [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      }
    });
    pool->Shutdown();  // Races the submitter mid-loop.
    submitter.join();
    pool.reset();  // Second Shutdown via the destructor must be a no-op.
    ASSERT_EQ(ran.load(), 64) << "stranded task in round " << round;
  }
}

TEST(ThreadPoolTest, SingleWorkerPoolStealsNothing) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.ParallelFor(100, [&](uint32_t worker, uint64_t) {
    EXPECT_EQ(worker, 0u);
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(pool.stolen(), 0u);
}

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
  ThreadPool pool(0);  // 0 = hardware concurrency.
  EXPECT_EQ(pool.num_threads(), ThreadPool::DefaultThreadCount());
}

}  // namespace
}  // namespace ptldb
