// Tests of the observability layer: sharded counters under thread storms,
// histogram percentiles on known distributions, snapshot isolation, the
// exporters, the span tracer, and exact per-type query accounting on the
// facade under concurrent load.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/trace.h"
#include "ptldb/ptldb.h"
#include "timetable/generator.h"
#include "ttl/builder.h"

namespace ptldb {
namespace {

TEST(CounterTest, ConcurrentIncrementsLandExactly) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&counter] {
      for (uint64_t j = 0; j < kPerThread; ++j) counter.Add(1);
      counter.Add(5);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * (kPerThread + 5));
  counter.Reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(GaugeTest, SetAddMax) {
  Gauge gauge;
  gauge.Set(10);
  EXPECT_EQ(gauge.value(), 10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.value(), 7);
  gauge.Max(5);
  EXPECT_EQ(gauge.value(), 7);  // Max never lowers.
  gauge.Max(42);
  EXPECT_EQ(gauge.value(), 42);
  gauge.Reset();
  EXPECT_EQ(gauge.value(), 0);
}

TEST(HistogramTest, BucketBoundsArePartition) {
  // Every value lands in a bucket whose [low, high) range contains it.
  const std::vector<uint64_t> probes = {0,    1,    7,         8,
                                        9,    63,   64,        1000,
                                        123456789, UINT64_MAX};
  for (const uint64_t v : probes) {
    const size_t b = Histogram::BucketOf(v);
    EXPECT_GE(v, Histogram::BucketLow(b)) << v;
    EXPECT_LT(b + 1 < Histogram::kNumBuckets ? v : 0,
              Histogram::BucketHigh(b))
        << v;
  }
}

TEST(HistogramTest, SmallValuesAreExact) {
  Histogram h;
  // Values below 8 get their own buckets, so quantiles are exact.
  for (int i = 0; i < 50; ++i) h.Record(2);
  for (int i = 0; i < 50; ++i) h.Record(6);
  const HistogramSummary s = h.Summary();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.sum, 50u * 2 + 50u * 6);
  EXPECT_EQ(s.min, 2u);
  EXPECT_EQ(s.max, 6u);
  // Quantiles interpolate within the matched one-wide bucket.
  EXPECT_GE(s.p50, 2.0);
  EXPECT_LT(s.p50, 3.0);
  EXPECT_GE(s.p95, 6.0);
  EXPECT_LE(s.p95, 6.0 + 1e-9);
}

TEST(HistogramTest, PercentilesOnUniformDistribution) {
  Histogram h;
  // Shuffled uniform 1..10000: the interpolated quantiles must sit within
  // one log-bucket (12.5% relative width) of the exact order statistics.
  std::vector<uint64_t> values;
  for (uint64_t v = 1; v <= 10'000; ++v) values.push_back(v);
  Rng rng(7);
  for (size_t i = values.size(); i > 1; --i) {
    std::swap(values[i - 1], values[rng.NextBelow(i)]);
  }
  for (const uint64_t v : values) h.Record(v);
  const HistogramSummary s = h.Summary();
  EXPECT_EQ(s.count, 10'000u);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 10'000u);
  EXPECT_NEAR(s.p50, 5000.0, 5000.0 * 0.15);
  EXPECT_NEAR(s.p95, 9500.0, 9500.0 * 0.15);
  EXPECT_NEAR(s.p99, 9900.0, 9900.0 * 0.15);
}

TEST(HistogramTest, ConcurrentRecordsLandExactly) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20'000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&h, i] {
      for (uint64_t j = 0; j < kPerThread; ++j) {
        h.Record(static_cast<uint64_t>(i) * 1000 + (j % 97));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  EXPECT_EQ(h.Summary().count, kThreads * kPerThread);
}

TEST(MetricsRegistryTest, LookupOrCreateReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* c1 = registry.counter("a.b");
  Counter* c2 = registry.counter("a.b");
  EXPECT_EQ(c1, c2);
  EXPECT_NE(registry.counter("a.c"), c1);
  EXPECT_EQ(registry.gauge("g"), registry.gauge("g"));
  EXPECT_EQ(registry.histogram("h"), registry.histogram("h"));
}

TEST(MetricsRegistryTest, SnapshotIsolation) {
  MetricsRegistry registry;
  registry.counter("c")->Add(3);
  registry.gauge("g")->Set(-4);
  registry.histogram("h")->Record(100);
  const MetricsSnapshot snap = registry.Snapshot();
  registry.counter("c")->Add(100);
  registry.gauge("g")->Set(99);
  registry.histogram("h")->Record(1);
  EXPECT_EQ(snap.counters.at("c"), 3u);
  EXPECT_EQ(snap.gauges.at("g"), -4);
  EXPECT_EQ(snap.histograms.at("h").count, 1u);
  EXPECT_EQ(registry.Snapshot().counters.at("c"), 103u);
  registry.ResetAll();
  EXPECT_EQ(registry.Snapshot().counters.at("c"), 0u);
  EXPECT_EQ(snap.counters.at("c"), 3u);  // Old snapshot untouched.
}

TEST(MetricsRegistryTest, ConcurrentRegistrationAndIncrement) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&registry] {
      for (int j = 0; j < 1000; ++j) {
        registry.counter("shared")->Add(1);
        registry.counter("name." + std::to_string(j % 5))->Add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("shared"), kThreads * 1000u);
  for (int j = 0; j < 5; ++j) {
    EXPECT_EQ(snap.counters.at("name." + std::to_string(j)),
              kThreads * 200u);
  }
}

TEST(MetricsExportTest, PrometheusText) {
  MetricsRegistry registry;
  registry.counter("device.reads")->Add(7);
  registry.gauge("bufferpool.resident_pages")->Set(12);
  registry.histogram("query.v2v_ea.latency_ns")->Record(1000);
  const std::string text = registry.Snapshot().ToPrometheusText();
  EXPECT_NE(text.find("# TYPE ptldb_device_reads counter"),
            std::string::npos);
  EXPECT_NE(text.find("ptldb_device_reads 7"), std::string::npos);
  EXPECT_NE(text.find("ptldb_bufferpool_resident_pages 12"),
            std::string::npos);
  // Per-type query metrics export as ONE family with a query_type label.
  EXPECT_NE(text.find("ptldb_query_latency_ns"
                      "{query_type=\"v2v_ea\",quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("ptldb_query_latency_ns_count"
                      "{query_type=\"v2v_ea\"} 1"),
            std::string::npos);
}

TEST(MetricsExportTest, PrometheusLabelFamilies) {
  MetricsRegistry registry;
  registry.counter("query.v2v_ea.count")->Add(3);
  registry.counter("query.ea_knn.count")->Add(4);
  // `query.degraded.*` is NOT a per-type metric: "degraded" must not be
  // minted as a query_type label value.
  registry.counter("query.degraded.io_error")->Add(1);
  registry.histogram("server.queue_wait.interactive_ns")->Record(50);
  registry.counter("phase.merge.label_decodes")->Add(9);
  registry.histogram("phase.merge.ns")->Record(10);
  registry.counter("querylog.outcome.shed")->Add(2);
  registry.counter("traces.retained.slow")->Add(1);
  const std::string text = registry.Snapshot().ToPrometheusText();
  EXPECT_NE(text.find("ptldb_query_count{query_type=\"v2v_ea\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("ptldb_query_count{query_type=\"ea_knn\"} 4"),
            std::string::npos);
  // Both series share one family declaration.
  const size_t first = text.find("# TYPE ptldb_query_count counter");
  EXPECT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE ptldb_query_count counter", first + 1),
            std::string::npos);
  EXPECT_NE(text.find("ptldb_query_degraded_io_error 1"),
            std::string::npos);
  EXPECT_EQ(text.find("query_type=\"degraded\""), std::string::npos);
  EXPECT_NE(
      text.find("ptldb_server_queue_wait_ns_count{class=\"interactive\"} 1"),
      std::string::npos);
  EXPECT_NE(text.find("ptldb_phase_label_decodes{phase=\"merge\"} 9"),
            std::string::npos);
  EXPECT_NE(text.find("ptldb_phase_ns_count{phase=\"merge\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("ptldb_querylog_outcome{outcome=\"shed\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("ptldb_traces_retained{reason=\"slow\"} 1"),
            std::string::npos);
}

TEST(MetricsExportTest, PrometheusLabelEscaping) {
  MetricsRegistry registry;
  // A phase segment is an arbitrary label value; exercise the escapes the
  // exposition format requires: backslash, double quote, newline.
  registry.counter("phase.we\\ird\"x.io_ns")->Add(1);
  const std::string text = registry.Snapshot().ToPrometheusText();
  EXPECT_NE(text.find("ptldb_phase_io_ns{phase=\"we\\\\ird\\\"x\"} 1"),
            std::string::npos);
}

TEST(MetricsRegistryTest, ResetPrefixZeroesOnlyMatchingCountersAndHists) {
  MetricsRegistry registry;
  registry.counter("server.admitted")->Add(5);
  registry.counter("ttl.labels.decodes")->Add(7);
  registry.histogram("server.latency.interactive_ns")->Record(9);
  registry.gauge("server.queue_depth")->Set(3);
  registry.ResetPrefix("server.");
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("server.admitted"), 0u);
  EXPECT_EQ(snap.counters.at("ttl.labels.decodes"), 7u);
  EXPECT_EQ(snap.histograms.at("server.latency.interactive_ns").count, 0u);
  // Gauges are instantaneous readings; ResetPrefix leaves them alone.
  EXPECT_EQ(snap.gauges.at("server.queue_depth"), 3);
}

TEST(MetricsExportTest, Json) {
  MetricsRegistry registry;
  registry.counter("a.b")->Add(2);
  registry.gauge("g")->Set(-1);
  registry.histogram("h")->Record(5);
  const std::string json = registry.Snapshot().ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"a.b\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"g\": -1"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
}

TEST(QueryTraceTest, SpanTreeRendersDeterministically) {
  QueryTrace trace;
  trace.Begin("outer");
  trace.AddStat("rows", 3);
  trace.Begin("inner");
  trace.AddStat("hits", 2);
  trace.End();
  trace.End();
  trace.End();  // Close the root.
  EXPECT_EQ(trace.ToString(false),
            "query\n"
            "  outer  rows=3\n"
            "    inner  hits=2\n");
}

TEST(QueryTraceTest, TimingsIncludedWhenRequested) {
  QueryTrace trace;
  {
    TraceSpan span(&trace, "step");
  }
  trace.End();
  const std::string text = trace.ToString(true);
  EXPECT_NE(text.find("step"), std::string::npos);
  EXPECT_NE(text.find("[time="), std::string::npos);
}

TEST(LocalQueryCountersTest, DeltaSubtraction) {
  LocalQueryCounters& mine = ThisThreadQueryCounters();
  const LocalQueryCounters before = mine;
  mine.tuples_scanned += 4;
  mine.label_comparisons += 9;
  const LocalQueryCounters delta = mine - before;
  EXPECT_EQ(delta.tuples_scanned, 4u);
  EXPECT_EQ(delta.index_seeks, 0u);
  EXPECT_EQ(delta.label_comparisons, 9u);
}

// ---------- Facade accounting under concurrency ----------

class FacadeMetricsTest : public testing::Test {
 protected:
  FacadeMetricsTest() {
    GeneratorOptions o;
    o.num_stops = 60;
    o.target_connections = 2500;
    o.seed = 11;
    tt_ = std::move(GenerateNetwork(o)).value();
    index_ = std::move(BuildTtlIndex(tt_)).value();
    PtldbOptions options;
    options.device = DeviceProfile::Ram();
    db_ = std::move(PtldbDatabase::Build(index_, options)).value();
    Rng rng(5);
    targets_ = rng.SampleDistinct(tt_.num_stops(), 8);
    EXPECT_TRUE(db_->AddTargetSet("poi", index_, targets_, 4).ok());
  }

  Timetable tt_;
  TtlIndex index_;
  std::unique_ptr<PtldbDatabase> db_;
  std::vector<StopId> targets_;
};

TEST_F(FacadeMetricsTest, PerTypeCountsAreExactUnderConcurrency) {
  db_->ResetQueryStats();
  constexpr int kThreads = 8;
  constexpr uint32_t kPerThread = 25;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([this, i] {
      Rng rng(100 + i);
      for (uint32_t j = 0; j < kPerThread; ++j) {
        const auto s = static_cast<StopId>(rng.NextBelow(tt_.num_stops()));
        const auto g = static_cast<StopId>(rng.NextBelow(tt_.num_stops()));
        const EventTime t = tt_.min_time();
        (void)db_->EarliestArrival(s, g, t);
        (void)db_->LatestDeparture(s, g, tt_.max_time());
        (void)db_->ShortestDuration(s, g, t, tt_.max_time());
        (void)db_->EaKnn("poi", s, t, 2);
        (void)db_->LdKnn("poi", s, tt_.max_time(), 2);
        (void)db_->EaOneToMany("poi", s, t);
        (void)db_->LdOneToMany("poi", s, tt_.max_time());
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto stats = db_->query_stats();
  constexpr uint64_t kExpected = uint64_t{kThreads} * kPerThread;
  for (size_t i = 0; i < kNumQueryTypes; ++i) {
    EXPECT_EQ(stats.by_type[i], kExpected)
        << QueryTypeName(static_cast<QueryType>(i));
  }
  EXPECT_EQ(stats.queries, kExpected * kNumQueryTypes);
  EXPECT_EQ(stats.degraded, 0u);

  // The latency histograms saw every query too.
  const MetricsSnapshot snap = db_->Snapshot();
  for (size_t i = 0; i < kNumQueryTypes; ++i) {
    const std::string name =
        std::string("query.") + QueryTypeName(static_cast<QueryType>(i)) +
        ".latency_ns";
    EXPECT_EQ(snap.histograms.at(name).count, kExpected) << name;
  }
}

TEST_F(FacadeMetricsTest, SnapshotCarriesEngineCounters) {
  // Several pairs so at least one join finds common hubs.
  for (StopId g = 1; g <= 5; ++g) {
    (void)db_->EarliestArrival(0, g, tt_.min_time());
  }
  const MetricsSnapshot snap = db_->Snapshot();
  // Engine overlays: device and buffer pool counters appear by name.
  EXPECT_NE(snap.counters.find("device.reads"), snap.counters.end());
  EXPECT_NE(snap.counters.find("bufferpool.hits"), snap.counters.end());
  EXPECT_NE(snap.gauges.find("bufferpool.resident_pages"),
            snap.gauges.end());
  EXPECT_GT(snap.counters.at("exec.tuples_scanned"), 0u);
  EXPECT_GT(snap.counters.at("ttl.label_comparisons"), 0u);
  EXPECT_GT(snap.counters.at("ttl.hubs_merged"), 0u);
  EXPECT_EQ(snap.counters.at("query.v2v_ea.count"), 5u);
}

TEST_F(FacadeMetricsTest, ResetQueryStatsZeroesPerTypeCounters) {
  (void)db_->EarliestArrival(0, 1, tt_.min_time());
  (void)db_->EaKnn("poi", 0, tt_.min_time(), 1);
  auto stats = db_->query_stats();
  EXPECT_EQ(stats.queries, 2u);
  db_->ResetQueryStats();
  stats = db_->query_stats();
  EXPECT_EQ(stats.queries, 0u);
  for (size_t i = 0; i < kNumQueryTypes; ++i) {
    EXPECT_EQ(stats.by_type[i], 0u);
  }
  EXPECT_FALSE(stats.last_degraded);
}

TEST_F(FacadeMetricsTest, TraceRecordsSpanPerQuery) {
  QueryTrace trace;
  db_->set_trace(&trace);
  for (StopId g = 3; g <= 7; ++g) {
    (void)db_->EarliestArrival(2, g, tt_.min_time());
  }
  db_->set_trace(nullptr);
  const std::string text = trace.ToString(false);
  EXPECT_NE(text.find("v2v_ea"), std::string::npos);
  EXPECT_NE(text.find("tuples.scanned="), std::string::npos);
  EXPECT_NE(text.find("label.comparisons="), std::string::npos);
  EXPECT_EQ(trace.root().children.size(), 5u);  // One span per query.
}

}  // namespace
}  // namespace ptldb
