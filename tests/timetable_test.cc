#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "test_time.h"
#include "timetable/example_graph.h"
#include "timetable/serialize.h"
#include "timetable/timetable.h"

namespace ptldb {
namespace {

TEST(TimetableBuilderTest, RejectsUnknownStop) {
  TimetableBuilder b;
  b.AddStop();
  b.AddTrip();
  b.AddConnection(0, 5, TSec(10), TSec(20), 0);
  EXPECT_FALSE(std::move(b).Build().ok());
}

TEST(TimetableBuilderTest, RejectsUnknownTrip) {
  TimetableBuilder b;
  b.AddStop();
  b.AddStop();
  b.AddConnection(0, 1, TSec(10), TSec(20), 0);
  EXPECT_FALSE(std::move(b).Build().ok());
}

TEST(TimetableBuilderTest, RejectsNonPositiveDuration) {
  TimetableBuilder b;
  b.AddStop();
  b.AddStop();
  b.AddTrip();
  b.AddConnection(0, 1, TSec(20), TSec(20), 0);
  EXPECT_FALSE(std::move(b).Build().ok());
}

TEST(TimetableBuilderTest, RejectsSelfLoop) {
  TimetableBuilder b;
  b.AddStop();
  b.AddTrip();
  b.AddConnection(0, 0, TSec(10), TSec(20), 0);
  EXPECT_FALSE(std::move(b).Build().ok());
}

TEST(TimetableBuilderTest, EmptyTimetableIsValid) {
  const auto tt = TimetableBuilder().Build();
  ASSERT_TRUE(tt.ok());
  EXPECT_EQ(tt->num_stops(), 0u);
  EXPECT_EQ(tt->num_connections(), 0u);
}

TEST(TimetableTest, ConnectionsSortedByDeparture) {
  const Timetable tt = MakeExampleTimetable();
  const auto conns = tt.connections();
  for (size_t i = 1; i < conns.size(); ++i) {
    EXPECT_LE(conns[i - 1].dep, conns[i].dep);
  }
}

TEST(TimetableTest, ByArrivalSortedByArrival) {
  const Timetable tt = MakeExampleTimetable();
  const auto order = tt.by_arrival();
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(tt.connection(order[i - 1]).arr, tt.connection(order[i]).arr);
  }
}

TEST(TimetableTest, ExampleShape) {
  const Timetable tt = MakeExampleTimetable();
  EXPECT_EQ(tt.num_stops(), 7u);
  EXPECT_EQ(tt.num_trips(), 4u);
  EXPECT_EQ(tt.num_connections(), 12u);
  EXPECT_EQ(tt.min_time(), TSec(28800));
  EXPECT_EQ(tt.max_time(), TSec(43200));
  EXPECT_NEAR(tt.average_degree(), 12.0 / 7.0, 1e-9);
}

TEST(TimetableTest, TripConnectionsInTravelOrder) {
  const Timetable tt = MakeExampleTimetable();
  const auto conns = tt.trip_connections(0);  // Trip 1: 5->1->0->2->6.
  ASSERT_EQ(conns.size(), 4u);
  EXPECT_EQ(tt.connection(conns[0]).from, 5u);
  EXPECT_EQ(tt.connection(conns[1]).from, 1u);
  EXPECT_EQ(tt.connection(conns[2]).from, 0u);
  EXPECT_EQ(tt.connection(conns[3]).from, 2u);
  for (size_t i = 1; i < conns.size(); ++i) {
    EXPECT_LE(tt.connection(conns[i - 1]).arr, tt.connection(conns[i]).dep);
  }
}

TEST(TimetableTest, ArrivalEventsAreDistinctSorted) {
  const Timetable tt = MakeExampleTimetable();
  // Stop 0 is reached at 36000 by four different trips: one distinct event.
  const auto at0 = tt.arrival_events(0);
  ASSERT_EQ(at0.size(), 1u);
  EXPECT_EQ(at0[0], TSec(36000));
  // Stop 1 is reached at 32400 (trip 1) and 39600 (trip 2).
  const auto at1 = tt.arrival_events(1);
  ASSERT_EQ(at1.size(), 2u);
  EXPECT_EQ(at1[0], TSec(32400));
  EXPECT_EQ(at1[1], TSec(39600));
}

TEST(TimetableTest, DepartureEvents) {
  const Timetable tt = MakeExampleTimetable();
  const auto at0 = tt.departure_events(0);
  ASSERT_EQ(at0.size(), 1u);
  EXPECT_EQ(at0[0], TSec(36000));
  const auto at5 = tt.departure_events(5);
  ASSERT_EQ(at5.size(), 1u);
  EXPECT_EQ(at5[0], TSec(28800));
}

TEST(TimetableTest, FirstConnectionNotBefore) {
  const Timetable tt = MakeExampleTimetable();
  EXPECT_EQ(tt.FirstConnectionNotBefore(TSec(0)), 0u);
  const size_t i = tt.FirstConnectionNotBefore(TSec(32400));
  ASSERT_LT(i, tt.num_connections());
  EXPECT_GE(tt.connection(static_cast<ConnectionId>(i)).dep, TSec(32400));
  EXPECT_EQ(tt.FirstConnectionNotBefore(TSec(99999999)), tt.num_connections());
}

TEST(TimetableSerializeTest, RoundTrip) {
  const Timetable tt = MakeExampleTimetable();
  const std::string path = testing::TempDir() + "/tt_roundtrip.bin";
  ASSERT_TRUE(SaveTimetable(tt, path).ok());
  const auto loaded = LoadTimetable(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_stops(), tt.num_stops());
  EXPECT_EQ(loaded->num_trips(), tt.num_trips());
  ASSERT_EQ(loaded->num_connections(), tt.num_connections());
  for (uint32_t i = 0; i < tt.num_connections(); ++i) {
    EXPECT_EQ(loaded->connection(i), tt.connection(i));
  }
  EXPECT_EQ(loaded->stop(3).name, tt.stop(3).name);
  std::remove(path.c_str());
}

TEST(TimetableSerializeTest, TruncatedFileIsCorruptionNotCrash) {
  const Timetable tt = MakeExampleTimetable();
  const std::string path = testing::TempDir() + "/tt_trunc.bin";
  ASSERT_TRUE(SaveTimetable(tt, path).ok());
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const auto full = static_cast<size_t>(in.tellg());
  in.close();
  // Chop the file at several points, including mid-header, mid-payload,
  // and inside the checksum trailer. Every truncation must load as a
  // non-OK status — never a crash, never a partial timetable.
  for (size_t keep : {size_t{0}, size_t{4}, full / 2, full - 9, full - 1}) {
    std::filesystem::resize_file(path, keep);
    const auto loaded = LoadTimetable(path);
    ASSERT_FALSE(loaded.ok()) << "kept " << keep << " of " << full;
    ASSERT_TRUE(SaveTimetable(tt, path).ok());  // Restore for next round.
  }
  std::remove(path.c_str());
}

TEST(TimetableSerializeTest, BitFlipIsDetectedByTrailer) {
  const Timetable tt = MakeExampleTimetable();
  const std::string path = testing::TempDir() + "/tt_flip.bin";
  ASSERT_TRUE(SaveTimetable(tt, path).ok());
  std::ifstream probe(path, std::ios::binary | std::ios::ate);
  const auto size = static_cast<size_t>(probe.tellg());
  probe.close();
  // Flip one bit at several offsets across the payload (skip the magic,
  // which has its own check) and require a kCorruption on load.
  for (size_t pos : {size_t{9}, size / 3, size / 2, size - 10}) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(pos));
    char byte;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x04);
    f.seekp(static_cast<std::streamoff>(pos));
    f.write(&byte, 1);
    f.close();
    const auto loaded = LoadTimetable(path);
    ASSERT_FALSE(loaded.ok()) << "flip at " << pos;
    EXPECT_EQ(loaded.status().code(), Status::Code::kCorruption)
        << loaded.status().ToString();
    ASSERT_TRUE(SaveTimetable(tt, path).ok());
  }
  std::remove(path.c_str());
}

TEST(TimetableSerializeTest, RejectsBadMagic) {
  const std::string path = testing::TempDir() + "/tt_bad_magic.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a timetable";
  }
  EXPECT_FALSE(LoadTimetable(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ptldb
