// Figure 4 of the paper: absolute EA-kNN and LD-kNN times for D = 0.01 and
// varying k, on the HDD. The kmax=4 table instance answers k in {1,2,4},
// the kmax=16 instance k in {8,16} (Section 4.1.2). Expected shape: tens
// of milliseconds, LD slightly cheaper than EA, Madrid (largest |HL|/|V|)
// slowest.
#include <cstdio>

#include "knn_bench.h"

using namespace ptldb;

int main(int argc, char** argv) {
  const BenchConfig config = ParseBenchArgs(argc, argv);
  std::printf("# Figure 4: kNN queries for D=0.01, varying k (HDD, %u queries)\n\n",
              config.num_queries);
  PrintTableHeader({"Graph", "EA k=1", "EA k=2", "EA k=4", "EA k=8",
                    "EA k=16", "LD k=1", "LD k=2", "LD k=4", "LD k=8",
                    "LD k=16"});
  for (const CityProfile* profile : SelectCities(config)) {
    auto data = LoadOrBuildDataset(*profile, config);
    if (!data.ok()) return 1;
    auto db = MakeBenchDb(*data, DeviceProfile::Hdd7200());
    if (!db.ok()) return 1;
    if (!AddFig34Sets(db->get(), *data, *profile, config.seed).ok()) return 1;
    Rng rng(config.seed * 31 + 5);
    const KnnWorkload w = MakeKnnWorkload(&rng, data->tt, config.num_queries);

    std::vector<std::string> row{data->name};
    for (const char* mode : {"ea", "ld"}) {
      for (const uint32_t k : {1u, 2u, 4u, 8u, 16u}) {
        const std::string set = SetForK(k);
        const bool ea = mode[0] == 'e';
        const double ms =
            TimeQueries(db->get(), config.num_queries, [&](uint32_t i) {
              if (ea) {
                (void)(*db)->EaKnn(set, w.q[i], w.early[i], k);
              } else {
                (void)(*db)->LdKnn(set, w.q[i], w.late[i], k);
              }
            });
        row.push_back(Ms(ms));
      }
    }
    PrintTableRow(row);
  }
  return 0;
}
