// Section 4.3 of the paper (memory requirements): total table + index
// footprint for all datasets, including the knn/otm tables for every value
// of D and kmax in {4, 16} — the paper reports < 12 GB at full scale.
// Also reports the dummy-tuple fraction (claimed < 10% at full scale).
#include <cstdio>

#include "knn_bench.h"
#include "ptldb/tables.h"

using namespace ptldb;

int main(int argc, char** argv) {
  const BenchConfig config = ParseBenchArgs(argc, argv);
  const double densities[] = {0.001, 0.005, 0.01, 0.05, 0.1};
  std::printf("# Section 4.3: storage footprint (scale %g)\n\n", config.scale);
  PrintTableHeader({"Graph", "labels (MiB)", "knn+otm all D (MiB)",
                    "total (MiB)", "KiB/stop", "dummy frac"});
  double grand_total = 0;
  for (const CityProfile* profile : SelectCities(config)) {
    auto data = LoadOrBuildDataset(*profile, config);
    if (!data.ok()) return 1;
    auto db = MakeBenchDb(*data, DeviceProfile::Ram());
    if (!db.ok()) return 1;
    const double label_bytes = static_cast<double>((*db)->size_bytes());

    Rng rng(config.seed * 104729 + 7);
    for (int d = 0; d < 5; ++d) {
      const auto targets = MakeTargets(&rng, data->tt, *profile, densities[d]);
      char set4[16], set16[16];
      std::snprintf(set4, sizeof(set4), "d%dk4", d);
      std::snprintf(set16, sizeof(set16), "d%dk16", d);
      if (!(*db)->AddTargetSet(set4, data->index, targets, 4).ok()) return 1;
      if (!(*db)->AddTargetSet(set16, data->index, targets, 16).ok()) {
        return 1;
      }
    }
    const double total_bytes = static_cast<double>((*db)->size_bytes());
    grand_total += total_bytes;
    const double dummy_fraction =
        static_cast<double>(2 * data->dummy_tuples) /
        static_cast<double>(data->out_tuples + data->in_tuples +
                            2 * data->dummy_tuples);
    char labels[32], derived[32], total[32], per_stop[32], dummy[32];
    std::snprintf(labels, sizeof(labels), "%.1f", label_bytes / 1048576.0);
    std::snprintf(derived, sizeof(derived), "%.1f",
                  (total_bytes - label_bytes) / 1048576.0);
    std::snprintf(total, sizeof(total), "%.1f", total_bytes / 1048576.0);
    std::snprintf(per_stop, sizeof(per_stop), "%.0f",
                  total_bytes / 1024.0 / data->tt.num_stops());
    std::snprintf(dummy, sizeof(dummy), "%.1f%%", 100.0 * dummy_fraction);
    PrintTableRow({data->name, labels, derived, total, per_stop, dummy});
  }
  std::printf("\nGrand total: %.1f MiB at scale %g (the paper reports "
              "< 12 GB at full scale).\n",
              grand_total / 1048576.0, config.scale);
  return 0;
}
