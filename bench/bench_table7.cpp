// Table 7 of the paper: dataset statistics and TTL preprocessing cost for
// the 11 public-transportation networks (scaled synthetic equivalents; see
// DESIGN.md on the substitution). Paper values are printed alongside for
// shape comparison: |HL|/|V| in the hundreds-to-thousands, Madrid densest,
// preprocessing seconds growing with |V| x |E|.
//
// Preprocessing is measured twice per city — once serial (num_threads=1)
// and once with --threads workers (default: all hardware threads) — and the
// speedup is reported. The two builds produce byte-identical indexes (the
// wave-parallel construction is deterministic; ttl_determinism_test pins
// it), so the speedup column is a pure like-for-like comparison.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "common/thread_pool.h"
#include "ttl/builder.h"
#include "ttl/label_store.h"

using namespace ptldb;

int main(int argc, char** argv) {
  const BenchConfig config = ParseBenchArgs(argc, argv);
  const uint32_t par_threads = config.num_threads != 0
                                   ? config.num_threads
                                   : ThreadPool::DefaultThreadCount();
  BenchRunRecord record;
  record.bench = "bench_table7";
  record.git = GitDescribe();
  record.scale = config.scale;
  record.seed = config.seed;
  std::printf(
      "# Table 7: graph statistics and TTL preprocessing (scale %g, "
      "%u threads)\n\n",
      config.scale, par_threads);
  char par_col[48];
  std::snprintf(par_col, sizeof(par_col), "Par@%u (s)", par_threads);
  PrintTableHeader({"Graph", "|V|", "|E|", "Avg degr.", "|HL|/|V|",
                    "B/label", "Serial (s)", par_col, "Speedup",
                    "paper |HL|/|V|", "paper preproc (s)"});
  const char* paper_hl[] = {"1600", "1734", "2486", "1190", "2196", "2572",
                            "7230", "4370", "630", "775", "2987"};
  const char* paper_pp[] = {"11.3", "184.7", "54.4", "27.3", "72.6", "194.5",
                            "338.5", "353.6", "4.5", "179.1", "262.1"};
  for (const CityProfile* profile : SelectCities(config)) {
    auto data = LoadOrBuildDataset(*profile, config);
    if (!data.ok()) {
      std::fprintf(stderr, "%s: %s\n", profile->name,
                   data.status().ToString().c_str());
      return 1;
    }
    // Fresh timed builds for the serial-vs-parallel comparison (the cached
    // index above may have been built with any thread count).
    const auto timed_build = [&](uint32_t threads) -> double {
      TtlBuildOptions options;
      options.num_threads = threads;
      TtlBuildStats stats;
      auto index = BuildTtlIndex(data->tt, options, &stats);
      if (!index.ok()) {
        std::fprintf(stderr, "%s: %s\n", profile->name,
                     index.status().ToString().c_str());
        std::exit(1);
      }
      return stats.preprocess_seconds;
    };
    const double serial_s = timed_build(1);
    const double par_s = timed_build(par_threads);
    record.phases.push_back({data->name + ".ttl_build_serial", serial_s,
                             data->tt.num_stops(), serial_s * 1e3 /
                                 std::max<uint32_t>(data->tt.num_stops(), 1)});
    record.phases.push_back({data->name + ".ttl_build_parallel", par_s,
                             data->tt.num_stops(), par_s * 1e3 /
                                 std::max<uint32_t>(data->tt.num_stops(), 1)});
    // Compressed in-memory tier: bytes per label against the 12-byte raw
    // (hub, td, ta) triple, per city (label distributions differ, so the
    // compression ratio is a per-city statistic worth tracking).
    auto store = LabelStore::Build(data->index);
    if (!store.ok()) {
      std::fprintf(stderr, "%s: %s\n", profile->name,
                   store.status().ToString().c_str());
      return 1;
    }
    const uint64_t label_count = (*store)->total_labels();
    const double bytes_per_label =
        label_count > 0
            ? static_cast<double>((*store)->bytes_resident()) /
                  static_cast<double>(label_count)
            : 0.0;
    record.metrics.gauges[data->name + ".labels.compressed_bytes"] =
        static_cast<int64_t>((*store)->bytes_resident());
    record.metrics.gauges[data->name + ".labels.count"] =
        static_cast<int64_t>(label_count);
    size_t paper_idx = 0;
    for (size_t i = 0; i < kNumCityProfiles; ++i) {
      if (&kCityProfiles[i] == profile) paper_idx = i;
    }
    char v[32], e[32], deg[32], hl[32], bpl[32], ser[32], par[32], sp[32];
    std::snprintf(v, sizeof(v), "%u", data->tt.num_stops());
    std::snprintf(e, sizeof(e), "%u", data->tt.num_connections());
    std::snprintf(deg, sizeof(deg), "%.0f", data->tt.average_degree());
    std::snprintf(hl, sizeof(hl), "%.0f", data->index.tuples_per_vertex());
    std::snprintf(bpl, sizeof(bpl), "%.2f", bytes_per_label);
    std::snprintf(ser, sizeof(ser), "%.1f", serial_s);
    std::snprintf(par, sizeof(par), "%.1f", par_s);
    std::snprintf(sp, sizeof(sp), "%.2fx", par_s > 0 ? serial_s / par_s : 0.0);
    PrintTableRow({data->name, v, e, deg, hl, bpl, ser, par, sp,
                   paper_hl[paper_idx], paper_pp[paper_idx]});
  }
  std::printf(
      "\nNote: |V| and |E| scale linearly with --scale; |HL|/|V| and the\n"
      "preprocessing time are expected to track the paper's per-city shape\n"
      "(Madrid/Roma/Toronto largest labels; SaltLakeCity/Sweden smallest).\n"
      "The speedup column needs real cores to move: on a single-core\n"
      "machine it stays near 1x by construction.\n");
  if (!config.json_path.empty()) {
    const Status s = WriteBenchJson(record, config.json_path);
    if (!s.ok()) {
      std::fprintf(stderr, "--json: %s\n", s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "[bench] wrote %s\n", config.json_path.c_str());
  }
  return 0;
}
