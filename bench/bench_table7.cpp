// Table 7 of the paper: dataset statistics and TTL preprocessing cost for
// the 11 public-transportation networks (scaled synthetic equivalents; see
// DESIGN.md on the substitution). Paper values are printed alongside for
// shape comparison: |HL|/|V| in the hundreds-to-thousands, Madrid densest,
// preprocessing seconds growing with |V| x |E|.
#include <cstdio>

#include "bench_common.h"

using namespace ptldb;

int main(int argc, char** argv) {
  const BenchConfig config = ParseBenchArgs(argc, argv);
  std::printf("# Table 7: graph statistics and TTL preprocessing (scale %g)\n\n",
              config.scale);
  PrintTableHeader({"Graph", "|V|", "|E|", "Avg degr.", "|HL|/|V|",
                    "Preproc (s)", "paper |HL|/|V|", "paper preproc (s)"});
  const char* paper_hl[] = {"1600", "1734", "2486", "1190", "2196", "2572",
                            "7230", "4370", "630", "775", "2987"};
  const char* paper_pp[] = {"11.3", "184.7", "54.4", "27.3", "72.6", "194.5",
                            "338.5", "353.6", "4.5", "179.1", "262.1"};
  for (const CityProfile* profile : SelectCities(config)) {
    auto data = LoadOrBuildDataset(*profile, config);
    if (!data.ok()) {
      std::fprintf(stderr, "%s: %s\n", profile->name,
                   data.status().ToString().c_str());
      return 1;
    }
    size_t paper_idx = 0;
    for (size_t i = 0; i < kNumCityProfiles; ++i) {
      if (&kCityProfiles[i] == profile) paper_idx = i;
    }
    char v[32], e[32], deg[32], hl[32], pp[32];
    std::snprintf(v, sizeof(v), "%u", data->tt.num_stops());
    std::snprintf(e, sizeof(e), "%u", data->tt.num_connections());
    std::snprintf(deg, sizeof(deg), "%.0f", data->tt.average_degree());
    std::snprintf(hl, sizeof(hl), "%.0f", data->index.tuples_per_vertex());
    std::snprintf(pp, sizeof(pp), "%.1f", data->preprocess_seconds);
    PrintTableRow({data->name, v, e, deg, hl, pp, paper_hl[paper_idx],
                   paper_pp[paper_idx]});
  }
  std::printf(
      "\nNote: |V| and |E| scale linearly with --scale; |HL|/|V| and the\n"
      "preprocessing time are expected to track the paper's per-city shape\n"
      "(Madrid/Roma/Toronto largest labels; SaltLakeCity/Sweden smallest).\n");
  return 0;
}
