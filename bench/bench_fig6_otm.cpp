// Figure 6 of the paper: EA and LD one-to-many queries for varying target
// density D, on the HDD. Expected shape: slower than kNN (whole target set
// answered), growing with D, "for high D the one-to-many query almost
// degrades to one-to-all".
#include <cstdio>

#include "knn_bench.h"

using namespace ptldb;

int main(int argc, char** argv) {
  const BenchConfig config = ParseBenchArgs(argc, argv);
  const double densities[] = {0.001, 0.005, 0.01, 0.05, 0.1};
  std::printf("# Figure 6: one-to-many queries, varying D (HDD, %u queries)\n\n",
              config.num_queries);
  PrintTableHeader({"Graph", "EA D=.001", "EA D=.005", "EA D=.01",
                    "EA D=.05", "EA D=.1", "LD D=.001", "LD D=.005",
                    "LD D=.01", "LD D=.05", "LD D=.1"});
  for (const CityProfile* profile : SelectCities(config)) {
    auto data = LoadOrBuildDataset(*profile, config);
    if (!data.ok()) return 1;
    auto db = MakeBenchDb(*data, DeviceProfile::Hdd7200());
    if (!db.ok()) return 1;
    Rng rng(config.seed * 104729 + 7);
    for (int d = 0; d < 5; ++d) {
      const auto targets = MakeTargets(&rng, data->tt, *profile, densities[d]);
      char set[16];
      std::snprintf(set, sizeof(set), "d%d", d);
      if (!(*db)->AddTargetSet(set, data->index, targets, 4).ok()) return 1;
    }
    Rng wrng(config.seed * 31 + 5);
    const KnnWorkload w = MakeKnnWorkload(&wrng, data->tt, config.num_queries);

    std::vector<std::string> row{data->name};
    for (const char* mode : {"ea", "ld"}) {
      const bool ea = mode[0] == 'e';
      for (int d = 0; d < 5; ++d) {
        char set[16];
        std::snprintf(set, sizeof(set), "d%d", d);
        // High-density cells are expensive; cap their sample count.
        const uint32_t n =
            d >= 3 ? std::min<uint32_t>(config.num_queries, 80)
                   : config.num_queries;
        const double ms =
            TimeQueries(db->get(), n, [&](uint32_t i) {
              if (ea) {
                (void)(*db)->EaOneToMany(set, w.q[i], w.early[i]);
              } else {
                (void)(*db)->LdOneToMany(set, w.q[i], w.late[i]);
              }
            });
        row.push_back(Ms(ms));
      }
    }
    PrintTableRow(row);
  }
  return 0;
}
