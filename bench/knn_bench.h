#ifndef PTLDB_BENCH_KNN_BENCH_H_
#define PTLDB_BENCH_KNN_BENCH_H_

#include <algorithm>
#include <cstdio>

#include "bench_common.h"

namespace ptldb {

/// Shared pieces of the kNN / one-to-many experiments (Figures 3-6, 8).

/// Random target set for density D. The paper defines D = |T|/|V| against
/// its full-size networks (20-5100 targets); to preserve that workload
/// shape under --scale we size |T| against the profile's FULL |V| and clamp
/// to the scaled network (high D then degrades toward one-to-all, exactly
/// as the paper describes).
inline std::vector<StopId> MakeTargets(Rng* rng, const Timetable& tt,
                                       const CityProfile& profile,
                                       double density) {
  const auto count = std::max<uint32_t>(
      1, static_cast<uint32_t>(density * profile.num_stops + 0.5));
  return rng->SampleDistinct(tt.num_stops(),
                             std::min(count, tt.num_stops()));
}

/// Query workload: random query stops with first-quarter start times and
/// fourth-quarter deadlines (Section 4).
struct KnnWorkload {
  std::vector<StopId> q;
  std::vector<EventTime> early;
  std::vector<EventTime> late;
};

inline KnnWorkload MakeKnnWorkload(Rng* rng, const Timetable& tt,
                                   uint32_t n) {
  KnnWorkload w;
  w.q.resize(n);
  w.early.resize(n);
  w.late.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    w.q[i] = static_cast<StopId>(rng->NextBelow(tt.num_stops()));
    w.early[i] = RandomEarlyTime(rng, tt);
    w.late[i] = RandomLateTime(rng, tt);
  }
  return w;
}

/// The paper's two kNN table instances: kmax=4 serves k in {1,2,4},
/// kmax=16 serves k in {8,16} (Section 4.1.2).
inline const char* SetForK(uint32_t k) { return k <= 4 ? "d01k4" : "d01k16"; }

/// Registers both kmax instances for density 0.01 on `db`.
inline Status AddFig34Sets(PtldbDatabase* db, const BenchDataset& data,
                           const CityProfile& profile, uint64_t seed) {
  Rng rng(seed * 104729 + 7);
  const std::vector<StopId> targets =
      MakeTargets(&rng, data.tt, profile, 0.01);
  PTLDB_RETURN_IF_ERROR(db->AddTargetSet("d01k4", data.index, targets, 4));
  return db->AddTargetSet("d01k16", data.index, targets, 16);
}

}  // namespace ptldb

#endif  // PTLDB_BENCH_KNN_BENCH_H_
