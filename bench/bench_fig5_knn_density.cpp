// Figure 5 of the paper: kNN queries for k = 4 and varying target density
// D in {0.001, 0.005, 0.01, 0.05, 0.1}, each with its own kmax=4 table
// instance, on the HDD. Expected shape: times grow with D; EA more robust
// to dense targets than LD.
#include <cstdio>

#include "knn_bench.h"

using namespace ptldb;

int main(int argc, char** argv) {
  const BenchConfig config = ParseBenchArgs(argc, argv);
  const double densities[] = {0.001, 0.005, 0.01, 0.05, 0.1};
  std::printf("# Figure 5: kNN queries for k=4, varying D (HDD, %u queries)\n\n",
              config.num_queries);
  PrintTableHeader({"Graph", "EA D=.001", "EA D=.005", "EA D=.01",
                    "EA D=.05", "EA D=.1", "LD D=.001", "LD D=.005",
                    "LD D=.01", "LD D=.05", "LD D=.1"});
  for (const CityProfile* profile : SelectCities(config)) {
    auto data = LoadOrBuildDataset(*profile, config);
    if (!data.ok()) return 1;
    auto db = MakeBenchDb(*data, DeviceProfile::Hdd7200());
    if (!db.ok()) return 1;
    Rng rng(config.seed * 104729 + 7);
    for (int d = 0; d < 5; ++d) {
      const auto targets = MakeTargets(&rng, data->tt, *profile, densities[d]);
      char set[16];
      std::snprintf(set, sizeof(set), "d%d", d);
      if (const auto s = (*db)->AddTargetSet(set, data->index, targets, 4);
          !s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
    }
    Rng wrng(config.seed * 31 + 5);
    const KnnWorkload w = MakeKnnWorkload(&wrng, data->tt, config.num_queries);

    std::vector<std::string> row{data->name};
    for (const char* mode : {"ea", "ld"}) {
      const bool ea = mode[0] == 'e';
      for (int d = 0; d < 5; ++d) {
        char set[16];
        std::snprintf(set, sizeof(set), "d%d", d);
        // High-density cells are expensive; cap their sample count.
        const uint32_t n =
            d >= 3 ? std::min<uint32_t>(config.num_queries, 80)
                   : config.num_queries;
        const double ms =
            TimeQueries(db->get(), n, [&](uint32_t i) {
              if (ea) {
                (void)(*db)->EaKnn(set, w.q[i], w.early[i], 4);
              } else {
                (void)(*db)->LdKnn(set, w.q[i], w.late[i], 4);
              }
            });
        row.push_back(Ms(ms));
      }
    }
    PrintTableRow(row);
  }
  return 0;
}
