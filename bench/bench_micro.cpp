// Microbenchmarks (google-benchmark) for the core primitives: B+Tree
// lookups, label-row fetches, the v2v merge join, in-memory TTL queries and
// the Connection Scan baseline. These calibrate where the CPU time in the
// paper-level figures is spent.
#include <benchmark/benchmark.h>

#include "baseline/csa.h"
#include "baseline/profile.h"
#include "common/rng.h"
#include "ptldb/ptldb.h"
#include "ptldb/queries.h"
#include "timetable/generator.h"
#include "ttl/builder.h"
#include "ttl/query.h"

namespace ptldb {
namespace {

struct MicroFixture {
  MicroFixture() {
    GeneratorOptions o;
    o.num_stops = 300;
    o.target_connections = 30000;
    o.seed = 42;
    tt = std::move(GenerateNetwork(o)).value();
    index = std::move(BuildTtlIndex(tt)).value();
    PtldbOptions options;
    options.device = DeviceProfile::SataSsd();
    db = std::move(PtldbDatabase::Build(index, options)).value();
    Rng rng(3);
    targets = rng.SampleDistinct(tt.num_stops(), 30);
    (void)db->AddTargetSet("T", index, targets, 16);
  }

  Timetable tt;
  TtlIndex index;
  std::unique_ptr<PtldbDatabase> db;
  std::vector<StopId> targets;
};

MicroFixture& Fixture() {
  static MicroFixture* fixture = new MicroFixture();
  return *fixture;
}

void BM_BTreeFind(benchmark::State& state) {
  auto& f = Fixture();
  const EngineTable* lout = f.db->engine()->FindTable("lout");
  BufferPool* pool = f.db->engine()->buffer_pool();
  Rng rng(1);
  for (auto _ : state) {
    const auto key = static_cast<IndexKey>(rng.NextBelow(f.tt.num_stops()));
    benchmark::DoNotOptimize(lout->Get(key, pool));
  }
}
BENCHMARK(BM_BTreeFind);

void BM_V2vEaWarmCache(benchmark::State& state) {
  auto& f = Fixture();
  Rng rng(2);
  for (auto _ : state) {
    const auto s = static_cast<StopId>(rng.NextBelow(f.tt.num_stops()));
    const auto g = static_cast<StopId>(rng.NextBelow(f.tt.num_stops()));
    benchmark::DoNotOptimize(f.db->EarliestArrival(s, g, f.tt.min_time()));
  }
}
BENCHMARK(BM_V2vEaWarmCache);

void BM_TtlEaInMemory(benchmark::State& state) {
  auto& f = Fixture();
  Rng rng(3);
  for (auto _ : state) {
    const auto s = static_cast<StopId>(rng.NextBelow(f.tt.num_stops()));
    const auto g = static_cast<StopId>(rng.NextBelow(f.tt.num_stops()));
    benchmark::DoNotOptimize(
        TtlEarliestArrival(f.index, s, g, f.tt.min_time()));
  }
}
BENCHMARK(BM_TtlEaInMemory);

void BM_EaKnnPlan(benchmark::State& state) {
  auto& f = Fixture();
  Rng rng(4);
  const auto k = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    const auto q = static_cast<StopId>(rng.NextBelow(f.tt.num_stops()));
    benchmark::DoNotOptimize(f.db->EaKnn("T", q, f.tt.min_time(), k));
  }
}
BENCHMARK(BM_EaKnnPlan)->Arg(1)->Arg(4)->Arg(16);

void BM_CsaEarliestArrivalScan(benchmark::State& state) {
  auto& f = Fixture();
  Rng rng(5);
  for (auto _ : state) {
    const auto s = static_cast<StopId>(rng.NextBelow(f.tt.num_stops()));
    benchmark::DoNotOptimize(EarliestArrivalScan(f.tt, s, f.tt.min_time()));
  }
}
BENCHMARK(BM_CsaEarliestArrivalScan);

void BM_ForwardProfile(benchmark::State& state) {
  auto& f = Fixture();
  Rng rng(6);
  for (auto _ : state) {
    const auto s = static_cast<StopId>(rng.NextBelow(f.tt.num_stops()));
    benchmark::DoNotOptimize(ForwardProfile(f.tt, s));
  }
}
BENCHMARK(BM_ForwardProfile);

void BM_TtlPreprocessing(benchmark::State& state) {
  GeneratorOptions o;
  o.num_stops = 120;
  o.target_connections = 8000;
  o.seed = 7;
  const Timetable tt = std::move(GenerateNetwork(o)).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildTtlIndex(tt));
  }
}
BENCHMARK(BM_TtlPreprocessing);

}  // namespace
}  // namespace ptldb

BENCHMARK_MAIN();
