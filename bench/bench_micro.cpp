// Microbenchmarks (google-benchmark) for the core primitives: B+Tree
// lookups, label-row fetches, the v2v merge join, in-memory TTL queries and
// the Connection Scan baseline. These calibrate where the CPU time in the
// paper-level figures is spent.
//
// With `--json PATH` the google-benchmark harness is bypassed: a tiny
// generator city runs one manually-timed pass over every phase (generate,
// TTL build, table build, target set, cold/warm v2v, kNN, one-to-many) and
// the run record — per-phase latencies plus the engine's full metrics
// snapshot — is written to PATH. CI validates that record's schema and
// that the tracked engine counters actually moved.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <new>
#include <thread>
#include <vector>

#include "baseline/csa.h"
#include "baseline/profile.h"
#include "bench_common.h"
#include "common/rng.h"
#include "ptldb/ptldb.h"
#include "ptldb/queries.h"
#include "timetable/generator.h"
#include "ttl/builder.h"
#include "ttl/query.h"

// ---- Allocation probe ----------------------------------------------------
// The binary's operator new/delete are replaced with counting versions so
// the --json mode can prove the warm compiled-VM query path honors the
// arena contract (DESIGN.md §13): zero heap allocations per warm v2v
// query, and for kNN only the materialized result vector. Storage still
// comes from malloc, so google-benchmark and the fixtures behave normally;
// the counter is thread-local and the measured sections run on one thread.
namespace {
thread_local uint64_t g_bench_thread_allocs = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_bench_thread_allocs;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  ++g_bench_thread_allocs;
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace ptldb {
namespace {

struct MicroFixture {
  MicroFixture() {
    GeneratorOptions o;
    o.num_stops = 300;
    o.target_connections = 30000;
    o.seed = 42;
    tt = std::move(GenerateNetwork(o)).value();
    index = std::move(BuildTtlIndex(tt)).value();
    PtldbOptions options;
    options.device = DeviceProfile::SataSsd();
    db = std::move(PtldbDatabase::Build(index, options)).value();
    Rng rng(3);
    targets = rng.SampleDistinct(tt.num_stops(), 30);
    (void)db->AddTargetSet("T", index, targets, 16);
  }

  Timetable tt;
  TtlIndex index;
  std::unique_ptr<PtldbDatabase> db;
  std::vector<StopId> targets;
};

MicroFixture& Fixture() {
  static MicroFixture* fixture = new MicroFixture();
  return *fixture;
}

void BM_BTreeFind(benchmark::State& state) {
  auto& f = Fixture();
  const EngineTable* lout = f.db->engine()->FindTable("lout");
  BufferPool* pool = f.db->engine()->buffer_pool();
  Rng rng(1);
  for (auto _ : state) {
    const auto key = static_cast<IndexKey>(rng.NextBelow(f.tt.num_stops()));
    benchmark::DoNotOptimize(lout->Get(key, pool));
  }
}
BENCHMARK(BM_BTreeFind);

void BM_V2vEaWarmCache(benchmark::State& state) {
  auto& f = Fixture();
  Rng rng(2);
  for (auto _ : state) {
    const auto s = static_cast<StopId>(rng.NextBelow(f.tt.num_stops()));
    const auto g = static_cast<StopId>(rng.NextBelow(f.tt.num_stops()));
    benchmark::DoNotOptimize(f.db->EarliestArrival(s, g, f.tt.min_time()));
  }
}
BENCHMARK(BM_V2vEaWarmCache);

void BM_V2vEaWarmCompressedLabels(benchmark::State& state) {
  auto& f = Fixture();
  static PtldbDatabase* cdb = [&] {
    PtldbOptions options;
    options.device = DeviceProfile::SataSsd();
    options.compressed_labels = true;
    return std::move(PtldbDatabase::Build(f.index, options)).value().release();
  }();
  Rng rng(2);
  for (auto _ : state) {
    const auto s = static_cast<StopId>(rng.NextBelow(f.tt.num_stops()));
    const auto g = static_cast<StopId>(rng.NextBelow(f.tt.num_stops()));
    benchmark::DoNotOptimize(cdb->EarliestArrival(s, g, f.tt.min_time()));
  }
}
BENCHMARK(BM_V2vEaWarmCompressedLabels);

void BM_TtlEaInMemory(benchmark::State& state) {
  auto& f = Fixture();
  Rng rng(3);
  for (auto _ : state) {
    const auto s = static_cast<StopId>(rng.NextBelow(f.tt.num_stops()));
    const auto g = static_cast<StopId>(rng.NextBelow(f.tt.num_stops()));
    benchmark::DoNotOptimize(
        TtlEarliestArrival(f.index, s, g, f.tt.min_time()));
  }
}
BENCHMARK(BM_TtlEaInMemory);

void BM_EaKnnPlan(benchmark::State& state) {
  auto& f = Fixture();
  Rng rng(4);
  const auto k = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    const auto q = static_cast<StopId>(rng.NextBelow(f.tt.num_stops()));
    benchmark::DoNotOptimize(f.db->EaKnn("T", q, f.tt.min_time(), k));
  }
}
BENCHMARK(BM_EaKnnPlan)->Arg(1)->Arg(4)->Arg(16);

void BM_CsaEarliestArrivalScan(benchmark::State& state) {
  auto& f = Fixture();
  Rng rng(5);
  for (auto _ : state) {
    const auto s = static_cast<StopId>(rng.NextBelow(f.tt.num_stops()));
    benchmark::DoNotOptimize(EarliestArrivalScan(f.tt, s, f.tt.min_time()));
  }
}
BENCHMARK(BM_CsaEarliestArrivalScan);

void BM_ForwardProfile(benchmark::State& state) {
  auto& f = Fixture();
  Rng rng(6);
  for (auto _ : state) {
    const auto s = static_cast<StopId>(rng.NextBelow(f.tt.num_stops()));
    benchmark::DoNotOptimize(ForwardProfile(f.tt, s));
  }
}
BENCHMARK(BM_ForwardProfile);

void BM_TtlPreprocessing(benchmark::State& state) {
  GeneratorOptions o;
  o.num_stops = 120;
  o.target_connections = 8000;
  o.seed = 7;
  const Timetable tt = std::move(GenerateNetwork(o)).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildTtlIndex(tt));
  }
}
BENCHMARK(BM_TtlPreprocessing);

/// Warm multi-threaded v2v throughput: `threads` workers each replay a
/// deterministic per-thread schedule of `per_thread` earliest-arrival
/// queries against the shared (already warm) database. Returns wall
/// seconds for the whole batch; items = threads * per_thread, so
/// qps = items / seconds. Used with threads=1 and threads=N to measure
/// how the sharded buffer pool scales with concurrent readers.
double RunConcurrentV2v(PtldbDatabase* db, const Timetable& tt,
                        uint32_t threads, uint32_t per_thread) {
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  const auto start = std::chrono::steady_clock::now();
  for (uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(t * 2654435761u + 101);
      for (uint32_t i = 0; i < per_thread; ++i) {
        const auto s = static_cast<StopId>(rng.NextBelow(tt.num_stops()));
        const auto g = static_cast<StopId>(rng.NextBelow(tt.num_stops()));
        if (!db->EarliestArrival(s, g, tt.min_time()).ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  if (failures.load() != 0) {
    std::fprintf(stderr, "[bench] %llu concurrent queries failed\n",
                 static_cast<unsigned long long>(failures.load()));
    std::exit(1);
  }
  return seconds;
}

/// Builds a phase record with p50/p95/p99 from per-query nanosecond
/// samples. Sorts `ns` in place.
BenchPhase PercentilePhase(const char* name, std::vector<uint64_t>& ns) {
  std::sort(ns.begin(), ns.end());
  uint64_t sum = 0;
  for (const uint64_t v : ns) sum += v;
  const auto pct = [&](double q) {
    const auto idx =
        static_cast<size_t>(q * static_cast<double>(ns.size() - 1) + 0.5);
    return static_cast<double>(ns[std::min(idx, ns.size() - 1)]) / 1e6;
  };
  BenchPhase phase;
  phase.name = name;
  phase.seconds = static_cast<double>(sum) / 1e9;
  phase.items = ns.size();
  phase.ms_per_item =
      static_cast<double>(sum) / 1e6 / static_cast<double>(ns.size());
  phase.has_percentiles = true;
  phase.p50_ms = pct(0.50);
  phase.p95_ms = pct(0.95);
  phase.p99_ms = pct(0.99);
  return phase;
}

/// The --json mode: one manually-timed pass over a tiny generator city.
/// Deterministic fixture (fixed seeds), so the emitted counters are stable
/// enough for CI to assert they are nonzero. With --concurrency N > 1 the
/// record additionally carries a single-thread and an N-thread warm v2v
/// throughput phase (mt_v2v_ea_c1 / mt_v2v_ea_cN) that CI compares.
int RunJsonMode(const std::string& path, uint32_t concurrency) {
  using Clock = std::chrono::steady_clock;
  BenchRunRecord record;
  record.bench = "bench_micro";
  record.git = GitDescribe();
  record.seed = 42;

  const auto timed = [&](const std::string& name, uint64_t items,
                         const std::function<void()>& fn) {
    const auto start = Clock::now();
    fn();
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    BenchPhase phase{name, seconds, items,
                     items > 0 ? seconds * 1e3 / static_cast<double>(items)
                               : 0.0};
    record.phases.push_back(phase);
  };

  GeneratorOptions o;
  o.num_stops = 150;
  o.target_connections = 9000;
  o.seed = 42;
  Timetable tt;
  timed("generate", o.num_stops,
        [&] { tt = std::move(GenerateNetwork(o)).value(); });
  TtlIndex index;
  timed("ttl_build", tt.num_stops(),
        [&] { index = std::move(BuildTtlIndex(tt)).value(); });
  std::unique_ptr<PtldbDatabase> db;
  timed("db_build", tt.num_stops(), [&] {
    PtldbOptions options;
    options.device = DeviceProfile::SataSsd();
    db = std::move(PtldbDatabase::Build(index, options)).value();
  });
  Rng rng(3);
  const auto targets = rng.SampleDistinct(tt.num_stops(), 20);
  timed("add_target_set", targets.size(), [&] {
    if (!db->AddTargetSet("T", index, targets, 8).ok()) std::exit(1);
  });

  constexpr uint32_t kQueries = 40;
  Rng qrng(7);
  const auto random_stop = [&] {
    return static_cast<StopId>(qrng.NextBelow(tt.num_stops()));
  };
  // Cold batches reset the pool and device stats (see TimeQueries); the
  // final warm batch leaves everything accumulated for the snapshot.
  const double v2v_cold = TimeQueries(db.get(), kQueries, [&](uint32_t) {
    (void)db->EarliestArrival(random_stop(), random_stop(), tt.min_time());
  });
  record.phases.push_back(
      {"v2v_ea_cold", v2v_cold * kQueries / 1e3, kQueries, v2v_cold});
  const double knn_ms = TimeQueries(db.get(), kQueries, [&](uint32_t) {
    (void)db->EaKnn("T", random_stop(), tt.min_time(), 4);
  });
  record.phases.push_back(
      {"ea_knn_cold", knn_ms * kQueries / 1e3, kQueries, knn_ms});
  const double otm_ms = TimeQueries(db.get(), kQueries, [&](uint32_t) {
    (void)db->EaOneToMany("T", random_stop(), tt.min_time());
  });
  record.phases.push_back(
      {"ea_otm_cold", otm_ms * kQueries / 1e3, kQueries, otm_ms});
  timed("v2v_ea_warm", kQueries, [&] {
    for (uint32_t i = 0; i < kQueries; ++i) {
      (void)db->EarliestArrival(random_stop(), random_stop(), tt.min_time());
    }
  });

  // Paired raw-vs-compressed warm v2v: a second database over the same
  // index with the RAM-resident label tier enabled, measured on an
  // identical query schedule right after the raw warm phase. The checker
  // requires the compressed phase to be no slower than the raw one and the
  // tier to actually have served (decode counters moved).
  std::unique_ptr<PtldbDatabase> cdb;
  timed("db_build_compressed", tt.num_stops(), [&] {
    PtldbOptions options;
    options.device = DeviceProfile::SataSsd();
    options.compressed_labels = true;
    cdb = std::move(PtldbDatabase::Build(index, options)).value();
  });
  constexpr uint64_t kWarmSchedule = 0xb5297a4d5dull;
  const auto warm_pass = [&](PtldbDatabase* target) {
    Rng wrng(kWarmSchedule);
    for (uint32_t i = 0; i < kQueries; ++i) {
      const auto s = static_cast<StopId>(wrng.NextBelow(tt.num_stops()));
      const auto g = static_cast<StopId>(wrng.NextBelow(tt.num_stops()));
      (void)target->EarliestArrival(s, g, tt.min_time());
    }
  };
  // This pair compares the label TIERS, so both sides are pinned to the
  // interpreter: the tier gate asserts the in-memory merge join beats the
  // volcano heap path, which only means something when the raw side
  // actually runs the volcano plan. (The executor comparison has its own
  // paired interp/vm phases below.)
  db->set_compiled_queries(false);
  cdb->set_compiled_queries(false);
  warm_pass(db.get());   // Heat the raw caches for the paired measurement.
  warm_pass(cdb.get());  // First pass decodes everything once.
  timed("v2v_ea_warm_raw_paired", kQueries, [&] { warm_pass(db.get()); });
  timed("v2v_ea_warm_compressed", kQueries, [&] { warm_pass(cdb.get()); });
  db->set_compiled_queries(true);
  cdb->set_compiled_queries(true);

  // Observability overhead: warm v2v with the query log + tail sampler
  // runtime-disabled vs enabled, on the SAME database so every other
  // condition (pool contents, compiled code, device profile) is shared.
  // Each query is timed individually and the two modes run in alternating
  // batches over identical per-mode schedules, so slow drift (frequency
  // scaling, background noise) hits both sides equally; the checker
  // compares the p50s, which batch means cannot provide.
  {
    constexpr uint32_t kObsRounds = 8;
    constexpr uint32_t kObsBatch = 250;
    constexpr uint64_t kObsSchedule = 0x0b5e77ull;
    QueryLog* qlog = db->query_log();
    std::vector<uint64_t> obs_ns[2];
    Rng obs_rng[2] = {Rng(kObsSchedule), Rng(kObsSchedule)};
    for (auto& v : obs_ns) v.reserve(kObsRounds * kObsBatch);
    {
      // Heat the schedule's pages once so neither mode pays first-touch.
      Rng heat(kObsSchedule);
      for (uint32_t i = 0; i < kObsBatch; ++i) {
        const auto s = static_cast<StopId>(heat.NextBelow(tt.num_stops()));
        const auto g = static_cast<StopId>(heat.NextBelow(tt.num_stops()));
        (void)db->EarliestArrival(s, g, tt.min_time());
      }
    }
    for (uint32_t round = 0; round < kObsRounds; ++round) {
      for (const int mode : {0, 1}) {
        qlog->set_enabled(mode == 1);
        for (uint32_t i = 0; i < kObsBatch; ++i) {
          const auto s =
              static_cast<StopId>(obs_rng[mode].NextBelow(tt.num_stops()));
          const auto g =
              static_cast<StopId>(obs_rng[mode].NextBelow(tt.num_stops()));
          const auto start = Clock::now();
          (void)db->EarliestArrival(s, g, tt.min_time());
          obs_ns[mode].push_back(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  Clock::now() - start)
                  .count()));
        }
      }
    }
    qlog->set_enabled(true);  // The final snapshot must see the log live.
    const char* names[2] = {"v2v_ea_warm_obs_off", "v2v_ea_warm_obs_on"};
    for (const int mode : {0, 1}) {
      record.phases.push_back(PercentilePhase(names[mode], obs_ns[mode]));
    }
  }

  // Paired interpreter-vs-VM warm phases: identical per-mode schedules on
  // the SAME database with only the executor toggled, run in alternating
  // batches (as above) so slow drift hits both sides equally. The checker
  // requires the compiled-VM p50 to beat the interpreter p50 by 1.2x on
  // both query shapes. The query log is disabled for the window so the
  // allocation probe sees the query path alone: warm compiled v2v must
  // not touch the heap at all, kNN only for the result vector.
  int64_t vm_v2v_allocs = -1;
  int64_t vm_knn_allocs = -1;
  constexpr uint32_t kVmRounds = 8;
  constexpr uint32_t kVmBatch = 250;
  {
    QueryLog* qlog = db->query_log();
    qlog->set_enabled(false);
    const auto paired = [&](const char* interp_name, const char* vm_name,
                            uint64_t schedule,
                            const std::function<void(Rng&)>& one_query)
        -> int64_t {
      std::vector<uint64_t> ns[2];
      Rng mode_rng[2] = {Rng(schedule), Rng(schedule)};
      for (auto& v : ns) v.reserve(kVmRounds * kVmBatch);
      // One batch per executor up front: heats the schedule's pages and
      // grows the VM's thread-local arena and scratch to steady state, so
      // the count below reflects the warm path, not first touch.
      for (const int mode : {0, 1}) {
        Rng heat(schedule);
        db->set_compiled_queries(mode == 1);
        for (uint32_t i = 0; i < kVmBatch; ++i) one_query(heat);
      }
      uint64_t allocs = 0;
      for (uint32_t round = 0; round < kVmRounds; ++round) {
        for (const int mode : {0, 1}) {
          db->set_compiled_queries(mode == 1);
          const uint64_t allocs0 = g_bench_thread_allocs;
          for (uint32_t i = 0; i < kVmBatch; ++i) {
            const auto start = Clock::now();
            one_query(mode_rng[mode]);
            ns[mode].push_back(static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    Clock::now() - start)
                    .count()));
          }
          if (mode == 1) allocs += g_bench_thread_allocs - allocs0;
        }
      }
      db->set_compiled_queries(true);
      record.phases.push_back(PercentilePhase(interp_name, ns[0]));
      record.phases.push_back(PercentilePhase(vm_name, ns[1]));
      return static_cast<int64_t>(allocs);
    };
    vm_v2v_allocs = paired(
        "v2v_ea_warm_interp", "v2v_ea_warm_vm", 0x5eedf00dull, [&](Rng& r) {
          const auto s = static_cast<StopId>(r.NextBelow(tt.num_stops()));
          const auto g = static_cast<StopId>(r.NextBelow(tt.num_stops()));
          (void)db->EarliestArrival(s, g, tt.min_time());
        });
    vm_knn_allocs = paired(
        "ea_knn_warm_interp", "ea_knn_warm_vm", 0xca11ab1eull, [&](Rng& r) {
          const auto q = static_cast<StopId>(r.NextBelow(tt.num_stops()));
          (void)db->EaKnn("T", q, tt.min_time(), 4);
        });
    qlog->set_enabled(true);
  }

  if (concurrency > 1) {
    // Warm throughput scaling: the same per-thread workload measured with
    // one worker and with `concurrency` workers. On the pre-shard pool a
    // single global latch serialized every fetch, so cN ~= c1; the sharded
    // pool must show real scaling (validated by check_bench_json.py).
    constexpr uint32_t kPerThread = 400;
    const double c1_s = RunConcurrentV2v(db.get(), tt, 1, kPerThread);
    record.phases.push_back({"mt_v2v_ea_c1", c1_s, kPerThread,
                             c1_s * 1e3 / kPerThread});
    const double cn_s = RunConcurrentV2v(db.get(), tt, concurrency,
                                         kPerThread);
    const uint64_t cn_items = static_cast<uint64_t>(concurrency) * kPerThread;
    record.phases.push_back(
        {"mt_v2v_ea_c" + std::to_string(concurrency), cn_s, cn_items,
         cn_s * 1e3 / static_cast<double>(cn_items)});
    std::fprintf(stderr,
                 "[bench] warm v2v throughput: c1 %.0f qps, c%u %.0f qps\n",
                 kPerThread / c1_s, concurrency,
                 static_cast<double>(cn_items) / cn_s);
  }

  record.metrics = db->Snapshot();
  // The label-tier numbers live in the compressed database's registry;
  // graft them into the record (the raw database has them absent/zero).
  const MetricsSnapshot csnap = cdb->Snapshot();
  for (const char* name : {"ttl.labels.decodes", "ttl.labels.decoded_bytes"}) {
    const auto it = csnap.counters.find(name);
    if (it != csnap.counters.end()) record.metrics.counters[name] = it->second;
  }
  for (const char* name :
       {"ttl.labels.bytes_resident", "ttl.labels.bytes_per_label",
        "ttl.labels.count", "ttl.labels.raw_bytes"}) {
    const auto it = csnap.gauges.find(name);
    if (it != csnap.gauges.end()) record.metrics.gauges[name] = it->second;
  }
  // Scaling expectations depend on the machine: a single-core runner can
  // never beat c1, it can only avoid collapsing. The checker reads this.
  record.metrics.gauges["bench.hardware_threads"] =
      static_cast<int64_t>(std::thread::hardware_concurrency());
  // Allocation-probe totals across the measured warm VM batches (query
  // log off). The checker divides by the query count and enforces the
  // arena contract: v2v exactly zero, kNN at most the result vector.
  record.metrics.gauges["bench.vm_warm_queries"] =
      static_cast<int64_t>(kVmRounds) * kVmBatch;
  record.metrics.gauges["bench.vm_v2v_warm_allocs"] = vm_v2v_allocs;
  record.metrics.gauges["bench.vm_knn_warm_allocs"] = vm_knn_allocs;
  const Status s = WriteBenchJson(record, path);
  if (!s.ok()) {
    std::fprintf(stderr, "--json: %s\n", s.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace ptldb

int main(int argc, char** argv) {
  // Peel off --json PATH and --concurrency N before google-benchmark sees
  // the arguments.
  std::string json_path;
  uint32_t concurrency = 1;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--concurrency") == 0 && i + 1 < argc) {
      concurrency = static_cast<uint32_t>(std::atoi(argv[++i]));
      if (concurrency == 0) concurrency = 1;
      continue;
    }
    args.push_back(argv[i]);
  }
  if (!json_path.empty()) return ptldb::RunJsonMode(json_path, concurrency);
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
