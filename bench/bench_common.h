#ifndef PTLDB_BENCH_BENCH_COMMON_H_
#define PTLDB_BENCH_BENCH_COMMON_H_

#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "ptldb/ptldb.h"
#include "timetable/generator.h"
#include "timetable/timetable.h"
#include "ttl/label.h"

namespace ptldb {

/// Shared configuration of the reproduction benchmarks (bench/*). Every
/// binary accepts:
///   --scale S       dataset scale vs. the paper's city sizes (default 0.06)
///   --queries N     random queries per measurement (paper: 1000;
///                   expensive sweeps cap some cells, noted in their output)
///   --cities A,B    subset of Table 7 city names (default: all 11)
///   --cache-dir D   where generated datasets + labels are cached
///   --seed S        RNG seed for datasets and workloads
///   --threads T     worker threads for TTL preprocessing and table builds
///                   (0 = one per hardware thread; output is identical for
///                   every value, so this only affects build speed)
struct BenchConfig {
  double scale = 0.06;
  uint32_t num_queries = 60;
  std::vector<std::string> cities;
  std::string cache_dir = "bench_cache";
  uint64_t seed = 1;
  uint32_t num_threads = 0;
};

/// Parses the common flags; exits with usage on errors.
BenchConfig ParseBenchArgs(int argc, char** argv);

/// City profiles selected by the config (all of Table 7 by default).
std::vector<const CityProfile*> SelectCities(const BenchConfig& config);

/// One benchmark dataset: a scaled city and its TTL index.
struct BenchDataset {
  std::string name;
  Timetable tt;
  TtlIndex index;
  /// TTL preprocessing seconds (measured when the cache entry was built).
  double preprocess_seconds = 0;
  uint64_t out_tuples = 0;
  uint64_t in_tuples = 0;
  uint64_t dummy_tuples = 0;
};

/// Generates (or reloads from the cache) the dataset of one city.
Result<BenchDataset> LoadOrBuildDataset(const CityProfile& profile,
                                        const BenchConfig& config);

/// Random workload times per Section 4 of the paper: starting timestamps
/// from the first quarter of the timetable's range, ending timestamps from
/// the fourth quarter.
Timestamp RandomEarlyTime(Rng* rng, const Timetable& tt);
Timestamp RandomLateTime(Rng* rng, const Timetable& tt);

/// Runs `fn(i)` for i in [0, n) against `db` with a cold cache and returns
/// the average per-query time in milliseconds: measured CPU time plus the
/// modeled device I/O time (see DESIGN.md on the storage simulation).
double TimeQueries(PtldbDatabase* db, uint32_t n,
                   const std::function<void(uint32_t)>& fn);

/// Builds a PtldbDatabase for a dataset on the given device profile.
/// `num_threads` parallelizes the derived-table builds of AddTargetSet
/// (0 = one per hardware thread, 1 = serial).
Result<std::unique_ptr<PtldbDatabase>> MakeBenchDb(const BenchDataset& data,
                                                   const DeviceProfile& device,
                                                   uint32_t num_threads = 1);

/// Markdown table helper: prints a header row and the separator.
void PrintTableHeader(const std::vector<std::string>& columns);
void PrintTableRow(const std::vector<std::string>& cells);

/// Formats milliseconds with three significant digits.
std::string Ms(double ms);

}  // namespace ptldb

#endif  // PTLDB_BENCH_BENCH_COMMON_H_
