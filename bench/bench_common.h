#ifndef PTLDB_BENCH_BENCH_COMMON_H_
#define PTLDB_BENCH_BENCH_COMMON_H_

#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "ptldb/ptldb.h"
#include "timetable/generator.h"
#include "timetable/timetable.h"
#include "ttl/label.h"

namespace ptldb {

/// Shared configuration of the reproduction benchmarks (bench/*). Every
/// binary accepts:
///   --scale S       dataset scale vs. the paper's city sizes (default 0.06)
///   --queries N     random queries per measurement (paper: 1000;
///                   expensive sweeps cap some cells, noted in their output)
///   --cities A,B    subset of Table 7 city names (default: all 11)
///   --cache-dir D   where generated datasets + labels are cached
///   --seed S        RNG seed for datasets and workloads
///   --threads T     worker threads for TTL preprocessing and table builds
///                   (0 = one per hardware thread; output is identical for
///                   every value, so this only affects build speed)
///   --json PATH     also write a machine-readable run record (phases,
///                   metrics snapshot, git revision) to PATH
struct BenchConfig {
  double scale = 0.06;
  uint32_t num_queries = 60;
  std::vector<std::string> cities;
  std::string cache_dir = "bench_cache";
  uint64_t seed = 1;
  uint32_t num_threads = 0;
  std::string json_path;  // Empty = no JSON output.
};

/// Parses the common flags; exits with usage on errors.
BenchConfig ParseBenchArgs(int argc, char** argv);

/// City profiles selected by the config (all of Table 7 by default).
std::vector<const CityProfile*> SelectCities(const BenchConfig& config);

/// One benchmark dataset: a scaled city and its TTL index.
struct BenchDataset {
  std::string name;
  Timetable tt;
  TtlIndex index;
  /// TTL preprocessing seconds (measured when the cache entry was built).
  double preprocess_seconds = 0;
  uint64_t out_tuples = 0;
  uint64_t in_tuples = 0;
  uint64_t dummy_tuples = 0;
};

/// Generates (or reloads from the cache) the dataset of one city.
Result<BenchDataset> LoadOrBuildDataset(const CityProfile& profile,
                                        const BenchConfig& config);

/// Random workload times per Section 4 of the paper: starting timestamps
/// from the first quarter of the timetable's range, ending timestamps from
/// the fourth quarter.
EventTime RandomEarlyTime(Rng* rng, const Timetable& tt);
EventTime RandomLateTime(Rng* rng, const Timetable& tt);

/// Runs `fn(i)` for i in [0, n) against `db` with a cold cache and returns
/// the average per-query time in milliseconds: measured CPU time plus the
/// modeled device I/O time (see DESIGN.md on the storage simulation).
///
/// Cold/warm measurement recipe:
///   - COLD: DropCaches() empties the buffer pool, then ResetIoStats()
///     zeroes ALL normal-operation device counters — read/wait/transfer
///     nanoseconds, read and sequential-read counts — plus the pool's
///     hit/miss/eviction counters, so io_time_ns() afterwards is exactly
///     the modeled I/O charged by the measured queries. (Injected-fault
///     counters survive resets; fault tests accumulate them across runs.)
///     This function applies that recipe before timing.
///   - WARM: run the same workload again WITHOUT DropCaches/ResetIoStats;
///     the pool stays populated, and the second run's wall time plus the
///     io_time_ns() delta across it is the warm figure.
double TimeQueries(PtldbDatabase* db, uint32_t n,
                   const std::function<void(uint32_t)>& fn);

/// Builds a PtldbDatabase for a dataset on the given device profile.
/// `num_threads` parallelizes the derived-table builds of AddTargetSet
/// (0 = one per hardware thread, 1 = serial).
Result<std::unique_ptr<PtldbDatabase>> MakeBenchDb(const BenchDataset& data,
                                                   const DeviceProfile& device,
                                                   uint32_t num_threads = 1);

/// Markdown table helper: prints a header row and the separator.
void PrintTableHeader(const std::vector<std::string>& columns);
void PrintTableRow(const std::vector<std::string>& cells);

/// Formats milliseconds with three significant digits.
std::string Ms(double ms);

/// One timed phase of a benchmark run (a build step, a query batch, ...).
struct BenchPhase {
  std::string name;
  double seconds = 0;      ///< Wall time (plus modeled I/O where noted).
  uint64_t items = 0;      ///< Queries/rows processed; 0 = not applicable.
  double ms_per_item = 0;  ///< Average latency when items > 0.

  /// Open-loop serving stats (bench_server): one phase per
  /// (workers, offered rate, priority class) cell of the latency /
  /// availability curve. Serialized only when `has_load` is set.
  /// Invariant the JSON checker enforces: ok + shed + deadline + errors
  /// == items — every submitted request was answered exactly once.
  bool has_load = false;
  double offered_qps = 0;  ///< Scheduled (open-loop) arrival rate.
  uint64_t workers = 0;    ///< Server worker threads during the phase.
  uint64_t ok = 0;         ///< Answered OK.
  uint64_t shed = 0;       ///< Rejected kOverloaded at admission.
  uint64_t deadline = 0;   ///< kDeadlineExceeded (in queue or mid-query).
  uint64_t errors = 0;     ///< Any other non-OK status.

  /// Per-query latency percentiles without the load-phase fields; set by
  /// micro phases that time each query individually (the observability
  /// overhead pair compares p50s, which a batch mean cannot provide).
  bool has_percentiles = false;
  double p50_ms = 0;       ///< Submit-to-response latency percentiles
  double p95_ms = 0;       ///< over the answered (ok) requests.
  double p99_ms = 0;
};

/// A machine-readable benchmark run: what ran, at which revision, the
/// per-phase latencies and the engine's metrics snapshot at the end.
/// Serialized by WriteBenchJson; validated by scripts/check_bench_json.py.
struct BenchRunRecord {
  std::string bench;  ///< Binary name, e.g. "bench_table7".
  std::string git;    ///< `git describe --always --dirty` or "unknown".
  double scale = 0;
  uint64_t seed = 0;
  std::vector<BenchPhase> phases;
  MetricsSnapshot metrics;
};

/// Best-effort `git describe --always --dirty`; "unknown" when git or the
/// repository is unavailable (e.g. running from an exported tarball).
std::string GitDescribe();

/// Writes `record` to `path` as a single JSON document.
Status WriteBenchJson(const BenchRunRecord& record, const std::string& path);

}  // namespace ptldb

#endif  // PTLDB_BENCH_BENCH_COMMON_H_
