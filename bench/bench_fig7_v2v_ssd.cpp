// Figure 7 of the paper: the same vertex-to-vertex experiment on an SSD.
// Expected shape: 3-20x faster than the HDD because the two label-row
// fetches are seek-bound.
#include "v2v_bench.h"

int main(int argc, char** argv) {
  return ptldb::RunV2vBench(argc, argv, ptldb::DeviceProfile::SataSsd(),
                            /*compare_hdd=*/true,
                            "Figure 7: EA/LD/SD v2v queries on SSD");
}
