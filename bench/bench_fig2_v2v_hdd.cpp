// Figure 2 of the paper: EA, LD and SD vertex-to-vertex queries on an HDD.
// Expected shape: LD faster than EA (fourth-quarter deadlines see fewer
// trips), SD slowest, everything dominated by two wide-row fetches
// (< ~20 ms at the paper's scale).
#include "v2v_bench.h"

int main(int argc, char** argv) {
  return ptldb::RunV2vBench(argc, argv, ptldb::DeviceProfile::Hdd7200(),
                            /*compare_hdd=*/false,
                            "Figure 2: EA/LD/SD v2v queries on HDD");
}
