// Figure 3 of the paper: speedup of the optimized kNN queries (Code 3/4,
// hour-bucketed knn_ea/knn_ld tables) over the naive ones (Code 2, one row
// per (hub, td)) for D = 0.01 and k in {1, 2, 4, 8, 16}. The paper reports
// 11-53x; the shape to reproduce is "optimized is an order of magnitude
// faster, for both EA and LD, across all datasets".
#include <cstdio>

#include "knn_bench.h"

using namespace ptldb;

int main(int argc, char** argv) {
  const BenchConfig config = ParseBenchArgs(argc, argv);
  std::printf(
      "# Figure 3: optimized vs naive kNN speedup (HDD, D=0.01, %u queries)\n\n",
      config.num_queries);
  PrintTableHeader({"Graph", "k", "EA naive (ms)", "EA opt (ms)",
                    "EA speedup", "LD naive (ms)", "LD opt (ms)",
                    "LD speedup"});
  for (const CityProfile* profile : SelectCities(config)) {
    auto data = LoadOrBuildDataset(*profile, config);
    if (!data.ok()) return 1;
    auto db = MakeBenchDb(*data, DeviceProfile::Hdd7200());
    if (!db.ok()) return 1;
    if (const auto s = AddFig34Sets(db->get(), *data, *profile, config.seed); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    Rng rng(config.seed * 31 + 5);
    // Naive queries scan large row ranges; cap their count to keep the
    // bench runtime sane (averages stabilize quickly).
    const uint32_t n_opt = config.num_queries;
    const uint32_t n_naive = std::min<uint32_t>(config.num_queries, 12);
    const KnnWorkload w = MakeKnnWorkload(&rng, data->tt, n_opt);

    for (const uint32_t k : {1u, 2u, 4u, 8u, 16u}) {
      const std::string set = SetForK(k);
      const double ea_opt = TimeQueries(db->get(), n_opt, [&](uint32_t i) {
        (void)(*db)->EaKnn(set, w.q[i], w.early[i], k);
      });
      const double ea_naive =
          TimeQueries(db->get(), n_naive, [&](uint32_t i) {
            (void)(*db)->EaKnnNaive(set, w.q[i], w.early[i], k);
          });
      const double ld_opt = TimeQueries(db->get(), n_opt, [&](uint32_t i) {
        (void)(*db)->LdKnn(set, w.q[i], w.late[i], k);
      });
      const double ld_naive =
          TimeQueries(db->get(), n_naive, [&](uint32_t i) {
            (void)(*db)->LdKnnNaive(set, w.q[i], w.late[i], k);
          });
      char kbuf[8], ea_s[16], ld_s[16];
      std::snprintf(kbuf, sizeof(kbuf), "%u", k);
      std::snprintf(ea_s, sizeof(ea_s), "%.1fx", ea_naive / ea_opt);
      std::snprintf(ld_s, sizeof(ld_s), "%.1fx", ld_naive / ld_opt);
      PrintTableRow({data->name, kbuf, Ms(ea_naive), Ms(ea_opt), ea_s,
                     Ms(ld_naive), Ms(ld_opt), ld_s});
    }
  }
  return 0;
}
