// Ablations for the design choices DESIGN.md calls out:
//  (a) vertex-ordering heuristic (degree / event-count / identity) — label
//      size and preprocessing time (Section 2.2's "strict vertex ordering");
//  (b) label-coverage pruning on/off — the PLL idea behind small labels;
//  (c) hour-bucket width of the knn tables (Section 3.2.1's tuning
//      discussion: smaller buckets = more rows, larger buckets = fatter
//      exp arrays; one hour is the paper's compromise).
#include <cstdio>

#include "knn_bench.h"
#include "ptldb/queries.h"
#include "ptldb/tables.h"
#include "ttl/builder.h"

using namespace ptldb;

int main(int argc, char** argv) {
  BenchConfig config = ParseBenchArgs(argc, argv);
  if (config.cities.empty()) config.cities = {"Austin", "SaltLakeCity"};

  std::printf("# Ablation (a): vertex-ordering heuristic\n\n");
  PrintTableHeader({"Graph", "ordering", "tuples/stop", "preproc (s)"});
  for (const CityProfile* profile : SelectCities(config)) {
    auto data = LoadOrBuildDataset(*profile, config);
    if (!data.ok()) return 1;
    const struct {
      OrderingStrategy strategy;
      const char* name;
    } strategies[] = {{OrderingStrategy::kDegree, "degree"},
                      {OrderingStrategy::kEventCount, "event-count"},
                      {OrderingStrategy::kIdentity, "identity"}};
    for (const auto& s : strategies) {
      TtlBuildOptions options;
      options.ordering = s.strategy;
      TtlBuildStats stats;
      auto index = BuildTtlIndex(data->tt, options, &stats);
      if (!index.ok()) return 1;
      char tuples[32], secs[32];
      std::snprintf(tuples, sizeof(tuples), "%.0f",
                    index->tuples_per_vertex());
      std::snprintf(secs, sizeof(secs), "%.2f", stats.preprocess_seconds);
      PrintTableRow({data->name, s.name, tuples, secs});
    }
  }

  std::printf("\n# Ablation (b): label-coverage pruning\n\n");
  PrintTableHeader({"Graph", "pruning", "tuples/stop", "preproc (s)"});
  for (const CityProfile* profile : SelectCities(config)) {
    auto data = LoadOrBuildDataset(*profile, config);
    if (!data.ok()) return 1;
    for (const bool prune : {true, false}) {
      TtlBuildOptions options;
      options.prune = prune;
      TtlBuildStats stats;
      auto index = BuildTtlIndex(data->tt, options, &stats);
      if (!index.ok()) return 1;
      char tuples[32], secs[32];
      std::snprintf(tuples, sizeof(tuples), "%.0f",
                    index->tuples_per_vertex());
      std::snprintf(secs, sizeof(secs), "%.2f", stats.preprocess_seconds);
      PrintTableRow({data->name, prune ? "on" : "off", tuples, secs});
    }
  }

  std::printf("\n# Ablation (c): knn_ea bucket width (D=0.01, k=4, HDD)\n\n");
  PrintTableHeader({"Graph", "bucket", "table rows", "table MiB",
                    "EA-kNN (ms)", "LD-kNN (ms)"});
  for (const CityProfile* profile : SelectCities(config)) {
    auto data = LoadOrBuildDataset(*profile, config);
    if (!data.ok()) return 1;
    auto db = MakeBenchDb(*data, DeviceProfile::Hdd7200());
    if (!db.ok()) return 1;
    Rng trng(config.seed * 104729 + 7);
    const auto targets = MakeTargets(&trng, data->tt, *profile, 0.01);
    Rng wrng(config.seed * 31 + 5);
    const KnnWorkload w = MakeKnnWorkload(&wrng, data->tt, config.num_queries);
    const struct {
      int32_t seconds;
      const char* label;
    } widths[] = {{900, "15min"},
                  {1800, "30min"},
                  {3600, "1h (paper)"},
                  {7200, "2h"},
                  {14400, "4h"}};
    for (const auto& width : widths) {
      char set[16];
      std::snprintf(set, sizeof(set), "b%d", width.seconds);
      if (!(*db)->AddTargetSet(set, data->index, targets, 4,
                               Duration::FromSeconds(width.seconds))
               .ok()) {
        return 1;
      }
      const EngineTable* table =
          (*db)->engine()->FindTable(KnnEaTableName(set));
      const EngineTable* ld_table =
          (*db)->engine()->FindTable(KnnLdTableName(set));
      const double ea_ms =
          TimeQueries(db->get(), config.num_queries, [&](uint32_t i) {
            (void)(*db)->EaKnn(set, w.q[i], w.early[i], 4);
          });
      const double ld_ms =
          TimeQueries(db->get(), config.num_queries, [&](uint32_t i) {
            (void)(*db)->LdKnn(set, w.q[i], w.late[i], 4);
          });
      char rows[32], mib[32];
      std::snprintf(rows, sizeof(rows), "%llu",
                    static_cast<unsigned long long>(table->num_rows()));
      std::snprintf(mib, sizeof(mib), "%.2f",
                    (table->size_bytes() + ld_table->size_bytes()) /
                        1048576.0);
      PrintTableRow({data->name, width.label, rows, mib, Ms(ea_ms),
                     Ms(ld_ms)});
    }
  }
  std::printf("\n# Ablation (d): v2v join strategy (warm cache, CPU only)\n\n");
  PrintTableHeader({"Graph", "plan", "EA (ms)", "LD (ms)", "SD (ms)"});
  for (const CityProfile* profile : SelectCities(config)) {
    auto data = LoadOrBuildDataset(*profile, config);
    if (!data.ok()) return 1;
    auto db = MakeBenchDb(*data, DeviceProfile::Ram());
    if (!db.ok()) return 1;
    Rng rng(config.seed * 7919 + 13);
    const uint32_t n = config.num_queries;
    std::vector<StopId> src(n), dst(n);
    std::vector<EventTime> early(n), late(n);
    for (uint32_t i = 0; i < n; ++i) {
      src[i] = static_cast<StopId>(rng.NextBelow(data->tt.num_stops()));
      dst[i] = static_cast<StopId>(rng.NextBelow(data->tt.num_stops()));
      if (dst[i] == src[i]) dst[i] = (dst[i] + 1) % data->tt.num_stops();
      early[i] = RandomEarlyTime(&rng, data->tt);
      late[i] = RandomLateTime(&rng, data->tt);
    }
    EngineDatabase* engine = (*db)->engine();
    for (const bool merge : {false, true}) {
      const double ea = TimeQueries(db->get(), n, [&](uint32_t i) {
        merge ? QueryV2vEaMergePlan(engine, src[i], dst[i], early[i])
              : QueryV2vEa(engine, src[i], dst[i], early[i]);
      });
      const double ld = TimeQueries(db->get(), n, [&](uint32_t i) {
        merge ? QueryV2vLdMergePlan(engine, src[i], dst[i], late[i])
              : QueryV2vLd(engine, src[i], dst[i], late[i]);
      });
      const double sd = TimeQueries(db->get(), n, [&](uint32_t i) {
        merge ? QueryV2vSdMergePlan(engine, src[i], dst[i], early[i], late[i])
              : QueryV2vSd(engine, src[i], dst[i], early[i], late[i]);
      });
      PrintTableRow({data->name, merge ? "merge (ordered arrays)"
                                       : "hash join (SQL-shaped)",
                     Ms(ea), Ms(ld), Ms(sd)});
    }
  }
  return 0;
}
