#ifndef PTLDB_BENCH_V2V_BENCH_H_
#define PTLDB_BENCH_V2V_BENCH_H_

#include <cstdio>

#include "bench_common.h"

namespace ptldb {

/// Shared body of the Figure 2 (HDD) and Figure 7 (SSD) vertex-to-vertex
/// experiments: per dataset, average EA/LD/SD query time over
/// config.num_queries random (s, g) pairs, with starting timestamps from
/// the first quarter of the range and deadlines from the fourth (Section 4
/// workload). When `compare_hdd` is true (Figure 7), also reports the
/// speedup vs. the HDD profile.
inline int RunV2vBench(int argc, char** argv, const DeviceProfile& device,
                       bool compare_hdd, const char* title) {
  const BenchConfig config = ParseBenchArgs(argc, argv);
  std::printf("# %s (device %s, scale %g, %u queries)\n\n", title,
              device.name.c_str(), config.scale, config.num_queries);
  std::vector<std::string> header{"Graph", "EA (ms)", "LD (ms)", "SD (ms)"};
  if (compare_hdd) {
    header.insert(header.end(),
                  {"EA speedup vs HDD", "LD speedup", "SD speedup"});
  }
  PrintTableHeader(header);

  for (const CityProfile* profile : SelectCities(config)) {
    auto data = LoadOrBuildDataset(*profile, config);
    if (!data.ok()) {
      std::fprintf(stderr, "%s: %s\n", profile->name,
                   data.status().ToString().c_str());
      return 1;
    }
    const auto run = [&](const DeviceProfile& dev, double out[3]) -> bool {
      auto db = MakeBenchDb(*data, dev);
      if (!db.ok()) return false;
      const uint32_t n = config.num_queries;
      std::vector<StopId> src(n);
      std::vector<StopId> dst(n);
      std::vector<EventTime> early(n);
      std::vector<EventTime> late(n);
      Rng rng(config.seed * 7919 + 13);
      for (uint32_t i = 0; i < n; ++i) {
        src[i] = static_cast<StopId>(rng.NextBelow(data->tt.num_stops()));
        dst[i] = static_cast<StopId>(rng.NextBelow(data->tt.num_stops()));
        if (dst[i] == src[i]) dst[i] = (dst[i] + 1) % data->tt.num_stops();
        early[i] = RandomEarlyTime(&rng, data->tt);
        late[i] = RandomLateTime(&rng, data->tt);
      }
      // Timing loops: only the latency matters, and with no fault policy
      // installed these queries cannot fail — dropping the answers is the
      // point of the measurement.
      out[0] = TimeQueries(db->get(), n, [&](uint32_t i) {
        PTLDB_IGNORE_STATUS((*db)->EarliestArrival(src[i], dst[i], early[i]));
      });
      out[1] = TimeQueries(db->get(), n, [&](uint32_t i) {
        PTLDB_IGNORE_STATUS((*db)->LatestDeparture(src[i], dst[i], late[i]));
      });
      out[2] = TimeQueries(db->get(), n, [&](uint32_t i) {
        PTLDB_IGNORE_STATUS(
            (*db)->ShortestDuration(src[i], dst[i], early[i], late[i]));
      });
      return true;
    };

    double times[3];
    if (!run(device, times)) return 1;
    std::vector<std::string> row{data->name, Ms(times[0]), Ms(times[1]),
                                 Ms(times[2])};
    if (compare_hdd) {
      double hdd[3];
      if (!run(DeviceProfile::Hdd7200(), hdd)) return 1;
      for (int i = 0; i < 3; ++i) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.1fx", hdd[i] / times[i]);
        row.push_back(buf);
      }
    }
    PrintTableRow(row);
  }
  return 0;
}

}  // namespace ptldb

#endif  // PTLDB_BENCH_V2V_BENCH_H_
