// Figure 8 of the paper: kNN queries for D = 0.01 and varying k on the SSD.
// Expected shape: essentially the SAME times as the HDD (Figure 4) — the
// kNN tables become buffer-resident after a handful of queries, so a
// faster device does not help ("we have effectively minimized secondary
// storage utilization for kNN queries").
#include <cstdio>

#include "knn_bench.h"

using namespace ptldb;

int main(int argc, char** argv) {
  const BenchConfig config = ParseBenchArgs(argc, argv);
  std::printf(
      "# Figure 8: kNN for D=0.01, varying k on SSD (vs HDD; %u queries)\n\n",
      config.num_queries);
  PrintTableHeader({"Graph", "k", "EA SSD (ms)", "EA HDD (ms)", "EA ratio",
                    "LD SSD (ms)", "LD HDD (ms)", "LD ratio"});
  for (const CityProfile* profile : SelectCities(config)) {
    auto data = LoadOrBuildDataset(*profile, config);
    if (!data.ok()) return 1;

    // One database per device profile.
    auto ssd = MakeBenchDb(*data, DeviceProfile::SataSsd());
    auto hdd = MakeBenchDb(*data, DeviceProfile::Hdd7200());
    if (!ssd.ok() || !hdd.ok()) return 1;
    if (!AddFig34Sets(ssd->get(), *data, *profile, config.seed).ok()) return 1;
    if (!AddFig34Sets(hdd->get(), *data, *profile, config.seed).ok()) return 1;
    Rng rng(config.seed * 31 + 5);
    const KnnWorkload w = MakeKnnWorkload(&rng, data->tt, config.num_queries);

    for (const uint32_t k : {1u, 4u, 16u}) {
      const std::string set = SetForK(k);
      const auto run = [&](PtldbDatabase* db, bool ea) {
        return TimeQueries(db, config.num_queries, [&](uint32_t i) {
          if (ea) {
            (void)db->EaKnn(set, w.q[i], w.early[i], k);
          } else {
            (void)db->LdKnn(set, w.q[i], w.late[i], k);
          }
        });
      };
      const double ea_ssd = run(ssd->get(), true);
      const double ea_hdd = run(hdd->get(), true);
      const double ld_ssd = run(ssd->get(), false);
      const double ld_hdd = run(hdd->get(), false);
      char kbuf[8], ea_r[16], ld_r[16];
      std::snprintf(kbuf, sizeof(kbuf), "%u", k);
      std::snprintf(ea_r, sizeof(ea_r), "%.2fx", ea_hdd / ea_ssd);
      std::snprintf(ld_r, sizeof(ld_r), "%.2fx", ld_hdd / ld_ssd);
      PrintTableRow({data->name, kbuf, Ms(ea_ssd), Ms(ea_hdd), ea_r,
                     Ms(ld_ssd), Ms(ld_hdd), ld_r});
    }
  }
  std::printf("\nRatios near 1.0x reproduce the paper's finding that the\n"
              "SSD adds no benefit for kNN queries.\n");
  return 0;
}
