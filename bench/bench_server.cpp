// Open-loop load harness for the serving layer (DESIGN.md §10).
//
// Offered load is generated on a fixed schedule that never waits for
// responses (open loop): a slow server cannot hide its backlog by slowing
// the generator down — the coordinated-omission trap a closed loop falls
// into. The schedule sweeps a fixed interactive (v2v) rate plus an
// expensive (kNN / one-to-many) rate from well under to 4x the measured
// expensive capacity, at 1 worker and at one-per-core, and each
// (workers, rate, class) cell reports p50/p95/p99 latency and the
// availability split ok / shed / deadline / error.
//
// The property the sweep demonstrates is shed-before-collapse: as offered
// load crosses capacity the expensive class degrades first and explicitly
// (fast kOverloaded rejections at admission) while interactive v2v
// availability and latency hold, because the queue reserves headroom for
// the interactive class and workers serve it first.
//
// Service time is made physically real — not just virtual device time —
// with FaultPolicy::read_delay_ns (a real wall-clock sleep per page read)
// and a deliberately tiny buffer pool, so "overload" is an actual
// resource shortage, not a simulation artifact.
//
// Dataset, workload and schedule all derive from --seed. Wall-clock
// latencies vary run to run, so scripts/check_bench_json.py asserts only
// the robust properties: exactly-once response accounting per phase, and
// interactive availability >= 99% at the highest overload point while
// the expensive class sheds.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/thread_annotations.h"
#include "server/server.h"

namespace ptldb {
namespace {

using Clock = std::chrono::steady_clock;

/// Real wall-clock cost per page read (FaultPolicy::read_delay_ns): makes
/// one query cost tens to hundreds of microseconds of worker time.
constexpr uint64_t kReadDelayNs = 20'000;
/// Tiny pool so the read delay keeps applying under steady load instead
/// of everything going warm after the first pass.
constexpr uint64_t kPoolPages = 256;
/// Interactive offered rate as a fraction of interactive capacity — kept
/// constant across the sweep (the expensive flood is the variable).
constexpr double kInteractiveFraction = 0.4;
/// Expensive offered rate multiples of expensive capacity.
constexpr double kMultiples[] = {0.25, 1.0, 2.0, 4.0};
/// Wall seconds of offered load per sweep point.
constexpr double kPhaseSeconds = 1.0;
/// Per-class submission cap per phase (memory/runtime bound; hit only if
/// the calibrated capacity is implausibly high). Capping is reported.
constexpr uint64_t kMaxPerClass = 50'000;

struct LoadPoint {
  uint32_t workers;
  double multiple;
};

/// Everything one scheduled request needs: when to submit and what.
struct ScheduledRequest {
  std::chrono::nanoseconds offset;
  QueryRequest request;
};

/// Response accounting for one (phase, class) cell. Counters are written
/// from server worker threads (callbacks), read after the phase drains.
struct ClassStats {
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> deadline{0};
  std::atomic<uint64_t> errors{0};
  Mutex mu;
  std::vector<uint64_t> latencies_ns PTLDB_GUARDED_BY(mu);

  void Record(const QueryResponse& resp, uint64_t latency_ns) {
    switch (resp.status.code()) {
      case Status::Code::kOk:
        ok.fetch_add(1, std::memory_order_relaxed);
        {
          MutexLock lock(mu);
          latencies_ns.push_back(latency_ns);
        }
        break;
      case Status::Code::kOverloaded:
        shed.fetch_add(1, std::memory_order_relaxed);
        break;
      case Status::Code::kDeadlineExceeded:
        deadline.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        errors.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  }
};

double PercentileMs(const std::vector<uint64_t>& sorted_ns, double q) {
  if (sorted_ns.empty()) return 0;
  const auto idx = static_cast<size_t>(
      q * static_cast<double>(sorted_ns.size() - 1) + 0.5);
  return static_cast<double>(sorted_ns[std::min(idx, sorted_ns.size() - 1)]) /
         1e6;
}

QueryRequest MakeInteractive(Rng* rng, const Timetable& tt) {
  QueryRequest r;
  r.type = QueryType::kV2vEa;
  r.s = static_cast<StopId>(rng->NextBelow(tt.num_stops()));
  r.g = static_cast<StopId>(rng->NextBelow(tt.num_stops()));
  r.t = RandomEarlyTime(rng, tt);
  return r;
}

QueryRequest MakeExpensive(Rng* rng, const Timetable& tt, uint32_t i) {
  QueryRequest r;
  r.type = (i % 2 == 0) ? QueryType::kEaKnn : QueryType::kEaOtm;
  r.set_name = "T";
  r.s = static_cast<StopId>(rng->NextBelow(tt.num_stops()));
  r.t = RandomEarlyTime(rng, tt);
  r.k = 4;
  return r;
}

/// Average wall milliseconds of `n` serial queries — the capacity basis.
/// Includes the injected read delay, which is where the time goes.
template <typename Fn>
double CalibrateMs(uint32_t n, const Fn& fn) {
  const auto start = Clock::now();
  for (uint32_t i = 0; i < n; ++i) fn(i);
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
             .count() /
         n;
}

/// Runs one open-loop phase: submits `schedule` against `server` at the
/// scheduled instants, waits for every response, fills `stats`.
/// Returns the wall seconds of the submit window.
double RunOpenLoopPhase(PtldbServer* server,
                        const std::vector<ScheduledRequest>& schedule,
                        const std::vector<bool>& expensive_of,
                        ClassStats* interactive, ClassStats* expensive) {
  std::atomic<uint64_t> responded{0};
  const auto start = Clock::now();
  for (size_t i = 0; i < schedule.size(); ++i) {
    // Open loop: sleep until the scheduled instant (no-op when behind
    // schedule) and submit regardless of how many responses are pending.
    std::this_thread::sleep_until(start + schedule[i].offset);
    const auto submitted = Clock::now();
    ClassStats* stats = expensive_of[i] ? expensive : interactive;
    server->Submit(schedule[i].request,
                   [stats, submitted, &responded](QueryResponse resp) {
                     const auto latency_ns = static_cast<uint64_t>(
                         std::chrono::duration_cast<std::chrono::nanoseconds>(
                             Clock::now() - submitted)
                             .count());
                     stats->Record(resp, latency_ns);
                     responded.fetch_add(1, std::memory_order_release);
                   });
  }
  const double submit_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  // Drain: every Submit answers exactly once, so this terminates unless
  // the server wedged — which is precisely a bench failure.
  const auto drain_deadline = Clock::now() + std::chrono::seconds(30);
  while (responded.load(std::memory_order_acquire) < schedule.size()) {
    if (Clock::now() >= drain_deadline) {
      std::fprintf(stderr,
                   "bench_server: wedged — %llu of %zu responses after 30s\n",
                   static_cast<unsigned long long>(responded.load()),
                   schedule.size());
      std::abort();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return submit_seconds;
}

BenchPhase MakeLoadPhase(const std::string& name, uint32_t workers,
                         double offered_qps, double seconds,
                         uint64_t submitted, ClassStats* stats) {
  BenchPhase phase;
  phase.name = name;
  phase.seconds = seconds;
  phase.items = submitted;
  phase.has_load = true;
  phase.offered_qps = offered_qps;
  phase.workers = workers;
  phase.ok = stats->ok.load();
  phase.shed = stats->shed.load();
  phase.deadline = stats->deadline.load();
  phase.errors = stats->errors.load();
  std::vector<uint64_t> lat;
  {
    MutexLock lock(stats->mu);
    lat = stats->latencies_ns;
  }
  std::sort(lat.begin(), lat.end());
  if (!lat.empty()) {
    uint64_t sum = 0;
    for (const uint64_t v : lat) sum += v;
    phase.ms_per_item =
        static_cast<double>(sum) / static_cast<double>(lat.size()) / 1e6;
  }
  phase.p50_ms = PercentileMs(lat, 0.50);
  phase.p95_ms = PercentileMs(lat, 0.95);
  phase.p99_ms = PercentileMs(lat, 0.99);
  return phase;
}

int Run(const BenchConfig& config) {
  const std::vector<const CityProfile*> cities = SelectCities(config);
  // A serving sweep needs one dataset, not the Table 7 tour: the first
  // selected city (pass --cities to pick another).
  const CityProfile& profile = *cities.front();
  auto data = LoadOrBuildDataset(profile, config);
  if (!data.ok()) {
    std::fprintf(stderr, "dataset: %s\n", data.status().ToString().c_str());
    return 1;
  }
  const Timetable& tt = data->tt;

  PtldbOptions options;
  options.device = DeviceProfile::SataSsd();
  options.buffer_pool_pages = kPoolPages;
  options.num_threads = config.num_threads;
  auto built = PtldbDatabase::Build(data->index, options);
  if (!built.ok()) {
    std::fprintf(stderr, "build: %s\n", built.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<PtldbDatabase> db = std::move(built).value();
  Rng target_rng(config.seed + 17);
  const auto num_targets =
      std::min<uint32_t>(32, std::max<uint32_t>(4, tt.num_stops() / 4));
  const std::vector<StopId> targets =
      target_rng.SampleDistinct(tt.num_stops(), num_targets);
  if (const Status s = db->AddTargetSet("T", data->index, targets, 8);
      !s.ok()) {
    std::fprintf(stderr, "AddTargetSet: %s\n", s.ToString().c_str());
    return 1;
  }
  // Service cost becomes real wall time from here on (calibration and
  // serving measure the same physics; the table builds above did not).
  FaultPolicy delay;
  delay.read_delay_ns = kReadDelayNs;
  db->engine()->device()->set_fault_policy(delay);

  BenchRunRecord record;
  record.bench = "bench_server";
  record.git = GitDescribe();
  record.scale = config.scale;
  record.seed = config.seed;

  // --- Calibration: serial per-class service time -> capacity basis ---
  Rng cal_rng(config.seed + 23);
  const uint32_t cal_n = std::max<uint32_t>(8, config.num_queries);
  const double int_ms = CalibrateMs(cal_n, [&](uint32_t) {
    const QueryRequest r = MakeInteractive(&cal_rng, tt);
    if (const auto res = db->EarliestArrival(r.s, r.g, r.t); !res.ok()) {
      std::fprintf(stderr, "calibrate v2v: %s\n",
                   res.status().ToString().c_str());
      std::exit(1);
    }
  });
  const double exp_ms = CalibrateMs(cal_n, [&](uint32_t i) {
    const QueryRequest r = MakeExpensive(&cal_rng, tt, i);
    const auto res = r.type == QueryType::kEaKnn
                         ? db->EaKnn(r.set_name, r.s, r.t, r.k)
                         : db->EaOneToMany(r.set_name, r.s, r.t);
    if (!res.ok()) {
      std::fprintf(stderr, "calibrate set query: %s\n",
                   res.status().ToString().c_str());
      std::exit(1);
    }
  });
  record.phases.push_back({"calibrate_int", int_ms * cal_n / 1e3, cal_n,
                           int_ms});
  record.phases.push_back({"calibrate_exp", exp_ms * cal_n / 1e3, cal_n,
                           exp_ms});
  std::printf("## bench_server — open-loop serving sweep (%s, scale %g)\n\n",
              profile.name, config.scale);
  std::printf("serial service time: interactive %s ms, expensive %s ms\n\n",
              Ms(int_ms).c_str(), Ms(exp_ms).c_str());

  // --- Sweep: (workers, expensive multiple) grid ---
  std::vector<uint32_t> worker_counts = {1};
  const uint32_t cores = std::max(1u, std::thread::hardware_concurrency());
  if (cores > 1) worker_counts.push_back(cores);

  PrintTableHeader({"workers", "x cap", "class", "offered qps", "ok", "shed",
                    "dl", "err", "p50 ms", "p95 ms", "p99 ms"});
  for (const uint32_t workers : worker_counts) {
    const double cap_int = workers * 1000.0 / int_ms;
    const double cap_exp = workers * 1000.0 / exp_ms;
    for (const double multiple : kMultiples) {
      const double offered_int = kInteractiveFraction * cap_int;
      const double offered_exp = multiple * cap_exp;
      const auto n_int = static_cast<uint64_t>(
          std::min<double>(offered_int * kPhaseSeconds, kMaxPerClass));
      const auto n_exp = static_cast<uint64_t>(
          std::min<double>(offered_exp * kPhaseSeconds, kMaxPerClass));
      if (offered_int * kPhaseSeconds > kMaxPerClass ||
          offered_exp * kPhaseSeconds > kMaxPerClass) {
        std::fprintf(stderr,
                     "[bench] capped a phase at %llu submissions/class\n",
                     static_cast<unsigned long long>(kMaxPerClass));
      }

      // Deterministic interleaved schedule: each class is an arithmetic
      // sequence of instants; the merge is sorted by (offset, class).
      Rng rng_int(config.seed + 1000 + workers * 31 +
                  static_cast<uint64_t>(multiple * 4));
      Rng rng_exp(config.seed + 2000 + workers * 31 +
                  static_cast<uint64_t>(multiple * 4));
      std::vector<ScheduledRequest> schedule;
      std::vector<bool> expensive_of;
      schedule.reserve(n_int + n_exp);
      const auto interval_ns = [](double qps) {
        return static_cast<int64_t>(1e9 / std::max(qps, 1.0));
      };
      size_t ii = 0, ei = 0;
      while (ii < n_int || ei < n_exp) {
        const int64_t next_int =
            ii < n_int ? static_cast<int64_t>(ii) * interval_ns(offered_int)
                       : INT64_MAX;
        const int64_t next_exp =
            ei < n_exp ? static_cast<int64_t>(ei) * interval_ns(offered_exp)
                       : INT64_MAX;
        ScheduledRequest sr;
        if (next_int <= next_exp) {
          sr.offset = std::chrono::nanoseconds(next_int);
          sr.request = MakeInteractive(&rng_int, tt);
          expensive_of.push_back(false);
          ++ii;
        } else {
          sr.offset = std::chrono::nanoseconds(next_exp);
          sr.request = MakeExpensive(&rng_exp, tt, static_cast<uint32_t>(ei));
          expensive_of.push_back(true);
          ++ei;
        }
        schedule.push_back(std::move(sr));
      }

      // Fresh server per sweep point: controller state (shed flag,
      // windowed p99) must not leak from one load level into the next.
      ServerOptions so;
      so.num_workers = workers;
      so.queue_capacity = 64;
      so.expensive_admit_fraction = 0.5;
      so.interactive_slo = std::chrono::milliseconds(25);
      PtldbServer server(db.get(), so);

      ClassStats interactive, expensive;
      const double seconds = RunOpenLoopPhase(&server, schedule, expensive_of,
                                              &interactive, &expensive);
      server.Shutdown();

      char suffix[64];
      std::snprintf(suffix, sizeof(suffix), "serve_w%u_x%g", workers,
                    multiple);
      const BenchPhase pi =
          MakeLoadPhase(std::string(suffix) + "_int", workers, offered_int,
                        seconds, n_int, &interactive);
      const BenchPhase pe =
          MakeLoadPhase(std::string(suffix) + "_exp", workers, offered_exp,
                        seconds, n_exp, &expensive);
      record.phases.push_back(pi);
      record.phases.push_back(pe);
      for (const BenchPhase* p : {&pi, &pe}) {
        char qps[32];
        std::snprintf(qps, sizeof(qps), "%.0f", p->offered_qps);
        char mult[16];
        std::snprintf(mult, sizeof(mult), "%g", multiple);
        PrintTableRow({std::to_string(workers), mult,
                       p == &pi ? "int" : "exp", qps, std::to_string(p->ok),
                       std::to_string(p->shed), std::to_string(p->deadline),
                       std::to_string(p->errors), Ms(p->p50_ms),
                       Ms(p->p95_ms), Ms(p->p99_ms)});
      }
    }
  }

  record.metrics = db->metrics()->Snapshot();

  // --- Observability summary over the whole sweep ---
  // Queue-wait percentiles come from the server's per-class histograms;
  // the shed-cause breakdown from the admission counters. Both live in
  // the registry snapshot, so the JSON record carries them for
  // check_bench_json.py's exactly-once and retention gates.
  std::printf("\nqueue wait per class (whole sweep):\n\n");
  PrintTableHeader({"class", "count", "p50 ms", "p95 ms", "p99 ms"});
  for (const char* cls : {"interactive", "expensive"}) {
    const auto it = record.metrics.histograms.find(
        std::string("server.queue_wait.") + cls + "_ns");
    if (it == record.metrics.histograms.end()) continue;
    const auto& h = it->second;
    PrintTableRow({cls, std::to_string(h.count), Ms(h.p50 / 1e6),
                   Ms(h.p95 / 1e6), Ms(h.p99 / 1e6)});
  }
  std::printf("\nshed causes and request outcomes:\n\n");
  PrintTableHeader({"counter", "count"});
  for (const char* name :
       {"server.rejected.cause.shed", "server.rejected.cause.queue_full",
        "server.rejected.cause.headroom", "server.rejected.cause.stopping",
        "querylog.outcome.ok", "querylog.outcome.shed",
        "querylog.outcome.deadline", "querylog.outcome.error",
        "traces.retained.slow", "traces.retained.shed",
        "traces.retained.deadline", "traces.retained.error",
        "traces.retained.sampled"}) {
    const auto it = record.metrics.counters.find(name);
    PrintTableRow({name, std::to_string(
                             it == record.metrics.counters.end()
                                 ? 0
                                 : it->second)});
  }

  if (!config.json_path.empty()) {
    if (const Status s = WriteBenchJson(record, config.json_path); !s.ok()) {
      std::fprintf(stderr, "json: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", config.json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace ptldb

int main(int argc, char** argv) {
  const ptldb::BenchConfig config = ptldb::ParseBenchArgs(argc, argv);
  return ptldb::Run(config);
}
