#include "bench_common.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "common/binary_io.h"
#include "common/string_util.h"
#include "timetable/serialize.h"
#include "ttl/builder.h"
#include "ttl/serialize.h"

namespace ptldb {

BenchConfig ParseBenchArgs(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scale") {
      config.scale = std::atof(next().c_str());
    } else if (arg == "--queries") {
      config.num_queries = static_cast<uint32_t>(std::atoi(next().c_str()));
    } else if (arg == "--cities") {
      for (const std::string& c : Split(next(), ',')) {
        config.cities.push_back(c);
      }
    } else if (arg == "--cache-dir") {
      config.cache_dir = next();
    } else if (arg == "--seed") {
      config.seed = static_cast<uint64_t>(std::atoll(next().c_str()));
    } else if (arg == "--threads") {
      config.num_threads = static_cast<uint32_t>(std::atoi(next().c_str()));
    } else if (arg == "--json") {
      config.json_path = next();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--scale S] [--queries N] [--cities A,B] "
                   "[--cache-dir D] [--seed S] [--threads T] [--json PATH]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  if (config.scale <= 0 || config.scale > 1.0 || config.num_queries == 0) {
    std::fprintf(stderr, "bad --scale/--queries\n");
    std::exit(2);
  }
  return config;
}

std::vector<const CityProfile*> SelectCities(const BenchConfig& config) {
  std::vector<const CityProfile*> out;
  if (config.cities.empty()) {
    for (const CityProfile& p : kCityProfiles) out.push_back(&p);
    return out;
  }
  for (const std::string& name : config.cities) {
    const CityProfile* p = FindCityProfile(name);
    if (p == nullptr) {
      std::fprintf(stderr, "unknown city %s\n", name.c_str());
      std::exit(2);
    }
    out.push_back(p);
  }
  return out;
}

namespace {

std::string CacheBase(const CityProfile& profile, const BenchConfig& config) {
  std::ostringstream ss;
  ss << config.cache_dir << "/" << profile.name << "_s" << config.scale
     << "_r" << config.seed;
  return ss.str();
}

constexpr uint64_t kMetaMagic = 0x50544C424D455431ULL;  // "PTLBMET1"

}  // namespace

Result<BenchDataset> LoadOrBuildDataset(const CityProfile& profile,
                                        const BenchConfig& config) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(config.cache_dir, ec);
  const std::string base = CacheBase(profile, config);
  const std::string tt_path = base + ".tt";
  const std::string ttl_path = base + ".ttl";
  const std::string meta_path = base + ".meta";

  BenchDataset data;
  data.name = profile.name;
  if (fs::exists(tt_path) && fs::exists(ttl_path) && fs::exists(meta_path)) {
    auto tt = LoadTimetable(tt_path);
    auto index = LoadTtlIndex(ttl_path);
    BinaryReader meta(meta_path);
    if (tt.ok() && index.ok() && meta.ok() &&
        meta.Read<uint64_t>() == kMetaMagic) {
      data.tt = std::move(*tt);
      data.index = std::move(*index);
      data.preprocess_seconds = meta.Read<double>();
      data.out_tuples = meta.Read<uint64_t>();
      data.in_tuples = meta.Read<uint64_t>();
      data.dummy_tuples = meta.Read<uint64_t>();
      if (meta.ok()) return data;
    }
    std::fprintf(stderr, "[bench] stale cache for %s, rebuilding\n",
                 profile.name);
  }

  std::fprintf(stderr, "[bench] building %s (scale %.3g)...\n", profile.name,
               config.scale);
  auto tt = GenerateNetwork(CityOptions(profile, config.scale, config.seed));
  if (!tt.ok()) return tt.status();
  TtlBuildStats stats;
  TtlBuildOptions build_options;
  build_options.num_threads = config.num_threads;
  auto index = BuildTtlIndex(*tt, build_options, &stats);
  if (!index.ok()) return index.status();
  data.tt = std::move(*tt);
  data.index = std::move(*index);
  data.preprocess_seconds = stats.preprocess_seconds;
  data.out_tuples = stats.out_tuples;
  data.in_tuples = stats.in_tuples;
  data.dummy_tuples = stats.dummy_tuples;

  PTLDB_RETURN_IF_ERROR(SaveTimetable(data.tt, tt_path));
  PTLDB_RETURN_IF_ERROR(SaveTtlIndex(data.index, ttl_path));
  BinaryWriter meta(meta_path);
  meta.Write(kMetaMagic);
  meta.Write(data.preprocess_seconds);
  meta.Write(data.out_tuples);
  meta.Write(data.in_tuples);
  meta.Write(data.dummy_tuples);
  PTLDB_RETURN_IF_ERROR(meta.Finish());
  return data;
}

EventTime RandomEarlyTime(Rng* rng, const Timetable& tt) {
  const Duration span = tt.max_time() - tt.min_time();
  return tt.min_time() +
         Duration::FromSeconds(static_cast<int64_t>(rng->NextBelow(
             static_cast<uint64_t>(span.raw_seconds() / 4) + 1)));
}

EventTime RandomLateTime(Rng* rng, const Timetable& tt) {
  const Duration span = tt.max_time() - tt.min_time();
  return tt.max_time() -
         Duration::FromSeconds(static_cast<int64_t>(rng->NextBelow(
             static_cast<uint64_t>(span.raw_seconds() / 4) + 1)));
}

double TimeQueries(PtldbDatabase* db, uint32_t n,
                   const std::function<void(uint32_t)>& fn) {
  // A failed drop means live pins: the cache is half-warm and every
  // cold-cache number this run would print is a lie. Fail the bench.
  const Status dropped = db->DropCaches();
  if (!dropped.ok()) {
    std::fprintf(stderr, "TimeQueries: DropCaches failed: %s\n",
                 dropped.ToString().c_str());
    std::abort();
  }
  db->ResetIoStats();
  const auto start = std::chrono::steady_clock::now();
  for (uint32_t i = 0; i < n; ++i) fn(i);
  const auto end = std::chrono::steady_clock::now();
  const double cpu_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  const double io_ms = static_cast<double>(db->io_time_ns()) / 1e6;
  return (cpu_ms + io_ms) / n;
}

Result<std::unique_ptr<PtldbDatabase>> MakeBenchDb(
    const BenchDataset& data, const DeviceProfile& device,
    uint32_t num_threads) {
  PtldbOptions options;
  options.device = device;
  options.num_threads = num_threads;
  return PtldbDatabase::Build(data.index, options);
}

void PrintTableHeader(const std::vector<std::string>& columns) {
  std::string row = "|";
  std::string sep = "|";
  for (const auto& c : columns) {
    row += " " + c + " |";
    sep += "---|";
  }
  std::printf("%s\n%s\n", row.c_str(), sep.c_str());
}

void PrintTableRow(const std::vector<std::string>& cells) {
  std::string row = "|";
  for (const auto& c : cells) row += " " + c + " |";
  std::printf("%s\n", row.c_str());
  std::fflush(stdout);
}

std::string Ms(double ms) {
  char buf[32];
  if (ms >= 100) {
    std::snprintf(buf, sizeof(buf), "%.0f", ms);
  } else if (ms >= 10) {
    std::snprintf(buf, sizeof(buf), "%.1f", ms);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", ms);
  }
  return buf;
}

namespace {

std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += '"';
  return out;
}

std::string JsonDouble(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::string GitDescribe() {
  FILE* pipe = popen("git describe --always --dirty 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buf[128] = {0};
  std::string out;
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) out += buf;
  const int status = pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  if (status != 0 || out.empty()) return "unknown";
  return out;
}

Status WriteBenchJson(const BenchRunRecord& record, const std::string& path) {
  std::string json = "{\n";
  json += "  \"bench\": " + JsonString(record.bench) + ",\n";
  json += "  \"git\": " + JsonString(record.git) + ",\n";
  json += "  \"scale\": " + JsonDouble(record.scale) + ",\n";
  json += "  \"seed\": " + std::to_string(record.seed) + ",\n";
  json += "  \"phases\": [";
  for (size_t i = 0; i < record.phases.size(); ++i) {
    const BenchPhase& p = record.phases[i];
    json += i == 0 ? "\n" : ",\n";
    json += "    {\"name\": " + JsonString(p.name) +
            ", \"seconds\": " + JsonDouble(p.seconds) +
            ", \"items\": " + std::to_string(p.items) +
            ", \"ms_per_item\": " + JsonDouble(p.ms_per_item);
    if (p.has_load) {
      json += ",\n     \"offered_qps\": " + JsonDouble(p.offered_qps) +
              ", \"workers\": " + std::to_string(p.workers) +
              ", \"ok\": " + std::to_string(p.ok) +
              ", \"shed\": " + std::to_string(p.shed) +
              ", \"deadline\": " + std::to_string(p.deadline) +
              ", \"errors\": " + std::to_string(p.errors) +
              ",\n     \"p50_ms\": " + JsonDouble(p.p50_ms) +
              ", \"p95_ms\": " + JsonDouble(p.p95_ms) +
              ", \"p99_ms\": " + JsonDouble(p.p99_ms);
    } else if (p.has_percentiles) {
      json += ",\n     \"p50_ms\": " + JsonDouble(p.p50_ms) +
              ", \"p95_ms\": " + JsonDouble(p.p95_ms) +
              ", \"p99_ms\": " + JsonDouble(p.p99_ms);
    }
    json += "}";
  }
  json += record.phases.empty() ? "],\n" : "\n  ],\n";
  json += "  \"metrics\": " + record.metrics.ToJson() + "\n";
  json += "}\n";

  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return Status::IoError("short write to " + path);
  }
  return Status::Ok();
}

}  // namespace ptldb
