// Quickstart: build the paper's Figure-1 example network, construct the TTL
// labels, load them into a PTLDB database and run every query type.
//
//   ./quickstart
#include <cstdio>

#include "ptldb/ptldb.h"
#include "timetable/example_graph.h"
#include "ttl/builder.h"

int main() {
  using namespace ptldb;

  // 1. A timetable: 7 stops, 4 trips (Figure 1 of the paper).
  const Timetable tt = MakeExampleTimetable();
  std::printf("Network: %u stops, %u trips, %u connections\n", tt.num_stops(),
              tt.num_trips(), tt.num_connections());

  // 2. TTL preprocessing (Section 2.2) with the paper's vertex order.
  TtlBuildOptions build_options;
  build_options.custom_order = ExampleVertexOrder();
  TtlBuildStats stats;
  auto index = BuildTtlIndex(tt, build_options, &stats);
  if (!index.ok()) {
    std::fprintf(stderr, "TTL build failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  std::printf("TTL labels: %.1f tuples/stop (built in %.3fs)\n",
              index->tuples_per_vertex(), stats.preprocess_seconds);

  // 3. PTLDB database (Section 3) on the simulated HDD.
  auto db = PtldbDatabase::Build(*index);
  if (!db.ok()) {
    std::fprintf(stderr, "PTLDB build failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }

  // 4. Vertex-to-vertex queries (Code 1).
  const EventTime depart = EventTime::FromSeconds(28800);
  const EventTime ea = *(*db)->EarliestArrival(5, 6, depart);
  std::printf("EA(5 -> 6, depart >= %s): arrive %s\n",
              FormatTime(depart).c_str(), FormatTime(ea).c_str());
  const EventTime by = EventTime::FromSeconds(43200);
  const EventTime ld = *(*db)->LatestDeparture(5, 6, by);
  std::printf("LD(5 -> 6, arrive <= %s): depart %s\n",
              FormatTime(by).c_str(), FormatTime(ld).c_str());
  const Duration sd = *(*db)->ShortestDuration(
      5, 0, EventTime::FromSeconds(0), EventTime::FromSeconds(86400));
  std::printf("SD(5 -> 0, whole day): %lld seconds\n",
              static_cast<long long>(sd.raw_seconds()));

  // 5. kNN and one-to-many queries over a target set (Sections 3.2-3.3).
  if (const auto status = (*db)->AddTargetSet("poi", *index, {4, 6}, 2);
      !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  const EventTime ten = EventTime::FromSeconds(36000);
  const auto knn = (*db)->EaKnn("poi", 0, ten, 1);
  if (knn.ok() && !knn->empty()) {
    std::printf("EA-1NN from stop 0 at %s: stop %u (arrive %s)\n",
                FormatTime(ten).c_str(), (*knn)[0].stop,
                FormatTime((*knn)[0].time).c_str());
  }
  const auto otm = (*db)->EaOneToMany("poi", 0, ten);
  if (otm.ok()) {
    std::printf("EA one-to-many from stop 0:\n");
    for (const auto& row : *otm) {
      std::printf("  stop %u at %s\n", row.stop, FormatTime(row.time).c_str());
    }
  }

  std::printf("Database size: %.1f KiB; modeled I/O so far: %.2f ms\n",
              (*db)->size_bytes() / 1024.0, (*db)->io_time_ns() / 1e6);
  return 0;
}
