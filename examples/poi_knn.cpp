// Point-of-interest finder: the paper's kNN motivating scenario. A tourist
// at a stop wants the k POIs reachable earliest by public transport
// (EA-kNN), and — before an 11:00 rendezvous — how long breakfast can last
// before leaving for the nearest POI (LD-kNN).
//
//   ./poi_knn [--city NAME] [--scale S] [--pois N] [--k K] [--at STOP]
#include <cstdio>
#include <string>

#include "common/rng.h"
#include "ptldb/ptldb.h"
#include "timetable/generator.h"
#include "ttl/builder.h"

int main(int argc, char** argv) {
  using namespace ptldb;

  std::string city = "Berlin";
  double scale = 0.04;
  uint32_t num_pois = 25;
  uint32_t k = 4;
  StopId at = 7;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "0";
    };
    if (arg == "--city") city = next();
    else if (arg == "--scale") scale = std::atof(next());
    else if (arg == "--pois") num_pois = static_cast<uint32_t>(std::atoi(next()));
    else if (arg == "--k") k = static_cast<uint32_t>(std::atoi(next()));
    else if (arg == "--at") at = static_cast<StopId>(std::atoi(next()));
  }

  const CityProfile* profile = FindCityProfile(city);
  if (profile == nullptr) {
    std::fprintf(stderr, "unknown city %s\n", city.c_str());
    return 1;
  }
  auto tt = GenerateNetwork(CityOptions(*profile, scale));
  if (!tt.ok()) {
    std::fprintf(stderr, "%s\n", tt.status().ToString().c_str());
    return 1;
  }
  auto index = BuildTtlIndex(*tt);
  if (!index.ok()) return 1;
  auto db = PtldbDatabase::Build(*index);
  if (!db.ok()) return 1;

  // POI stops: a random subset, as in the paper's experiments ("for
  // location based services we already know the stops located near
  // attractive POIs").
  Rng rng(4);
  std::vector<StopId> pois = rng.SampleDistinct(tt->num_stops(), num_pois);
  if (const auto s = (*db)->AddTargetSet("poi", *index, pois, 16); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("%s (scale %.2f): %u stops; %u POI stops registered\n",
              city.c_str(), scale, tt->num_stops(), num_pois);

  // Morning scenario: at 09:30, which k POIs can I reach first?
  const EventTime now = EventTime::FromSeconds(9 * 3600 + 30 * 60);
  const auto knn = (*db)->EaKnn("poi", at, now, k);
  if (!knn.ok()) {
    std::fprintf(stderr, "%s\n", knn.status().ToString().c_str());
    return 1;
  }
  std::printf("\nAt stop %u, %s - the %u earliest reachable POIs:\n", at,
              FormatTime(now).c_str(), k);
  for (const auto& row : *knn) {
    std::printf("  %-10s arrive %s\n", tt->stop(row.stop).name.c_str(),
                FormatTime(row.time).c_str());
  }

  // Breakfast scenario (the paper's LD-kNN example): reach one of the k
  // nearest POIs by 11:00 - when must I leave, at the latest?
  const EventTime deadline = EventTime::FromSeconds(11 * 3600);
  const auto ld = (*db)->LdKnn("poi", at, deadline, k);
  if (!ld.ok()) {
    std::fprintf(stderr, "%s\n", ld.status().ToString().c_str());
    return 1;
  }
  std::printf("\nTo reach a POI by %s, the latest departures from stop %u:\n",
              FormatTime(deadline).c_str(), at);
  for (const auto& row : *ld) {
    std::printf("  %-10s leave by %s\n", tt->stop(row.stop).name.c_str(),
                FormatTime(row.time).c_str());
  }
  if (!ld->empty()) {
    std::printf("\nBreakfast may last until %s.\n",
                FormatTime(ld->front().time).c_str());
  }
  return 0;
}
