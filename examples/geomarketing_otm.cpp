// Geomarketing with one-to-many queries: the paper motivates EA/LD-OTM with
// "nearby what stop one must build a franchise store to be more easily
// reachable by clients". This example scores candidate store locations by
// how quickly a set of client stops can reach them (and be reached back).
//
//   ./geomarketing_otm [--city NAME] [--scale S] [--clients N]
//                      [--candidates N]
#include <algorithm>
#include <cstdio>
#include <string>

#include "common/rng.h"
#include "ptldb/ptldb.h"
#include "timetable/generator.h"
#include "ttl/builder.h"

int main(int argc, char** argv) {
  using namespace ptldb;

  std::string city = "Denver";
  double scale = 0.04;
  uint32_t num_clients = 40;
  uint32_t num_candidates = 8;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "0";
    };
    if (arg == "--city") city = next();
    else if (arg == "--scale") scale = std::atof(next());
    else if (arg == "--clients")
      num_clients = static_cast<uint32_t>(std::atoi(next()));
    else if (arg == "--candidates")
      num_candidates = static_cast<uint32_t>(std::atoi(next()));
  }

  const CityProfile* profile = FindCityProfile(city);
  if (profile == nullptr) return 1;
  auto tt = GenerateNetwork(CityOptions(*profile, scale));
  if (!tt.ok()) return 1;
  auto index = BuildTtlIndex(*tt);
  if (!index.ok()) return 1;
  auto db = PtldbDatabase::Build(*index);
  if (!db.ok()) return 1;

  Rng rng(11);
  std::vector<StopId> clients =
      rng.SampleDistinct(tt->num_stops(), num_clients);
  if (!(*db)->AddTargetSet("clients", *index, clients, 4).ok()) return 1;

  std::vector<StopId> candidates;
  while (candidates.size() < num_candidates) {
    const auto c = static_cast<StopId>(rng.NextBelow(tt->num_stops()));
    if (std::find(clients.begin(), clients.end(), c) == clients.end() &&
        std::find(candidates.begin(), candidates.end(), c) ==
            candidates.end()) {
      candidates.push_back(c);
    }
  }

  // Opening hours 10:00-20:00: for each candidate store location, run one
  // EA-OTM (how fast do clients hear back... i.e. travel FROM the store is
  // the reverse direction; here we score how many clients the store
  // reaches by courier before noon) and one LD-OTM (how late clients may
  // leave the store and still be home by 20:00).
  const EventTime open = EventTime::FromSeconds(10 * 3600);
  const EventTime close = EventTime::FromSeconds(20 * 3600);
  std::printf("%s (scale %.2f): scoring %u candidate store stops against %u "
              "client stops\n\n",
              city.c_str(), scale, num_candidates, num_clients);
  std::printf("%-8s %-18s %-22s %-14s\n", "stop", "clients reachable",
              "median courier arrive", "median leave-by");

  StopId best = kInvalidStop;
  double best_score = -1;
  for (const StopId store : candidates) {
    const auto ea = (*db)->EaOneToMany("clients", store, open);
    const auto ld = (*db)->LdOneToMany("clients", store, close);
    if (!ea.ok() || !ld.ok()) continue;
    const EventTime med_arrive =
        ea->empty() ? EventTime::Infinity() : (*ea)[ea->size() / 2].time;
    const EventTime med_leave =
        ld->empty() ? EventTime::NegInfinity() : (*ld)[ld->size() / 2].time;
    std::printf("%-8u %-18zu %-22s %-14s\n", store, ea->size(),
                FormatTime(med_arrive).c_str(),
                FormatTime(med_leave).c_str());
    const double score =
        static_cast<double>(ea->size()) -
        (med_arrive == EventTime::Infinity()
             ? 0.0
             : static_cast<double>((med_arrive - open).raw_seconds()) /
                   36000.0);
    if (score > best_score) {
      best_score = score;
      best = store;
    }
  }
  if (best != kInvalidStop) {
    std::printf("\nRecommended location: stop %u (%s)\n", best,
                tt->stop(best).name.c_str());
  }
  std::printf("Modeled I/O time: %.2f ms across %llu page reads\n",
              (*db)->io_time_ns() / 1e6,
              static_cast<unsigned long long>(
                  (*db)->engine()->device()->reads()));
  return 0;
}
