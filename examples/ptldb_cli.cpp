// Command-line front door for the library: build a TTL index from a GTFS
// feed (or a synthetic city), persist it, inspect it, and answer queries —
// the workflow a deployment would script.
//
//   ptldb_cli build --gtfs DIR --out idx            (or --city NAME --scale S)
//   ptldb_cli stats --index idx
//   ptldb_cli query --index idx --type ea --from 3 --to 40 --at 08:15:00
//   ptldb_cli query --index idx --type sd --from 3 --to 40
//             --at 08:00:00 --until 20:00:00
//
// The index is stored as two files: <out>.tt (timetable) and <out>.ttl
// (labels).
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "ptldb/ptldb.h"
#include "timetable/generator.h"
#include "timetable/gtfs.h"
#include "timetable/serialize.h"
#include "ttl/builder.h"
#include "ttl/serialize.h"

namespace {

using namespace ptldb;

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  ptldb_cli build (--gtfs DIR | --city NAME [--scale S]) --out IDX\n"
      "            [--threads T]   (0 = all hardware threads; same index\n"
      "                             bytes for every thread count)\n"
      "  ptldb_cli stats --index IDX\n"
      "  ptldb_cli query --index IDX --type ea|ld|sd --from STOP --to STOP\n"
      "            --at HH:MM:SS [--until HH:MM:SS]\n");
  return 2;
}

std::map<std::string, std::string> ParseFlags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) == 0) flags[argv[i] + 2] = argv[i + 1];
  }
  return flags;
}

int Build(const std::map<std::string, std::string>& flags) {
  const auto out = flags.find("out");
  if (out == flags.end()) return Usage();
  Timetable tt;
  if (const auto gtfs = flags.find("gtfs"); gtfs != flags.end()) {
    auto feed = LoadGtfs(gtfs->second);
    if (!feed.ok()) {
      std::fprintf(stderr, "%s\n", feed.status().ToString().c_str());
      return 1;
    }
    tt = std::move(feed->timetable);
  } else if (const auto city = flags.find("city"); city != flags.end()) {
    const CityProfile* profile = FindCityProfile(city->second);
    if (profile == nullptr) {
      std::fprintf(stderr, "unknown city %s\n", city->second.c_str());
      return 1;
    }
    double scale = 0.05;
    if (const auto s = flags.find("scale"); s != flags.end()) {
      scale = std::atof(s->second.c_str());
    }
    auto generated = GenerateNetwork(CityOptions(*profile, scale));
    if (!generated.ok()) {
      std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
      return 1;
    }
    tt = std::move(*generated);
  } else {
    return Usage();
  }

  TtlBuildOptions options;
  if (const auto threads = flags.find("threads"); threads != flags.end()) {
    options.num_threads =
        static_cast<uint32_t>(std::atoi(threads->second.c_str()));
  }
  TtlBuildStats stats;
  auto index = BuildTtlIndex(tt, options, &stats);
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  if (const auto s = SaveTimetable(tt, out->second + ".tt"); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  if (const auto s = SaveTtlIndex(*index, out->second + ".ttl"); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf(
      "built %s: %u stops, %u connections, %.0f tuples/stop in %.2fs "
      "(%u threads, %zu waves)\n",
      out->second.c_str(), tt.num_stops(), tt.num_connections(),
      index->tuples_per_vertex(), stats.preprocess_seconds,
      stats.num_threads_used, stats.waves.size());
  return 0;
}

int LoadIndex(const std::map<std::string, std::string>& flags, Timetable* tt,
              TtlIndex* index) {
  const auto path = flags.find("index");
  if (path == flags.end()) return Usage();
  auto loaded_tt = LoadTimetable(path->second + ".tt");
  auto loaded_index = LoadTtlIndex(path->second + ".ttl");
  if (!loaded_tt.ok() || !loaded_index.ok()) {
    const Status& bad =
        !loaded_tt.ok() ? loaded_tt.status() : loaded_index.status();
    std::fprintf(stderr, "cannot load index %s: %s\n", path->second.c_str(),
                 bad.ToString().c_str());
    return 1;
  }
  *tt = std::move(*loaded_tt);
  *index = std::move(*loaded_index);
  return 0;
}

int Stats(const std::map<std::string, std::string>& flags) {
  Timetable tt;
  TtlIndex index;
  if (const int rc = LoadIndex(flags, &tt, &index); rc != 0) return rc;
  std::printf("stops:        %u\n", tt.num_stops());
  std::printf("trips:        %u\n", tt.num_trips());
  std::printf("connections:  %u\n", tt.num_connections());
  std::printf("avg degree:   %.1f\n", tt.average_degree());
  std::printf("tuples/stop:  %.1f\n", index.tuples_per_vertex());
  std::printf("service span: %s - %s\n", FormatTime(tt.min_time()).c_str(),
              FormatTime(tt.max_time()).c_str());
  return 0;
}

int Query(const std::map<std::string, std::string>& flags) {
  Timetable tt;
  TtlIndex index;
  if (const int rc = LoadIndex(flags, &tt, &index); rc != 0) return rc;
  const auto get = [&](const char* name) -> std::string {
    const auto it = flags.find(name);
    return it == flags.end() ? "" : it->second;
  };
  const std::string type = get("type");
  const StopId from = static_cast<StopId>(std::atoi(get("from").c_str()));
  const StopId to = static_cast<StopId>(std::atoi(get("to").c_str()));
  const EventTime at = ParseGtfsTime(get("at"));
  if (type.empty() || at == EventTime::Invalid() || from >= tt.num_stops() ||
      to >= tt.num_stops()) {
    return Usage();
  }

  auto db = PtldbDatabase::Build(index);
  if (!db.ok()) return 1;
  if (type == "ea") {
    const EventTime ea = *(*db)->EarliestArrival(from, to, at);
    std::printf("EA(%u -> %u, depart >= %s) = %s\n", from, to,
                FormatTime(at).c_str(), FormatTime(ea).c_str());
  } else if (type == "ld") {
    const EventTime ld = *(*db)->LatestDeparture(from, to, at);
    std::printf("LD(%u -> %u, arrive <= %s) = %s\n", from, to,
                FormatTime(at).c_str(), FormatTime(ld).c_str());
  } else if (type == "sd") {
    const EventTime until = ParseGtfsTime(get("until"));
    if (until == EventTime::Invalid()) return Usage();
    const Duration sd = *(*db)->ShortestDuration(from, to, at, until);
    if (sd == Duration::Infinity()) {
      std::printf("SD(%u -> %u) = no feasible journey\n", from, to);
    } else {
      std::printf("SD(%u -> %u, within [%s, %s]) = %d min\n", from, to,
                  FormatTime(at).c_str(), FormatTime(until).c_str(),
                  static_cast<int>((sd / 60).raw_seconds()));
    }
  } else {
    return Usage();
  }
  std::printf("modeled I/O: %.2f ms\n", (*db)->io_time_ns() / 1e6);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const auto flags = ParseFlags(argc, argv);
  if (command == "build") return Build(flags);
  if (command == "stats") return Stats(flags);
  if (command == "query") return Query(flags);
  return Usage();
}
