// Journey planner: answers EA/LD/SD queries on a synthetic city (or a GTFS
// feed) and prints a full earliest-arrival itinerary, leg by leg.
//
//   ./journey_planner [--gtfs DIR | --city NAME] [--scale S] [--from A]
//                     [--to B] [--depart HH:MM:SS]
#include <cstdio>
#include <cstring>
#include <string>

#include "baseline/csa.h"
#include "ptldb/ptldb.h"
#include "timetable/generator.h"
#include "timetable/gtfs.h"
#include "ttl/builder.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: journey_planner [--gtfs DIR | --city NAME] "
               "[--scale S] [--from STOP] [--to STOP] [--depart HH:MM:SS]\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ptldb;

  std::string gtfs_dir;
  std::string city = "Austin";
  double scale = 0.05;
  StopId from = 0;
  StopId to = 25;
  EventTime depart = EventTime::FromSeconds(8 * 3600);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--gtfs") gtfs_dir = next();
    else if (arg == "--city") city = next();
    else if (arg == "--scale") scale = std::atof(next());
    else if (arg == "--from") from = static_cast<StopId>(std::atoi(next()));
    else if (arg == "--to") to = static_cast<StopId>(std::atoi(next()));
    else if (arg == "--depart") depart = ParseGtfsTime(next());
    else {
      Usage();
      return 2;
    }
  }
  if (depart == EventTime::Invalid()) {
    Usage();
    return 2;
  }

  Timetable tt;
  if (!gtfs_dir.empty()) {
    auto feed = LoadGtfs(gtfs_dir);
    if (!feed.ok()) {
      std::fprintf(stderr, "GTFS load failed: %s\n",
                   feed.status().ToString().c_str());
      return 1;
    }
    std::printf("Loaded GTFS feed: %u stops, %u trips (%llu dropped hops)\n",
                feed->timetable.num_stops(), feed->timetable.num_trips(),
                static_cast<unsigned long long>(feed->dropped_connections));
    tt = std::move(feed->timetable);
  } else {
    const CityProfile* profile = FindCityProfile(city);
    if (profile == nullptr) {
      std::fprintf(stderr, "unknown city %s\n", city.c_str());
      return 1;
    }
    auto generated = GenerateNetwork(CityOptions(*profile, scale));
    if (!generated.ok()) {
      std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
      return 1;
    }
    tt = std::move(*generated);
    std::printf("Generated %s (scale %.2f): %u stops, %u connections\n",
                city.c_str(), scale, tt.num_stops(), tt.num_connections());
  }
  if (from >= tt.num_stops() || to >= tt.num_stops() || from == to) {
    std::fprintf(stderr, "bad stop ids (network has %u stops)\n",
                 tt.num_stops());
    return 1;
  }

  auto index = BuildTtlIndex(tt);
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  auto db = PtldbDatabase::Build(*index);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }

  const EventTime ea = *(*db)->EarliestArrival(from, to, depart);
  if (ea == EventTime::Infinity()) {
    std::printf("No journey from %s to %s departing at or after %s.\n",
                tt.stop(from).name.c_str(), tt.stop(to).name.c_str(),
                FormatTime(depart).c_str());
    return 0;
  }
  std::printf("%s -> %s, depart >= %s: earliest arrival %s\n",
              tt.stop(from).name.c_str(), tt.stop(to).name.c_str(),
              FormatTime(depart).c_str(), FormatTime(ea).c_str());
  const EventTime ld = *(*db)->LatestDeparture(from, to, ea);
  std::printf("Latest departure still arriving by %s: %s\n",
              FormatTime(ea).c_str(), FormatTime(ld).c_str());
  const Duration sd =
      *(*db)->ShortestDuration(from, to, depart, tt.max_time());
  if (sd == Duration::Infinity()) {
    // The EA above can succeed while no journey fits inside the SD window
    // [depart, max_time]; dividing the sentinel by 60 would print ~35M min.
    std::printf("No complete ride fits inside today's service window.\n");
  } else {
    std::printf("Shortest possible ride today: %d min\n",
                static_cast<int>((sd / 60).raw_seconds()));
  }

  // Itinerary via the baseline scan (the paper stores expanded paths in the
  // DB for this purpose; here the timetable is at hand).
  std::printf("\nItinerary:\n");
  TripId last_trip = kInvalidTrip;
  for (const ConnectionId id : FindEarliestJourney(tt, from, to, depart)) {
    const Connection& c = tt.connection(id);
    if (c.trip != last_trip) {
      std::printf("  board trip %u at %s (%s)\n", c.trip,
                  tt.stop(c.from).name.c_str(), FormatTime(c.dep).c_str());
      last_trip = c.trip;
    }
    std::printf("    -> %s (%s)\n", tt.stop(c.to).name.c_str(),
                FormatTime(c.arr).c_str());
  }
  return 0;
}
