// Exports a PTLDB deployment as pure SQL: the lout/lin DDL + COPY script of
// the paper (runnable through psql against any PostgreSQL), and — when
// PTLDB_PG_CONNINFO is set and libpq is available — loads it into a live
// server and runs a sample of the paper's queries there.
//
//   ./sql_export [--city NAME] [--scale S] [--out FILE.sql]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/csv.h"
#include "pgsql/sql_writer.h"
#include "ptldb/ptldb.h"
#include "timetable/generator.h"
#include "ttl/builder.h"

#ifdef PTLDB_HAVE_LIBPQ
#include "pgsql/pg_backend.h"
#endif

int main(int argc, char** argv) {
  using namespace ptldb;

  std::string city = "SaltLakeCity";
  double scale = 0.03;
  std::string out_path = "ptldb_export.sql";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--city") city = next();
    else if (arg == "--scale") scale = std::atof(next());
    else if (arg == "--out") out_path = next();
  }

  const CityProfile* profile = FindCityProfile(city);
  if (profile == nullptr) return 1;
  auto tt = GenerateNetwork(CityOptions(*profile, scale));
  if (!tt.ok()) return 1;
  auto index = BuildTtlIndex(*tt);
  if (!index.ok()) return 1;

  const std::string script = FullExportScript(*index);
  if (const auto s = WriteStringToFile(out_path, script); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("Wrote %s (%.1f KiB): DDL + COPY for %u stops.\n",
              out_path.c_str(), script.size() / 1024.0, index->num_stops());
  std::printf("Load it with: psql \"$PTLDB_PG_CONNINFO\" -f %s\n",
              out_path.c_str());
  std::printf("\n-- Code 1 (earliest arrival), as emitted:\n%s\n",
              V2vSql(V2vKind::kEarliestArrival).c_str());

#ifdef PTLDB_HAVE_LIBPQ
  const char* conninfo = std::getenv("PTLDB_PG_CONNINFO");
  if (conninfo == nullptr) {
    std::printf("PTLDB_PG_CONNINFO not set; skipping live PostgreSQL demo.\n");
    return 0;
  }
  PtldbOptions options;
  options.device = DeviceProfile::Ram();
  auto db = PtldbDatabase::Build(*index, options);
  if (!db.ok()) return 1;
  auto pg = PgPtldb::Connect(conninfo, "ptldb_export_demo");
  if (!pg.ok()) {
    std::fprintf(stderr, "PostgreSQL unreachable: %s\n",
                 pg.status().ToString().c_str());
    return 0;
  }
  if (const auto s = (*pg)->MirrorFrom(db->get()); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  const auto ea = (*pg)->EarliestArrival(0, 1, tt->min_time());
  if (ea.ok()) {
    std::printf("Live PostgreSQL says EA(0 -> 1, %s) = %s\n",
                FormatTime(tt->min_time()).c_str(), FormatTime(*ea).c_str());
  }
#endif
  return 0;
}
