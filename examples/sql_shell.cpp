// Interactive SQL shell over the embedded PTLDB engine: builds a city,
// loads the PTLDB tables and evaluates the paper's SQL dialect directly —
// no PostgreSQL required.
//
//   ./sql_shell [--city NAME] [--scale S] [-c "SELECT ..."]...
//
// Without -c, reads statements from stdin (one per line; parameters are
// not available interactively, so inline the values).
#include <cstdio>
#include <iostream>
#include <string>

#include "common/rng.h"
#include "pgsql/sql_writer.h"
#include "ptldb/ptldb.h"
#include "sql/interpreter.h"
#include "sql/system_tables.h"
#include "timetable/generator.h"
#include "ttl/builder.h"

namespace {

void PrintRelation(const ptldb::SqlRelation& relation) {
  for (const auto& col : relation.columns) {
    std::printf("%-12s", col.name.c_str());
  }
  std::printf("\n");
  for (const auto& row : relation.rows) {
    for (const auto& value : row) {
      if (ptldb::SqlIsNull(value)) {
        std::printf("%-12s", "NULL");
      } else if (std::holds_alternative<int64_t>(value)) {
        const int64_t v = std::get<int64_t>(value);
        if (v == ptldb::kInfinityTime || v == ptldb::kNegInfinityTime) {
          // Unreachable-pair sentinels must never leak as raw integers;
          // the interpreter returns NULL for empty aggregates, but a user
          // query can still COALESCE one in (e.g. pasted from the
          // paper's PostgreSQL dialect, which uses them as defaults).
          std::printf("%-12s", "unreachable");
        } else {
          std::printf("%-12lld", static_cast<long long>(v));
        }
      } else if (std::holds_alternative<std::string>(value)) {
        // Text rows (EXPLAIN ANALYZE plans) print unpadded.
        std::printf("%s", std::get<std::string>(value).c_str());
      } else {
        const auto& arr = std::get<std::vector<int32_t>>(value);
        std::string text = "{";
        for (size_t i = 0; i < arr.size() && i < 6; ++i) {
          if (i > 0) text += ",";
          text += std::to_string(arr[i]);
        }
        if (arr.size() > 6) text += ",...";
        text += "}";
        std::printf("%-12s", text.c_str());
      }
    }
    std::printf("\n");
  }
  std::printf("(%zu rows)\n", relation.rows.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ptldb;

  std::string city = "Austin";
  double scale = 0.05;
  std::vector<std::string> commands;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--city") city = next();
    else if (arg == "--scale") scale = std::atof(next());
    else if (arg == "-c") commands.emplace_back(next());
  }

  const CityProfile* profile = FindCityProfile(city);
  if (profile == nullptr) {
    std::fprintf(stderr, "unknown city %s\n", city.c_str());
    return 1;
  }
  auto tt = GenerateNetwork(CityOptions(*profile, scale));
  if (!tt.ok()) return 1;
  auto index = BuildTtlIndex(*tt);
  if (!index.ok()) return 1;
  PtldbOptions options;
  options.device = DeviceProfile::SataSsd();
  auto db = PtldbDatabase::Build(*index, options);
  if (!db.ok()) return 1;
  Rng rng(1);
  const auto targets = rng.SampleDistinct(tt->num_stops(), 20);
  if (!(*db)->AddTargetSet("poi", *index, targets, 4).ok()) return 1;

  std::printf("PTLDB SQL shell on %s (scale %.2f): %u stops.\n", city.c_str(),
              scale, tt->num_stops());
  std::printf("Tables:");
  for (const auto& name : (*db)->engine()->table_names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf(" ptldb_stats ptldb_server ptldb_slow_queries ptldb_traces");
  std::printf("\nExample: %s",
              "SELECT v, hubs[1:3] FROM lout WHERE v = 0;\n");
  std::printf("Observability: %s",
              "SELECT type, outcome, latency_ns FROM ptldb_slow_queries;\n");
  std::printf("Prefix a query with EXPLAIN ANALYZE for its span tree.\n");

  SqlInterpreter interpreter((*db)->engine());
  PtldbDatabase* pdb = db->get();
  SystemTableCatalog system_tables([pdb] { return pdb->Snapshot(); },
                                   pdb->query_log());
  interpreter.set_system_tables(&system_tables);
  const auto run = [&](const std::string& sql) {
    // Each statement is a recorded request: earlier statements show up in
    // ptldb_slow_queries / ptldb_traces with phase attribution, so the
    // shell demonstrates the self-describing loop on its own history.
    RequestRecorder recorder(pdb->query_log());
    if (recorder.active()) recorder.record().set_type("sql");
    auto result = interpreter.Execute(sql);
    if (recorder.active()) {
      const char* cause = nullptr;
      const QueryOutcome outcome =
          OutcomeForStatus(result.status(), &cause);
      recorder.Finish(outcome, cause);
    }
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
      return;
    }
    PrintRelation(*result);
  };

  if (!commands.empty()) {
    for (const auto& sql : commands) {
      std::printf("\n> %s\n", sql.c_str());
      run(sql);
    }
    return 0;
  }
  std::string line;
  std::printf("\nptldb> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    if (line == "\\q" || line == "quit" || line == "exit") break;
    if (!line.empty()) run(line);
    std::printf("ptldb> ");
    std::fflush(stdout);
  }
  return 0;
}
