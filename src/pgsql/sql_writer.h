#ifndef PTLDB_PGSQL_SQL_WRITER_H_
#define PTLDB_PGSQL_SQL_WRITER_H_

#include <string>
#include <vector>

#include "common/time_util.h"
#include "timetable/types.h"
#include "ttl/label.h"

namespace ptldb {

/// Emits the pure-SQL side of PTLDB: the DDL, COPY payloads and the exact
/// queries of Codes 1-4 in the paper, targeting stock PostgreSQL (array
/// columns + UNNEST, no extensions). Everything here is plain text — feed
/// it to psql or through PgConnection (pgsql/pg_client.h).

/// Vertex-to-vertex query flavors of Code 1.
enum class V2vKind { kEarliestArrival, kLatestDeparture, kShortestDuration };

/// CREATE TABLE statements for lout and lin (Section 3.1).
std::string LabelTableDdl();

/// CREATE TABLE statements for the five derived tables of one target set.
std::string TargetSetDdl(const std::string& set_name);

/// COPY ... FROM stdin payload for one label table ("lout" or "lin"): one
/// line per stop, tab-separated, PostgreSQL array literals. Terminated by
/// the trailing "\\.\n".
std::string LabelTableCopy(const LabelSet& labels, const std::string& table);

/// Code 1 with the given flavor; $1=s, $2=g, $3=t (and $4=t' for SD).
std::string V2vSql(V2vKind kind);

/// Code 2 (naive EA-kNN); $1=q, $2=t, $3=k.
std::string EaKnnNaiveSql(const std::string& set_name);

/// The LD counterpart of Code 2; $1=q, $2=t, $3=k.
std::string LdKnnNaiveSql(const std::string& set_name);

/// Code 3; $1=q, $2=t, $3=k (EA-kNN) — or without LIMIT/slice for EA-OTM.
std::string EaKnnSql(const std::string& set_name);
std::string EaOtmSql(const std::string& set_name);

/// Code 4; $1=q, $2=t, $3=k, $4=arrhour (LD-kNN / LD-OTM).
std::string LdKnnSql(const std::string& set_name);
std::string LdOtmSql(const std::string& set_name);

/// Pure-SQL construction of the knn_naive table from lin (the paper omits
/// these "simple SQL commands" for space; this is our reconstruction).
/// Targets are inlined as a VALUES list.
std::string NaiveTableConstructionSql(const std::string& set_name,
                                      const std::vector<StopId>& targets,
                                      uint32_t kmax);

/// Writes a complete psql script (DDL + COPY + example queries) for an
/// index. Used by the sql_export example.
std::string FullExportScript(const TtlIndex& index);

}  // namespace ptldb

#endif  // PTLDB_PGSQL_SQL_WRITER_H_
