#include "pgsql/pg_backend.h"

#include <limits>
#include <sstream>

#include "common/string_util.h"
#include "pgsql/sql_writer.h"
#include "ptldb/tables.h"

namespace ptldb {

namespace {

// CREATE TABLE for one engine table (integer / integer[] columns, leading
// pk_columns as the primary key).
std::string DdlFor(const EngineTable& table) {
  std::ostringstream out;
  out << "CREATE TABLE " << table.name() << " (\n";
  const Schema& schema = table.schema();
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    out << "  " << schema.column(i).name
        << (schema.column(i).type == ColumnType::kInt32 ? " integer"
                                                        : " integer[]");
    out << (i + 1 < schema.num_columns() ? ",\n" : ",\n");
  }
  out << "  PRIMARY KEY (";
  for (uint32_t i = 0; i < table.pk_columns(); ++i) {
    if (i > 0) out << ", ";
    out << schema.column(i).name;
  }
  out << ")\n);\n";
  return out.str();
}

// COPY payload (tab-separated text rows) for one engine table. Non-OK if
// any source row cannot be read back cleanly — an export must be complete.
Result<std::string> CopyPayloadFor(const EngineTable& table,
                                   BufferPool* pool) {
  std::ostringstream out;
  auto cursor = table.Seek(std::numeric_limits<IndexKey>::min(), pool);
  const Schema& schema = table.schema();
  while (cursor.Valid()) {
    auto row = cursor.row();
    PTLDB_RETURN_IF_ERROR(row.status());
    for (size_t i = 0; i < row->size(); ++i) {
      if (i > 0) out << '\t';
      if (schema.column(i).type == ColumnType::kInt32) {
        out << (*row)[i].AsInt();
      } else {
        out << '{';
        const auto& arr = (*row)[i].AsArray();
        for (size_t j = 0; j < arr.size(); ++j) {
          if (j > 0) out << ',';
          out << arr[j];
        }
        out << '}';
      }
    }
    out << '\n';
    cursor.Next();
  }
  PTLDB_RETURN_IF_ERROR(cursor.status());
  return out.str();
}

// The paper's SQL answers in the stored int32 encoding; widen the parsed
// value into the compute tier (NULL and parse failures map to `fallback`).
EventTime ParseTimeOrDefault(const std::string& text, bool is_null,
                             EventTime fallback) {
  if (is_null || text.empty()) return fallback;
  const auto parsed = ParseInt(text);
  return parsed ? EventTime::FromSeconds(*parsed) : fallback;
}

// Time arguments bind to integer columns on the PostgreSQL side, so a
// compute-tier bound saturates to the stored width before rendering.
std::string TimeParam(EventTime t) {
  return std::to_string(SaturatingToStoredTime(t));
}

}  // namespace

Result<std::unique_ptr<PgPtldb>> PgPtldb::Connect(const std::string& conninfo,
                                                  const std::string& schema) {
  auto conn = PgConnection::Connect(conninfo);
  if (!conn.ok()) return conn.status();
  std::unique_ptr<PgPtldb> backend(
      new PgPtldb(std::move(*conn), schema));
  PTLDB_RETURN_IF_ERROR(backend->conn_->Exec(
      "SET client_min_messages TO warning; DROP SCHEMA IF EXISTS " + schema +
      " CASCADE; CREATE SCHEMA " + schema + "; SET search_path TO " + schema +
      ";"));
  return backend;
}

Status PgPtldb::MirrorFrom(PtldbDatabase* src) {
  EngineDatabase* engine = src->engine();
  PTLDB_RETURN_IF_ERROR(conn_->Exec("SET search_path TO " + schema_ + ";"));
  for (const std::string& name : engine->table_names()) {
    const EngineTable* table = engine->FindTable(name);
    PTLDB_RETURN_IF_ERROR(conn_->Exec(DdlFor(*table)));
    auto payload = CopyPayloadFor(*table, engine->buffer_pool());
    PTLDB_RETURN_IF_ERROR(payload.status());
    PTLDB_RETURN_IF_ERROR(conn_->CopyIn(name, *payload));
    PTLDB_RETURN_IF_ERROR(conn_->Exec("ANALYZE " + name + ";"));
  }
  set_info_.clear();
  for (const auto& info : src->target_sets()) {
    if (info.bucket_seconds != kHourBucket) {
      return Status::Unsupported(
          "the PostgreSQL backend emits the paper's literal SQL, which "
          "buckets by hour; rebuild the set with bucket_seconds=3600");
    }
    set_info_[info.name] = info;
  }
  return Status::Ok();
}

Result<EventTime> PgPtldb::EarliestArrival(StopId s, StopId g, EventTime t) {
  std::vector<std::vector<bool>> nulls;
  auto rows = conn_->QueryWithNulls(
      V2vSql(V2vKind::kEarliestArrival),
      {std::to_string(s), std::to_string(g), TimeParam(t)}, &nulls);
  if (!rows.ok()) return rows.status();
  if (rows->empty()) return EventTime::Infinity();
  return ParseTimeOrDefault((*rows)[0][0], nulls[0][0], EventTime::Infinity());
}

Result<EventTime> PgPtldb::LatestDeparture(StopId s, StopId g,
                                           EventTime t_end) {
  std::vector<std::vector<bool>> nulls;
  auto rows = conn_->QueryWithNulls(
      V2vSql(V2vKind::kLatestDeparture),
      {std::to_string(s), std::to_string(g), TimeParam(t_end)}, &nulls);
  if (!rows.ok()) return rows.status();
  if (rows->empty()) return EventTime::NegInfinity();
  return ParseTimeOrDefault((*rows)[0][0], nulls[0][0],
                            EventTime::NegInfinity());
}

Result<Duration> PgPtldb::ShortestDuration(StopId s, StopId g, EventTime t,
                                           EventTime t_end) {
  std::vector<std::vector<bool>> nulls;
  auto rows = conn_->QueryWithNulls(
      V2vSql(V2vKind::kShortestDuration),
      {std::to_string(s), std::to_string(g), TimeParam(t), TimeParam(t_end)},
      &nulls);
  if (!rows.ok()) return rows.status();
  if (rows->empty() || nulls[0][0]) return Duration::Infinity();
  const auto parsed = ParseInt((*rows)[0][0]);
  return parsed ? Duration::FromSeconds(*parsed) : Duration::Infinity();
}

Result<std::vector<StopTimeResult>> PgPtldb::RunListQuery(
    const std::string& sql, const std::vector<std::string>& params) {
  auto rows = conn_->Query(sql, params);
  if (!rows.ok()) return rows.status();
  std::vector<StopTimeResult> out;
  out.reserve(rows->size());
  for (const auto& row : *rows) {
    const auto stop = ParseInt(row[0]);
    const auto time = ParseInt(row[1]);
    if (!stop || !time) return Status::Corruption("non-integer query result");
    out.push_back({static_cast<StopId>(*stop), EventTime::FromSeconds(*time)});
  }
  return out;
}

Result<std::vector<StopTimeResult>> PgPtldb::EaKnn(const std::string& set,
                                                   StopId q, EventTime t,
                                                   uint32_t k) {
  return RunListQuery(EaKnnSql(set),
                      {std::to_string(q), TimeParam(t), std::to_string(k)});
}

Result<std::vector<StopTimeResult>> PgPtldb::LdKnn(const std::string& set,
                                                   StopId q, EventTime t,
                                                   uint32_t k) {
  const auto it = set_info_.find(set);
  if (it == set_info_.end()) return Status::NotFound("unknown set " + set);
  const int32_t arrhour =
      std::min(SaturatingBucketOf(t, kHourBucket), it->second.max_bucket);
  return RunListQuery(LdKnnSql(set),
                      {std::to_string(q), TimeParam(t), std::to_string(k),
                       std::to_string(arrhour)});
}

Result<std::vector<StopTimeResult>> PgPtldb::EaKnnNaive(
    const std::string& set, StopId q, EventTime t, uint32_t k) {
  return RunListQuery(EaKnnNaiveSql(set),
                      {std::to_string(q), TimeParam(t), std::to_string(k)});
}

Result<std::vector<StopTimeResult>> PgPtldb::LdKnnNaive(
    const std::string& set, StopId q, EventTime t, uint32_t k) {
  return RunListQuery(LdKnnNaiveSql(set),
                      {std::to_string(q), TimeParam(t), std::to_string(k)});
}

Result<std::vector<StopTimeResult>> PgPtldb::EaOneToMany(
    const std::string& set, StopId q, EventTime t) {
  return RunListQuery(EaOtmSql(set), {std::to_string(q), TimeParam(t)});
}

Result<std::vector<StopTimeResult>> PgPtldb::LdOneToMany(
    const std::string& set, StopId q, EventTime t) {
  const auto it = set_info_.find(set);
  if (it == set_info_.end()) return Status::NotFound("unknown set " + set);
  const int32_t arrhour =
      std::min(SaturatingBucketOf(t, kHourBucket), it->second.max_bucket);
  return RunListQuery(
      LdOtmSql(set),
      {std::to_string(q), TimeParam(t), std::to_string(arrhour)});
}

}  // namespace ptldb
