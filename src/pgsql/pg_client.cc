#include "pgsql/pg_client.h"

#include <libpq-fe.h>

#include <chrono>
#include <thread>

namespace ptldb {

namespace {

PGconn* Conn(void* p) { return static_cast<PGconn*>(p); }

std::string ConnError(PGconn* conn) {
  const char* msg = PQerrorMessage(conn);
  return msg == nullptr ? "unknown libpq error" : msg;
}

}  // namespace

/// Times one statement round-trip and folds it into the connection's
/// stats on scope exit, error paths included.
class PgConnection::ScopedStatementTimer {
 public:
  explicit ScopedStatementTimer(PgStatementStats* stats)
      : stats_(stats), start_(std::chrono::steady_clock::now()) {}
  ~ScopedStatementTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    const uint64_t ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
    stats_->statements += 1;
    stats_->total_ns += ns;
    if (ns > stats_->max_ns) stats_->max_ns = ns;
  }

 private:
  PgStatementStats* stats_;
  std::chrono::steady_clock::time_point start_;
};

Result<std::unique_ptr<PgConnection>> PgConnection::Connect(
    const std::string& conninfo, const PgConnectOptions& options) {
  std::string info = conninfo;
  if (options.connect_timeout_s > 0 &&
      conninfo.find("connect_timeout") == std::string::npos) {
    info += " connect_timeout=" + std::to_string(options.connect_timeout_s);
  }
  const uint32_t attempts = options.max_attempts == 0 ? 1 : options.max_attempts;
  std::string last_error = "unknown libpq error";
  uint32_t backoff_ms = options.initial_backoff_ms;
  for (uint32_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms *= 2;
    }
    PGconn* conn = PQconnectdb(info.c_str());
    if (conn == nullptr) {
      last_error = "PQconnectdb failed";
      continue;
    }
    if (PQstatus(conn) != CONNECTION_OK) {
      last_error = ConnError(conn);
      PQfinish(conn);
      continue;
    }
    std::unique_ptr<PgConnection> client(new PgConnection(conn));
    if (options.statement_timeout_ms > 0) {
      PTLDB_RETURN_IF_ERROR(client->Exec(
          "SET statement_timeout = " +
          std::to_string(options.statement_timeout_ms)));
    }
    return client;
  }
  return Status::IoError("cannot connect after " + std::to_string(attempts) +
                         " attempts: " + last_error);
}

PgConnection::~PgConnection() {
  if (conn_ != nullptr) PQfinish(Conn(conn_));
}

Status PgConnection::Exec(const std::string& sql) {
  ScopedStatementTimer timer(&stats_);
  PGresult* result = PQexec(Conn(conn_), sql.c_str());
  const ExecStatusType status = PQresultStatus(result);
  PQclear(result);
  if (status != PGRES_COMMAND_OK && status != PGRES_TUPLES_OK) {
    return Status::IoError("exec failed: " + ConnError(Conn(conn_)));
  }
  return Status::Ok();
}

Result<std::vector<std::vector<std::string>>> PgConnection::Query(
    const std::string& sql, const std::vector<std::string>& params) {
  return QueryWithNulls(sql, params, nullptr);
}

Result<std::vector<std::vector<std::string>>> PgConnection::QueryWithNulls(
    const std::string& sql, const std::vector<std::string>& params,
    std::vector<std::vector<bool>>* nulls) {
  ScopedStatementTimer timer(&stats_);
  std::vector<const char*> values;
  values.reserve(params.size());
  for (const std::string& p : params) values.push_back(p.c_str());
  PGresult* result = PQexecParams(
      Conn(conn_), sql.c_str(), static_cast<int>(values.size()),
      /*paramTypes=*/nullptr, values.data(), /*paramLengths=*/nullptr,
      /*paramFormats=*/nullptr, /*resultFormat=*/0);
  if (PQresultStatus(result) != PGRES_TUPLES_OK) {
    PQclear(result);
    return Status::IoError("query failed: " + ConnError(Conn(conn_)));
  }
  const int rows = PQntuples(result);
  const int cols = PQnfields(result);
  std::vector<std::vector<std::string>> out(static_cast<size_t>(rows));
  if (nulls != nullptr) nulls->assign(static_cast<size_t>(rows), {});
  for (int r = 0; r < rows; ++r) {
    out[r].reserve(static_cast<size_t>(cols));
    if (nulls != nullptr) (*nulls)[r].reserve(static_cast<size_t>(cols));
    for (int c = 0; c < cols; ++c) {
      const bool is_null = PQgetisnull(result, r, c) != 0;
      out[r].emplace_back(is_null ? "" : PQgetvalue(result, r, c));
      if (nulls != nullptr) (*nulls)[r].push_back(is_null);
    }
  }
  PQclear(result);
  return out;
}

Status PgConnection::CopyIn(const std::string& table,
                            std::string_view payload) {
  ScopedStatementTimer timer(&stats_);
  PGresult* start =
      PQexec(Conn(conn_), ("COPY " + table + " FROM STDIN").c_str());
  const ExecStatusType status = PQresultStatus(start);
  PQclear(start);
  if (status != PGRES_COPY_IN) {
    return Status::IoError("COPY start failed: " + ConnError(Conn(conn_)));
  }
  if (PQputCopyData(Conn(conn_), payload.data(),
                    static_cast<int>(payload.size())) != 1) {
    return Status::IoError("COPY data failed: " + ConnError(Conn(conn_)));
  }
  if (PQputCopyEnd(Conn(conn_), nullptr) != 1) {
    return Status::IoError("COPY end failed: " + ConnError(Conn(conn_)));
  }
  PGresult* done = PQgetResult(Conn(conn_));
  const ExecStatusType done_status = PQresultStatus(done);
  PQclear(done);
  if (done_status != PGRES_COMMAND_OK) {
    return Status::IoError("COPY finish failed: " + ConnError(Conn(conn_)));
  }
  return Status::Ok();
}

}  // namespace ptldb
