#include "pgsql/sql_writer.h"

#include <sstream>

namespace ptldb {

namespace {

// Formats one label row as a COPY line: v, then three array literals.
void AppendLabelCopyLine(std::ostringstream* out, StopId v,
                         std::span<const LabelTuple> tuples) {
  *out << v << '\t';
  const auto append_array = [&](auto field) {
    *out << '{';
    bool first = true;
    for (const LabelTuple& t : tuples) {
      if (!first) *out << ',';
      first = false;
      *out << field(t);
    }
    *out << '}';
  };
  append_array([](const LabelTuple& t) { return static_cast<int64_t>(t.hub); });
  *out << '\t';
  // td/ta land in `integer` columns: checked narrowing, same as the
  // embedded engine's stored tier.
  append_array([](const LabelTuple& t) { return ToStoredTime(t.td); });
  *out << '\t';
  append_array([](const LabelTuple& t) { return ToStoredTime(t.ta); });
  *out << '\n';
}

}  // namespace

std::string LabelTableDdl() {
  return R"sql(CREATE TABLE lout (
  v    integer PRIMARY KEY,
  hubs integer[],
  tds  integer[],
  tas  integer[]
);
CREATE TABLE lin (
  v    integer PRIMARY KEY,
  hubs integer[],
  tds  integer[],
  tas  integer[]
);
)sql";
}

std::string TargetSetDdl(const std::string& set_name) {
  std::ostringstream out;
  out << "CREATE TABLE knn_naive_" << set_name << " (\n"
      << "  hub integer,\n  td integer,\n  vs integer[],\n  tas integer[],\n"
      << "  PRIMARY KEY (hub, td)\n);\n";
  const auto bucket = [&](const std::string& table, const char* hour,
                          const char* condensed) {
    out << "CREATE TABLE " << table << " (\n"
        << "  hub integer,\n  " << hour << " integer,\n"
        << "  vs integer[],\n  " << condensed << " integer[],\n"
        << "  tds_exp integer[],\n  vs_exp integer[],\n  tas_exp integer[],\n"
        << "  PRIMARY KEY (hub, " << hour << ")\n);\n";
  };
  bucket("knn_ea_" + set_name, "dephour", "tas");
  bucket("knn_ld_" + set_name, "arrhour", "tds");
  bucket("otm_ea_" + set_name, "dephour", "tas");
  bucket("otm_ld_" + set_name, "arrhour", "tds");
  return out.str();
}

std::string LabelTableCopy(const LabelSet& labels, const std::string& table) {
  std::ostringstream out;
  out << "COPY " << table << " (v, hubs, tds, tas) FROM stdin;\n";
  for (StopId v = 0; v < labels.num_stops(); ++v) {
    AppendLabelCopyLine(&out, v, labels.tuples(v));
  }
  out << "\\.\n";
  return out.str();
}

std::string V2vSql(V2vKind kind) {
  const char* select = "";
  const char* extra = "";
  switch (kind) {
    case V2vKind::kEarliestArrival:
      select = "SELECT MIN(inp.ta)";
      extra = "  AND outp.td >= $3\n";
      break;
    case V2vKind::kLatestDeparture:
      select = "SELECT MAX(outp.td)";
      extra = "  AND inp.ta <= $3\n";
      break;
    case V2vKind::kShortestDuration:
      select = "SELECT MIN(inp.ta - outp.td)";
      extra = "  AND outp.td >= $3\n  AND inp.ta <= $4\n";
      break;
  }
  std::ostringstream out;
  out << "WITH outp AS\n"
      << "  (SELECT UNNEST(hubs) AS hub,\n"
      << "          UNNEST(tds) AS td,\n"
      << "          UNNEST(tas) AS ta\n"
      << "   FROM lout WHERE v = $1),\n"
      << "inp AS\n"
      << "  (SELECT UNNEST(hubs) AS hub,\n"
      << "          UNNEST(tds) AS td,\n"
      << "          UNNEST(tas) AS ta\n"
      << "   FROM lin WHERE v = $2)\n"
      << select << "\n"
      << "FROM outp, inp\n"
      << "WHERE outp.hub = inp.hub AND outp.ta <= inp.td\n"
      << extra;
  return out.str();
}

std::string EaKnnNaiveSql(const std::string& set_name) {
  std::ostringstream out;
  out << "WITH n1 AS\n"
      << "  (SELECT v, hub, td, ta\n"
      << "   FROM (SELECT v,\n"
      << "                UNNEST(hubs) AS hub,\n"
      << "                UNNEST(tds) AS td,\n"
      << "                UNNEST(tas) AS ta\n"
      << "         FROM lout WHERE v = $1) n1a\n"
      << "   WHERE td >= $2)\n"
      << "SELECT v2, MIN(n2.ta)\n"
      << "FROM n1,\n"
      << "  (SELECT hub, td,\n"
      << "          UNNEST(vs[1:$3]) AS v2,\n"
      << "          UNNEST(tas[1:$3]) AS ta\n"
      << "   FROM knn_naive_" << set_name << ") n2\n"
      << "WHERE n1.hub = n2.hub\n"
      << "  AND n2.td >= n1.ta\n"
      << "GROUP BY v2\n"
      << "ORDER BY MIN(n2.ta), v2\n"
      << "LIMIT $3\n";
  return out.str();
}

std::string LdKnnNaiveSql(const std::string& set_name) {
  std::ostringstream out;
  out << "WITH n1 AS\n"
      << "  (SELECT v, hub, td, ta\n"
      << "   FROM (SELECT v,\n"
      << "                UNNEST(hubs) AS hub,\n"
      << "                UNNEST(tds) AS td,\n"
      << "                UNNEST(tas) AS ta\n"
      << "         FROM lout WHERE v = $1) n1a)\n"
      << "SELECT v2, MAX(n1_td)\n"
      << "FROM (SELECT n1.td AS n1_td, n2.v2, n2.ta\n"
      << "      FROM n1,\n"
      << "        (SELECT hub, td,\n"
      << "                UNNEST(vs[1:$3]) AS v2,\n"
      << "                UNNEST(tas[1:$3]) AS ta\n"
      << "         FROM knn_naive_" << set_name << ") n2\n"
      << "      WHERE n1.hub = n2.hub\n"
      << "        AND n2.td >= n1.ta\n"
      << "        AND n2.ta <= $2) j\n"
      << "GROUP BY v2\n"
      << "ORDER BY MAX(n1_td) DESC, v2\n"
      << "LIMIT $3\n";
  return out.str();
}

namespace {

// Code 3 of the paper; knn = true gives the EA-kNN flavor (LIMIT $3 and
// vs[1:$3] slices), knn = false the EA-OTM flavor.
std::string EaBucketSql(const std::string& table, bool knn) {
  const std::string limit = knn ? "   LIMIT $3\n" : "";
  const std::string slice = knn ? "[1:$3]" : "";
  std::ostringstream out;
  out << "WITH n1 AS\n"
      << "  (SELECT v, hub, td, ta\n"
      << "   FROM (SELECT v,\n"
      << "                UNNEST(hubs) AS hub,\n"
      << "                UNNEST(tds) AS td,\n"
      << "                UNNEST(tas) AS ta\n"
      << "         FROM lout WHERE v = $1) n1a\n"
      << "   WHERE td >= $2),\n"
      << "n1b AS\n"
      << "  (SELECT n1bb.*, n1.ta AS n1_ta, n1.td AS n1_td\n"
      << "   FROM " << table << " n1bb, n1\n"
      << "   WHERE n1bb.hub = n1.hub\n"
      << "     AND n1bb.dephour = FLOOR(n1.ta / 3600))\n"
      << "SELECT v2, MIN(ta)\n"
      << "FROM (\n"
      << "  (SELECT v2, MIN(n3.ta) AS ta\n"
      << "   FROM (SELECT UNNEST(tas" << slice << ") AS ta,\n"
      << "                UNNEST(vs" << slice << ") AS v2\n"
      << "         FROM n1b) n3\n"
      << "   GROUP BY v2\n"
      << "   ORDER BY MIN(n3.ta), v2\n"
      << limit << "  )\n"
      << "  UNION\n"
      << "  (SELECT n2.v2, MIN(n2.ta) AS ta\n"
      << "   FROM (SELECT n1_ta,\n"
      << "                UNNEST(tds_exp) AS td,\n"
      << "                UNNEST(vs_exp) AS v2,\n"
      << "                UNNEST(tas_exp) AS ta\n"
      << "         FROM n1b) n2\n"
      << "   WHERE n1_ta <= n2.td\n"
      << "   GROUP BY n2.v2\n"
      << "   ORDER BY MIN(n2.ta), v2\n"
      << limit << "  )) s53\n"
      << "GROUP BY v2\n"
      << "ORDER BY MIN(ta), v2\n"
      << (knn ? "LIMIT $3\n" : "");
  return out.str();
}

// Code 4 of the paper; the arrival-hour bucket arrives as the last
// parameter ($4 for kNN, $3 for OTM), computed client-side as
// LEAST(FLOOR(t/3600), max event hour).
std::string LdBucketSql(const std::string& table, bool knn) {
  const std::string limit = knn ? "   LIMIT $3\n" : "";
  const std::string slice = knn ? "[1:$3]" : "";
  const char* hour_param = knn ? "$4" : "$3";
  std::ostringstream out;
  out << "WITH n1 AS\n"
      << "  (SELECT v, hub, td, ta\n"
      << "   FROM (SELECT v,\n"
      << "                UNNEST(hubs) AS hub,\n"
      << "                UNNEST(tds) AS td,\n"
      << "                UNNEST(tas) AS ta\n"
      << "         FROM lout WHERE v = $1) n1a),\n"
      << "n1b AS\n"
      << "  (SELECT n1bb.*, n1.ta AS n1_ta, n1.td AS n1_td\n"
      << "   FROM " << table << " n1bb, n1\n"
      << "   WHERE n1bb.hub = n1.hub\n"
      << "     AND n1bb.arrhour = " << hour_param << ")\n"
      << "SELECT v2, MAX(td)\n"
      << "FROM (\n"
      << "  (SELECT v2, MAX(n3.n1_td) AS td\n"
      << "   FROM (SELECT n1_td, n1_ta,\n"
      << "                UNNEST(tds" << slice << ") AS td,\n"
      << "                UNNEST(vs" << slice << ") AS v2\n"
      << "         FROM n1b) n3\n"
      << "   WHERE n3.td >= n1_ta\n"
      << "   GROUP BY v2\n"
      << "   ORDER BY MAX(n3.n1_td) DESC, v2\n"
      << limit << "  )\n"
      << "  UNION\n"
      << "  (SELECT n2.v2, MAX(n2.n1_td) AS td\n"
      << "   FROM (SELECT n1_td, n1_ta,\n"
      << "                UNNEST(tds_exp) AS td,\n"
      << "                UNNEST(vs_exp) AS v2,\n"
      << "                UNNEST(tas_exp) AS ta\n"
      << "         FROM n1b) n2\n"
      << "   WHERE n2.td >= n1_ta\n"
      << "     AND n2.ta <= $2\n"
      << "   GROUP BY n2.v2\n"
      << "   ORDER BY MAX(n2.n1_td) DESC, v2\n"
      << limit << "  )) s53\n"
      << "GROUP BY v2\n"
      << "ORDER BY MAX(td) DESC, v2\n"
      << (knn ? "LIMIT $3\n" : "");
  return out.str();
}

}  // namespace

std::string EaKnnSql(const std::string& set_name) {
  return EaBucketSql("knn_ea_" + set_name, /*knn=*/true);
}

std::string EaOtmSql(const std::string& set_name) {
  return EaBucketSql("otm_ea_" + set_name, /*knn=*/false);
}

std::string LdKnnSql(const std::string& set_name) {
  return LdBucketSql("knn_ld_" + set_name, /*knn=*/true);
}

std::string LdOtmSql(const std::string& set_name) {
  return LdBucketSql("otm_ld_" + set_name, /*knn=*/false);
}

std::string NaiveTableConstructionSql(const std::string& set_name,
                                      const std::vector<StopId>& targets,
                                      uint32_t kmax) {
  std::ostringstream values;
  for (size_t i = 0; i < targets.size(); ++i) {
    if (i > 0) values << ", ";
    values << "(" << targets[i] << ")";
  }
  std::ostringstream out;
  out << "CREATE TABLE knn_naive_" << set_name << " AS\n"
      << "WITH tup AS\n"
      << "  (SELECT x.hub, x.td, x.ta, x.v\n"
      << "   FROM (SELECT v,\n"
      << "                UNNEST(hubs) AS hub,\n"
      << "                UNNEST(tds) AS td,\n"
      << "                UNNEST(tas) AS ta\n"
      << "         FROM lin\n"
      << "         WHERE v IN (SELECT t FROM (VALUES " << values.str()
      << ") AS targets(t))) x),\n"
      << "best AS\n"
      << "  (SELECT hub, td, v, MIN(ta) AS ta\n"
      << "   FROM tup GROUP BY hub, td, v),\n"
      << "ranked AS\n"
      << "  (SELECT hub, td, v, ta,\n"
      << "          ROW_NUMBER() OVER (PARTITION BY hub, td\n"
      << "                             ORDER BY ta, v) AS rn\n"
      << "   FROM best)\n"
      << "SELECT hub, td,\n"
      << "       ARRAY_AGG(v ORDER BY ta, v)\n"
      << "         FILTER (WHERE rn <= " << kmax << ") AS vs,\n"
      << "       ARRAY_AGG(ta ORDER BY ta, v)\n"
      << "         FILTER (WHERE rn <= " << kmax << ") AS tas\n"
      << "FROM ranked\n"
      << "GROUP BY hub, td;\n"
      << "ALTER TABLE knn_naive_" << set_name
      << " ADD PRIMARY KEY (hub, td);\n";
  return out.str();
}

std::string FullExportScript(const TtlIndex& index) {
  std::ostringstream out;
  out << "-- PTLDB export: lout/lin label tables for "
      << index.num_stops() << " stops.\n"
      << "-- Generated by the ptldb library; run through psql.\n"
      << "BEGIN;\n"
      << LabelTableDdl() << LabelTableCopy(index.out, "lout")
      << LabelTableCopy(index.in, "lin") << "COMMIT;\n"
      << "ANALYZE lout;\nANALYZE lin;\n"
      << "-- Example (Code 1, earliest arrival with s, g, t inlined via "
         "\\set):\n"
      << "-- " << "psql -v s=0 -v g=1 -v t=28800 ...\n";
  return out.str();
}

}  // namespace ptldb
