#ifndef PTLDB_PGSQL_PG_CLIENT_H_
#define PTLDB_PGSQL_PG_CLIENT_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace ptldb {

/// Thin RAII wrapper around a libpq connection. Only built when libpq is
/// available (PTLDB_HAVE_LIBPQ); everything PTLDB needs from PostgreSQL:
/// command execution, parameterized queries with text results, and COPY
/// FROM STDIN bulk loading.
class PgConnection {
 public:
  /// Connects using a libpq conninfo string, e.g.
  /// "host=/tmp/ptldb_pg port=5433 dbname=ptldb user=postgres".
  static Result<std::unique_ptr<PgConnection>> Connect(
      const std::string& conninfo);

  ~PgConnection();
  PgConnection(const PgConnection&) = delete;
  PgConnection& operator=(const PgConnection&) = delete;

  /// Runs one or more SQL commands, discarding results.
  Status Exec(const std::string& sql);

  /// Runs a parameterized query; params bind $1..$n as text. Returns all
  /// result fields as strings ("" for NULL — PTLDB columns are NOT NULL,
  /// and the aggregate queries return zero rows or non-null values except
  /// for empty v2v results, which callers detect via IsNull).
  Result<std::vector<std::vector<std::string>>> Query(
      const std::string& sql, const std::vector<std::string>& params);

  /// Like Query but also reports per-field NULLness via `nulls` (same
  /// shape as the result) when non-null.
  Result<std::vector<std::vector<std::string>>> QueryWithNulls(
      const std::string& sql, const std::vector<std::string>& params,
      std::vector<std::vector<bool>>* nulls);

  /// Bulk-loads `payload` (tab-separated COPY text rows, newline
  /// terminated, without the trailing "\\.") into `table`.
  Status CopyIn(const std::string& table, std::string_view payload);

 private:
  explicit PgConnection(void* conn) : conn_(conn) {}

  void* conn_;  // PGconn*; kept as void* so the header needs no libpq-fe.h.
};

}  // namespace ptldb

#endif  // PTLDB_PGSQL_PG_CLIENT_H_
