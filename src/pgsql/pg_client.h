#ifndef PTLDB_PGSQL_PG_CLIENT_H_
#define PTLDB_PGSQL_PG_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace ptldb {

/// Connection-establishment policy: how hard Connect tries before giving
/// up, and how long a single statement may run once connected.
struct PgConnectOptions {
  /// Total connection attempts (>= 1). Transient failures — the server
  /// still starting up, a dropped socket — are retried with exponential
  /// backoff; authentication-style failures still consume attempts but
  /// typically fail identically each time.
  uint32_t max_attempts = 3;
  /// Sleep before the second attempt; doubles per retry. Real wall-clock
  /// time (this is an external server, not the simulated device).
  uint32_t initial_backoff_ms = 200;
  /// Per-connection-attempt timeout, appended to the conninfo as
  /// connect_timeout (seconds). 0 keeps libpq's default (wait forever).
  uint32_t connect_timeout_s = 5;
  /// Applied via SET statement_timeout after connecting so a pathological
  /// query fails fast instead of hanging the benchmark. 0 disables.
  uint32_t statement_timeout_ms = 60'000;
};

/// Cumulative timing of statement round-trips on one connection — wall
/// time from issuing a statement to the last result byte, as seen by the
/// client. The header (and this struct) compiles without libpq; only the
/// implementation requires it.
struct PgStatementStats {
  uint64_t statements = 0;  ///< Exec + Query + CopyIn calls completed.
  uint64_t total_ns = 0;    ///< Sum of round-trip wall times.
  uint64_t max_ns = 0;      ///< Slowest single round-trip.
};

/// Thin RAII wrapper around a libpq connection. Only built when libpq is
/// available (PTLDB_HAVE_LIBPQ); everything PTLDB needs from PostgreSQL:
/// command execution, parameterized queries with text results, and COPY
/// FROM STDIN bulk loading.
class PgConnection {
 public:
  /// Connects using a libpq conninfo string, e.g.
  /// "host=/tmp/ptldb_pg port=5433 dbname=ptldb user=postgres".
  /// Retries per `options` and installs its statement timeout.
  static Result<std::unique_ptr<PgConnection>> Connect(
      const std::string& conninfo, const PgConnectOptions& options = {});

  ~PgConnection();
  PgConnection(const PgConnection&) = delete;
  PgConnection& operator=(const PgConnection&) = delete;

  /// Runs one or more SQL commands, discarding results.
  Status Exec(const std::string& sql);

  /// Runs a parameterized query; params bind $1..$n as text. Returns all
  /// result fields as strings ("" for NULL — PTLDB columns are NOT NULL,
  /// and the aggregate queries return zero rows or non-null values except
  /// for empty v2v results, which callers detect via IsNull).
  Result<std::vector<std::vector<std::string>>> Query(
      const std::string& sql, const std::vector<std::string>& params);

  /// Like Query but also reports per-field NULLness via `nulls` (same
  /// shape as the result) when non-null.
  Result<std::vector<std::vector<std::string>>> QueryWithNulls(
      const std::string& sql, const std::vector<std::string>& params,
      std::vector<std::vector<bool>>* nulls);

  /// Bulk-loads `payload` (tab-separated COPY text rows, newline
  /// terminated, without the trailing "\\.") into `table`.
  Status CopyIn(const std::string& table, std::string_view payload);

  /// Round-trip accounting since construction (or the last reset). Every
  /// Exec/Query/CopyIn — successful or not — is timed, so benchmark
  /// drivers can report server-side latency separately from client-side
  /// row decoding. Not thread-safe: a PgConnection serves one thread.
  const PgStatementStats& statement_stats() const { return stats_; }
  void ResetStatementStats() { stats_ = {}; }

 private:
  explicit PgConnection(void* conn) : conn_(conn) {}

  /// RAII timer used by every statement entry point; see pg_client.cc.
  class ScopedStatementTimer;

  void* conn_;  // PGconn*; kept as void* so the header needs no libpq-fe.h.
  PgStatementStats stats_;
};

}  // namespace ptldb

#endif  // PTLDB_PGSQL_PG_CLIENT_H_
