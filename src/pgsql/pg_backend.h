#ifndef PTLDB_PGSQL_PG_BACKEND_H_
#define PTLDB_PGSQL_PG_BACKEND_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "pgsql/pg_client.h"
#include "ptldb/ptldb.h"

namespace ptldb {

/// PTLDB on real PostgreSQL — the system the paper actually evaluates.
/// Mirrors the tables of an embedded PtldbDatabase into a PostgreSQL
/// schema and answers every query type by executing the paper's literal
/// SQL (Codes 1-4) through libpq.
///
/// Both backends expose the same query API; the test suite asserts answer
/// equality between them when a server is reachable (the environment
/// variable PTLDB_PG_CONNINFO, see scripts/start_test_postgres.sh).
class PgPtldb {
 public:
  /// Connects and prepares (drops + recreates) the `schema` namespace.
  static Result<std::unique_ptr<PgPtldb>> Connect(const std::string& conninfo,
                                                  const std::string& schema);

  /// Copies every table of `src` (lout/lin plus all registered target
  /// sets) into the schema via COPY, creates the primary keys, ANALYZEs.
  Status MirrorFrom(PtldbDatabase* src);

  // --- The same query API as PtldbDatabase, evaluated by PostgreSQL ---
  Result<EventTime> EarliestArrival(StopId s, StopId g, EventTime t);
  Result<EventTime> LatestDeparture(StopId s, StopId g, EventTime t_end);
  Result<Duration> ShortestDuration(StopId s, StopId g, EventTime t,
                                    EventTime t_end);
  Result<std::vector<StopTimeResult>> EaKnn(const std::string& set_name,
                                            StopId q, EventTime t, uint32_t k);
  Result<std::vector<StopTimeResult>> LdKnn(const std::string& set_name,
                                            StopId q, EventTime t, uint32_t k);
  Result<std::vector<StopTimeResult>> EaKnnNaive(const std::string& set_name,
                                                 StopId q, EventTime t,
                                                 uint32_t k);
  Result<std::vector<StopTimeResult>> LdKnnNaive(const std::string& set_name,
                                                 StopId q, EventTime t,
                                                 uint32_t k);
  Result<std::vector<StopTimeResult>> EaOneToMany(const std::string& set_name,
                                                  StopId q, EventTime t);
  Result<std::vector<StopTimeResult>> LdOneToMany(const std::string& set_name,
                                                  StopId q, EventTime t);

  PgConnection* connection() { return conn_.get(); }

 private:
  PgPtldb(std::unique_ptr<PgConnection> conn, std::string schema)
      : conn_(std::move(conn)), schema_(std::move(schema)) {}

  Result<std::vector<StopTimeResult>> RunListQuery(
      const std::string& sql, const std::vector<std::string>& params);

  std::unique_ptr<PgConnection> conn_;
  std::string schema_;
  std::map<std::string, PtldbDatabase::TargetSetInfo> set_info_;
};

}  // namespace ptldb

#endif  // PTLDB_PGSQL_PG_BACKEND_H_
