#ifndef PTLDB_TTL_BUILDER_H_
#define PTLDB_TTL_BUILDER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "timetable/timetable.h"
#include "ttl/label.h"
#include "ttl/ordering.h"

namespace ptldb {

/// Options for TTL index construction.
struct TtlBuildOptions {
  /// Vertex-order heuristic; ignored when custom_order is non-empty.
  OrderingStrategy ordering = OrderingStrategy::kDegree;
  /// Explicit vertex order (most important first); must be a permutation of
  /// all stops when provided. The paper used the TTL authors' order files —
  /// this is the hook for such external orders.
  std::vector<StopId> custom_order;
  /// Label-coverage pruning (the Pruned-Landmark-Labeling idea adapted to
  /// timetables). Turning it off yields plain hierarchical labels — still
  /// correct, but much larger; kept as an ablation switch.
  bool prune = true;
  /// Adds the dummy tuples of Section 3.1 that let PTLDB answer every v2v
  /// query with a single join. Disable only to inspect raw TTL labels.
  bool add_dummy_tuples = true;
  /// Worker threads for the wave-parallel build: 0 picks one per hardware
  /// thread, 1 runs fully in-process (no pool). The produced index is
  /// byte-identical for every value — see DESIGN.md, "Wave-parallel
  /// preprocessing" — so this is purely a speed knob.
  uint32_t num_threads = 1;
  /// Cap on the number of hubs per wave (0 = the built-in default). The
  /// wave partition depends only on the stop count and this cap — never on
  /// num_threads or the machine — which is what keeps the output
  /// reproducible. Larger caps expose more parallelism but weaken in-scan
  /// pruning (more candidates for the merge to discard).
  uint32_t max_wave_hubs = 0;
};

/// Per-wave construction statistics (wave-parallel build telemetry).
struct TtlWaveStats {
  uint32_t first_rank = 0;       ///< Rank of the wave's first hub.
  uint32_t num_hubs = 0;         ///< Hubs scanned in this wave.
  uint64_t candidate_tuples = 0; ///< Tuples emitted by the wave's scans.
  uint64_t merged_tuples = 0;    ///< Candidates kept by the rank-order merge.
  uint64_t scan_pruned = 0;      ///< Pruned in-scan against the wave snapshot.
  uint64_t merge_pruned = 0;     ///< Dropped by the sequential merge recheck.
  double seconds = 0.0;          ///< Wall time of the wave (scan + merge).
};

/// Construction statistics (feeds the Table 7 bench).
struct TtlBuildStats {
  double preprocess_seconds = 0.0;
  uint64_t out_tuples = 0;        ///< Non-dummy tuples in L_out.
  uint64_t in_tuples = 0;         ///< Non-dummy tuples in L_in.
  uint64_t dummy_tuples = 0;      ///< Dummy tuples added per direction.
  uint64_t pruned_candidates = 0; ///< Pareto pairs pruned by label coverage
                                  ///< (in-scan + merge-recheck prunes).
  uint32_t num_threads_used = 1;  ///< Workers the build actually ran with.
  std::vector<TtlWaveStats> waves;///< One entry per rank wave, in order.
};

/// Builds the TTL index for a timetable (the preprocessing of Section 2.2):
/// for each hub in importance order, a backward and a forward profile scan
/// compute all Pareto-optimal journeys between the hub and every
/// lower-ranked stop, pruned against the labels built so far.
///
/// Hubs are processed in rank waves: every hub of a wave is scanned
/// independently (in parallel when options.num_threads != 1) against the
/// immutable label snapshot of the preceding waves, then the candidates are
/// merged sequentially in rank order, re-checking coverage against the
/// up-to-date labels. The result is byte-identical to the fully serial
/// hub-at-a-time construction for every thread count and wave partition
/// (both produce exactly the canonical labels — the Pareto journeys whose
/// highest-ranked stop is the hub itself); ttl_determinism_test pins this.
Result<TtlIndex> BuildTtlIndex(const Timetable& tt,
                               const TtlBuildOptions& options = {},
                               TtlBuildStats* stats = nullptr);

/// Adds the dummy tuples of Section 3.1 to an index built with
/// add_dummy_tuples=false: for every stop v, a tuple <v, x, x> is added to
/// both L_out(v) and L_in(v) for each x in
///   {ta of hub-v tuples in any L_out(u)} ∪
///   {td of hub-v tuples in any L_in(u)} ∪
///   {arrival-event times at v}.
/// This matches Table 1 of the paper on all seven example vertices and
/// guarantees the single-join v2v query is correct (Theorem 3.1.1).
/// Returns the number of dummy tuples added per direction.
uint64_t AugmentWithDummyTuples(const Timetable& tt, TtlIndex* index);

}  // namespace ptldb

#endif  // PTLDB_TTL_BUILDER_H_
