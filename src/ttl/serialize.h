#ifndef PTLDB_TTL_SERIALIZE_H_
#define PTLDB_TTL_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "ttl/label.h"

namespace ptldb {

/// Persists a TTL index to a binary file. Together with SaveTimetable this
/// backs the benchmark dataset cache (building labels dominates bench
/// startup, so benches build once and reload).
Status SaveTtlIndex(const TtlIndex& index, const std::string& path);

/// Loads an index previously written by SaveTtlIndex.
Result<TtlIndex> LoadTtlIndex(const std::string& path);

}  // namespace ptldb

#endif  // PTLDB_TTL_SERIALIZE_H_
