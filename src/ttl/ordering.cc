#include "ttl/ordering.h"

#include <algorithm>
#include <cstdint>

namespace ptldb {

std::vector<StopId> ComputeVertexOrder(const Timetable& tt,
                                       OrderingStrategy strategy) {
  const uint32_t n = tt.num_stops();
  std::vector<StopId> order(n);
  for (StopId v = 0; v < n; ++v) order[v] = v;
  if (strategy == OrderingStrategy::kIdentity) return order;

  std::vector<uint64_t> score(n, 0);
  switch (strategy) {
    case OrderingStrategy::kDegree:
      for (const Connection& c : tt.connections()) {
        score[c.from]++;
        score[c.to]++;
      }
      break;
    case OrderingStrategy::kEventCount:
      for (StopId v = 0; v < n; ++v) {
        score[v] = tt.arrival_events(v).size() + tt.departure_events(v).size();
      }
      break;
    case OrderingStrategy::kIdentity:
      break;
  }
  std::stable_sort(order.begin(), order.end(), [&](StopId a, StopId b) {
    return score[a] != score[b] ? score[a] > score[b] : a < b;
  });
  return order;
}

std::vector<uint32_t> RanksFromOrder(const std::vector<StopId>& order) {
  std::vector<uint32_t> rank(order.size(), 0);
  for (uint32_t i = 0; i < order.size(); ++i) rank[order[i]] = i;
  return rank;
}

}  // namespace ptldb
