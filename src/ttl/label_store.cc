#include "ttl/label_store.h"

#include <utility>

#include "common/checksum.h"

namespace ptldb {

Status LabelStore::BuildTier(const LabelSet& labels, Tier* tier) {
  tier->arena.clear();
  tier->offsets.clear();
  tier->offsets.reserve(labels.num_stops() + 1);
  std::vector<int32_t> hubs, tds, tas;
  for (StopId v = 0; v < labels.num_stops(); ++v) {
    tier->offsets.push_back(tier->arena.size());
    const auto tuples = labels.tuples(v);
    hubs.clear();
    tds.clear();
    tas.clear();
    hubs.reserve(tuples.size());
    tds.reserve(tuples.size());
    tas.reserve(tuples.size());
    for (const LabelTuple& t : tuples) {
      hubs.push_back(static_cast<int32_t>(t.hub));
      tds.push_back(ToStoredTime(t.td));
      tas.push_back(ToStoredTime(t.ta));
    }
    PTLDB_RETURN_IF_ERROR(EncodeLabelBucket(hubs, tds, tas, &tier->arena));
  }
  tier->offsets.push_back(tier->arena.size());
  tier->arena.shrink_to_fit();
  return Status::Ok();
}

Result<std::unique_ptr<LabelStore>> LabelStore::Build(const TtlIndex& index) {
  auto store = std::unique_ptr<LabelStore>(new LabelStore());
  store->num_stops_ = index.num_stops();
  store->total_labels_ =
      index.out.total_tuples() + index.in.total_tuples();
  PTLDB_RETURN_IF_ERROR(BuildTier(index.out, &store->out_));
  PTLDB_RETURN_IF_ERROR(BuildTier(index.in, &store->in_));
  store->content_crc_ = Crc32cExtend(
      Crc32c(store->out_.arena.data(), store->out_.arena.size()),
      store->in_.arena.data(), store->in_.arena.size());
  return store;
}

std::string_view LabelStore::bucket_bytes(Direction dir, StopId v) const {
  const Tier& t = tier(dir);
  if (v >= num_stops_) return {};
  return std::string_view(t.arena)
      .substr(t.offsets[v], t.offsets[v + 1] - t.offsets[v]);
}

Result<LabelView> LabelStore::Decode(Direction dir, StopId v,
                                     LabelArrays* scratch) const {
  if (v >= num_stops_) {
    return Status::InvalidArgument("LabelStore::Decode: stop out of range");
  }
  PTLDB_RETURN_IF_ERROR(DecodeLabelBucket(bucket_bytes(dir, v), scratch));
  return LabelView{scratch->hubs, scratch->tds, scratch->tas};
}

}  // namespace ptldb
