#include "ttl/serialize.h"

#include <type_traits>

#include "common/binary_io.h"

namespace ptldb {

namespace {

constexpr uint64_t kMagic = 0x50544C4254544C31ULL;  // "PTLBTTL1"

// On-wire tuple record: times in the 32-bit stored encoding, field
// order/widths matching the historical `LabelTuple` layout (20 packed
// bytes), so pre-refactor label files load byte-identically.
struct StoredLabelTuple {
  uint32_t hub = 0;
  StoredTime td = 0;
  StoredTime ta = 0;
  uint32_t pivot = 0;
  uint32_t trip = 0;
};
static_assert(sizeof(StoredLabelTuple) == 20);
static_assert(std::is_trivially_copyable_v<StoredLabelTuple>);

void WriteLabelSet(BinaryWriter* w, const LabelSet& set) {
  w->Write<uint32_t>(set.num_stops());
  for (StopId v = 0; v < set.num_stops(); ++v) {
    const auto tuples = set.tuples(v);
    std::vector<StoredLabelTuple> buf;
    buf.reserve(tuples.size());
    for (const LabelTuple& t : tuples) {
      buf.push_back(
          {t.hub, ToStoredTime(t.td), ToStoredTime(t.ta), t.pivot, t.trip});
    }
    w->WriteVector(buf);
  }
}

bool ReadLabelSet(BinaryReader* r, LabelSet* set) {
  const auto n = r->Read<uint32_t>();
  if (!r->ok()) return false;
  *set = LabelSet(n);
  for (StopId v = 0; v < n; ++v) {
    const auto buf = r->ReadVector<StoredLabelTuple>();
    if (!r->ok()) return false;
    auto& tuples = set->mutable_tuples(v);
    tuples.reserve(buf.size());
    for (const StoredLabelTuple& t : buf) {
      tuples.push_back({t.hub, FromStoredTime(t.td), FromStoredTime(t.ta),
                        t.pivot, t.trip});
    }
  }
  return true;
}

}  // namespace

Status SaveTtlIndex(const TtlIndex& index, const std::string& path) {
  BinaryWriter w(path);
  if (!w.ok()) return Status::IoError("cannot open " + path);
  w.Write(kMagic);
  WriteLabelSet(&w, index.out);
  WriteLabelSet(&w, index.in);
  w.WriteVector(index.order);
  w.WriteVector(index.rank);
  return w.FinishWithChecksum();
}

Result<TtlIndex> LoadTtlIndex(const std::string& path) {
  BinaryReader r(path);
  if (!r.ok()) return Status::IoError("cannot open " + path);
  if (r.Read<uint64_t>() != kMagic) {
    return Status::Corruption("bad label file magic: " + path);
  }
  TtlIndex index;
  if (!ReadLabelSet(&r, &index.out) || !ReadLabelSet(&r, &index.in)) {
    return Status::Corruption("truncated label file " + path);
  }
  index.order = r.ReadVector<StopId>();
  index.rank = r.ReadVector<uint32_t>();
  if (!r.ok() || index.order.size() != index.out.num_stops() ||
      index.rank.size() != index.out.num_stops() ||
      index.in.num_stops() != index.out.num_stops()) {
    return Status::Corruption("inconsistent label file " + path);
  }
  PTLDB_RETURN_IF_ERROR(r.VerifyChecksum());
  return index;
}

}  // namespace ptldb
