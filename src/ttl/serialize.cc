#include "ttl/serialize.h"

#include "common/binary_io.h"

namespace ptldb {

namespace {

constexpr uint64_t kMagic = 0x50544C4254544C31ULL;  // "PTLBTTL1"

void WriteLabelSet(BinaryWriter* w, const LabelSet& set) {
  w->Write<uint32_t>(set.num_stops());
  for (StopId v = 0; v < set.num_stops(); ++v) {
    const auto tuples = set.tuples(v);
    std::vector<LabelTuple> buf(tuples.begin(), tuples.end());
    w->WriteVector(buf);
  }
}

bool ReadLabelSet(BinaryReader* r, LabelSet* set) {
  const auto n = r->Read<uint32_t>();
  if (!r->ok()) return false;
  *set = LabelSet(n);
  for (StopId v = 0; v < n; ++v) {
    set->mutable_tuples(v) = r->ReadVector<LabelTuple>();
    if (!r->ok()) return false;
  }
  return true;
}

}  // namespace

Status SaveTtlIndex(const TtlIndex& index, const std::string& path) {
  BinaryWriter w(path);
  if (!w.ok()) return Status::IoError("cannot open " + path);
  w.Write(kMagic);
  WriteLabelSet(&w, index.out);
  WriteLabelSet(&w, index.in);
  w.WriteVector(index.order);
  w.WriteVector(index.rank);
  return w.FinishWithChecksum();
}

Result<TtlIndex> LoadTtlIndex(const std::string& path) {
  BinaryReader r(path);
  if (!r.ok()) return Status::IoError("cannot open " + path);
  if (r.Read<uint64_t>() != kMagic) {
    return Status::Corruption("bad label file magic: " + path);
  }
  TtlIndex index;
  if (!ReadLabelSet(&r, &index.out) || !ReadLabelSet(&r, &index.in)) {
    return Status::Corruption("truncated label file " + path);
  }
  index.order = r.ReadVector<StopId>();
  index.rank = r.ReadVector<uint32_t>();
  if (!r.ok() || index.order.size() != index.out.num_stops() ||
      index.rank.size() != index.out.num_stops() ||
      index.in.num_stops() != index.out.num_stops()) {
    return Status::Corruption("inconsistent label file " + path);
  }
  PTLDB_RETURN_IF_ERROR(r.VerifyChecksum());
  return index;
}

}  // namespace ptldb
