#ifndef PTLDB_TTL_QUERY_H_
#define PTLDB_TTL_QUERY_H_

#include "common/time_util.h"
#include "ttl/label.h"

namespace ptldb {

/// Main-memory TTL queries over a TtlIndex (Section 2.2 of the paper).
/// Each query inspects only L_out(s) and L_in(g) and picks the best of the
/// three TTL candidate cases: (i) tuples of L_out(s) with hub == g,
/// (ii) tuples of L_in(g) with hub == s, (iii) joined tuple pairs with a
/// common hub and l1.ta <= l2.td.
///
/// These are the reference answers the PTLDB database plans are tested
/// against; they work with or without dummy tuples.

/// Earliest arrival at g over journeys leaving s no sooner than t;
/// EventTime::Infinity() when no journey qualifies.
EventTime TtlEarliestArrival(const TtlIndex& index, StopId s, StopId g,
                             EventTime t);

/// Latest departure from s over journeys reaching g no later than t_end;
/// EventTime::NegInfinity() when no journey qualifies.
EventTime TtlLatestDeparture(const TtlIndex& index, StopId s, StopId g,
                             EventTime t_end);

/// Shortest duration over journeys inside [t, t_end]; Duration::Infinity()
/// when no
/// journey qualifies.
Duration TtlShortestDuration(const TtlIndex& index, StopId s, StopId g,
                             EventTime t, EventTime t_end);

/// The unified single-join variants used by PTLDB's SQL (Code 1): only case
/// (iii) is evaluated, which is complete once dummy tuples are present
/// (Theorem 3.1.1). The test suite checks these against the three-case
/// versions above to validate the dummy-tuple construction.
EventTime TtlEarliestArrivalJoinOnly(const TtlIndex& index, StopId s,
                                     StopId g, EventTime t);
EventTime TtlLatestDepartureJoinOnly(const TtlIndex& index, StopId s,
                                     StopId g, EventTime t_end);
Duration TtlShortestDurationJoinOnly(const TtlIndex& index, StopId s,
                                     StopId g, EventTime t, EventTime t_end);

}  // namespace ptldb

#endif  // PTLDB_TTL_QUERY_H_
