#ifndef PTLDB_TTL_ORDERING_H_
#define PTLDB_TTL_ORDERING_H_

#include <vector>

#include "timetable/timetable.h"

namespace ptldb {

/// How the strict TTL vertex order (Section 2.2) is chosen. The paper used
/// ordering files shipped by the TTL authors; this reimplementation offers
/// comparable heuristics (the ablation bench compares them).
enum class OrderingStrategy {
  /// Descending number of incident connections — the Pruned Landmark
  /// Labeling heuristic [4], the default.
  kDegree,
  /// Descending number of distinct event times (how "busy" a station is).
  kEventCount,
  /// Stop-id order; a deliberately poor baseline for the ablation bench.
  kIdentity,
};

/// Computes a vertex order (most important first). Deterministic.
std::vector<StopId> ComputeVertexOrder(const Timetable& tt,
                                       OrderingStrategy strategy);

/// Inverts an order into rank positions: rank[order[i]] = i.
std::vector<uint32_t> RanksFromOrder(const std::vector<StopId>& order);

}  // namespace ptldb

#endif  // PTLDB_TTL_ORDERING_H_
