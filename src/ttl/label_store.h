#ifndef PTLDB_TTL_LABEL_STORE_H_
#define PTLDB_TTL_LABEL_STORE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "timetable/types.h"
#include "ttl/label.h"
#include "ttl/label_codec.h"

namespace ptldb {

/// Borrowed structure-of-arrays view of one stop's decoded label row —
/// the scan interface the query layer uses for both representations:
/// raw heap rows (spans over the Row's array columns) and compressed
/// buckets (spans over a decode scratch buffer). Valid only while the
/// backing storage (Row or LabelArrays scratch) is alive and unmodified.
struct LabelView {
  std::span<const int32_t> hubs;
  std::span<const int32_t> tds;
  std::span<const int32_t> tas;

  size_t size() const { return hubs.size(); }
};

/// RAM-resident compressed tier for the TTL `lout`/`lin` label tables
/// (ROADMAP item 2, after *Public Transit Labeling*). Built once from the
/// in-memory TtlIndex at PtldbDatabase::Build time: each stop's (hub, td)
/// -sorted tuples become one delta+varint SoA bucket (see label_codec.h)
/// laid out back-to-back in a per-direction arena, addressed by a
/// stop-indexed offset table. The heap-file rows stay the durable tier;
/// this tier is an equivalent, CRC-checked, ~4-8x smaller copy that warm
/// queries scan without touching the buffer pool.
///
/// Immutable after Build, so concurrent readers need no locking; each
/// reader supplies its own LabelArrays scratch to Decode into.
class LabelStore {
 public:
  enum class Direction { kOut, kIn };

  /// Encodes every stop of both label sets. Deterministic: the arenas are
  /// a pure function of the index contents, so content_crc() is stable
  /// across build thread counts (pinned by ttl_determinism_test).
  static Result<std::unique_ptr<LabelStore>> Build(const TtlIndex& index);

  /// Decodes stop v's bucket into *scratch and returns spans over it.
  /// kInvalidArgument when v is out of range; kCorruption when the
  /// resident bytes fail validation (bit rot in RAM — surfaced, never
  /// silently served).
  Result<LabelView> Decode(Direction dir, StopId v,
                           LabelArrays* scratch) const;

  /// The raw encoded bucket for stop v (empty view when out of range).
  /// Exposed for tests and determinism goldens.
  std::string_view bucket_bytes(Direction dir, StopId v) const;

  uint32_t num_stops() const { return num_stops_; }

  /// Total encoded bytes held resident (both directions, arenas only).
  uint64_t bytes_resident() const {
    return out_.arena.size() + in_.arena.size();
  }

  /// Total label tuples across both directions — the denominator of the
  /// `ttl.labels.bytes_per_label` metric.
  uint64_t total_labels() const { return total_labels_; }

  /// CRC-32C over both arenas (out then in) — the determinism golden.
  uint32_t content_crc() const { return content_crc_; }

 private:
  // One direction's buckets: stop v's bytes are
  // arena[offsets[v], offsets[v + 1]).
  struct Tier {
    std::string arena;
    std::vector<uint64_t> offsets;  // num_stops + 1 entries
  };

  LabelStore() = default;

  static Status BuildTier(const LabelSet& labels, Tier* tier);
  const Tier& tier(Direction dir) const {
    return dir == Direction::kOut ? out_ : in_;
  }

  Tier out_;
  Tier in_;
  uint32_t num_stops_ = 0;
  uint64_t total_labels_ = 0;
  uint32_t content_crc_ = 0;
};

}  // namespace ptldb

#endif  // PTLDB_TTL_LABEL_STORE_H_
