#include "ttl/builder.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "common/thread_pool.h"

namespace ptldb {

namespace {

// Hubs per wave once the doubling ramp-up is over (see WavePartition).
constexpr uint32_t kDefaultWaveCap = 64;

// A reached Pareto pair during a profile scan, with the connection that
// starts (backward scan) or ends (forward scan) the journey.
struct ScanEntry {
  EventTime dep;
  EventTime arr;
  ConnectionId conn = kInvalidConnection;
};

// One label tuple produced by a hub scan, waiting for the rank-order merge.
struct Candidate {
  StopId stop = kInvalidStop;  ///< The lower-ranked stop the tuple lands on.
  LabelTuple tuple;
};

// Everything one hub's scans emit: lout/lin candidates in emission order
// (the order the serial builder would have appended them) plus the number
// of Pareto pairs the scans pruned against the wave snapshot.
struct HubCandidates {
  std::vector<Candidate> out;
  std::vector<Candidate> in;
  uint64_t scan_pruned = 0;
};

// Contiguous (hub -> tuple range) index over one stop's label vector.
// Label vectors are appended hub-by-hub during construction, so each hub's
// tuples form one contiguous run.
class HubRangeIndex {
 public:
  void Build(const std::vector<LabelTuple>& tuples) {
    ranges_.clear();
    size_t i = 0;
    while (i < tuples.size()) {
      size_t j = i;
      while (j < tuples.size() && tuples[j].hub == tuples[i].hub) ++j;
      ranges_.emplace(tuples[i].hub,
                      std::make_pair(static_cast<uint32_t>(i),
                                     static_cast<uint32_t>(j)));
      i = j;
    }
  }

  // Returns [begin, end) of hub `w`, or (0,0) when absent.
  std::pair<uint32_t, uint32_t> Find(StopId w) const {
    const auto it = ranges_.find(w);
    return it == ranges_.end() ? std::make_pair(0u, 0u) : it->second;
  }

 private:
  std::unordered_map<StopId, std::pair<uint32_t, uint32_t>> ranges_;
};

// First tuple in [begin, end) of `tuples` with td >= t; `end` when none.
// Within a (stop, hub) group tuples are Pareto (td and ta both ascending),
// so the hit has the minimum ta among feasible tuples.
uint32_t FirstDepartingNotBefore(const std::vector<LabelTuple>& tuples,
                                 uint32_t begin, uint32_t end, EventTime t) {
  while (begin < end) {
    const uint32_t mid = begin + (end - begin) / 2;
    if (tuples[mid].td >= t) {
      end = mid;
    } else {
      begin = mid + 1;
    }
  }
  return begin;
}

// Does an existing-label query certify EA(v -> hub, dep >= td) <= ta?
// `in_h` is L_in(hub) with `in_hub_index` built over it; `lout` is the
// label state the certificate may draw from. Never consults tuples whose
// hub is the one being certified against, so the predicate gives the same
// answer whether it runs mid-scan (serial) or at merge time (wave build).
bool CoveredOut(const std::vector<std::vector<LabelTuple>>& lout,
                const std::vector<LabelTuple>& in_h,
                const HubRangeIndex& in_hub_index, StopId v, EventTime td,
                EventTime ta) {
  // Direct case: a v -> hub journey already recorded in L_in(hub).
  {
    const auto [b, e] = in_hub_index.Find(v);
    const uint32_t i = FirstDepartingNotBefore(in_h, b, e, td);
    if (i < e && in_h[i].ta <= ta) return true;
  }
  // Join case: v -> w (L_out(v)) chained with w -> hub (L_in(hub)).
  const auto& out_v = lout[v];
  size_t i = 0;
  while (i < out_v.size()) {
    const StopId w = out_v[i].hub;
    size_t j = i;
    while (j < out_v.size() && out_v[j].hub == w) ++j;
    const uint32_t l1 = FirstDepartingNotBefore(
        out_v, static_cast<uint32_t>(i), static_cast<uint32_t>(j), td);
    if (l1 < j) {
      const auto [b, e] = in_hub_index.Find(w);
      if (b != e) {
        const uint32_t l2 = FirstDepartingNotBefore(in_h, b, e, out_v[l1].ta);
        if (l2 < e && in_h[l2].ta <= ta) return true;
      }
    }
    i = j;
  }
  return false;
}

// Does an existing-label query certify EA(hub -> v, dep >= td) <= ta?
bool CoveredIn(const std::vector<std::vector<LabelTuple>>& lin,
               const std::vector<LabelTuple>& out_h,
               const HubRangeIndex& out_hub_index, StopId v, EventTime td,
               EventTime ta) {
  // Direct case: a hub -> v journey already recorded in L_out(hub).
  {
    const auto [b, e] = out_hub_index.Find(v);
    const uint32_t i = FirstDepartingNotBefore(out_h, b, e, td);
    if (i < e && out_h[i].ta <= ta) return true;
  }
  // Join case: hub -> w (L_out(hub)) chained with w -> v (L_in(v)).
  const auto& in_v = lin[v];
  size_t i = 0;
  while (i < in_v.size()) {
    const StopId w = in_v[i].hub;
    size_t j = i;
    while (j < in_v.size() && in_v[j].hub == w) ++j;
    const auto [b, e] = out_hub_index.Find(w);
    if (b != e) {
      const uint32_t l1 = FirstDepartingNotBefore(out_h, b, e, td);
      if (l1 < e) {
        const uint32_t l2 = FirstDepartingNotBefore(
            in_v, static_cast<uint32_t>(i), static_cast<uint32_t>(j),
            out_h[l1].ta);
        if (l2 < j && in_v[l2].ta <= ta) return true;
      }
    }
    i = j;
  }
  return false;
}

// One hub's forward/backward profile scans against an immutable label
// snapshot. Each worker thread owns one HubScan so the O(|V|) scratch is
// allocated once per worker, not once per hub. The referenced label state
// must not change while Run() executes — the wave driver guarantees scans
// only run between merges.
class HubScan {
 public:
  HubScan(const Timetable& tt, bool prune, const std::vector<uint32_t>& rank,
          const std::vector<std::vector<LabelTuple>>& lout,
          const std::vector<std::vector<LabelTuple>>& lin)
      : tt_(tt),
        prune_(prune),
        rank_(rank),
        lout_(lout),
        lin_(lin),
        scan_lists_(tt.num_stops()) {}

  HubCandidates Run(StopId hub) {
    HubCandidates result;
    in_hub_index_.Build(lin_[hub]);
    out_hub_index_.Build(lout_[hub]);
    BackwardScan(hub, &result);
    ForwardScan(hub, &result);
    return result;
  }

 private:
  // Backward profile scan from `hub`: Pareto journeys v -> hub. Entries at
  // each stop accumulate in descending-dep (and descending-arr) order.
  void BackwardScan(StopId hub, HubCandidates* result) {
    const auto conns = tt_.connections();
    for (size_t i = conns.size(); i-- > 0;) {
      const Connection& c = conns[i];
      if (c.from == hub) continue;  // No self labels / round trips.
      EventTime arr_h = EventTime::Infinity();
      if (c.to == hub) arr_h = c.arr;
      const auto& at_to = scan_lists_[c.to];
      if (!at_to.empty()) {
        // Last entry with dep >= c.arr has the min arr among them.
        const auto it = std::partition_point(
            at_to.begin(), at_to.end(),
            [&](const ScanEntry& e) { return e.dep >= c.arr; });
        if (it != at_to.begin() && (it - 1)->arr < arr_h) {
          arr_h = (it - 1)->arr;
        }
      }
      if (arr_h == EventTime::Infinity()) continue;

      auto& at_from = scan_lists_[c.from];
      if (!at_from.empty() && at_from.back().dep == c.dep) {
        if (arr_h >= at_from.back().arr) continue;  // Dominated.
        if (prune_ && CoveredOut(lout_, lin_[hub], in_hub_index_, c.from,
                                 c.dep, arr_h)) {
          ++result->scan_pruned;
          continue;
        }
        at_from.back() = {c.dep, arr_h, static_cast<ConnectionId>(i)};
        continue;
      }
      if (!at_from.empty() && at_from.back().arr <= arr_h) continue;
      if (prune_ && CoveredOut(lout_, lin_[hub], in_hub_index_, c.from, c.dep,
                               arr_h)) {
        ++result->scan_pruned;
        continue;
      }
      if (at_from.empty()) touched_.push_back(c.from);
      at_from.push_back({c.dep, arr_h, static_cast<ConnectionId>(i)});
    }

    // Emit L_out candidates at lower-ranked stops (ascending td within the
    // hub's run, i.e. reversed scan order).
    for (const StopId v : touched_) {
      auto& list = scan_lists_[v];
      if (rank_[v] > rank_[hub]) {
        for (size_t k = list.size(); k-- > 0;) {
          const Connection& first = tt_.connection(list[k].conn);
          result->out.push_back(
              {v, {hub, list[k].dep, list[k].arr, first.to, first.trip}});
        }
      }
      list.clear();
    }
    touched_.clear();
  }

  // Forward profile scan from `hub`: Pareto journeys hub -> v. Entries at
  // each stop accumulate in ascending-arr (and ascending-dep) order.
  void ForwardScan(StopId hub, HubCandidates* result) {
    for (const ConnectionId id : tt_.by_arrival()) {
      const Connection& c = tt_.connection(id);
      if (c.to == hub) continue;  // No self labels / round trips.
      EventTime dep_h = EventTime::NegInfinity();
      if (c.from == hub) dep_h = c.dep;
      const auto& at_from = scan_lists_[c.from];
      if (!at_from.empty()) {
        // Last entry with arr <= c.dep has the max dep among them.
        const auto it = std::partition_point(
            at_from.begin(), at_from.end(),
            [&](const ScanEntry& e) { return e.arr <= c.dep; });
        if (it != at_from.begin() && (it - 1)->dep > dep_h) {
          dep_h = (it - 1)->dep;
        }
      }
      if (dep_h == EventTime::NegInfinity()) continue;

      auto& at_to = scan_lists_[c.to];
      if (!at_to.empty() && at_to.back().arr == c.arr) {
        if (dep_h <= at_to.back().dep) continue;  // Dominated.
        if (prune_ && CoveredIn(lin_, lout_[hub], out_hub_index_, c.to, dep_h,
                                c.arr)) {
          ++result->scan_pruned;
          continue;
        }
        at_to.back() = {dep_h, c.arr, id};
        continue;
      }
      if (!at_to.empty() && at_to.back().dep >= dep_h) continue;
      if (prune_ && CoveredIn(lin_, lout_[hub], out_hub_index_, c.to, dep_h,
                              c.arr)) {
        ++result->scan_pruned;
        continue;
      }
      if (at_to.empty()) touched_.push_back(c.to);
      at_to.push_back({dep_h, c.arr, id});
    }

    // Emit L_in candidates at lower-ranked stops (list order is ascending
    // td).
    for (const StopId v : touched_) {
      auto& list = scan_lists_[v];
      if (rank_[v] > rank_[hub]) {
        for (const ScanEntry& e : list) {
          const Connection& last = tt_.connection(e.conn);
          result->in.push_back({v, {hub, e.dep, e.arr, last.from, last.trip}});
        }
      }
      list.clear();
    }
    touched_.clear();
  }

  const Timetable& tt_;
  const bool prune_;
  const std::vector<uint32_t>& rank_;
  const std::vector<std::vector<LabelTuple>>& lout_;
  const std::vector<std::vector<LabelTuple>>& lin_;
  HubRangeIndex in_hub_index_;
  HubRangeIndex out_hub_index_;
  std::vector<std::vector<ScanEntry>> scan_lists_;
  std::vector<StopId> touched_;
};

// [first_rank, first_rank + num_hubs) slices of the order vector.
struct Wave {
  uint32_t first_rank = 0;
  uint32_t num_hubs = 0;
};

// Rank waves: 1, 1, 2, 4, 8, ... doubling up to `cap`, then `cap`-sized
// until every hub is covered. The ramp-up keeps the most important hubs —
// whose labels prune the most — nearly serial, while the bulk of the hubs
// land in full-width waves. Depends only on (n, cap), never on the thread
// count, so the schedule (and therefore the output) is machine-independent.
std::vector<Wave> WavePartition(uint32_t n, uint32_t cap) {
  std::vector<Wave> waves;
  uint32_t start = 0;
  uint32_t size = 1;
  while (start < n) {
    const uint32_t take = std::min(std::min(size, cap), n - start);
    waves.push_back({start, take});
    start += take;
    size = std::min(cap, size * 2);
  }
  return waves;
}

class TtlConstruction {
 public:
  TtlConstruction(const Timetable& tt, const TtlBuildOptions& options,
                  std::vector<StopId> order)
      : tt_(tt),
        options_(options),
        order_(std::move(order)),
        rank_(RanksFromOrder(order_)),
        lout_(tt.num_stops()),
        lin_(tt.num_stops()) {}

  TtlIndex Run(TtlBuildStats* stats) {
    const uint32_t cap =
        options_.max_wave_hubs != 0 ? options_.max_wave_hubs : kDefaultWaveCap;
    const uint32_t num_threads = options_.num_threads != 0
                                     ? options_.num_threads
                                     : ThreadPool::DefaultThreadCount();
    const std::vector<Wave> waves = WavePartition(tt_.num_stops(), cap);

    std::unique_ptr<ThreadPool> pool;
    if (num_threads > 1) pool = std::make_unique<ThreadPool>(num_threads);
    const uint32_t num_workers = pool != nullptr ? num_threads : 1;
    std::vector<std::unique_ptr<HubScan>> scans;
    scans.reserve(num_workers);
    for (uint32_t w = 0; w < num_workers; ++w) {
      scans.push_back(std::make_unique<HubScan>(tt_, options_.prune, rank_,
                                                lout_, lin_));
    }

    for (const Wave& wave : waves) {
      const auto wave_start = std::chrono::steady_clock::now();
      // Scan phase: every hub of the wave against the immutable snapshot of
      // all previous waves. Results land in disjoint slots, so any
      // scheduling order yields the same contents.
      std::vector<HubCandidates> results(wave.num_hubs);
      if (pool != nullptr && wave.num_hubs > 1) {
        pool->ParallelFor(wave.num_hubs, [&](uint32_t worker, uint64_t i) {
          results[i] = scans[worker]->Run(order_[wave.first_rank + i]);
        });
      } else {
        for (uint32_t i = 0; i < wave.num_hubs; ++i) {
          results[i] = scans[0]->Run(order_[wave.first_rank + i]);
        }
      }

      // Merge phase: sequential, in rank order. Re-checking coverage
      // against the now-complete labels of every higher-ranked hub drops
      // exactly the candidates the serial builder would have pruned
      // in-scan, so the merged labels are byte-identical to a serial run.
      TtlWaveStats ws;
      ws.first_rank = wave.first_rank;
      ws.num_hubs = wave.num_hubs;
      for (uint32_t i = 0; i < wave.num_hubs; ++i) {
        const StopId hub = order_[wave.first_rank + i];
        HubCandidates& r = results[i];
        ws.scan_pruned += r.scan_pruned;
        ws.candidate_tuples += r.out.size() + r.in.size();
        in_hub_index_.Build(lin_[hub]);
        out_hub_index_.Build(lout_[hub]);
        for (const Candidate& c : r.out) {
          if (options_.prune &&
              CoveredOut(lout_, lin_[hub], in_hub_index_, c.stop, c.tuple.td,
                         c.tuple.ta)) {
            ++ws.merge_pruned;
            continue;
          }
          lout_[c.stop].push_back(c.tuple);
        }
        for (const Candidate& c : r.in) {
          if (options_.prune &&
              CoveredIn(lin_, lout_[hub], out_hub_index_, c.stop, c.tuple.td,
                        c.tuple.ta)) {
            ++ws.merge_pruned;
            continue;
          }
          lin_[c.stop].push_back(c.tuple);
        }
      }
      ws.merged_tuples = ws.candidate_tuples - ws.merge_pruned;
      ws.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - wave_start)
                       .count();
      if (stats != nullptr) stats->waves.push_back(ws);
    }

    TtlIndex index;
    index.order = order_;
    index.rank = rank_;
    index.out = LabelSet(tt_.num_stops());
    index.in = LabelSet(tt_.num_stops());
    if (stats != nullptr) {
      stats->num_threads_used = num_workers;
      stats->pruned_candidates = 0;
      for (const TtlWaveStats& ws : stats->waves) {
        stats->pruned_candidates += ws.scan_pruned + ws.merge_pruned;
      }
      stats->out_tuples = 0;
      stats->in_tuples = 0;
      for (StopId v = 0; v < tt_.num_stops(); ++v) {
        stats->out_tuples += lout_[v].size();
        stats->in_tuples += lin_[v].size();
      }
    }
    for (StopId v = 0; v < tt_.num_stops(); ++v) {
      index.out.mutable_tuples(v) = std::move(lout_[v]);
      index.in.mutable_tuples(v) = std::move(lin_[v]);
    }
    index.out.SortTuples();
    index.in.SortTuples();
    return index;
  }

 private:
  const Timetable& tt_;
  const TtlBuildOptions& options_;
  std::vector<StopId> order_;
  std::vector<uint32_t> rank_;
  std::vector<std::vector<LabelTuple>> lout_;
  std::vector<std::vector<LabelTuple>> lin_;
  HubRangeIndex in_hub_index_;
  HubRangeIndex out_hub_index_;
};

}  // namespace

Result<TtlIndex> BuildTtlIndex(const Timetable& tt,
                               const TtlBuildOptions& options,
                               TtlBuildStats* stats) {
  std::vector<StopId> order;
  if (!options.custom_order.empty()) {
    if (options.custom_order.size() != tt.num_stops()) {
      return Status::InvalidArgument("custom order size mismatch");
    }
    std::vector<bool> seen(tt.num_stops(), false);
    for (const StopId v : options.custom_order) {
      if (v >= tt.num_stops() || seen[v]) {
        return Status::InvalidArgument("custom order is not a permutation");
      }
      seen[v] = true;
    }
    order = options.custom_order;
  } else {
    order = ComputeVertexOrder(tt, options.ordering);
  }

  if (stats != nullptr) *stats = TtlBuildStats{};
  const auto start = std::chrono::steady_clock::now();
  TtlConstruction construction(tt, options, std::move(order));
  TtlIndex index = construction.Run(stats);
  uint64_t dummies = 0;
  if (options.add_dummy_tuples) {
    dummies = AugmentWithDummyTuples(tt, &index);
  }
  const auto end = std::chrono::steady_clock::now();
  if (stats != nullptr) {
    stats->dummy_tuples = dummies;
    stats->preprocess_seconds =
        std::chrono::duration<double>(end - start).count();
  }
  return index;
}

uint64_t AugmentWithDummyTuples(const Timetable& tt, TtlIndex* index) {
  const uint32_t n = index->num_stops();
  // Event set per stop: hub-tuple endpoint times plus arrival events.
  std::vector<std::unordered_set<EventTime>> events(n);
  for (StopId v = 0; v < n; ++v) {
    for (const LabelTuple& t : index->out.tuples(v)) {
      if (!t.is_dummy()) events[t.hub].insert(t.ta);
    }
    for (const LabelTuple& t : index->in.tuples(v)) {
      if (!t.is_dummy()) events[t.hub].insert(t.td);
    }
    for (const EventTime a : tt.arrival_events(v)) events[v].insert(a);
  }
  uint64_t added = 0;
  for (StopId v = 0; v < n; ++v) {
    std::vector<EventTime> sorted(events[v].begin(), events[v].end());
    std::sort(sorted.begin(), sorted.end());
    for (const EventTime x : sorted) {
      const LabelTuple dummy{v, x, x, kInvalidStop, kInvalidTrip};
      index->out.mutable_tuples(v).push_back(dummy);
      index->in.mutable_tuples(v).push_back(dummy);
      ++added;
    }
  }
  index->out.SortTuples();
  index->in.SortTuples();
  return added;
}

}  // namespace ptldb
