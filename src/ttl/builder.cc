#include "ttl/builder.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <unordered_set>

namespace ptldb {

namespace {

// A reached Pareto pair during a profile scan, with the connection that
// starts (backward scan) or ends (forward scan) the journey.
struct ScanEntry {
  Timestamp dep = 0;
  Timestamp arr = 0;
  ConnectionId conn = kInvalidConnection;
};

// Contiguous (hub -> tuple range) index over one stop's label vector.
// Label vectors are appended hub-by-hub during construction, so each hub's
// tuples form one contiguous run.
class HubRangeIndex {
 public:
  void Build(const std::vector<LabelTuple>& tuples) {
    ranges_.clear();
    size_t i = 0;
    while (i < tuples.size()) {
      size_t j = i;
      while (j < tuples.size() && tuples[j].hub == tuples[i].hub) ++j;
      ranges_.emplace(tuples[i].hub,
                      std::make_pair(static_cast<uint32_t>(i),
                                     static_cast<uint32_t>(j)));
      i = j;
    }
  }

  // Returns [begin, end) of hub `w`, or (0,0) when absent.
  std::pair<uint32_t, uint32_t> Find(StopId w) const {
    const auto it = ranges_.find(w);
    return it == ranges_.end() ? std::make_pair(0u, 0u) : it->second;
  }

 private:
  std::unordered_map<StopId, std::pair<uint32_t, uint32_t>> ranges_;
};

// First tuple in [begin, end) of `tuples` with td >= t; `end` when none.
// Within a (stop, hub) group tuples are Pareto (td and ta both ascending),
// so the hit has the minimum ta among feasible tuples.
uint32_t FirstDepartingNotBefore(const std::vector<LabelTuple>& tuples,
                                 uint32_t begin, uint32_t end, Timestamp t) {
  while (begin < end) {
    const uint32_t mid = begin + (end - begin) / 2;
    if (tuples[mid].td >= t) {
      end = mid;
    } else {
      begin = mid + 1;
    }
  }
  return begin;
}

class TtlConstruction {
 public:
  TtlConstruction(const Timetable& tt, const TtlBuildOptions& options,
                  std::vector<StopId> order)
      : tt_(tt),
        options_(options),
        order_(std::move(order)),
        rank_(RanksFromOrder(order_)),
        lout_(tt.num_stops()),
        lin_(tt.num_stops()),
        scan_lists_(tt.num_stops()) {}

  TtlIndex Run(TtlBuildStats* stats) {
    for (const StopId hub : order_) {
      in_hub_index_.Build(lin_[hub]);
      out_hub_index_.Build(lout_[hub]);
      BackwardScan(hub);
      ForwardScan(hub);
    }
    TtlIndex index;
    index.order = order_;
    index.rank = rank_;
    index.out = LabelSet(tt_.num_stops());
    index.in = LabelSet(tt_.num_stops());
    if (stats != nullptr) {
      stats->pruned_candidates = pruned_;
      stats->out_tuples = 0;
      stats->in_tuples = 0;
      for (StopId v = 0; v < tt_.num_stops(); ++v) {
        stats->out_tuples += lout_[v].size();
        stats->in_tuples += lin_[v].size();
      }
    }
    for (StopId v = 0; v < tt_.num_stops(); ++v) {
      index.out.mutable_tuples(v) = std::move(lout_[v]);
      index.in.mutable_tuples(v) = std::move(lin_[v]);
    }
    index.out.SortTuples();
    index.in.SortTuples();
    return index;
  }

 private:
  // Does an existing-label query certify EA(v -> hub, dep >= td) <= ta?
  // `hub` is the hub currently being processed; its per-hub index over
  // L_in(hub) is in in_hub_index_.
  bool CoveredOut(StopId v, StopId hub, Timestamp td, Timestamp ta) const {
    const auto& in_h = lin_[hub];
    // Direct case: a v -> hub journey already recorded in L_in(hub).
    {
      const auto [b, e] = in_hub_index_.Find(v);
      const uint32_t i = FirstDepartingNotBefore(in_h, b, e, td);
      if (i < e && in_h[i].ta <= ta) return true;
    }
    // Join case: v -> w (L_out(v)) chained with w -> hub (L_in(hub)).
    const auto& out_v = lout_[v];
    size_t i = 0;
    while (i < out_v.size()) {
      const StopId w = out_v[i].hub;
      size_t j = i;
      while (j < out_v.size() && out_v[j].hub == w) ++j;
      const uint32_t l1 = FirstDepartingNotBefore(
          out_v, static_cast<uint32_t>(i), static_cast<uint32_t>(j), td);
      if (l1 < j) {
        const auto [b, e] = in_hub_index_.Find(w);
        if (b != e) {
          const uint32_t l2 = FirstDepartingNotBefore(in_h, b, e, out_v[l1].ta);
          if (l2 < e && in_h[l2].ta <= ta) return true;
        }
      }
      i = j;
    }
    return false;
  }

  // Does an existing-label query certify EA(hub -> v, dep >= td) <= ta?
  bool CoveredIn(StopId v, StopId hub, Timestamp td, Timestamp ta) const {
    const auto& out_h = lout_[hub];
    // Direct case: a hub -> v journey already recorded in L_out(hub).
    {
      const auto [b, e] = out_hub_index_.Find(v);
      const uint32_t i = FirstDepartingNotBefore(out_h, b, e, td);
      if (i < e && out_h[i].ta <= ta) return true;
    }
    // Join case: hub -> w (L_out(hub)) chained with w -> v (L_in(v)).
    const auto& in_v = lin_[v];
    size_t i = 0;
    while (i < in_v.size()) {
      const StopId w = in_v[i].hub;
      size_t j = i;
      while (j < in_v.size() && in_v[j].hub == w) ++j;
      const auto [b, e] = out_hub_index_.Find(w);
      if (b != e) {
        const uint32_t l1 = FirstDepartingNotBefore(out_h, b, e, td);
        if (l1 < e) {
          const uint32_t l2 = FirstDepartingNotBefore(
              in_v, static_cast<uint32_t>(i), static_cast<uint32_t>(j),
              out_h[l1].ta);
          if (l2 < j && in_v[l2].ta <= ta) return true;
        }
      }
      i = j;
    }
    return false;
  }

  // Backward profile scan from `hub`: Pareto journeys v -> hub. Entries at
  // each stop accumulate in descending-dep (and descending-arr) order.
  void BackwardScan(StopId hub) {
    const auto conns = tt_.connections();
    for (size_t i = conns.size(); i-- > 0;) {
      const Connection& c = conns[i];
      if (c.from == hub) continue;  // No self labels / round trips.
      Timestamp arr_h = kInfinityTime;
      if (c.to == hub) arr_h = c.arr;
      const auto& at_to = scan_lists_[c.to];
      if (!at_to.empty()) {
        // Last entry with dep >= c.arr has the min arr among them.
        const auto it = std::partition_point(
            at_to.begin(), at_to.end(),
            [&](const ScanEntry& e) { return e.dep >= c.arr; });
        if (it != at_to.begin() && (it - 1)->arr < arr_h) {
          arr_h = (it - 1)->arr;
        }
      }
      if (arr_h == kInfinityTime) continue;

      auto& at_from = scan_lists_[c.from];
      if (!at_from.empty() && at_from.back().dep == c.dep) {
        if (arr_h >= at_from.back().arr) continue;  // Dominated.
        if (options_.prune && CoveredOut(c.from, hub, c.dep, arr_h)) {
          ++pruned_;
          continue;
        }
        at_from.back() = {c.dep, arr_h, static_cast<ConnectionId>(i)};
        continue;
      }
      if (!at_from.empty() && at_from.back().arr <= arr_h) continue;
      if (options_.prune && CoveredOut(c.from, hub, c.dep, arr_h)) {
        ++pruned_;
        continue;
      }
      if (at_from.empty()) touched_.push_back(c.from);
      at_from.push_back({c.dep, arr_h, static_cast<ConnectionId>(i)});
    }

    // Emit L_out tuples at lower-ranked stops (ascending td within the
    // hub's run, i.e. reversed scan order).
    for (const StopId v : touched_) {
      auto& list = scan_lists_[v];
      if (rank_[v] > rank_[hub]) {
        for (size_t k = list.size(); k-- > 0;) {
          const Connection& first = tt_.connection(list[k].conn);
          lout_[v].push_back(
              {hub, list[k].dep, list[k].arr, first.to, first.trip});
        }
      }
      list.clear();
    }
    touched_.clear();
  }

  // Forward profile scan from `hub`: Pareto journeys hub -> v. Entries at
  // each stop accumulate in ascending-arr (and ascending-dep) order.
  void ForwardScan(StopId hub) {
    for (const ConnectionId id : tt_.by_arrival()) {
      const Connection& c = tt_.connection(id);
      if (c.to == hub) continue;  // No self labels / round trips.
      Timestamp dep_h = kNegInfinityTime;
      if (c.from == hub) dep_h = c.dep;
      const auto& at_from = scan_lists_[c.from];
      if (!at_from.empty()) {
        // Last entry with arr <= c.dep has the max dep among them.
        const auto it = std::partition_point(
            at_from.begin(), at_from.end(),
            [&](const ScanEntry& e) { return e.arr <= c.dep; });
        if (it != at_from.begin() && (it - 1)->dep > dep_h) {
          dep_h = (it - 1)->dep;
        }
      }
      if (dep_h == kNegInfinityTime) continue;

      auto& at_to = scan_lists_[c.to];
      if (!at_to.empty() && at_to.back().arr == c.arr) {
        if (dep_h <= at_to.back().dep) continue;  // Dominated.
        if (options_.prune && CoveredIn(c.to, hub, dep_h, c.arr)) {
          ++pruned_;
          continue;
        }
        at_to.back() = {dep_h, c.arr, id};
        continue;
      }
      if (!at_to.empty() && at_to.back().dep >= dep_h) continue;
      if (options_.prune && CoveredIn(c.to, hub, dep_h, c.arr)) {
        ++pruned_;
        continue;
      }
      if (at_to.empty()) touched_.push_back(c.to);
      at_to.push_back({dep_h, c.arr, id});
    }

    // Emit L_in tuples at lower-ranked stops (list order is ascending td).
    for (const StopId v : touched_) {
      auto& list = scan_lists_[v];
      if (rank_[v] > rank_[hub]) {
        for (const ScanEntry& e : list) {
          const Connection& last = tt_.connection(e.conn);
          lin_[v].push_back({hub, e.dep, e.arr, last.from, last.trip});
        }
      }
      list.clear();
    }
    touched_.clear();
  }

  const Timetable& tt_;
  const TtlBuildOptions& options_;
  std::vector<StopId> order_;
  std::vector<uint32_t> rank_;
  std::vector<std::vector<LabelTuple>> lout_;
  std::vector<std::vector<LabelTuple>> lin_;
  HubRangeIndex in_hub_index_;
  HubRangeIndex out_hub_index_;
  std::vector<std::vector<ScanEntry>> scan_lists_;
  std::vector<StopId> touched_;
  uint64_t pruned_ = 0;
};

}  // namespace

Result<TtlIndex> BuildTtlIndex(const Timetable& tt,
                               const TtlBuildOptions& options,
                               TtlBuildStats* stats) {
  std::vector<StopId> order;
  if (!options.custom_order.empty()) {
    if (options.custom_order.size() != tt.num_stops()) {
      return Status::InvalidArgument("custom order size mismatch");
    }
    std::vector<bool> seen(tt.num_stops(), false);
    for (const StopId v : options.custom_order) {
      if (v >= tt.num_stops() || seen[v]) {
        return Status::InvalidArgument("custom order is not a permutation");
      }
      seen[v] = true;
    }
    order = options.custom_order;
  } else {
    order = ComputeVertexOrder(tt, options.ordering);
  }

  const auto start = std::chrono::steady_clock::now();
  TtlConstruction construction(tt, options, std::move(order));
  TtlIndex index = construction.Run(stats);
  uint64_t dummies = 0;
  if (options.add_dummy_tuples) {
    dummies = AugmentWithDummyTuples(tt, &index);
  }
  const auto end = std::chrono::steady_clock::now();
  if (stats != nullptr) {
    stats->dummy_tuples = dummies;
    stats->preprocess_seconds =
        std::chrono::duration<double>(end - start).count();
  }
  return index;
}

uint64_t AugmentWithDummyTuples(const Timetable& tt, TtlIndex* index) {
  const uint32_t n = index->num_stops();
  // Event set per stop: hub-tuple endpoint times plus arrival events.
  std::vector<std::unordered_set<Timestamp>> events(n);
  for (StopId v = 0; v < n; ++v) {
    for (const LabelTuple& t : index->out.tuples(v)) {
      if (!t.is_dummy()) events[t.hub].insert(t.ta);
    }
    for (const LabelTuple& t : index->in.tuples(v)) {
      if (!t.is_dummy()) events[t.hub].insert(t.td);
    }
    for (const Timestamp a : tt.arrival_events(v)) events[v].insert(a);
  }
  uint64_t added = 0;
  for (StopId v = 0; v < n; ++v) {
    std::vector<Timestamp> sorted(events[v].begin(), events[v].end());
    std::sort(sorted.begin(), sorted.end());
    for (const Timestamp x : sorted) {
      const LabelTuple dummy{v, x, x, kInvalidStop, kInvalidTrip};
      index->out.mutable_tuples(v).push_back(dummy);
      index->in.mutable_tuples(v).push_back(dummy);
      ++added;
    }
  }
  index->out.SortTuples();
  index->in.SortTuples();
  return added;
}

}  // namespace ptldb
