#ifndef PTLDB_TTL_LABEL_CODEC_H_
#define PTLDB_TTL_LABEL_CODEC_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace ptldb {

/// Compressed encoding of one stop's label row — the (hubs, tds, tas)
/// parallel arrays of the lout/lin tables — into a self-validating byte
/// bucket, following the layout arguments of *Public Transit Labeling*
/// (Delling et al.): structure-of-arrays, delta-encoded ids and times,
/// variable-length integers.
///
/// Bucket layout (all multi-byte integers little-endian / LEB128 varint):
///
///   +--------+---------+----------------------------------------------+
///   | u32    | crc     | CRC-32C of every byte after this field        |
///   +--------+---------+----------------------------------------------+
///   | varint | n       | tuple count                                   |
///   +--------+---------+----------------------------------------------+
///   | varint | hub[0]  | first hub id                   (n > 0 only)  |
///   | varint | Δhub    | hub[i] - hub[i-1], i = 1..n-1  (sorted => >=0)|
///   +--------+---------+----------------------------------------------+
///   | zigzag | td[0]   | first departure                (n > 0 only)  |
///   | zigzag | Δtd     | td[i] - td[i-1] (negative across hub groups)  |
///   +--------+---------+----------------------------------------------+
///   | zigzag | dur[i]  | ta[i] - td[i], i = 0..n-1                     |
///   +--------+---------+----------------------------------------------+
///
/// Hubs are rank-sorted within a row, so hub deltas are small nonnegative
/// integers; departures are sorted within a hub group, so td deltas are
/// small except at group boundaries; durations are short relative to
/// absolute times. All three streams are stored contiguously (SoA) so a
/// decode is three tight varint scans.
///
/// Safety contract: DecodeLabelBucket never reads outside `bytes` and
/// never returns a partially-decoded row. Every prefix truncation and
/// every byte flip of a valid bucket yields kCorruption (the CRC covers
/// the whole payload; varint and range validation backstop the header
/// itself). Time/id accumulation happens in 64-bit with explicit range
/// checks, so adversarial deltas cannot overflow into silently wrong
/// int32 values — including tuples at the extreme service-day boundary
/// (td/ta at multiples of 86400 or at INT32_MAX round-trip exactly).

/// Decoded structure-of-arrays label row (scratch space reused across
/// decodes to avoid per-query allocation).
struct LabelArrays {
  std::vector<int32_t> hubs;
  std::vector<int32_t> tds;
  std::vector<int32_t> tas;

  void Clear() {
    hubs.clear();
    tds.clear();
    tas.clear();
  }
  size_t size() const { return hubs.size(); }
};

/// ZigZag mapping used for the signed streams (td deltas, durations):
/// small magnitudes of either sign become small unsigned varints.
constexpr uint32_t ZigZagEncode32(int32_t v) {
  return (static_cast<uint32_t>(v) << 1) ^
         static_cast<uint32_t>(v >> 31);
}
constexpr int32_t ZigZagDecode32(uint32_t v) {
  return static_cast<int32_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// Encodes the parallel arrays (equal lengths; hubs non-decreasing) into a
/// bucket appended to `*out`. kInvalidArgument when the arrays disagree in
/// length or the hubs are not sorted — the codec's compression argument
/// (nonnegative hub deltas) depends on the LabelSet (hub, td) sort order.
Status EncodeLabelBucket(std::span<const int32_t> hubs,
                         std::span<const int32_t> tds,
                         std::span<const int32_t> tas, std::string* out);

/// Decodes one bucket produced by EncodeLabelBucket into `*out`
/// (replacing its contents). kCorruption on any truncated, trailing,
/// CRC-mismatching or range-violating input; `*out` is cleared on error.
Status DecodeLabelBucket(std::string_view bytes, LabelArrays* out);

/// Number of tuples in a bucket without decoding the time streams;
/// kCorruption on malformed headers. Exposed for accounting and tests.
Result<uint64_t> PeekLabelBucketCount(std::string_view bytes);

}  // namespace ptldb

#endif  // PTLDB_TTL_LABEL_CODEC_H_
