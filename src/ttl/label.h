#ifndef PTLDB_TTL_LABEL_H_
#define PTLDB_TTL_LABEL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/time_util.h"
#include "timetable/types.h"

namespace ptldb {

/// One TTL label tuple <hub, t_d, t_a, pivot, trip> (Section 2.2 of the
/// paper): a "fast" (Pareto-optimal) transit path between a stop v and
/// `hub`, departing at `td` and arriving at `ta`.
///
/// For tuples in L_out(v) (paths v -> hub): `trip` is the trip of the first
/// connection and `pivot` is that connection's destination stop (equal to
/// hub for a one-connection path) — exactly the convention of Table 1 in
/// the paper. For tuples in L_in(v) (paths hub -> v): `trip` is the trip of
/// the last connection and `pivot` its origin stop.
///
/// Dummy tuples added by AugmentWithDummyTuples have hub == v, td == ta and
/// pivot/trip set to the invalid sentinels.
struct LabelTuple {
  StopId hub = kInvalidStop;
  EventTime td;
  EventTime ta;
  StopId pivot = kInvalidStop;
  TripId trip = kInvalidTrip;

  bool is_dummy() const {
    return trip == kInvalidTrip && pivot == kInvalidStop;
  }

  friend bool operator==(const LabelTuple&, const LabelTuple&) = default;
};

/// The label tuples of all stops for one direction (L_out or L_in). Each
/// stop's tuples are sorted by (hub, td) — the order the PTLDB tables use.
/// Within one (stop, hub) group the tuples are Pareto-optimal, so td and ta
/// are both strictly increasing; the query code exploits this.
class LabelSet {
 public:
  LabelSet() = default;
  explicit LabelSet(uint32_t num_stops) : labels_(num_stops) {}

  uint32_t num_stops() const { return static_cast<uint32_t>(labels_.size()); }

  std::span<const LabelTuple> tuples(StopId v) const { return labels_[v]; }
  std::vector<LabelTuple>& mutable_tuples(StopId v) { return labels_[v]; }

  /// Total tuples over all stops.
  uint64_t total_tuples() const;

  /// Restores per-stop (hub, td) sort order after mutation.
  void SortTuples();

 private:
  std::vector<std::vector<LabelTuple>> labels_;
};

/// The complete TTL index: forward and backward labels plus the vertex
/// order that generated them.
struct TtlIndex {
  LabelSet out;  ///< L_out(v): fast paths starting at v.
  LabelSet in;   ///< L_in(v): fast paths ending at v.
  /// order[i] = stop with rank i (most important first).
  std::vector<StopId> order;
  /// rank[v] = importance position of v (0 = most important).
  std::vector<uint32_t> rank;

  uint32_t num_stops() const { return out.num_stops(); }

  /// Tuples per vertex, the |HL|/|V| column of Table 7.
  double tuples_per_vertex() const {
    return num_stops() == 0 ? 0.0
                            : static_cast<double>(out.total_tuples() +
                                                  in.total_tuples()) /
                                  num_stops();
  }
};

}  // namespace ptldb

#endif  // PTLDB_TTL_LABEL_H_
