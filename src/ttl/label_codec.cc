#include "ttl/label_codec.h"

#include <cstring>
#include <limits>

#include "common/checksum.h"

namespace ptldb {
namespace {

// LEB128 varint for uint32 values: 1..5 bytes, 7 payload bits per byte,
// high bit = continuation. The 5th byte may carry at most 4 significant
// bits; anything more is an overflow and decodes as corruption.
constexpr int kMaxVarint32Bytes = 5;

void AppendVarint32(uint32_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

// Cursor over the bucket payload. Every read is bounds-checked; a failed
// read poisons the cursor so callers can check once per stream.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view bytes) : data_(bytes) {}

  bool ReadVarint32(uint32_t* out) {
    uint64_t v = 0;
    int shift = 0;
    for (int i = 0; i < kMaxVarint32Bytes; ++i) {
      if (pos_ >= data_.size()) return Fail();  // truncated mid-varint
      const uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
      v |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        if (v > std::numeric_limits<uint32_t>::max()) return Fail();
        *out = static_cast<uint32_t>(v);
        return true;
      }
      shift += 7;
    }
    return Fail();  // 5 continuation bytes: not a uint32
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return ok_ && pos_ == data_.size(); }
  bool ok() const { return ok_; }

 private:
  bool Fail() {
    ok_ = false;
    return false;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

Status CorruptBucket(const char* what) {
  return Status::Corruption(std::string("label bucket: ") + what);
}

// Parses and validates the header shared by Decode and Peek: CRC field,
// payload checksum, and the tuple count with its plausibility bound.
// On success *reader is positioned past the count varint and *n holds it.
Status OpenBucket(std::string_view bytes, PayloadReader* reader,
                  uint64_t* n) {
  if (bytes.size() < sizeof(uint32_t)) {
    return CorruptBucket("shorter than the CRC header");
  }
  uint32_t stored_crc;
  std::memcpy(&stored_crc, bytes.data(), sizeof(stored_crc));
  const std::string_view payload = bytes.substr(sizeof(uint32_t));
  if (Crc32c(payload.data(), payload.size()) != stored_crc) {
    return CorruptBucket("CRC mismatch");
  }
  *reader = PayloadReader(payload);
  uint32_t count;
  if (!reader->ReadVarint32(&count)) {
    return CorruptBucket("unreadable tuple count");
  }
  // Each tuple contributes at least one byte to each of the three
  // streams, so a count larger than the remaining payload can never be
  // satisfied. Rejecting here (before any reserve) keeps a flipped count
  // byte from driving a huge allocation. The CRC already catches flips
  // on well-formed buckets; this bound is the backstop for hand-crafted
  // input.
  if (count > reader->remaining()) {
    return CorruptBucket("tuple count exceeds payload size");
  }
  *n = count;
  return Status::Ok();
}

}  // namespace

Status EncodeLabelBucket(std::span<const int32_t> hubs,
                         std::span<const int32_t> tds,
                         std::span<const int32_t> tas, std::string* out) {
  if (hubs.size() != tds.size() || hubs.size() != tas.size()) {
    return Status::InvalidArgument(
        "label bucket: hubs/tds/tas lengths differ");
  }
  const size_t n = hubs.size();
  for (size_t i = 0; i < n; ++i) {
    if (hubs[i] < 0) {
      return Status::InvalidArgument("label bucket: negative hub id");
    }
    if (i > 0 && hubs[i] < hubs[i - 1]) {
      return Status::InvalidArgument(
          "label bucket: hubs not sorted (LabelSet (hub, td) order "
          "required)");
    }
  }

  std::string payload;
  payload.reserve(1 + 3 * n);
  AppendVarint32(static_cast<uint32_t>(n), &payload);
  // Hub stream: first id plain, then nonnegative deltas.
  for (size_t i = 0; i < n; ++i) {
    const uint32_t v =
        i == 0 ? static_cast<uint32_t>(hubs[0])
               : static_cast<uint32_t>(hubs[i]) -
                     static_cast<uint32_t>(hubs[i - 1]);
    AppendVarint32(v, &payload);
  }
  // Departure stream: zigzag first + zigzag deltas. Deltas are computed
  // in 64-bit and always fit int32 on decode because both endpoints do;
  // on encode the subtraction itself must not overflow int32, so it is
  // done in int64 and narrowed through the zigzag of the wrapped
  // two's-complement difference, which round-trips exactly.
  for (size_t i = 0; i < n; ++i) {
    const int32_t delta =
        i == 0 ? tds[0]
               : static_cast<int32_t>(static_cast<uint32_t>(tds[i]) -
                                      static_cast<uint32_t>(tds[i - 1]));
    AppendVarint32(ZigZagEncode32(delta), &payload);
  }
  // Duration stream: ta - td per tuple (wrapped difference, see above).
  for (size_t i = 0; i < n; ++i) {
    const int32_t dur = static_cast<int32_t>(
        static_cast<uint32_t>(tas[i]) - static_cast<uint32_t>(tds[i]));
    AppendVarint32(ZigZagEncode32(dur), &payload);
  }

  const uint32_t crc = Crc32c(payload.data(), payload.size());
  out->reserve(out->size() + sizeof(crc) + payload.size());
  out->append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  out->append(payload);
  return Status::Ok();
}

Status DecodeLabelBucket(std::string_view bytes, LabelArrays* out) {
  out->Clear();
  PayloadReader reader{std::string_view()};
  uint64_t n = 0;
  PTLDB_RETURN_IF_ERROR(OpenBucket(bytes, &reader, &n));

  out->hubs.reserve(n);
  out->tds.reserve(n);
  out->tas.reserve(n);

  // Hub stream. Accumulate in 64-bit: deltas are individually <= 2^32-1,
  // and n * 2^32 fits uint64 comfortably, so overflow of the accumulator
  // itself is impossible before the range check trips.
  uint64_t hub = 0;
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t v;
    if (!reader.ReadVarint32(&v)) {
      out->Clear();
      return CorruptBucket("truncated hub stream");
    }
    hub = (i == 0) ? v : hub + v;
    if (hub > static_cast<uint64_t>(std::numeric_limits<int32_t>::max())) {
      out->Clear();
      return CorruptBucket("hub id out of range");
    }
    out->hubs.push_back(static_cast<int32_t>(hub));
  }

  // Departure stream: zigzag deltas applied as wrapped 32-bit addition —
  // the exact inverse of the encoder's wrapped subtraction, so any
  // int32 td sequence round-trips with no intermediate UB.
  uint32_t td_bits = 0;
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t v;
    if (!reader.ReadVarint32(&v)) {
      out->Clear();
      return CorruptBucket("truncated departure stream");
    }
    const uint32_t delta = static_cast<uint32_t>(ZigZagDecode32(v));
    td_bits = (i == 0) ? delta : td_bits + delta;
    out->tds.push_back(static_cast<int32_t>(td_bits));
  }

  // Duration stream: ta = td + dur, again as wrapped 32-bit addition.
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t v;
    if (!reader.ReadVarint32(&v)) {
      out->Clear();
      return CorruptBucket("truncated duration stream");
    }
    const uint32_t ta_bits = static_cast<uint32_t>(out->tds[i]) +
                             static_cast<uint32_t>(ZigZagDecode32(v));
    out->tas.push_back(static_cast<int32_t>(ta_bits));
  }

  if (!reader.exhausted()) {
    out->Clear();
    return CorruptBucket("trailing bytes after duration stream");
  }
  return Status::Ok();
}

Result<uint64_t> PeekLabelBucketCount(std::string_view bytes) {
  PayloadReader reader{std::string_view()};
  uint64_t n = 0;
  PTLDB_RETURN_IF_ERROR(OpenBucket(bytes, &reader, &n));
  return n;
}

}  // namespace ptldb
