#include "ttl/label.h"

#include <algorithm>
#include <tuple>

namespace ptldb {

uint64_t LabelSet::total_tuples() const {
  uint64_t total = 0;
  for (const auto& l : labels_) total += l.size();
  return total;
}

void LabelSet::SortTuples() {
  for (auto& l : labels_) {
    std::sort(l.begin(), l.end(), [](const LabelTuple& a, const LabelTuple& b) {
      return std::tie(a.hub, a.td, a.ta) < std::tie(b.hub, b.td, b.ta);
    });
  }
}

}  // namespace ptldb
