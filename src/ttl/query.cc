#include "ttl/query.h"

#include <algorithm>

#include "common/metrics.h"

namespace ptldb {

namespace {

using TupleSpan = std::span<const LabelTuple>;

// Tuples of `hub` within a (hub, td)-sorted label vector.
TupleSpan HubGroup(TupleSpan tuples, StopId hub) {
  const auto lo = std::partition_point(
      tuples.begin(), tuples.end(),
      [&](const LabelTuple& t) { return t.hub < hub; });
  auto hi = lo;
  while (hi != tuples.end() && hi->hub == hub) ++hi;
  return {lo, hi};
}

// First tuple with td >= t; group Pareto order makes it the min-ta feasible
// tuple. Returns group.end() when none.
TupleSpan::iterator FirstNotBefore(TupleSpan group, EventTime t) {
  auto& counters = ThisThreadQueryCounters();
  return std::partition_point(group.begin(), group.end(),
                              [&](const LabelTuple& x) {
                                ++counters.label_comparisons;
                                return x.td < t;
                              });
}

// Last tuple with ta <= t; group Pareto order makes it the max-td feasible
// tuple. Returns group.end() when none.
TupleSpan::iterator LastNotAfter(TupleSpan group, EventTime t) {
  auto& counters = ThisThreadQueryCounters();
  const auto it = std::partition_point(group.begin(), group.end(),
                                       [&](const LabelTuple& x) {
                                         ++counters.label_comparisons;
                                         return x.ta <= t;
                                       });
  return it == group.begin() ? group.end() : it - 1;
}

// Runs `fn(group_out, group_in)` for every hub common to both label
// vectors (merge over the hub-sorted tuples).
template <typename Fn>
void ForEachCommonHub(TupleSpan out_s, TupleSpan in_g, Fn&& fn) {
  size_t i = 0;
  size_t j = 0;
  while (i < out_s.size() && j < in_g.size()) {
    const StopId ha = out_s[i].hub;
    const StopId hb = in_g[j].hub;
    if (ha < hb) {
      while (i < out_s.size() && out_s[i].hub == ha) ++i;
    } else if (hb < ha) {
      while (j < in_g.size() && in_g[j].hub == hb) ++j;
    } else {
      size_t i2 = i;
      size_t j2 = j;
      while (i2 < out_s.size() && out_s[i2].hub == ha) ++i2;
      while (j2 < in_g.size() && in_g[j2].hub == ha) ++j2;
      ++ThisThreadQueryCounters().hubs_merged;
      fn(out_s.subspan(i, i2 - i), in_g.subspan(j, j2 - j));
      i = i2;
      j = j2;
    }
  }
}

EventTime JoinEa(TupleSpan out_s, TupleSpan in_g, EventTime t) {
  EventTime best = EventTime::Infinity();
  ForEachCommonHub(out_s, in_g, [&](TupleSpan a, TupleSpan b) {
    const auto l1 = FirstNotBefore(a, t);
    if (l1 == a.end()) return;
    const auto l2 = FirstNotBefore(b, l1->ta);
    if (l2 == b.end()) return;
    best = std::min(best, l2->ta);
  });
  return best;
}

EventTime JoinLd(TupleSpan out_s, TupleSpan in_g, EventTime t_end) {
  EventTime best = EventTime::NegInfinity();
  ForEachCommonHub(out_s, in_g, [&](TupleSpan a, TupleSpan b) {
    const auto l2 = LastNotAfter(b, t_end);
    if (l2 == b.end()) return;
    const auto l1 = LastNotAfter(a, l2->td);
    if (l1 == a.end()) return;
    best = std::max(best, l1->td);
  });
  return best;
}

Duration JoinSd(TupleSpan out_s, TupleSpan in_g, EventTime t,
                EventTime t_end) {
  Duration best = Duration::Infinity();
  ForEachCommonHub(out_s, in_g, [&](TupleSpan a, TupleSpan b) {
    auto l2 = b.begin();
    for (auto l1 = FirstNotBefore(a, t); l1 != a.end(); ++l1) {
      while (l2 != b.end() && l2->td < l1->ta) ++l2;
      if (l2 == b.end() || l2->ta > t_end) break;
      best = std::min(best, l2->ta - l1->td);
    }
  });
  return best;
}

}  // namespace

EventTime TtlEarliestArrival(const TtlIndex& index, StopId s, StopId g,
                             EventTime t) {
  const TupleSpan out_s = index.out.tuples(s);
  const TupleSpan in_g = index.in.tuples(g);
  EventTime best = EventTime::Infinity();
  // Case (i): direct tuples of L_out(s) ending at g.
  if (const auto group = HubGroup(out_s, g); !group.empty()) {
    if (const auto it = FirstNotBefore(group, t); it != group.end()) {
      best = std::min(best, it->ta);
    }
  }
  // Case (ii): direct tuples of L_in(g) starting at s.
  if (const auto group = HubGroup(in_g, s); !group.empty()) {
    if (const auto it = FirstNotBefore(group, t); it != group.end()) {
      best = std::min(best, it->ta);
    }
  }
  // Case (iii): joined pairs through a common hub.
  return std::min(best, JoinEa(out_s, in_g, t));
}

EventTime TtlLatestDeparture(const TtlIndex& index, StopId s, StopId g,
                             EventTime t_end) {
  const TupleSpan out_s = index.out.tuples(s);
  const TupleSpan in_g = index.in.tuples(g);
  EventTime best = EventTime::NegInfinity();
  if (const auto group = HubGroup(out_s, g); !group.empty()) {
    if (const auto it = LastNotAfter(group, t_end); it != group.end()) {
      best = std::max(best, it->td);
    }
  }
  if (const auto group = HubGroup(in_g, s); !group.empty()) {
    if (const auto it = LastNotAfter(group, t_end); it != group.end()) {
      best = std::max(best, it->td);
    }
  }
  return std::max(best, JoinLd(out_s, in_g, t_end));
}

Duration TtlShortestDuration(const TtlIndex& index, StopId s, StopId g,
                             EventTime t, EventTime t_end) {
  const TupleSpan out_s = index.out.tuples(s);
  const TupleSpan in_g = index.in.tuples(g);
  Duration best = Duration::Infinity();
  const auto consider_direct = [&](TupleSpan group) {
    for (auto it = FirstNotBefore(group, t); it != group.end(); ++it) {
      if (it->ta <= t_end) best = std::min(best, it->ta - it->td);
    }
  };
  consider_direct(HubGroup(out_s, g));
  consider_direct(HubGroup(in_g, s));
  return std::min(best, JoinSd(out_s, in_g, t, t_end));
}

EventTime TtlEarliestArrivalJoinOnly(const TtlIndex& index, StopId s,
                                     StopId g, EventTime t) {
  return JoinEa(index.out.tuples(s), index.in.tuples(g), t);
}

EventTime TtlLatestDepartureJoinOnly(const TtlIndex& index, StopId s,
                                     StopId g, EventTime t_end) {
  return JoinLd(index.out.tuples(s), index.in.tuples(g), t_end);
}

Duration TtlShortestDurationJoinOnly(const TtlIndex& index, StopId s,
                                     StopId g, EventTime t,
                                     EventTime t_end) {
  return JoinSd(index.out.tuples(s), index.in.tuples(g), t, t_end);
}

}  // namespace ptldb
