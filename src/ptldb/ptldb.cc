#include "ptldb/ptldb.h"

#include <algorithm>

#include "ptldb/queries.h"
#include "ptldb/tables.h"

namespace ptldb {

namespace {

/// Faults that warrant the degraded fallback path; every other error
/// (bad arguments, unknown sets) is the caller's to see.
bool IsStorageFault(const Status& s) {
  return s.code() == Status::Code::kIoError ||
         s.code() == Status::Code::kCorruption;
}

}  // namespace

Result<std::unique_ptr<PtldbDatabase>> PtldbDatabase::Build(
    const TtlIndex& index, const PtldbOptions& options) {
  std::unique_ptr<PtldbDatabase> db(new PtldbDatabase(options));
  PTLDB_RETURN_IF_ERROR(BuildLabelTables(index, &db->db_));
  db->num_stops_ = index.num_stops();
  db->max_event_time_ =
      ComputeBucketRange(index, /*bucket_seconds=*/1).max_bucket;
  return db;
}

Status PtldbDatabase::AddTargetSet(const std::string& name,
                                   const TtlIndex& index,
                                   const std::vector<StopId>& targets,
                                   uint32_t kmax,
                                   Timestamp bucket_seconds) {
  if (index.num_stops() != num_stops_) {
    return Status::InvalidArgument("index does not match this database");
  }
  if (target_sets_.count(name) != 0) {
    return Status::InvalidArgument("target set exists: " + name);
  }
  if (bucket_seconds <= 0) {
    return Status::InvalidArgument("bucket width must be positive");
  }
  PTLDB_RETURN_IF_ERROR(BuildTargetSetTables(index, targets, kmax, name, &db_,
                                             bucket_seconds, num_threads_));
  TargetSetInfo info;
  info.kmax = kmax;
  info.bucket_seconds = bucket_seconds;
  info.max_bucket = max_event_time_ / bucket_seconds;
  info.targets = targets;
  target_sets_.emplace(name, std::move(info));
  return Status::Ok();
}

Result<Timestamp> PtldbDatabase::EarliestArrival(StopId s, StopId g,
                                                 Timestamp t) {
  ++stats_.queries;
  stats_.last_degraded = false;
  return QueryV2vEa(&db_, s, g, t);
}

Result<Timestamp> PtldbDatabase::LatestDeparture(StopId s, StopId g,
                                                 Timestamp t_end) {
  ++stats_.queries;
  stats_.last_degraded = false;
  return QueryV2vLd(&db_, s, g, t_end);
}

Result<Timestamp> PtldbDatabase::ShortestDuration(StopId s, StopId g,
                                                  Timestamp t,
                                                  Timestamp t_end) {
  ++stats_.queries;
  stats_.last_degraded = false;
  return QueryV2vSd(&db_, s, g, t, t_end);
}

Result<const PtldbDatabase::TargetSetInfo*> PtldbDatabase::ValidateSet(
    const std::string& set_name, uint32_t k) const {
  const auto it = target_sets_.find(set_name);
  if (it == target_sets_.end()) {
    return Status::NotFound("unknown target set: " + set_name);
  }
  if (k > it->second.kmax) {
    return Status::InvalidArgument("k exceeds the set's kmax");
  }
  if (k == 0) return Status::InvalidArgument("k must be positive");
  return &it->second;
}

Result<std::vector<StopTimeResult>> PtldbDatabase::EaFallback(
    const TargetSetInfo& info, StopId q, Timestamp t, uint32_t k) {
  std::vector<StopTimeResult> out;
  for (const StopId v : info.targets) {
    auto ea = QueryV2vEa(&db_, q, v, t);
    PTLDB_RETURN_IF_ERROR(ea.status());
    if (*ea != kInfinityTime) out.push_back({v, *ea});
  }
  std::sort(out.begin(), out.end(),
            [](const StopTimeResult& a, const StopTimeResult& b) {
              return a.time != b.time ? a.time < b.time : a.stop < b.stop;
            });
  if (k != 0 && out.size() > k) out.resize(k);
  return out;
}

Result<std::vector<StopTimeResult>> PtldbDatabase::LdFallback(
    const TargetSetInfo& info, StopId q, Timestamp t, uint32_t k) {
  std::vector<StopTimeResult> out;
  for (const StopId v : info.targets) {
    auto ld = QueryV2vLd(&db_, q, v, t);
    PTLDB_RETURN_IF_ERROR(ld.status());
    if (*ld != kNegInfinityTime) out.push_back({v, *ld});
  }
  std::sort(out.begin(), out.end(),
            [](const StopTimeResult& a, const StopTimeResult& b) {
              return a.time != b.time ? a.time > b.time : a.stop < b.stop;
            });
  if (k != 0 && out.size() > k) out.resize(k);
  return out;
}

Result<std::vector<StopTimeResult>> PtldbDatabase::OrDegrade(
    Result<std::vector<StopTimeResult>> primary, const TargetSetInfo& info,
    StopId q, Timestamp t, uint32_t k, bool ld) {
  ++stats_.queries;
  stats_.last_degraded = false;
  if (primary.ok() || !IsStorageFault(primary.status())) return primary;
  // A corrupt or unreadable optimized row must not fail the query outright:
  // the label tables still answer it exactly via per-target v2v (Section
  // 3.2's baseline), just slower.
  auto fallback = ld ? LdFallback(info, q, t, k) : EaFallback(info, q, t, k);
  if (!fallback.ok()) return primary;  // Both paths faulted: first error.
  stats_.last_degraded = true;
  ++stats_.degraded;
  return fallback;
}

Result<std::vector<StopTimeResult>> PtldbDatabase::EaKnn(
    const std::string& set_name, StopId q, Timestamp t, uint32_t k) {
  auto info = ValidateSet(set_name, k);
  if (!info.ok()) return info.status();
  return OrDegrade(QueryEaKnn(&db_, set_name, q, t, k, (*info)->bucket_seconds),
                   **info, q, t, k, /*ld=*/false);
}

Result<std::vector<StopTimeResult>> PtldbDatabase::LdKnn(
    const std::string& set_name, StopId q, Timestamp t, uint32_t k) {
  auto info = ValidateSet(set_name, k);
  if (!info.ok()) return info.status();
  return OrDegrade(QueryLdKnn(&db_, set_name, q, t, k, (*info)->bucket_seconds,
                              (*info)->max_bucket),
                   **info, q, t, k, /*ld=*/true);
}

Result<std::vector<StopTimeResult>> PtldbDatabase::EaKnnNaive(
    const std::string& set_name, StopId q, Timestamp t, uint32_t k) {
  auto info = ValidateSet(set_name, k);
  if (!info.ok()) return info.status();
  ++stats_.queries;
  stats_.last_degraded = false;
  return QueryEaKnnNaive(&db_, set_name, q, t, k);
}

Result<std::vector<StopTimeResult>> PtldbDatabase::LdKnnNaive(
    const std::string& set_name, StopId q, Timestamp t, uint32_t k) {
  auto info = ValidateSet(set_name, k);
  if (!info.ok()) return info.status();
  ++stats_.queries;
  stats_.last_degraded = false;
  return QueryLdKnnNaive(&db_, set_name, q, t, k);
}

Result<std::vector<StopTimeResult>> PtldbDatabase::EaOneToMany(
    const std::string& set_name, StopId q, Timestamp t) {
  auto info = ValidateSet(set_name, 1);
  if (!info.ok()) return info.status();
  return OrDegrade(QueryEaOtm(&db_, set_name, q, t, (*info)->bucket_seconds),
                   **info, q, t, /*k=*/0, /*ld=*/false);
}

Result<std::vector<StopTimeResult>> PtldbDatabase::LdOneToMany(
    const std::string& set_name, StopId q, Timestamp t) {
  auto info = ValidateSet(set_name, 1);
  if (!info.ok()) return info.status();
  return OrDegrade(QueryLdOtm(&db_, set_name, q, t, (*info)->bucket_seconds,
                              (*info)->max_bucket),
                   **info, q, t, /*k=*/0, /*ld=*/true);
}

void PtldbDatabase::ResetIoStats() {
  device_->ResetStats();
  db_.buffer_pool()->ResetStats();
}

}  // namespace ptldb
