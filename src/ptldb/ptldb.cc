#include "ptldb/ptldb.h"

#include "ptldb/queries.h"
#include "ptldb/tables.h"

namespace ptldb {

Result<std::unique_ptr<PtldbDatabase>> PtldbDatabase::Build(
    const TtlIndex& index, const PtldbOptions& options) {
  std::unique_ptr<PtldbDatabase> db(new PtldbDatabase(options));
  PTLDB_RETURN_IF_ERROR(BuildLabelTables(index, &db->db_));
  db->num_stops_ = index.num_stops();
  db->max_event_time_ =
      ComputeBucketRange(index, /*bucket_seconds=*/1).max_bucket;
  return db;
}

Status PtldbDatabase::AddTargetSet(const std::string& name,
                                   const TtlIndex& index,
                                   const std::vector<StopId>& targets,
                                   uint32_t kmax,
                                   Timestamp bucket_seconds) {
  if (index.num_stops() != num_stops_) {
    return Status::InvalidArgument("index does not match this database");
  }
  if (target_sets_.count(name) != 0) {
    return Status::InvalidArgument("target set exists: " + name);
  }
  if (bucket_seconds <= 0) {
    return Status::InvalidArgument("bucket width must be positive");
  }
  PTLDB_RETURN_IF_ERROR(
      BuildTargetSetTables(index, targets, kmax, name, &db_, bucket_seconds));
  TargetSetInfo info;
  info.kmax = kmax;
  info.bucket_seconds = bucket_seconds;
  info.max_bucket = max_event_time_ / bucket_seconds;
  target_sets_.emplace(name, std::move(info));
  return Status::Ok();
}

Timestamp PtldbDatabase::EarliestArrival(StopId s, StopId g, Timestamp t) {
  return QueryV2vEa(&db_, s, g, t);
}

Timestamp PtldbDatabase::LatestDeparture(StopId s, StopId g,
                                         Timestamp t_end) {
  return QueryV2vLd(&db_, s, g, t_end);
}

Timestamp PtldbDatabase::ShortestDuration(StopId s, StopId g, Timestamp t,
                                          Timestamp t_end) {
  return QueryV2vSd(&db_, s, g, t, t_end);
}

Result<const PtldbDatabase::TargetSetInfo*> PtldbDatabase::ValidateSet(
    const std::string& set_name, uint32_t k) const {
  const auto it = target_sets_.find(set_name);
  if (it == target_sets_.end()) {
    return Status::NotFound("unknown target set: " + set_name);
  }
  if (k > it->second.kmax) {
    return Status::InvalidArgument("k exceeds the set's kmax");
  }
  if (k == 0) return Status::InvalidArgument("k must be positive");
  return &it->second;
}

Result<std::vector<StopTimeResult>> PtldbDatabase::EaKnn(
    const std::string& set_name, StopId q, Timestamp t, uint32_t k) {
  auto info = ValidateSet(set_name, k);
  if (!info.ok()) return info.status();
  return QueryEaKnn(&db_, set_name, q, t, k, (*info)->bucket_seconds);
}

Result<std::vector<StopTimeResult>> PtldbDatabase::LdKnn(
    const std::string& set_name, StopId q, Timestamp t, uint32_t k) {
  auto info = ValidateSet(set_name, k);
  if (!info.ok()) return info.status();
  return QueryLdKnn(&db_, set_name, q, t, k, (*info)->bucket_seconds,
                    (*info)->max_bucket);
}

Result<std::vector<StopTimeResult>> PtldbDatabase::EaKnnNaive(
    const std::string& set_name, StopId q, Timestamp t, uint32_t k) {
  auto info = ValidateSet(set_name, k);
  if (!info.ok()) return info.status();
  return QueryEaKnnNaive(&db_, set_name, q, t, k);
}

Result<std::vector<StopTimeResult>> PtldbDatabase::LdKnnNaive(
    const std::string& set_name, StopId q, Timestamp t, uint32_t k) {
  auto info = ValidateSet(set_name, k);
  if (!info.ok()) return info.status();
  return QueryLdKnnNaive(&db_, set_name, q, t, k);
}

Result<std::vector<StopTimeResult>> PtldbDatabase::EaOneToMany(
    const std::string& set_name, StopId q, Timestamp t) {
  auto info = ValidateSet(set_name, 1);
  if (!info.ok()) return info.status();
  return QueryEaOtm(&db_, set_name, q, t, (*info)->bucket_seconds);
}

Result<std::vector<StopTimeResult>> PtldbDatabase::LdOneToMany(
    const std::string& set_name, StopId q, Timestamp t) {
  auto info = ValidateSet(set_name, 1);
  if (!info.ok()) return info.status();
  return QueryLdOtm(&db_, set_name, q, t, (*info)->bucket_seconds,
                    (*info)->max_bucket);
}

void PtldbDatabase::ResetIoStats() {
  device_->ResetStats();
  db_.buffer_pool()->ResetStats();
}

}  // namespace ptldb
