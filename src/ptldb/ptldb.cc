#include "ptldb/ptldb.h"

#include <algorithm>

#include "common/query_context.h"
#include "ptldb/compiled.h"
#include "ptldb/queries.h"
#include "ptldb/tables.h"

namespace ptldb {

namespace {

/// Faults that warrant the degraded fallback path; every other error
/// (bad arguments, unknown sets) is the caller's to see.
bool IsStorageFault(const Status& s) {
  return s.code() == Status::Code::kIoError ||
         s.code() == Status::Code::kCorruption;
}

/// Per-thread mirror of last_degraded_. The shared atomic answers "did
/// the database degrade recently" for single-threaded callers; a
/// concurrent server needs "did MY query degrade" — its circuit breaker
/// trips per-request, and another thread's healthy query must not clear
/// the signal between this thread's query and its read. A query runs on
/// one thread, so a thread_local is exact.
thread_local bool tls_last_degraded = false;

}  // namespace

bool LastQueryDegradedOnThisThread() { return tls_last_degraded; }

const char* QueryTypeName(QueryType type) {
  switch (type) {
    case QueryType::kV2vEa:
      return "v2v_ea";
    case QueryType::kV2vLd:
      return "v2v_ld";
    case QueryType::kV2vSd:
      return "v2v_sd";
    case QueryType::kEaKnn:
      return "ea_knn";
    case QueryType::kLdKnn:
      return "ld_knn";
    case QueryType::kEaOtm:
      return "ea_otm";
    case QueryType::kLdOtm:
      return "ld_otm";
  }
  return "unknown";
}

PtldbDatabase::PtldbDatabase(const PtldbOptions& options)
    : db_(options.device, options.buffer_pool_pages,
          options.buffer_pool_shards),
      device_(db_.device()),
      num_threads_(options.num_threads) {
  MetricsRegistry* m = db_.metrics();
  for (size_t i = 0; i < kNumQueryTypes; ++i) {
    const std::string prefix =
        std::string("query.") + QueryTypeName(static_cast<QueryType>(i));
    query_count_[i] = m->counter(prefix + ".count");
    query_latency_[i] = m->histogram(prefix + ".latency_ns");
  }
  degraded_ = m->counter("query.degraded");
  degraded_io_error_ = m->counter("query.degraded.io_error");
  degraded_corruption_ = m->counter("query.degraded.corruption");
  exec_tuples_ = m->counter("exec.tuples_scanned");
  exec_seeks_ = m->counter("exec.index_seeks");
  exec_rows_ = m->counter("exec.rows_emitted");
  ttl_hubs_ = m->counter("ttl.hubs_merged");
  ttl_cmps_ = m->counter("ttl.label_comparisons");
  ttl_decodes_ = m->counter("ttl.labels.decodes");
  ttl_decode_bytes_ = m->counter("ttl.labels.decoded_bytes");
  vm_steps_ = m->counter("exec.vm_steps");
  compiled_queries_.store(options.compiled_queries,
                          std::memory_order_relaxed);
  query_log_ = std::make_unique<QueryLog>(options.query_log, m);
}

Result<std::unique_ptr<PtldbDatabase>> PtldbDatabase::Build(
    const TtlIndex& index, const PtldbOptions& options) {
  std::unique_ptr<PtldbDatabase> db(new PtldbDatabase(options));
  PTLDB_RETURN_IF_ERROR(BuildLabelTables(index, &db->db_));
  db->num_stops_ = index.num_stops();
  db->max_event_time_ = EventTime::FromSeconds(
      ComputeBucketRange(index, Duration::FromSeconds(1)).max_bucket);
  if (options.compressed_labels) {
    auto store = LabelStore::Build(index);
    PTLDB_RETURN_IF_ERROR(store.status());
    db->labels_ = std::move(*store);
    // Footprint accounting for the tier (DESIGN.md "Compressed label
    // tier"): raw_bytes is what the same tuples occupy as int32 arrays
    // in the heap rows — 3 columns x 4 bytes per label — the baseline
    // of the bytes/label <= 0.5x raw CI gate.
    MetricsRegistry* m = db->db_.metrics();
    const uint64_t resident = db->labels_->bytes_resident();
    const uint64_t count = db->labels_->total_labels();
    m->gauge("ttl.labels.bytes_resident")
        ->Set(static_cast<int64_t>(resident));
    m->gauge("ttl.labels.count")->Set(static_cast<int64_t>(count));
    m->gauge("ttl.labels.raw_bytes")
        ->Set(static_cast<int64_t>(count * 3 * sizeof(int32_t)));
    // Integer gauge: rounded up, so it never understates the footprint.
    m->gauge("ttl.labels.bytes_per_label")
        ->Set(count == 0
                  ? 0
                  : static_cast<int64_t>((resident + count - 1) / count));
  }
  // Compile the three Code 1 programs against whichever label tier this
  // database serves from. Done once here; the entry points only select.
  const LabelStore* labels = db->labels_.get();
  db->v2v_programs_[static_cast<size_t>(QueryType::kV2vEa)] =
      CompileV2v(&db->db_, CompiledV2vKind::kEa, labels);
  db->v2v_programs_[static_cast<size_t>(QueryType::kV2vLd)] =
      CompileV2v(&db->db_, CompiledV2vKind::kLd, labels);
  db->v2v_programs_[static_cast<size_t>(QueryType::kV2vSd)] =
      CompileV2v(&db->db_, CompiledV2vKind::kSd, labels);
  return db;
}

Status PtldbDatabase::AddTargetSet(const std::string& name,
                                   const TtlIndex& index,
                                   const std::vector<StopId>& targets,
                                   uint32_t kmax,
                                   Duration bucket_seconds) {
  if (index.num_stops() != num_stops_) {
    return Status::InvalidArgument("index does not match this database");
  }
  // Held across the whole build: registration (existence check + table
  // build + catalog insert) is atomic with respect to queries validating
  // set names and to other AddTargetSet calls.
  MutexLock lock(sets_mu_);
  if (target_sets_.count(name) != 0) {
    return Status::InvalidArgument("target set exists: " + name);
  }
  if (bucket_seconds <= Duration::Zero()) {
    return Status::InvalidArgument("bucket width must be positive");
  }
  // Target sets have set semantics: duplicate stops collapse to one
  // target (a duplicated stop must not appear twice in a kNN answer), and
  // the canonical list is kept sorted so self-membership tests (q ∈ T)
  // are a binary search.
  std::vector<StopId> canon = targets;
  std::sort(canon.begin(), canon.end());
  canon.erase(std::unique(canon.begin(), canon.end()), canon.end());
  PTLDB_RETURN_IF_ERROR(BuildTargetSetTables(index, canon, kmax, name, &db_,
                                             bucket_seconds, num_threads_));
  TargetSetInfo info;
  info.kmax = kmax;
  info.bucket_seconds = bucket_seconds;
  info.max_bucket = CheckedBucketOf(max_event_time_, bucket_seconds);
  info.targets = std::move(canon);
  // Compile the four bucket-scan programs once per set; the kNN/OTM entry
  // points select a stored program instead of building a plan per query.
  // OTM programs share the kNN scan shape with k clamped to kmax at
  // compile time and 0 at run time (no output truncation).
  info.ea_knn_program =
      CompileSetQuery(&db_, /*ld=*/false, KnnEaTableName(name),
                      bucket_seconds, info.max_bucket, kmax, labels_.get());
  info.ld_knn_program =
      CompileSetQuery(&db_, /*ld=*/true, KnnLdTableName(name),
                      bucket_seconds, info.max_bucket, kmax, labels_.get());
  info.ea_otm_program =
      CompileSetQuery(&db_, /*ld=*/false, OtmEaTableName(name),
                      bucket_seconds, info.max_bucket, /*kmax=*/0,
                      labels_.get());
  info.ld_otm_program =
      CompileSetQuery(&db_, /*ld=*/true, OtmLdTableName(name),
                      bucket_seconds, info.max_bucket, /*kmax=*/0,
                      labels_.get());
  target_sets_.emplace(name, std::move(info));
  return Status::Ok();
}

Result<EventTime> PtldbDatabase::EarliestArrival(StopId s, StopId g,
                                                 EventTime t) {
  last_degraded_.store(false, std::memory_order_relaxed);
  return Timed(QueryType::kV2vEa, {.s = s, .g = g, .t = t},
               [&]() -> Result<EventTime> {
                 const VmProgram& prog =
                     v2v_programs_[static_cast<size_t>(QueryType::kV2vEa)];
                 if (compiled_queries_.load(std::memory_order_relaxed) &&
                     prog.valid) {
                   return RunCompiledV2v(&db_, prog, s, g, t,
                                         /*t_end=*/EventTime());
                 }
                 return QueryV2vEa(&db_, s, g, t, labels_.get());
               });
}

Result<EventTime> PtldbDatabase::LatestDeparture(StopId s, StopId g,
                                                 EventTime t_end) {
  last_degraded_.store(false, std::memory_order_relaxed);
  return Timed(QueryType::kV2vLd, {.s = s, .g = g, .t_end = t_end},
               [&]() -> Result<EventTime> {
                 const VmProgram& prog =
                     v2v_programs_[static_cast<size_t>(QueryType::kV2vLd)];
                 if (compiled_queries_.load(std::memory_order_relaxed) &&
                     prog.valid) {
                   return RunCompiledV2v(&db_, prog, s, g, /*t=*/EventTime(),
                                         t_end);
                 }
                 return QueryV2vLd(&db_, s, g, t_end, labels_.get());
               });
}

Result<Duration> PtldbDatabase::ShortestDuration(StopId s, StopId g,
                                                 EventTime t,
                                                 EventTime t_end) {
  last_degraded_.store(false, std::memory_order_relaxed);
  return Timed(QueryType::kV2vSd, {.s = s, .g = g, .t = t, .t_end = t_end},
               [&]() -> Result<Duration> {
                 const VmProgram& prog =
                     v2v_programs_[static_cast<size_t>(QueryType::kV2vSd)];
                 if (compiled_queries_.load(std::memory_order_relaxed) &&
                     prog.valid) {
                   return RunCompiledV2vSd(&db_, prog, s, g, t, t_end);
                 }
                 return QueryV2vSd(&db_, s, g, t, t_end, labels_.get());
               });
}

namespace {

/// q ∈ T means the querier already stands at a target at time t, so the
/// true earliest arrival at q is t itself — and symmetrically the latest
/// departure to reach q by t_end is t_end. The label join cannot see this
/// "stay put" journey (labels encode only connections), so every facade
/// path — optimized plan, naive plan, degraded per-target fallback —
/// patches the self entry in afterwards. This keeps all paths consistent
/// with each other and with the brute oracle.
void PatchSelfTarget(std::vector<StopTimeResult>* out,
                     const std::vector<StopId>& sorted_targets, StopId q,
                     EventTime t, uint32_t k, bool ld) {
  if (!std::binary_search(sorted_targets.begin(), sorted_targets.end(), q)) {
    return;
  }
  out->erase(std::remove_if(
                 out->begin(), out->end(),
                 [&](const StopTimeResult& r) { return r.stop == q; }),
             out->end());
  out->push_back({q, t});
  std::sort(out->begin(), out->end(),
            [&](const StopTimeResult& a, const StopTimeResult& b) {
              if (a.time != b.time) {
                return ld ? a.time > b.time : a.time < b.time;
              }
              return a.stop < b.stop;
            });
  if (k != 0 && out->size() > k) out->resize(k);
}

}  // namespace

Result<const PtldbDatabase::TargetSetInfo*> PtldbDatabase::ValidateSet(
    const std::string& set_name, uint32_t k) const {
  MutexLock lock(sets_mu_);
  const auto it = target_sets_.find(set_name);
  if (it == target_sets_.end()) {
    return Status::NotFound("unknown target set: " + set_name);
  }
  if (k > it->second.kmax) {
    return Status::InvalidArgument("k exceeds the set's kmax");
  }
  if (k == 0) return Status::InvalidArgument("k must be positive");
  return &it->second;
}

Result<std::vector<StopTimeResult>> PtldbDatabase::EaFallback(
    const TargetSetInfo& info, StopId q, EventTime t, uint32_t k) {
  std::vector<StopTimeResult> out;
  for (const StopId v : info.targets) {
    // The fallback is |T| v2v plans back to back — the slowest facade
    // path, so it checkpoints per target on top of the per-page checks.
    PTLDB_RETURN_IF_ERROR(CheckQueryCheckpoint());
    auto ea = QueryV2vEa(&db_, q, v, t, labels_.get());
    PTLDB_RETURN_IF_ERROR(ea.status());
    if (*ea != EventTime::Infinity()) out.push_back({v, *ea});
  }
  std::sort(out.begin(), out.end(),
            [](const StopTimeResult& a, const StopTimeResult& b) {
              return a.time != b.time ? a.time < b.time : a.stop < b.stop;
            });
  if (k != 0 && out.size() > k) out.resize(k);
  return out;
}

Result<std::vector<StopTimeResult>> PtldbDatabase::LdFallback(
    const TargetSetInfo& info, StopId q, EventTime t, uint32_t k) {
  std::vector<StopTimeResult> out;
  for (const StopId v : info.targets) {
    PTLDB_RETURN_IF_ERROR(CheckQueryCheckpoint());
    auto ld = QueryV2vLd(&db_, q, v, t, labels_.get());
    PTLDB_RETURN_IF_ERROR(ld.status());
    if (*ld != EventTime::NegInfinity()) out.push_back({v, *ld});
  }
  std::sort(out.begin(), out.end(),
            [](const StopTimeResult& a, const StopTimeResult& b) {
              return a.time != b.time ? a.time > b.time : a.stop < b.stop;
            });
  if (k != 0 && out.size() > k) out.resize(k);
  return out;
}

Result<std::vector<StopTimeResult>> PtldbDatabase::OrDegrade(
    Result<std::vector<StopTimeResult>> primary, const TargetSetInfo& info,
    StopId q, EventTime t, uint32_t k, bool ld) {
  if (primary.ok() || !IsStorageFault(primary.status())) return primary;
  // A corrupt or unreadable optimized row must not fail the query outright:
  // the label tables still answer it exactly via per-target v2v (Section
  // 3.2's baseline), just slower.
  auto fallback = ld ? LdFallback(info, q, t, k) : EaFallback(info, q, t, k);
  if (!fallback.ok()) return primary;  // Both paths faulted: first error.
  last_degraded_.store(true, std::memory_order_relaxed);
  tls_last_degraded = true;
  degraded_->Add(1);
  (primary.status().code() == Status::Code::kCorruption
       ? degraded_corruption_
       : degraded_io_error_)
      ->Add(1);
  if (trace_) trace_->AddStat("degraded", 1);
  return fallback;
}

void PtldbDatabase::ClearThreadDegradedFlag() { tls_last_degraded = false; }

Result<std::vector<StopTimeResult>> PtldbDatabase::EaFallbackQuery(
    const std::string& set_name, StopId q, EventTime t, uint32_t k) {
  last_degraded_.store(false, std::memory_order_relaxed);
  const QueryType type = k == 0 ? QueryType::kEaOtm : QueryType::kEaKnn;
  return Timed(type,
               {.s = q, .t = t, .k = k, .set_name = set_name.c_str()},
               [&]() -> Result<std::vector<StopTimeResult>> {
    // k == 0 is the one-to-many variant; ValidateSet rejects k == 0, so
    // validate with k = 1 (sets always support at least one neighbor).
    // Validation runs inside Timed so a bad set name still leaves a
    // query-log record (outcome=error, cause=not_found).
    auto info = ValidateSet(set_name, k == 0 ? 1 : k);
    if (!info.ok()) return info.status();
    auto r = EaFallback(**info, q, t, k);
    if (r.ok()) PatchSelfTarget(&*r, (*info)->targets, q, t, k, /*ld=*/false);
    return r;
  });
}

Result<std::vector<StopTimeResult>> PtldbDatabase::LdFallbackQuery(
    const std::string& set_name, StopId q, EventTime t, uint32_t k) {
  last_degraded_.store(false, std::memory_order_relaxed);
  const QueryType type = k == 0 ? QueryType::kLdOtm : QueryType::kLdKnn;
  return Timed(type,
               {.s = q, .t = t, .k = k, .set_name = set_name.c_str()},
               [&]() -> Result<std::vector<StopTimeResult>> {
    auto info = ValidateSet(set_name, k == 0 ? 1 : k);
    if (!info.ok()) return info.status();
    auto r = LdFallback(**info, q, t, k);
    if (r.ok()) PatchSelfTarget(&*r, (*info)->targets, q, t, k, /*ld=*/true);
    return r;
  });
}

Result<std::vector<StopTimeResult>> PtldbDatabase::EaKnn(
    const std::string& set_name, StopId q, EventTime t, uint32_t k) {
  last_degraded_.store(false, std::memory_order_relaxed);
  return Timed(QueryType::kEaKnn,
               {.s = q, .t = t, .k = k, .set_name = set_name.c_str()},
               [&]() -> Result<std::vector<StopTimeResult>> {
    auto info = ValidateSet(set_name, k);
    if (!info.ok()) return info.status();
    const VmProgram& prog = (*info)->ea_knn_program;
    auto primary =
        compiled_queries_.load(std::memory_order_relaxed) && prog.valid
            ? RunCompiledSetQuery(&db_, prog, q, t, k)
            : QueryEaKnn(&db_, set_name, q, t, k, (*info)->bucket_seconds,
                         labels_.get());
    auto r = OrDegrade(std::move(primary), **info, q, t, k, /*ld=*/false);
    if (r.ok()) PatchSelfTarget(&*r, (*info)->targets, q, t, k, /*ld=*/false);
    return r;
  });
}

Result<std::vector<StopTimeResult>> PtldbDatabase::LdKnn(
    const std::string& set_name, StopId q, EventTime t, uint32_t k) {
  last_degraded_.store(false, std::memory_order_relaxed);
  return Timed(QueryType::kLdKnn,
               {.s = q, .t = t, .k = k, .set_name = set_name.c_str()},
               [&]() -> Result<std::vector<StopTimeResult>> {
    auto info = ValidateSet(set_name, k);
    if (!info.ok()) return info.status();
    const VmProgram& prog = (*info)->ld_knn_program;
    auto primary =
        compiled_queries_.load(std::memory_order_relaxed) && prog.valid
            ? RunCompiledSetQuery(&db_, prog, q, t, k)
            : QueryLdKnn(&db_, set_name, q, t, k, (*info)->bucket_seconds,
                         (*info)->max_bucket, labels_.get());
    auto r = OrDegrade(std::move(primary), **info, q, t, k, /*ld=*/true);
    if (r.ok()) PatchSelfTarget(&*r, (*info)->targets, q, t, k, /*ld=*/true);
    return r;
  });
}

Result<std::vector<StopTimeResult>> PtldbDatabase::EaKnnNaive(
    const std::string& set_name, StopId q, EventTime t, uint32_t k) {
  last_degraded_.store(false, std::memory_order_relaxed);
  return Timed(QueryType::kEaKnn,
               {.s = q, .t = t, .k = k, .set_name = set_name.c_str()},
               [&]() -> Result<std::vector<StopTimeResult>> {
    auto info = ValidateSet(set_name, k);
    if (!info.ok()) return info.status();
    auto r = QueryEaKnnNaive(&db_, set_name, q, t, k, labels_.get());
    if (r.ok()) PatchSelfTarget(&*r, (*info)->targets, q, t, k, /*ld=*/false);
    return r;
  });
}

Result<std::vector<StopTimeResult>> PtldbDatabase::LdKnnNaive(
    const std::string& set_name, StopId q, EventTime t, uint32_t k) {
  last_degraded_.store(false, std::memory_order_relaxed);
  return Timed(QueryType::kLdKnn,
               {.s = q, .t = t, .k = k, .set_name = set_name.c_str()},
               [&]() -> Result<std::vector<StopTimeResult>> {
    auto info = ValidateSet(set_name, k);
    if (!info.ok()) return info.status();
    auto r = QueryLdKnnNaive(&db_, set_name, q, t, k, labels_.get());
    if (r.ok()) PatchSelfTarget(&*r, (*info)->targets, q, t, k, /*ld=*/true);
    return r;
  });
}

Result<std::vector<StopTimeResult>> PtldbDatabase::EaOneToMany(
    const std::string& set_name, StopId q, EventTime t) {
  last_degraded_.store(false, std::memory_order_relaxed);
  return Timed(QueryType::kEaOtm,
               {.s = q, .t = t, .set_name = set_name.c_str()},
               [&]() -> Result<std::vector<StopTimeResult>> {
    auto info = ValidateSet(set_name, 1);
    if (!info.ok()) return info.status();
    const VmProgram& prog = (*info)->ea_otm_program;
    auto primary =
        compiled_queries_.load(std::memory_order_relaxed) && prog.valid
            ? RunCompiledSetQuery(&db_, prog, q, t, /*k=*/0)
            : QueryEaOtm(&db_, set_name, q, t, (*info)->bucket_seconds,
                         labels_.get());
    auto r = OrDegrade(std::move(primary), **info, q, t, /*k=*/0, /*ld=*/false);
    if (r.ok()) {
      PatchSelfTarget(&*r, (*info)->targets, q, t, /*k=*/0, /*ld=*/false);
    }
    return r;
  });
}

Result<std::vector<StopTimeResult>> PtldbDatabase::LdOneToMany(
    const std::string& set_name, StopId q, EventTime t) {
  last_degraded_.store(false, std::memory_order_relaxed);
  return Timed(QueryType::kLdOtm,
               {.s = q, .t = t, .set_name = set_name.c_str()},
               [&]() -> Result<std::vector<StopTimeResult>> {
    auto info = ValidateSet(set_name, 1);
    if (!info.ok()) return info.status();
    const VmProgram& prog = (*info)->ld_otm_program;
    auto primary =
        compiled_queries_.load(std::memory_order_relaxed) && prog.valid
            ? RunCompiledSetQuery(&db_, prog, q, t, /*k=*/0)
            : QueryLdOtm(&db_, set_name, q, t, (*info)->bucket_seconds,
                         (*info)->max_bucket, labels_.get());
    auto r = OrDegrade(std::move(primary), **info, q, t, /*k=*/0, /*ld=*/true);
    if (r.ok()) {
      PatchSelfTarget(&*r, (*info)->targets, q, t, /*k=*/0, /*ld=*/true);
    }
    return r;
  });
}

void PtldbDatabase::ResetIoStats() {
  device_->ResetStats();
  db_.buffer_pool()->ResetStats();
}

PtldbDatabase::QueryStats PtldbDatabase::query_stats() const {
  QueryStats out;
  for (size_t i = 0; i < kNumQueryTypes; ++i) {
    out.by_type[i] = query_count_[i]->value();
    out.queries += out.by_type[i];
  }
  out.degraded = degraded_->value();
  out.last_degraded = last_degraded_.load(std::memory_order_relaxed);
  return out;
}

void PtldbDatabase::ResetQueryStats() {
  for (size_t i = 0; i < kNumQueryTypes; ++i) {
    query_count_[i]->Reset();
    query_latency_[i]->Reset();
  }
  degraded_->Reset();
  degraded_io_error_->Reset();
  degraded_corruption_->Reset();
  last_degraded_.store(false, std::memory_order_relaxed);
}

MetricsSnapshot PtldbDatabase::Snapshot() const { return db_.Snapshot(); }

}  // namespace ptldb
