#ifndef PTLDB_PTLDB_LABEL_MERGE_H_
#define PTLDB_PTLDB_LABEL_MERGE_H_

#include <algorithm>
#include <cstdint>
#include <span>

#include "common/metrics.h"
#include "common/query_context.h"
#include "common/query_log.h"
#include "common/status.h"
#include "common/time_util.h"
#include "engine/value.h"
#include "ttl/label_store.h"

namespace ptldb {

/// The Code 1 common-hub merge kernels, shared by three execution
/// surfaces: the volcano merge plans in queries.cc (raw heap rows), the
/// compressed-tier fast path (decoded buckets), and the compiled query
/// VM (compiled.cc, rows decoded into RowScratch spans). One
/// implementation, three representations — the differential harness pins
/// that they answer identically.

/// One stop's labels viewed as three parallel arrays sorted by
/// (hub, td) — spans, so the same merge code runs over a fetched heap
/// row (Value arrays), a compressed bucket decoded into a LabelArrays
/// scratch, or raw RowScratch columns on the compiled path.
struct LabelRowView {
  std::span<const int32_t> hubs;
  std::span<const int32_t> tds;
  std::span<const int32_t> tas;

  LabelRowView() = default;
  explicit LabelRowView(const Row& row)
      : hubs(row[1].AsArray()), tds(row[2].AsArray()), tas(row[3].AsArray()) {}
  explicit LabelRowView(const LabelView& view)
      : hubs(view.hubs), tds(view.tds), tas(view.tas) {}
  LabelRowView(std::span<const int32_t> h, std::span<const int32_t> d,
               std::span<const int32_t> a)
      : hubs(h), tds(d), tas(a) {}

  size_t size() const { return hubs.size(); }
};

/// Decodes stop v's resident bucket into *scratch, charging the decode to
/// this thread's query counters (the facade flushes them into the
/// `ttl.labels.decodes` / `ttl.labels.decoded_bytes` registry counters).
inline Result<LabelView> DecodeCounted(const LabelStore& store,
                                       LabelStore::Direction dir, StopId v,
                                       LabelArrays* scratch) {
  // Attributed to the label_decode phase of the current request record
  // (no-op when none is installed; see common/query_log.h).
  ScopedQueryPhase phase(QueryPhase::kLabelDecode);
  auto& counters = ThisThreadQueryCounters();
  ++counters.label_decodes;
  counters.label_decode_bytes += store.bucket_bytes(dir, v).size();
  return store.Decode(dir, v, scratch);
}

/// The three label arrays are parallel by construction; a length mismatch
/// means the row decoded from a corrupt page.
inline Status CheckLabelRow(const Row& row) {
  if (row.size() < 4) {
    return Status::Corruption("label row has too few columns");
  }
  const size_t n = row[1].AsArray().size();
  if (row[2].AsArray().size() != n || row[3].AsArray().size() != n) {
    return Status::Corruption("label row arrays have unequal lengths");
  }
  return Status::Ok();
}

/// First index in [lo, hi) with td >= t (group is Pareto: td ascending).
/// Stored td columns widen into the compute tier for the comparison, so a
/// query bound beyond the stored horizon needs no narrowing cast here.
inline size_t FirstNotBefore(const LabelRowView& v, size_t lo, size_t hi,
                             EventTime t) {
  auto& counters = ThisThreadQueryCounters();
  // analyzer: bounded(binary search: O(log n) over one Pareto group)
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    ++counters.label_comparisons;
    if (FromStoredTime(v.tds[mid]) >= t) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

/// Last index in [lo, hi) with ta <= t, or hi when none.
inline size_t LastNotAfter(const LabelRowView& v, size_t lo, size_t hi,
                           EventTime t) {
  auto& counters = ThisThreadQueryCounters();
  size_t l = lo;
  size_t h = hi;
  // analyzer: bounded(binary search: O(log n) over one Pareto group)
  while (l < h) {
    const size_t mid = l + (h - l) / 2;
    ++counters.label_comparisons;
    if (FromStoredTime(v.tas[mid]) <= t) {
      l = mid + 1;
    } else {
      h = mid;
    }
  }
  return l == lo ? hi : l - 1;
}

/// Runs `fn(a_lo, a_hi, b_lo, b_hi)` for every hub present in both rows.
/// Deadline checkpoint per merge step (see query_context.h): a served
/// query with an expired deadline unwinds here with kDeadlineExceeded,
/// exactly like the hash-join drain of the SQL-shaped Code 1 plan.
template <typename Fn>
Status MergeCommonHubs(const LabelRowView& a, const LabelRowView& b, Fn&& fn) {
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    PTLDB_RETURN_IF_ERROR(CheckQueryCheckpoint());
    const int32_t ha = a.hubs[i];
    const int32_t hb = b.hubs[j];
    if (ha < hb) {
      while (i < a.size() && a.hubs[i] == ha) ++i;
    } else if (hb < ha) {
      while (j < b.size() && b.hubs[j] == hb) ++j;
    } else {
      size_t i2 = i;
      size_t j2 = j;
      while (i2 < a.size() && a.hubs[i2] == ha) ++i2;
      while (j2 < b.size() && b.hubs[j2] == ha) ++j2;
      ++ThisThreadQueryCounters().hubs_merged;
      fn(i, i2, j, j2);
      i = i2;
      j = j2;
    }
  }
  return Status::Ok();
}

/// The three Code 1 answers over a pair of label views. Shared by the
/// merge-plan entry points (raw rows), the compressed-tier fast path
/// (decoded buckets) and the compiled VM: the representation changes,
/// the merge does not.
inline Result<EventTime> MergeV2vEa(const LabelRowView& outp,
                                    const LabelRowView& inp, EventTime t) {
  ScopedQueryPhase phase(QueryPhase::kMerge);
  EventTime best = EventTime::Infinity();
  PTLDB_RETURN_IF_ERROR(MergeCommonHubs(
      outp, inp,
      [&](size_t a_lo, size_t a_hi, size_t b_lo, size_t b_hi) {
        const size_t l1 = FirstNotBefore(outp, a_lo, a_hi, t);
        if (l1 == a_hi) return;
        const size_t l2 =
            FirstNotBefore(inp, b_lo, b_hi, FromStoredTime(outp.tas[l1]));
        if (l2 == b_hi) return;
        best = std::min(best, FromStoredTime(inp.tas[l2]));
      }));
  return best;
}

inline Result<EventTime> MergeV2vLd(const LabelRowView& outp,
                                    const LabelRowView& inp, EventTime t_end) {
  ScopedQueryPhase phase(QueryPhase::kMerge);
  EventTime best = EventTime::NegInfinity();
  PTLDB_RETURN_IF_ERROR(MergeCommonHubs(
      outp, inp,
      [&](size_t a_lo, size_t a_hi, size_t b_lo, size_t b_hi) {
        const size_t l2 = LastNotAfter(inp, b_lo, b_hi, t_end);
        if (l2 == b_hi) return;
        const size_t l1 =
            LastNotAfter(outp, a_lo, a_hi, FromStoredTime(inp.tds[l2]));
        if (l1 == a_hi) return;
        best = std::max(best, FromStoredTime(outp.tds[l1]));
      }));
  return best;
}

inline Result<Duration> MergeV2vSd(const LabelRowView& outp,
                                   const LabelRowView& inp, EventTime t,
                                   EventTime t_end) {
  ScopedQueryPhase phase(QueryPhase::kMerge);
  // Durations are typed 64-bit: ta - td can exceed INT32_MAX when a
  // timetable spans near-horizon timestamps (e.g. an arrival close to the
  // stored maximum reached from a departure below zero), and the int32
  // subtraction this fold once used was UB, not just a wrong answer. A
  // duration that still exceeds the stored horizon after the min-fold
  // saturates to Duration::Infinity() — indistinguishable from
  // "unreachable", which is the only honest stored-width answer.
  Duration best = Duration::Infinity();
  PTLDB_RETURN_IF_ERROR(MergeCommonHubs(
      outp, inp,
      [&](size_t a_lo, size_t a_hi, size_t b_lo, size_t b_hi) {
        size_t l2 = b_lo;
        // analyzer: bounded(one Pareto group; MergeCommonHubs checkpoints per hub)
        for (size_t l1 = FirstNotBefore(outp, a_lo, a_hi, t); l1 < a_hi;
             ++l1) {
          while (l2 < b_hi && inp.tds[l2] < outp.tas[l1]) ++l2;
          if (l2 == b_hi || FromStoredTime(inp.tas[l2]) > t_end) break;
          best = std::min(best, FromStoredTime(inp.tas[l2]) -
                                    FromStoredTime(outp.tds[l1]));
        }
      }));
  return std::min(best, Duration::Infinity());
}

}  // namespace ptldb

#endif  // PTLDB_PTLDB_LABEL_MERGE_H_
