#include "ptldb/service_calendar.h"

#include <algorithm>

#include "ttl/builder.h"

namespace ptldb {

namespace {

// Two feeds service the same period when their connection multisets match
// (stop ids are shared across weekday extractions of one feed, so direct
// comparison is sound).
bool SameTimetable(const Timetable& a, const Timetable& b) {
  if (a.num_stops() != b.num_stops() ||
      a.num_connections() != b.num_connections()) {
    return false;
  }
  const auto ca = a.connections();
  const auto cb = b.connections();
  for (size_t i = 0; i < ca.size(); ++i) {
    // Trip ids may be numbered differently between extractions; compare
    // the schedule shape only.
    if (ca[i].from != cb[i].from || ca[i].to != cb[i].to ||
        ca[i].dep != cb[i].dep || ca[i].arr != cb[i].arr) {
      return false;
    }
  }
  return true;
}

constexpr Weekday kAllDays[] = {
    Weekday::kMonday,   Weekday::kTuesday, Weekday::kWednesday,
    Weekday::kThursday, Weekday::kFriday,  Weekday::kSaturday,
    Weekday::kSunday};

}  // namespace

Result<std::unique_ptr<CalendarPtldb>> CalendarPtldb::FromGtfs(
    const std::string& gtfs_directory, const Options& options) {
  std::unique_ptr<CalendarPtldb> calendar(new CalendarPtldb());
  for (const Weekday day : kAllDays) {
    GtfsOptions gtfs_options;
    gtfs_options.weekday = day;
    auto feed = LoadGtfs(gtfs_directory, gtfs_options);
    if (!feed.ok()) return feed.status();

    // Reuse an existing period with the same timetable.
    size_t period_index = calendar->periods_.size();
    for (size_t i = 0; i < calendar->periods_.size(); ++i) {
      if (SameTimetable(calendar->periods_[i]->feed.timetable,
                        feed->timetable)) {
        period_index = i;
        break;
      }
    }
    if (period_index == calendar->periods_.size()) {
      auto period = std::make_unique<Period>();
      period->feed = std::move(*feed);
      auto index = BuildTtlIndex(period->feed.timetable, options.labels);
      if (!index.ok()) return index.status();
      period->index = std::move(*index);
      auto db = PtldbDatabase::Build(period->index, options.database);
      if (!db.ok()) return db.status();
      period->db = std::move(*db);
      calendar->periods_.push_back(std::move(period));
    }
    calendar->day_period_[static_cast<size_t>(day)] = period_index;
  }
  return calendar;
}

Status CalendarPtldb::AddTargetSet(
    const std::string& name, const std::vector<std::string>& gtfs_stop_ids,
    uint32_t kmax) {
  for (const auto& period : periods_) {
    std::vector<StopId> targets;
    targets.reserve(gtfs_stop_ids.size());
    for (const std::string& id : gtfs_stop_ids) {
      const auto it = period->feed.stop_index.find(id);
      if (it == period->feed.stop_index.end()) {
        return Status::NotFound("unknown GTFS stop " + id);
      }
      targets.push_back(it->second);
    }
    PTLDB_RETURN_IF_ERROR(
        period->db->AddTargetSet(name, period->index, targets, kmax));
  }
  return Status::Ok();
}

PtldbDatabase* CalendarPtldb::ForDay(Weekday day) {
  return periods_[day_period_[static_cast<size_t>(day)]]->db.get();
}

StopId CalendarPtldb::StopFor(Weekday day,
                              const std::string& gtfs_stop_id) const {
  const auto& period = periods_[day_period_[static_cast<size_t>(day)]];
  const auto it = period->feed.stop_index.find(gtfs_stop_id);
  return it == period->feed.stop_index.end() ? kInvalidStop : it->second;
}

Result<EventTime> CalendarPtldb::EarliestArrival(Weekday day,
                                                 const std::string& from,
                                                 const std::string& to,
                                                 EventTime t) {
  const StopId s = StopFor(day, from);
  const StopId g = StopFor(day, to);
  if (s == kInvalidStop || g == kInvalidStop) {
    return Status::NotFound("unknown GTFS stop id");
  }
  return ForDay(day)->EarliestArrival(s, g, t);
}

}  // namespace ptldb
