#ifndef PTLDB_PTLDB_SERVICE_CALENDAR_H_
#define PTLDB_PTLDB_SERVICE_CALENDAR_H_

#include <array>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "ptldb/ptldb.h"
#include "timetable/gtfs.h"
#include "ttl/builder.h"

namespace ptldb {

/// Multi-service-period PTLDB, per Section 3.1 of the paper: "In case of
/// timetables changing depending on the weekday (e.g., weekdays vs
/// weekends) ... we would need to have different versions of the lout and
/// lin DB tables, for servicing each different period."
///
/// CalendarPtldb loads one GTFS feed, extracts the distinct service days,
/// builds a full PTLDB database (labels + optional target sets) per
/// distinct timetable, and dispatches queries by weekday. Weekdays with
/// identical timetables (the common case: Mon-Fri) share one database.
class CalendarPtldb {
 public:
  struct Options {
    PtldbOptions database;
    TtlBuildOptions labels;
  };

  /// Builds databases for all seven weekdays from a GTFS directory.
  static Result<std::unique_ptr<CalendarPtldb>> FromGtfs(
      const std::string& gtfs_directory, const Options& options = {});

  /// Registers a target set (by GTFS stop ids) on every period.
  Status AddTargetSet(const std::string& name,
                      const std::vector<std::string>& gtfs_stop_ids,
                      uint32_t kmax);

  /// The database servicing `day` (never null after FromGtfs succeeds).
  PtldbDatabase* ForDay(Weekday day);

  /// Dense stop id for a GTFS stop id on `day`'s timetable; kInvalidStop
  /// when the stop is unknown.
  StopId StopFor(Weekday day, const std::string& gtfs_stop_id) const;

  /// Convenience: EA dispatched by weekday, by GTFS stop ids.
  Result<EventTime> EarliestArrival(Weekday day, const std::string& from,
                                    const std::string& to, EventTime t);

  /// Number of distinct timetables backing the seven weekdays.
  size_t num_distinct_periods() const { return periods_.size(); }

 private:
  struct Period {
    GtfsLoadResult feed;
    TtlIndex index;
    std::unique_ptr<PtldbDatabase> db;
  };

  CalendarPtldb() = default;

  std::vector<std::unique_ptr<Period>> periods_;
  // weekday (0=Monday) -> index into periods_.
  std::array<size_t, 7> day_period_{};
};

}  // namespace ptldb

#endif  // PTLDB_PTLDB_SERVICE_CALENDAR_H_
