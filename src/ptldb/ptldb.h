#ifndef PTLDB_PTLDB_PTLDB_H_
#define PTLDB_PTLDB_PTLDB_H_

#include <array>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/query_log.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/trace.h"
#include "engine/database.h"
#include "engine/vm.h"
#include "timetable/types.h"
#include "ttl/label.h"
#include "ttl/label_store.h"

namespace ptldb {

/// The seven query types of the paper (Codes 1-4). Used to key the
/// facade's per-type counters and latency histograms.
enum class QueryType {
  kV2vEa = 0,
  kV2vLd,
  kV2vSd,
  kEaKnn,
  kLdKnn,
  kEaOtm,
  kLdOtm,
};
inline constexpr size_t kNumQueryTypes = 7;

/// Stable short name ("v2v_ea", "ea_knn", ...) used in metric names and
/// trace spans.
const char* QueryTypeName(QueryType type);

/// Declared early for use in Timed(); documented at the bottom of this
/// header next to QueryStats.
bool LastQueryDegradedOnThisThread();

/// Options for building a PtldbDatabase.
struct PtldbOptions {
  /// Simulated storage device backing the database (see DESIGN.md).
  DeviceProfile device = DeviceProfile::Hdd7200();
  /// Buffer-pool capacity in 8 KiB pages. The paper configures 8 GiB of
  /// shared buffers — far above its dataset sizes — so the default is
  /// effectively unbounded.
  uint64_t buffer_pool_pages = 1u << 20;
  /// Buffer-pool shard count (0 = derive from capacity; see BufferPool).
  /// Each shard has its own latch and LRU list, so concurrent queries
  /// stop serializing on one pool mutex.
  uint32_t buffer_pool_shards = 0;
  /// Worker threads for building the derived kNN/OTM tables in
  /// AddTargetSet (0 = one per hardware thread, 1 = serial). Purely a
  /// speed knob: the loaded tables are identical for every value.
  uint32_t num_threads = 1;
  /// Build the RAM-resident compressed label tier (delta+varint SoA
  /// buckets, DESIGN.md "Compressed label tier") at Build time and answer
  /// every label scan from it: Code 1 becomes an in-memory merge join,
  /// Codes 2-4 decode their n1 row instead of fetching it. The lout/lin
  /// heap tables are built either way — they remain the durable tier, and
  /// the only tier when this is false (the seed behavior). Answers are
  /// identical in both modes; the differential harness pins it.
  bool compressed_labels = false;
  /// Execute the seven query types as compiled VM programs (engine/vm.h,
  /// DESIGN.md "Compiled query programs & arena memory"): each type
  /// compiles once — Code 1 at Build, Codes 2-4 per target set — and the
  /// entry points run the stored program with all scratch in a
  /// per-request bump arena instead of constructing a volcano plan per
  /// call. Answers are identical (the differential harness pins it);
  /// the volcano interpreter remains the general-SQL surface and the
  /// fallback when a program fails to compile. Togglable at runtime via
  /// set_compiled_queries() for paired benchmarking.
  bool compiled_queries = true;
  /// Structured request history: ring capacity, tail-sampling policy and
  /// slow-query threshold (DESIGN.md §11). Always on by default — the
  /// CI overhead gate pins the cost — and togglable at runtime via
  /// query_log()->set_enabled().
  QueryLogOptions query_log;
};

/// The PTLDB system of the paper: TTL labels stored in database tables plus
/// the seven query types, executed against the embedded storage engine.
///
/// Typical use:
///   auto index = BuildTtlIndex(timetable);
///   auto db = PtldbDatabase::Build(*index);
///   db->AddTargetSet("poi", *index, poi_stops, /*kmax=*/16);
///   db->EarliestArrival(s, g, t);
///   db->EaKnn("poi", q, t, 4);
///
/// For the paper's actual pure-SQL deployment on PostgreSQL, see
/// src/pgsql (SqlWriter emits the DDL/COPY/queries; PgBackend runs them).
class PtldbDatabase {
 public:
  /// Builds the lout/lin tables from a TTL index (which must include the
  /// dummy tuples of Section 3.1 — the default of BuildTtlIndex).
  static Result<std::unique_ptr<PtldbDatabase>> Build(
      const TtlIndex& index, const PtldbOptions& options = {});

  /// Builds the kNN and one-to-many tables for a fixed target set
  /// (Sections 3.2-3.3). `kmax` caps the k serviced by the kNN tables;
  /// `bucket_seconds` is the (hub, hour) grouping interval (one hour in the
  /// paper; Section 3.2.1 discusses the tradeoff).
  ///
  /// `targets` has set semantics: duplicate stops collapse to a single
  /// target before the tables are built, so a stop can never appear twice
  /// in one answer.
  Status AddTargetSet(const std::string& name, const TtlIndex& index,
                      const std::vector<StopId>& targets, uint32_t kmax,
                      Duration bucket_seconds = kHourBucket);

  // --- Vertex-to-vertex queries (Code 1) ---
  // Non-OK on storage faults (kIoError) or detected corruption
  // (kCorruption) — never a silently wrong journey.
  Result<EventTime> EarliestArrival(StopId s, StopId g, EventTime t);
  Result<EventTime> LatestDeparture(StopId s, StopId g, EventTime t_end);
  Result<Duration> ShortestDuration(StopId s, StopId g, EventTime t,
                                    EventTime t_end);

  // --- kNN queries (Section 3.2); k must be <= the set's kmax ---
  // Graceful degradation: when the optimized knn_*/otm_* tables hit a
  // storage fault, the facade re-answers from per-target v2v label queries
  // (the paper's Section 3.2 baseline) and records degraded=true in
  // query_stats(). Only if the fallback faults too does the error surface.
  //
  // Edge semantics (shared with the brute oracle):
  //  - k > |T| is fine: the answer simply has fewer than k entries.
  //  - q ∈ T: the querier already stands at target q, so q reports
  //    arrival t (EA) / departure t_end (LD) — "stay put" beats any
  //    label journey. Every path (plan, naive, fallback) agrees.
  //  - Unreachable targets are omitted, never reported with a sentinel.
  Result<std::vector<StopTimeResult>> EaKnn(const std::string& set_name,
                                            StopId q, EventTime t, uint32_t k);
  Result<std::vector<StopTimeResult>> LdKnn(const std::string& set_name,
                                            StopId q, EventTime t, uint32_t k);
  /// The naive baselines of Code 2 (Figure 3 compares against these).
  Result<std::vector<StopTimeResult>> EaKnnNaive(const std::string& set_name,
                                                 StopId q, EventTime t,
                                                 uint32_t k);
  Result<std::vector<StopTimeResult>> LdKnnNaive(const std::string& set_name,
                                                 StopId q, EventTime t,
                                                 uint32_t k);

  // --- One-to-many queries (Section 3.3) ---
  Result<std::vector<StopTimeResult>> EaOneToMany(const std::string& set_name,
                                                  StopId q, EventTime t);
  Result<std::vector<StopTimeResult>> LdOneToMany(const std::string& set_name,
                                                  StopId q, EventTime t);

  // --- Circuit-breaker support (src/server) ---
  /// Answers a kNN (k > 0) or one-to-many (k == 0) query directly from
  /// the exact per-target v2v fallback, never touching the optimized
  /// derived tables. The server routes here while a table's circuit
  /// breaker is open: repeating the primary against a quarantined or
  /// unreadable table would burn a retry (and its backoff waits) per
  /// request for a failure already diagnosed. Same answers and ordering
  /// as the degraded path of EaKnn/LdKnn/…OneToMany.
  Result<std::vector<StopTimeResult>> EaFallbackQuery(
      const std::string& set_name, StopId q, EventTime t, uint32_t k);
  Result<std::vector<StopTimeResult>> LdFallbackQuery(
      const std::string& set_name, StopId q, EventTime t, uint32_t k);

  // --- Administration / instrumentation ---
  /// Cold-cache reset, like the paper's server restart between experiments.
  /// Fails with kInternal if a concurrent query still pins pages (the
  /// reset would be partial and the "cold" measurement a lie).
  Status DropCaches() { return db_.DropCaches(); }
  /// Modeled I/O time accumulated since the last ResetIoStats(): page
  /// transfers plus retry-backoff waits.
  uint64_t io_time_ns() const { return device_->total_ns(); }
  /// Zeroes *every* device counter of normal operation (transfer ns,
  /// retry/backoff wait ns, read counts) and the buffer pool's
  /// cache-effectiveness counters, so a measurement window starts from a
  /// true zero. Injected-fault counters survive (see StorageDevice).
  void ResetIoStats();
  /// Total table footprint in bytes (heap + index pages).
  uint64_t size_bytes() const { return db_.total_size_bytes(); }

  /// Snapshot of every metric in the stack: the engine's device/buffer-pool
  /// counters, the executor/TTL operation counters, and the facade's
  /// per-query-type counts, latency histograms and degradation causes.
  /// Export with MetricsSnapshot::ToPrometheusText() / ToJson().
  MetricsSnapshot Snapshot() const;
  /// The registry behind Snapshot(), for callers adding their own metrics.
  MetricsRegistry* metrics() { return db_.metrics(); }

  /// The structured request history: one record per facade (or served)
  /// query with a phase-attributed latency breakdown, plus the
  /// tail-sampled traces. Backs the `ptldb_slow_queries` /
  /// `ptldb_traces` SQL system tables. Never null.
  QueryLog* query_log() { return query_log_.get(); }
  const QueryLog* query_log() const { return query_log_.get(); }

  /// Zeroes the `ttl.*` operation counters (hubs merged, label
  /// comparisons, label decodes/bytes) the way ResetIoStats() zeroes the
  /// device, so warm/cold bench recipes and the system tables report
  /// per-window numbers. Gauges (resident bytes, bytes/label) are
  /// instantaneous and survive.
  void ResetLabelStats() { db_.metrics()->ResetPrefix("ttl."); }

  /// Installs a span tracer: every facade query opens a span named after
  /// its query type and attaches its engine-counter deltas (pool
  /// hits/misses, device reads, hubs merged, ...). The trace is owned by
  /// the caller and is not thread-safe — install it only while this
  /// database is queried from one thread; pass nullptr to detach.
  void set_trace(QueryTrace* trace) { trace_ = trace; }

  EngineDatabase* engine() { return &db_; }
  uint32_t num_stops() const { return num_stops_; }
  /// The compressed label tier, or nullptr when compressed_labels was
  /// false. Exposed for tests (determinism goldens over content_crc())
  /// and benchmarks (bytes/label accounting).
  const LabelStore* label_store() const { return labels_.get(); }

  /// Runtime toggle for the compiled-program path (initialized from
  /// PtldbOptions::compiled_queries). Off = every entry point builds the
  /// volcano plan, exactly the pre-VM behavior; benchmarks flip this to
  /// pair interpreter and VM phases on one database.
  void set_compiled_queries(bool on) {
    compiled_queries_.store(on, std::memory_order_relaxed);
  }
  bool compiled_queries() const {
    return compiled_queries_.load(std::memory_order_relaxed);
  }

  /// Metadata of a registered target set.
  struct TargetSetInfo {
    std::string name;
    uint32_t kmax = 0;
    Duration bucket_seconds = kHourBucket;
    int32_t max_bucket = 0;  ///< LD deadlines clamp to this bucket.
    /// The target stops, kept for the degraded v2v fallback path.
    std::vector<StopId> targets;
    /// Compiled programs for this set's four bucket-query flavors
    /// (engine/vm.h), bound at AddTargetSet. They differ only in the
    /// bucket table and scan direction. POD copies; the table pointers
    /// inside stay valid for the database's lifetime.
    VmProgram ea_knn_program;
    VmProgram ld_knn_program;
    VmProgram ea_otm_program;
    VmProgram ld_otm_program;
  };

  /// Per-facade query accounting, including degradation events. A
  /// point-in-time snapshot (returned by value): the counters behind it
  /// are registry-backed atomics, so accounting is exact even when
  /// multiple threads query one database concurrently.
  struct QueryStats {
    uint64_t queries = 0;    ///< Facade queries answered (any type).
    uint64_t degraded = 0;   ///< Answered via the v2v fallback plan.
    bool last_degraded = false;  ///< Whether the last query degraded.
    /// Queries per type, indexed by QueryType. The naive kNN baselines
    /// count toward their kNN type. Sums to `queries`.
    std::array<uint64_t, kNumQueryTypes> by_type = {};
  };
  QueryStats query_stats() const;
  void ResetQueryStats();
  /// Registered target sets, in name order.
  std::vector<TargetSetInfo> target_sets() const {
    MutexLock lock(sets_mu_);
    std::vector<TargetSetInfo> out;
    for (const auto& [name, info] : target_sets_) {
      TargetSetInfo copy = info;
      copy.name = name;
      out.push_back(std::move(copy));
    }
    return out;
  }

 private:
  explicit PtldbDatabase(const PtldbOptions& options);

  Result<const TargetSetInfo*> ValidateSet(const std::string& set_name,
                                           uint32_t k) const;

  /// Resets this thread's LastQueryDegradedOnThisThread() flag (defined
  /// in ptldb.cc next to the thread_local it clears).
  static void ClearThreadDegradedFlag();

  /// Request arguments recorded into the query log (all optional; -1 /
  /// Invalid() / nullptr mean "not applicable to this query type").
  struct QueryArgs {
    int64_t s = -1;
    int64_t g = -1;
    EventTime t = EventTime::Invalid();
    EventTime t_end = EventTime::Invalid();
    int64_t k = -1;
    const char* set_name = nullptr;
  };

  /// Wraps one facade query: opens a trace span named after the query
  /// type, then counts the query, records its latency (wall time plus the
  /// modeled-I/O delta, the paper's reporting convention) and flushes the
  /// thread's LocalQueryCounters deltas into the registry.
  ///
  /// Query-log integration: if no RequestRecorder is installed on this
  /// thread (direct library use), one is installed here, so every facade
  /// query leaves exactly one record; if the server already installed
  /// one around Dispatch, this only fills in the type/args of the
  /// outermost query (nested fallback v2v calls leave them alone) and
  /// the server finishes the record after the response callback.
  /// Execution outside the explicit decode/merge/buffer-I/O scopes is
  /// attributed to the `plan` phase.
  template <typename Fn>
  auto Timed(QueryType type, const QueryArgs& args, Fn&& fn)
      -> decltype(fn()) {
    ClearThreadDegradedFlag();
    RequestRecorder recorder(query_log_.get());
    if (RequestRecorder* rec = RequestRecorder::Current();
        rec != nullptr && rec->record().type[0] == '\0') {
      QueryLogRecord& r = rec->record();
      r.set_type(QueryTypeName(type));
      r.s = static_cast<int32_t>(args.s);
      r.g = static_cast<int32_t>(args.g);
      // Times are recorded at full compute-tier width: a multi-day
      // timestamp must not truncate in ptldb_slow_queries.
      r.t = args.t;
      r.t_end = args.t_end;
      r.k = static_cast<int32_t>(args.k);
      if (args.set_name != nullptr) r.set_set_name(args.set_name);
    }
    const auto wall0 = std::chrono::steady_clock::now();
    const uint64_t io0 = device_->total_ns();
    const LocalQueryCounters local0 = ThisThreadQueryCounters();
    auto result = [&] {
      ScopedQueryPhase plan_phase(QueryPhase::kPlan);
      ScopedEngineSpan span(trace_, &db_, QueryTypeName(type));
      return fn();
    }();
    const uint64_t wall_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wall0)
            .count());
    const size_t i = static_cast<size_t>(type);
    query_count_[i]->Add(1);
    query_latency_[i]->Record(wall_ns + (device_->total_ns() - io0));
    const LocalQueryCounters d = ThisThreadQueryCounters() - local0;
    if (d.tuples_scanned) exec_tuples_->Add(d.tuples_scanned);
    if (d.index_seeks) exec_seeks_->Add(d.index_seeks);
    if (d.rows_emitted) exec_rows_->Add(d.rows_emitted);
    if (d.hubs_merged) ttl_hubs_->Add(d.hubs_merged);
    if (d.label_comparisons) ttl_cmps_->Add(d.label_comparisons);
    if (d.label_decodes) ttl_decodes_->Add(d.label_decodes);
    if (d.label_decode_bytes) ttl_decode_bytes_->Add(d.label_decode_bytes);
    if (d.vm_steps) vm_steps_->Add(d.vm_steps);
    if (RequestRecorder* rec = RequestRecorder::Current(); rec != nullptr) {
      if (LastQueryDegradedOnThisThread()) rec->record().degraded = true;
      if (trace_ != nullptr) rec->AttachTraceJson(trace_->ToJson());
    }
    if (recorder.active()) {
      const char* cause = nullptr;
      const QueryOutcome outcome = OutcomeForStatus(result.status(), &cause);
      recorder.Finish(outcome, cause);
    }
    return result;
  }

  /// Per-target v2v answers (the always-correct baseline) used when the
  /// optimized kNN/OTM tables fault. k == 0 means one-to-many (no limit).
  Result<std::vector<StopTimeResult>> EaFallback(const TargetSetInfo& info,
                                                 StopId q, EventTime t,
                                                 uint32_t k);
  Result<std::vector<StopTimeResult>> LdFallback(const TargetSetInfo& info,
                                                 StopId q, EventTime t,
                                                 uint32_t k);
  /// Applies the degradation policy: pass through a healthy result, fall
  /// back on a storage fault, surface every other error.
  Result<std::vector<StopTimeResult>> OrDegrade(
      Result<std::vector<StopTimeResult>> primary, const TargetSetInfo& info,
      StopId q, EventTime t, uint32_t k, bool ld);

  EngineDatabase db_;
  StorageDevice* device_;
  /// Compressed label tier (nullptr unless PtldbOptions::compressed_labels).
  /// Immutable after Build, read lock-free by concurrent queries.
  std::unique_ptr<LabelStore> labels_;
  uint32_t num_threads_ = 1;  ///< Workers for derived-table construction.
  uint32_t num_stops_ = 0;
  /// Latest event timestamp of the loaded index (LD deadline clamping).
  EventTime max_event_time_;
  /// Runtime switch for the compiled path (see set_compiled_queries).
  std::atomic<bool> compiled_queries_{true};
  /// The three Code 1 programs, compiled once at Build (indexed by
  /// QueryType kV2vEa/kV2vLd/kV2vSd). Immutable afterwards, read
  /// lock-free by concurrent queries.
  std::array<VmProgram, 3> v2v_programs_ = {};
  /// Catalog latch: guards the target-set map against a concurrent
  /// AddTargetSet while queries validate set names. Held across the
  /// whole derived-table build, so registration is atomic; sets are
  /// never erased, so TargetSetInfo pointers handed out by ValidateSet
  /// stay valid after the latch drops (std::map nodes are stable).
  /// Top of the facade's lock order: shard latches and the device mutex
  /// are acquired below it, never the other way around.
  mutable Mutex sets_mu_;
  std::map<std::string, TargetSetInfo> target_sets_
      PTLDB_GUARDED_BY(sets_mu_);

  // Registry-backed query accounting (pointers are stable; see
  // MetricsRegistry). All writes are atomic, so concurrent facade
  // queries account exactly.
  std::array<Counter*, kNumQueryTypes> query_count_ = {};
  std::array<Histogram*, kNumQueryTypes> query_latency_ = {};
  Counter* degraded_ = nullptr;
  Counter* degraded_io_error_ = nullptr;
  Counter* degraded_corruption_ = nullptr;
  Counter* exec_tuples_ = nullptr;
  Counter* exec_seeks_ = nullptr;
  Counter* exec_rows_ = nullptr;
  Counter* ttl_hubs_ = nullptr;
  Counter* ttl_cmps_ = nullptr;
  Counter* ttl_decodes_ = nullptr;
  Counter* ttl_decode_bytes_ = nullptr;
  Counter* vm_steps_ = nullptr;
  std::atomic<bool> last_degraded_{false};

  /// Structured request history (never null; see query_log()). Owned
  /// here so the ring lives exactly as long as the registry it reports
  /// into.
  std::unique_ptr<QueryLog> query_log_;

  QueryTrace* trace_ = nullptr;  ///< Borrowed; single-thread use only.
};

/// Whether the last facade query executed on the *calling thread* was
/// answered via the degraded v2v fallback. Unlike
/// QueryStats::last_degraded (one flag shared by every thread), this is
/// exact under concurrent serving; the server's per-table circuit
/// breaker reads it after each kNN/OTM call.
bool LastQueryDegradedOnThisThread();

}  // namespace ptldb

#endif  // PTLDB_PTLDB_PTLDB_H_
