#include "ptldb/tables.h"

#include <algorithm>
#include <map>
#include <memory>
#include <tuple>

#include "common/thread_pool.h"
#include "common/time_util.h"

namespace ptldb {

namespace {

// One L_in tuple of a target, flattened for grouping.
struct TargetTuple {
  int32_t hub = 0;
  EventTime td;
  EventTime ta;
  int32_t v = 0;
};

Schema LabelSchema() {
  return Schema{{"v", ColumnType::kInt32},
                {"hubs", ColumnType::kInt32Array},
                {"tds", ColumnType::kInt32Array},
                {"tas", ColumnType::kInt32Array}};
}

Schema NaiveSchema() {
  return Schema{{"hub", ColumnType::kInt32},
                {"td", ColumnType::kInt32},
                {"vs", ColumnType::kInt32Array},
                {"tas", ColumnType::kInt32Array}};
}

Schema HourBucketSchema(const char* hour_column, const char* condensed_time) {
  return Schema{{"hub", ColumnType::kInt32},
                {hour_column, ColumnType::kInt32},
                {"vs", ColumnType::kInt32Array},
                {condensed_time, ColumnType::kInt32Array},
                {"tds_exp", ColumnType::kInt32Array},
                {"vs_exp", ColumnType::kInt32Array},
                {"tas_exp", ColumnType::kInt32Array}};
}

Status LoadLabelTable(const LabelSet& labels, const std::string& name,
                      EngineDatabase* db) {
  auto table = db->CreateTable(name, LabelSchema());
  if (!table.ok()) return table.status();
  std::vector<std::pair<IndexKey, Row>> rows;
  rows.reserve(labels.num_stops());
  for (StopId v = 0; v < labels.num_stops(); ++v) {
    const auto tuples = labels.tuples(v);
    std::vector<int32_t> hubs;
    std::vector<int32_t> tds;
    std::vector<int32_t> tas;
    hubs.reserve(tuples.size());
    tds.reserve(tuples.size());
    tas.reserve(tuples.size());
    for (const LabelTuple& t : tuples) {
      hubs.push_back(static_cast<int32_t>(t.hub));
      tds.push_back(ToStoredTime(t.td));
      tas.push_back(ToStoredTime(t.ta));
    }
    rows.emplace_back(static_cast<IndexKey>(v),
                      Row{Value(static_cast<int32_t>(v)),
                          Value(std::move(hubs)), Value(std::move(tds)),
                          Value(std::move(tas))});
  }
  return (*table)->BulkLoad(std::move(rows));
}

// Distinct-target best list: (time, v) pairs sorted ascending (EA) or the
// td-descending variant (LD), truncated to k (0 = keep all).
std::vector<std::pair<EventTime, int32_t>> TopEntries(
    const std::map<int32_t, EventTime>& best, bool ascending, uint32_t k) {
  std::vector<std::pair<EventTime, int32_t>> entries;
  entries.reserve(best.size());
  for (const auto& [v, time] : best) entries.emplace_back(time, v);
  if (ascending) {
    std::sort(entries.begin(), entries.end());
  } else {
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) {
                return a.first != b.first ? a.first > b.first
                                          : a.second < b.second;
              });
  }
  if (k != 0 && entries.size() > k) entries.resize(k);
  return entries;
}

// Rows of the five derived tables for one hub group. Each hub's rows only
// depend on that hub's tuples, so groups build independently (in parallel
// when requested) and concatenate in hub order for a deterministic load.
struct GroupRows {
  std::vector<std::pair<IndexKey, Row>> naive;
  std::vector<std::pair<IndexKey, Row>> knn_ea;
  std::vector<std::pair<IndexKey, Row>> knn_ld;
  std::vector<std::pair<IndexKey, Row>> otm_ea;
  std::vector<std::pair<IndexKey, Row>> otm_ld;
};

GroupRows BuildHubGroupRows(std::span<const TargetTuple> by_td, int32_t hub,
                            const BucketRange& hours, uint32_t kmax,
                            Duration bucket_seconds) {
  GroupRows rows;

  // ---- knn_naive rows: one per distinct (hub, td). ----
  {
    size_t i = 0;
    while (i < by_td.size()) {
      size_t j = i;
      while (j < by_td.size() && by_td[j].td == by_td[i].td) ++j;
      // Per distinct target keep its earliest arrival within the group.
      std::map<int32_t, EventTime> best;
      for (size_t k = i; k < j; ++k) {
        const auto [it, inserted] = best.emplace(by_td[k].v, by_td[k].ta);
        if (!inserted) it->second = std::min(it->second, by_td[k].ta);
      }
      const auto top = TopEntries(best, /*ascending=*/true, kmax);
      std::vector<int32_t> vs;
      std::vector<int32_t> tas;
      for (const auto& [ta, v] : top) {
        vs.push_back(v);
        tas.push_back(ToStoredTime(ta));
      }
      rows.naive.emplace_back(
          MakeCompositeKey(hub, ToStoredTime(by_td[i].td)),
          Row{Value(hub), Value(ToStoredTime(by_td[i].td)),
              Value(std::move(vs)), Value(std::move(tas))});
      i = j;
    }
  }

  // ---- EA hour buckets (knn_ea + otm_ea). ----
  {
    const int32_t max_hour = CheckedBucketOf(by_td.back().td, bucket_seconds);
    // Condensed entries per hour, computed high-to-low by sweeping the
    // td-sorted group from the back.
    std::map<int32_t, EventTime> best;  // target -> earliest arrival.
    std::map<int32_t, std::vector<std::pair<EventTime, int32_t>>> knn_cond;
    std::map<int32_t, std::vector<std::pair<EventTime, int32_t>>> otm_cond;
    size_t cursor = by_td.size();
    for (int32_t hour = max_hour; hour >= hours.min_bucket; --hour) {
      // Bucket-edge ownership: hour h owns expanded tds in
      // [h*bs, (h+1)*bs) and condenses everything with td >= (h+1)*bs.
      // A tuple departing exactly at h*bs therefore lands in h's
      // *expanded* list (td == lo is inside [lo, hi)) and in the
      // *condensed* list of every hour < h — the >= below is what makes
      // a td exactly on the (h+1)*bs edge condensed for h instead of
      // double-counted in h's expanded range. Queries with t exactly on
      // an edge rely on this split: EaBucketQuery's condensed branch
      // needs no ta<->td feasibility filter precisely because every
      // condensed td >= (hour+1)*bs > any expanded/queried time in hour.
      // Typed 64-bit edge: at hour == max_hour == td_max/bs the edge
      // (hour+1)*bs can exceed the stored horizon (labels at the top of
      // the service day); the int32 product this sweep once used would
      // wrap negative and condense the whole group.
      const EventTime boundary =
          BucketStart(static_cast<int64_t>(hour) + 1, bucket_seconds);
      while (cursor > 0 && by_td[cursor - 1].td >= boundary) {
        const TargetTuple& t = by_td[cursor - 1];
        const auto [it, inserted] = best.emplace(t.v, t.ta);
        if (!inserted) it->second = std::min(it->second, t.ta);
        --cursor;
      }
      knn_cond[hour] = TopEntries(best, true, kmax);
      otm_cond[hour] = TopEntries(best, true, 0);
    }
    // Emit rows in ascending hour order.
    size_t exp_cursor = 0;
    for (int32_t hour = hours.min_bucket; hour <= max_hour; ++hour) {
      // Both edges are exact in the typed tier; the upper edge is the
      // same top-of-range wrap hazard as the condensing sweep above.
      const EventTime lo = BucketStart(hour, bucket_seconds);
      const EventTime hi =
          BucketStart(static_cast<int64_t>(hour) + 1, bucket_seconds);
      while (exp_cursor < by_td.size() && by_td[exp_cursor].td < lo) {
        ++exp_cursor;
      }
      std::vector<int32_t> tds_exp;
      std::vector<int32_t> vs_exp;
      std::vector<int32_t> tas_exp;
      for (size_t k = exp_cursor; k < by_td.size() && by_td[k].td < hi; ++k) {
        tds_exp.push_back(ToStoredTime(by_td[k].td));
        vs_exp.push_back(by_td[k].v);
        tas_exp.push_back(ToStoredTime(by_td[k].ta));
      }
      const auto emit =
          [&](const std::vector<std::pair<EventTime, int32_t>>& condensed,
              std::vector<std::pair<IndexKey, Row>>* out) {
            std::vector<int32_t> vs;
            std::vector<int32_t> tas;
            for (const auto& [ta, v] : condensed) {
              vs.push_back(v);
              tas.push_back(ToStoredTime(ta));
            }
            out->emplace_back(
                MakeCompositeKey(hub, hour),
                Row{Value(hub), Value(hour), Value(std::move(vs)),
                    Value(std::move(tas)), Value(tds_exp), Value(vs_exp),
                    Value(tas_exp)});
          };
      emit(knn_cond[hour], &rows.knn_ea);
      emit(otm_cond[hour], &rows.otm_ea);
    }
  }

  // ---- LD hour buckets (knn_ld + otm_ld). ----
  {
    std::vector<TargetTuple> by_ta(by_td.begin(), by_td.end());
    std::sort(by_ta.begin(), by_ta.end(),
              [](const TargetTuple& a, const TargetTuple& b) {
                return std::tie(a.ta, a.td, a.v) < std::tie(b.ta, b.td, b.v);
              });
    const int32_t min_hour = CheckedBucketOf(by_ta.front().ta, bucket_seconds);
    std::map<int32_t, EventTime> best;  // target -> latest departure.
    size_t cursor = 0;
    for (int32_t hour = min_hour; hour <= hours.max_bucket; ++hour) {
      // Both edges are exact in the typed tier.
      const EventTime lo = BucketStart(hour, bucket_seconds);
      const EventTime hi =
          BucketStart(static_cast<int64_t>(hour) + 1, bucket_seconds);
      // Condensed: tuples arriving *strictly* before this hour — ta < lo,
      // so a tuple arriving exactly at h*bs stays in h's expanded range
      // [lo, hi) and is condensed only for hours > h. The strictness is
      // load-bearing at edges: LdBucketQuery's condensed branch filters
      // only td2 >= ta1 (not ta2 <= t), which is sound because every
      // condensed ta < hour*bs <= t for any t in this hour — an
      // inclusive sweep here would smuggle ta == lo tuples past that
      // argument when t == lo exactly.
      while (cursor < by_ta.size() && by_ta[cursor].ta < lo) {
        const TargetTuple& t = by_ta[cursor];
        const auto [it, inserted] = best.emplace(t.v, t.td);
        if (!inserted) it->second = std::max(it->second, t.td);
        ++cursor;
      }
      // Expanded: tuples arriving within [lo, hi), ordered by td.
      std::vector<TargetTuple> exp;
      for (size_t k = cursor; k < by_ta.size() && by_ta[k].ta < hi; ++k) {
        exp.push_back(by_ta[k]);
      }
      std::sort(exp.begin(), exp.end(),
                [](const TargetTuple& a, const TargetTuple& b) {
                  return std::tie(a.td, a.ta, a.v) < std::tie(b.td, b.ta, b.v);
                });
      std::vector<int32_t> tds_exp;
      std::vector<int32_t> vs_exp;
      std::vector<int32_t> tas_exp;
      for (const TargetTuple& t : exp) {
        tds_exp.push_back(ToStoredTime(t.td));
        vs_exp.push_back(t.v);
        tas_exp.push_back(ToStoredTime(t.ta));
      }
      const auto emit =
          [&](const std::vector<std::pair<EventTime, int32_t>>& condensed,
              std::vector<std::pair<IndexKey, Row>>* out) {
            std::vector<int32_t> vs;
            std::vector<int32_t> tds;
            for (const auto& [td, v] : condensed) {
              vs.push_back(v);
              tds.push_back(ToStoredTime(td));
            }
            out->emplace_back(
                MakeCompositeKey(hub, hour),
                Row{Value(hub), Value(hour), Value(std::move(vs)),
                    Value(std::move(tds)), Value(tds_exp), Value(vs_exp),
                    Value(tas_exp)});
          };
      emit(TopEntries(best, false, kmax), &rows.knn_ld);
      emit(TopEntries(best, false, 0), &rows.otm_ld);
    }
  }

  return rows;
}

}  // namespace

Status BuildLabelTables(const TtlIndex& index, EngineDatabase* db) {
  PTLDB_RETURN_IF_ERROR(LoadLabelTable(index.out, kLoutTable, db));
  return LoadLabelTable(index.in, kLinTable, db);
}

std::string NaiveKnnTableName(const std::string& s) { return "knn_naive_" + s; }
std::string KnnEaTableName(const std::string& s) { return "knn_ea_" + s; }
std::string KnnLdTableName(const std::string& s) { return "knn_ld_" + s; }
std::string OtmEaTableName(const std::string& s) { return "otm_ea_" + s; }
std::string OtmLdTableName(const std::string& s) { return "otm_ld_" + s; }

BucketRange ComputeBucketRange(const TtlIndex& index,
                               Duration bucket_seconds) {
  BucketRange range{std::numeric_limits<int32_t>::max(), 0};
  bool any = false;
  for (StopId v = 0; v < index.num_stops(); ++v) {
    for (const auto* set : {&index.out, &index.in}) {
      for (const LabelTuple& t : set->tuples(v)) {
        range.min_bucket =
            std::min(range.min_bucket, CheckedBucketOf(t.td, bucket_seconds));
        range.max_bucket =
            std::max(range.max_bucket, CheckedBucketOf(t.ta, bucket_seconds));
        any = true;
      }
    }
  }
  if (!any) range = {0, 0};
  return range;
}

Status BuildTargetSetTables(const TtlIndex& index,
                            const std::vector<StopId>& targets,
                            uint32_t kmax, const std::string& set_name,
                            EngineDatabase* db, Duration bucket_seconds,
                            uint32_t num_threads) {
  if (kmax == 0) return Status::InvalidArgument("kmax must be positive");
  if (bucket_seconds <= Duration::Zero()) {
    return Status::InvalidArgument("bucket width must be positive");
  }
  for (const StopId t : targets) {
    if (t >= index.num_stops()) {
      return Status::InvalidArgument("target out of range");
    }
  }

  // Set semantics: a duplicated target must not contribute its tuples
  // twice (the per-hour condensed lists would still dedup by target, but
  // the naive and expanded arrays would carry duplicate entries into
  // query answers). The facade canonicalizes too; dedup here as well so
  // direct callers (SQL writer tests, benchmarks) get the same tables.
  std::vector<StopId> uniq_targets = targets;
  std::sort(uniq_targets.begin(), uniq_targets.end());
  uniq_targets.erase(std::unique(uniq_targets.begin(), uniq_targets.end()),
                     uniq_targets.end());

  // Flatten and group the targets' L_in tuples by hub.
  std::vector<TargetTuple> tuples;
  for (const StopId target : uniq_targets) {
    for (const LabelTuple& t : index.in.tuples(target)) {
      tuples.push_back({static_cast<int32_t>(t.hub), t.td, t.ta,
                        static_cast<int32_t>(target)});
    }
  }
  std::sort(tuples.begin(), tuples.end(),
            [](const TargetTuple& a, const TargetTuple& b) {
              return std::tie(a.hub, a.td, a.ta, a.v) <
                     std::tie(b.hub, b.td, b.ta, b.v);
            });

  const BucketRange hours = ComputeBucketRange(index, bucket_seconds);

  auto naive =
      db->CreateTable(NaiveKnnTableName(set_name), NaiveSchema(), 2);
  auto knn_ea = db->CreateTable(KnnEaTableName(set_name),
                                HourBucketSchema("dephour", "tas"), 2);
  auto knn_ld = db->CreateTable(KnnLdTableName(set_name),
                                HourBucketSchema("arrhour", "tds"), 2);
  auto otm_ea = db->CreateTable(OtmEaTableName(set_name),
                                HourBucketSchema("dephour", "tas"), 2);
  auto otm_ld = db->CreateTable(OtmLdTableName(set_name),
                                HourBucketSchema("arrhour", "tds"), 2);
  for (const auto* t :
       std::initializer_list<const Result<EngineTable*>*>{
           &naive, &knn_ea, &knn_ld, &otm_ea, &otm_ld}) {
    if (!t->ok()) return t->status();
  }

  // Hub-group boundaries in the sorted tuple vector.
  struct Group {
    size_t begin;
    size_t end;
  };
  std::vector<Group> groups;
  size_t group_begin = 0;
  while (group_begin < tuples.size()) {
    size_t group_end = group_begin;
    while (group_end < tuples.size() &&
           tuples[group_end].hub == tuples[group_begin].hub) {
      ++group_end;
    }
    groups.push_back({group_begin, group_end});
    group_begin = group_end;
  }

  // Each group's rows depend only on its own tuples, so groups build in
  // parallel into disjoint slots; concatenating in group (= hub) order
  // makes the loaded tables independent of the thread count.
  std::vector<GroupRows> per_group(groups.size());
  const auto build_group = [&](size_t g) {
    const std::span<const TargetTuple> by_td{tuples.data() + groups[g].begin,
                                             tuples.data() + groups[g].end};
    per_group[g] =
        BuildHubGroupRows(by_td, by_td.front().hub, hours, kmax,
                          bucket_seconds);
  };
  if (num_threads != 1 && groups.size() > 1) {
    ThreadPool pool(num_threads);
    pool.ParallelFor(groups.size(),
                     [&](uint32_t, uint64_t g) { build_group(g); });
    MetricsRegistry* m = db->metrics();
    m->counter("threadpool.tasks_executed")->Add(pool.executed());
    m->counter("threadpool.tasks_stolen")->Add(pool.stolen());
    m->gauge("threadpool.max_queue_depth")
        ->Max(static_cast<int64_t>(pool.max_pending()));
  } else {
    for (size_t g = 0; g < groups.size(); ++g) build_group(g);
  }

  GroupRows all;
  for (GroupRows& rows : per_group) {
    const auto append = [](std::vector<std::pair<IndexKey, Row>>* dst,
                           std::vector<std::pair<IndexKey, Row>>* src) {
      dst->insert(dst->end(), std::make_move_iterator(src->begin()),
                  std::make_move_iterator(src->end()));
    };
    append(&all.naive, &rows.naive);
    append(&all.knn_ea, &rows.knn_ea);
    append(&all.knn_ld, &rows.knn_ld);
    append(&all.otm_ea, &rows.otm_ea);
    append(&all.otm_ld, &rows.otm_ld);
  }

  PTLDB_RETURN_IF_ERROR((*naive)->BulkLoad(std::move(all.naive)));
  PTLDB_RETURN_IF_ERROR((*knn_ea)->BulkLoad(std::move(all.knn_ea)));
  PTLDB_RETURN_IF_ERROR((*knn_ld)->BulkLoad(std::move(all.knn_ld)));
  PTLDB_RETURN_IF_ERROR((*otm_ea)->BulkLoad(std::move(all.otm_ea)));
  return (*otm_ld)->BulkLoad(std::move(all.otm_ld));
}

}  // namespace ptldb
