#include "ptldb/queries.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "common/metrics.h"
#include "common/query_context.h"
#include "common/query_log.h"
#include "engine/exec.h"
#include "ptldb/label_merge.h"
#include "ptldb/tables.h"
#include "ttl/label_store.h"

namespace ptldb {

namespace {

// Looks up a table that the query plan requires; a missing table is a
// caller error (set never registered / labels never built), not a fault.
Result<const EngineTable*> RequireTable(EngineDatabase* db,
                                        const std::string& name) {
  const EngineTable* table = db->FindTable(name);
  if (table == nullptr) {
    return Status::InvalidArgument("table not built: " + name);
  }
  return table;
}

// ---------- Code 1: vertex-to-vertex over the lout/lin array rows ----------

// The LabelRowView / merge kernels formerly here now live in
// ptldb/label_merge.h, shared with the compiled query VM (compiled.cc).

// Fetches the single label row of `v`; an empty inner optional means the
// stop is unknown.
Result<std::optional<Row>> FetchLabelRow(EngineDatabase* db,
                                         const char* table_name, StopId v) {
  auto table = RequireTable(db, table_name);
  PTLDB_RETURN_IF_ERROR(table.status());
  auto row = (*table)->Get(static_cast<IndexKey>(v), db->buffer_pool());
  PTLDB_RETURN_IF_ERROR(row.status());
  if (row->has_value()) PTLDB_RETURN_IF_ERROR(CheckLabelRow(**row));
  return row;
}

// ---------- Shared plan pieces for Codes 2-4 ----------

// Leaf operator over the compressed tier: decodes stop v's bucket and
// emits it as one row shaped exactly like a lout/lin heap row —
// (v, hubs, tds, tas) — so the plans above it (UNNEST, joins, filters)
// are identical for both representations. Decode failures (resident bit
// rot) surface through status(), like a corrupt page in IndexLookupOp;
// a stop the store does not know yields an empty stream, like a missing
// heap row. Pure CPU: no pages are fetched, no guards held.
class LabelSourceOp : public Operator {
 public:
  LabelSourceOp(const LabelStore* store, LabelStore::Direction dir, StopId v)
      : store_(store), dir_(dir), v_(v) {}

  std::optional<Row> Next() override {
    if (done_) return std::nullopt;
    done_ = true;
    if (v_ >= store_->num_stops()) return std::nullopt;
    LabelArrays scratch;
    auto view = DecodeCounted(*store_, dir_, v_, &scratch);
    if (!view.ok()) {
      status_ = view.status();
      return std::nullopt;
    }
    return Row{Value(static_cast<int32_t>(v_)), Value(std::move(scratch.hubs)),
               Value(std::move(scratch.tds)), Value(std::move(scratch.tas))};
  }

  Status status() const override { return status_; }

 private:
  const LabelStore* store_;
  LabelStore::Direction dir_;
  StopId v_;
  bool done_ = false;
  Status status_;
};

OperatorPtr MakeLabelSource(const LabelStore* store, LabelStore::Direction dir,
                            StopId v) {
  return std::make_unique<LabelSourceOp>(store, dir, v);
}

// n1 of Codes 2-4: UNNEST the lout row of q into (hub, td, ta) rows,
// sourced from the compressed tier when one is installed. The caller has
// validated that lout exists.
OperatorPtr MakeN1(EngineDatabase* db, StopId q, const LabelStore* labels) {
  if (labels != nullptr) {
    return MakeUnnest(MakeLabelSource(labels, LabelStore::Direction::kOut, q),
                      {}, {1, 2, 3});
  }
  const EngineTable* lout = db->FindTable(kLoutTable);
  assert(lout != nullptr);
  return MakeUnnest(
      MakeIndexLookup(lout, static_cast<IndexKey>(q), db->buffer_pool()), {},
      {1, 2, 3});
}

// Final rows (stop, time) -> results sorted like the paper's ORDER BY.
// Surfaces the plan's fault status instead of a partial result.
Result<std::vector<StopTimeResult>> CollectResults(OperatorPtr plan) {
  std::vector<StopTimeResult> out;
  while (auto row = plan->Next()) {
    // Deadline checkpoint on the TTL scan drain (see query_context.h).
    PTLDB_RETURN_IF_ERROR(CheckQueryCheckpoint());
    out.push_back({static_cast<StopId>((*row)[0].AsInt()),
                   FromStoredTime((*row)[1].AsInt())});
  }
  PTLDB_RETURN_IF_ERROR(plan->status());
  ThisThreadQueryCounters().rows_emitted += out.size();
  return out;
}

std::function<bool(const Row&, const Row&)> OrderByTimeAscStopAsc() {
  return [](const Row& a, const Row& b) {
    const int32_t ta = a[1].AsInt();
    const int32_t tb = b[1].AsInt();
    return ta != tb ? ta < tb : a[0].AsInt() < b[0].AsInt();
  };
}

std::function<bool(const Row&, const Row&)> OrderByTimeDescStopAsc() {
  return [](const Row& a, const Row& b) {
    const int32_t ta = a[1].AsInt();
    const int32_t tb = b[1].AsInt();
    return ta != tb ? ta > tb : a[0].AsInt() < b[0].AsInt();
  };
}

// GROUP BY v2 + ORDER BY + optional LIMIT tail shared by all plans.
OperatorPtr FinishEa(OperatorPtr plan, uint32_t k) {
  plan = MakeHashAggregate(std::move(plan), 0, 1, AggFn::kMin);
  plan = MakeSort(std::move(plan), OrderByTimeAscStopAsc());
  if (k != 0) plan = MakeLimit(std::move(plan), k);
  return plan;
}

OperatorPtr FinishLd(OperatorPtr plan, uint32_t k) {
  plan = MakeHashAggregate(std::move(plan), 0, 1, AggFn::kMax);
  plan = MakeSort(std::move(plan), OrderByTimeDescStopAsc());
  if (k != 0) plan = MakeLimit(std::move(plan), k);
  return plan;
}

}  // namespace


namespace {

// The three Code 1 flavors share one plan skeleton; `kind` picks the
// timestamp predicates pushed below the join. The fold itself is typed
// per flavor (EventTime for EA/LD, Duration for SD), so each entry point
// drains the shared joined stream with its own fold.
enum class V2vPlanKind { kEa, kLd, kSd };

// UNNESTs one label row into (hub, td, ta) rows, like the CTEs of Code 1.
// The caller has validated that `table` exists.
OperatorPtr UnnestLabelRow(const EngineTable* table, BufferPool* pool,
                           StopId v) {
  return MakeUnnest(
      MakeIndexLookup(table, static_cast<IndexKey>(v), pool), {}, {1, 2, 3});
}

// Code 1 against the compressed tier: both buckets decode into scratch
// views and merge hub by hub — the same answer as the SQL-shaped plan
// below (the differential harness pins the equivalence), but a pure
// in-memory scan: no buffer-pool fetches, no hash table, no per-row
// virtual dispatch. This is what makes warm compressed v2v strictly
// faster than the raw path (the PTL argument, gated in bench JSON).
//
// `known` is false when either stop is outside the store: no label row,
// the empty answer, matching the raw plan's empty index lookup.
struct CompressedRows {
  LabelArrays out_scratch;
  LabelArrays in_scratch;
  LabelRowView outp;
  LabelRowView inp;
  bool known = false;
};

Status DecodeV2vRows(const LabelStore& labels, StopId s, StopId g,
                     CompressedRows* rows) {
  if (s >= labels.num_stops() || g >= labels.num_stops()) return Status::Ok();
  auto outv = DecodeCounted(labels, LabelStore::Direction::kOut, s,
                            &rows->out_scratch);
  PTLDB_RETURN_IF_ERROR(outv.status());
  auto inv =
      DecodeCounted(labels, LabelStore::Direction::kIn, g, &rows->in_scratch);
  PTLDB_RETURN_IF_ERROR(inv.status());
  rows->outp = LabelRowView(*outv);
  rows->inp = LabelRowView(*inv);
  rows->known = true;
  return Status::Ok();
}

Result<EventTime> CompressedV2vEa(const LabelStore& labels, StopId s, StopId g,
                                  EventTime t) {
  CompressedRows rows;
  PTLDB_RETURN_IF_ERROR(DecodeV2vRows(labels, s, g, &rows));
  if (!rows.known) return EventTime::Infinity();
  return MergeV2vEa(rows.outp, rows.inp, t);
}

Result<EventTime> CompressedV2vLd(const LabelStore& labels, StopId s, StopId g,
                                  EventTime t_end) {
  CompressedRows rows;
  PTLDB_RETURN_IF_ERROR(DecodeV2vRows(labels, s, g, &rows));
  if (!rows.known) return EventTime::NegInfinity();
  return MergeV2vLd(rows.outp, rows.inp, t_end);
}

Result<Duration> CompressedV2vSd(const LabelStore& labels, StopId s, StopId g,
                                 EventTime t, EventTime t_end) {
  CompressedRows rows;
  PTLDB_RETURN_IF_ERROR(DecodeV2vRows(labels, s, g, &rows));
  if (!rows.known) return Duration::Infinity();
  return MergeV2vSd(rows.outp, rows.inp, t, t_end);
}

// The SQL-shaped Code 1 plan up to (and including) the joined residual:
// UNNEST both label rows, push the timestamp predicates below a hash
// join on hub, then the residual outp.ta <= inp.td filter. Query bounds
// narrow saturating ONCE at plan construction (time_types.h): the
// filters then compare stored int32 columns against a stored bound, and
// an out-of-horizon bound clamps to a sentinel with the same accept set.
// Joined columns: 0 hub, 1 out_td, 2 out_ta, 3 hub, 4 in_td, 5 in_ta.
Result<OperatorPtr> BuildV2vJoined(EngineDatabase* db, StopId s, StopId g,
                                   EventTime t, EventTime t_end,
                                   V2vPlanKind kind) {
  auto lout = RequireTable(db, kLoutTable);
  PTLDB_RETURN_IF_ERROR(lout.status());
  auto lin = RequireTable(db, kLinTable);
  PTLDB_RETURN_IF_ERROR(lin.status());
  // outp: (hub, td, ta) from lout[s]; inp: (hub, td, ta) from lin[g].
  OperatorPtr outp = UnnestLabelRow(*lout, db->buffer_pool(), s);
  if (kind != V2vPlanKind::kLd) {
    const StoredTime td_min = SaturatingToStoredTime(t);
    outp = MakeFilter(std::move(outp), [td_min](const Row& r) {
      return r[1].AsInt() >= td_min;
    });
  }
  OperatorPtr inp = UnnestLabelRow(*lin, db->buffer_pool(), g);
  if (kind != V2vPlanKind::kEa) {
    const StoredTime ta_max = SaturatingToStoredTime(t_end);
    inp = MakeFilter(std::move(inp), [ta_max](const Row& r) {
      return r[2].AsInt() <= ta_max;
    });
  }
  // Each residual evaluation compares one pair of label tuples at a
  // common hub; the plan runs on this thread, so the captured per-thread
  // counters are safe.
  LocalQueryCounters* counters = &ThisThreadQueryCounters();
  OperatorPtr joined = MakeHashJoin(std::move(outp), std::move(inp), 0, 0);
  joined = MakeFilter(std::move(joined), [counters](const Row& r) {
    ++counters->label_comparisons;
    return r[2].AsInt() <= r[4].AsInt();
  });
  return joined;
}

// Drains the joined stream, folding `fold(best, row)` over every row.
// Probe rows arrive hub-sorted (label rows are), so a hub change in the
// join output marks the next common-hub group.
template <typename T, typename Fold>
Result<T> FoldV2vJoined(Operator* joined, T best, Fold&& fold) {
  LocalQueryCounters* counters = &ThisThreadQueryCounters();
  int32_t last_hub = 0;
  bool any_rows = false;
  while (auto row = joined->Next()) {
    // Deadline checkpoint on the hub-merge drain (see query_context.h).
    PTLDB_RETURN_IF_ERROR(CheckQueryCheckpoint());
    const int32_t hub = (*row)[0].AsInt();
    if (!any_rows || hub != last_hub) {
      ++counters->hubs_merged;
      any_rows = true;
      last_hub = hub;
    }
    ++counters->rows_emitted;
    best = fold(best, *row);
  }
  PTLDB_RETURN_IF_ERROR(joined->status());
  return best;
}

}  // namespace

Result<EventTime> QueryV2vEa(EngineDatabase* db, StopId s, StopId g,
                             EventTime t, const LabelStore* labels) {
  if (labels != nullptr) return CompressedV2vEa(*labels, s, g, t);
  auto joined =
      BuildV2vJoined(db, s, g, t, EventTime::Infinity(), V2vPlanKind::kEa);
  PTLDB_RETURN_IF_ERROR(joined.status());
  return FoldV2vJoined((*joined).get(), EventTime::Infinity(),
                       [](EventTime best, const Row& r) {
                         return std::min(best, FromStoredTime(r[5].AsInt()));
                       });
}

Result<EventTime> QueryV2vLd(EngineDatabase* db, StopId s, StopId g,
                             EventTime t_end, const LabelStore* labels) {
  if (labels != nullptr) return CompressedV2vLd(*labels, s, g, t_end);
  auto joined = BuildV2vJoined(db, s, g, EventTime::NegInfinity(), t_end,
                               V2vPlanKind::kLd);
  PTLDB_RETURN_IF_ERROR(joined.status());
  return FoldV2vJoined((*joined).get(), EventTime::NegInfinity(),
                       [](EventTime best, const Row& r) {
                         return std::max(best, FromStoredTime(r[1].AsInt()));
                       });
}

Result<Duration> QueryV2vSd(EngineDatabase* db, StopId s, StopId g,
                            EventTime t, EventTime t_end,
                            const LabelStore* labels) {
  if (labels != nullptr) return CompressedV2vSd(*labels, s, g, t, t_end);
  auto joined = BuildV2vJoined(db, s, g, t, t_end, V2vPlanKind::kSd);
  PTLDB_RETURN_IF_ERROR(joined.status());
  // Typed 64-bit fold: the subtraction of near-horizon stored timestamps
  // can exceed INT32_MAX, which the old int32 fold made UB.
  auto best = FoldV2vJoined(
      (*joined).get(), Duration::Infinity(), [](Duration b, const Row& r) {
        return std::min(b, FromStoredTime(r[5].AsInt()) -
                               FromStoredTime(r[1].AsInt()));
      });
  PTLDB_RETURN_IF_ERROR(best.status());
  // Matches the clamp in MergeV2vSd (label_merge.h) so both Code 1 paths
  // saturate identically.
  return std::min(*best, Duration::Infinity());
}

Result<EventTime> QueryV2vEaMergePlan(EngineDatabase* db, StopId s, StopId g,
                                      EventTime t, const LabelStore* labels) {
  if (labels != nullptr) return CompressedV2vEa(*labels, s, g, t);
  const auto out_row = FetchLabelRow(db, kLoutTable, s);
  PTLDB_RETURN_IF_ERROR(out_row.status());
  const auto in_row = FetchLabelRow(db, kLinTable, g);
  PTLDB_RETURN_IF_ERROR(in_row.status());
  if (!*out_row || !*in_row) return EventTime::Infinity();
  return MergeV2vEa(LabelRowView(**out_row), LabelRowView(**in_row), t);
}

Result<EventTime> QueryV2vLdMergePlan(EngineDatabase* db, StopId s, StopId g,
                                      EventTime t_end,
                                      const LabelStore* labels) {
  if (labels != nullptr) return CompressedV2vLd(*labels, s, g, t_end);
  const auto out_row = FetchLabelRow(db, kLoutTable, s);
  PTLDB_RETURN_IF_ERROR(out_row.status());
  const auto in_row = FetchLabelRow(db, kLinTable, g);
  PTLDB_RETURN_IF_ERROR(in_row.status());
  if (!*out_row || !*in_row) return EventTime::NegInfinity();
  return MergeV2vLd(LabelRowView(**out_row), LabelRowView(**in_row), t_end);
}

Result<Duration> QueryV2vSdMergePlan(EngineDatabase* db, StopId s, StopId g,
                                     EventTime t, EventTime t_end,
                                     const LabelStore* labels) {
  if (labels != nullptr) return CompressedV2vSd(*labels, s, g, t, t_end);
  const auto out_row = FetchLabelRow(db, kLoutTable, s);
  PTLDB_RETURN_IF_ERROR(out_row.status());
  const auto in_row = FetchLabelRow(db, kLinTable, g);
  PTLDB_RETURN_IF_ERROR(in_row.status());
  if (!*out_row || !*in_row) return Duration::Infinity();
  return MergeV2vSd(LabelRowView(**out_row), LabelRowView(**in_row), t,
                    t_end);
}

Result<std::vector<StopTimeResult>> QueryEaKnnNaive(
    EngineDatabase* db, const std::string& set_name, StopId q, EventTime t,
    uint32_t k, const LabelStore* labels) {
  PTLDB_RETURN_IF_ERROR(RequireTable(db, kLoutTable).status());
  auto naive = RequireTable(db, NaiveKnnTableName(set_name));
  PTLDB_RETURN_IF_ERROR(naive.status());
  BufferPool* pool = db->buffer_pool();

  const StoredTime td_min = SaturatingToStoredTime(t);
  OperatorPtr n1 =
      MakeFilter(MakeN1(db, q, labels),
                 [td_min](const Row& r) { return r[1].AsInt() >= td_min; });
  // Join every l1 with all naive rows (hub = l1.hub, td >= l1.ta).
  OperatorPtr n2 = MakeIndexRangeJoin(
      std::move(n1), *naive,
      [](const Row& r) { return MakeCompositeKey(r[0].AsInt(), r[2].AsInt()); },
      [](const Row& r) {
        return MakeCompositeKey(r[0].AsInt(),
                                std::numeric_limits<int32_t>::max());
      },
      pool);
  // Expand vs[1:k], tas[1:k] -> (v2, ta).
  OperatorPtr expanded = MakeUnnest(std::move(n2), {}, {5, 6}, k);
  return CollectResults(FinishEa(std::move(expanded), k));
}

Result<std::vector<StopTimeResult>> QueryLdKnnNaive(
    EngineDatabase* db, const std::string& set_name, StopId q, EventTime t,
    uint32_t k, const LabelStore* labels) {
  PTLDB_RETURN_IF_ERROR(RequireTable(db, kLoutTable).status());
  auto naive = RequireTable(db, NaiveKnnTableName(set_name));
  PTLDB_RETURN_IF_ERROR(naive.status());
  BufferPool* pool = db->buffer_pool();

  OperatorPtr n2 = MakeIndexRangeJoin(
      MakeN1(db, q, labels), *naive,
      [](const Row& r) { return MakeCompositeKey(r[0].AsInt(), r[2].AsInt()); },
      [](const Row& r) {
        return MakeCompositeKey(r[0].AsInt(),
                                std::numeric_limits<int32_t>::max());
      },
      pool);
  // Keep n1_td, expand vs[1:k]/tas[1:k] -> (n1_td, v2, ta2).
  OperatorPtr expanded = MakeUnnest(std::move(n2), {1}, {5, 6}, k);
  const StoredTime ta_max = SaturatingToStoredTime(t);
  OperatorPtr feasible =
      MakeFilter(std::move(expanded),
                 [ta_max](const Row& r) { return r[2].AsInt() <= ta_max; });
  OperatorPtr projected =
      MakeProject(std::move(feasible),
                  [](const Row& r) { return Row{r[1], r[0]}; });
  return CollectResults(FinishLd(std::move(projected), k));
}

namespace {

// Shared body of Code 3 (EA kNN/OTM): k == 0 selects the OTM variant.
Result<std::vector<StopTimeResult>> EaBucketQuery(
    EngineDatabase* db, const std::string& table_name, StopId q, EventTime t,
    uint32_t k, Duration bucket_seconds, const LabelStore* labels) {
  PTLDB_RETURN_IF_ERROR(RequireTable(db, kLoutTable).status());
  auto bucket = RequireTable(db, table_name);
  PTLDB_RETURN_IF_ERROR(bucket.status());
  BufferPool* pool = db->buffer_pool();

  const StoredTime td_min = SaturatingToStoredTime(t);
  OperatorPtr n1 =
      MakeFilter(MakeN1(db, q, labels),
                 [td_min](const Row& r) { return r[1].AsInt() >= td_min; });
  // The bucket key of a stored ta column: scan-side bucket arithmetic
  // stays in the stored domain (see StoredBucketOf in time_types.h).
  OperatorPtr n1b_plan = MakeIndexJoin(
      std::move(n1), *bucket,
      [bucket_seconds](const Row& r) {
        return MakeCompositeKey(r[0].AsInt(),
                                StoredBucketOf(r[2].AsInt(), bucket_seconds));
      },
      pool);
  // n1b columns: 0 hub, 1 n1_td, 2 n1_ta | 3 hub, 4 dephour, 5 vs, 6 tas,
  // 7 tds_exp, 8 vs_exp, 9 tas_exp.
  auto n1b = Execute(n1b_plan.get());
  PTLDB_RETURN_IF_ERROR(n1b.status());

  // Branch A: condensed top-k columns (departures after the bucket hour).
  OperatorPtr a = MakeUnnest(MakeVectorSource(*n1b), {}, {5, 6}, k);
  a = FinishEa(std::move(a), k);

  // Branch B: expanded in-bucket tuples, still checking l1.ta <= l2.td.
  OperatorPtr b =
      MakeUnnest(MakeVectorSource(std::move(*n1b)), {2}, {7, 8, 9});
  b = MakeFilter(std::move(b),
                 [](const Row& r) { return r[0].AsInt() <= r[1].AsInt(); });
  b = MakeProject(std::move(b), [](const Row& r) { return Row{r[2], r[3]}; });
  b = FinishEa(std::move(b), k);

  std::vector<OperatorPtr> branches;
  branches.push_back(std::move(a));
  branches.push_back(std::move(b));
  return CollectResults(FinishEa(MakeConcat(std::move(branches)), k));
}

// Shared body of Code 4 (LD kNN/OTM): k == 0 selects the OTM variant.
Result<std::vector<StopTimeResult>> LdBucketQuery(
    EngineDatabase* db, const std::string& table_name, StopId q, EventTime t,
    uint32_t k, Duration bucket_seconds, int32_t max_bucket,
    const LabelStore* labels) {
  PTLDB_RETURN_IF_ERROR(RequireTable(db, kLoutTable).status());
  auto bucket = RequireTable(db, table_name);
  PTLDB_RETURN_IF_ERROR(bucket.status());
  BufferPool* pool = db->buffer_pool();

  // Deadlines beyond the indexed horizon clamp to the last event bucket
  // (SaturatingBucketOf handles arguments past the stored range).
  const int32_t arrhour = std::min(SaturatingBucketOf(t, bucket_seconds),
                                   max_bucket);
  OperatorPtr n1b_plan = MakeIndexJoin(
      MakeN1(db, q, labels), *bucket,
      [arrhour](const Row& r) {
        return MakeCompositeKey(r[0].AsInt(), arrhour);
      },
      pool);
  // n1b columns: 0 hub, 1 n1_td, 2 n1_ta | 3 hub, 4 arrhour, 5 vs, 6 tds,
  // 7 tds_exp, 8 vs_exp, 9 tas_exp.
  auto n1b = Execute(n1b_plan.get());
  PTLDB_RETURN_IF_ERROR(n1b.status());

  // Branch A: condensed top-k (arrivals before the bucket hour); the label
  // departure must still be boardable: l2.td >= l1.ta.
  OperatorPtr a = MakeUnnest(MakeVectorSource(*n1b), {1, 2}, {6, 5}, k);
  // Columns: 0 n1_td, 1 n1_ta, 2 td2, 3 v2.
  a = MakeFilter(std::move(a),
                 [](const Row& r) { return r[2].AsInt() >= r[1].AsInt(); });
  a = MakeProject(std::move(a), [](const Row& r) { return Row{r[3], r[0]}; });
  a = FinishLd(std::move(a), k);

  // Branch B: expanded in-bucket tuples with both feasibility checks.
  OperatorPtr b =
      MakeUnnest(MakeVectorSource(std::move(*n1b)), {1, 2}, {7, 8, 9});
  // Columns: 0 n1_td, 1 n1_ta, 2 td2, 3 v2, 4 ta2.
  const StoredTime ta_max = SaturatingToStoredTime(t);
  b = MakeFilter(std::move(b), [ta_max](const Row& r) {
    return r[2].AsInt() >= r[1].AsInt() && r[4].AsInt() <= ta_max;
  });
  b = MakeProject(std::move(b), [](const Row& r) { return Row{r[3], r[0]}; });
  b = FinishLd(std::move(b), k);

  std::vector<OperatorPtr> branches;
  branches.push_back(std::move(a));
  branches.push_back(std::move(b));
  return CollectResults(FinishLd(MakeConcat(std::move(branches)), k));
}

}  // namespace

Result<std::vector<StopTimeResult>> QueryEaKnn(EngineDatabase* db,
                                               const std::string& set_name,
                                               StopId q, EventTime t,
                                               uint32_t k,
                                               Duration bucket_seconds,
                                               const LabelStore* labels) {
  if (k == 0) return Status::InvalidArgument("kNN requires k > 0");
  return EaBucketQuery(db, KnnEaTableName(set_name), q, t, k, bucket_seconds,
                       labels);
}

Result<std::vector<StopTimeResult>> QueryEaOtm(EngineDatabase* db,
                                               const std::string& set_name,
                                               StopId q, EventTime t,
                                               Duration bucket_seconds,
                                               const LabelStore* labels) {
  return EaBucketQuery(db, OtmEaTableName(set_name), q, t, /*k=*/0,
                       bucket_seconds, labels);
}

Result<std::vector<StopTimeResult>> QueryLdKnn(EngineDatabase* db,
                                               const std::string& set_name,
                                               StopId q, EventTime t,
                                               uint32_t k,
                                               Duration bucket_seconds,
                                               int32_t max_bucket,
                                               const LabelStore* labels) {
  if (k == 0) return Status::InvalidArgument("kNN requires k > 0");
  return LdBucketQuery(db, KnnLdTableName(set_name), q, t, k, bucket_seconds,
                       max_bucket, labels);
}

Result<std::vector<StopTimeResult>> QueryLdOtm(EngineDatabase* db,
                                               const std::string& set_name,
                                               StopId q, EventTime t,
                                               Duration bucket_seconds,
                                               int32_t max_bucket,
                                               const LabelStore* labels) {
  return LdBucketQuery(db, OtmLdTableName(set_name), q, t, /*k=*/0,
                       bucket_seconds, max_bucket, labels);
}

}  // namespace ptldb
