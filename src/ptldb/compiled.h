#ifndef PTLDB_PTLDB_COMPILED_H_
#define PTLDB_PTLDB_COMPILED_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/time_util.h"
#include "engine/database.h"
#include "engine/vm.h"
#include "timetable/types.h"
#include "ttl/label_store.h"

namespace ptldb {

/// Compilation and execution of the VM programs (engine/vm.h) behind
/// PtldbOptions::compiled_queries. The facade compiles each query type
/// once — the three Code 1 flavors at Build, the four bucket flavors per
/// target set at AddTargetSet — and the entry points execute the stored
/// program instead of constructing a volcano plan per request. All
/// per-request scratch lives in a thread-local bump arena plus reusable
/// RowScratch/LabelArrays buffers, so a warm VM query performs zero
/// steady-state heap allocations (bench_micro's allocation gate pins
/// this). An invalid program (a table that failed to build) falls back
/// to the interpreter at the call site.

enum class CompiledV2vKind { kEa, kLd, kSd };

/// Compiles one Code 1 flavor against the database's label tier: the
/// compressed store when `labels` is non-null, else the lout/lin heap
/// tables. Cheap (pointer binding); call once per database build.
VmProgram CompileV2v(EngineDatabase* db, CompiledV2vKind kind,
                     const LabelStore* labels);

/// Compiles one Code 3/4 flavor against a target set's bucket table
/// (knn_ea_<set> / otm_ea_<set> / knn_ld_<set> / otm_ld_<set>).
/// `ld` selects the LD scan and descending emit order.
VmProgram CompileSetQuery(EngineDatabase* db, bool ld,
                          const std::string& bucket_table,
                          Duration bucket_seconds, int32_t max_bucket,
                          uint32_t kmax, const LabelStore* labels);

/// Executes a compiled EA or LD Code 1 program (answers are points on
/// the service clock). `t_end` is ignored by EA, `t` by LD — same
/// convention as the QueryV2v* interpreter entry points. Requires
/// prog.valid.
Result<EventTime> RunCompiledV2v(EngineDatabase* db, const VmProgram& prog,
                                 StopId s, StopId g, EventTime t,
                                 EventTime t_end);

/// Executes a compiled SD Code 1 program (the answer is a span, not a
/// point). Requires prog.valid.
Result<Duration> RunCompiledV2vSd(EngineDatabase* db, const VmProgram& prog,
                                  StopId s, StopId g, EventTime t,
                                  EventTime t_end);

/// Executes a compiled Code 3/4 program. k == 0 selects the one-to-many
/// variant (no candidate or output limit). Requires prog.valid.
Result<std::vector<StopTimeResult>> RunCompiledSetQuery(EngineDatabase* db,
                                                        const VmProgram& prog,
                                                        StopId q, EventTime t,
                                                        uint32_t k);

}  // namespace ptldb

#endif  // PTLDB_PTLDB_COMPILED_H_
