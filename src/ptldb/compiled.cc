#include "ptldb/compiled.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/query_context.h"
#include "engine/arena.h"
#include "ptldb/label_merge.h"
#include "ptldb/tables.h"

namespace ptldb {

namespace {

// All per-request VM scratch, one instance per thread: the bump arena for
// aggregate tables and top-k staging, the decode targets for label and
// bucket rows. Everything here reaches its high-water size during the
// first requests and is reused (Reset / clear-keeping-capacity)
// afterwards — the zero-steady-state-allocation contract of the warm
// path. Queries run on one thread (the same contract as
// LocalQueryCounters), so no synchronization is needed.
struct VmState {
  Arena arena;
  LabelArrays out_arrays;  // Compressed-tier decode target, out label.
  LabelArrays in_arrays;   // Compressed-tier decode target, in label.
  RowScratch out_row;      // Raw-tier decode target, out label.
  RowScratch in_row;       // Raw-tier decode target, in label.
  RowScratch bucket_row;   // Probed bucket rows (reused per probe).
};

VmState& ThisThreadVmState() {
  static thread_local VmState state;
  return state;
}

// Loads one stop's label row into `view`, from whichever tier the program
// was compiled against. Returns false when the stop has no label (unknown
// stop / missing heap row) — the empty answer, not a fault. The view
// borrows `arrays` or `scratch`, which must outlive its use.
Result<bool> LoadLabel(EngineDatabase* db, const VmProgram& prog,
                       bool outbound, StopId v, LabelArrays* arrays,
                       RowScratch* scratch, LabelRowView* view) {
  if (prog.labels != nullptr) {
    if (v >= prog.labels->num_stops()) return false;
    auto decoded = DecodeCounted(
        *prog.labels,
        outbound ? LabelStore::Direction::kOut : LabelStore::Direction::kIn, v,
        arrays);
    PTLDB_RETURN_IF_ERROR(decoded.status());
    *view = LabelRowView(*decoded);
    return true;
  }
  const EngineTable* table = outbound ? prog.lout : prog.lin;
  auto found =
      table->GetInto(static_cast<IndexKey>(v), db->buffer_pool(), scratch);
  PTLDB_RETURN_IF_ERROR(found.status());
  if (!*found) return false;
  // CheckLabelRow parity (label_merge.h): the three arrays are parallel
  // by construction, so a mismatch means the row decoded from a corrupt
  // page.
  if (scratch->cols.size() < 4 || !scratch->cols[1].is_array ||
      !scratch->cols[2].is_array || !scratch->cols[3].is_array) {
    return Status::Corruption("label row has too few columns");
  }
  const auto hubs = scratch->array(1);
  const auto tds = scratch->array(2);
  const auto tas = scratch->array(3);
  if (tds.size() != hubs.size() || tas.size() != hubs.size()) {
    return Status::Corruption("label row arrays have unequal lengths");
  }
  *view = LabelRowView(hubs, tds, tas);
  return true;
}

// Bucket row layout (BuildTargetSetTables): 0 hub, 1 hour, 2 vs,
// 3 condensed time (tas for EA tables, tds for LD), 4 tds_exp, 5 vs_exp,
// 6 tas_exp. The condensed pair and the expanded triple are each
// parallel; UnnestOp treats a mismatch as corruption and so do we.
struct BucketRowView {
  std::span<const int32_t> vs;
  std::span<const int32_t> cond;
  std::span<const int32_t> tds_exp;
  std::span<const int32_t> vs_exp;
  std::span<const int32_t> tas_exp;
};

Status ViewBucketRow(const RowScratch& scratch, BucketRowView* view) {
  if (scratch.cols.size() < 7) {
    return Status::Corruption("bucket row has too few columns");
  }
  view->vs = scratch.array(2);
  view->cond = scratch.array(3);
  view->tds_exp = scratch.array(4);
  view->vs_exp = scratch.array(5);
  view->tas_exp = scratch.array(6);
  if (view->cond.size() != view->vs.size() ||
      view->vs_exp.size() != view->tds_exp.size() ||
      view->tas_exp.size() != view->tds_exp.size()) {
    return Status::Corruption("parallel UNNEST arrays have unequal lengths");
  }
  return Status::Ok();
}

// Folds `value` for stop `v` into the per-stop aggregate.
void AggMin(ArenaInt32Map* agg, int32_t v, int32_t value) {
  int32_t* slot = agg->FindOrInsert(v, value);
  *slot = std::min(*slot, value);
}

void AggMax(ArenaInt32Map* agg, int32_t v, int32_t value) {
  int32_t* slot = agg->FindOrInsert(v, value);
  *slot = std::max(*slot, value);
}

// Fused Code 3 scan (one kScanEaBuckets instruction): for every n1 label
// tuple departing at or after t, probe the (hub, dephour) bucket row and
// fold both branches — the condensed top-k columns and the expanded
// in-bucket tuples with the l1.ta <= l2.td feasibility check — into the
// global per-stop minimum. Step accounting: one vm_step per probe and
// one per candidate element examined.
Status ScanEaBuckets(EngineDatabase* db, const VmProgram& prog,
                     const LabelRowView& n1, EventTime t, uint32_t k,
                     ArenaInt32Map* agg, RowScratch* scratch) {
  auto& counters = ThisThreadQueryCounters();
  BufferPool* pool = db->buffer_pool();
  // The query bound narrows saturating once; the scan then compares
  // stored int32 columns against a stored bound (see time_types.h).
  const StoredTime td_min = SaturatingToStoredTime(t);
  for (size_t i = 0; i < n1.size(); ++i) {
    PTLDB_RETURN_IF_ERROR(CheckQueryCheckpoint());
    if (n1.tds[i] < td_min) continue;
    ++counters.vm_steps;
    auto found = prog.buckets->GetInto(
        MakeCompositeKey(n1.hubs[i],
                         StoredBucketOf(n1.tas[i], prog.bucket_seconds)),
        pool, scratch);
    PTLDB_RETURN_IF_ERROR(found.status());
    if (!*found) continue;
    BucketRowView row;
    PTLDB_RETURN_IF_ERROR(ViewBucketRow(*scratch, &row));
    // Branch A: the condensed (v, ta) pairs, first k per bucket row (the
    // vs[1:k] slice of Code 3; k == 0 = OTM = no slice).
    const size_t lim =
        k == 0 ? row.vs.size() : std::min<size_t>(row.vs.size(), k);
    for (size_t j = 0; j < lim; ++j) {
      ++counters.vm_steps;
      AggMin(agg, row.vs[j], row.cond[j]);
    }
    // Branch B: expanded in-bucket tuples, still checking l1.ta <= l2.td.
    for (size_t j = 0; j < row.tds_exp.size(); ++j) {
      ++counters.vm_steps;
      if (n1.tas[i] <= row.tds_exp[j]) {
        AggMin(agg, row.vs_exp[j], row.tas_exp[j]);
      }
    }
  }
  return Status::Ok();
}

// Fused Code 4 scan: every n1 tuple probes the single arrival-hour
// bucket; both branches require the label departure to be boardable
// (l2.td >= l1.ta), branch B additionally l2.ta <= t. The aggregated
// value is the n1 departure time (the answer of an LD query is when to
// leave, not when to arrive).
Status ScanLdBuckets(EngineDatabase* db, const VmProgram& prog,
                     const LabelRowView& n1, EventTime t, uint32_t k,
                     ArenaInt32Map* agg, RowScratch* scratch) {
  auto& counters = ThisThreadQueryCounters();
  BufferPool* pool = db->buffer_pool();
  // Deadlines beyond the indexed horizon clamp to the last event bucket.
  const int32_t arrhour =
      std::min(SaturatingBucketOf(t, prog.bucket_seconds), prog.max_bucket);
  const StoredTime ta_max = SaturatingToStoredTime(t);
  for (size_t i = 0; i < n1.size(); ++i) {
    PTLDB_RETURN_IF_ERROR(CheckQueryCheckpoint());
    ++counters.vm_steps;
    auto found = prog.buckets->GetInto(MakeCompositeKey(n1.hubs[i], arrhour),
                                       pool, scratch);
    PTLDB_RETURN_IF_ERROR(found.status());
    if (!*found) continue;
    BucketRowView row;
    PTLDB_RETURN_IF_ERROR(ViewBucketRow(*scratch, &row));
    const size_t lim =
        k == 0 ? row.vs.size() : std::min<size_t>(row.vs.size(), k);
    for (size_t j = 0; j < lim; ++j) {
      ++counters.vm_steps;
      if (row.cond[j] >= n1.tas[i]) {
        AggMax(agg, row.vs[j], n1.tds[i]);
      }
    }
    for (size_t j = 0; j < row.tds_exp.size(); ++j) {
      ++counters.vm_steps;
      if (row.tds_exp[j] >= n1.tas[i] && row.tas_exp[j] <= ta_max) {
        AggMax(agg, row.vs_exp[j], n1.tds[i]);
      }
    }
  }
  return Status::Ok();
}

}  // namespace

VmProgram CompileV2v(EngineDatabase* db, CompiledV2vKind kind,
                     const LabelStore* labels) {
  VmProgram p;
  p.labels = labels;
  p.lout = db->FindTable(kLoutTable);
  p.lin = db->FindTable(kLinTable);
  p.empty_result = kind == CompiledV2vKind::kLd ? EventTime::NegInfinity()
                                                : EventTime::Infinity();
  p.Push(VmOp::kLoadOut, 0);
  p.Push(VmOp::kLoadIn, 1);
  switch (kind) {
    case CompiledV2vKind::kEa:
      p.Push(VmOp::kMergeEa, 0, 1);
      break;
    case CompiledV2vKind::kLd:
      p.Push(VmOp::kMergeLd, 0, 1);
      break;
    case CompiledV2vKind::kSd:
      p.Push(VmOp::kMergeSd, 0, 1);
      break;
  }
  p.valid =
      labels != nullptr || (p.lout != nullptr && p.lin != nullptr);
  return p;
}

VmProgram CompileSetQuery(EngineDatabase* db, bool ld,
                          const std::string& bucket_table,
                          Duration bucket_seconds, int32_t max_bucket,
                          uint32_t kmax, const LabelStore* labels) {
  VmProgram p;
  p.labels = labels;
  p.lout = db->FindTable(kLoutTable);
  p.buckets = db->FindTable(bucket_table);
  p.bucket_seconds = bucket_seconds;
  p.max_bucket = max_bucket;
  p.kmax = kmax;
  p.Push(VmOp::kLoadOut, 0);
  p.Push(ld ? VmOp::kScanLdBuckets : VmOp::kScanEaBuckets, 0);
  p.Push(VmOp::kEmitTopK, ld ? 1 : 0);
  p.valid =
      p.buckets != nullptr && (labels != nullptr || p.lout != nullptr);
  return p;
}

namespace {

// Walks a v2v program's load prefix into `reg` and returns the pending
// merge instruction. A kHalt return means the answer is empty — a label
// was absent (unknown stop / missing heap row) or the program had no
// merge — and the typed wrappers supply their domain's empty value.
Result<VmInstr> RunV2vLoads(EngineDatabase* db, const VmProgram& prog,
                            StopId s, StopId g, LabelRowView reg[2]) {
  VmState& state = ThisThreadVmState();
  state.arena.Reset();
  auto& counters = ThisThreadQueryCounters();
  for (uint8_t pc = 0; pc < prog.num_instrs; ++pc) {
    const VmInstr instr = prog.code[pc];
    ++counters.vm_steps;
    PTLDB_RETURN_IF_ERROR(CheckQueryCheckpoint());
    switch (instr.op) {
      case VmOp::kLoadOut: {
        auto present = LoadLabel(db, prog, /*outbound=*/true, s,
                                 &state.out_arrays, &state.out_row,
                                 &reg[instr.a]);
        PTLDB_RETURN_IF_ERROR(present.status());
        if (!*present) return VmInstr{VmOp::kHalt, 0, 0};
        break;
      }
      case VmOp::kLoadIn: {
        auto present = LoadLabel(db, prog, /*outbound=*/false, g,
                                 &state.in_arrays, &state.in_row,
                                 &reg[instr.a]);
        PTLDB_RETURN_IF_ERROR(present.status());
        if (!*present) return VmInstr{VmOp::kHalt, 0, 0};
        break;
      }
      case VmOp::kMergeEa:
      case VmOp::kMergeLd:
      case VmOp::kMergeSd:
        return instr;
      case VmOp::kHalt:
        return instr;
      default:
        return Status::Internal("op not valid in a v2v program");
    }
  }
  return VmInstr{VmOp::kHalt, 0, 0};
}

}  // namespace

Result<EventTime> RunCompiledV2v(EngineDatabase* db, const VmProgram& prog,
                                 StopId s, StopId g, EventTime t,
                                 EventTime t_end) {
  LabelRowView reg[2];
  auto instr = RunV2vLoads(db, prog, s, g, reg);
  PTLDB_RETURN_IF_ERROR(instr.status());
  switch (instr->op) {
    case VmOp::kMergeEa:
      return MergeV2vEa(reg[instr->a], reg[instr->b], t);
    case VmOp::kMergeLd:
      return MergeV2vLd(reg[instr->a], reg[instr->b], t_end);
    case VmOp::kHalt:
      return prog.empty_result;
    default:
      return Status::Internal("program does not answer in the time domain");
  }
}

Result<Duration> RunCompiledV2vSd(EngineDatabase* db, const VmProgram& prog,
                                  StopId s, StopId g, EventTime t,
                                  EventTime t_end) {
  LabelRowView reg[2];
  auto instr = RunV2vLoads(db, prog, s, g, reg);
  PTLDB_RETURN_IF_ERROR(instr.status());
  switch (instr->op) {
    case VmOp::kMergeSd:
      return MergeV2vSd(reg[instr->a], reg[instr->b], t, t_end);
    case VmOp::kHalt:
      return Duration::Infinity();
    default:
      return Status::Internal("program does not answer in the span domain");
  }
}

Result<std::vector<StopTimeResult>> RunCompiledSetQuery(EngineDatabase* db,
                                                        const VmProgram& prog,
                                                        StopId q, EventTime t,
                                                        uint32_t k) {
  VmState& state = ThisThreadVmState();
  state.arena.Reset();
  auto& counters = ThisThreadQueryCounters();
  LabelRowView reg[2];
  // Absent n1 label (unknown stop): the scans are skipped and kEmitTopK
  // drains an empty aggregate — the interpreter's empty index lookup.
  bool have_label = false;
  ArenaInt32Map agg(&state.arena);
  for (uint8_t pc = 0; pc < prog.num_instrs; ++pc) {
    const VmInstr instr = prog.code[pc];
    ++counters.vm_steps;
    PTLDB_RETURN_IF_ERROR(CheckQueryCheckpoint());
    switch (instr.op) {
      case VmOp::kLoadOut: {
        auto present = LoadLabel(db, prog, /*outbound=*/true, q,
                                 &state.out_arrays, &state.out_row,
                                 &reg[instr.a]);
        PTLDB_RETURN_IF_ERROR(present.status());
        have_label = *present;
        break;
      }
      case VmOp::kScanEaBuckets:
        if (have_label) {
          PTLDB_RETURN_IF_ERROR(ScanEaBuckets(db, prog, reg[instr.a], t, k,
                                              &agg, &state.bucket_row));
        }
        break;
      case VmOp::kScanLdBuckets:
        if (have_label) {
          PTLDB_RETURN_IF_ERROR(ScanLdBuckets(db, prog, reg[instr.a], t, k,
                                              &agg, &state.bucket_row));
        }
        break;
      case VmOp::kEmitTopK: {
        // Drain the per-stop aggregate, order like the paper's ORDER BY
        // (time, then stop for determinism), cut to k. The one heap
        // allocation of a kNN query is the result vector itself.
        ArenaVector<StopTimeResult> staged(&state.arena);
        for (const auto& slot : agg.slots()) {
          if (slot.key == ArenaInt32Map::kEmptyKey) continue;
          staged.PushBack(
              {static_cast<StopId>(slot.key), FromStoredTime(slot.value)});
        }
        const bool desc = instr.a == 1;
        std::sort(staged.begin(), staged.end(),
                  [desc](const StopTimeResult& a, const StopTimeResult& b) {
                    if (a.time != b.time) {
                      return desc ? a.time > b.time : a.time < b.time;
                    }
                    return a.stop < b.stop;
                  });
        const size_t n =
            k == 0 ? staged.size() : std::min<size_t>(staged.size(), k);
        counters.rows_emitted += n;
        return std::vector<StopTimeResult>(staged.begin(),
                                           staged.begin() + n);
      }
      case VmOp::kHalt:
        return std::vector<StopTimeResult>{};
      default:
        return Status::Internal("op not valid in a set-query program");
    }
  }
  return std::vector<StopTimeResult>{};
}

}  // namespace ptldb
