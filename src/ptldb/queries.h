#ifndef PTLDB_PTLDB_QUERIES_H_
#define PTLDB_PTLDB_QUERIES_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/time_util.h"
#include "engine/database.h"
#include "timetable/types.h"
#include "ttl/label_store.h"

namespace ptldb {

/// PTLDB query execution against the embedded engine. Each function is the
/// physical-plan equivalent of one SQL query of the paper (Codes 1-4); the
/// src/pgsql module emits the corresponding SQL text.
///
/// Every query is fallible: storage faults (kIoError) and detected
/// corruption (kCorruption) surface as a non-OK Result instead of a wrong
/// or partial answer. A missing table is kInvalidArgument.
///
/// Prefer the PtldbDatabase facade (ptldb/ptldb.h); these free functions
/// are the building blocks and are exposed for tests and benchmarks.
///
/// Every query takes an optional `labels` — the RAM-resident compressed
/// label tier (ttl/label_store.h). When non-null, label scans decode the
/// store's delta+varint buckets instead of fetching lout/lin heap rows
/// through the buffer pool: Code 1 runs as an in-memory merge join over
/// the decoded views, Codes 2-4 source their n1 CTE from a decoded
/// bucket. Answers are identical in either representation (the
/// differential harness proves it); only the access path and the
/// decode/IO counter mix differ. nullptr selects the raw heap tier.

/// Code 1, EA variant: SELECT MIN(inp.ta) ... WHERE outp.hub = inp.hub AND
/// outp.ta <= inp.td AND outp.td >= t. EventTime::Infinity() when empty.
/// Executed as the SQL-shaped plan (UNNEST both label rows, hash join on
/// hub, residual filter, aggregate) — the same work PostgreSQL does.
Result<EventTime> QueryV2vEa(EngineDatabase* db, StopId s, StopId g,
                             EventTime t,
                             const LabelStore* labels = nullptr);

/// Code 1, LD variant. EventTime::NegInfinity() when empty.
Result<EventTime> QueryV2vLd(EngineDatabase* db, StopId s, StopId g,
                             EventTime t_end,
                             const LabelStore* labels = nullptr);

/// Code 1, SD variant. Duration::Infinity() when empty.
Result<Duration> QueryV2vSd(EngineDatabase* db, StopId s, StopId g,
                            EventTime t, EventTime t_end,
                            const LabelStore* labels = nullptr);

/// Specialized merge-join variants of Code 1 that exploit the (hub, td)
/// array order instead of hashing + filtering. Same answers, much less CPU
/// — the ablation bench quantifies what a transit-aware join operator
/// would buy a DBMS. Not used by the default facade.
Result<EventTime> QueryV2vEaMergePlan(EngineDatabase* db, StopId s, StopId g,
                                      EventTime t,
                                      const LabelStore* labels = nullptr);
Result<EventTime> QueryV2vLdMergePlan(EngineDatabase* db, StopId s, StopId g,
                                      EventTime t_end,
                                      const LabelStore* labels = nullptr);
Result<Duration> QueryV2vSdMergePlan(EngineDatabase* db, StopId s, StopId g,
                                     EventTime t, EventTime t_end,
                                     const LabelStore* labels = nullptr);

/// Code 2: the naive EA-kNN query over knn_naive_<set>.
Result<std::vector<StopTimeResult>> QueryEaKnnNaive(
    EngineDatabase* db, const std::string& set_name, StopId q, EventTime t,
    uint32_t k, const LabelStore* labels = nullptr);

/// The LD counterpart of Code 2 (same naive table, mirrored conditions).
Result<std::vector<StopTimeResult>> QueryLdKnnNaive(
    EngineDatabase* db, const std::string& set_name, StopId q, EventTime t,
    uint32_t k, const LabelStore* labels = nullptr);

/// Code 3, EA-kNN branch: optimized query over knn_ea_<set>.
/// `bucket_seconds` must match the value the set was built with.
Result<std::vector<StopTimeResult>> QueryEaKnn(EngineDatabase* db,
                                               const std::string& set_name,
                                               StopId q, EventTime t,
                                               uint32_t k,
                                               Duration bucket_seconds,
                                               const LabelStore* labels =
                                                   nullptr);

/// Code 3, EA-OTM branch: one-to-many over otm_ea_<set>.
Result<std::vector<StopTimeResult>> QueryEaOtm(EngineDatabase* db,
                                               const std::string& set_name,
                                               StopId q, EventTime t,
                                               Duration bucket_seconds,
                                               const LabelStore* labels =
                                                   nullptr);

/// Code 4, LD-kNN branch over knn_ld_<set>. `max_bucket` is the last event
/// bucket of the index (deadlines beyond it clamp to that bucket).
Result<std::vector<StopTimeResult>> QueryLdKnn(EngineDatabase* db,
                                               const std::string& set_name,
                                               StopId q, EventTime t,
                                               uint32_t k,
                                               Duration bucket_seconds,
                                               int32_t max_bucket,
                                               const LabelStore* labels =
                                                   nullptr);

/// Code 4, LD-OTM branch over otm_ld_<set>.
Result<std::vector<StopTimeResult>> QueryLdOtm(EngineDatabase* db,
                                               const std::string& set_name,
                                               StopId q, EventTime t,
                                               Duration bucket_seconds,
                                               int32_t max_bucket,
                                               const LabelStore* labels =
                                                   nullptr);

}  // namespace ptldb

#endif  // PTLDB_PTLDB_QUERIES_H_
