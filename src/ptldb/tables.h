#ifndef PTLDB_PTLDB_TABLES_H_
#define PTLDB_PTLDB_TABLES_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "engine/database.h"
#include "common/time_util.h"
#include "ttl/label.h"

namespace ptldb {

/// Builders for the PTLDB database tables. Everything here mirrors the
/// pure-SQL table constructions of Sections 3.1-3.3 of the paper; the
/// src/pgsql module emits the equivalent SQL for real PostgreSQL.

/// Names of the core label tables.
inline constexpr char kLoutTable[] = "lout";
inline constexpr char kLinTable[] = "lin";

/// Builds the lout and lin tables (Section 3.1): one row per stop with
/// hubs/tds/tas array columns ordered by (hub, td), primary key v.
Status BuildLabelTables(const TtlIndex& index, EngineDatabase* db);

/// Names of the per-target-set tables ("<base>_<set>").
std::string NaiveKnnTableName(const std::string& set_name);
std::string KnnEaTableName(const std::string& set_name);
std::string KnnLdTableName(const std::string& set_name);
std::string OtmEaTableName(const std::string& set_name);
std::string OtmLdTableName(const std::string& set_name);

/// Bucket range shared by the kNN/OTM tables of one index: all label event
/// times fall inside [min_bucket, max_bucket] (bucket = time / width).
struct BucketRange {
  int32_t min_bucket = 0;
  int32_t max_bucket = 0;
};

/// Computes the event-bucket range of an index for a bucket width in
/// seconds (the paper uses one hour; Section 3.2.1 discusses the tradeoff
/// and the ablation bench sweeps it).
BucketRange ComputeBucketRange(const TtlIndex& index,
                               Duration bucket_seconds = kHourBucket);

/// Builds the five derived tables for one fixed target set
/// (Sections 3.2-3.3):
///   knn_naive_<set> (hub, td)      -> k-best distinct (v, ta) per (hub,td);
///                                     serves both EA and LD naive queries
///   knn_ea_<set>    (hub, dephour) -> hour bucket + top-k condensed columns
///   knn_ld_<set>    (hub, arrhour) -> symmetric for latest departure
///   otm_ea_<set>    (hub, dephour) -> best entry per target instead of top-k
///   otm_ld_<set>    (hub, arrhour) -> symmetric
/// `bucket_seconds` is the grouping interval for the (hub, hour) tables
/// (3600 in the paper). `num_threads` parallelizes the per-hub row
/// construction (0 = one per hardware thread, 1 = serial); the loaded
/// tables are identical for every value.
Status BuildTargetSetTables(const TtlIndex& index,
                            const std::vector<StopId>& targets,
                            uint32_t kmax, const std::string& set_name,
                            EngineDatabase* db,
                            Duration bucket_seconds = kHourBucket,
                            uint32_t num_threads = 1);

}  // namespace ptldb

#endif  // PTLDB_PTLDB_TABLES_H_
