#include "engine/btree.h"

#include <cassert>
#include <cstring>

namespace ptldb {

namespace {

// Page layout.
//
// Common header (16 bytes):
//   u8  is_leaf
//   u8  pad[3]
//   u32 count
//   u64 next (leaf chain; unused in internal nodes)
//
// Leaf entry (20 bytes):  i64 key, u64 row offset, u32 row length.
// Internal entry (16 bytes): i64 separator key (min key of subtree),
//                            u64 child page.
constexpr uint32_t kHeaderSize = 16;
constexpr uint32_t kLeafEntrySize = 20;
constexpr uint32_t kInternalEntrySize = 16;
constexpr uint32_t kLeafCapacity = (kPageSize - kHeaderSize) / kLeafEntrySize;
constexpr uint32_t kInternalCapacity =
    (kPageSize - kHeaderSize) / kInternalEntrySize;

template <typename T>
T GetAt(const Page& page, uint32_t offset) {
  T v;
  std::memcpy(&v, page.bytes.data() + offset, sizeof(T));
  return v;
}

template <typename T>
void PutAt(Page* page, uint32_t offset, T v) {
  std::memcpy(page->bytes.data() + offset, &v, sizeof(T));
}

bool IsLeaf(const Page& page) { return GetAt<uint8_t>(page, 0) != 0; }
uint32_t Count(const Page& page) { return GetAt<uint32_t>(page, 4); }
PageId NextLeaf(const Page& page) { return GetAt<uint64_t>(page, 8); }

IndexKey LeafKey(const Page& page, uint32_t slot) {
  return GetAt<int64_t>(page, kHeaderSize + slot * kLeafEntrySize);
}
RowLocator LeafLocator(const Page& page, uint32_t slot) {
  const uint32_t base = kHeaderSize + slot * kLeafEntrySize;
  return {GetAt<uint64_t>(page, base + 8), GetAt<uint32_t>(page, base + 16)};
}

IndexKey InternalKey(const Page& page, uint32_t slot) {
  return GetAt<int64_t>(page, kHeaderSize + slot * kInternalEntrySize);
}
PageId InternalChild(const Page& page, uint32_t slot) {
  return GetAt<uint64_t>(page, kHeaderSize + slot * kInternalEntrySize + 8);
}

// First slot in a leaf with key >= target (== count when none).
uint32_t LeafLowerBound(const Page& page, IndexKey key) {
  uint32_t lo = 0;
  uint32_t hi = Count(page);
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo) / 2;
    if (LeafKey(page, mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Child to descend into: last slot whose separator <= key (slot 0 when the
// key precedes every separator).
uint32_t InternalChildSlot(const Page& page, IndexKey key) {
  uint32_t lo = 0;
  uint32_t hi = Count(page);
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo) / 2;
    if (InternalKey(page, mid) <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo == 0 ? 0 : lo - 1;
}

}  // namespace

void BTree::BulkLoad(
    const std::vector<std::pair<IndexKey, RowLocator>>& entries) {
  assert(root_ == kInvalidPage && "BulkLoad may be called once");
  num_entries_ = entries.size();
  if (entries.empty()) return;
  for (size_t i = 1; i < entries.size(); ++i) {
    assert(entries[i - 1].first < entries[i].first &&
           "keys must be strictly increasing");
  }

  // Level 0: fill leaves.
  std::vector<std::pair<IndexKey, PageId>> level;  // (min key, page).
  {
    size_t i = 0;
    PageId prev = kInvalidPage;
    while (i < entries.size()) {
      const PageId id = store_->Allocate();
      ++num_pages_;
      Page* page = &store_->page(id);
      PutAt<uint8_t>(page, 0, 1);
      const uint32_t count = static_cast<uint32_t>(
          std::min<size_t>(kLeafCapacity, entries.size() - i));
      PutAt<uint32_t>(page, 4, count);
      PutAt<uint64_t>(page, 8, kInvalidPage);
      for (uint32_t s = 0; s < count; ++s) {
        const uint32_t base = kHeaderSize + s * kLeafEntrySize;
        PutAt<int64_t>(page, base, entries[i + s].first);
        PutAt<uint64_t>(page, base + 8, entries[i + s].second.offset);
        PutAt<uint32_t>(page, base + 16, entries[i + s].second.length);
      }
      if (prev != kInvalidPage) PutAt<uint64_t>(&store_->page(prev), 8, id);
      prev = id;
      level.emplace_back(entries[i].first, id);
      i += count;
    }
  }
  height_ = 1;

  // Build internal levels until one root remains.
  while (level.size() > 1) {
    std::vector<std::pair<IndexKey, PageId>> next_level;
    size_t i = 0;
    while (i < level.size()) {
      const PageId id = store_->Allocate();
      ++num_pages_;
      Page* page = &store_->page(id);
      PutAt<uint8_t>(page, 0, 0);
      const uint32_t count = static_cast<uint32_t>(
          std::min<size_t>(kInternalCapacity, level.size() - i));
      PutAt<uint32_t>(page, 4, count);
      PutAt<uint64_t>(page, 8, kInvalidPage);
      for (uint32_t s = 0; s < count; ++s) {
        const uint32_t base = kHeaderSize + s * kInternalEntrySize;
        PutAt<int64_t>(page, base, level[i + s].first);
        PutAt<uint64_t>(page, base + 8, level[i + s].second);
      }
      next_level.emplace_back(level[i].first, id);
      i += count;
    }
    level = std::move(next_level);
    ++height_;
  }
  root_ = level.front().second;
}

std::optional<RowLocator> BTree::Find(IndexKey key, BufferPool* pool) const {
  if (root_ == kInvalidPage) return std::nullopt;
  PageId current = root_;
  while (true) {
    const Page& page = pool->Fetch(current);
    if (IsLeaf(page)) {
      const uint32_t slot = LeafLowerBound(page, key);
      if (slot < Count(page) && LeafKey(page, slot) == key) {
        return LeafLocator(page, slot);
      }
      return std::nullopt;
    }
    current = InternalChild(page, InternalChildSlot(page, key));
  }
}

BTree::Iterator BTree::SeekNotBefore(IndexKey key, BufferPool* pool) const {
  if (root_ == kInvalidPage) return Iterator(this, pool, kInvalidPage, 0);
  PageId current = root_;
  while (true) {
    const Page& page = pool->Fetch(current);
    if (IsLeaf(page)) {
      uint32_t slot = LeafLowerBound(page, key);
      PageId leaf = current;
      if (slot == Count(page)) {
        // All keys in this leaf are smaller; the successor leaf's first
        // entry (if any) is the answer.
        leaf = NextLeaf(page);
        slot = 0;
        if (leaf == kInvalidPage) return Iterator(this, pool, kInvalidPage, 0);
        pool->Fetch(leaf);
      }
      return Iterator(this, pool, leaf, slot);
    }
    current = InternalChild(page, InternalChildSlot(page, key));
  }
}

IndexKey BTree::Iterator::key() const {
  return LeafKey(pool_->Fetch(page_), slot_);
}

RowLocator BTree::Iterator::locator() const {
  return LeafLocator(pool_->Fetch(page_), slot_);
}

void BTree::Iterator::Next() {
  const Page& page = pool_->Fetch(page_);
  if (slot_ + 1 < Count(page)) {
    ++slot_;
    return;
  }
  page_ = NextLeaf(page);
  slot_ = 0;
}

}  // namespace ptldb
