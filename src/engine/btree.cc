#include "engine/btree.h"

#include <cassert>
#include <cstring>
#include <string>

namespace ptldb {

namespace {

// Page layout.
//
// Common header (16 bytes):
//   u8  is_leaf
//   u8  pad[3]
//   u32 count
//   u64 next (leaf chain; unused in internal nodes)
//
// Leaf entry (20 bytes):  i64 key, u64 row offset, u32 row length.
// Internal entry (16 bytes): i64 separator key (min key of subtree),
//                            u64 child page.
constexpr uint32_t kHeaderSize = 16;
constexpr uint32_t kLeafEntrySize = 20;
constexpr uint32_t kInternalEntrySize = 16;
constexpr uint32_t kLeafCapacity = (kPageSize - kHeaderSize) / kLeafEntrySize;
constexpr uint32_t kInternalCapacity =
    (kPageSize - kHeaderSize) / kInternalEntrySize;

template <typename T>
T GetAt(const Page& page, uint32_t offset) {
  T v;
  std::memcpy(&v, page.bytes.data() + offset, sizeof(T));
  return v;
}

template <typename T>
void PutAt(Page* page, uint32_t offset, T v) {
  std::memcpy(page->bytes.data() + offset, &v, sizeof(T));
}

bool IsLeaf(const Page& page) { return GetAt<uint8_t>(page, 0) != 0; }
uint32_t Count(const Page& page) { return GetAt<uint32_t>(page, 4); }
PageId NextLeaf(const Page& page) { return GetAt<uint64_t>(page, 8); }

IndexKey LeafKey(const Page& page, uint32_t slot) {
  return GetAt<int64_t>(page, kHeaderSize + slot * kLeafEntrySize);
}
RowLocator LeafLocator(const Page& page, uint32_t slot) {
  const uint32_t base = kHeaderSize + slot * kLeafEntrySize;
  return {GetAt<uint64_t>(page, base + 8), GetAt<uint32_t>(page, base + 16)};
}

IndexKey InternalKey(const Page& page, uint32_t slot) {
  return GetAt<int64_t>(page, kHeaderSize + slot * kInternalEntrySize);
}
PageId InternalChild(const Page& page, uint32_t slot) {
  return GetAt<uint64_t>(page, kHeaderSize + slot * kInternalEntrySize + 8);
}

/// Entry counts are read off disk pages; bound them before any slot
/// arithmetic so a corrupt count cannot index past the page.
Status CheckLeaf(const Page& page, PageId id) {
  if (!IsLeaf(page)) {
    return Status::Corruption("expected leaf node at page " +
                              std::to_string(id));
  }
  if (Count(page) > kLeafCapacity) {
    return Status::Corruption("leaf entry count exceeds capacity at page " +
                              std::to_string(id));
  }
  return Status::Ok();
}

Status CheckInternal(const Page& page, PageId id) {
  if (IsLeaf(page)) {
    return Status::Corruption("expected internal node at page " +
                              std::to_string(id));
  }
  const uint32_t count = Count(page);
  if (count == 0 || count > kInternalCapacity) {
    return Status::Corruption("internal entry count out of range at page " +
                              std::to_string(id));
  }
  return Status::Ok();
}

// First slot in a leaf with key >= target (== count when none).
uint32_t LeafLowerBound(const Page& page, IndexKey key) {
  uint32_t lo = 0;
  uint32_t hi = Count(page);
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo) / 2;
    if (LeafKey(page, mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Child to descend into: last slot whose separator <= key (slot 0 when the
// key precedes every separator).
uint32_t InternalChildSlot(const Page& page, IndexKey key) {
  uint32_t lo = 0;
  uint32_t hi = Count(page);
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo) / 2;
    if (InternalKey(page, mid) <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo == 0 ? 0 : lo - 1;
}

}  // namespace

void BTree::BulkLoad(
    const std::vector<std::pair<IndexKey, RowLocator>>& entries) {
  assert(root_ == kInvalidPage && "BulkLoad may be called once");
  num_entries_ = entries.size();
  if (entries.empty()) return;
  for (size_t i = 1; i < entries.size(); ++i) {
    assert(entries[i - 1].first < entries[i].first &&
           "keys must be strictly increasing");
  }

  // Level 0: fill leaves.
  std::vector<std::pair<IndexKey, PageId>> level;  // (min key, page).
  {
    size_t i = 0;
    PageId prev = kInvalidPage;
    while (i < entries.size()) {
      const PageId id = store_->Allocate();
      ++num_pages_;
      Page* page = &store_->page(id);
      PutAt<uint8_t>(page, 0, 1);
      const uint32_t count = static_cast<uint32_t>(
          std::min<size_t>(kLeafCapacity, entries.size() - i));
      PutAt<uint32_t>(page, 4, count);
      PutAt<uint64_t>(page, 8, kInvalidPage);
      for (uint32_t s = 0; s < count; ++s) {
        const uint32_t base = kHeaderSize + s * kLeafEntrySize;
        PutAt<int64_t>(page, base, entries[i + s].first);
        PutAt<uint64_t>(page, base + 8, entries[i + s].second.offset);
        PutAt<uint32_t>(page, base + 16, entries[i + s].second.length);
      }
      if (prev != kInvalidPage) PutAt<uint64_t>(&store_->page(prev), 8, id);
      prev = id;
      level.emplace_back(entries[i].first, id);
      i += count;
    }
  }
  height_ = 1;

  // Build internal levels until one root remains.
  while (level.size() > 1) {
    std::vector<std::pair<IndexKey, PageId>> next_level;
    size_t i = 0;
    while (i < level.size()) {
      const PageId id = store_->Allocate();
      ++num_pages_;
      Page* page = &store_->page(id);
      PutAt<uint8_t>(page, 0, 0);
      const uint32_t count = static_cast<uint32_t>(
          std::min<size_t>(kInternalCapacity, level.size() - i));
      PutAt<uint32_t>(page, 4, count);
      PutAt<uint64_t>(page, 8, kInvalidPage);
      for (uint32_t s = 0; s < count; ++s) {
        const uint32_t base = kHeaderSize + s * kInternalEntrySize;
        PutAt<int64_t>(page, base, level[i + s].first);
        PutAt<uint64_t>(page, base + 8, level[i + s].second);
      }
      next_level.emplace_back(level[i].first, id);
      i += count;
    }
    level = std::move(next_level);
    ++height_;
  }
  root_ = level.front().second;
}

Result<PageId> BTree::DescendToLeaf(IndexKey key, BufferPool* pool) const {
  PageId current = root_;
  // The recorded height bounds the walk: even if a corrupt page pointed
  // back into the tree, the descent can never cycle.
  for (uint32_t depth = 1; depth < height_; ++depth) {
    // The guard pins the node only for this iteration's reads — the child
    // page id is extracted before the pin is dropped, so the descent holds
    // at most one pin at a time.
    auto guard = pool->Fetch(current);
    PTLDB_RETURN_IF_ERROR(guard.status());
    const Page& page = **guard;
    PTLDB_RETURN_IF_ERROR(CheckInternal(page, current));
    current = InternalChild(page, InternalChildSlot(page, key));
    if (current >= store_->num_pages()) {
      return Status::Corruption("internal node child pointer out of range");
    }
  }
  return current;
}

Result<std::optional<RowLocator>> BTree::Find(IndexKey key,
                                              BufferPool* pool) const {
  if (root_ == kInvalidPage) return std::optional<RowLocator>{};
  auto leaf_id = DescendToLeaf(key, pool);
  PTLDB_RETURN_IF_ERROR(leaf_id.status());
  auto guard = pool->Fetch(*leaf_id);
  PTLDB_RETURN_IF_ERROR(guard.status());
  const Page& page = **guard;
  PTLDB_RETURN_IF_ERROR(CheckLeaf(page, *leaf_id));
  const uint32_t slot = LeafLowerBound(page, key);
  if (slot < Count(page) && LeafKey(page, slot) == key) {
    return std::optional<RowLocator>{LeafLocator(page, slot)};
  }
  return std::optional<RowLocator>{};
}

BTree::Iterator BTree::SeekNotBefore(IndexKey key, BufferPool* pool) const {
  Iterator it(this, pool);
  if (root_ == kInvalidPage) return it;
  auto leaf_id = DescendToLeaf(key, pool);
  if (!leaf_id.ok()) {
    it.status_ = leaf_id.status();
    return it;
  }
  auto guard = pool->Fetch(*leaf_id);
  if (!guard.ok()) {
    it.status_ = guard.status();
    return it;
  }
  const Page& page = **guard;
  if (Status s = CheckLeaf(page, *leaf_id); !s.ok()) {
    it.status_ = std::move(s);
    return it;
  }
  it.page_ = *leaf_id;
  it.slot_ = LeafLowerBound(page, key);
  if (it.slot_ == Count(page)) {
    // All keys in this leaf are smaller; the successor leaf's first
    // entry (if any) is the answer.
    it.page_ = NextLeaf(page);
    it.slot_ = 0;
    if (it.page_ == kInvalidPage) return it;
  }
  // Unpin before Load() fetches (it may be the successor leaf): holding
  // at most one pin at a time means a scan can never wedge a shard whose
  // other frames are pinned by concurrent queries.
  guard->Release();
  it.Load();
  return it;
}

void BTree::Iterator::Load() {
  valid_ = false;
  auto guard = pool_->Fetch(page_);
  if (!guard.ok()) {
    status_ = guard.status();
    return;
  }
  const Page& page = **guard;
  if (Status s = CheckLeaf(page, page_); !s.ok()) {
    status_ = std::move(s);
    return;
  }
  if (slot_ >= Count(page)) {
    status_ = Status::Corruption("leaf slot out of range at page " +
                                 std::to_string(page_));
    return;
  }
  key_ = LeafKey(page, slot_);
  locator_ = LeafLocator(page, slot_);
  valid_ = true;
}

void BTree::Iterator::Next() {
  if (!valid_) return;
  valid_ = false;
  auto guard = pool_->Fetch(page_);
  if (!guard.ok()) {
    status_ = guard.status();
    return;
  }
  const Page& page = **guard;
  if (slot_ + 1 < Count(page)) {
    ++slot_;
  } else {
    page_ = NextLeaf(page);
    slot_ = 0;
    if (page_ == kInvalidPage) return;  // Clean end of scan.
    if (page_ >= tree_->store_->num_pages()) {
      status_ = Status::Corruption("leaf chain pointer out of range");
      return;
    }
  }
  // Same single-pin discipline as SeekNotBefore: drop the current leaf's
  // pin before Load() fetches the (possibly different) successor leaf.
  guard->Release();
  Load();
}

}  // namespace ptldb
