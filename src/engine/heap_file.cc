#include "engine/heap_file.h"

#include <cassert>
#include <cstring>

namespace ptldb {

namespace {

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  const size_t n = out->size();
  out->resize(n + 4);
  std::memcpy(out->data() + n, &v, 4);
}

void PutI32(std::vector<uint8_t>* out, int32_t v) {
  const size_t n = out->size();
  out->resize(n + 4);
  std::memcpy(out->data() + n, &v, 4);
}

uint32_t GetU32(const uint8_t* data) {
  uint32_t v;
  std::memcpy(&v, data, 4);
  return v;
}

int32_t GetI32(const uint8_t* data) {
  int32_t v;
  std::memcpy(&v, data, 4);
  return v;
}

std::vector<uint8_t> SerializeRow(const Row& row, const Schema& schema) {
  assert(row.size() == schema.num_columns());
  std::vector<uint8_t> out;
  for (size_t i = 0; i < row.size(); ++i) {
    switch (schema.column(i).type) {
      case ColumnType::kInt32:
        PutI32(&out, row[i].AsInt());
        break;
      case ColumnType::kInt32Array: {
        const auto& arr = row[i].AsArray();
        PutU32(&out, static_cast<uint32_t>(arr.size()));
        if (!arr.empty()) {
          const size_t n = out.size();
          out.resize(n + arr.size() * 4);
          std::memcpy(out.data() + n, arr.data(), arr.size() * 4);
        }
        break;
      }
    }
  }
  return out;
}

}  // namespace

uint32_t SerializedRowSize(const Row& row, const Schema& schema) {
  uint32_t size = 0;
  for (size_t i = 0; i < row.size(); ++i) {
    if (schema.column(i).type == ColumnType::kInt32) {
      size += 4;
    } else {
      size += 4 + static_cast<uint32_t>(row[i].AsArray().size()) * 4;
    }
  }
  return size;
}

void HeapFile::AppendBytes(const uint8_t* data, size_t size) {
  while (size > 0) {
    if (page_offset_ == kPageSize) {
      current_page_ = store_->Allocate();
      ++num_pages_;
      page_offset_ = 0;
    }
    const size_t room = kPageSize - page_offset_;
    const size_t chunk = size < room ? size : room;
    std::memcpy(store_->page(current_page_).bytes.data() + page_offset_, data,
                chunk);
    page_offset_ += static_cast<uint32_t>(chunk);
    data += chunk;
    size -= chunk;
  }
}

RowLocator HeapFile::Append(const Row& row, const Schema& schema) {
  const std::vector<uint8_t> bytes = SerializeRow(row, schema);
  if (page_offset_ == kPageSize) {
    current_page_ = store_->Allocate();
    ++num_pages_;
    page_offset_ = 0;
  }
  const RowLocator locator{current_page_ * kPageSize + page_offset_,
                           static_cast<uint32_t>(bytes.size())};
  AppendBytes(bytes.data(), bytes.size());
  return locator;
}

Result<Row> HeapFile::Read(const RowLocator& locator, const Schema& schema,
                           BufferPool* pool) const {
  // A locator decoded from a corrupt index page can point anywhere; bound
  // it before touching the store so garbage never crashes the reader.
  if (locator.length > kMaxRowBytes) {
    return Status::Corruption("row locator length " +
                              std::to_string(locator.length) +
                              " exceeds sanity bound");
  }
  // Offsets are absolute in the (shared) page store, so bound against it.
  const uint64_t store_bytes = store_->num_pages() * kPageSize;
  if (locator.offset > store_bytes ||
      locator.offset + locator.length > store_bytes) {
    return Status::Corruption("row locator points past end of store");
  }

  // Gather the row's bytes across its page span.
  std::vector<uint8_t> bytes(locator.length);
  uint64_t offset = locator.offset;
  uint32_t copied = 0;
  while (copied < locator.length) {
    const PageId page = offset / kPageSize;
    const uint32_t in_page = static_cast<uint32_t>(offset % kPageSize);
    const uint32_t room = kPageSize - in_page;
    const uint32_t chunk = std::min(room, locator.length - copied);
    // One guard per chunk, released before the next Fetch: the pin keeps
    // the frame alive for exactly the memcpy (a concurrent miss can no
    // longer evict it mid-copy), and never holding two pins at once means
    // even a one-frame pool cannot wedge on its own pins.
    auto guard = pool->Fetch(page);
    PTLDB_RETURN_IF_ERROR(guard.status());
    std::memcpy(bytes.data() + copied, (*guard)->bytes.data() + in_page,
                chunk);
    copied += chunk;
    offset += chunk;
  }

  Row row;
  row.reserve(schema.num_columns());
  const uint8_t* cursor = bytes.data();
  const uint8_t* end = bytes.data() + bytes.size();
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    switch (schema.column(i).type) {
      case ColumnType::kInt32:
        if (end - cursor < 4) {
          return Status::Corruption("truncated row: int32 column " +
                                    std::to_string(i));
        }
        row.emplace_back(GetI32(cursor));
        cursor += 4;
        break;
      case ColumnType::kInt32Array: {
        if (end - cursor < 4) {
          return Status::Corruption("truncated row: array count, column " +
                                    std::to_string(i));
        }
        const uint32_t count = GetU32(cursor);
        cursor += 4;
        if (static_cast<uint64_t>(end - cursor) <
            static_cast<uint64_t>(count) * 4) {
          return Status::Corruption("truncated row: array body, column " +
                                    std::to_string(i));
        }
        std::vector<int32_t> arr(count);
        if (count > 0) {
          std::memcpy(arr.data(), cursor, static_cast<size_t>(count) * 4);
        }
        cursor += static_cast<size_t>(count) * 4;
        row.emplace_back(std::move(arr));
        break;
      }
    }
  }
  if (cursor != end) {
    return Status::Corruption("row has " +
                              std::to_string(end - cursor) +
                              " trailing bytes after last column");
  }
  return row;
}

Status HeapFile::ReadInto(const RowLocator& locator, const Schema& schema,
                          BufferPool* pool, RowScratch* scratch) const {
  // Same validation ladder as Read above, clause for clause: a locator or
  // payload the allocating reader rejects must be rejected here too.
  if (locator.length > kMaxRowBytes) {
    return Status::Corruption("row locator length " +
                              std::to_string(locator.length) +
                              " exceeds sanity bound");
  }
  const uint64_t store_bytes = store_->num_pages() * kPageSize;
  if (locator.offset > store_bytes ||
      locator.offset + locator.length > store_bytes) {
    return Status::Corruption("row locator points past end of store");
  }

  scratch->bytes.resize(locator.length);
  scratch->ints.clear();
  scratch->cols.clear();

  uint64_t offset = locator.offset;
  uint32_t copied = 0;
  while (copied < locator.length) {
    const PageId page = offset / kPageSize;
    const uint32_t in_page = static_cast<uint32_t>(offset % kPageSize);
    const uint32_t room = kPageSize - in_page;
    const uint32_t chunk = std::min(room, locator.length - copied);
    auto guard = pool->Fetch(page);
    PTLDB_RETURN_IF_ERROR(guard.status());
    std::memcpy(scratch->bytes.data() + copied,
                (*guard)->bytes.data() + in_page, chunk);
    copied += chunk;
    offset += chunk;
  }

  const uint8_t* cursor = scratch->bytes.data();
  const uint8_t* end = scratch->bytes.data() + scratch->bytes.size();
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    RowScratch::Column col;
    switch (schema.column(i).type) {
      case ColumnType::kInt32:
        if (end - cursor < 4) {
          return Status::Corruption("truncated row: int32 column " +
                                    std::to_string(i));
        }
        col.scalar = GetI32(cursor);
        cursor += 4;
        break;
      case ColumnType::kInt32Array: {
        if (end - cursor < 4) {
          return Status::Corruption("truncated row: array count, column " +
                                    std::to_string(i));
        }
        const uint32_t count = GetU32(cursor);
        cursor += 4;
        if (static_cast<uint64_t>(end - cursor) <
            static_cast<uint64_t>(count) * 4) {
          return Status::Corruption("truncated row: array body, column " +
                                    std::to_string(i));
        }
        col.is_array = true;
        col.offset = static_cast<uint32_t>(scratch->ints.size());
        col.length = count;
        scratch->ints.resize(scratch->ints.size() + count);
        if (count > 0) {
          std::memcpy(scratch->ints.data() + col.offset, cursor,
                      static_cast<size_t>(count) * 4);
        }
        cursor += static_cast<size_t>(count) * 4;
        break;
      }
    }
    scratch->cols.push_back(col);
  }
  if (cursor != end) {
    return Status::Corruption("row has " +
                              std::to_string(end - cursor) +
                              " trailing bytes after last column");
  }
  return Status::Ok();
}

}  // namespace ptldb
