#include "engine/exec.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <unordered_map>

#include "common/metrics.h"
#include "common/query_context.h"

namespace ptldb {

namespace {

class IndexLookupOp : public Operator {
 public:
  IndexLookupOp(const EngineTable* table, IndexKey key, BufferPool* pool)
      : table_(table), key_(key), pool_(pool) {}

  std::optional<Row> Next() override {
    if (done_) return std::nullopt;
    done_ = true;
    auto row = table_->Get(key_, pool_);
    if (!row.ok()) {
      status_ = row.status();
      return std::nullopt;
    }
    if (!row->has_value()) return std::nullopt;
    return std::move(**row);
  }

  Status status() const override { return status_; }

 private:
  const EngineTable* table_;
  IndexKey key_;
  BufferPool* pool_;
  bool done_ = false;
  Status status_ = Status::Ok();
};

class IndexRangeScanOp : public Operator {
 public:
  IndexRangeScanOp(const EngineTable* table, IndexKey first_key,
                   IndexKey last_key, BufferPool* pool)
      : cursor_(table->Seek(first_key, pool)), last_key_(last_key) {}

  std::optional<Row> Next() override {
    if (done_) return std::nullopt;
    if (!cursor_.Valid()) {
      status_ = cursor_.status();  // OK on a clean end of scan.
      done_ = true;
      return std::nullopt;
    }
    if (cursor_.key() > last_key_) {
      done_ = true;
      return std::nullopt;
    }
    auto row = cursor_.row();
    if (!row.ok()) {
      status_ = row.status();
      done_ = true;
      return std::nullopt;
    }
    cursor_.Next();
    return std::move(*row);
  }

  Status status() const override { return status_; }

 private:
  EngineTable::Cursor cursor_;
  IndexKey last_key_;
  // End/fault latch (the Operator contract in exec.h): the faulting read
  // did not advance the cursor, so without the latch a pull after a
  // transient mid-scan fault would retry the read, resume the stream, and
  // a later clean end would overwrite the parked error with OK — turning
  // a mid-stream I/O error into a silently truncated-but-OK result.
  bool done_ = false;
  Status status_ = Status::Ok();
};

class UnnestOp : public Operator {
 public:
  UnnestOp(OperatorPtr child, std::vector<int> keep_cols,
           std::vector<int> array_cols, uint32_t limit_elems)
      : child_(std::move(child)),
        keep_cols_(std::move(keep_cols)),
        array_cols_(std::move(array_cols)),
        limit_elems_(limit_elems) {}

  std::optional<Row> Next() override {
    if (done_) return std::nullopt;
    while (true) {
      if (current_ && elem_ < elem_count_) {
        Row out;
        out.reserve(keep_cols_.size() + array_cols_.size());
        for (const int c : keep_cols_) out.push_back((*current_)[c]);
        for (const int c : array_cols_) {
          out.emplace_back((*current_)[c].AsArray()[elem_]);
        }
        ++elem_;
        return out;
      }
      current_ = child_->Next();
      if (!current_) {
        done_ = true;
        return std::nullopt;
      }
      elem_ = 0;
      elem_count_ = array_cols_.empty()
                        ? 0
                        : static_cast<uint32_t>(
                              (*current_)[array_cols_[0]].AsArray().size());
      // The PTLDB label arrays are equal-length by construction; a mismatch
      // means the row decoded from a corrupt page.
      for (const int c : array_cols_) {
        if ((*current_)[c].AsArray().size() != elem_count_) {
          status_ = Status::Corruption(
              "parallel UNNEST arrays have unequal lengths");
          current_.reset();
          // Latch: a pull after the corruption must not fetch the next
          // child row and keep streaming past a damaged page.
          done_ = true;
          return std::nullopt;
        }
      }
      if (limit_elems_ != 0) elem_count_ = std::min(elem_count_, limit_elems_);
    }
  }

  Status status() const override {
    return status_.ok() ? child_->status() : status_;
  }

 private:
  OperatorPtr child_;
  std::vector<int> keep_cols_;
  std::vector<int> array_cols_;
  uint32_t limit_elems_;
  std::optional<Row> current_;
  uint32_t elem_ = 0;
  uint32_t elem_count_ = 0;
  bool done_ = false;
  Status status_ = Status::Ok();
};

class FilterOp : public Operator {
 public:
  FilterOp(OperatorPtr child, std::function<bool(const Row&)> predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}

  std::optional<Row> Next() override {
    while (auto row = child_->Next()) {
      if (predicate_(*row)) return row;
    }
    return std::nullopt;
  }

  Status status() const override { return child_->status(); }

 private:
  OperatorPtr child_;
  std::function<bool(const Row&)> predicate_;
};

class ProjectOp : public Operator {
 public:
  ProjectOp(OperatorPtr child, std::function<Row(const Row&)> projection)
      : child_(std::move(child)), projection_(std::move(projection)) {}

  std::optional<Row> Next() override {
    if (auto row = child_->Next()) return projection_(*row);
    return std::nullopt;
  }

  Status status() const override { return child_->status(); }

 private:
  OperatorPtr child_;
  std::function<Row(const Row&)> projection_;
};

class IndexJoinOp : public Operator {
 public:
  IndexJoinOp(OperatorPtr child, const EngineTable* table,
              std::function<IndexKey(const Row&)> key_fn, BufferPool* pool)
      : child_(std::move(child)),
        table_(table),
        key_fn_(std::move(key_fn)),
        pool_(pool) {}

  std::optional<Row> Next() override {
    if (done_) return std::nullopt;
    while (auto left = child_->Next()) {
      auto right = table_->Get(key_fn_(*left), pool_);
      if (!right.ok()) {
        status_ = right.status();
        done_ = true;
        return std::nullopt;
      }
      if (!right->has_value()) continue;
      Row out = std::move(*left);
      out.insert(out.end(), std::make_move_iterator((*right)->begin()),
                 std::make_move_iterator((*right)->end()));
      return out;
    }
    done_ = true;
    return std::nullopt;
  }

  Status status() const override {
    return status_.ok() ? child_->status() : status_;
  }

 private:
  OperatorPtr child_;
  const EngineTable* table_;
  std::function<IndexKey(const Row&)> key_fn_;
  BufferPool* pool_;
  bool done_ = false;
  Status status_ = Status::Ok();
};

class IndexRangeJoinOp : public Operator {
 public:
  IndexRangeJoinOp(OperatorPtr child, const EngineTable* table,
                   std::function<IndexKey(const Row&)> lo_fn,
                   std::function<IndexKey(const Row&)> hi_fn, BufferPool* pool)
      : child_(std::move(child)),
        table_(table),
        lo_fn_(std::move(lo_fn)),
        hi_fn_(std::move(hi_fn)),
        pool_(pool) {}

  std::optional<Row> Next() override {
    if (done_) return std::nullopt;
    while (true) {
      if (cursor_) {
        if (cursor_->Valid() && cursor_->key() <= hi_) {
          Row out = *left_;
          auto right = cursor_->row();
          if (!right.ok()) {
            status_ = right.status();
            done_ = true;
            return std::nullopt;
          }
          out.insert(out.end(), std::make_move_iterator(right->begin()),
                     std::make_move_iterator(right->end()));
          cursor_->Next();
          return out;
        }
        if (!cursor_->status().ok()) {
          status_ = cursor_->status();
          done_ = true;
          return std::nullopt;
        }
      }
      left_ = child_->Next();
      if (!left_) {
        done_ = true;
        return std::nullopt;
      }
      hi_ = hi_fn_(*left_);
      cursor_.emplace(table_->Seek(lo_fn_(*left_), pool_));
    }
  }

  Status status() const override {
    return status_.ok() ? child_->status() : status_;
  }

 private:
  OperatorPtr child_;
  const EngineTable* table_;
  std::function<IndexKey(const Row&)> lo_fn_;
  std::function<IndexKey(const Row&)> hi_fn_;
  BufferPool* pool_;
  std::optional<Row> left_;
  std::optional<EngineTable::Cursor> cursor_;
  IndexKey hi_ = 0;
  bool done_ = false;
  Status status_ = Status::Ok();
};

class HashJoinOp : public Operator {
 public:
  HashJoinOp(OperatorPtr left, OperatorPtr right, int left_key_col,
             int right_key_col)
      : left_(std::move(left)),
        right_(std::move(right)),
        left_key_col_(left_key_col),
        right_key_col_(right_key_col) {}

  std::optional<Row> Next() override {
    if (done_) return std::nullopt;
    if (!built_) {
      // The build phase consumes the whole right input inside one Next()
      // call, so it carries its own cancellation checkpoint — the
      // per-page checkpoint in BufferPool::Fetch cannot fire once the
      // input is exhausted and rows are only being hashed.
      while (auto row = right_->Next()) {
        if (Status s = CheckQueryCheckpoint(); !s.ok()) {
          status_ = std::move(s);
          done_ = true;
          return std::nullopt;
        }
        table_[(*row)[right_key_col_].AsInt()].push_back(std::move(*row));
      }
      built_ = true;
    }
    if (!status_.ok() || !right_->status().ok()) {
      done_ = true;
      return std::nullopt;
    }
    while (true) {
      if (matches_ != nullptr && match_index_ < matches_->size()) {
        Row out = *current_left_;
        const Row& right = (*matches_)[match_index_++];
        out.insert(out.end(), right.begin(), right.end());
        return out;
      }
      current_left_ = left_->Next();
      if (!current_left_) {
        done_ = true;
        return std::nullopt;
      }
      const auto it = table_.find((*current_left_)[left_key_col_].AsInt());
      matches_ = it == table_.end() ? nullptr : &it->second;
      match_index_ = 0;
    }
  }

  Status status() const override {
    if (!status_.ok()) return status_;
    if (!right_->status().ok()) return right_->status();
    return left_->status();
  }

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  int left_key_col_;
  int right_key_col_;
  bool done_ = false;
  Status status_ = Status::Ok();
  bool built_ = false;
  std::unordered_map<int32_t, std::vector<Row>> table_;
  std::optional<Row> current_left_;
  const std::vector<Row>* matches_ = nullptr;
  size_t match_index_ = 0;
};

class HashAggregateOp : public Operator {
 public:
  HashAggregateOp(OperatorPtr child, int group_col, int value_col, AggFn fn)
      : child_(std::move(child)),
        group_col_(group_col),
        value_col_(value_col),
        fn_(fn) {}

  std::optional<Row> Next() override {
    if (!materialized_) {
      Materialize();
      materialized_ = true;
      it_ = groups_.begin();
    }
    if (!status_.ok() || !child_->status().ok()) return std::nullopt;
    if (it_ == groups_.end()) return std::nullopt;
    Row out{Value(it_->first), Value(it_->second)};
    ++it_;
    return out;
  }

  Status status() const override {
    return status_.ok() ? child_->status() : status_;
  }

 private:
  // Materializing loop: checkpointed like the hash-join build (whole
  // input consumed in one Next() call).
  void Materialize() {
    while (auto row = child_->Next()) {
      if (Status s = CheckQueryCheckpoint(); !s.ok()) {
        status_ = std::move(s);
        return;
      }
      const int32_t group = (*row)[group_col_].AsInt();
      const int32_t value = (*row)[value_col_].AsInt();
      const auto [it, inserted] = groups_.emplace(group, value);
      if (!inserted) {
        it->second = fn_ == AggFn::kMin ? std::min(it->second, value)
                                        : std::max(it->second, value);
      }
    }
  }

  OperatorPtr child_;
  int group_col_;
  int value_col_;
  AggFn fn_;
  Status status_ = Status::Ok();
  bool materialized_ = false;
  std::map<int32_t, int32_t> groups_;
  std::map<int32_t, int32_t>::iterator it_;
};

class SortOp : public Operator {
 public:
  SortOp(OperatorPtr child, std::function<bool(const Row&, const Row&)> less)
      : child_(std::move(child)), less_(std::move(less)) {}

  std::optional<Row> Next() override {
    if (!materialized_) {
      // Materializing loop: checkpointed like the hash-join build.
      while (auto row = child_->Next()) {
        if (Status s = CheckQueryCheckpoint(); !s.ok()) {
          status_ = std::move(s);
          return std::nullopt;
        }
        rows_.push_back(std::move(*row));
      }
      std::stable_sort(rows_.begin(), rows_.end(), less_);
      materialized_ = true;
    }
    if (!status_.ok() || !child_->status().ok()) return std::nullopt;
    if (next_ >= rows_.size()) return std::nullopt;
    // Moved out, not copied: next_ only advances, so the slot is dead.
    return std::move(rows_[next_++]);
  }

  Status status() const override {
    return status_.ok() ? child_->status() : status_;
  }

 private:
  OperatorPtr child_;
  std::function<bool(const Row&, const Row&)> less_;
  Status status_ = Status::Ok();
  bool materialized_ = false;
  std::vector<Row> rows_;
  size_t next_ = 0;
};

class LimitOp : public Operator {
 public:
  LimitOp(OperatorPtr child, uint64_t n) : child_(std::move(child)), n_(n) {}

  std::optional<Row> Next() override {
    if (done_ || emitted_ >= n_) return std::nullopt;
    auto row = child_->Next();
    if (row) {
      ++emitted_;
    } else {
      // Latch so a pull after the child's end (clean or faulted) can never
      // re-drive a child whose fault state is not itself latched.
      done_ = true;
    }
    return row;
  }

  Status status() const override { return child_->status(); }

 private:
  OperatorPtr child_;
  uint64_t n_;
  uint64_t emitted_ = 0;
  bool done_ = false;
};

class ConcatOp : public Operator {
 public:
  explicit ConcatOp(std::vector<OperatorPtr> children)
      : children_(std::move(children)) {}

  std::optional<Row> Next() override {
    if (done_) return std::nullopt;
    while (current_ < children_.size()) {
      if (auto row = children_[current_]->Next()) return row;
      if (!children_[current_]->status().ok()) {
        // Latch on the faulted child: a later pull must not re-drive it
        // (nor skip ahead to the next child and keep emitting rows past
        // the fault point).
        done_ = true;
        return std::nullopt;
      }
      ++current_;
    }
    done_ = true;
    return std::nullopt;
  }

  Status status() const override {
    // analyzer: bounded(plan fan-in: one status probe per child operator)
    for (const auto& child : children_) {
      if (Status s = child->status(); !s.ok()) return s;
    }
    return Status::Ok();
  }

 private:
  std::vector<OperatorPtr> children_;
  size_t current_ = 0;
  bool done_ = false;
};

class VectorSourceOp : public Operator {
 public:
  explicit VectorSourceOp(std::vector<Row> rows) : rows_(std::move(rows)) {}

  std::optional<Row> Next() override {
    if (next_ >= rows_.size()) return std::nullopt;
    // Moved out, not copied: the source vector is owned by this operator
    // and each slot is read exactly once, so handing the row's array
    // buffers to the consumer saves one deep copy per emitted row.
    return std::move(rows_[next_++]);
  }

 private:
  std::vector<Row> rows_;
  size_t next_ = 0;
};

}  // namespace

OperatorPtr MakeVectorSource(std::vector<Row> rows) {
  return std::make_unique<VectorSourceOp>(std::move(rows));
}

OperatorPtr MakeIndexLookup(const EngineTable* table, IndexKey key,
                            BufferPool* pool) {
  return std::make_unique<IndexLookupOp>(table, key, pool);
}

OperatorPtr MakeIndexRangeScan(const EngineTable* table, IndexKey first_key,
                               IndexKey last_key, BufferPool* pool) {
  return std::make_unique<IndexRangeScanOp>(table, first_key, last_key, pool);
}

OperatorPtr MakeUnnest(OperatorPtr child, std::vector<int> keep_cols,
                       std::vector<int> array_cols, uint32_t limit_elems) {
  return std::make_unique<UnnestOp>(std::move(child), std::move(keep_cols),
                                    std::move(array_cols), limit_elems);
}

OperatorPtr MakeFilter(OperatorPtr child,
                       std::function<bool(const Row&)> predicate) {
  return std::make_unique<FilterOp>(std::move(child), std::move(predicate));
}

OperatorPtr MakeProject(OperatorPtr child,
                        std::function<Row(const Row&)> projection) {
  return std::make_unique<ProjectOp>(std::move(child), std::move(projection));
}

OperatorPtr MakeIndexJoin(OperatorPtr child, const EngineTable* table,
                          std::function<IndexKey(const Row&)> key_fn,
                          BufferPool* pool) {
  return std::make_unique<IndexJoinOp>(std::move(child), table,
                                       std::move(key_fn), pool);
}

OperatorPtr MakeIndexRangeJoin(OperatorPtr child, const EngineTable* table,
                               std::function<IndexKey(const Row&)> lo_fn,
                               std::function<IndexKey(const Row&)> hi_fn,
                               BufferPool* pool) {
  return std::make_unique<IndexRangeJoinOp>(
      std::move(child), table, std::move(lo_fn), std::move(hi_fn), pool);
}

OperatorPtr MakeHashJoin(OperatorPtr left, OperatorPtr right,
                         int left_key_col, int right_key_col) {
  return std::make_unique<HashJoinOp>(std::move(left), std::move(right),
                                      left_key_col, right_key_col);
}

OperatorPtr MakeHashAggregate(OperatorPtr child, int group_col, int value_col,
                              AggFn fn) {
  return std::make_unique<HashAggregateOp>(std::move(child), group_col,
                                           value_col, fn);
}

OperatorPtr MakeSort(OperatorPtr child,
                     std::function<bool(const Row&, const Row&)> less) {
  return std::make_unique<SortOp>(std::move(child), std::move(less));
}

OperatorPtr MakeLimit(OperatorPtr child, uint64_t n) {
  return std::make_unique<LimitOp>(std::move(child), n);
}

OperatorPtr MakeConcat(std::vector<OperatorPtr> children) {
  return std::make_unique<ConcatOp>(std::move(children));
}

Result<std::vector<Row>> Execute(Operator* root) {
  std::vector<Row> rows;
  // Top-level drain: checkpoint per emitted row so even a plan of pure
  // streaming operators over cached pages observes its deadline.
  while (auto row = root->Next()) {
    PTLDB_RETURN_IF_ERROR(CheckQueryCheckpoint());
    rows.push_back(std::move(*row));
  }
  PTLDB_RETURN_IF_ERROR(root->status());
  ThisThreadQueryCounters().rows_emitted += rows.size();
  return rows;
}

}  // namespace ptldb
