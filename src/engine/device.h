#ifndef PTLDB_ENGINE_DEVICE_H_
#define PTLDB_ENGINE_DEVICE_H_

#include <cstdint>
#include <string>

#include "engine/page.h"

namespace ptldb {

/// Latency model of a secondary-storage device.
///
/// The paper benchmarks PTLDB on a 7200 rpm Seagate HDD and a Crucial MX100
/// SSD. Neither device can be attached here, so the engine charges *virtual
/// time* per page access instead: a random page access pays the full
/// seek/lookup cost, an access to the page immediately following the
/// previous one pays only the sequential transfer cost. Benchmarks report
/// measured CPU time plus this modeled I/O time (see DESIGN.md).
struct DeviceProfile {
  std::string name;
  /// Cost of a page read that requires a seek (non-contiguous access).
  uint64_t random_read_ns = 0;
  /// Cost of reading the next contiguous page.
  uint64_t sequential_read_ns = 0;

  /// 7200 rpm SATA disk: ~8.5 ms average seek + rotational delay, then
  /// ~150 MB/s streaming (≈55 us per 8 KiB page).
  static DeviceProfile Hdd7200();
  /// SATA SSD: ~90 us random 8 KiB read, ~20 us streaming page.
  static DeviceProfile SataSsd();
  /// Zero-cost device for correctness tests.
  static DeviceProfile Ram();
};

/// Accumulates the modeled I/O time of one device. Accesses arrive from the
/// buffer pool (only cache misses reach the device).
class StorageDevice {
 public:
  explicit StorageDevice(DeviceProfile profile)
      : profile_(std::move(profile)) {}

  const DeviceProfile& profile() const { return profile_; }

  /// Charges one page read and returns its modeled cost in nanoseconds.
  uint64_t ChargeRead(PageId page) {
    const bool sequential = (page == last_page_ + 1);
    last_page_ = page;
    const uint64_t cost =
        sequential ? profile_.sequential_read_ns : profile_.random_read_ns;
    total_ns_ += cost;
    reads_ += 1;
    sequential_reads_ += sequential ? 1 : 0;
    return cost;
  }

  /// Total modeled I/O time since the last ResetStats().
  uint64_t total_ns() const { return total_ns_; }
  uint64_t reads() const { return reads_; }
  uint64_t sequential_reads() const { return sequential_reads_; }

  void ResetStats() {
    total_ns_ = 0;
    reads_ = 0;
    sequential_reads_ = 0;
    last_page_ = kInvalidPage - 1;
  }

 private:
  DeviceProfile profile_;
  uint64_t total_ns_ = 0;
  uint64_t reads_ = 0;
  uint64_t sequential_reads_ = 0;
  PageId last_page_ = kInvalidPage - 1;
};

}  // namespace ptldb

#endif  // PTLDB_ENGINE_DEVICE_H_
