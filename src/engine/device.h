#ifndef PTLDB_ENGINE_DEVICE_H_
#define PTLDB_ENGINE_DEVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "engine/page.h"

namespace ptldb {

/// Latency model of a secondary-storage device.
///
/// The paper benchmarks PTLDB on a 7200 rpm Seagate HDD and a Crucial MX100
/// SSD. Neither device can be attached here, so the engine charges *virtual
/// time* per page access instead: a random page access pays the full
/// seek/lookup cost, an access to the page immediately following the
/// previous one pays only the sequential transfer cost. Benchmarks report
/// measured CPU time plus this modeled I/O time (see DESIGN.md).
struct DeviceProfile {
  std::string name;
  /// Cost of a page read that requires a seek (non-contiguous access).
  uint64_t random_read_ns = 0;
  /// Cost of reading the next contiguous page.
  uint64_t sequential_read_ns = 0;

  /// 7200 rpm SATA disk: ~8.5 ms average seek + rotational delay, then
  /// ~150 MB/s streaming (≈55 us per 8 KiB page).
  static DeviceProfile Hdd7200();
  /// SATA SSD: ~90 us random 8 KiB read, ~20 us streaming page.
  static DeviceProfile SataSsd();
  /// Zero-cost device for correctness tests.
  static DeviceProfile Ram();
};

/// Deterministic, seedable failure regime of a StorageDevice. All
/// probabilities are rolled per page read from one Rng seeded by `seed`,
/// so a given (policy, access sequence) always fails the same way —
/// fault-soak runs are reproducible from their seed.
struct FaultPolicy {
  uint64_t seed = 0;
  /// Probability that a read fails once but succeeds on retry (controller
  /// hiccup, bus CRC error).
  double transient_error_prob = 0.0;
  /// Probability that a read marks its page permanently unreadable
  /// (grown media defect). Every later read of that page fails too.
  double sticky_error_prob = 0.0;
  /// Probability that a read delivers the page with one flipped bit.
  double corrupt_prob = 0.0;
  /// If true, a corrupted page keeps returning the same flipped bit
  /// (latent media corruption); if false the flip is transient (bus
  /// glitch) and a retry delivers clean bytes.
  bool sticky_corruption = false;
  /// REAL (wall-clock) delay slept per ReadPage, on top of the virtual
  /// latency model. The modeled nanoseconds above never block the CPU,
  /// so deadline/cancellation tests — which need a query to be slow in
  /// steady_clock terms — use this to make every cache miss genuinely
  /// take time. Zero (the default) sleeps nothing.
  uint64_t read_delay_ns = 0;

  bool enabled() const {
    return transient_error_prob > 0.0 || sticky_error_prob > 0.0 ||
           corrupt_prob > 0.0;
  }
};

/// Accumulates the modeled I/O time of one device. Accesses arrive from the
/// buffer pool (only cache misses reach the device). With a FaultPolicy
/// installed, ReadPage also injects deterministic failures.
class StorageDevice {
 public:
  explicit StorageDevice(DeviceProfile profile)
      : profile_(std::move(profile)) {}

  const DeviceProfile& profile() const { return profile_; }

  /// Charges one page read and returns its modeled cost in nanoseconds.
  /// Stat counters are relaxed atomics so observers (metrics snapshots,
  /// io_time_ns) may read them from any thread. The non-counter access
  /// state (last_page_, fault Rng, sticky-fault maps) is guarded by an
  /// internal mutex: the buffer pool is sharded, so misses on different
  /// shards reach the device concurrently and no single pool latch
  /// serializes it anymore.
  uint64_t ChargeRead(PageId page) {
    MutexLock lock(mu_);
    return ChargeReadLocked(page);
  }

  /// Reads one page: charges the latency model, then (under a FaultPolicy)
  /// rolls for injected failures. On success copies `src` into `frame`,
  /// possibly with an injected bit flip — the authoritative disk image is
  /// never mutated; corruption happens on the wire, where the BufferPool's
  /// checksum verification catches it.
  Status ReadPage(PageId id, const Page& src, Page* frame) {
    // Real-time slowness is injected *before* taking mu_, so concurrent
    // readers sleep in parallel instead of convoying on the device lock.
    const uint64_t delay = read_delay_ns_.load(std::memory_order_relaxed);
    if (delay > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(delay));
    }
    MutexLock lock(mu_);
    ChargeReadLocked(id);
    if (fault_.enabled()) {
      if (bad_pages_.count(id) > 0) {
        read_errors_.fetch_add(1, std::memory_order_relaxed);
        return Status::IoError("sticky bad page " + std::to_string(id));
      }
      if (fault_.sticky_error_prob > 0.0 &&
          rng_.NextBool(fault_.sticky_error_prob)) {
        bad_pages_.insert(id);
        read_errors_.fetch_add(1, std::memory_order_relaxed);
        return Status::IoError("page " + std::to_string(id) +
                               " went bad (sticky)");
      }
      if (fault_.transient_error_prob > 0.0 &&
          rng_.NextBool(fault_.transient_error_prob)) {
        read_errors_.fetch_add(1, std::memory_order_relaxed);
        return Status::IoError("transient read error on page " +
                               std::to_string(id));
      }
    }
    frame->bytes = src.bytes;
    if (fault_.enabled()) {
      const auto it = sticky_flips_.find(id);
      if (it != sticky_flips_.end()) {
        FlipBit(frame, it->second);
        corruptions_injected_.fetch_add(1, std::memory_order_relaxed);
      } else if (fault_.corrupt_prob > 0.0 &&
                 rng_.NextBool(fault_.corrupt_prob)) {
        const uint64_t bit = rng_.NextBelow(kPageSize * 8);
        if (fault_.sticky_corruption) sticky_flips_.emplace(id, bit);
        FlipBit(frame, bit);
        corruptions_injected_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return Status::Ok();
  }

  /// Charges modeled wait time that is not a page transfer (retry backoff).
  void ChargeWait(uint64_t ns) {
    wait_ns_.fetch_add(ns, std::memory_order_relaxed);
    // Per-thread mirror: the charging thread is the query's thread, so
    // this keeps a query's I/O attribution exact under concurrency
    // (total_ns() mixes every thread's charges together).
    ThisThreadQueryCounters().modeled_io_ns += ns;
  }

  /// Installs (or clears, with a default-constructed policy) the failure
  /// regime and reseeds the fault Rng. Sticky state is reset.
  void set_fault_policy(const FaultPolicy& policy) {
    MutexLock lock(mu_);
    fault_ = policy;
    rng_ = Rng(policy.seed);
    bad_pages_.clear();
    sticky_flips_.clear();
    // Mirrored into an atomic so ReadPage can sleep without holding mu_.
    read_delay_ns_.store(policy.read_delay_ns, std::memory_order_relaxed);
  }
  FaultPolicy fault_policy() const {
    MutexLock lock(mu_);
    return fault_;
  }

  /// Forgets the last accessed page so the next read is billed as random.
  /// Called on cache drops: after a real server restart the head position
  /// and the device's internal caches are unknown, so crediting the first
  /// post-drop read as sequential would understate cold-cache cost.
  void ResetLocality() {
    MutexLock lock(mu_);
    last_page_ = kInvalidPage - 1;
  }

  /// Total modeled I/O time since the last ResetStats(): page transfers
  /// plus retry-backoff waits.
  uint64_t total_ns() const { return read_ns() + wait_ns(); }
  /// Page-transfer time only / retry-backoff wait time only.
  uint64_t read_ns() const { return read_ns_.load(std::memory_order_relaxed); }
  uint64_t wait_ns() const { return wait_ns_.load(std::memory_order_relaxed); }
  uint64_t reads() const { return reads_.load(std::memory_order_relaxed); }
  uint64_t sequential_reads() const {
    return sequential_reads_.load(std::memory_order_relaxed);
  }
  /// Injected-fault observability (never reset by ResetStats; the soak
  /// harness uses these to confirm faults actually fired).
  uint64_t read_errors() const {
    return read_errors_.load(std::memory_order_relaxed);
  }
  uint64_t corruptions_injected() const {
    return corruptions_injected_.load(std::memory_order_relaxed);
  }

  /// Resets every accumulated time/count of normal operation — transfer
  /// ns, retry/backoff wait ns, read counts — so a measurement window
  /// starts from a true zero. Injected-fault counters are deliberately
  /// excluded (see above).
  void ResetStats() {
    read_ns_.store(0, std::memory_order_relaxed);
    wait_ns_.store(0, std::memory_order_relaxed);
    reads_.store(0, std::memory_order_relaxed);
    sequential_reads_.store(0, std::memory_order_relaxed);
    ResetLocality();
  }

 private:
  static void FlipBit(Page* frame, uint64_t bit) {
    frame->bytes[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  }

  /// Sequential-vs-random billing; caller holds mu_ (ReadPage takes the
  /// lock once and must not re-enter the public ChargeRead).
  uint64_t ChargeReadLocked(PageId page) PTLDB_REQUIRES(mu_) {
    const bool sequential = (page == last_page_ + 1);
    last_page_ = page;
    const uint64_t cost =
        sequential ? profile_.sequential_read_ns : profile_.random_read_ns;
    read_ns_.fetch_add(cost, std::memory_order_relaxed);
    // Mirrored per-thread (see ChargeWait): read_ns_ + wait_ns_ deltas on
    // one thread always equal its modeled_io_ns delta.
    ThisThreadQueryCounters().modeled_io_ns += cost;
    reads_.fetch_add(1, std::memory_order_relaxed);
    if (sequential) sequential_reads_.fetch_add(1, std::memory_order_relaxed);
    return cost;
  }

  DeviceProfile profile_;
  /// Device mutex: the *bottom* of the lock hierarchy. A buffer-pool
  /// shard latch may be held while acquiring it (miss path); the device
  /// never calls back up into the pool.
  mutable Mutex mu_;
  std::atomic<uint64_t> read_ns_{0};
  std::atomic<uint64_t> wait_ns_{0};
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> sequential_reads_{0};
  PageId last_page_ PTLDB_GUARDED_BY(mu_) = kInvalidPage - 1;

  FaultPolicy fault_ PTLDB_GUARDED_BY(mu_);
  /// Copy of fault_.read_delay_ns readable before mu_ is taken.
  std::atomic<uint64_t> read_delay_ns_{0};
  Rng rng_ PTLDB_GUARDED_BY(mu_) = Rng(0);
  std::unordered_set<PageId> bad_pages_ PTLDB_GUARDED_BY(mu_);
  std::unordered_map<PageId, uint64_t> sticky_flips_ PTLDB_GUARDED_BY(mu_);
  std::atomic<uint64_t> read_errors_{0};
  std::atomic<uint64_t> corruptions_injected_{0};
};

}  // namespace ptldb

#endif  // PTLDB_ENGINE_DEVICE_H_
