#include "engine/database.h"

#include <algorithm>

namespace ptldb {

Status EngineTable::BulkLoad(std::vector<std::pair<IndexKey, Row>> rows) {
  if (num_rows_ != 0) return Status::Internal("table already loaded");
  for (size_t i = 1; i < rows.size(); ++i) {
    if (rows[i - 1].first >= rows[i].first) {
      return Status::InvalidArgument("bulk-load keys must strictly increase");
    }
  }
  std::vector<std::pair<IndexKey, RowLocator>> entries;
  entries.reserve(rows.size());
  for (const auto& [key, row] : rows) {
    if (row.size() != schema_.num_columns()) {
      return Status::InvalidArgument("row arity mismatch in " + name_);
    }
    entries.emplace_back(key, heap_.Append(row, schema_));
  }
  index_.BulkLoad(entries);
  num_rows_ = rows.size();
  // Seal the freshly written heap + index pages so every later read can be
  // verified against its stamp.
  store_->StampChecksums();
  return Status::Ok();
}

Result<std::optional<Row>> EngineTable::Get(IndexKey key,
                                            BufferPool* pool) const {
  auto locator = index_.Find(key, pool);
  PTLDB_RETURN_IF_ERROR(locator.status());
  if (!locator->has_value()) return std::optional<Row>{};
  auto row = heap_.Read(**locator, schema_, pool);
  PTLDB_RETURN_IF_ERROR(row.status());
  return std::optional<Row>{std::move(*row)};
}

Result<EngineTable*> EngineDatabase::CreateTable(const std::string& name,
                                                 Schema schema,
                                                 uint32_t pk_columns) {
  if (tables_.count(name) != 0) {
    return Status::InvalidArgument("table exists: " + name);
  }
  if (pk_columns == 0 || pk_columns > schema.num_columns()) {
    return Status::InvalidArgument("bad pk column count for " + name);
  }
  auto table = std::make_unique<EngineTable>(name, std::move(schema),
                                             pk_columns, &store_);
  EngineTable* raw = table.get();
  tables_.emplace(name, std::move(table));
  return raw;
}

EngineTable* EngineDatabase::FindTable(const std::string& name) {
  const auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const EngineTable* EngineDatabase::FindTable(const std::string& name) const {
  const auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

uint64_t EngineDatabase::total_size_bytes() const {
  uint64_t total = 0;
  for (const auto& [_, table] : tables_) total += table->size_bytes();
  return total;
}

std::vector<std::string> EngineDatabase::table_names() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

}  // namespace ptldb
