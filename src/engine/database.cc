#include "engine/database.h"

#include <algorithm>

namespace ptldb {

Status EngineTable::BulkLoad(std::vector<std::pair<IndexKey, Row>> rows) {
  if (num_rows_ != 0) return Status::Internal("table already loaded");
  for (size_t i = 1; i < rows.size(); ++i) {
    if (rows[i - 1].first >= rows[i].first) {
      return Status::InvalidArgument("bulk-load keys must strictly increase");
    }
  }
  std::vector<std::pair<IndexKey, RowLocator>> entries;
  entries.reserve(rows.size());
  for (const auto& [key, row] : rows) {
    if (row.size() != schema_.num_columns()) {
      return Status::InvalidArgument("row arity mismatch in " + name_);
    }
    entries.emplace_back(key, heap_.Append(row, schema_));
  }
  index_.BulkLoad(entries);
  num_rows_ = rows.size();
  // Seal the freshly written heap + index pages so every later read can be
  // verified against its stamp.
  store_->StampChecksums();
  return Status::Ok();
}

Result<std::optional<Row>> EngineTable::Get(IndexKey key,
                                            BufferPool* pool) const {
  ++ThisThreadQueryCounters().index_seeks;
  auto locator = index_.Find(key, pool);
  PTLDB_RETURN_IF_ERROR(locator.status());
  if (!locator->has_value()) return std::optional<Row>{};
  ++ThisThreadQueryCounters().tuples_scanned;
  auto row = heap_.Read(**locator, schema_, pool);
  PTLDB_RETURN_IF_ERROR(row.status());
  return std::optional<Row>{std::move(*row)};
}

Result<bool> EngineTable::GetInto(IndexKey key, BufferPool* pool,
                                  RowScratch* scratch) const {
  ++ThisThreadQueryCounters().index_seeks;
  auto locator = index_.Find(key, pool);
  PTLDB_RETURN_IF_ERROR(locator.status());
  if (!locator->has_value()) return false;
  ++ThisThreadQueryCounters().tuples_scanned;
  PTLDB_RETURN_IF_ERROR(heap_.ReadInto(**locator, schema_, pool, scratch));
  return true;
}

Result<EngineTable*> EngineDatabase::CreateTable(const std::string& name,
                                                 Schema schema,
                                                 uint32_t pk_columns) {
  if (tables_.count(name) != 0) {
    return Status::InvalidArgument("table exists: " + name);
  }
  if (pk_columns == 0 || pk_columns > schema.num_columns()) {
    return Status::InvalidArgument("bad pk column count for " + name);
  }
  auto table = std::make_unique<EngineTable>(name, std::move(schema),
                                             pk_columns, &store_);
  EngineTable* raw = table.get();
  tables_.emplace(name, std::move(table));
  return raw;
}

EngineTable* EngineDatabase::FindTable(const std::string& name) {
  const auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const EngineTable* EngineDatabase::FindTable(const std::string& name) const {
  const auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

uint64_t EngineDatabase::total_size_bytes() const {
  uint64_t total = 0;
  for (const auto& [_, table] : tables_) total += table->size_bytes();
  return total;
}

std::vector<std::string> EngineDatabase::table_names() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

EngineCounters EngineDatabase::CaptureCounters() const {
  EngineCounters out;
  out.pool_hits = pool_.hits();
  out.pool_misses = pool_.misses();
  out.device_reads = device_.reads();
  out.device_read_ns = device_.read_ns();
  out.device_wait_ns = device_.wait_ns();
  out.local = ThisThreadQueryCounters();
  return out;
}

MetricsSnapshot EngineDatabase::Snapshot() const {
  MetricsSnapshot snap = metrics_.Snapshot();
  snap.counters["device.reads"] = device_.reads();
  snap.counters["device.sequential_reads"] = device_.sequential_reads();
  snap.counters["device.read_ns"] = device_.read_ns();
  snap.counters["device.wait_ns"] = device_.wait_ns();
  snap.counters["device.read_errors"] = device_.read_errors();
  snap.counters["device.corruptions_injected"] =
      device_.corruptions_injected();
  snap.counters["bufferpool.hits"] = pool_.hits();
  snap.counters["bufferpool.misses"] = pool_.misses();
  snap.counters["bufferpool.evictions"] = pool_.evictions();
  snap.counters["bufferpool.retries"] = pool_.retries();
  snap.counters["bufferpool.checksum_errors"] = pool_.checksum_errors();
  snap.gauges["bufferpool.resident_pages"] =
      static_cast<int64_t>(pool_.resident_pages());
  snap.gauges["bufferpool.quarantined_pages"] =
      static_cast<int64_t>(pool_.quarantined_pages());
  snap.gauges["bufferpool.pinned_pages"] =
      static_cast<int64_t>(pool_.pinned_pages());
  snap.gauges["bufferpool.num_shards"] =
      static_cast<int64_t>(pool_.num_shards());
  for (uint32_t s = 0; s < pool_.num_shards(); ++s) {
    const BufferPool::ShardStats stats = pool_.shard_stats(s);
    const std::string prefix = "bufferpool.shard" + std::to_string(s) + ".";
    snap.counters[prefix + "hits"] = stats.hits;
    snap.counters[prefix + "misses"] = stats.misses;
    snap.counters[prefix + "evictions"] = stats.evictions;
    snap.gauges[prefix + "resident_pages"] =
        static_cast<int64_t>(stats.resident_pages);
    snap.gauges[prefix + "pinned_pages"] =
        static_cast<int64_t>(stats.pinned_pages);
  }
  return snap;
}

ScopedEngineSpan::~ScopedEngineSpan() {
  if (!trace_) return;
  const EngineCounters end = db_->CaptureCounters();
  const LocalQueryCounters local = end.local - begin_.local;
  const auto attach = [&](const char* key, uint64_t delta) {
    if (delta != 0) trace_->AddStat(key, delta);
  };
  attach("pool.hits", end.pool_hits - begin_.pool_hits);
  attach("pool.misses", end.pool_misses - begin_.pool_misses);
  attach("device.reads", end.device_reads - begin_.device_reads);
  attach("device.read_ns", end.device_read_ns - begin_.device_read_ns);
  attach("device.wait_ns", end.device_wait_ns - begin_.device_wait_ns);
  attach("index.seeks", local.index_seeks);
  attach("tuples.scanned", local.tuples_scanned);
  attach("rows.emitted", local.rows_emitted);
  attach("hubs.merged", local.hubs_merged);
  attach("label.comparisons", local.label_comparisons);
  attach("vm.steps", local.vm_steps);
  trace_->End();
}

}  // namespace ptldb
