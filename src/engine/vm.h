#ifndef PTLDB_ENGINE_VM_H_
#define PTLDB_ENGINE_VM_H_

#include <array>
#include <cstdint>

#include "common/time_util.h"

namespace ptldb {

class EngineTable;
class LabelStore;

/// Compiled query programs: each of the paper's Codes 1-4 (v2v EA/LD/SD,
/// kNN and one-to-many in both directions) compiles once — at
/// PtldbDatabase::Build for the v2v family, at AddTargetSet for the
/// bucket family — into a short register program of fused macro-ops that
/// ptldb/compiled.cc executes against pinned pages with all scratch in a
/// per-request bump arena (engine/arena.h). The volcano interpreter
/// (engine/exec.h) remains the general-SQL surface and the fallback path
/// when a program is invalid (e.g. derived tables quarantined at build).
///
/// The ops are deliberately coarse: one instruction is one whole phase of
/// a paper query (load a label, merge two labels, scan bucket rows for
/// one n1 label, drain a top-k aggregate). Fine-grained per-row bytecode
/// would just re-create the interpreter's dispatch cost; the win here is
/// that inside each macro-op the loop is monomorphic, allocation-free and
/// checkpointed, while the program layer keeps query *selection* a data
/// lookup instead of a code path.
///
/// Instrumentation: executing a program bumps
/// LocalQueryCounters::vm_steps — one unit per instruction dispatched,
/// per bucket probed and per candidate tuple examined — alongside the
/// same index_seeks / tuples_scanned / hubs_merged / label_comparisons
/// the interpreter maintains, so EXPLAIN ANALYZE span stats still equal
/// engine counters exactly on compiled plans.
enum class VmOp : uint8_t {
  kHalt = 0,       ///< End of program.
  kLoadOut,        ///< r[a] = outbound label of the query source stop.
  kLoadIn,         ///< r[a] = inbound label of the query target stop.
  kMergeEa,        ///< result = EA common-hub merge of r[a], r[b].
  kMergeLd,        ///< result = LD common-hub merge of r[a], r[b].
  kMergeSd,        ///< result = SD common-hub merge of r[a], r[b].
  kScanEaBuckets,  ///< Fused Code-3 scan: r[a] n1 label x EA bucket rows.
  kScanLdBuckets,  ///< Fused Code-4 scan: r[a] n1 label x LD bucket rows.
  kEmitTopK,       ///< Drain aggregate, sort (a: 0=time asc, 1=desc), cut k.
};

struct VmInstr {
  VmOp op = VmOp::kHalt;
  uint8_t a = 0;  ///< Register / direction operand (op-specific).
  uint8_t b = 0;  ///< Second register operand (merges only).
};

/// A compiled query program plus the immutable plan constants it runs
/// against. Plain data, trivially copyable: PtldbDatabase stores one per
/// query type and hands out copies by value (target_sets() snapshots
/// include them). The EngineTable / LabelStore pointers are borrowed from
/// the owning database and stay valid for its lifetime — the same
/// contract as the interpreter's plan nodes.
struct VmProgram {
  static constexpr size_t kMaxCode = 8;

  std::array<VmInstr, kMaxCode> code{};
  uint8_t num_instrs = 0;

  /// Bound inputs (resolved once at compile time, never re-looked-up).
  const EngineTable* lout = nullptr;    ///< Outbound label table (raw tier).
  const EngineTable* lin = nullptr;     ///< Inbound label table (raw tier).
  const EngineTable* buckets = nullptr;  ///< EA or LD bucket table (sets).
  const LabelStore* labels = nullptr;   ///< Compressed tier, else nullptr.

  /// Plan constants for the bucket family.
  Duration bucket_seconds = Duration::Zero();
  int32_t max_bucket = 0;
  uint32_t kmax = 0;

  /// Sentinel an EA/LD v2v program returns when no journey exists / a
  /// label is absent (Infinity for EA, NegInfinity for LD). SD programs
  /// answer in the Duration domain; their executor supplies
  /// Duration::Infinity() itself.
  EventTime empty_result = EventTime::Infinity();

  /// False when compilation could not bind every input (e.g. a derived
  /// table failed to build); callers fall back to the interpreter.
  bool valid = false;

  void Push(VmOp op, uint8_t a = 0, uint8_t b = 0) {
    code[num_instrs++] = VmInstr{op, a, b};
  }
};

}  // namespace ptldb

#endif  // PTLDB_ENGINE_VM_H_
