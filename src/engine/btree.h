#ifndef PTLDB_ENGINE_BTREE_H_
#define PTLDB_ENGINE_BTREE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "engine/buffer_pool.h"
#include "engine/heap_file.h"
#include "engine/pager.h"

namespace ptldb {

/// Index key: a 64-bit integer. Composite keys such as the (hub, td) and
/// (hub, dephour) primary keys of the PTLDB tables are packed into one
/// int64 with MakeCompositeKey.
using IndexKey = int64_t;

/// Packs two 32-bit components into an order-preserving composite key
/// (lexicographic (hi, lo) == numeric order of the packed key). Components
/// must be non-negative, which PTLDB ids and timestamps are.
constexpr IndexKey MakeCompositeKey(int32_t hi, int32_t lo) {
  return (static_cast<IndexKey>(hi) << 32) |
         static_cast<IndexKey>(static_cast<uint32_t>(lo));
}

/// Bulk-loaded, immutable B+Tree mapping IndexKey -> RowLocator. Pages live
/// in the shared PageStore, so index traversal is charged to the device
/// model like any other page access — the primary-key lookups of every
/// PTLDB query pay for their index I/O.
///
/// Immutability mirrors the paper's workload: all PTLDB tables are built
/// once during preprocessing and only read afterwards (like SST files in an
/// LSM engine). Leaves are chained for range scans (the naive kNN query
/// needs a (hub, td >= x) range join).
class BTree {
 public:
  explicit BTree(PageStore* store) : store_(store) {}

  /// Builds the tree from entries sorted by strictly increasing key.
  /// May be called once.
  void BulkLoad(const std::vector<std::pair<IndexKey, RowLocator>>& entries);

  /// Exact-match lookup through the buffer pool.
  std::optional<RowLocator> Find(IndexKey key, BufferPool* pool) const;

  /// Forward iterator over leaf entries, positioned by SeekNotBefore.
  class Iterator {
   public:
    bool Valid() const { return page_ != kInvalidPage; }
    IndexKey key() const;
    RowLocator locator() const;
    void Next();

   private:
    friend class BTree;
    Iterator(const BTree* tree, BufferPool* pool, PageId page, uint32_t slot)
        : tree_(tree), pool_(pool), page_(page), slot_(slot) {}

    const BTree* tree_;
    BufferPool* pool_;
    PageId page_;
    uint32_t slot_;
  };

  /// Iterator at the first entry with key >= `key` (invalid when none).
  Iterator SeekNotBefore(IndexKey key, BufferPool* pool) const;

  uint64_t num_pages() const { return num_pages_; }
  uint32_t height() const { return height_; }
  uint64_t num_entries() const { return num_entries_; }

 private:
  PageStore* store_;
  PageId root_ = kInvalidPage;
  uint32_t height_ = 0;  // 0 = empty, 1 = root is a leaf.
  uint64_t num_pages_ = 0;
  uint64_t num_entries_ = 0;
};

}  // namespace ptldb

#endif  // PTLDB_ENGINE_BTREE_H_
