#ifndef PTLDB_ENGINE_BTREE_H_
#define PTLDB_ENGINE_BTREE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/status.h"
#include "engine/buffer_pool.h"
#include "engine/heap_file.h"
#include "engine/pager.h"

namespace ptldb {

/// Index key: a 64-bit integer. Composite keys such as the (hub, td) and
/// (hub, dephour) primary keys of the PTLDB tables are packed into one
/// int64 with MakeCompositeKey.
using IndexKey = int64_t;

/// Packs two 32-bit components into an order-preserving composite key
/// (lexicographic (hi, lo) == numeric order of the packed key). Components
/// must be non-negative, which PTLDB ids and timestamps are.
constexpr IndexKey MakeCompositeKey(int32_t hi, int32_t lo) {
  return (static_cast<IndexKey>(hi) << 32) |
         static_cast<IndexKey>(static_cast<uint32_t>(lo));
}

/// Bulk-loaded, immutable B+Tree mapping IndexKey -> RowLocator. Pages live
/// in the shared PageStore, so index traversal is charged to the device
/// model like any other page access — the primary-key lookups of every
/// PTLDB query pay for their index I/O.
///
/// Immutability mirrors the paper's workload: all PTLDB tables are built
/// once during preprocessing and only read afterwards (like SST files in an
/// LSM engine). Leaves are chained for range scans (the naive kNN query
/// needs a (hub, td >= x) range join).
///
/// Every traversal is fallible: page reads surface the BufferPool's
/// kIoError/kCorruption, and structural invariants (node type per level,
/// entry counts within page capacity, child pointers inside the store) are
/// validated instead of trusted, so a page that dodged checksum detection
/// still cannot crash the process or send the descent into a cycle.
class BTree {
 public:
  explicit BTree(PageStore* store) : store_(store) {}

  /// Builds the tree from entries sorted by strictly increasing key.
  /// May be called once.
  void BulkLoad(const std::vector<std::pair<IndexKey, RowLocator>>& entries);

  /// Exact-match lookup through the buffer pool. The outer Result reports
  /// I/O or corruption; the inner optional is empty when the key is absent.
  Result<std::optional<RowLocator>> Find(IndexKey key, BufferPool* pool) const;

  /// Forward iterator over leaf entries, positioned by SeekNotBefore.
  /// The current entry is cached at positioning time, so key()/locator()
  /// never fault; Next() may, in which case Valid() becomes false and
  /// status() holds the error (a clean end-of-scan leaves status() OK).
  ///
  /// The iterator remembers (page id, slot), never a frame pointer: each
  /// Load()/Next() re-fetches through the pool and drops its PageGuard
  /// before returning, so an open cursor holds no pins between calls and
  /// can be kept across arbitrarily long query plans without starving a
  /// tiny pool.
  class Iterator {
   public:
    bool Valid() const { return valid_; }
    const Status& status() const { return status_; }
    IndexKey key() const { return key_; }
    RowLocator locator() const { return locator_; }
    void Next();

   private:
    friend class BTree;
    Iterator(const BTree* tree, BufferPool* pool)
        : tree_(tree), pool_(pool) {}

    /// Caches the entry at (page_, slot_); clears valid_ on any fault.
    void Load();

    const BTree* tree_;
    BufferPool* pool_;
    PageId page_ = kInvalidPage;
    uint32_t slot_ = 0;
    bool valid_ = false;
    IndexKey key_ = 0;
    RowLocator locator_;
    Status status_ = Status::Ok();
  };

  /// Iterator at the first entry with key >= `key`. Invalid when none
  /// exists or when the descent faulted (distinguished by it.status()).
  Iterator SeekNotBefore(IndexKey key, BufferPool* pool) const;

  uint64_t num_pages() const { return num_pages_; }
  uint32_t height() const { return height_; }
  uint64_t num_entries() const { return num_entries_; }

 private:
  /// Walks from the root to the leaf responsible for `key`. Returns the
  /// leaf page id; the caller re-fetches it (cache hit) to read entries.
  Result<PageId> DescendToLeaf(IndexKey key, BufferPool* pool) const;

  PageStore* store_;
  PageId root_ = kInvalidPage;
  uint32_t height_ = 0;  // 0 = empty, 1 = root is a leaf.
  uint64_t num_pages_ = 0;
  uint64_t num_entries_ = 0;
};

}  // namespace ptldb

#endif  // PTLDB_ENGINE_BTREE_H_
