#ifndef PTLDB_ENGINE_HEAP_FILE_H_
#define PTLDB_ENGINE_HEAP_FILE_H_

#include <cstdint>

#include "engine/buffer_pool.h"
#include "engine/pager.h"
#include "engine/value.h"

namespace ptldb {

/// Upper bound on a single serialized row (sanity check when decoding a
/// locator that may itself come from a corrupt page).
inline constexpr uint32_t kMaxRowBytes = 1u << 28;  // 256 MiB

/// Location of one serialized row inside the page store.
struct RowLocator {
  uint64_t offset = 0;  ///< Absolute byte offset (page_id * kPageSize + in-page).
  uint32_t length = 0;  ///< Serialized length in bytes.

  friend bool operator==(const RowLocator&, const RowLocator&) = default;
};

/// Append-only heap storage for rows. Rows are serialized back-to-back and
/// may span page boundaries — the PTLDB label rows routinely exceed 8 KiB
/// (PostgreSQL handles this with TOAST; this engine with spanning rows).
/// Reading a row therefore costs one random page access plus sequential
/// accesses for the row's remaining pages, which is exactly the I/O shape
/// the paper's design discussion relies on.
///
/// Appends happen only during bulk load and write directly to the page
/// store; reads go through the buffer pool and are charged to the device.
class HeapFile {
 public:
  explicit HeapFile(PageStore* store) : store_(store) {}

  /// Serializes and appends a row. The schema defines the column layout.
  RowLocator Append(const Row& row, const Schema& schema);

  /// Reads a row back through the buffer pool (charges device on misses).
  /// Returns kIoError/kCorruption from the pool, or kCorruption when the
  /// locator or the serialized bytes fail validation (garbage locators
  /// must never crash the process or fabricate a row).
  Result<Row> Read(const RowLocator& locator, const Schema& schema,
                   BufferPool* pool) const;

  uint64_t num_pages() const { return num_pages_; }

 private:
  void AppendBytes(const uint8_t* data, size_t size);

  PageStore* store_;
  PageId current_page_ = kInvalidPage;
  uint32_t page_offset_ = kPageSize;  // Forces allocation on first append.
  uint64_t num_pages_ = 0;
};

/// Serialized size of a row under `schema`.
uint32_t SerializedRowSize(const Row& row, const Schema& schema);

}  // namespace ptldb

#endif  // PTLDB_ENGINE_HEAP_FILE_H_
