#ifndef PTLDB_ENGINE_HEAP_FILE_H_
#define PTLDB_ENGINE_HEAP_FILE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "engine/buffer_pool.h"
#include "engine/pager.h"
#include "engine/value.h"

namespace ptldb {

/// Upper bound on a single serialized row (sanity check when decoding a
/// locator that may itself come from a corrupt page).
inline constexpr uint32_t kMaxRowBytes = 1u << 28;  // 256 MiB

/// Location of one serialized row inside the page store.
struct RowLocator {
  uint64_t offset = 0;  ///< Absolute byte offset (page_id * kPageSize + in-page).
  uint32_t length = 0;  ///< Serialized length in bytes.

  friend bool operator==(const RowLocator&, const RowLocator&) = default;
};

/// Reusable decode target for HeapFile::ReadInto: the row's raw bytes,
/// its array payloads and its column directory live in buffers that are
/// cleared — not freed — between reads, so a warm reader (the compiled
/// query VM, see engine/vm.h) materializes rows with zero steady-state
/// heap allocation. Column values are viewed through scalar()/array(),
/// which index into the shared `ints` pool; views are invalidated by the
/// next ReadInto against the same scratch.
struct RowScratch {
  struct Column {
    int32_t scalar = 0;    ///< Value when !is_array.
    uint32_t offset = 0;   ///< Start in `ints` when is_array.
    uint32_t length = 0;   ///< Element count when is_array.
    bool is_array = false;
  };

  std::vector<uint8_t> bytes;  ///< Serialized row bytes (page gather target).
  std::vector<int32_t> ints;   ///< Decoded array payloads, back to back.
  std::vector<Column> cols;    ///< One entry per schema column.

  int32_t scalar(size_t col) const { return cols[col].scalar; }
  std::span<const int32_t> array(size_t col) const {
    const Column& c = cols[col];
    return {ints.data() + c.offset, c.length};
  }
};

/// Append-only heap storage for rows. Rows are serialized back-to-back and
/// may span page boundaries — the PTLDB label rows routinely exceed 8 KiB
/// (PostgreSQL handles this with TOAST; this engine with spanning rows).
/// Reading a row therefore costs one random page access plus sequential
/// accesses for the row's remaining pages, which is exactly the I/O shape
/// the paper's design discussion relies on.
///
/// Appends happen only during bulk load and write directly to the page
/// store; reads go through the buffer pool and are charged to the device.
class HeapFile {
 public:
  explicit HeapFile(PageStore* store) : store_(store) {}

  /// Serializes and appends a row. The schema defines the column layout.
  RowLocator Append(const Row& row, const Schema& schema);

  /// Reads a row back through the buffer pool (charges device on misses).
  /// Returns kIoError/kCorruption from the pool, or kCorruption when the
  /// locator or the serialized bytes fail validation (garbage locators
  /// must never crash the process or fabricate a row).
  Result<Row> Read(const RowLocator& locator, const Schema& schema,
                   BufferPool* pool) const;

  /// Allocation-free variant of Read for the compiled query path: decodes
  /// into `scratch`'s reusable buffers instead of building a Row. Applies
  /// the exact same locator / bounds / truncation validation as Read —
  /// the two must never diverge on what counts as a corrupt row.
  Status ReadInto(const RowLocator& locator, const Schema& schema,
                  BufferPool* pool, RowScratch* scratch) const;

  uint64_t num_pages() const { return num_pages_; }

 private:
  void AppendBytes(const uint8_t* data, size_t size);

  PageStore* store_;
  PageId current_page_ = kInvalidPage;
  uint32_t page_offset_ = kPageSize;  // Forces allocation on first append.
  uint64_t num_pages_ = 0;
};

/// Serialized size of a row under `schema`.
uint32_t SerializedRowSize(const Row& row, const Schema& schema);

}  // namespace ptldb

#endif  // PTLDB_ENGINE_HEAP_FILE_H_
