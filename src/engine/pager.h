#ifndef PTLDB_ENGINE_PAGER_H_
#define PTLDB_ENGINE_PAGER_H_

#include <cassert>
#include <memory>
#include <vector>

#include "common/checksum.h"
#include "engine/device.h"
#include "engine/page.h"

namespace ptldb {

/// The "disk image": all pages of one database. Page contents are held in
/// process memory (the machine running this reproduction has no attachable
/// HDD/SSD); every access is routed through the BufferPool, which charges
/// the device model on cache misses. Writes happen only during bulk load
/// (before benchmarking) and are not charged.
///
/// Each page carries a CRC-32C stamp modeling an on-disk page trailer.
/// Mutable access marks the page dirty; StampChecksums() seals all dirty
/// pages (called at the end of bulk load). The BufferPool verifies the
/// stamp of every stamped page it reads from the device, so a bit flip
/// anywhere between disk image and delivered frame surfaces as
/// Status::kCorruption instead of a silently wrong query answer.
///
/// Concurrency contract: the store is write-once, read-many. Allocate(),
/// mutable page() and StampChecksums() happen single-threaded during bulk
/// load; once the load is stamped, the image is immutable and the sharded
/// BufferPool may call num_pages()/page(id) const/stamped()/checksum()
/// from any number of threads without locking. (CorruptBitForTest is a
/// test-only exception and must not race live Fetches.)
class PageStore {
 public:
  PageId Allocate() {
    pages_.push_back(std::make_unique<Page>());
    checksums_.push_back(0);
    stamped_.push_back(false);
    return pages_.size() - 1;
  }

  uint64_t num_pages() const { return pages_.size(); }
  uint64_t size_bytes() const { return pages_.size() * kPageSize; }

  /// Mutable access (bulk load only); invalidates the page's stamp until
  /// the next StampChecksums().
  Page& page(PageId id) {
    assert(id < pages_.size());
    stamped_[id] = false;
    return *pages_[id];
  }
  const Page& page(PageId id) const {
    assert(id < pages_.size());
    return *pages_[id];
  }

  /// Seals every dirty page with the CRC-32C of its current contents.
  void StampChecksums() {
    for (PageId id = 0; id < pages_.size(); ++id) {
      if (!stamped_[id]) {
        checksums_[id] = Crc32c(pages_[id]->bytes.data(), kPageSize);
        stamped_[id] = true;
      }
    }
  }

  bool stamped(PageId id) const { return id < stamped_.size() && stamped_[id]; }
  uint32_t checksum(PageId id) const {
    assert(id < checksums_.size());
    return checksums_[id];
  }

  /// Flips one bit of the stored image *without* updating the stamp —
  /// models latent media corruption for tests. `bit` < kPageSize * 8.
  void CorruptBitForTest(PageId id, uint64_t bit) {
    assert(id < pages_.size() && bit < kPageSize * 8);
    pages_[id]->bytes[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  }

 private:
  std::vector<std::unique_ptr<Page>> pages_;
  std::vector<uint32_t> checksums_;
  std::vector<bool> stamped_;
};

}  // namespace ptldb

#endif  // PTLDB_ENGINE_PAGER_H_
