#ifndef PTLDB_ENGINE_PAGER_H_
#define PTLDB_ENGINE_PAGER_H_

#include <memory>
#include <vector>

#include "engine/device.h"
#include "engine/page.h"

namespace ptldb {

/// The "disk image": all pages of one database. Page contents are held in
/// process memory (the machine running this reproduction has no attachable
/// HDD/SSD); every access is routed through the BufferPool, which charges
/// the device model on cache misses. Writes happen only during bulk load
/// (before benchmarking) and are not charged.
class PageStore {
 public:
  PageId Allocate() {
    pages_.push_back(std::make_unique<Page>());
    return pages_.size() - 1;
  }

  uint64_t num_pages() const { return pages_.size(); }
  uint64_t size_bytes() const { return pages_.size() * kPageSize; }

  Page& page(PageId id) { return *pages_[id]; }
  const Page& page(PageId id) const { return *pages_[id]; }

 private:
  std::vector<std::unique_ptr<Page>> pages_;
};

}  // namespace ptldb

#endif  // PTLDB_ENGINE_PAGER_H_
