#ifndef PTLDB_ENGINE_VALUE_H_
#define PTLDB_ENGINE_VALUE_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace ptldb {

/// Column types the PTLDB tables need: 4-byte integers and PostgreSQL-style
/// variable-length integer arrays (the paper stores hubs/tds/tas as array
/// columns, Section 3.1).
enum class ColumnType : uint8_t {
  kInt32 = 0,
  kInt32Array = 1,
};

/// One SQL value.
class Value {
 public:
  Value() : data_(int32_t{0}) {}
  explicit Value(int32_t v) : data_(v) {}
  explicit Value(std::vector<int32_t> v) : data_(std::move(v)) {}

  ColumnType type() const {
    return std::holds_alternative<int32_t>(data_) ? ColumnType::kInt32
                                                  : ColumnType::kInt32Array;
  }

  int32_t AsInt() const {
    assert(type() == ColumnType::kInt32);
    return std::get<int32_t>(data_);
  }

  const std::vector<int32_t>& AsArray() const {
    assert(type() == ColumnType::kInt32Array);
    return std::get<std::vector<int32_t>>(data_);
  }

  friend bool operator==(const Value&, const Value&) = default;

 private:
  std::variant<int32_t, std::vector<int32_t>> data_;
};

/// One table or intermediate row.
using Row = std::vector<Value>;

/// Column descriptor.
struct Column {
  std::string name;
  ColumnType type = ColumnType::kInt32;
};

/// Ordered column list of a table.
class Schema {
 public:
  Schema() = default;
  Schema(std::initializer_list<Column> columns) : columns_(columns) {}

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }

  /// Index of `name`; -1 when absent.
  int ColumnIndex(std::string_view name) const {
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (columns_[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }

 private:
  std::vector<Column> columns_;
};

}  // namespace ptldb

#endif  // PTLDB_ENGINE_VALUE_H_
