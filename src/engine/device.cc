#include "engine/device.h"

namespace ptldb {

DeviceProfile DeviceProfile::Hdd7200() {
  return {.name = "hdd7200",
          .random_read_ns = 8'500'000,
          .sequential_read_ns = 55'000};
}

DeviceProfile DeviceProfile::SataSsd() {
  return {.name = "sata-ssd",
          .random_read_ns = 90'000,
          .sequential_read_ns = 20'000};
}

DeviceProfile DeviceProfile::Ram() {
  return {.name = "ram", .random_read_ns = 0, .sequential_read_ns = 0};
}

}  // namespace ptldb
