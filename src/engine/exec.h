#ifndef PTLDB_ENGINE_EXEC_H_
#define PTLDB_ENGINE_EXEC_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "engine/database.h"
#include "engine/value.h"

namespace ptldb {

/// Volcano-style physical operator: pull rows with Next() until nullopt.
/// The PTLDB query plans (Codes 1-4 of the paper) are built as trees of
/// these operators; table-access operators charge the device model through
/// the buffer pool, everything else is pure CPU.
///
/// Fallibility: a storage fault ends the stream (Next() returns nullopt)
/// and is reported by status(). Callers must check status() after
/// exhausting the stream — Execute() does this and returns the error, so
/// a faulted plan can never be mistaken for a short result.
///
/// End-of-stream is latched: once Next() has returned nullopt, every later
/// Next() returns nullopt and status() keeps reporting the same fault.
/// Without the latch, a pull-after-fault could retry the failed read (a
/// transient injected fault then *succeeds*, silently resuming a stream
/// whose consumer already saw it end) or overwrite the parked error with a
/// clean end-of-scan OK — both turn a mid-stream kIoError into a
/// truncated-but-OK result. Stateful operators each carry a done_ latch;
/// pure pass-throughs (Filter/Project) inherit the child's.
///
/// Page-pin contract: operators never hold BufferPool PageGuards across
/// Next() calls. Table access goes through EngineTable::Get and cursors
/// that remember (page id, slot) and re-fetch per call, so a suspended
/// plan (e.g. the outer side of a nested-loop join, or an interleaved
/// multi-query workload) pins no frames while idle. This is what lets
/// many concurrent plans share a small sharded pool without exhausting
/// any shard. New operators that fetch pages directly must keep their
/// guards scoped to one Next() invocation.
class Operator {
 public:
  virtual ~Operator() = default;
  virtual std::optional<Row> Next() = 0;
  /// Non-OK when the stream ended because of a storage fault (kIoError /
  /// kCorruption) anywhere in this subtree.
  virtual Status status() const { return Status::Ok(); }
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Emits a pre-materialized row vector (used to feed one join result into
/// several plan branches, like the CTE reuse of n1b in Codes 3/4).
OperatorPtr MakeVectorSource(std::vector<Row> rows);

/// Primary-key point lookup: emits the matching row (zero or one).
OperatorPtr MakeIndexLookup(const EngineTable* table, IndexKey key,
                            BufferPool* pool);

/// Index range scan: rows with first_key <= key <= last_key.
OperatorPtr MakeIndexRangeScan(const EngineTable* table, IndexKey first_key,
                               IndexKey last_key, BufferPool* pool);

/// PostgreSQL-style parallel UNNEST: for each input row, the array columns
/// in `array_cols` are expanded element-wise in lockstep (they must have
/// equal lengths, as the PTLDB arrays do by construction) and the scalar
/// columns in `keep_cols` are repeated. Output layout: kept columns first,
/// then one scalar per unnested array. `limit_elems` implements the
/// vs[1:k] slice of Code 2/3 (0 = no limit).
OperatorPtr MakeUnnest(OperatorPtr child, std::vector<int> keep_cols,
                       std::vector<int> array_cols, uint32_t limit_elems = 0);

/// Filter by predicate.
OperatorPtr MakeFilter(OperatorPtr child,
                       std::function<bool(const Row&)> predicate);

/// Row-wise projection.
OperatorPtr MakeProject(OperatorPtr child,
                        std::function<Row(const Row&)> projection);

/// Index nested-loop join: for each left row, the right table row with
/// primary key `key_fn(left)` (if any) is appended to the left row.
OperatorPtr MakeIndexJoin(OperatorPtr child, const EngineTable* table,
                          std::function<IndexKey(const Row&)> key_fn,
                          BufferPool* pool);

/// Index nested-loop range join: for each left row, all right rows with
/// key in [lo_fn(left), hi_fn(left)] are appended (one output row each).
OperatorPtr MakeIndexRangeJoin(OperatorPtr child, const EngineTable* table,
                               std::function<IndexKey(const Row&)> lo_fn,
                               std::function<IndexKey(const Row&)> hi_fn,
                               BufferPool* pool);

/// Hash equi-join: materializes the right input into a hash table keyed by
/// `right_key_col`, then streams the left input and emits left ++ right for
/// every right row whose key matches `left_key_col`. This is how
/// PostgreSQL executes the hub join of Code 1 over the two UNNESTed label
/// rows; residual predicates (outp.ta <= inp.td) go into a Filter above.
OperatorPtr MakeHashJoin(OperatorPtr left, OperatorPtr right,
                         int left_key_col, int right_key_col);

/// Aggregate function for MakeHashAggregate.
enum class AggFn { kMin, kMax };

/// GROUP BY group_col, AGG(value_col): materializes the input, emits one
/// (group, aggregate) row per group in unspecified order.
OperatorPtr MakeHashAggregate(OperatorPtr child, int group_col, int value_col,
                              AggFn fn);

/// Full sort (materializing).
OperatorPtr MakeSort(OperatorPtr child,
                     std::function<bool(const Row&, const Row&)> less);

/// LIMIT n.
OperatorPtr MakeLimit(OperatorPtr child, uint64_t n);

/// UNION ALL of several inputs, in order. (The UNIONs in Codes 3/4 feed a
/// final GROUP BY, so duplicate elimination would be a no-op.)
OperatorPtr MakeConcat(std::vector<OperatorPtr> children);

/// Drains an operator tree into a vector; returns the tree's fault status
/// instead of a partial result when any operator faulted.
Result<std::vector<Row>> Execute(Operator* root);

}  // namespace ptldb

#endif  // PTLDB_ENGINE_EXEC_H_
