#ifndef PTLDB_ENGINE_ARENA_H_
#define PTLDB_ENGINE_ARENA_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace ptldb {

/// Per-request bump allocator backing the compiled-query VM (engine/vm.h,
/// ptldb/compiled.cc). All per-query scratch — join/aggregate tables,
/// candidate buffers, top-k staging — is carved from one of these instead
/// of the global heap, and Reset() recycles everything in O(1) between
/// requests.
///
/// Lifetime rules (DESIGN.md "Compiled query programs & arena memory"):
///  - Allocate() never frees; pointers stay valid until the next Reset().
///  - Reset() keeps every chunk, so a warm arena's steady state performs
///    zero heap allocations: chunks grow to the high-water mark of the
///    workload during the first requests and are bump-reused afterwards.
///  - Only trivially-destructible payloads may live in an arena (nothing
///    runs destructors); ArenaVector/ArenaInt32Map enforce this.
///
/// This header is the one sanctioned allocation point for VM hot-path
/// code: the `vm-hot-path-alloc` lint rule bans operator new and
/// std-container growth in vm.h/compiled.* but excludes this file, the
/// same way thread_annotations.h is the sanctioned home of naked mutexes.
///
/// Not thread-safe; the VM keeps one arena per thread (thread_local), the
/// same single-thread-per-query contract as LocalQueryCounters.
class Arena {
 public:
  /// First-chunk size. Oversized requests get a dedicated chunk, so any
  /// single allocation up to available memory works.
  static constexpr size_t kMinChunkBytes = size_t{1} << 16;  // 64 KiB

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `bytes` aligned to `align` (a power of two). The
  /// returned memory is uninitialized and owned by the arena.
  void* Allocate(size_t bytes, size_t align) {
    assert(align != 0 && (align & (align - 1)) == 0);
    while (chunk_ < chunks_.size()) {
      const Chunk& c = chunks_[chunk_];
      const uintptr_t base = reinterpret_cast<uintptr_t>(c.data.get());
      const uintptr_t p = (base + offset_ + align - 1) & ~(align - 1);
      if (p + bytes <= base + c.size) {
        offset_ = static_cast<size_t>(p + bytes - base);
        return reinterpret_cast<void*>(p);
      }
      // Current chunk exhausted: move to the next retained one (it may be
      // larger — chunks double), or fall through to grow.
      ++chunk_;
      offset_ = 0;
    }
    Grow(bytes + align);
    return Allocate(bytes, align);
  }

  /// Typed array allocation (uninitialized).
  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory never runs destructors");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// O(1): rewinds to the first chunk, keeping every chunk for reuse.
  /// Invalidates all memory previously handed out.
  void Reset() {
    chunk_ = 0;
    offset_ = 0;
  }

  /// Total bytes held across chunks — the high-water footprint.
  size_t bytes_reserved() const {
    size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    size_t size = 0;
  };

  void Grow(size_t at_least) {
    size_t want = chunks_.empty() ? kMinChunkBytes : chunks_.back().size * 2;
    if (want < at_least) want = at_least;
    chunks_.push_back({std::make_unique<std::byte[]>(want), want});
    chunk_ = chunks_.size() - 1;
    offset_ = 0;
  }

  std::vector<Chunk> chunks_;
  size_t chunk_ = 0;   // Index of the chunk currently bumped into.
  size_t offset_ = 0;  // Bump offset within that chunk.
};

/// Growable array of a trivially-copyable T backed by an arena. Grow
/// abandons the old buffer (the arena reclaims it at Reset), so steady
/// state after warmup allocates nothing. The minimal surface the VM
/// needs: append, indexed access, iteration for std::sort.
template <typename T>
class ArenaVector {
  static_assert(std::is_trivially_copyable_v<T> &&
                    std::is_trivially_destructible_v<T>,
                "ArenaVector payloads must be trivial (no destructors run)");

 public:
  explicit ArenaVector(Arena* arena) : arena_(arena) {}

  void PushBack(const T& value) {
    if (size_ == capacity_) GrowStorage();
    data_[size_++] = value;
  }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Drops elements past `n` (no destructors; payloads are trivial).
  void Truncate(size_t n) {
    if (n < size_) size_ = n;
  }

 private:
  void GrowStorage() {
    const size_t new_capacity = capacity_ == 0 ? 16 : capacity_ * 2;
    T* new_data = arena_->AllocateArray<T>(new_capacity);
    if (size_ != 0) std::memcpy(new_data, data_, size_ * sizeof(T));
    data_ = new_data;
    capacity_ = new_capacity;
  }

  Arena* arena_;
  T* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

/// Open-addressing int32 -> int32 hash map in arena memory: the VM's
/// GROUP BY stop aggregate (stop ids are dense non-negative ints, so -1
/// is a free empty sentinel). Linear probing, power-of-two capacity,
/// rehash at 50% load; rehashes abandon the old slot array to the arena.
class ArenaInt32Map {
 public:
  struct Slot {
    int32_t key;
    int32_t value;
  };
  static constexpr int32_t kEmptyKey = -1;

  explicit ArenaInt32Map(Arena* arena) : arena_(arena) {}

  /// The value slot for `key` (which must be >= 0), inserting it with
  /// `init` when absent. The pointer is valid until the next insertion.
  int32_t* FindOrInsert(int32_t key, int32_t init) {
    assert(key >= 0);
    if (size_ * 2 >= capacity_) Rehash();
    const size_t mask = capacity_ - 1;
    size_t i = Hash(key) & mask;
    while (true) {
      Slot& s = slots_[i];
      if (s.key == key) return &s.value;
      if (s.key == kEmptyKey) {
        s.key = key;
        s.value = init;
        ++size_;
        return &s.value;
      }
      i = (i + 1) & mask;
    }
  }

  size_t size() const { return size_; }

  /// Every slot including empties (key == kEmptyKey); callers draining
  /// the aggregate skip those.
  std::span<const Slot> slots() const { return {slots_, capacity_}; }

 private:
  static size_t Hash(int32_t key) {
    uint64_t h = static_cast<uint32_t>(key);
    h *= 0x9E3779B97F4A7C15ull;  // Fibonacci hashing.
    return static_cast<size_t>(h >> 32);
  }

  void Rehash() {
    const size_t new_capacity = capacity_ == 0 ? 64 : capacity_ * 2;
    Slot* new_slots = arena_->AllocateArray<Slot>(new_capacity);
    for (size_t i = 0; i < new_capacity; ++i) {
      new_slots[i].key = kEmptyKey;
    }
    const size_t mask = new_capacity - 1;
    for (size_t i = 0; i < capacity_; ++i) {
      const Slot& s = slots_[i];
      if (s.key == kEmptyKey) continue;
      size_t j = Hash(s.key) & mask;
      while (new_slots[j].key != kEmptyKey) j = (j + 1) & mask;
      new_slots[j] = s;
    }
    slots_ = new_slots;
    capacity_ = new_capacity;
  }

  Arena* arena_;
  Slot* slots_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

}  // namespace ptldb

#endif  // PTLDB_ENGINE_ARENA_H_
