#ifndef PTLDB_ENGINE_PAGE_H_
#define PTLDB_ENGINE_PAGE_H_

#include <array>
#include <cstdint>
#include <limits>

namespace ptldb {

/// Fixed database page size, matching PostgreSQL's default of 8 KiB.
inline constexpr uint32_t kPageSize = 8192;

/// Page identifier within one PageStore (dense, starting at 0).
using PageId = uint64_t;
inline constexpr PageId kInvalidPage = std::numeric_limits<PageId>::max();

/// Raw page bytes. Interpretation is up to the owning structure (heap file
/// byte-log or B+Tree node).
struct Page {
  std::array<uint8_t, kPageSize> bytes{};
};

}  // namespace ptldb

#endif  // PTLDB_ENGINE_PAGE_H_
