#ifndef PTLDB_ENGINE_DATABASE_H_
#define PTLDB_ENGINE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/btree.h"
#include "engine/buffer_pool.h"
#include "engine/device.h"
#include "engine/heap_file.h"
#include "engine/pager.h"
#include "engine/value.h"

namespace ptldb {

/// One relational table: heap rows plus a bulk-loaded primary-key B+Tree.
/// Tables are write-once (bulk load during preprocessing), read-many — the
/// paper's PTLDB workload exactly.
class EngineTable {
 public:
  EngineTable(std::string name, Schema schema, uint32_t pk_columns,
              PageStore* store)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        pk_columns_(pk_columns),
        store_(store),
        heap_(store),
        index_(store) {}

  EngineTable(const EngineTable&) = delete;
  EngineTable& operator=(const EngineTable&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  /// Leading columns forming the primary key (1 for lout/lin, 2 for the
  /// (hub, hour)-keyed tables); informs DDL generation.
  uint32_t pk_columns() const { return pk_columns_; }

  /// Loads `rows` with their primary keys; keys must be strictly
  /// increasing (violations indicate a broken table builder). Seals every
  /// dirty page in the store with its checksum stamp afterwards, so all
  /// table pages are verified on read.
  Status BulkLoad(std::vector<std::pair<IndexKey, Row>> rows);

  /// Primary-key point lookup (index + heap I/O charged to the device).
  /// The outer Result carries kIoError/kCorruption; the inner optional is
  /// empty when the key is absent.
  Result<std::optional<Row>> Get(IndexKey key, BufferPool* pool) const;

  /// Range cursor over (key, row) pairs with key >= `first_key`. A faulted
  /// scan ends with Valid() == false and a non-OK status(); callers must
  /// check status() after the loop to distinguish errors from a clean end.
  class Cursor {
   public:
    bool Valid() const { return it_.Valid(); }
    IndexKey key() const { return it_.key(); }
    Result<Row> row() const {
      return table_->heap_.Read(it_.locator(), table_->schema_, pool_);
    }
    void Next() { it_.Next(); }
    const Status& status() const { return it_.status(); }

   private:
    friend class EngineTable;
    Cursor(const EngineTable* table, BufferPool* pool, BTree::Iterator it)
        : table_(table), pool_(pool), it_(it) {}
    const EngineTable* table_;
    BufferPool* pool_;
    BTree::Iterator it_;
  };

  Cursor Seek(IndexKey first_key, BufferPool* pool) const {
    return Cursor(this, pool, index_.SeekNotBefore(first_key, pool));
  }

  uint64_t num_rows() const { return num_rows_; }
  uint64_t heap_pages() const { return heap_.num_pages(); }
  uint64_t index_pages() const { return index_.num_pages(); }
  uint64_t size_bytes() const {
    return (heap_pages() + index_pages()) * kPageSize;
  }

 private:
  std::string name_;
  Schema schema_;
  uint32_t pk_columns_ = 1;
  PageStore* store_;
  HeapFile heap_;
  BTree index_;
  uint64_t num_rows_ = 0;
};

/// The embedded database: one page store, one simulated device, one buffer
/// pool, and a catalog of tables. Stands in for the PostgreSQL instance of
/// the paper so that the HDD/SSD experiments can run against a controlled
/// storage model (see DESIGN.md, "Why an embedded engine and real
/// PostgreSQL?").
class EngineDatabase {
 public:
  explicit EngineDatabase(DeviceProfile profile = DeviceProfile::Hdd7200(),
                          uint64_t buffer_pool_pages = 1u << 20)
      : device_(std::move(profile)),
        pool_(&store_, &device_, buffer_pool_pages) {}

  EngineDatabase(const EngineDatabase&) = delete;
  EngineDatabase& operator=(const EngineDatabase&) = delete;

  /// Creates an empty table; fails if the name exists. `pk_columns` is the
  /// number of leading columns forming the primary key.
  Result<EngineTable*> CreateTable(const std::string& name, Schema schema,
                                   uint32_t pk_columns = 1);

  /// Looks up a table; nullptr when absent.
  EngineTable* FindTable(const std::string& name);
  const EngineTable* FindTable(const std::string& name) const;

  BufferPool* buffer_pool() { return &pool_; }
  StorageDevice* device() { return &device_; }
  PageStore* page_store() { return &store_; }

  /// Cold-cache reset (the paper restarts the server before experiments).
  void DropCaches() { pool_.DropCaches(); }

  /// Total bytes across all tables (heap + index pages).
  uint64_t total_size_bytes() const;

  std::vector<std::string> table_names() const;

 private:
  PageStore store_;
  StorageDevice device_;
  BufferPool pool_;
  std::map<std::string, std::unique_ptr<EngineTable>> tables_;
};

}  // namespace ptldb

#endif  // PTLDB_ENGINE_DATABASE_H_
