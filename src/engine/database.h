#ifndef PTLDB_ENGINE_DATABASE_H_
#define PTLDB_ENGINE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/trace.h"
#include "engine/btree.h"
#include "engine/buffer_pool.h"
#include "engine/device.h"
#include "engine/heap_file.h"
#include "engine/pager.h"
#include "engine/value.h"

namespace ptldb {

/// One relational table: heap rows plus a bulk-loaded primary-key B+Tree.
/// Tables are write-once (bulk load during preprocessing), read-many — the
/// paper's PTLDB workload exactly.
class EngineTable {
 public:
  EngineTable(std::string name, Schema schema, uint32_t pk_columns,
              PageStore* store)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        pk_columns_(pk_columns),
        store_(store),
        heap_(store),
        index_(store) {}

  EngineTable(const EngineTable&) = delete;
  EngineTable& operator=(const EngineTable&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  /// Leading columns forming the primary key (1 for lout/lin, 2 for the
  /// (hub, hour)-keyed tables); informs DDL generation.
  uint32_t pk_columns() const { return pk_columns_; }

  /// Loads `rows` with their primary keys; keys must be strictly
  /// increasing (violations indicate a broken table builder). Seals every
  /// dirty page in the store with its checksum stamp afterwards, so all
  /// table pages are verified on read.
  Status BulkLoad(std::vector<std::pair<IndexKey, Row>> rows);

  /// Primary-key point lookup (index + heap I/O charged to the device).
  /// The outer Result carries kIoError/kCorruption; the inner optional is
  /// empty when the key is absent. Bumps the calling thread's
  /// index_seeks/tuples_scanned counters (see LocalQueryCounters).
  Result<std::optional<Row>> Get(IndexKey key, BufferPool* pool) const;

  /// Allocation-free point lookup for the compiled query path: decodes
  /// into `scratch` via HeapFile::ReadInto instead of building a Row.
  /// Returns false when the key is absent (scratch untouched). Bumps the
  /// same index_seeks/tuples_scanned counters as Get, so EXPLAIN ANALYZE
  /// accounting is identical across the two paths.
  Result<bool> GetInto(IndexKey key, BufferPool* pool,
                       RowScratch* scratch) const;

  /// Range cursor over (key, row) pairs with key >= `first_key`. A faulted
  /// scan ends with Valid() == false and a non-OK status(); callers must
  /// check status() after the loop to distinguish errors from a clean end.
  class Cursor {
   public:
    bool Valid() const { return it_.Valid(); }
    IndexKey key() const { return it_.key(); }
    Result<Row> row() const {
      ++ThisThreadQueryCounters().tuples_scanned;
      return table_->heap_.Read(it_.locator(), table_->schema_, pool_);
    }
    void Next() { it_.Next(); }
    const Status& status() const { return it_.status(); }

   private:
    friend class EngineTable;
    Cursor(const EngineTable* table, BufferPool* pool, BTree::Iterator it)
        : table_(table), pool_(pool), it_(it) {}
    const EngineTable* table_;
    BufferPool* pool_;
    BTree::Iterator it_;
  };

  Cursor Seek(IndexKey first_key, BufferPool* pool) const {
    ++ThisThreadQueryCounters().index_seeks;
    return Cursor(this, pool, index_.SeekNotBefore(first_key, pool));
  }

  uint64_t num_rows() const { return num_rows_; }
  uint64_t heap_pages() const { return heap_.num_pages(); }
  uint64_t index_pages() const { return index_.num_pages(); }
  uint64_t size_bytes() const {
    return (heap_pages() + index_pages()) * kPageSize;
  }

 private:
  std::string name_;
  Schema schema_;
  uint32_t pk_columns_ = 1;
  PageStore* store_;
  HeapFile heap_;
  BTree index_;
  uint64_t num_rows_ = 0;
};

/// Ground-truth engine counters at one instant: the buffer pool's and
/// device's own counters plus the calling thread's LocalQueryCounters.
/// The difference of two captures around a query is that query's exact
/// operation count — this is what EXPLAIN ANALYZE attaches to spans, so
/// span counts agree with the engine's counters by construction.
struct EngineCounters {
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  uint64_t device_reads = 0;
  uint64_t device_read_ns = 0;
  uint64_t device_wait_ns = 0;
  LocalQueryCounters local;
};

/// The embedded database: one page store, one simulated device, one buffer
/// pool, and a catalog of tables. Stands in for the PostgreSQL instance of
/// the paper so that the HDD/SSD experiments can run against a controlled
/// storage model (see DESIGN.md, "Why an embedded engine and real
/// PostgreSQL?").
class EngineDatabase {
 public:
  /// `buffer_pool_shards == 0` lets the pool pick its shard count from
  /// capacity (see BufferPool); pass an explicit count to pin the layout
  /// (e.g. concurrency stress tests with deliberately tiny pools).
  explicit EngineDatabase(DeviceProfile profile = DeviceProfile::Hdd7200(),
                          uint64_t buffer_pool_pages = 1u << 20,
                          uint32_t buffer_pool_shards = 0)
      : device_(std::move(profile)),
        pool_(&store_, &device_, buffer_pool_pages, buffer_pool_shards) {}

  EngineDatabase(const EngineDatabase&) = delete;
  EngineDatabase& operator=(const EngineDatabase&) = delete;

  /// Creates an empty table; fails if the name exists. `pk_columns` is the
  /// number of leading columns forming the primary key.
  Result<EngineTable*> CreateTable(const std::string& name, Schema schema,
                                   uint32_t pk_columns = 1);

  /// Looks up a table; nullptr when absent.
  EngineTable* FindTable(const std::string& name);
  const EngineTable* FindTable(const std::string& name) const;

  BufferPool* buffer_pool() { return &pool_; }
  StorageDevice* device() { return &device_; }
  PageStore* page_store() { return &store_; }

  /// The database's metrics registry. Upper layers (facade, SQL
  /// interpreter, thread-pool users) register their metrics here so one
  /// snapshot covers the whole stack.
  MetricsRegistry* metrics() { return &metrics_; }

  /// Captures the engine's ground-truth counters plus the calling
  /// thread's LocalQueryCounters (see EngineCounters).
  EngineCounters CaptureCounters() const;

  /// Registry snapshot with the engine's own counters (device.*,
  /// bufferpool.*) overlaid, so the engine keeps single-writer counters on
  /// its hot paths yet they still appear in every snapshot.
  MetricsSnapshot Snapshot() const;

  /// Cold-cache reset (the paper restarts the server before experiments).
  /// Fails with kInternal if live PageGuards still pin frames — a query
  /// is in flight and the drop would be partial.
  Status DropCaches() { return pool_.DropCaches(); }

  /// Total bytes across all tables (heap + index pages).
  uint64_t total_size_bytes() const;

  std::vector<std::string> table_names() const;

 private:
  PageStore store_;
  StorageDevice device_;
  BufferPool pool_;
  MetricsRegistry metrics_;
  std::map<std::string, std::unique_ptr<EngineTable>> tables_;
};

/// RAII trace span that attaches the engine-counter deltas accumulated
/// during its lifetime (pool hits/misses, device reads, tuples scanned,
/// hubs merged, ...). Only nonzero deltas are attached, and time-valued
/// deltas (read/wait ns) only when nonzero, so traces on the Ram device
/// stay byte-deterministic. Null trace = no-op.
class ScopedEngineSpan {
 public:
  ScopedEngineSpan(QueryTrace* trace, const EngineDatabase* db,
                   const std::string& name)
      : trace_(trace), db_(db) {
    if (trace_) {
      trace_->Begin(name);
      begin_ = db_->CaptureCounters();
    }
  }
  ~ScopedEngineSpan();

  ScopedEngineSpan(const ScopedEngineSpan&) = delete;
  ScopedEngineSpan& operator=(const ScopedEngineSpan&) = delete;

  /// Extra stats attached before the counter deltas (e.g. rows=).
  void AddStat(const std::string& key, uint64_t value) {
    if (trace_) trace_->AddStat(key, value);
  }

 private:
  QueryTrace* trace_;
  const EngineDatabase* db_;
  EngineCounters begin_;
};

}  // namespace ptldb

#endif  // PTLDB_ENGINE_DATABASE_H_
