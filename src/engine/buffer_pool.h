#ifndef PTLDB_ENGINE_BUFFER_POOL_H_
#define PTLDB_ENGINE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/checksum.h"
#include "common/status.h"
#include "engine/device.h"
#include "engine/page.h"
#include "engine/pager.h"

namespace ptldb {

/// Bounded-retry schedule for transient device errors: up to
/// `max_attempts` reads, waiting initial_backoff_ns, 2x, 4x, ... between
/// attempts. The wait is charged to the device's modeled clock (virtual
/// time), never slept for real.
struct RetryPolicy {
  uint32_t max_attempts = 4;
  uint64_t initial_backoff_ns = 100 * 1000;  // 100 us
};

/// LRU page cache in front of a StorageDevice, playing the role of
/// PostgreSQL's shared buffers. The pool owns verified *copies* of pages:
/// the PageStore is the authoritative disk image, the device is the
/// (possibly faulty) wire, and only frames whose CRC-32C matches the
/// page's stamp are cached and handed out. DropCaches() models the
/// paper's per-experiment server restart + OS cache drop.
class BufferPool {
 public:
  /// `capacity_pages` caps residency; the paper configures 8 GiB shared
  /// buffers (1M pages), far above its dataset sizes, so the default is
  /// effectively "everything fits once touched".
  BufferPool(PageStore* store, StorageDevice* device,
             uint64_t capacity_pages = 1u << 20)
      : store_(store), device_(device), capacity_(capacity_pages) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Reads a page through the cache; charges the device on a miss and
  /// verifies the page's checksum stamp on every delivered frame.
  /// Transient device errors are retried with bounded exponential backoff
  /// (charged as modeled wait time); a page that repeatedly fails
  /// verification is quarantined and every later Fetch of it returns
  /// kCorruption without touching the device. The returned pointer stays
  /// valid until the page is evicted or caches are dropped.
  ///
  /// Thread-safe: a single latch serializes Fetch/DropCaches, so multiple
  /// facade queries may share one pool (the latch also serializes the
  /// device's non-counter access state). Stat counters are relaxed
  /// atomics, readable without the latch.
  Result<const Page*> Fetch(PageId id) {
    std::lock_guard<std::mutex> latch(mu_);
    const auto it = resident_.find(id);
    if (it != resident_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return &it->second->second;
    }
    if (quarantined_.count(id) > 0) {
      return Status::Corruption("page " + std::to_string(id) +
                                " is quarantined");
    }
    if (id >= store_->num_pages()) {
      return Status::Corruption("page id " + std::to_string(id) +
                                " beyond end of store (" +
                                std::to_string(store_->num_pages()) +
                                " pages)");
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    const PageStore& store = *store_;  // Read-only: must not dirty stamps.
    Page frame;
    Status last = Status::Ok();
    uint64_t backoff = retry_.initial_backoff_ns;
    uint32_t checksum_failures = 0;
    for (uint32_t attempt = 0; attempt < retry_.max_attempts; ++attempt) {
      if (attempt > 0) {
        device_->ChargeWait(backoff);
        backoff *= 2;
        retries_.fetch_add(1, std::memory_order_relaxed);
      }
      last = device_->ReadPage(id, store.page(id), &frame);
      if (!last.ok()) continue;  // Transient or sticky device error.
      if (store.stamped(id) &&
          Crc32c(frame.bytes.data(), kPageSize) != store.checksum(id)) {
        ++checksum_failures;
        checksum_errors_.fetch_add(1, std::memory_order_relaxed);
        last = Status::Corruption("checksum mismatch on page " +
                                  std::to_string(id));
        continue;  // Possibly a wire flip; retry.
      }
      auto node = lru_.emplace(lru_.begin(), id, frame);
      resident_.emplace(id, node);
      if (lru_.size() > capacity_) {
        resident_.erase(lru_.back().first);
        lru_.pop_back();
        evictions_.fetch_add(1, std::memory_order_relaxed);
      }
      return &node->second;
    }
    if (checksum_failures == retry_.max_attempts) {
      // Every attempt delivered corrupt bytes: latent media corruption,
      // not a wire glitch. Fail fast from now on.
      quarantined_.insert(id);
    }
    return last;
  }

  /// Evicts everything (cold-cache benchmarking) and forgets the device's
  /// head position so the first post-drop read bills as a random access.
  void DropCaches() {
    std::lock_guard<std::mutex> latch(mu_);
    resident_.clear();
    lru_.clear();
    device_->ResetLocality();
  }

  /// Clears the quarantine set (e.g. between fault-soak seeds, after the
  /// device's sticky fault state has been reset).
  void ClearQuarantine() {
    std::lock_guard<std::mutex> latch(mu_);
    quarantined_.clear();
  }

  void set_retry_policy(const RetryPolicy& retry) { retry_ = retry; }
  const RetryPolicy& retry_policy() const { return retry_; }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  uint64_t resident_pages() const {
    std::lock_guard<std::mutex> latch(mu_);
    return lru_.size();
  }
  /// Fault observability (not reset by ResetStats).
  uint64_t retries() const { return retries_.load(std::memory_order_relaxed); }
  uint64_t checksum_errors() const {
    return checksum_errors_.load(std::memory_order_relaxed);
  }
  uint64_t quarantined_pages() const {
    std::lock_guard<std::mutex> latch(mu_);
    return quarantined_.size();
  }

  /// Resets the cache-effectiveness counters of a measurement window.
  /// Fault counters (retries, checksum errors) survive, like the device's
  /// injected-fault counters.
  void ResetStats() {
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    evictions_.store(0, std::memory_order_relaxed);
  }

 private:
  PageStore* store_;
  StorageDevice* device_;
  uint64_t capacity_;
  RetryPolicy retry_;
  mutable std::mutex mu_;  ///< Guards lru_/resident_/quarantined_ + device.
  std::list<std::pair<PageId, Page>> lru_;
  std::unordered_map<PageId, std::list<std::pair<PageId, Page>>::iterator>
      resident_;
  std::unordered_set<PageId> quarantined_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> checksum_errors_{0};
};

}  // namespace ptldb

#endif  // PTLDB_ENGINE_BUFFER_POOL_H_
