#ifndef PTLDB_ENGINE_BUFFER_POOL_H_
#define PTLDB_ENGINE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/checksum.h"
#include "common/query_context.h"
#include "common/query_log.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "engine/device.h"
#include "engine/page.h"
#include "engine/pager.h"

namespace ptldb {

/// Bounded-retry schedule for transient device errors: up to
/// `max_attempts` reads, waiting initial_backoff_ns, 2x, 4x, ... between
/// attempts. The wait is charged to the device's modeled clock (virtual
/// time), never slept for real.
struct RetryPolicy {
  uint32_t max_attempts = 4;
  uint64_t initial_backoff_ns = 100 * 1000;  // 100 us
};

class BufferPool;

/// RAII pin on a buffer-pool frame. While a guard is alive the frame's
/// bytes are immutable and the frame cannot be evicted, so the page
/// pointer is valid for exactly the guard's lifetime — there is no
/// "valid until evicted" raw-pointer contract anymore.
///
/// Guards are move-only; destroying (or Release()-ing) one unpins the
/// frame with a release store that the evictor pairs with an acquire
/// load under the shard latch, so the last reader's byte accesses
/// happen-before the frame is reused.
///
/// Hold guards briefly: scoped to one page read, never across calls that
/// may fetch further pages while the pool is near capacity (a thread
/// that pins more frames than one shard holds cannot make progress and
/// Fetch will fail loudly after a bounded wait).
///
/// [[nodiscard]]: a discarded guard would pin-then-unpin without the
/// caller ever holding the page — always a bug at the call site.
class [[nodiscard]] PageGuard {
 public:
  PageGuard() = default;
  PageGuard(PageGuard&& other) noexcept
      : pins_(other.pins_), page_(other.page_) {
    other.pins_ = nullptr;
    other.page_ = nullptr;
  }
  PageGuard& operator=(PageGuard&& other) noexcept {
    if (this != &other) {
      Release();
      pins_ = other.pins_;
      page_ = other.page_;
      other.pins_ = nullptr;
      other.page_ = nullptr;
    }
    return *this;
  }
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard() { Release(); }

  const Page& operator*() const { return *page_; }
  const Page* operator->() const { return page_; }
  const Page* get() const { return page_; }
  explicit operator bool() const { return page_ != nullptr; }

  /// Unpins early (idempotent). The page pointer is dead afterwards.
  void Release() {
    if (pins_ != nullptr) {
      pins_->fetch_sub(1, std::memory_order_release);
      pins_ = nullptr;
      page_ = nullptr;
    }
  }

 private:
  friend class BufferPool;
  /// The pool takes the pin (under the shard latch) before constructing.
  PageGuard(std::atomic<uint32_t>* pins, const Page* page)
      : pins_(pins), page_(page) {}

  std::atomic<uint32_t>* pins_ = nullptr;
  const Page* page_ = nullptr;
};

/// Sharded LRU page cache in front of a StorageDevice, playing the role
/// of PostgreSQL's shared buffers. The pool owns verified *copies* of
/// pages: the PageStore is the authoritative disk image, the device is
/// the (possibly faulty) wire, and only frames whose CRC-32C matches the
/// page's stamp are cached and handed out. DropCaches() models the
/// paper's per-experiment server restart + OS cache drop.
///
/// Concurrency: frames are striped over independent shards by a
/// multiplicative hash of the page id; each shard has its own latch,
/// LRU list, resident map and quarantine set, so concurrent queries on
/// different pages no longer serialize on one mutex. Fetch returns a
/// PageGuard pin; eviction skips pinned frames and fails loudly (after
/// a bounded yield-wait) when every frame of a shard is pinned, instead
/// of silently invalidating a live pointer.
class BufferPool {
 public:
  /// `capacity_pages` caps total residency across all shards; the paper
  /// configures 8 GiB shared buffers (1M pages), far above its dataset
  /// sizes, so the default is effectively "everything fits once touched".
  ///
  /// `num_shards == 0` picks automatically: one shard per
  /// kMinPagesPerShard pages of capacity, at most kDefaultMaxShards.
  /// Tiny pools (unit tests asserting exact LRU order) thus collapse to
  /// a single shard with strict global LRU; production-sized pools get
  /// enough shards to stop serializing concurrent queries.
  BufferPool(PageStore* store, StorageDevice* device,
             uint64_t capacity_pages = 1u << 20, uint32_t num_shards = 0)
      : store_(store), device_(device), capacity_(capacity_pages) {
    if (capacity_ == 0) capacity_ = 1;
    uint32_t shards = num_shards;
    if (shards == 0) {
      shards = static_cast<uint32_t>(capacity_ / kMinPagesPerShard);
      if (shards < 1) shards = 1;
      if (shards > kDefaultMaxShards) shards = kDefaultMaxShards;
    }
    // Every shard needs at least one frame of budget.
    if (shards > capacity_) shards = static_cast<uint32_t>(capacity_);
    shards_ = std::vector<Shard>(shards);
    for (uint32_t s = 0; s < shards; ++s) {
      shards_[s].capacity = capacity_ / shards + (s < capacity_ % shards);
    }
  }

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Reads a page through the cache; charges the device on a miss and
  /// verifies the page's checksum stamp on every delivered frame.
  /// Transient device errors are retried with bounded exponential backoff
  /// (charged as modeled wait time); a page that repeatedly fails
  /// verification is quarantined and every later Fetch of it returns
  /// kCorruption without touching the device.
  ///
  /// The returned PageGuard pins the frame: the page stays resident and
  /// its bytes stay valid until the guard is destroyed. If a miss finds
  /// every frame of the target shard pinned, Fetch yields briefly for a
  /// pin to clear and then fails with kInternal ("shard exhausted")
  /// rather than evicting a page somebody is still reading.
  ///
  /// Thread-safe: per-shard latches; the device guards its own access
  /// state. Stat counters are readable without any latch.
  Result<PageGuard> Fetch(PageId id) {
    Shard& shard = shards_[ShardIndex(id)];
    for (uint32_t wait = 0;; ++wait) {
      // Cooperative cancellation checkpoint: every page a query touches
      // funnels through Fetch, so a request whose deadline expired (or
      // that the server cancelled in-queue) unwinds here before pinning
      // another frame or charging the device — including each pass of
      // the all-frames-pinned yield loop below, which must not outlive
      // the request's deadline either. Outside a served request this is
      // one thread-local load (see common/query_context.h).
      PTLDB_RETURN_IF_ERROR(CheckQueryCheckpoint());
      MutexLock latch(shard.mu);
      const auto it = shard.resident.find(id);
      if (it != shard.resident.end()) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        shard.hits.fetch_add(1, std::memory_order_relaxed);
        return Pin(*it->second);
      }
      if (shard.quarantined.count(id) > 0) {
        return Status::Corruption("page " + std::to_string(id) +
                                  " is quarantined");
      }
      if (id >= store_->num_pages()) {
        return Status::Corruption("page id " + std::to_string(id) +
                                  " beyond end of store (" +
                                  std::to_string(store_->num_pages()) +
                                  " pages)");
      }
      // Make room before reading: evict from the LRU tail, skipping
      // pinned frames. If every frame is pinned the pins belong to
      // in-flight guards that are normally released within microseconds,
      // so yield off-latch a bounded number of times before declaring
      // the shard exhausted.
      if (shard.lru.size() >= shard.capacity && !EvictOneLocked(shard)) {
        if (wait < kPinWaitYields) {
          latch.Unlock();
          std::this_thread::yield();
          continue;
        }
        return Status::Internal(
            "buffer pool shard " + std::to_string(ShardIndex(id)) +
            " exhausted: all " + std::to_string(shard.lru.size()) +
            " frames pinned (pin leak, or a caller holds more pins than "
            "the shard has frames)");
      }
      shard.misses.fetch_add(1, std::memory_order_relaxed);
      // Attribute miss servicing (device read + retry backoff, modeled
      // I/O included) to the buffer_io phase of the current request.
      // Hits stay charged to the surrounding phase: no I/O happened, and
      // keeping the hit path free of clock reads is what makes always-on
      // recording affordable.
      ScopedQueryPhase io_phase(QueryPhase::kBufferIo);
      return ReadIntoShardLocked(shard, id);
    }
  }

  /// Evicts everything unpinned (cold-cache benchmarking) and forgets the
  /// device's head position so the first post-drop read bills as a random
  /// access. Frames with live guards are NOT invalidated: if any pin is
  /// active the drop is partial and kInternal is returned, so benchmarks
  /// cannot silently measure a half-warm cache while a query is running.
  Status DropCaches() {
    uint64_t still_pinned = 0;
    for (Shard& shard : shards_) {
      MutexLock latch(shard.mu);
      for (auto it = shard.lru.begin(); it != shard.lru.end();) {
        if (it->pins.load(std::memory_order_acquire) == 0) {
          shard.resident.erase(it->id);
          it = shard.lru.erase(it);
        } else {
          ++still_pinned;
          ++it;
        }
      }
    }
    device_->ResetLocality();
    if (still_pinned > 0) {
      return Status::Internal("DropCaches: " + std::to_string(still_pinned) +
                              " pages still pinned by live PageGuards");
    }
    return Status::Ok();
  }

  /// Clears the quarantine sets (e.g. between fault-soak seeds, after the
  /// device's sticky fault state has been reset).
  void ClearQuarantine() {
    for (Shard& shard : shards_) {
      MutexLock latch(shard.mu);
      shard.quarantined.clear();
    }
  }

  void set_retry_policy(const RetryPolicy& retry) { retry_ = retry; }
  const RetryPolicy& retry_policy() const { return retry_; }

  /// Point-in-time view of one shard, for per-shard observability gauges.
  struct ShardStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t resident_pages = 0;
    uint64_t pinned_pages = 0;
    uint64_t capacity_pages = 0;
  };

  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }
  ShardStats shard_stats(uint32_t s) const {
    const Shard& shard = shards_[s];
    MutexLock latch(shard.mu);
    ShardStats stats;
    stats.hits = shard.hits.load(std::memory_order_relaxed);
    stats.misses = shard.misses.load(std::memory_order_relaxed);
    stats.evictions = shard.evictions.load(std::memory_order_relaxed);
    stats.resident_pages = shard.lru.size();
    stats.capacity_pages = shard.capacity;
    for (const Frame& frame : shard.lru) {
      if (frame.pins.load(std::memory_order_relaxed) > 0) {
        ++stats.pinned_pages;
      }
    }
    return stats;
  }

  uint64_t hits() const { return SumShards(&Shard::hits); }
  uint64_t misses() const { return SumShards(&Shard::misses); }
  uint64_t evictions() const { return SumShards(&Shard::evictions); }
  uint64_t resident_pages() const {
    uint64_t total = 0;
    for (uint32_t s = 0; s < num_shards(); ++s) {
      total += shard_stats(s).resident_pages;
    }
    return total;
  }
  uint64_t pinned_pages() const {
    uint64_t total = 0;
    for (uint32_t s = 0; s < num_shards(); ++s) {
      total += shard_stats(s).pinned_pages;
    }
    return total;
  }
  /// Fault observability (not reset by ResetStats).
  uint64_t retries() const { return retries_.load(std::memory_order_relaxed); }
  uint64_t checksum_errors() const {
    return checksum_errors_.load(std::memory_order_relaxed);
  }
  uint64_t quarantined_pages() const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      MutexLock latch(shard.mu);
      total += shard.quarantined.size();
    }
    return total;
  }

  /// Resets the cache-effectiveness counters of a measurement window.
  /// Fault counters (retries, checksum errors) survive, like the device's
  /// injected-fault counters.
  void ResetStats() {
    for (Shard& shard : shards_) {
      shard.hits.store(0, std::memory_order_relaxed);
      shard.misses.store(0, std::memory_order_relaxed);
      shard.evictions.store(0, std::memory_order_relaxed);
    }
  }

 private:
  /// Auto-sharding knobs: pools smaller than 2*kMinPagesPerShard frames
  /// stay single-sharded (strict global LRU, what the eviction-order unit
  /// tests assert); big serving pools spread over up to kDefaultMaxShards
  /// latches.
  static constexpr uint64_t kMinPagesPerShard = 64;
  static constexpr uint32_t kDefaultMaxShards = 8;
  /// Bounded wait for transient "all frames pinned" before failing loudly.
  static constexpr uint32_t kPinWaitYields = 1024;

  /// A cached page. Frames live as std::list nodes, so their addresses
  /// are stable across LRU splices; a frame is destroyed only under its
  /// shard latch and only when pins == 0 (acquire, pairing with the
  /// guards' release decrements).
  struct Frame {
    PageId id = kInvalidPage;
    Page page;
    std::atomic<uint32_t> pins{0};
  };

  struct Shard {
    uint64_t capacity = 0;
    /// Shard latch. In the lock hierarchy it sits *above* the device
    /// mutex: ReadIntoShardLocked calls into StorageDevice while holding
    /// it; the device never calls back into the pool.
    mutable Mutex mu;
    /// Front = most recently used.
    std::list<Frame> lru PTLDB_GUARDED_BY(mu);
    std::unordered_map<PageId, std::list<Frame>::iterator> resident
        PTLDB_GUARDED_BY(mu);
    std::unordered_set<PageId> quarantined PTLDB_GUARDED_BY(mu);
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> evictions{0};

    Shard() = default;
    Shard(Shard&&) = delete;  // Vector is sized once in the constructor.
  };

  uint32_t ShardIndex(PageId id) const {
    // Fibonacci hash: page ids are dense and sequential, so take the
    // high bits of a multiplicative mix rather than id % n (which would
    // stride-alias structured access patterns onto one latch).
    const uint64_t mixed = id * UINT64_C(0x9E3779B97F4A7C15);
    return static_cast<uint32_t>((mixed >> 32) % shards_.size());
  }

  /// Pins `frame` and wraps it in a guard. Caller holds the shard latch,
  /// so the pin cannot race the evictor's pins==0 check.
  PageGuard Pin(Frame& frame) {
    frame.pins.fetch_add(1, std::memory_order_relaxed);
    return PageGuard(&frame.pins, &frame.page);
  }

  /// Evicts the least-recently-used unpinned frame. Caller holds the
  /// shard latch. Returns false if every frame is pinned.
  bool EvictOneLocked(Shard& shard) PTLDB_REQUIRES(shard.mu) {
    for (auto it = std::prev(shard.lru.end());; --it) {
      if (it->pins.load(std::memory_order_acquire) == 0) {
        shard.resident.erase(it->id);
        shard.lru.erase(it);
        shard.evictions.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      if (it == shard.lru.begin()) return false;
    }
  }

  /// Miss path: reads `id` from the device (with retry/backoff and
  /// checksum verification) into a fresh frame at the LRU front. Caller
  /// holds the shard latch and has already made room.
  Result<PageGuard> ReadIntoShardLocked(Shard& shard, PageId id)
      PTLDB_REQUIRES(shard.mu) {
    const PageStore& store = *store_;  // Read-only: must not dirty stamps.
    Status last = Status::Ok();
    uint64_t backoff = retry_.initial_backoff_ns;
    uint32_t checksum_failures = 0;
    for (uint32_t attempt = 0; attempt < retry_.max_attempts; ++attempt) {
      if (attempt > 0) {
        device_->ChargeWait(backoff);
        backoff *= 2;
        retries_.fetch_add(1, std::memory_order_relaxed);
      }
      shard.lru.emplace_front();
      Frame& frame = shard.lru.front();
      last = device_->ReadPage(id, store.page(id), &frame.page);
      if (!last.ok()) {
        shard.lru.pop_front();
        continue;  // Transient or sticky device error.
      }
      if (store.stamped(id) &&
          Crc32c(frame.page.bytes.data(), kPageSize) != store.checksum(id)) {
        shard.lru.pop_front();
        ++checksum_failures;
        checksum_errors_.fetch_add(1, std::memory_order_relaxed);
        last = Status::Corruption("checksum mismatch on page " +
                                  std::to_string(id));
        continue;  // Possibly a wire flip; retry.
      }
      frame.id = id;
      shard.resident.emplace(id, shard.lru.begin());
      return Pin(frame);
    }
    if (checksum_failures == retry_.max_attempts) {
      // Every attempt delivered corrupt bytes: latent media corruption,
      // not a wire glitch. Fail fast from now on.
      shard.quarantined.insert(id);
    }
    return last;
  }

  uint64_t SumShards(std::atomic<uint64_t> Shard::* counter) const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += (shard.*counter).load(std::memory_order_relaxed);
    }
    return total;
  }

  PageStore* store_;
  StorageDevice* device_;
  uint64_t capacity_;
  RetryPolicy retry_;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> checksum_errors_{0};
};

}  // namespace ptldb

#endif  // PTLDB_ENGINE_BUFFER_POOL_H_
