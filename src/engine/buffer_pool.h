#ifndef PTLDB_ENGINE_BUFFER_POOL_H_
#define PTLDB_ENGINE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "engine/device.h"
#include "engine/page.h"
#include "engine/pager.h"

namespace ptldb {

/// LRU page cache in front of a StorageDevice, playing the role of
/// PostgreSQL's shared buffers. Page bytes live in the PageStore either
/// way; the pool tracks *which* pages are resident and charges the device
/// model on misses. DropCaches() models the paper's per-experiment server
/// restart + OS cache drop.
class BufferPool {
 public:
  /// `capacity_pages` caps residency; the paper configures 8 GiB shared
  /// buffers (1M pages), far above its dataset sizes, so the default is
  /// effectively "everything fits once touched".
  BufferPool(PageStore* store, StorageDevice* device,
             uint64_t capacity_pages = 1u << 20)
      : store_(store), device_(device), capacity_(capacity_pages) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Reads a page through the cache; charges the device on a miss.
  const Page& Fetch(PageId id) {
    const auto it = resident_.find(id);
    if (it != resident_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++hits_;
      return store_->page(id);
    }
    device_->ChargeRead(id);
    ++misses_;
    lru_.push_front(id);
    resident_.emplace(id, lru_.begin());
    if (lru_.size() > capacity_) {
      resident_.erase(lru_.back());
      lru_.pop_back();
    }
    return store_->page(id);
  }

  /// Evicts everything (cold-cache benchmarking).
  void DropCaches() {
    resident_.clear();
    lru_.clear();
  }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t resident_pages() const { return lru_.size(); }

  void ResetStats() {
    hits_ = 0;
    misses_ = 0;
  }

 private:
  PageStore* store_;
  StorageDevice* device_;
  uint64_t capacity_;
  std::list<PageId> lru_;
  std::unordered_map<PageId, std::list<PageId>::iterator> resident_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace ptldb

#endif  // PTLDB_ENGINE_BUFFER_POOL_H_
