#ifndef PTLDB_TIMETABLE_GTFS_H_
#define PTLDB_TIMETABLE_GTFS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "timetable/timetable.h"

namespace ptldb {

/// Day-of-week selector matching GTFS calendar.txt column names.
enum class Weekday {
  kMonday = 0,
  kTuesday,
  kWednesday,
  kThursday,
  kFriday,
  kSaturday,
  kSunday,
};

/// Options for loading a GTFS feed. The paper's datasets "record the
/// timetable ... on a weekday", so the loader extracts a single service day.
struct GtfsOptions {
  /// Service day to extract; trips whose service is inactive are skipped.
  /// When the feed has no calendar.txt every trip is kept.
  Weekday weekday = Weekday::kTuesday;
  /// Concrete service date as "YYYYMMDD" (e.g. "20240312"). When set it
  /// takes precedence over `weekday` (the weekday is derived from the
  /// date), calendar.txt rows are additionally checked against their
  /// start_date/end_date window, and calendar_dates.txt exceptions are
  /// applied: exception_type 1 adds the service on that date, 2 removes
  /// it. A feed may define services via calendar_dates.txt alone. When
  /// empty, only `weekday` is consulted and calendar_dates.txt is ignored
  /// (date exceptions are meaningless without a date).
  std::string service_date = {};
  /// GTFS feeds occasionally contain stop_time pairs with non-increasing
  /// times; when true such connections are silently dropped (counted in
  /// GtfsLoadResult::dropped_connections), otherwise loading fails.
  bool drop_non_positive_durations = true;
};

/// A loaded feed: the timetable plus id mappings back to the feed.
struct GtfsLoadResult {
  Timetable timetable;
  /// Dense StopId -> GTFS stop_id.
  std::vector<std::string> stop_ids;
  /// Dense TripId -> GTFS trip_id.
  std::vector<std::string> trip_ids;
  /// GTFS stop_id -> dense StopId.
  std::unordered_map<std::string, StopId> stop_index;
  uint64_t dropped_connections = 0;
  uint64_t skipped_trips = 0;
};

/// Loads a GTFS feed from a directory containing at least stops.txt,
/// trips.txt and stop_times.txt. calendar.txt (service days),
/// calendar_dates.txt (per-date exceptions; needs GtfsOptions::service_date)
/// and frequencies.txt (headway-expanded trips) are honored when present.
/// All parsing is done manually (no third-party GTFS library).
Result<GtfsLoadResult> LoadGtfs(const std::string& directory,
                                const GtfsOptions& options = {});

}  // namespace ptldb

#endif  // PTLDB_TIMETABLE_GTFS_H_
