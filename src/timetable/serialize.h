#ifndef PTLDB_TIMETABLE_SERIALIZE_H_
#define PTLDB_TIMETABLE_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "timetable/timetable.h"

namespace ptldb {

/// Persists a timetable to a binary file (stop metadata + connections; the
/// derived indexes are rebuilt on load). Used by the benchmark dataset
/// cache so repeated bench runs skip generation.
Status SaveTimetable(const Timetable& tt, const std::string& path);

/// Loads a timetable previously written by SaveTimetable.
Result<Timetable> LoadTimetable(const std::string& path);

}  // namespace ptldb

#endif  // PTLDB_TIMETABLE_SERIALIZE_H_
