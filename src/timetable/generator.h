#ifndef PTLDB_TIMETABLE_GENERATOR_H_
#define PTLDB_TIMETABLE_GENERATOR_H_

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "timetable/timetable.h"

namespace ptldb {

/// Parameters of the synthetic transit-network generator.
///
/// The generator models a city: stops are placed in the unit square with a
/// denser core, routes are short random walks between nearby stops (run in
/// both directions), and every route is serviced all day with rush-hour
/// dependent headways. The result is a schedule-based multigraph with the
/// same structural shape as the paper's GTFS datasets (Table 7): |V| stops,
/// roughly `target_connections` arcs, realistic event-time distributions
/// with morning/evening peaks.
struct GeneratorOptions {
  uint32_t num_stops = 1000;
  /// Desired |E|; the generator sizes the number of routes to approximate it
  /// (coverage routes for otherwise-unreached stops add a small overshoot).
  uint64_t target_connections = 100000;
  /// Stops per route, sampled uniformly in [min_route_len, max_route_len].
  uint32_t min_route_len = 8;
  uint32_t max_route_len = 20;
  /// Service day window (may extend past midnight).
  EventTime service_start = EventTime::FromSeconds(4 * 3600);
  EventTime service_end = EventTime::FromSeconds(26 * 3600);
  /// Headways during rush hours (07-09, 16-19) and otherwise.
  Duration peak_headway = Duration::FromSeconds(600);
  Duration offpeak_headway = Duration::FromSeconds(1200);
  /// Travel time per hop = distance * hop_seconds_per_unit, at least
  /// min_hop_seconds; a 30 s dwell is added at intermediate stops.
  double hop_seconds_per_unit = 7200.0;
  Duration min_hop_seconds = Duration::FromSeconds(60);
  Duration dwell_seconds = Duration::FromSeconds(30);
  uint64_t seed = 1;
};

/// Generates a synthetic timetable. Deterministic for fixed options.
Result<Timetable> GenerateNetwork(const GeneratorOptions& options);

/// Shape parameters of one of the paper's 11 evaluation datasets (Table 7).
/// `num_stops`/`num_connections` are the paper's full-size figures; callers
/// scale them down with CityOptions(profile, scale).
struct CityProfile {
  const char* name;
  uint32_t num_stops;        // Paper's |V|.
  uint64_t num_connections;  // Paper's |E|.
  uint32_t route_len;        // Typical stops per route.
  Duration peak_headway;     // Densest service (drives avg degree).
  Duration offpeak_headway;
};

/// The 11 datasets of Table 7.
inline constexpr CityProfile kCityProfiles[] = {
    // name            |V|     |E|        len  peak  offpeak
    {"Austin",          2000,   317000,   14,  Duration::FromSeconds(600), Duration::FromSeconds(1200)},
    {"Berlin",         12000,  2081000,   16,  Duration::FromSeconds(600), Duration::FromSeconds(1200)},
    {"Budapest",        5000,  1446000,   16,  Duration::FromSeconds(450), Duration::FromSeconds(900)},
    {"Denver",         10000,   711000,   14,  Duration::FromSeconds(900), Duration::FromSeconds(1800)},
    {"Houston",        10000,  1113000,   14,  Duration::FromSeconds(750), Duration::FromSeconds(1500)},
    {"LosAngeles",     15000,  1928000,   15,  Duration::FromSeconds(700), Duration::FromSeconds(1400)},
    {"Madrid",          4000,  1913000,   20,  Duration::FromSeconds(300), Duration::FromSeconds(600)},
    {"Roma",            9000,  2281000,   18,  Duration::FromSeconds(400), Duration::FromSeconds(800)},
    {"SaltLakeCity",    6000,   330000,   12, Duration::FromSeconds(1200), Duration::FromSeconds(2400)},
    {"Sweden",         51000,  4072000,   12,  Duration::FromSeconds(900), Duration::FromSeconds(1800)},
    {"Toronto",        10000,  3300000,   18,  Duration::FromSeconds(350), Duration::FromSeconds(700)},
};
inline constexpr size_t kNumCityProfiles =
    sizeof(kCityProfiles) / sizeof(kCityProfiles[0]);

/// Finds a profile by (case-sensitive) name; nullptr when unknown.
const CityProfile* FindCityProfile(const std::string& name);

/// Generator options for `profile` scaled by `scale` (0 < scale <= 1):
/// |V| and |E| shrink linearly, so the average degree |E|/|V| — the property
/// the paper's discussion keys on — is preserved.
GeneratorOptions CityOptions(const CityProfile& profile, double scale,
                             uint64_t seed = 1);

}  // namespace ptldb

#endif  // PTLDB_TIMETABLE_GENERATOR_H_
