#ifndef PTLDB_TIMETABLE_GTFS_WRITER_H_
#define PTLDB_TIMETABLE_GTFS_WRITER_H_

#include <string>

#include "common/status.h"
#include "timetable/timetable.h"

namespace ptldb {

/// Writes `tt` as a minimal GTFS feed (stops.txt, routes.txt, trips.txt,
/// stop_times.txt, calendar.txt with an every-day service) into `directory`,
/// creating it if needed. Each trip becomes one GTFS trip whose stop_times
/// follow the trip's connection sequence.
///
/// Round-tripping through WriteGtfs + LoadGtfs reproduces the same
/// connection multiset, which the test suite exercises as a property.
Status WriteGtfs(const Timetable& tt, const std::string& directory);

}  // namespace ptldb

#endif  // PTLDB_TIMETABLE_GTFS_WRITER_H_
