#ifndef PTLDB_TIMETABLE_TYPES_H_
#define PTLDB_TIMETABLE_TYPES_H_

#include <cstdint>
#include <limits>

#include "common/time_util.h"

namespace ptldb {

/// Stop (station) identifier: dense index in [0, num_stops).
using StopId = uint32_t;
/// Trip (vehicle run) identifier: dense index in [0, num_trips).
using TripId = uint32_t;
/// Connection identifier: dense index in [0, num_connections).
using ConnectionId = uint32_t;

inline constexpr StopId kInvalidStop = std::numeric_limits<StopId>::max();
inline constexpr TripId kInvalidTrip = std::numeric_limits<TripId>::max();
inline constexpr ConnectionId kInvalidConnection =
    std::numeric_limits<ConnectionId>::max();

/// One answer row of a kNN / one-to-many query: a target stop and its
/// earliest arrival (EA variants) or latest departure (LD variants).
struct StopTimeResult {
  StopId stop = kInvalidStop;
  EventTime time;

  friend bool operator==(const StopTimeResult&,
                         const StopTimeResult&) = default;
};

/// One elementary arc of the timetable multigraph: trip `trip` departs stop
/// `from` at `dep` and arrives at stop `to` at `arr` (the tuple
/// <u, v, t_d, t_a, b> of the paper). Invariant: arr > dep.
struct Connection {
  StopId from = kInvalidStop;
  StopId to = kInvalidStop;
  EventTime dep;
  EventTime arr;
  TripId trip = kInvalidTrip;

  friend bool operator==(const Connection&, const Connection&) = default;
};

}  // namespace ptldb

#endif  // PTLDB_TIMETABLE_TYPES_H_
