#ifndef PTLDB_TIMETABLE_EXAMPLE_GRAPH_H_
#define PTLDB_TIMETABLE_EXAMPLE_GRAPH_H_

#include <vector>

#include "timetable/timetable.h"

namespace ptldb {

/// The example timetable graph of Figure 1 in the paper: 7 stops, 4 trips.
/// The paper prints timestamps in units of 100 s (324 = 32,400 s = 09:00);
/// this fixture uses real seconds. Reconstructed from the labels of Table 1:
///   trip 0 ("1"): 5 -> 1 -> 0 -> 2 -> 6  (dep 5 @ 28800)
///   trip 1 ("2"): 6 -> 2 -> 0 -> 1 -> 5  (dep 6 @ 28800)
///   trip 2 ("3"): 3 -> 0                 (dep 3 @ 32400)
///   trip 3 ("4"): 4 -> 0, then branches 0 -> 3 and 0 -> 4 (the multigraph
///                 of the paper allows arbitrary arc sets per trip)
/// Vertex order: 0 highest, then 1, 2, 3, 4, 5, 6.
Timetable MakeExampleTimetable();

/// The vertex order of the example (rank position i holds the stop id with
/// rank i; most important first): {0, 1, 2, 3, 4, 5, 6}.
std::vector<StopId> ExampleVertexOrder();

}  // namespace ptldb

#endif  // PTLDB_TIMETABLE_EXAMPLE_GRAPH_H_
