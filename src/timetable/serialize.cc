#include "timetable/serialize.h"

#include "common/binary_io.h"

namespace ptldb {

namespace {
constexpr uint64_t kMagic = 0x5054544254313031ULL;  // "PTTBT101"
}  // namespace

Status SaveTimetable(const Timetable& tt, const std::string& path) {
  BinaryWriter w(path);
  if (!w.ok()) return Status::IoError("cannot open " + path);
  w.Write(kMagic);
  w.Write<uint32_t>(tt.num_stops());
  w.Write<uint32_t>(tt.num_trips());
  for (StopId s = 0; s < tt.num_stops(); ++s) {
    const StopInfo& info = tt.stop(s);
    w.WriteString(info.name);
    w.Write(info.lat);
    w.Write(info.lon);
  }
  std::vector<Connection> conns(tt.connections().begin(),
                                tt.connections().end());
  w.WriteVector(conns);
  return w.FinishWithChecksum();
}

Result<Timetable> LoadTimetable(const std::string& path) {
  BinaryReader r(path);
  if (!r.ok()) return Status::IoError("cannot open " + path);
  if (r.Read<uint64_t>() != kMagic) {
    return Status::Corruption("bad timetable file magic: " + path);
  }
  const auto num_stops = r.Read<uint32_t>();
  const auto num_trips = r.Read<uint32_t>();
  TimetableBuilder builder;
  for (uint32_t s = 0; s < num_stops; ++s) {
    StopInfo info;
    info.name = r.ReadString();
    info.lat = r.Read<double>();
    info.lon = r.Read<double>();
    builder.AddStop(std::move(info));
  }
  for (uint32_t t = 0; t < num_trips; ++t) builder.AddTrip();
  const auto conns = r.ReadVector<Connection>();
  if (!r.ok()) return Status::Corruption("truncated timetable file " + path);
  PTLDB_RETURN_IF_ERROR(r.VerifyChecksum());
  for (const Connection& c : conns) {
    builder.AddConnection(c.from, c.to, c.dep, c.arr, c.trip);
  }
  return std::move(builder).Build();
}

}  // namespace ptldb
