#include "timetable/serialize.h"

#include <type_traits>

#include "common/binary_io.h"

namespace ptldb {

namespace {
constexpr uint64_t kMagic = 0x5054544254313031ULL;  // "PTTBT101"

// On-wire connection record. The file format predates the typed time
// tier: times are the 32-bit stored encoding, and the field order/widths
// here are the historical `Connection` layout (20 packed bytes), so files
// written before the EventTime refactor load byte-identically.
struct StoredConnection {
  uint32_t from = 0;
  uint32_t to = 0;
  StoredTime dep = 0;
  StoredTime arr = 0;
  uint32_t trip = 0;
};
static_assert(sizeof(StoredConnection) == 20);
static_assert(std::is_trivially_copyable_v<StoredConnection>);

}  // namespace

Status SaveTimetable(const Timetable& tt, const std::string& path) {
  BinaryWriter w(path);
  if (!w.ok()) return Status::IoError("cannot open " + path);
  w.Write(kMagic);
  w.Write<uint32_t>(tt.num_stops());
  w.Write<uint32_t>(tt.num_trips());
  for (StopId s = 0; s < tt.num_stops(); ++s) {
    const StopInfo& info = tt.stop(s);
    w.WriteString(info.name);
    w.Write(info.lat);
    w.Write(info.lon);
  }
  std::vector<StoredConnection> conns;
  conns.reserve(tt.connections().size());
  for (const Connection& c : tt.connections()) {
    conns.push_back({c.from, c.to, ToStoredTime(c.dep), ToStoredTime(c.arr),
                     c.trip});
  }
  w.WriteVector(conns);
  return w.FinishWithChecksum();
}

Result<Timetable> LoadTimetable(const std::string& path) {
  BinaryReader r(path);
  if (!r.ok()) return Status::IoError("cannot open " + path);
  if (r.Read<uint64_t>() != kMagic) {
    return Status::Corruption("bad timetable file magic: " + path);
  }
  const auto num_stops = r.Read<uint32_t>();
  const auto num_trips = r.Read<uint32_t>();
  TimetableBuilder builder;
  for (uint32_t s = 0; s < num_stops; ++s) {
    StopInfo info;
    info.name = r.ReadString();
    info.lat = r.Read<double>();
    info.lon = r.Read<double>();
    builder.AddStop(std::move(info));
  }
  for (uint32_t t = 0; t < num_trips; ++t) builder.AddTrip();
  const auto conns = r.ReadVector<StoredConnection>();
  if (!r.ok()) return Status::Corruption("truncated timetable file " + path);
  PTLDB_RETURN_IF_ERROR(r.VerifyChecksum());
  for (const StoredConnection& c : conns) {
    builder.AddConnection(c.from, c.to, FromStoredTime(c.dep),
                          FromStoredTime(c.arr), c.trip);
  }
  return std::move(builder).Build();
}

}  // namespace ptldb
