#ifndef PTLDB_TIMETABLE_TIMETABLE_H_
#define PTLDB_TIMETABLE_TIMETABLE_H_

#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time_util.h"
#include "timetable/types.h"

namespace ptldb {

/// Optional stop metadata (GTFS carries it; synthetic networks fill it in).
struct StopInfo {
  std::string name;
  double lat = 0.0;
  double lon = 0.0;
};

/// An immutable schedule-based public-transportation network: the timetable
/// multigraph of the paper (Section 2.2). Stops are vertices; every
/// connection <u, v, t_d, t_a, trip> is an arc. Built via TimetableBuilder.
///
/// The class maintains the access paths every algorithm in this repo needs:
///  - connections sorted by (dep, arr, from, to, trip)  [forward scans]
///  - a permutation sorted by (arr, dep, from, to, trip) [backward scans]
///  - per-trip connection lists in travel order           [path expansion]
///  - per-stop distinct arrival-event times               [dummy tuples]
class Timetable {
 public:
  uint32_t num_stops() const { return static_cast<uint32_t>(stops_.size()); }
  uint32_t num_trips() const { return num_trips_; }
  uint32_t num_connections() const {
    return static_cast<uint32_t>(connections_.size());
  }

  /// |E|/|V| of the multigraph, as reported in Table 7 of the paper.
  double average_degree() const {
    return num_stops() == 0
               ? 0.0
               : static_cast<double>(num_connections()) / num_stops();
  }

  const StopInfo& stop(StopId s) const { return stops_[s]; }

  /// All connections, sorted ascending by (dep, arr, from, to, trip).
  std::span<const Connection> connections() const { return connections_; }

  /// Connection by id (id = position in the dep-sorted order).
  const Connection& connection(ConnectionId id) const {
    return connections_[id];
  }

  /// Connection ids sorted ascending by (arr, dep, from, to, trip).
  std::span<const ConnectionId> by_arrival() const { return by_arrival_; }

  /// Connection ids of a trip, in ascending departure order.
  std::span<const ConnectionId> trip_connections(TripId t) const;

  /// Distinct arrival-event timestamps at `s`, ascending.
  std::span<const EventTime> arrival_events(StopId s) const;

  /// Distinct departure-event timestamps at `s`, ascending.
  std::span<const EventTime> departure_events(StopId s) const;

  /// Index of the first connection (in dep order) with dep >= t.
  size_t FirstConnectionNotBefore(EventTime t) const;

  /// Earliest departure in the timetable (0 when empty).
  EventTime min_time() const { return min_time_; }
  /// Latest arrival in the timetable (0 when empty).
  EventTime max_time() const { return max_time_; }

 private:
  friend class TimetableBuilder;

  std::vector<StopInfo> stops_;
  uint32_t num_trips_ = 0;
  std::vector<Connection> connections_;   // sorted by dep
  std::vector<ConnectionId> by_arrival_;  // sorted by arr
  // CSR: trip -> connection ids.
  std::vector<uint32_t> trip_offsets_;
  std::vector<ConnectionId> trip_conns_;
  // CSR: stop -> distinct event timestamps.
  std::vector<uint32_t> arrival_offsets_;
  std::vector<EventTime> arrival_times_;
  std::vector<uint32_t> departure_offsets_;
  std::vector<EventTime> departure_times_;
  EventTime min_time_;
  EventTime max_time_;
};

/// Accumulates stops and connections and validates them into a Timetable.
///
/// Validation rules:
///  - connection endpoints must be registered stops,
///  - arr > dep for every connection (strictly positive durations keep
///    same-timestamp transfer chains impossible, which makes scan-order
///    tie-breaking irrelevant for every algorithm in this repo),
///  - trip ids must be < the declared trip count.
class TimetableBuilder {
 public:
  /// Registers a stop and returns its dense id.
  StopId AddStop(StopInfo info = {});

  /// Registers a trip and returns its dense id.
  TripId AddTrip();

  /// Adds one arc. Validation happens in Build().
  void AddConnection(StopId from, StopId to, EventTime dep, EventTime arr,
                     TripId trip);

  /// Validates and assembles the immutable Timetable.
  Result<Timetable> Build() &&;

 private:
  std::vector<StopInfo> stops_;
  uint32_t num_trips_ = 0;
  std::vector<Connection> connections_;
};

}  // namespace ptldb

#endif  // PTLDB_TIMETABLE_TIMETABLE_H_
