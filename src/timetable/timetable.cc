#include "timetable/timetable.h"

#include <algorithm>
#include <tuple>

namespace ptldb {

namespace {

// Canonical total order used for the dep-sorted connection array. Every
// algorithm that scans connections relies on this being deterministic.
bool DepLess(const Connection& a, const Connection& b) {
  return std::tie(a.dep, a.arr, a.from, a.to, a.trip) <
         std::tie(b.dep, b.arr, b.from, b.to, b.trip);
}

// Builds a stop -> sorted distinct timestamps CSR from (stop, time) pairs.
void BuildEventCsr(uint32_t num_stops,
                   std::vector<std::pair<StopId, EventTime>> events,
                   std::vector<uint32_t>* offsets,
                   std::vector<EventTime>* times) {
  std::sort(events.begin(), events.end());
  events.erase(std::unique(events.begin(), events.end()), events.end());
  offsets->assign(num_stops + 1, 0);
  times->clear();
  times->reserve(events.size());
  for (const auto& [stop, time] : events) {
    (*offsets)[stop + 1]++;
    times->push_back(time);
  }
  for (uint32_t s = 0; s < num_stops; ++s) (*offsets)[s + 1] += (*offsets)[s];
}

}  // namespace

std::span<const ConnectionId> Timetable::trip_connections(TripId t) const {
  return {trip_conns_.data() + trip_offsets_[t],
          trip_conns_.data() + trip_offsets_[t + 1]};
}

std::span<const EventTime> Timetable::arrival_events(StopId s) const {
  return {arrival_times_.data() + arrival_offsets_[s],
          arrival_times_.data() + arrival_offsets_[s + 1]};
}

std::span<const EventTime> Timetable::departure_events(StopId s) const {
  return {departure_times_.data() + departure_offsets_[s],
          departure_times_.data() + departure_offsets_[s + 1]};
}

size_t Timetable::FirstConnectionNotBefore(EventTime t) const {
  return static_cast<size_t>(
      std::lower_bound(connections_.begin(), connections_.end(), t,
                       [](const Connection& c, EventTime v) {
                         return c.dep < v;
                       }) -
      connections_.begin());
}

StopId TimetableBuilder::AddStop(StopInfo info) {
  stops_.push_back(std::move(info));
  return static_cast<StopId>(stops_.size() - 1);
}

TripId TimetableBuilder::AddTrip() { return num_trips_++; }

void TimetableBuilder::AddConnection(StopId from, StopId to, EventTime dep,
                                     EventTime arr, TripId trip) {
  connections_.push_back({from, to, dep, arr, trip});
}

Result<Timetable> TimetableBuilder::Build() && {
  const auto num_stops = static_cast<uint32_t>(stops_.size());
  for (const Connection& c : connections_) {
    if (c.from >= num_stops || c.to >= num_stops) {
      return Status::InvalidArgument("connection references unknown stop");
    }
    if (c.trip >= num_trips_) {
      return Status::InvalidArgument("connection references unknown trip");
    }
    if (c.arr <= c.dep) {
      return Status::InvalidArgument(
          "connection must have strictly positive duration");
    }
    if (c.from == c.to) {
      return Status::InvalidArgument("connection loops on one stop");
    }
  }

  Timetable tt;
  tt.stops_ = std::move(stops_);
  tt.num_trips_ = num_trips_;
  tt.connections_ = std::move(connections_);
  std::sort(tt.connections_.begin(), tt.connections_.end(), DepLess);

  const auto n = static_cast<uint32_t>(tt.connections_.size());
  tt.by_arrival_.resize(n);
  for (uint32_t i = 0; i < n; ++i) tt.by_arrival_[i] = i;
  std::sort(tt.by_arrival_.begin(), tt.by_arrival_.end(),
            [&](ConnectionId a, ConnectionId b) {
              const Connection& ca = tt.connections_[a];
              const Connection& cb = tt.connections_[b];
              return std::tie(ca.arr, ca.dep, ca.from, ca.to, ca.trip) <
                     std::tie(cb.arr, cb.dep, cb.from, cb.to, cb.trip);
            });

  // Trip CSR (connections of a trip in departure order; the dep-sorted
  // global order already gives that within a trip).
  tt.trip_offsets_.assign(tt.num_trips_ + 1, 0);
  for (const Connection& c : tt.connections_) tt.trip_offsets_[c.trip + 1]++;
  for (uint32_t t = 0; t < tt.num_trips_; ++t) {
    tt.trip_offsets_[t + 1] += tt.trip_offsets_[t];
  }
  tt.trip_conns_.resize(n);
  {
    std::vector<uint32_t> cursor(tt.trip_offsets_.begin(),
                                 tt.trip_offsets_.end() - 1);
    for (uint32_t i = 0; i < n; ++i) {
      tt.trip_conns_[cursor[tt.connections_[i].trip]++] = i;
    }
  }

  // Event CSRs.
  std::vector<std::pair<StopId, EventTime>> arrivals;
  std::vector<std::pair<StopId, EventTime>> departures;
  arrivals.reserve(n);
  departures.reserve(n);
  for (const Connection& c : tt.connections_) {
    arrivals.emplace_back(c.to, c.arr);
    departures.emplace_back(c.from, c.dep);
  }
  BuildEventCsr(num_stops, std::move(arrivals), &tt.arrival_offsets_,
                &tt.arrival_times_);
  BuildEventCsr(num_stops, std::move(departures), &tt.departure_offsets_,
                &tt.departure_times_);

  if (!tt.connections_.empty()) {
    tt.min_time_ = tt.connections_.front().dep;
    tt.max_time_ = tt.connections_[tt.by_arrival_.back()].arr;
  }
  return tt;
}

}  // namespace ptldb
