#include "timetable/generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace ptldb {

namespace {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

double Distance(const Point& a, const Point& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

// Spatial grid for nearest-neighbor candidate lookup.
class StopGrid {
 public:
  StopGrid(const std::vector<Point>& points, uint32_t cells_per_side)
      : points_(points), side_(std::max(1u, cells_per_side)) {
    cells_.resize(static_cast<size_t>(side_) * side_);
    for (uint32_t i = 0; i < points.size(); ++i) {
      cells_[CellOf(points[i])].push_back(i);
    }
  }

  // Up to `k` nearest stops to `s` (excluding s itself), by expanding rings
  // of grid cells.
  std::vector<uint32_t> Nearest(uint32_t s, uint32_t k) const {
    const Point& p = points_[s];
    const int cx = ClampCell(p.x);
    const int cy = ClampCell(p.y);
    std::vector<uint32_t> found;
    for (int radius = 0; radius < static_cast<int>(side_); ++radius) {
      for (int dx = -radius; dx <= radius; ++dx) {
        for (int dy = -radius; dy <= radius; ++dy) {
          if (std::max(std::abs(dx), std::abs(dy)) != radius) continue;
          const int x = cx + dx;
          const int y = cy + dy;
          if (x < 0 || y < 0 || x >= static_cast<int>(side_) ||
              y >= static_cast<int>(side_)) {
            continue;
          }
          for (uint32_t id : cells_[static_cast<size_t>(y) * side_ + x]) {
            if (id != s) found.push_back(id);
          }
        }
      }
      if (found.size() >= k && radius >= 1) break;
    }
    std::sort(found.begin(), found.end(), [&](uint32_t a, uint32_t b) {
      return Distance(points_[a], p) < Distance(points_[b], p);
    });
    if (found.size() > k) found.resize(k);
    return found;
  }

 private:
  int ClampCell(double v) const {
    const int c = static_cast<int>(v * side_);
    return std::clamp(c, 0, static_cast<int>(side_) - 1);
  }
  size_t CellOf(const Point& p) const {
    return static_cast<size_t>(ClampCell(p.y)) * side_ + ClampCell(p.x);
  }

  const std::vector<Point>& points_;
  uint32_t side_;
  std::vector<std::vector<uint32_t>> cells_;
};

bool IsPeakHour(EventTime t) {
  const int64_t hour = HourOf(t) % 24;
  return (hour >= 7 && hour < 9) || (hour >= 16 && hour < 19);
}

}  // namespace

Result<Timetable> GenerateNetwork(const GeneratorOptions& options) {
  if (options.num_stops < 2) {
    return Status::InvalidArgument("need at least 2 stops");
  }
  if (options.min_route_len < 2 ||
      options.max_route_len < options.min_route_len) {
    return Status::InvalidArgument("bad route length range");
  }
  if (options.service_end <= options.service_start) {
    return Status::InvalidArgument("empty service window");
  }
  if (options.peak_headway <= Duration::Zero() ||
      options.offpeak_headway <= Duration::Zero()) {
    return Status::InvalidArgument("headways must be positive");
  }

  Rng rng(options.seed);
  const uint32_t n = options.num_stops;

  // Stop layout: a dense core plus uniform sprawl, like a real city.
  std::vector<Point> points(n);
  for (auto& p : points) {
    if (rng.NextBool(0.5)) {
      p.x = 0.5 + (rng.NextDouble() - 0.5) * 0.4;
      p.y = 0.5 + (rng.NextDouble() - 0.5) * 0.4;
    } else {
      p.x = rng.NextDouble();
      p.y = rng.NextDouble();
    }
  }
  const auto cells =
      static_cast<uint32_t>(std::max(2.0, std::sqrt(n / 4.0)));
  StopGrid grid(points, cells);

  // Estimate trips per route direction to size the route count. Sizing
  // heuristics run in doubles; only the event clock below is typed time.
  const Duration span = options.service_end - options.service_start;
  const double avg_headway =
      0.25 * static_cast<double>(options.peak_headway.raw_seconds()) +
      0.75 * static_cast<double>(options.offpeak_headway.raw_seconds());
  const double trips_per_direction =
      std::max(1.0, static_cast<double>(span.raw_seconds()) / avg_headway);
  const double avg_len =
      0.5 * (options.min_route_len + options.max_route_len);
  const double conns_per_route =
      2.0 * (avg_len - 1.0) * trips_per_direction;
  const auto planned_routes = static_cast<uint32_t>(std::max(
      1.0, std::round(static_cast<double>(options.target_connections) /
                      conns_per_route)));

  TimetableBuilder builder;
  for (uint32_t i = 0; i < n; ++i) {
    builder.AddStop({.name = "stop" + std::to_string(i),
                     .lat = points[i].y,
                     .lon = points[i].x});
  }

  std::vector<bool> covered(n, false);

  // One route = a walk over nearby stops. Returns the stop sequence.
  auto make_route = [&](StopId start) {
    const auto len = static_cast<uint32_t>(
        rng.NextInRange(options.min_route_len, options.max_route_len));
    std::vector<StopId> seq{start};
    covered[start] = true;
    std::vector<bool> used(0);
    while (seq.size() < len) {
      const auto near = grid.Nearest(seq.back(), 6);
      StopId next = kInvalidStop;
      // Prefer a nearby stop not already on this route.
      for (int attempt = 0; attempt < 4 && next == kInvalidStop; ++attempt) {
        if (near.empty()) break;
        const StopId cand = near[rng.NextBelow(near.size())];
        if (std::find(seq.begin(), seq.end(), cand) == seq.end()) next = cand;
      }
      if (next == kInvalidStop) break;
      seq.push_back(next);
      covered[next] = true;
    }
    return seq;
  };

  // Route set: coverage walks from every unserved stop first, then random
  // density routes up to the planned count.
  std::vector<std::vector<StopId>> routes;
  for (StopId s = 0; s < n; ++s) {
    if (!covered[s]) {
      auto seq = make_route(s);
      if (seq.size() >= 2) routes.push_back(std::move(seq));
    }
  }
  while (routes.size() < planned_routes) {
    auto seq = make_route(static_cast<StopId>(rng.NextBelow(n)));
    if (seq.size() >= 2) routes.push_back(std::move(seq));
  }

  // Headway scale keeps the connection count near the target even when the
  // coverage pass created more routes than planned.
  double expected = 0.0;
  for (const auto& seq : routes) {
    expected += 2.0 * (static_cast<double>(seq.size()) - 1.0) *
                trips_per_direction;
  }
  const double headway_scale = std::clamp(
      expected / static_cast<double>(options.target_connections), 1.0, 16.0);

  // Emits all trips of one route direction.
  auto emit_direction = [&](const std::vector<StopId>& seq) {
    // Per-hop travel times are fixed per route (same physical track).
    std::vector<Duration> hop(seq.size() - 1);
    for (size_t i = 0; i + 1 < seq.size(); ++i) {
      const double d = Distance(points[seq[i]], points[seq[i + 1]]);
      hop[i] = std::max(
          options.min_hop_seconds,
          Duration::FromSeconds(
              static_cast<int64_t>(d * options.hop_seconds_per_unit)));
    }
    // The event clock is typed 64-bit time: with a service window ending
    // near the stored horizon, `t + hop`, `arr + dwell` and the headway
    // advance all used to overflow int32 (UB, and the wrapped departure
    // could turn the while loop infinite) before the loop condition had a
    // chance to stop the trip. Hops that would reach the infinity
    // sentinel are dropped — the sentinel must stay unreachable as a real
    // event time.
    EventTime dep =
        options.service_start +
        Duration::FromSeconds(static_cast<int64_t>(rng.NextBelow(
            static_cast<uint64_t>(options.peak_headway.raw_seconds()))));
    while (dep < options.service_end) {
      const TripId trip = builder.AddTrip();
      EventTime t = dep;
      for (size_t i = 0; i + 1 < seq.size(); ++i) {
        const EventTime arr = t + hop[i];
        if (arr >= EventTime::Infinity()) break;
        builder.AddConnection(seq[i], seq[i + 1], t, arr, trip);
        t = arr + options.dwell_seconds;
      }
      const Duration base = IsPeakHour(dep) ? options.peak_headway
                                            : options.offpeak_headway;
      const auto headway = static_cast<int64_t>(
          static_cast<double>(base.raw_seconds()) * headway_scale);
      // +-20% jitter keeps event times from aligning artificially.
      const int64_t jitter = rng.NextInRange(-headway / 5, headway / 5);
      dep += Duration::FromSeconds(std::max<int64_t>(60, headway + jitter));
    }
  };

  for (const auto& seq : routes) {
    emit_direction(seq);
    const std::vector<StopId> reversed(seq.rbegin(), seq.rend());
    emit_direction(reversed);
  }

  return std::move(builder).Build();
}

const CityProfile* FindCityProfile(const std::string& name) {
  for (const CityProfile& p : kCityProfiles) {
    if (name == p.name) return &p;
  }
  return nullptr;
}

GeneratorOptions CityOptions(const CityProfile& profile, double scale,
                             uint64_t seed) {
  GeneratorOptions options;
  options.num_stops = std::max<uint32_t>(
      50, static_cast<uint32_t>(profile.num_stops * scale));
  options.target_connections = std::max<uint64_t>(
      1000, static_cast<uint64_t>(
                static_cast<double>(profile.num_connections) * scale));
  options.min_route_len = std::max(4u, profile.route_len - 4);
  options.max_route_len = profile.route_len + 4;
  options.peak_headway = profile.peak_headway;
  options.offpeak_headway = profile.offpeak_headway;
  options.seed = seed;
  return options;
}

}  // namespace ptldb
