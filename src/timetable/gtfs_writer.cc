#include "timetable/gtfs_writer.h"

#include <filesystem>
#include <sstream>

#include "common/csv.h"

namespace ptldb {

namespace {

// Escapes a field for CSV output (quotes when it contains , " or newline).
std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

}  // namespace

Status WriteGtfs(const Timetable& tt, const std::string& directory) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) return Status::IoError("cannot create " + directory);

  std::ostringstream stops;
  stops << "stop_id,stop_name,stop_lat,stop_lon\n";
  for (StopId s = 0; s < tt.num_stops(); ++s) {
    const StopInfo& info = tt.stop(s);
    stops << "S" << s << "," << CsvEscape(info.name) << "," << info.lat << ","
          << info.lon << "\n";
  }

  std::ostringstream routes;
  routes << "route_id,route_short_name,route_type\n";
  routes << "R0,ptldb,3\n";

  std::ostringstream calendar;
  calendar << "service_id,monday,tuesday,wednesday,thursday,friday,saturday,"
              "sunday,start_date,end_date\n";
  calendar << "ALL,1,1,1,1,1,1,1,20160101,20261231\n";

  std::ostringstream trips;
  trips << "route_id,service_id,trip_id\n";
  std::ostringstream stop_times;
  stop_times << "trip_id,arrival_time,departure_time,stop_id,stop_sequence\n";

  // GTFS trips are linear stop sequences; a timetable trip whose connections
  // do not chain (the multigraph allows that) is split into chained segments.
  int gtfs_trip = 0;
  for (TripId t = 0; t < tt.num_trips(); ++t) {
    const auto conns = tt.trip_connections(t);
    size_t i = 0;
    while (i < conns.size()) {
      size_t j = i;
      while (j + 1 < conns.size()) {
        const Connection& cur = tt.connection(conns[j]);
        const Connection& next = tt.connection(conns[j + 1]);
        if (cur.to != next.from || next.dep < cur.arr) break;
        ++j;
      }
      const std::string trip_id = "T" + std::to_string(gtfs_trip++);
      trips << "R0,ALL," << trip_id << "\n";
      int seq = 0;
      const Connection& first = tt.connection(conns[i]);
      stop_times << trip_id << "," << FormatTime(first.dep) << ","
                 << FormatTime(first.dep) << ",S" << first.from << "," << seq++
                 << "\n";
      for (size_t k = i; k <= j; ++k) {
        const Connection& c = tt.connection(conns[k]);
        const EventTime departure =
            k < j ? tt.connection(conns[k + 1]).dep : c.arr;
        stop_times << trip_id << "," << FormatTime(c.arr) << ","
                   << FormatTime(departure) << ",S" << c.to << "," << seq++
                   << "\n";
      }
      i = j + 1;
    }
  }

  const auto write = [&](const char* name, const std::ostringstream& body) {
    return WriteStringToFile((fs::path(directory) / name).string(),
                             body.str());
  };
  PTLDB_RETURN_IF_ERROR(write("stops.txt", stops));
  PTLDB_RETURN_IF_ERROR(write("routes.txt", routes));
  PTLDB_RETURN_IF_ERROR(write("calendar.txt", calendar));
  PTLDB_RETURN_IF_ERROR(write("trips.txt", trips));
  PTLDB_RETURN_IF_ERROR(write("stop_times.txt", stop_times));
  return Status::Ok();
}

}  // namespace ptldb
