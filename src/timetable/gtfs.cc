#include "timetable/gtfs.h"

#include <algorithm>
#include <filesystem>
#include <unordered_set>

#include "common/csv.h"
#include "common/string_util.h"

namespace ptldb {

namespace {

const char* WeekdayColumn(Weekday day) {
  switch (day) {
    case Weekday::kMonday:
      return "monday";
    case Weekday::kTuesday:
      return "tuesday";
    case Weekday::kWednesday:
      return "wednesday";
    case Weekday::kThursday:
      return "thursday";
    case Weekday::kFriday:
      return "friday";
    case Weekday::kSaturday:
      return "saturday";
    case Weekday::kSunday:
      return "sunday";
  }
  return "tuesday";
}

struct StopTime {
  EventTime arrival = EventTime::Invalid();
  EventTime departure = EventTime::Invalid();
  StopId stop = kInvalidStop;
  int64_t sequence = 0;
};

struct Frequency {
  EventTime start;
  EventTime end;
  Duration headway;
};

// Parses "YYYYMMDD" into (year, month, day); false on malformed input.
bool ParseGtfsDate(const std::string& date, int* y, int* m, int* d) {
  if (date.size() != 8) return false;
  for (const char c : date) {
    if (c < '0' || c > '9') return false;
  }
  *y = std::stoi(date.substr(0, 4));
  *m = std::stoi(date.substr(4, 2));
  *d = std::stoi(date.substr(6, 2));
  return *m >= 1 && *m <= 12 && *d >= 1 && *d <= 31;
}

// Sakamoto's day-of-week, mapped onto the Weekday enum (Monday = 0).
Weekday WeekdayOfDate(int y, int m, int d) {
  static const int t[] = {0, 3, 2, 5, 0, 3, 5, 1, 4, 6, 2, 4};
  if (m < 3) y -= 1;
  const int sunday0 = (y + y / 4 - y / 100 + y / 400 + t[m - 1] + d) % 7;
  return static_cast<Weekday>((sunday0 + 6) % 7);
}

}  // namespace

Result<GtfsLoadResult> LoadGtfs(const std::string& directory,
                                const GtfsOptions& options) {
  namespace fs = std::filesystem;
  const auto path = [&](const char* file) {
    return (fs::path(directory) / file).string();
  };

  GtfsLoadResult out;
  TimetableBuilder builder;

  // --- stops.txt ---
  auto stops = CsvTable::ParseFile(path("stops.txt"));
  if (!stops.ok()) return stops.status();
  if (stops->ColumnIndex("stop_id") < 0) {
    return Status::Corruption("stops.txt lacks stop_id column");
  }
  for (size_t r = 0; r < stops->num_rows(); ++r) {
    const std::string& id = stops->Field(r, "stop_id");
    if (id.empty()) return Status::Corruption("empty stop_id in stops.txt");
    if (out.stop_index.count(id) != 0) {
      return Status::Corruption("duplicate stop_id " + id);
    }
    StopInfo info;
    info.name = stops->Field(r, "stop_name");
    info.lat = ParseDouble(stops->Field(r, "stop_lat")).value_or(0.0);
    info.lon = ParseDouble(stops->Field(r, "stop_lon")).value_or(0.0);
    const StopId s = builder.AddStop(std::move(info));
    out.stop_index.emplace(id, s);
    out.stop_ids.push_back(id);
  }

  // --- calendar.txt / calendar_dates.txt (optional): active services ---
  Weekday weekday = options.weekday;
  if (!options.service_date.empty()) {
    int y, m, d;
    if (!ParseGtfsDate(options.service_date, &y, &m, &d)) {
      return Status::InvalidArgument("bad service_date (want YYYYMMDD): " +
                                     options.service_date);
    }
    weekday = WeekdayOfDate(y, m, d);
  }
  std::unordered_set<std::string> active_services;
  bool have_calendar = false;
  if (fs::exists(path("calendar.txt"))) {
    auto calendar = CsvTable::ParseFile(path("calendar.txt"));
    if (!calendar.ok()) return calendar.status();
    have_calendar = true;
    const char* column = WeekdayColumn(weekday);
    for (size_t r = 0; r < calendar->num_rows(); ++r) {
      if (calendar->Field(r, column) != "1") continue;
      if (!options.service_date.empty()) {
        // start_date/end_date are fixed-width YYYYMMDD, so string
        // comparison orders correctly; an absent column reads as "".
        const std::string& start = calendar->Field(r, "start_date");
        const std::string& end = calendar->Field(r, "end_date");
        if (!start.empty() && options.service_date < start) continue;
        if (!end.empty() && options.service_date > end) continue;
      }
      active_services.insert(calendar->Field(r, "service_id"));
    }
  }
  if (!options.service_date.empty() && fs::exists(path("calendar_dates.txt"))) {
    auto exceptions = CsvTable::ParseFile(path("calendar_dates.txt"));
    if (!exceptions.ok()) return exceptions.status();
    have_calendar = true;  // A feed may define services by exceptions only.
    for (size_t r = 0; r < exceptions->num_rows(); ++r) {
      if (exceptions->Field(r, "date") != options.service_date) continue;
      const std::string& service = exceptions->Field(r, "service_id");
      const std::string& type = exceptions->Field(r, "exception_type");
      if (type == "1") {
        active_services.insert(service);
      } else if (type == "2") {
        active_services.erase(service);
      } else {
        return Status::Corruption("bad exception_type in calendar_dates.txt");
      }
    }
  }

  // --- trips.txt ---
  auto trips = CsvTable::ParseFile(path("trips.txt"));
  if (!trips.ok()) return trips.status();
  if (trips->ColumnIndex("trip_id") < 0) {
    return Status::Corruption("trips.txt lacks trip_id column");
  }
  std::unordered_map<std::string, TripId> trip_index;
  for (size_t r = 0; r < trips->num_rows(); ++r) {
    const std::string& trip_id = trips->Field(r, "trip_id");
    if (trip_id.empty()) return Status::Corruption("empty trip_id");
    if (have_calendar &&
        active_services.count(trips->Field(r, "service_id")) == 0) {
      out.skipped_trips++;
      continue;
    }
    if (trip_index.count(trip_id) != 0) {
      return Status::Corruption("duplicate trip_id " + trip_id);
    }
    trip_index.emplace(trip_id, kInvalidTrip);  // Trip allocated lazily.
  }

  // --- stop_times.txt ---
  auto stop_times = CsvTable::ParseFile(path("stop_times.txt"));
  if (!stop_times.ok()) return stop_times.status();
  for (const char* col : {"trip_id", "stop_id", "stop_sequence"}) {
    if (stop_times->ColumnIndex(col) < 0) {
      return Status::Corruption(std::string("stop_times.txt lacks ") + col);
    }
  }
  std::unordered_map<std::string, std::vector<StopTime>> trip_stop_times;
  for (size_t r = 0; r < stop_times->num_rows(); ++r) {
    const std::string& trip_id = stop_times->Field(r, "trip_id");
    const auto trip_it = trip_index.find(trip_id);
    if (trip_it == trip_index.end()) continue;  // Inactive service.
    const auto stop_it = out.stop_index.find(stop_times->Field(r, "stop_id"));
    if (stop_it == out.stop_index.end()) {
      return Status::Corruption("stop_times references unknown stop " +
                                stop_times->Field(r, "stop_id"));
    }
    StopTime st;
    st.stop = stop_it->second;
    st.arrival = ParseGtfsTime(stop_times->Field(r, "arrival_time"));
    st.departure = ParseGtfsTime(stop_times->Field(r, "departure_time"));
    if (st.departure == EventTime::Invalid()) st.departure = st.arrival;
    if (st.arrival == EventTime::Invalid()) st.arrival = st.departure;
    if (st.arrival == EventTime::Invalid()) {
      return Status::Corruption("stop_time without any time for trip " +
                                trip_id);
    }
    const auto seq = ParseInt(stop_times->Field(r, "stop_sequence"));
    if (!seq) return Status::Corruption("bad stop_sequence for " + trip_id);
    st.sequence = *seq;
    trip_stop_times[trip_id].push_back(st);
  }

  // --- frequencies.txt (optional): headway-based repetitions ---
  std::unordered_map<std::string, std::vector<Frequency>> frequencies;
  if (fs::exists(path("frequencies.txt"))) {
    auto freq = CsvTable::ParseFile(path("frequencies.txt"));
    if (!freq.ok()) return freq.status();
    for (size_t r = 0; r < freq->num_rows(); ++r) {
      Frequency f;
      f.start = ParseGtfsTime(freq->Field(r, "start_time"));
      f.end = ParseGtfsTime(freq->Field(r, "end_time"));
      const auto headway = ParseInt(freq->Field(r, "headway_secs"));
      if (f.start == EventTime::Invalid() || f.end == EventTime::Invalid() ||
          !headway || *headway <= 0) {
        return Status::Corruption("bad frequencies.txt row");
      }
      f.headway = Duration::FromSeconds(*headway);
      frequencies[freq->Field(r, "trip_id")].push_back(f);
    }
  }

  // Emit connections. Deterministic order: sort trip ids.
  std::vector<std::string> ordered_trips;
  ordered_trips.reserve(trip_stop_times.size());
  for (const auto& [id, _] : trip_stop_times) ordered_trips.push_back(id);
  std::sort(ordered_trips.begin(), ordered_trips.end());

  auto emit_trip = [&](const std::vector<StopTime>& seq, Duration shift,
                       const std::string& gtfs_trip_id) -> Status {
    const TripId trip = builder.AddTrip();
    out.trip_ids.push_back(gtfs_trip_id);
    for (size_t i = 0; i + 1 < seq.size(); ++i) {
      const EventTime dep = seq[i].departure + shift;
      const EventTime arr = seq[i + 1].arrival + shift;
      if (arr <= dep) {
        if (!options.drop_non_positive_durations) {
          return Status::Corruption("non-positive connection duration in " +
                                    gtfs_trip_id);
        }
        out.dropped_connections++;
        continue;
      }
      builder.AddConnection(seq[i].stop, seq[i + 1].stop, dep, arr, trip);
    }
    return Status::Ok();
  };

  for (const std::string& trip_id : ordered_trips) {
    auto& seq = trip_stop_times[trip_id];
    std::sort(seq.begin(), seq.end(),
              [](const StopTime& a, const StopTime& b) {
                return a.sequence < b.sequence;
              });
    const auto freq_it = frequencies.find(trip_id);
    if (freq_it == frequencies.end()) {
      PTLDB_RETURN_IF_ERROR(emit_trip(seq, Duration::Zero(), trip_id));
      continue;
    }
    // Headway expansion: the stop_times define relative travel times from
    // the trip's first departure; one trip instance per headway slot.
    const EventTime base = seq.front().departure;
    for (const Frequency& f : freq_it->second) {
      int instance = 0;
      for (EventTime start = f.start; start < f.end; start += f.headway) {
        PTLDB_RETURN_IF_ERROR(emit_trip(
            seq, start - base,
            trip_id + "#" + std::to_string(instance++)));
      }
    }
  }

  auto timetable = std::move(builder).Build();
  if (!timetable.ok()) return timetable.status();
  out.timetable = std::move(*timetable);
  return out;
}

}  // namespace ptldb
