#include "timetable/example_graph.h"

#include <cassert>

namespace ptldb {

Timetable MakeExampleTimetable() {
  TimetableBuilder builder;
  for (int i = 0; i < 7; ++i) {
    builder.AddStop({.name = "stop" + std::to_string(i)});
  }
  const TripId t1 = builder.AddTrip();
  const TripId t2 = builder.AddTrip();
  const TripId t3 = builder.AddTrip();
  const TripId t4 = builder.AddTrip();

  // Times below are the paper's values multiplied by 100 (seconds).
  // Trip 1: 5 -> 1 -> 0 -> 2 -> 6.
  builder.AddConnection(5, 1, EventTime::FromSeconds(28800), EventTime::FromSeconds(32400), t1);
  builder.AddConnection(1, 0, EventTime::FromSeconds(32400), EventTime::FromSeconds(36000), t1);
  builder.AddConnection(0, 2, EventTime::FromSeconds(36000), EventTime::FromSeconds(39600), t1);
  builder.AddConnection(2, 6, EventTime::FromSeconds(39600), EventTime::FromSeconds(43200), t1);
  // Trip 2: 6 -> 2 -> 0 -> 1 -> 5.
  builder.AddConnection(6, 2, EventTime::FromSeconds(28800), EventTime::FromSeconds(32400), t2);
  builder.AddConnection(2, 0, EventTime::FromSeconds(32400), EventTime::FromSeconds(36000), t2);
  builder.AddConnection(0, 1, EventTime::FromSeconds(36000), EventTime::FromSeconds(39600), t2);
  builder.AddConnection(1, 5, EventTime::FromSeconds(39600), EventTime::FromSeconds(43200), t2);
  // Trip 3: 3 -> 0.
  builder.AddConnection(3, 0, EventTime::FromSeconds(32400), EventTime::FromSeconds(36000), t3);
  // Trip 4: 4 -> 0, then 0 -> 3 and 0 -> 4.
  builder.AddConnection(4, 0, EventTime::FromSeconds(32400), EventTime::FromSeconds(36000), t4);
  builder.AddConnection(0, 3, EventTime::FromSeconds(36000), EventTime::FromSeconds(39600), t4);
  builder.AddConnection(0, 4, EventTime::FromSeconds(36000), EventTime::FromSeconds(39600), t4);

  auto result = std::move(builder).Build();
  assert(result.ok());
  return std::move(result).value();
}

std::vector<StopId> ExampleVertexOrder() { return {0, 1, 2, 3, 4, 5, 6}; }

}  // namespace ptldb
