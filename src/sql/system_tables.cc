#include "sql/system_tables.h"

#include <cstdint>
#include <utility>
#include <vector>

namespace ptldb {

namespace {

SqlValue IntVal(uint64_t v) { return SqlValue(static_cast<int64_t>(v)); }

/// -1 argument fields mean "not applicable" in the ring record; surface
/// them as SQL NULL, not as a misleading integer.
SqlValue ArgVal(int32_t v) {
  return v < 0 ? SqlValue() : SqlValue(static_cast<int64_t>(v));
}

/// Time arguments surface at full 64-bit width (the record stores
/// EventTime); Invalid() and other negatives mean "not applicable".
SqlValue ArgVal(EventTime v) {
  return v.raw_seconds() < 0 ? SqlValue() : SqlValue(v.raw_seconds());
}

SqlValue TextVal(const char* s) {
  return s[0] == '\0' ? SqlValue() : SqlValue(std::string(s));
}

}  // namespace

bool SystemTableCatalog::IsSystemTable(const std::string& name) {
  return name == "ptldb_stats" || name == "ptldb_server" ||
         name == "ptldb_slow_queries" || name == "ptldb_traces";
}

Result<SqlRelation> SystemTableCatalog::Load(const std::string& name) const {
  if (name == "ptldb_stats") return LoadStats();
  if (name == "ptldb_server") return LoadServer();
  if (name == "ptldb_slow_queries") return LoadSlowQueries();
  if (name == "ptldb_traces") return LoadTraces();
  return Status::NotFound("unknown system table " + name);
}

SqlRelation SystemTableCatalog::LoadStats() const {
  SqlRelation out;
  for (const char* col : {"kind", "name", "value", "count", "sum", "min",
                          "max", "p50", "p95", "p99"}) {
    out.columns.push_back({"", col});
  }
  if (!snapshot_) return out;
  const MetricsSnapshot snap = snapshot_();
  for (const auto& [name, value] : snap.counters) {
    out.rows.push_back({SqlValue(std::string("counter")), SqlValue(name),
                        IntVal(value), SqlValue(), SqlValue(), SqlValue(),
                        SqlValue(), SqlValue(), SqlValue(), SqlValue()});
  }
  for (const auto& [name, value] : snap.gauges) {
    out.rows.push_back({SqlValue(std::string("gauge")), SqlValue(name),
                        SqlValue(value), SqlValue(), SqlValue(), SqlValue(),
                        SqlValue(), SqlValue(), SqlValue(), SqlValue()});
  }
  for (const auto& [name, s] : snap.histograms) {
    out.rows.push_back({SqlValue(std::string("histogram")), SqlValue(name),
                        SqlValue(), IntVal(s.count), IntVal(s.sum),
                        IntVal(s.min), IntVal(s.max),
                        SqlValue(static_cast<int64_t>(s.p50)),
                        SqlValue(static_cast<int64_t>(s.p95)),
                        SqlValue(static_cast<int64_t>(s.p99))});
  }
  return out;
}

SqlRelation SystemTableCatalog::LoadServer() const {
  SqlRelation out;
  out.columns.push_back({"", "name"});
  out.columns.push_back({"", "value"});
  if (!snapshot_) return out;
  const MetricsSnapshot snap = snapshot_();
  const auto is_server = [](const std::string& name) {
    return name.compare(0, 7, "server.") == 0;
  };
  for (const auto& [name, value] : snap.counters) {
    if (is_server(name)) out.rows.push_back({SqlValue(name), IntVal(value)});
  }
  for (const auto& [name, value] : snap.gauges) {
    if (is_server(name)) out.rows.push_back({SqlValue(name), SqlValue(value)});
  }
  for (const auto& [name, s] : snap.histograms) {
    if (!is_server(name)) continue;
    out.rows.push_back({SqlValue(name + ".count"), IntVal(s.count)});
    out.rows.push_back({SqlValue(name + ".sum"), IntVal(s.sum)});
    out.rows.push_back(
        {SqlValue(name + ".p50"), SqlValue(static_cast<int64_t>(s.p50))});
    out.rows.push_back(
        {SqlValue(name + ".p95"), SqlValue(static_cast<int64_t>(s.p95))});
    out.rows.push_back(
        {SqlValue(name + ".p99"), SqlValue(static_cast<int64_t>(s.p99))});
  }
  return out;
}

SqlRelation SystemTableCatalog::LoadSlowQueries() const {
  SqlRelation out;
  for (const char* col : {"seq", "type", "set_name", "outcome", "cause", "s",
                          "g", "t", "t_end", "k", "degraded", "slow",
                          "trace_retained", "latency_ns"}) {
    out.columns.push_back({"", col});
  }
  for (size_t p = 0; p < kNumQueryPhases; ++p) {
    out.columns.push_back(
        {"", std::string(QueryPhaseName(static_cast<QueryPhase>(p))) + "_ns"});
  }
  if (query_log_ == nullptr) return out;
  for (const QueryLogRecord& rec : query_log_->SnapshotRecords()) {
    SqlRow row;
    row.reserve(out.columns.size());
    row.push_back(IntVal(rec.seq));
    row.push_back(TextVal(rec.type));
    row.push_back(TextVal(rec.set_name));
    row.push_back(SqlValue(std::string(QueryOutcomeName(rec.outcome))));
    row.push_back(TextVal(rec.cause));
    row.push_back(ArgVal(rec.s));
    row.push_back(ArgVal(rec.g));
    row.push_back(ArgVal(rec.t));
    row.push_back(ArgVal(rec.t_end));
    row.push_back(ArgVal(rec.k));
    row.push_back(IntVal(rec.degraded ? 1 : 0));
    row.push_back(IntVal(rec.slow ? 1 : 0));
    row.push_back(IntVal(rec.trace_retained ? 1 : 0));
    row.push_back(IntVal(rec.latency_ns));
    for (size_t p = 0; p < kNumQueryPhases; ++p) {
      row.push_back(IntVal(rec.phases.ns[p]));
    }
    out.rows.push_back(std::move(row));
  }
  return out;
}

SqlRelation SystemTableCatalog::LoadTraces() const {
  SqlRelation out;
  for (const char* col : {"seq", "type", "reason", "latency_ns", "trace"}) {
    out.columns.push_back({"", col});
  }
  if (query_log_ == nullptr) return out;
  for (const RetainedTrace& trace : query_log_->SnapshotTraces()) {
    out.rows.push_back({IntVal(trace.seq), TextVal(trace.type),
                        TextVal(trace.reason), IntVal(trace.latency_ns),
                        SqlValue(trace.json)});
  }
  return out;
}

}  // namespace ptldb
