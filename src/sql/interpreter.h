#ifndef PTLDB_SQL_INTERPRETER_H_
#define PTLDB_SQL_INTERPRETER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"
#include "common/trace.h"
#include "engine/database.h"
#include "sql/ast.h"

namespace ptldb {

/// A runtime SQL value: NULL, a 64-bit integer, an integer array, or text
/// (text appears only in informational results such as EXPLAIN ANALYZE).
using SqlValue =
    std::variant<std::monostate, int64_t, std::vector<int32_t>, std::string>;

inline bool SqlIsNull(const SqlValue& v) {
  return std::holds_alternative<std::monostate>(v);
}

/// One result row.
using SqlRow = std::vector<SqlValue>;

/// A materialized relation: qualified column names + rows.
struct SqlRelation {
  struct ColumnInfo {
    std::string qualifier;  // Exposure alias of the source ("" = none).
    std::string name;
  };
  std::vector<ColumnInfo> columns;
  std::vector<SqlRow> rows;
};

/// Executes parsed SELECT statements against the embedded engine — the
/// embedded counterpart of running the paper's SQL through PostgreSQL.
/// Table access goes through the engine's buffer pool, so device-model
/// accounting applies exactly as for the hand-built plans.
///
/// Supported: the dialect of sql/parser.h — CTEs, parallel UNNEST with
/// array slices, cross joins with automatic hash-equi-join extraction,
/// MIN/MAX aggregation with and without GROUP BY, ORDER BY (aliases or
/// aggregates), LIMIT, UNION [ALL], FLOOR/LEAST/GREATEST and integer
/// arithmetic. Positional parameters bind as integers ($1 = params[0]).
class SystemTableCatalog;

class SqlInterpreter {
 public:
  explicit SqlInterpreter(EngineDatabase* db) : db_(db) {}

  /// Attaches the virtual system tables (sql/system_tables.h). `catalog`
  /// is borrowed and consulted when a FROM name matches no engine table;
  /// null (the default) leaves the system tables unavailable.
  void set_system_tables(const SystemTableCatalog* catalog) {
    system_tables_ = catalog;
  }

  /// Parses and executes `sql` with the given parameters.
  ///
  /// A statement prefixed with `EXPLAIN ANALYZE` (case-insensitive) is
  /// executed under a span tracer and returns the rendered span tree —
  /// one text row per span with wall times and the engine-counter deltas
  /// (buffer-pool hits/misses, device reads, tuples scanned) of each
  /// plan step — as a single-column "QUERY PLAN" relation, PostgreSQL
  /// style. Bare EXPLAIN (without executing) is not supported: the
  /// interpreter has no cost model to report without running the query.
  Result<SqlRelation> Execute(const std::string& sql,
                              const std::vector<int64_t>& params = {});

  /// Executes an already-parsed statement. `trace`, when non-null,
  /// receives one span per plan step (parse is already done here).
  Result<SqlRelation> ExecuteSelect(const SqlSelect& select,
                                    const std::vector<int64_t>& params = {},
                                    QueryTrace* trace = nullptr);

  /// EXPLAIN ANALYZE as an API: runs `sql` (with or without the
  /// `EXPLAIN ANALYZE` prefix) under `trace` and also hands back the
  /// query's own result rows via `result_out` (both optional). The
  /// returned relation is the rendered "QUERY PLAN". Tests use the trace
  /// to compare span counters against the engine's ground truth; the
  /// timing-free rendering (QueryTrace::ToString(false)) is deterministic
  /// for a fixed plan and dataset.
  Result<SqlRelation> ExplainAnalyze(const std::string& sql,
                                     const std::vector<int64_t>& params = {},
                                     QueryTrace* trace = nullptr,
                                     SqlRelation* result_out = nullptr);

 private:
  EngineDatabase* db_;
  const SystemTableCatalog* system_tables_ = nullptr;
};

}  // namespace ptldb

#endif  // PTLDB_SQL_INTERPRETER_H_
