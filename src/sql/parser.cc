#include "sql/parser.h"

#include "sql/lexer.h"

namespace ptldb {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<SqlToken> tokens) : tokens_(std::move(tokens)) {}

  Result<SqlSelectPtr> ParseStatement() {
    auto select = ParseSelect(/*allow_with=*/true);
    if (!select.ok()) return select;
    Accept(SqlTokenKind::kSemicolon);
    if (Peek().kind != SqlTokenKind::kEnd) {
      return Error("trailing tokens after statement");
    }
    return select;
  }

 private:
  const SqlToken& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }

  const SqlToken& Advance() { return tokens_[pos_++]; }

  bool Accept(SqlTokenKind kind) {
    if (Peek().kind != kind) return false;
    ++pos_;
    return true;
  }

  bool AcceptKeyword(const char* word) {
    if (Peek().kind != SqlTokenKind::kKeyword || Peek().text != word) {
      return false;
    }
    ++pos_;
    return true;
  }

  bool PeekKeyword(const char* word, size_t ahead = 0) const {
    return Peek(ahead).kind == SqlTokenKind::kKeyword &&
           Peek(ahead).text == word;
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument("SQL parse error at offset " +
                                   std::to_string(Peek().offset) + ": " +
                                   message + " (near '" + Peek().text + "')");
  }

  Result<std::string> ExpectIdentifier(const char* what) {
    if (Peek().kind != SqlTokenKind::kIdentifier) {
      return Error(std::string("expected ") + what);
    }
    return Advance().text;
  }

  Status Expect(SqlTokenKind kind, const char* what) {
    if (!Accept(kind)) return Error(std::string("expected ") + what);
    return Status::Ok();
  }

  // select := simple (UNION [ALL] simple)*
  Result<SqlSelectPtr> ParseSelect(bool allow_with) {
    std::vector<std::pair<std::string, SqlSelectPtr>> ctes;
    if (allow_with && AcceptKeyword("WITH")) {
      do {
        auto name = ExpectIdentifier("CTE name");
        if (!name.ok()) return name.status();
        if (!AcceptKeyword("AS")) return Error("expected AS in CTE");
        PTLDB_RETURN_IF_ERROR(Expect(SqlTokenKind::kLParen, "'('"));
        auto body = ParseSelect(/*allow_with=*/false);
        if (!body.ok()) return body;
        PTLDB_RETURN_IF_ERROR(Expect(SqlTokenKind::kRParen, "')'"));
        ctes.emplace_back(std::move(*name), std::move(*body));
      } while (Accept(SqlTokenKind::kComma));
    }

    auto head = ParseSimpleSelect();
    if (!head.ok()) return head;
    SqlSelect* tail = head->get();
    while (PeekKeyword("UNION")) {
      Advance();
      const bool all = AcceptKeyword("ALL");
      auto next = ParseSimpleSelect();
      if (!next.ok()) return next;
      tail->union_all = all;
      tail->union_next = std::move(*next);
      tail = tail->union_next.get();
    }
    (*head)->ctes = std::move(ctes);
    return std::move(*head);
  }

  // simple := SELECT ... | "(" select ")"
  Result<SqlSelectPtr> ParseSimpleSelect() {
    if (Accept(SqlTokenKind::kLParen)) {
      auto inner = ParseSelect(/*allow_with=*/false);
      if (!inner.ok()) return inner;
      PTLDB_RETURN_IF_ERROR(Expect(SqlTokenKind::kRParen, "')'"));
      return inner;
    }
    if (!AcceptKeyword("SELECT")) return Error("expected SELECT");
    auto select = std::make_unique<SqlSelect>();
    // Select list.
    do {
      SqlSelectItem item;
      auto expr = ParseSelectItemExpr();
      if (!expr.ok()) return expr.status();
      item.expr = std::move(*expr);
      if (AcceptKeyword("AS")) {
        auto alias = ExpectIdentifier("alias");
        if (!alias.ok()) return alias.status();
        item.alias = std::move(*alias);
      } else if (Peek().kind == SqlTokenKind::kIdentifier) {
        item.alias = Advance().text;  // Bare alias.
      }
      select->items.push_back(std::move(item));
    } while (Accept(SqlTokenKind::kComma));

    if (AcceptKeyword("FROM")) {
      do {
        auto source = ParseTableRef();
        if (!source.ok()) return source.status();
        select->from.push_back(std::move(*source));
      } while (Accept(SqlTokenKind::kComma));
    }
    if (AcceptKeyword("WHERE")) {
      auto where = ParseExpr();
      if (!where.ok()) return where.status();
      select->where = std::move(*where);
    }
    if (AcceptKeyword("GROUP")) {
      if (!AcceptKeyword("BY")) return Error("expected BY");
      do {
        auto expr = ParseExpr();
        if (!expr.ok()) return expr.status();
        select->group_by.push_back(std::move(*expr));
      } while (Accept(SqlTokenKind::kComma));
    }
    if (AcceptKeyword("ORDER")) {
      if (!AcceptKeyword("BY")) return Error("expected BY");
      do {
        SqlOrderItem item;
        auto expr = ParseExpr();
        if (!expr.ok()) return expr.status();
        item.expr = std::move(*expr);
        if (AcceptKeyword("DESC")) {
          item.descending = true;
        } else {
          AcceptKeyword("ASC");
        }
        select->order_by.push_back(std::move(item));
      } while (Accept(SqlTokenKind::kComma));
    }
    if (AcceptKeyword("LIMIT")) {
      auto limit = ParseExpr();
      if (!limit.ok()) return limit.status();
      select->limit = std::move(*limit);
    }
    return select;
  }

  Result<SqlTableRef> ParseTableRef() {
    SqlTableRef ref;
    if (Accept(SqlTokenKind::kLParen)) {
      auto subquery = ParseSelect(/*allow_with=*/false);
      if (!subquery.ok()) return subquery.status();
      PTLDB_RETURN_IF_ERROR(Expect(SqlTokenKind::kRParen, "')'"));
      ref.subquery = std::move(*subquery);
      AcceptKeyword("AS");
      auto alias = ExpectIdentifier("subquery alias");
      if (!alias.ok()) return alias.status();
      ref.alias = std::move(*alias);
      return ref;
    }
    auto table = ExpectIdentifier("table name");
    if (!table.ok()) return table.status();
    ref.table = std::move(*table);
    ref.alias = ref.table;
    if (AcceptKeyword("AS")) {
      auto alias = ExpectIdentifier("alias");
      if (!alias.ok()) return alias.status();
      ref.alias = std::move(*alias);
    } else if (Peek().kind == SqlTokenKind::kIdentifier) {
      ref.alias = Advance().text;
    }
    return ref;
  }

  // Select items additionally allow "*" and "alias.*".
  Result<SqlExprPtr> ParseSelectItemExpr() {
    if (Peek().kind == SqlTokenKind::kStar) {
      Advance();
      auto star = std::make_unique<SqlExpr>();
      star->kind = SqlExprKind::kStar;
      return star;
    }
    if (Peek().kind == SqlTokenKind::kIdentifier &&
        Peek(1).kind == SqlTokenKind::kDot &&
        Peek(2).kind == SqlTokenKind::kStar) {
      auto star = std::make_unique<SqlExpr>();
      star->kind = SqlExprKind::kStar;
      star->table = Advance().text;
      Advance();  // '.'
      Advance();  // '*'
      return star;
    }
    return ParseExpr();
  }

  // Precedence: OR < AND < comparison < additive < primary/postfix.
  Result<SqlExprPtr> ParseExpr() { return ParseOr(); }

  Result<SqlExprPtr> ParseOr() {
    auto lhs = ParseAnd();
    if (!lhs.ok()) return lhs;
    while (AcceptKeyword("OR")) {
      auto rhs = ParseAnd();
      if (!rhs.ok()) return rhs;
      lhs = MakeBinary(SqlBinaryOp::kOr, std::move(*lhs), std::move(*rhs));
    }
    return lhs;
  }

  Result<SqlExprPtr> ParseAnd() {
    auto lhs = ParseComparison();
    if (!lhs.ok()) return lhs;
    while (AcceptKeyword("AND")) {
      auto rhs = ParseComparison();
      if (!rhs.ok()) return rhs;
      lhs = MakeBinary(SqlBinaryOp::kAnd, std::move(*lhs), std::move(*rhs));
    }
    return lhs;
  }

  Result<SqlExprPtr> ParseComparison() {
    auto lhs = ParseAdditive();
    if (!lhs.ok()) return lhs;
    SqlBinaryOp op;
    switch (Peek().kind) {
      case SqlTokenKind::kEq:
        op = SqlBinaryOp::kEq;
        break;
      case SqlTokenKind::kNe:
        op = SqlBinaryOp::kNe;
        break;
      case SqlTokenKind::kLt:
        op = SqlBinaryOp::kLt;
        break;
      case SqlTokenKind::kLe:
        op = SqlBinaryOp::kLe;
        break;
      case SqlTokenKind::kGt:
        op = SqlBinaryOp::kGt;
        break;
      case SqlTokenKind::kGe:
        op = SqlBinaryOp::kGe;
        break;
      default:
        return lhs;
    }
    Advance();
    auto rhs = ParseAdditive();
    if (!rhs.ok()) return rhs;
    return MakeBinary(op, std::move(*lhs), std::move(*rhs));
  }

  Result<SqlExprPtr> ParseAdditive() {
    auto lhs = ParseMultiplicative();
    if (!lhs.ok()) return lhs;
    while (true) {
      SqlBinaryOp op;
      if (Peek().kind == SqlTokenKind::kPlus) {
        op = SqlBinaryOp::kAdd;
      } else if (Peek().kind == SqlTokenKind::kMinus) {
        op = SqlBinaryOp::kSub;
      } else {
        return lhs;
      }
      Advance();
      auto rhs = ParseMultiplicative();
      if (!rhs.ok()) return rhs;
      lhs = MakeBinary(op, std::move(*lhs), std::move(*rhs));
    }
  }

  Result<SqlExprPtr> ParseMultiplicative() {
    auto lhs = ParsePostfix();
    if (!lhs.ok()) return lhs;
    while (Peek().kind == SqlTokenKind::kSlash) {
      Advance();
      auto rhs = ParsePostfix();
      if (!rhs.ok()) return rhs;
      lhs = MakeBinary(SqlBinaryOp::kDiv, std::move(*lhs), std::move(*rhs));
    }
    return lhs;
  }

  // Postfix array slice: base[lo:hi].
  Result<SqlExprPtr> ParsePostfix() {
    auto base = ParsePrimary();
    if (!base.ok()) return base;
    while (Accept(SqlTokenKind::kLBracket)) {
      auto lo = ParseExpr();
      if (!lo.ok()) return lo;
      PTLDB_RETURN_IF_ERROR(Expect(SqlTokenKind::kColon, "':' in slice"));
      auto hi = ParseExpr();
      if (!hi.ok()) return hi;
      PTLDB_RETURN_IF_ERROR(Expect(SqlTokenKind::kRBracket, "']'"));
      auto slice = std::make_unique<SqlExpr>();
      slice->kind = SqlExprKind::kSlice;
      slice->lhs = std::move(*base);
      slice->slice_lo = std::move(*lo);
      slice->slice_hi = std::move(*hi);
      base = std::move(slice);
    }
    return base;
  }

  Result<SqlExprPtr> ParsePrimary() {
    const SqlToken& token = Peek();
    switch (token.kind) {
      case SqlTokenKind::kInteger: {
        Advance();
        auto expr = std::make_unique<SqlExpr>();
        expr->kind = SqlExprKind::kInteger;
        expr->value = token.int_value;
        return expr;
      }
      case SqlTokenKind::kString: {
        Advance();
        auto expr = std::make_unique<SqlExpr>();
        expr->kind = SqlExprKind::kString;
        expr->text = token.text;
        return expr;
      }
      case SqlTokenKind::kParameter: {
        Advance();
        auto expr = std::make_unique<SqlExpr>();
        expr->kind = SqlExprKind::kParameter;
        expr->value = token.int_value;
        return expr;
      }
      case SqlTokenKind::kLParen: {
        Advance();
        auto inner = ParseExpr();
        if (!inner.ok()) return inner;
        PTLDB_RETURN_IF_ERROR(Expect(SqlTokenKind::kRParen, "')'"));
        return inner;
      }
      case SqlTokenKind::kKeyword: {
        // Function-style keywords: MIN/MAX/UNNEST/FLOOR/LEAST/GREATEST.
        if (token.text == "MIN" || token.text == "MAX" ||
            token.text == "UNNEST" || token.text == "FLOOR" ||
            token.text == "LEAST" || token.text == "GREATEST") {
          const std::string name = Advance().text;
          PTLDB_RETURN_IF_ERROR(Expect(SqlTokenKind::kLParen, "'('"));
          auto call = std::make_unique<SqlExpr>();
          call->kind = SqlExprKind::kFunction;
          call->function = name;
          do {
            auto arg = ParseExpr();
            if (!arg.ok()) return arg;
            call->args.push_back(std::move(*arg));
          } while (Accept(SqlTokenKind::kComma));
          PTLDB_RETURN_IF_ERROR(Expect(SqlTokenKind::kRParen, "')'"));
          return call;
        }
        return Error("unexpected keyword in expression");
      }
      case SqlTokenKind::kIdentifier: {
        auto expr = std::make_unique<SqlExpr>();
        expr->kind = SqlExprKind::kColumn;
        expr->column = Advance().text;
        if (Peek().kind == SqlTokenKind::kDot &&
            Peek(1).kind == SqlTokenKind::kIdentifier) {
          Advance();  // '.'
          expr->table = std::move(expr->column);
          expr->column = Advance().text;
        }
        return expr;
      }
      default:
        return Error("expected expression");
    }
  }

  static SqlExprPtr MakeBinary(SqlBinaryOp op, SqlExprPtr lhs, SqlExprPtr rhs) {
    auto expr = std::make_unique<SqlExpr>();
    expr->kind = SqlExprKind::kBinary;
    expr->op = op;
    expr->lhs = std::move(lhs);
    expr->rhs = std::move(rhs);
    return expr;
  }

  std::vector<SqlToken> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SqlSelectPtr> ParseSqlSelect(const std::string& sql) {
  auto tokens = LexSql(sql);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(*tokens));
  return parser.ParseStatement();
}

}  // namespace ptldb
